(** The paper's motivating example (Figures 1, 5 and 6), step by step.

    A rare branch bypasses the store [i1] that kills the cross-iteration
    flow from [i3] to [i2]. We show that:
    - static analysis (CAF) cannot disprove the dependence;
    - composition by confluence cannot either;
    - SCAF disproves it through control-speculation + kill-flow
      collaboration, at zero validation cost;
    - memory speculation could too, but at a high validation cost.

    Run with: dune exec examples/motivating_example.exe *)

open Scaf
open Scaf_ir

let src =
  {|
global @a 8
global @b 8

func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [latch: %i2]
  %r = call @input(0)
  %c = icmp ne %r, 0
  condbr %c, rare, common
rare:                        ; (almost) never executes
  store 8, @b, 7
  br cont
common:
  store 8, @a, %i            ; i1: kills the flow from i3 ... when executed
  br cont
cont:
  %v = load 8, @a            ; i2: b = foo(a)
  store 8, @b, %v
  br latch
latch:
  %i2 = add %i, 1
  store 8, @a, %i2           ; i3: a = ...
  %d = icmp slt %i2, 200
  condbr %d, loop, exit
exit:
  ret
}
|}

let () =
  let m = Parser.parse_exn_msg src in
  Verify.check_exn m;
  Fmt.pr "--- the program (Figure 1) ---@.%s@." src;

  let profiles = Scaf_profile.Profiler.profile_module ~inputs:[ [| 0L |] ] m in
  Fmt.pr "--- profiling facts ---@.";
  Fmt.pr "block 'rare' speculatively dead: %b@."
    (Scaf_profile.Edge_profile.spec_dead profiles.Scaf_profile.Profiles.edges
       ~func:"main" ~label:"rare");

  (* locate i1, i2, i3 *)
  let find p =
    let r = ref (-1) in
    Irmod.iter_instrs m (fun _ _ i -> if p i then r := i.Instr.id);
    !r
  in
  let store_of_value v =
    find (fun i ->
        match i.Instr.kind with
        | Instr.Store { ptr = Value.Global "a"; value = Value.Reg r; _ } ->
            String.equal r v
        | _ -> false)
  in
  let i1 = store_of_value "i" in
  let i3 = store_of_value "i2" in
  let i2 =
    find (fun i ->
        match i.Instr.kind with
        | Instr.Load { ptr = Value.Global "a"; _ } -> true
        | _ -> false)
  in
  Fmt.pr "i1 = instr %d, i2 = instr %d, i3 = instr %d@.@." i1 i2 i3;

  (* the query of Figure 6, step 1 *)
  let q = Query.modref_instrs ~loop:"main:loop" ~tr:Query.Before i3 i2 in
  Fmt.pr "--- the query (Figure 6, step 1) ---@.%a@.@." Query.pp q;

  let show name (r : Scaf_pdg.Schemes.resolver) =
    let resp = r.Scaf_pdg.Schemes.resolve q in
    Fmt.pr "%-22s -> %a@." name Response.pp resp;
    (match Response.Sset.elements resp.Response.provenance with
    | [] -> ()
    | ms -> Fmt.pr "%22s    via %a@." "" Fmt.(list ~sep:comma string) ms);
    resp
  in
  let _ = show "CAF (static only)" (Scaf_pdg.Schemes.caf profiles) in
  let _ = show "Confluence" (Scaf_pdg.Schemes.confluence profiles) in
  let scaf_resp = show "SCAF" (Scaf_pdg.Schemes.scaf profiles) in
  let _ = show "Memory speculation" (Scaf_pdg.Schemes.memory_speculation profiles) in

  Fmt.pr "@.--- what the client must validate (Figure 5c) ---@.";
  (match Response.Options.cheapest scaf_resp.Response.options with
  | Some option ->
      List.iter (fun a -> Fmt.pr "  %a@." Assertion.pp a) option;
      (* apply it: instrument and run *)
      let prog = profiles.Scaf_profile.Profiles.ctx in
      let instrumented = Scaf_transform.Instrument.apply prog option in
      let ok =
        Scaf_transform.Apply.run_with_recovery ~original:m ~instrumented
          ~input:[| 0L |] ()
      in
      Fmt.pr "run with validation on training input: misspeculated=%b@."
        ok.Scaf_transform.Apply.misspeculated;
      let bad =
        Scaf_transform.Apply.run_with_recovery ~original:m ~instrumented
          ~input:[| 1L |] ()
      in
      Fmt.pr
        "run on an input that takes the rare path: misspeculated=%b, \
         recovered output equals the original program's: %b@."
        bad.Scaf_transform.Apply.misspeculated
        (bad.Scaf_transform.Apply.result.Scaf_interp.Eval.output
        = (Scaf_interp.Eval.run ~input:[| 1L |] m).Scaf_interp.Eval.output)
  | None -> Fmt.pr "  (none)@.")
