(** Planning for a parallelization client (§3.4 "SCAF facilitates
    planning").

    A DOALL-style client wants every cross-iteration dependence of a hot
    loop removed. SCAF reports each removable dependence *predicated on*
    assertion options, so the client can weigh total validation cost before
    transforming anything, pick a conflict-free assertion set, and see how
    one cheap assertion pays for many dependences — versus what raw memory
    speculation would charge.

    Run with: dune exec examples/parallelization_planning.exe *)

open Scaf
open Scaf_pdg
open Scaf_suite

let () =
  let b = Option.get (Registry.find "181.mcf") in
  let profiles = Program.profiles b in
  let prog = profiles.Scaf_profile.Profiles.ctx in
  let scaf = Schemes.scaf profiles in
  let memspec = Schemes.memory_speculation profiles in

  (* The client targets the hottest loop. *)
  let lid, _ = List.hd (Nodep.hot_loop_weights profiles) in
  Fmt.pr "target loop: %s@.@." lid;

  let report = Pdg.run_loop prog ~resolver:scaf.Schemes.resolve lid in
  let cross =
    List.filter (fun (q : Pdg.qresult) -> q.Pdg.dq.Pdg.cross) report.Pdg.queries
  in
  let removable = List.filter (fun (q : Pdg.qresult) -> q.Pdg.nodep) cross in
  Fmt.pr "cross-iteration dependence queries: %d, removable under cheap \
          speculation: %d@."
    (List.length cross) (List.length removable);

  (* Plan: cheapest conflict-free assertion set covering them all. *)
  let plan = Scaf_transform.Plan.build [ { report with Pdg.queries = cross } ] in
  Fmt.pr "@.--- the plan ---@.%a@." Scaf_transform.Plan.pp plan;

  (* Compare with raw memory speculation for the same dependences. *)
  let memspec_cost =
    List.fold_left
      (fun acc (q : Pdg.qresult) ->
        let resp = memspec.Schemes.resolve (Pdg.to_query lid q.Pdg.dq) in
        match resp.Response.result with
        | Aresult.RModref Aresult.NoModRef -> acc +. Response.Options.cheapest_cost resp.Response.options
        | _ -> acc)
      0.0 removable
  in
  Fmt.pr
    "validation cost for the same dependences:@.  SCAF plan: %10.1f  (%d \
     assertions)@.  memory speculation: %10.1f@."
    plan.Scaf_transform.Plan.total_cost
    (List.length plan.Scaf_transform.Plan.selected)
    memspec_cost;
  if memspec_cost > 0.0 then
    Fmt.pr "  -> SCAF needs %.1fx less validation work@."
      (memspec_cost /. max 1.0 plan.Scaf_transform.Plan.total_cost)
