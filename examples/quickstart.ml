(** Quickstart: parse a program, profile it, ask SCAF a dependence query.

    Run with: dune exec examples/quickstart.exe *)

open Scaf
open Scaf_ir

(* A loop that sums a table through a pointer loaded from a global slot.
   The table is read-only inside the loop, but no static analysis can see
   through the opaque slot load. *)
let src =
  {|
global @slot 8
global @sum 8

func @init() {
entry:
  %t = call @malloc(64)
  store 8, @slot, %t
  br fill
fill:
  %i = phi [entry: 0], [fill: %i2]
  %p = gep %t, %i
  store 8, %p, %i
  %i2 = add %i, 8
  %c = icmp slt %i2, 64
  condbr %c, fill, exit
exit:
  ret
}

func @main() {
entry:
  call @init()
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %t = load 8, @slot
  %j = srem %i, 8
  %j8 = mul %j, 8
  %p = gep %t, %j8
  %v = load 8, %p          ; reads the (read-only) table
  %s = load 8, @sum
  %s2 = add %s, %v
  store 8, @sum, %s2       ; writes the accumulator
  %i2 = add %i, 1
  %c = icmp slt %i2, 100
  condbr %c, loop, exit
exit:
  %f = load 8, @sum
  call @print(%f)
  ret
}
|}

let () =
  (* 1. Parse and sanity-check the MIR program. *)
  let m = Parser.parse_exn_msg src in
  Verify.check_exn m;

  (* 2. Profile it on a training input (edge, value, points-to, lifetime,
     memory-dependence and loop-time profiles in one pass). *)
  let profiles = Scaf_profile.Profiler.profile_module m in

  (* 3. Stand up SCAF: 13 memory-analysis modules + 6 speculation modules
     behind the Orchestrator. *)
  let scaf = Scaf_pdg.Schemes.scaf profiles in

  (* 4. Find the two instructions we care about: the accumulator store and
     the table load. *)
  let find p =
    let r = ref (-1) in
    Irmod.iter_instrs m (fun _ _ i -> if p i then r := i.Instr.id);
    !r
  in
  let acc_store =
    find (fun i ->
        match i.Instr.kind with
        | Instr.Store { ptr = Value.Global "sum"; _ } -> true
        | _ -> false)
  in
  let table_load = find (fun i -> i.Instr.dst = Some "v") in

  (* 5. Ask: may the store modify what the load reads, intra-iteration? *)
  let q =
    Query.modref_instrs ~loop:"main:loop" ~tr:Query.Same acc_store table_load
  in
  let resp = scaf.Scaf_pdg.Schemes.resolve q in
  Fmt.pr "query: %a@." Query.pp q;
  Fmt.pr "answer: %a@." Response.pp resp;
  Fmt.pr "modules involved: %a@."
    Fmt.(list ~sep:comma string)
    (Response.Sset.elements resp.Response.provenance);
  Fmt.pr "validation cost of cheapest option: %.1f@."
    (Response.Options.cheapest_cost resp.Response.options)
