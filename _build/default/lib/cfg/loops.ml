(** Natural-loop detection and loop-nest information.

    A back edge is an edge [a -> h] where [h] dominates [a]; the natural
    loop of header [h] is the union of all nodes that can reach a latch
    without passing through [h]. Loops sharing a header are merged (as in
    LLVM). Loop identity used across the framework is
    ["function_name:header_label"]. *)

module Int_set = Set.Make (Int)

type loop = {
  lid : string;  (** stable id: "func:header_label" *)
  header : int;
  blocks : Int_set.t;
  latches : int list;  (** sources of back edges *)
  depth : int;  (** nesting depth, outermost = 1 *)
  parent : string option;  (** lid of the enclosing loop *)
}

type t = {
  cfg : Cfg.t;
  loops : loop list;  (** outermost-first, stable order *)
  innermost : loop option array;  (** innermost loop containing each block *)
}

let find (t : t) (lid : string) : loop option =
  List.find_opt (fun l -> String.equal l.lid lid) t.loops

(** [contains l b] - does loop [l] contain block index [b]? *)
let contains (l : loop) (b : int) : bool = Int_set.mem b l.blocks

(** [contains_instr t l id] - does loop [l] contain instruction [id]? *)
let contains_instr (t : t) (l : loop) (id : int) : bool =
  match Cfg.position t.cfg id with
  | Some (b, _) -> contains l b
  | None -> false

(** [exits t l] is the list of edges [(src, dst)] leaving the loop. *)
let exits (t : t) (l : loop) : (int * int) list =
  Int_set.fold
    (fun b acc ->
      List.fold_left
        (fun acc s -> if contains l s then acc else (b, s) :: acc)
        acc t.cfg.Cfg.succs.(b))
    l.blocks []

let compute (cfg : Cfg.t) : t =
  let dom = Dom.compute cfg in
  let n = Cfg.num_blocks cfg in
  (* back edges grouped by header *)
  let backedges = Hashtbl.create 8 in
  for a = 0 to n - 1 do
    List.iter
      (fun h ->
        if Dom.dominates dom h a then
          Hashtbl.replace backedges h
            (a :: Option.value ~default:[] (Hashtbl.find_opt backedges h)))
      cfg.Cfg.succs.(a)
  done;
  let body_of h latches =
    (* walk predecessors from latches, not crossing the header *)
    let seen = ref (Int_set.singleton h) in
    let rec walk b =
      if not (Int_set.mem b !seen) then begin
        seen := Int_set.add b !seen;
        List.iter walk cfg.Cfg.preds.(b)
      end
    in
    List.iter walk latches;
    !seen
  in
  let headers =
    Hashtbl.fold (fun h _ acc -> h :: acc) backedges []
    |> List.sort Stdlib.compare
  in
  let raw =
    List.map
      (fun h ->
        let latches = List.sort_uniq Stdlib.compare (Hashtbl.find backedges h) in
        (h, latches, body_of h latches))
      headers
  in
  let lid_of h = Printf.sprintf "%s:%s" cfg.Cfg.func.Scaf_ir.Func.name (Cfg.label cfg h) in
  (* nesting: loop A encloses B iff A contains B's header and A <> B *)
  let encloses (_, _, blocks_a) (hb, _, _) = Int_set.mem hb blocks_a in
  let loops =
    List.map
      (fun ((h, latches, blocks) as me) ->
        let enclosing =
          List.filter
            (fun ((h', _, _) as other) -> h' <> h && encloses other me)
            raw
        in
        let depth = 1 + List.length enclosing in
        (* parent = enclosing loop with the largest depth (smallest body) *)
        let parent =
          enclosing
          |> List.fold_left
               (fun best ((_, _, bl) as cand) ->
                 match best with
                 | None -> Some cand
                 | Some (_, _, bbl) ->
                     if Int_set.cardinal bl < Int_set.cardinal bbl then Some cand
                     else best)
               None
          |> Option.map (fun (h', _, _) -> lid_of h')
        in
        { lid = lid_of h; header = h; blocks; latches; depth; parent })
      raw
  in
  let loops = List.sort (fun a b -> Stdlib.compare a.depth b.depth) loops in
  let innermost = Array.make n None in
  List.iter
    (fun l ->
      Int_set.iter
        (fun b ->
          match innermost.(b) with
          | Some l' when l'.depth >= l.depth -> ()
          | _ -> innermost.(b) <- Some l)
        l.blocks)
    loops;
  { cfg; loops; innermost }

(** The innermost loop containing instruction [id], if any. *)
let innermost_of_instr (t : t) (id : int) : loop option =
  match Cfg.position t.cfg id with
  | Some (b, _) -> t.innermost.(b)
  | None -> None

let pp_loop ppf (l : loop) =
  Fmt.pf ppf "loop %s (depth %d, %d blocks)" l.lid l.depth
    (Int_set.cardinal l.blocks)
