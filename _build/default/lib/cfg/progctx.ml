(** Program-wide analysis context: per-function CFGs, dominator views and
    loop info, plus the module-wide instruction index. Built once per
    module and shared by profilers, analysis modules and clients. *)

open Scaf_ir

type t = {
  m : Irmod.t;
  index : Irmod.Index.index;
  cfgs : (string, Cfg.t) Hashtbl.t;
  loops : (string, Loops.t) Hashtbl.t;
  ctrls : (string, Ctrl.t) Hashtbl.t;  (** static control-flow views *)
  by_lid : (string, string * Loops.loop) Hashtbl.t;
      (** loop id -> (function name, loop) *)
}

let build (m : Irmod.t) : t =
  let index = Irmod.Index.build m in
  let cfgs = Hashtbl.create 16 in
  let loops = Hashtbl.create 16 in
  let ctrls = Hashtbl.create 16 in
  let by_lid = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg.of_func f in
      Hashtbl.replace cfgs f.Func.name cfg;
      let li = Loops.compute cfg in
      Hashtbl.replace loops f.Func.name li;
      Hashtbl.replace ctrls f.Func.name (Ctrl.of_cfg cfg);
      List.iter
        (fun (l : Loops.loop) ->
          Hashtbl.replace by_lid l.Loops.lid (f.Func.name, l))
        li.Loops.loops)
    m.Irmod.funcs;
  { m; index; cfgs; loops; ctrls; by_lid }

let cfg_of (t : t) (fname : string) : Cfg.t option = Hashtbl.find_opt t.cfgs fname
let loops_of (t : t) (fname : string) : Loops.t option = Hashtbl.find_opt t.loops fname
let ctrl_of (t : t) (fname : string) : Ctrl.t option = Hashtbl.find_opt t.ctrls fname

(** Resolve an instruction id to its occurrence (function, block, instr). *)
let occ (t : t) (id : int) : Irmod.Index.occurrence option =
  Irmod.Index.find t.index id

(** Resolve a loop id to its function name and loop. *)
let loop_of_lid (t : t) (lid : string) : (string * Loops.loop) option =
  Hashtbl.find_opt t.by_lid lid

(** The function that owns instruction [id]. *)
let func_of_instr (t : t) (id : int) : Func.t option =
  Option.map (fun (o : Irmod.Index.occurrence) -> o.Irmod.Index.func) (occ t id)

(** Definition of register [r] inside function [fname]. *)
let def (t : t) (fname : string) (r : string) : Instr.t option =
  Irmod.Index.def t.index fname r
