(** Control-flow graph of one MIR function, with O(1) lookups from labels,
    instruction ids and positions. Block indices are dense ints; index 0 is
    the entry block. *)

open Scaf_ir

type t = {
  func : Func.t;
  blocks : Block.t array;
  index_of_label : (string, int) Hashtbl.t;
  succs : int list array;
  preds : int list array;
  instr_pos : (int, int * int) Hashtbl.t;
      (** instruction id -> (block index, position); a block's terminator has
          position [List.length instrs] *)
}

let entry_index = 0

let of_func (func : Func.t) : t =
  let blocks = Array.of_list func.blocks in
  let n = Array.length blocks in
  let index_of_label = Hashtbl.create (2 * n) in
  Array.iteri (fun i (b : Block.t) -> Hashtbl.replace index_of_label b.label i) blocks;
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iteri
    (fun i b ->
      let ss =
        List.map
          (fun l ->
            match Hashtbl.find_opt index_of_label l with
            | Some j -> j
            | None ->
                invalid_arg
                  (Printf.sprintf "Cfg.of_func: @%s branches to unknown %s"
                     func.name l))
          (Block.successors b)
      in
      succs.(i) <- ss;
      List.iter (fun j -> preds.(j) <- i :: preds.(j)) ss)
    blocks;
  Array.iteri (fun j ps -> preds.(j) <- List.rev ps) preds;
  let instr_pos = Hashtbl.create 64 in
  Array.iteri
    (fun i (b : Block.t) ->
      List.iteri (fun pos (ins : Instr.t) -> Hashtbl.replace instr_pos ins.id (i, pos)) b.instrs;
      Hashtbl.replace instr_pos b.term.tid (i, List.length b.instrs))
    blocks;
  { func; blocks; index_of_label; succs; preds; instr_pos }

let num_blocks (t : t) = Array.length t.blocks
let block (t : t) i = t.blocks.(i)
let label (t : t) i = t.blocks.(i).Block.label

let index_of (t : t) (label : string) : int =
  match Hashtbl.find_opt t.index_of_label label with
  | Some i -> i
  | None ->
      invalid_arg (Printf.sprintf "Cfg.index_of: unknown label %s" label)

(** [position t id] is [(block index, position in block)] of instruction
    [id], or [None] if [id] is not in this function. *)
let position (t : t) (id : int) : (int * int) option =
  Hashtbl.find_opt t.instr_pos id

let position_exn (t : t) (id : int) : int * int =
  match position t id with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Cfg.position_exn: instr %d not here" id)

let contains_instr (t : t) (id : int) : bool = Hashtbl.mem t.instr_pos id

(** Reverse postorder over reachable blocks, entry first. *)
let rpo (t : t) : int array =
  let n = num_blocks t in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs t.succs.(i);
      order := i :: !order
    end
  in
  dfs entry_index;
  Array.of_list !order

(** Blocks unreachable from the entry (e.g., dead recovery paths). *)
let unreachable_blocks (t : t) : int list =
  let n = num_blocks t in
  let seen = Array.make n false in
  Array.iter (fun i -> seen.(i) <- true) (rpo t);
  List.filter (fun i -> not seen.(i)) (List.init n Fun.id)
