(** A control-flow view of one function: dominator + post-dominator trees
    plus the successor relation they were computed from.

    This is the value SCAF queries carry in their [dt]/[pdt] parameters
    (§3.2.2). The *static* view comes from {!of_cfg}; the control
    speculation module builds a *speculative* view with {!filtered}, in
    which never-executed blocks are removed. Consumers (e.g. kill-flow) are
    deliberately agnostic to which kind they were handed. *)

type t = {
  cfg : Cfg.t;
  dom : Dom.t;
  pdom : Dom.t;
  succs : int -> int list;
  live : int -> bool;  (** is the block live under this view? *)
}

(** The static control-flow view of [cfg]. *)
let of_cfg (cfg : Cfg.t) : t =
  let dom = Dom.compute cfg in
  let pdom = Dom.compute_post cfg in
  {
    cfg;
    dom;
    pdom;
    succs = (fun i -> cfg.Cfg.succs.(i));
    live = (fun i -> Dom.reachable dom i);
  }

(** [filtered cfg ~dead] is the view of [cfg] with every block satisfying
    [dead] removed: edges into dead blocks disappear, and anything no longer
    reachable from the entry is dead too. *)
let filtered (cfg : Cfg.t) ~(dead : int -> bool) : t =
  let succs i =
    if dead i then []
    else List.filter (fun j -> not (dead j)) cfg.Cfg.succs.(i)
  in
  let dom = Dom.compute_filtered cfg ~succs in
  let pdom = Dom.compute_post ~succs cfg in
  { cfg; dom; pdom; succs; live = (fun i -> Dom.reachable dom i) }

(** [dominates_instr t a b] / [post_dominates_instr t a b] at the
    instruction level under this view. *)
let dominates_instr (t : t) a b = Dom.dominates_instr t.dom t.cfg a b
let post_dominates_instr (t : t) a b = Dom.post_dominates_instr t.pdom t.cfg a b

(** [live_instr t id] - is the instruction's block live under this view? *)
let live_instr (t : t) (id : int) : bool =
  match Cfg.position t.cfg id with Some (b, _) -> t.live b | None -> false
