(** Program-wide analysis context: per-function CFGs, static control-flow
    views and loop info, plus the module-wide instruction index. Built once
    per module and shared by profilers, analysis modules and clients. *)

open Scaf_ir

type t = {
  m : Irmod.t;
  index : Irmod.Index.index;
  cfgs : (string, Cfg.t) Hashtbl.t;
  loops : (string, Loops.t) Hashtbl.t;
  ctrls : (string, Ctrl.t) Hashtbl.t;
  by_lid : (string, string * Loops.loop) Hashtbl.t;
}

val build : Irmod.t -> t
val cfg_of : t -> string -> Cfg.t option
val loops_of : t -> string -> Loops.t option
val ctrl_of : t -> string -> Ctrl.t option

(** Resolve an instruction id to its (function, block, instruction). *)
val occ : t -> int -> Irmod.Index.occurrence option

(** Resolve a loop id ("function:header_label") to its owner and loop. *)
val loop_of_lid : t -> string -> (string * Loops.loop) option

val func_of_instr : t -> int -> Func.t option

(** Definition of register [r] inside the named function (parameters have
    no definition). *)
val def : t -> string -> string -> Instr.t option
