(** A control-flow view of one function: dominator and post-dominator trees
    plus the successor relation they were computed from.

    This is the value SCAF queries carry in their dominator-tree parameters
    (paper §3.2.2). The *static* view comes from {!of_cfg}; the control
    speculation module builds a *speculative* view with {!filtered}, in
    which never-executed blocks are removed. Consumers (e.g. kill-flow) are
    deliberately agnostic to which kind they hold. *)

type t = {
  cfg : Cfg.t;
  dom : Dom.t;
  pdom : Dom.t;
  succs : int -> int list;
  live : int -> bool;  (** is the block live under this view? *)
}

(** The static control-flow view. *)
val of_cfg : Cfg.t -> t

(** The view with every block satisfying [dead] removed: edges into dead
    blocks disappear, and anything no longer reachable from the entry is
    dead too. *)
val filtered : Cfg.t -> dead:(int -> bool) -> t

(** Instruction-level dominance under this view (by instruction id). *)
val dominates_instr : t -> int -> int -> bool

val post_dominates_instr : t -> int -> int -> bool

(** Is the instruction's block live under this view? *)
val live_instr : t -> int -> bool
