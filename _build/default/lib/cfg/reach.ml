(** Path-sensitive reachability between *program points*.

    A program point is [(block index, position)]; position [-1] denotes
    block entry (before any instruction) and [max_int] denotes block exit
    (after the terminator). Execution within a block is straight-line, so
    "leaving a block" implies executing its whole suffix — the precision
    kill-flow relies on.

    All functions are parameterized by a successor function so they work on
    both the real CFG and the speculative one (dead blocks filtered out). *)

type point = { blk : int; pos : int }

let entry_of b = { blk = b; pos = -1 }
let exit_of b = { blk = b; pos = max_int }

(** [reaches ~succs ~block_ok ~from ~target] - plain block-level
    reachability ([from] itself counts as reached only if [from = target]). *)
let reaches ~(succs : int -> int list) ?(block_ok = fun _ -> true)
    ~(from : int) ~(target : int) () : bool =
  if from = target then true
  else begin
    let visited = Hashtbl.create 16 in
    let rec go frontier =
      match frontier with
      | [] -> false
      | b :: rest ->
          if b = target then true
          else if Hashtbl.mem visited b || not (block_ok b) then go rest
          else begin
            Hashtbl.replace visited b ();
            go (succs b @ rest)
          end
    in
    go (succs from)
  end

(** [path_avoiding ~succs ~block_ok ~src ~dst ~kill] - does an execution
    path exist that starts *after* point [src], reaches point [dst] (before
    executing it), and never executes point [kill]?

    Returns [false] exactly when every such path is cut by [kill] (or no
    path exists at all); kill-flow treats a [false] answer, combined with a
    must-overwrite at [kill], as a killed dependence. *)
let path_avoiding ~(succs : int -> int list) ?(block_ok = fun _ -> true)
    ~(src : point) ~(dst : point) ~(kill : point) () : bool =
  let { blk = ba; pos = pa } = src in
  let { blk = bb; pos = pb } = dst in
  let { blk = bk; pos = pk } = kill in
  (* Direct same-block segment: src .. dst without leaving the block. *)
  let direct =
    ba = bb && pb > pa && not (bk = ba && pk > pa && pk < pb)
  in
  if direct then true
  else if bk = ba && pk > pa then
    (* leaving src's block executes the killer *)
    false
  else if bk = bb && pk < pb then
    (* entering dst's block executes the killer before dst *)
    false
  else begin
    (* Block-level BFS from src's successors; a block equal to [bk] cannot
       be traversed (entering it executes the killer before any exit). *)
    let visited = Hashtbl.create 16 in
    let rec go frontier =
      match frontier with
      | [] -> false
      | b :: rest ->
          if b = bb then true
          else if Hashtbl.mem visited b || b = bk || not (block_ok b) then
            go rest
          else begin
            Hashtbl.replace visited b ();
            go (succs b @ rest)
          end
    in
    block_ok ba && go (succs ba)
  end
