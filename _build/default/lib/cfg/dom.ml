(** Dominator and post-dominator trees (Cooper–Harvey–Kennedy).

    The computation is generic over a successor function so that the control
    speculation module can hand out *speculative* trees computed on a CFG
    with never-executed blocks removed — the mechanism of SCAF §3.2.2. *)

type t = {
  idom : int array;  (** immediate dominator; [idom.(entry) = entry]; [-1] if unreachable *)
  depth : int array;  (** tree depth; [-1] if unreachable *)
  entry : int;  (** root node (virtual node allowed for post-dominators) *)
  order : int array;  (** reverse postorder number; [-1] if unreachable *)
}

(* Generic CHK over nodes [0, n), given entry and successor function. *)
let compute_generic ~(n : int) ~(entry : int) ~(succs : int -> int list) : t =
  (* Reverse postorder from entry. *)
  let visited = Array.make n false in
  let post = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs (succs i);
      post := i :: !post
    end
  in
  dfs entry;
  let rpo = Array.of_list !post in
  let order = Array.make n (-1) in
  Array.iteri (fun k v -> order.(v) <- k) rpo;
  (* Predecessors restricted to reachable nodes. *)
  let preds = Array.make n [] in
  Array.iter
    (fun u -> List.iter (fun v -> if order.(v) >= 0 then preds.(v) <- u :: preds.(v)) (succs u))
    rpo;
  let idom = Array.make n (-1) in
  idom.(entry) <- entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while order.(!a) > order.(!b) do
        a := idom.(!a)
      done;
      while order.(!b) > order.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun v ->
        if v <> entry then begin
          let processed = List.filter (fun p -> idom.(p) >= 0) preds.(v) in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(v) <> new_idom then begin
                idom.(v) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  let depth = Array.make n (-1) in
  let rec depth_of v =
    if depth.(v) >= 0 then depth.(v)
    else if idom.(v) < 0 then -1
    else if v = entry then begin
      depth.(v) <- 0;
      0
    end
    else begin
      let d = depth_of idom.(v) in
      let d = if d < 0 then -1 else d + 1 in
      depth.(v) <- d;
      d
    end
  in
  Array.iter (fun v -> ignore (depth_of v)) rpo;
  { idom; depth; entry; order }

(** Dominator tree of [cfg]. *)
let compute (cfg : Cfg.t) : t =
  compute_generic ~n:(Cfg.num_blocks cfg) ~entry:Cfg.entry_index
    ~succs:(fun i -> cfg.Cfg.succs.(i))

(** Dominator tree over a filtered successor relation (speculative CFG). *)
let compute_filtered (cfg : Cfg.t) ~(succs : int -> int list) : t =
  compute_generic ~n:(Cfg.num_blocks cfg) ~entry:Cfg.entry_index ~succs

(** Post-dominator tree of [cfg] under successor relation [succs] (defaults
    to the real one). A virtual exit node [n] is appended; blocks with no
    live successors are wired to it. *)
let compute_post ?(succs : (int -> int list) option) (cfg : Cfg.t) : t =
  let n = Cfg.num_blocks cfg in
  let succs = match succs with Some f -> f | None -> fun i -> cfg.Cfg.succs.(i) in
  let exit = n in
  (* Reverse edges: rsuccs v = predecessors of v in the forward graph,
     except the virtual exit, whose rsuccs are the forward-exit blocks. *)
  let rpreds = Array.make (n + 1) [] in
  for u = 0 to n - 1 do
    match succs u with
    | [] -> rpreds.(u) <- exit :: rpreds.(u) (* edge u -> exit, reversed below *)
    | ss -> List.iter (fun v -> rpreds.(v) <- u :: rpreds.(v)) ss
  done;
  (* rsuccs in the reverse graph = forward predecessors; build them. *)
  let rsuccs = Array.make (n + 1) [] in
  for u = 0 to n - 1 do
    match succs u with
    | [] -> rsuccs.(exit) <- u :: rsuccs.(exit)
    | ss -> List.iter (fun v -> rsuccs.(v) <- u :: rsuccs.(v)) ss
  done;
  ignore rpreds;
  compute_generic ~n:(n + 1) ~entry:exit ~succs:(fun i -> rsuccs.(i))

let reachable (t : t) (v : int) : bool = t.idom.(v) >= 0

(** [dominates t a b]: does node [a] dominate node [b]? Unreachable nodes
    dominate nothing and are dominated by nothing. *)
let dominates (t : t) (a : int) (b : int) : bool =
  if not (reachable t a) || not (reachable t b) then false
  else begin
    let b = ref b in
    while t.depth.(!b) > t.depth.(a) do
      b := t.idom.(!b)
    done;
    !b = a
  end

let strictly_dominates (t : t) a b = a <> b && dominates t a b

(** Instruction-level dominance: [a] and [b] are instruction ids within the
    function of [cfg]. Within one block, program order decides. *)
let dominates_instr (t : t) (cfg : Cfg.t) (a : int) (b : int) : bool =
  match (Cfg.position cfg a, Cfg.position cfg b) with
  | Some (ba, pa), Some (bb, pb) ->
      if ba = bb then reachable t ba && pa <= pb else dominates t ba bb
  | _ -> false

(** Instruction-level post-dominance on a post-dominator tree [t]:
    [post_dominates_instr t cfg a b] asks whether [a] post-dominates [b].
    Within one block the *later* instruction post-dominates the earlier. *)
let post_dominates_instr (t : t) (cfg : Cfg.t) (a : int) (b : int) : bool =
  match (Cfg.position cfg a, Cfg.position cfg b) with
  | Some (ba, pa), Some (bb, pb) ->
      if ba = bb then reachable t ba && pa >= pb else dominates t ba bb
  | _ -> false
