lib/cfg/ctrl.ml: Array Cfg Dom List
