lib/cfg/progctx.ml: Cfg Ctrl Func Hashtbl Instr Irmod List Loops Option Scaf_ir
