lib/cfg/reach.ml: Hashtbl
