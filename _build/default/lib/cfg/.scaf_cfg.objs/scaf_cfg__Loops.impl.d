lib/cfg/loops.ml: Array Cfg Dom Fmt Hashtbl Int List Option Printf Scaf_ir Set Stdlib String
