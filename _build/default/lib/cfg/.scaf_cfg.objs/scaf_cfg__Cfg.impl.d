lib/cfg/cfg.ml: Array Block Fun Func Hashtbl Instr List Printf Scaf_ir
