lib/cfg/progctx.mli: Cfg Ctrl Func Hashtbl Instr Irmod Loops Scaf_ir
