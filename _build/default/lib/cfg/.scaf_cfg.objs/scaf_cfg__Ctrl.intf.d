lib/cfg/ctrl.mli: Cfg Dom
