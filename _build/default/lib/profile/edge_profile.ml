(** Edge profiler: execution counts of CFG edges and blocks.

    The control speculation module consumes this to find *speculatively
    dead* blocks — blocks never executed during profiling (the paper
    restricts itself to high-confidence speculation, §4.2.4 fn. 1). *)

type t = {
  edges : (int * string, int) Hashtbl.t;
      (** (terminator id, destination label) -> taken count *)
  blocks : (string * string, int) Hashtbl.t;
      (** (function name, block label) -> execution count *)
  funcs : (string, int) Hashtbl.t;  (** function name -> invocation count *)
}

let create () =
  { edges = Hashtbl.create 256; blocks = Hashtbl.create 256; funcs = Hashtbl.create 16 }

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let record_edge (t : t) ~(src_term : int) ~(dst : string) =
  bump t.edges (src_term, dst)

let record_block (t : t) ~(func : string) ~(label : string) =
  bump t.blocks (func, label)

let record_call (t : t) ~(func : string) = bump t.funcs func

let edge_count (t : t) ~(src_term : int) ~(dst : string) : int =
  Option.value ~default:0 (Hashtbl.find_opt t.edges (src_term, dst))

let block_count (t : t) ~(func : string) ~(label : string) : int =
  Option.value ~default:0 (Hashtbl.find_opt t.blocks (func, label))

let func_count (t : t) ~(func : string) : int =
  Option.value ~default:0 (Hashtbl.find_opt t.funcs func)

(** A block is speculatively dead if its function ran but the block never
    did. Blocks of never-profiled functions are *not* dead (no evidence). *)
let spec_dead (t : t) ~(func : string) ~(label : string) : bool =
  func_count t ~func > 0 && block_count t ~func ~label = 0

(** [bias t ~src_term ~dst] is the fraction of executions of the branch
    that took [dst] (1.0 when the branch never ran). *)
let bias (t : t) ~(src_term : int) ~(dsts : string list) ~(dst : string) :
    float =
  let total =
    List.fold_left (fun acc d -> acc + edge_count t ~src_term ~dst:d) 0 dsts
  in
  if total = 0 then 1.0
  else float_of_int (edge_count t ~src_term ~dst) /. float_of_int total
