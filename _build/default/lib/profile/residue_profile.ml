(** Pointer-residue profiler (Johnson): for each memory access, the set of
    observed values of the accessed address's four least-significant bits.
    Two accesses whose residue sets are disjoint *with respect to their
    access sizes* cannot overlap. *)

type entry = { mutable residues : int  (** 16-bit set *); mutable count : int }

type t = (int, entry) Hashtbl.t
(** keyed by memory-access instruction id *)

let create () : t = Hashtbl.create 128

let record (t : t) ~(access : int) ~(addr : int64) =
  let r = Int64.to_int (Int64.logand addr 15L) in
  match Hashtbl.find_opt t access with
  | None -> Hashtbl.replace t access { residues = 1 lsl r; count = 1 }
  | Some e ->
      e.residues <- e.residues lor (1 lsl r);
      e.count <- e.count + 1

(** [residue_set t access] is the observed 16-bit residue set, or [None] if
    the access never executed during profiling. *)
let residue_set (t : t) (access : int) : int option =
  match Hashtbl.find_opt t access with
  | Some e when e.count > 0 -> Some e.residues
  | _ -> None

let exec_count (t : t) (access : int) : int =
  match Hashtbl.find_opt t access with Some e -> e.count | None -> 0

(** [expand set size] widens a residue set to cover [size] bytes from each
    member (mod 16), i.e. the set of residues the access may *touch*. *)
let expand (set : int) (size : int) : int =
  let out = ref 0 in
  for r = 0 to 15 do
    if set land (1 lsl r) <> 0 then
      for k = 0 to min size 16 - 1 do
        out := !out lor (1 lsl ((r + k) land 15))
      done
  done;
  !out

(** [disjoint s1 size1 s2 size2] - can accesses with these residue sets and
    sizes ever overlap? Sound only when both accesses stay within their
    16-byte phase, which holds for sizes <= 16; larger accesses return
    [false] (not disjoint). *)
let disjoint (s1 : int) (size1 : int) (s2 : int) (size2 : int) : bool =
  if size1 > 16 || size2 > 16 then false
  else expand s1 size1 land expand s2 size2 = 0
