(** Loop-aware memory-dependence profiler (after Chen et al.):

    tracks, through a byte-granular shadow memory, which (store -> load),
    (load -> store) and (store -> store) pairs actually manifested during
    profiling, attributed per loop and split into intra-iteration and
    cross-iteration (loop-carried) dependences.

    Memory speculation — the expensive baseline SCAF competes with —
    asserts the absence of every dependence *not* in this profile. *)

type access = { ainstr : int; asnap : (string * int * int) list }

type byte_state = { mutable writer : access option; mutable readers : access list }

type t = {
  shadow : (int64, byte_state) Hashtbl.t;
  deps : (string, (int * int * bool, int) Hashtbl.t) Hashtbl.t;
      (** lid -> (src instr, dst instr, cross-iteration?) -> count *)
}

let create () : t = { shadow = Hashtbl.create 4096; deps = Hashtbl.create 16 }

let dep_tbl (t : t) lid =
  match Hashtbl.find_opt t.deps lid with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 256 in
      Hashtbl.replace t.deps lid tbl;
      tbl

(* Record a dependence from [src] to [dst] for every loop invocation both
   accesses executed in. *)
let add_dep (t : t) (src : access) (dst : access) =
  List.iter
    (fun (lid, inv_d, iter_d) ->
      match
        List.find_opt (fun (l, _, _) -> String.equal l lid) src.asnap
      with
      | Some (_, inv_s, iter_s) when inv_s = inv_d ->
          let cross = iter_d <> iter_s in
          let tbl = dep_tbl t lid in
          let key = (src.ainstr, dst.ainstr, cross) in
          Hashtbl.replace tbl key
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      | _ -> ())
    dst.asnap

let byte_state (t : t) a =
  match Hashtbl.find_opt t.shadow a with
  | Some bs -> bs
  | None ->
      let bs = { writer = None; readers = [] } in
      Hashtbl.replace t.shadow a bs;
      bs

let record_store (t : t) ~(instr : int) ~(addr : int64) ~(size : int)
    ~(snap : (string * int * int) list) =
  let acc = { ainstr = instr; asnap = snap } in
  for k = 0 to size - 1 do
    let bs = byte_state t (Int64.add addr (Int64.of_int k)) in
    (* anti dependences: every reader since the last write *)
    List.iter (fun r -> add_dep t r acc) bs.readers;
    (* output dependence: the previous writer *)
    (match bs.writer with Some w -> add_dep t w acc | None -> ());
    bs.writer <- Some acc;
    bs.readers <- []
  done

let record_load (t : t) ~(instr : int) ~(addr : int64) ~(size : int)
    ~(snap : (string * int * int) list) =
  let acc = { ainstr = instr; asnap = snap } in
  for k = 0 to size - 1 do
    let bs = byte_state t (Int64.add addr (Int64.of_int k)) in
    (* flow dependence from the last writer *)
    (match bs.writer with Some w -> add_dep t w acc | None -> ());
    (* keep the most recent access per reading instruction (standard
       last-reader practice in dependence profilers) *)
    bs.readers <- acc :: List.filter (fun r -> r.ainstr <> instr) bs.readers
  done

(** [observed t ~lid ~src ~dst ~cross] - did a dependence from [src] to
    [dst] (cross- or intra-iteration) manifest during profiling of loop
    [lid]? *)
let observed (t : t) ~(lid : string) ~(src : int) ~(dst : int) ~(cross : bool)
    : bool =
  match Hashtbl.find_opt t.deps lid with
  | Some tbl -> Hashtbl.mem tbl (src, dst, cross)
  | None -> false

(** All observed dependences of a loop. *)
let all (t : t) ~(lid : string) : (int * int * bool) list =
  match Hashtbl.find_opt t.deps lid with
  | Some tbl -> Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
  | None -> []
