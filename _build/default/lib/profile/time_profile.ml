(** Loop-time profiler: attributes executed instructions to the loops
    active at the time (callee work counts toward the caller's loops) and
    counts iterations and invocations. Drives hot-loop selection (§5):
    loops with >= 10% of total execution time and >= 50 iterations per
    invocation on average. *)

type t = {
  per_loop : (string, int) Hashtbl.t;
  iterations : (string, int) Hashtbl.t;
  invocations : (string, int) Hashtbl.t;
  mutable total : int;
}

let create () : t =
  {
    per_loop = Hashtbl.create 32;
    iterations = Hashtbl.create 32;
    invocations = Hashtbl.create 32;
    total = 0;
  }

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let record_instr (t : t) (actives : Tracker.active list) =
  t.total <- t.total + 1;
  (* A loop can appear once per frame; attribute once per distinct lid. *)
  let rec go seen = function
    | [] -> ()
    | (a : Tracker.active) :: tl ->
        if List.mem a.Tracker.lid seen then go seen tl
        else begin
          bump t.per_loop a.Tracker.lid 1;
          go (a.Tracker.lid :: seen) tl
        end
  in
  go [] actives

let record_iteration (t : t) ~(lid : string) = bump t.iterations lid 1
let record_invocation (t : t) ~(lid : string) = bump t.invocations lid 1

let time_fraction (t : t) ~(lid : string) : float =
  if t.total = 0 then 0.0
  else
    float_of_int (Option.value ~default:0 (Hashtbl.find_opt t.per_loop lid))
    /. float_of_int t.total

let avg_iterations (t : t) ~(lid : string) : float =
  let iters = Option.value ~default:0 (Hashtbl.find_opt t.iterations lid) in
  let invs = Option.value ~default:0 (Hashtbl.find_opt t.invocations lid) in
  if invs = 0 then 0.0 else float_of_int iters /. float_of_int invs

(** Hot loops per the paper's selection rule. *)
let hot_loops ?(min_fraction = 0.10) ?(min_avg_iters = 50.0) (t : t) :
    string list =
  Hashtbl.fold
    (fun lid _ acc ->
      if
        time_fraction t ~lid >= min_fraction
        && avg_iterations t ~lid >= min_avg_iters
      then lid :: acc
      else acc)
    t.per_loop []
  |> List.sort String.compare
