(** The bundle of every profile SCAF's speculation modules consume
    (§4.2.2), together with the program context they were gathered on. *)

type t = {
  ctx : Scaf_cfg.Progctx.t;
  edges : Edge_profile.t;
  values : Value_profile.t;
  residues : Residue_profile.t;
  points_to : Points_to_profile.t;
  lifetime : Lifetime_profile.t;
  memdep : Memdep_profile.t;
  time : Time_profile.t;
}

let create (ctx : Scaf_cfg.Progctx.t) : t =
  {
    ctx;
    edges = Edge_profile.create ();
    values = Value_profile.create ();
    residues = Residue_profile.create ();
    points_to = Points_to_profile.create ();
    lifetime = Lifetime_profile.create ();
    memdep = Memdep_profile.create ();
    time = Time_profile.create ();
  }
