(** Value-prediction profiler: finds loads that returned the same value on
    every profiled execution (last-value prediction with full confidence,
    after Gabbay & Mendelson). *)

type entry = {
  mutable first : int64;
  mutable stable : bool;  (** value identical on every execution so far *)
  mutable count : int;
}

type t = (int, entry) Hashtbl.t
(** keyed by load instruction id *)

let create () : t = Hashtbl.create 128

let record (t : t) ~(load : int) ~(value : int64) =
  match Hashtbl.find_opt t load with
  | None -> Hashtbl.replace t load { first = value; stable = true; count = 1 }
  | Some e ->
      e.count <- e.count + 1;
      if not (Int64.equal e.first value) then e.stable <- false

(** [predictable t load] is [Some (value, exec_count)] when every profiled
    execution of [load] produced [value]. *)
let predictable (t : t) (load : int) : (int64 * int) option =
  match Hashtbl.find_opt t load with
  | Some e when e.stable && e.count > 0 -> Some (e.first, e.count)
  | _ -> None

let exec_count (t : t) (load : int) : int =
  match Hashtbl.find_opt t load with Some e -> e.count | None -> 0
