(** Object-lifetime profiler (after Johnson et al.'s speculative
    separation):

    - per (loop, allocation site): read/write behaviour inside the loop,
      giving *read-only* candidates;
    - per (loop, heap allocation site): whether every object allocated in an
      iteration was freed before that iteration ended, giving *short-lived*
      candidates.

    Read-only and short-lived sets are made disjoint here (short-lived wins)
    so their heap-separation validations can never conflict (§4.2.4). *)

type rw = { mutable reads : int; mutable writes : int }

type t = {
  rw : (string * Site.t, rw) Hashtbl.t;  (** (lid, site) -> counts *)
  alloc_sites : (string * Site.t, unit) Hashtbl.t;
      (** heap sites observed allocating inside the loop *)
  violated : (string * Site.t, unit) Hashtbl.t;
      (** short-lived candidates that leaked past an iteration *)
  (* transient state: per active invocation (lid, inv), the objects
     allocated in the current iteration and still live *)
  pending : (string * int, (int, Site.t) Hashtbl.t) Hashtbl.t;
  live_oids : (int, Site.t * (string * int) list) Hashtbl.t;
      (** live heap object -> (site, invocations it is pending in) *)
}

let create () : t =
  {
    rw = Hashtbl.create 128;
    alloc_sites = Hashtbl.create 64;
    violated = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    live_oids = Hashtbl.create 64;
  }

let rw_entry (t : t) key =
  match Hashtbl.find_opt t.rw key with
  | Some e -> e
  | None ->
      let e = { reads = 0; writes = 0 } in
      Hashtbl.replace t.rw key e;
      e

let record_access (t : t) ~(site : Site.t) ~(write : bool)
    ~(snap : (string * int * int) list) =
  List.iter
    (fun (lid, _, _) ->
      let e = rw_entry t (lid, site) in
      if write then e.writes <- e.writes + 1 else e.reads <- e.reads + 1)
    snap

let record_alloc (t : t) ~(oid : int) ~(site : Site.t)
    ~(snap : (string * int * int) list) =
  match site.Site.skind with
  | Site.SHeap _ ->
      let invs =
        List.map
          (fun (lid, inv, _) ->
            Hashtbl.replace t.alloc_sites (lid, site) ();
            let key = (lid, inv) in
            let tbl =
              match Hashtbl.find_opt t.pending key with
              | Some tbl -> tbl
              | None ->
                  let tbl = Hashtbl.create 8 in
                  Hashtbl.replace t.pending key tbl;
                  tbl
            in
            Hashtbl.replace tbl oid site;
            key)
          snap
      in
      Hashtbl.replace t.live_oids oid (site, invs)
  | _ -> ()

let record_free (t : t) ~(oid : int) =
  match Hashtbl.find_opt t.live_oids oid with
  | Some (_, invs) ->
      List.iter
        (fun key ->
          match Hashtbl.find_opt t.pending key with
          | Some tbl -> Hashtbl.remove tbl oid
          | None -> ())
        invs;
      Hashtbl.remove t.live_oids oid
  | None -> ()

(* At an iteration boundary (next iteration or loop exit), any object still
   pending leaked out of its allocation iteration: its site is not
   short-lived for that loop. *)
let iteration_boundary (t : t) ~(lid : string) ~(invocation : int) =
  let key = (lid, invocation) in
  match Hashtbl.find_opt t.pending key with
  | Some tbl ->
      Hashtbl.iter (fun _oid site -> Hashtbl.replace t.violated (lid, site) ()) tbl;
      Hashtbl.reset tbl
  | None -> ()

(** [short_lived t ~lid site] - was every profiled object of [site]
    allocated inside [lid] freed before its allocation iteration ended? *)
let short_lived (t : t) ~(lid : string) (site : Site.t) : bool =
  Hashtbl.mem t.alloc_sites (lid, site)
  && not (Hashtbl.mem t.violated (lid, site))

(** [read_only t ~lid site] - was [site] accessed in [lid] and never
    written there? Short-lived sites are excluded to keep the two
    speculative heaps disjoint. *)
let read_only (t : t) ~(lid : string) (site : Site.t) : bool =
  (match Hashtbl.find_opt t.rw (lid, site) with
  | Some e -> e.reads > 0 && e.writes = 0
  | None -> false)
  && not (short_lived t ~lid site)

(** All sites touched by the loop during profiling. *)
let sites_of_loop (t : t) ~(lid : string) : Site.t list =
  Hashtbl.fold
    (fun (l, s) _ acc -> if String.equal l lid then s :: acc else acc)
    t.rw []
  |> List.sort_uniq Site.compare
