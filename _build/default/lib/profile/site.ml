(** Allocation sites: the identity of memory objects as speculation modules
    see them. A site is the static allocation point plus a bounded calling
    context (§3.2.2's calling-context parameter exists precisely to let
    modules distinguish dynamic instances created by one static site). *)

type skind =
  | SGlobal of string
  | SStack of int  (** alloca instruction id *)
  | SHeap of int  (** malloc/calloc call instruction id *)

type t = { skind : skind; sctx : int list  (** trimmed calling context *) }

(** Contexts are trimmed to this depth before being stored or compared. *)
let ctx_depth = 2

let trim_ctx (ctx : int list) : int list =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take ctx_depth ctx

let of_obj (o : Scaf_interp.Memory.obj) : t =
  let skind =
    match o.Scaf_interp.Memory.kind with
    | Scaf_interp.Memory.KGlobal g -> SGlobal g
    | Scaf_interp.Memory.KStack i -> SStack i
    | Scaf_interp.Memory.KHeap i -> SHeap i
  in
  { skind; sctx = trim_ctx o.Scaf_interp.Memory.ctx }

let compare = Stdlib.compare
let equal a b = compare a b = 0

(** [same_static a b] ignores context: same static allocation point? *)
let same_static a b = a.skind = b.skind

let pp ppf (s : t) =
  (match s.skind with
  | SGlobal g -> Fmt.pf ppf "@%s" g
  | SStack i -> Fmt.pf ppf "stack#%d" i
  | SHeap i -> Fmt.pf ppf "heap#%d" i);
  match s.sctx with
  | [] -> ()
  | ctx -> Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.comma Fmt.int) ctx

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
