(** The bundle of every profile SCAF's speculation modules consume (paper
    §4.2.2), with the program context they were gathered on. Produce with
    {!Profiler.profile_module}. *)

type t = {
  ctx : Scaf_cfg.Progctx.t;
  edges : Edge_profile.t;  (** branch/block execution counts *)
  values : Value_profile.t;  (** value-stable loads *)
  residues : Residue_profile.t;  (** 4-LSB residue sets per access *)
  points_to : Points_to_profile.t;  (** underlying objects per access *)
  lifetime : Lifetime_profile.t;  (** read-only / short-lived sites *)
  memdep : Memdep_profile.t;  (** observed loop-aware dependences *)
  time : Time_profile.t;  (** loop time, iterations; hot-loop selection *)
}

val create : Scaf_cfg.Progctx.t -> t
