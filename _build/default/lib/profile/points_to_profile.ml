(** Points-to profiler: for every memory access (and pointer-producing
    instruction), the set of underlying objects (allocation sites) it was
    observed referring to, together with the within-object offset range.

    This is the profile behind the points-to speculation module, which in
    turn is what the read-only and short-lived modules premise-query. *)

type entry = {
  mutable sites : Site.Set.t;
  mutable min_off : int;
  mutable max_off : int;  (** inclusive of last byte touched *)
  mutable const_off : int option;
      (** [Some o] while every observation had offset [o] into a single
          static site *)
  mutable count : int;
}

type t = {
  by_instr : (int, entry) Hashtbl.t;
  by_instr_ctx : (int * int list, entry) Hashtbl.t;
      (** context-sensitive view, keyed by trimmed access context *)
}

let create () : t =
  { by_instr = Hashtbl.create 256; by_instr_ctx = Hashtbl.create 256 }

let fresh_entry site off size =
  {
    sites = Site.Set.singleton site;
    min_off = off;
    max_off = off + size - 1;
    const_off = Some off;
    count = 1;
  }

let update_entry (e : entry) (site : Site.t) (off : int) (size : int) =
  let single_static =
    Site.Set.for_all (fun s -> Site.same_static s site) e.sites
  in
  e.sites <- Site.Set.add site e.sites;
  e.min_off <- min e.min_off off;
  e.max_off <- max e.max_off (off + size - 1);
  (match e.const_off with
  | Some o when o = off && single_static -> ()
  | _ -> e.const_off <- None);
  (* re-check: const_off survives only if this observation matches *)
  (match e.const_off with
  | Some o when o <> off -> e.const_off <- None
  | _ -> ());
  e.count <- e.count + 1

let record (t : t) ~(instr : int) ~(obj : Scaf_interp.Memory.obj) ~(off : int)
    ~(size : int) ~(ctx : int list) =
  let site = Site.of_obj obj in
  (match Hashtbl.find_opt t.by_instr instr with
  | None -> Hashtbl.replace t.by_instr instr (fresh_entry site off size)
  | Some e -> update_entry e site off size);
  let key = (instr, Site.trim_ctx ctx) in
  match Hashtbl.find_opt t.by_instr_ctx key with
  | None -> Hashtbl.replace t.by_instr_ctx key (fresh_entry site off size)
  | Some e -> update_entry e site off size

(** [observed t ?ctx instr] is the profile entry for [instr]; when [ctx] is
    given, the context-sensitive entry is preferred. [None] means the
    instruction never executed while profiling. *)
let observed (t : t) ?(ctx : int list option) (instr : int) : entry option =
  match ctx with
  | Some c -> (
      match Hashtbl.find_opt t.by_instr_ctx (instr, Site.trim_ctx c) with
      | Some e -> Some e
      | None -> Hashtbl.find_opt t.by_instr instr)
  | None -> Hashtbl.find_opt t.by_instr instr

(** Underlying-object sets are speculatively disjoint when the profiled
    site sets do not intersect. Without [ctx_sensitive], two dynamic
    instances of one static site are conservatively treated as the same
    object; with it (the query supplied a calling context, §3.2.2), the
    full (site, context) identity is compared. *)
let disjoint_sites ?(ctx_sensitive = false) (a : entry) (b : entry) : bool =
  Site.Set.is_empty (Site.Set.inter a.sites b.sites)
  && (ctx_sensitive
     || Site.Set.for_all
          (fun sa ->
            Site.Set.for_all (fun sb -> not (Site.same_static sa sb)) b.sites)
          a.sites)
