lib/profile/time_profile.ml: Hashtbl List Option String Tracker
