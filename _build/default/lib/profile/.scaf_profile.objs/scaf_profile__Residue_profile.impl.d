lib/profile/residue_profile.ml: Hashtbl Int64
