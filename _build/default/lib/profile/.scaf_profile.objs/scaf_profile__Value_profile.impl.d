lib/profile/value_profile.ml: Hashtbl Int64
