lib/profile/tracker.ml: Cfg Hashtbl List Loops Option Scaf_cfg String
