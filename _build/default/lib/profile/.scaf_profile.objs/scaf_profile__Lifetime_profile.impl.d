lib/profile/lifetime_profile.ml: Hashtbl List Site String
