lib/profile/site.ml: Fmt Scaf_interp Set Stdlib
