lib/profile/memdep_profile.ml: Hashtbl Int64 List Option String
