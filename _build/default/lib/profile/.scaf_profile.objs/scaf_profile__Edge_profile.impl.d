lib/profile/edge_profile.ml: Hashtbl List Option
