lib/profile/points_to_profile.ml: Hashtbl Scaf_interp Site
