(** One-pass profiling driver: runs a module under the interpreter with all
    profilers attached, once per training input, and returns the filled
    {!Profiles.t}. *)

open Scaf_ir
open Scaf_cfg
open Scaf_interp

(* Per-run transient state must not leak across runs: interpreter addresses
   are reused between runs, so the shadow memory and lifetime trackers are
   cleared. *)
let new_run (p : Profiles.t) =
  Hashtbl.reset p.Profiles.memdep.Memdep_profile.shadow;
  Hashtbl.reset p.Profiles.lifetime.Lifetime_profile.pending;
  Hashtbl.reset p.Profiles.lifetime.Lifetime_profile.live_oids

let hooks_for (p : Profiles.t) (tracker : Tracker.t) : Hooks.t =
  let lifetime = p.Profiles.lifetime in
  let time = p.Profiles.time in
  (* loop lifecycle listeners *)
  Tracker.add_enter_listener tracker (fun a ->
      Time_profile.record_invocation time ~lid:a.Tracker.lid);
  Tracker.add_iter_listener tracker (fun a ->
      Time_profile.record_iteration time ~lid:a.Tracker.lid;
      (* close the previous iteration of this invocation *)
      if a.Tracker.iteration > 1 then
        Lifetime_profile.iteration_boundary lifetime ~lid:a.Tracker.lid
          ~invocation:a.Tracker.invocation);
  Tracker.add_exit_listener tracker (fun a ->
      Lifetime_profile.iteration_boundary lifetime ~lid:a.Tracker.lid
        ~invocation:a.Tracker.invocation);
  {
    Hooks.on_block =
      (fun f b ->
        Edge_profile.record_block p.Profiles.edges ~func:f.Func.name
          ~label:b.Block.label);
    on_edge =
      (fun ~src_term ~src ~dst ~func ->
        Edge_profile.record_edge p.Profiles.edges ~src_term ~dst;
        Tracker.edge tracker ~func:func.Func.name ~src ~dst);
    on_call_enter =
      (fun f ~ctx:_ ->
        Edge_profile.record_call p.Profiles.edges ~func:f.Func.name;
        Tracker.call_enter tracker f.Func.name);
    on_call_exit = (fun _ -> Tracker.call_exit tracker);
    on_instr = (fun _ -> Time_profile.record_instr time (Tracker.actives tracker));
    on_load =
      (fun ~instr ~addr ~size ~value ~obj ~ctx ->
        Value_profile.record p.Profiles.values ~load:instr.Instr.id ~value;
        Residue_profile.record p.Profiles.residues ~access:instr.Instr.id ~addr;
        let snap = Tracker.snapshot tracker in
        Memdep_profile.record_load p.Profiles.memdep ~instr:instr.Instr.id
          ~addr ~size ~snap;
        match obj with
        | Some o ->
            let off = Int64.to_int (Int64.sub addr o.Memory.base) in
            Points_to_profile.record p.Profiles.points_to ~instr:instr.Instr.id
              ~obj:o ~off ~size ~ctx;
            Lifetime_profile.record_access lifetime ~site:(Site.of_obj o)
              ~write:false ~snap
        | None -> ());
    on_store =
      (fun ~instr ~addr ~size ~value:_ ~obj ~ctx ->
        Residue_profile.record p.Profiles.residues ~access:instr.Instr.id ~addr;
        let snap = Tracker.snapshot tracker in
        Memdep_profile.record_store p.Profiles.memdep ~instr:instr.Instr.id
          ~addr ~size ~snap;
        match obj with
        | Some o ->
            let off = Int64.to_int (Int64.sub addr o.Memory.base) in
            Points_to_profile.record p.Profiles.points_to ~instr:instr.Instr.id
              ~obj:o ~off ~size ~ctx;
            Lifetime_profile.record_access lifetime ~site:(Site.of_obj o)
              ~write:true ~snap
        | None -> ());
    on_ptr =
      (fun ~instr ~addr ~obj ~ctx ->
        Residue_profile.record p.Profiles.residues ~access:instr.Instr.id ~addr;
        match obj with
        | Some o ->
            let off = Int64.to_int (Int64.sub addr o.Memory.base) in
            Points_to_profile.record p.Profiles.points_to ~instr:instr.Instr.id
              ~obj:o ~off ~size:1 ~ctx
        | None -> ());
    on_alloc =
      (fun ~obj ->
        Lifetime_profile.record_alloc lifetime ~oid:obj.Memory.oid
          ~site:(Site.of_obj obj) ~snap:(Tracker.snapshot tracker));
    on_free =
      (fun ~obj -> Lifetime_profile.record_free lifetime ~oid:obj.Memory.oid);
  }

(** [profile ?inputs ?fuel ctx] profiles the module of [ctx] once per
    training input (default: one run with no input). *)
let profile ?(inputs : int64 array list = [ [||] ]) ?(fuel = 50_000_000)
    (ctx : Progctx.t) : Profiles.t =
  let p = Profiles.create ctx in
  List.iter
    (fun input ->
      new_run p;
      let tracker =
        Tracker.create ~loops_of:(fun fname -> Progctx.loops_of ctx fname)
      in
      let hooks = hooks_for p tracker in
      let (_ : Eval.result) = Eval.run ~hooks ~fuel ~input ctx.Progctx.m in
      Tracker.finish tracker)
    inputs;
  p

(** Convenience: build the context and profile in one step. *)
let profile_module ?inputs ?fuel (m : Irmod.t) : Profiles.t =
  profile ?inputs ?fuel (Progctx.build m)
