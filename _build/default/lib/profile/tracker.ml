(** Loop-invocation/iteration tracker.

    Listens to interpreter edge and call events and maintains, at every
    moment, the stack of active loop invocations (per call frame) with
    their current iteration numbers. All loop-aware profilers (lifetime,
    memory-dependence, time) are driven by this tracker's listeners and
    snapshots. Instructions executed in callees are attributed to the
    caller's active loops. *)

open Scaf_cfg

type active = {
  lid : string;
  invocation : int;
  mutable iteration : int;  (** 1-based *)
  loop : Loops.loop;
}

type frame = { fname : string; mutable lstack : active list  (** innermost first *) }

type t = {
  loops_of : string -> Loops.t option;
  mutable frames : frame list;  (** innermost first *)
  inv_counter : (string, int) Hashtbl.t;
  mutable cached_actives : active list;  (** all frames, innermost first *)
  mutable on_enter : (active -> unit) list;
  mutable on_iter : (active -> unit) list;  (** fires at every iteration start, including the first *)
  mutable on_exit : (active -> unit) list;
}

let create ~(loops_of : string -> Loops.t option) : t =
  {
    loops_of;
    frames = [];
    inv_counter = Hashtbl.create 32;
    cached_actives = [];
    on_enter = [];
    on_iter = [];
    on_exit = [];
  }

let add_enter_listener t f = t.on_enter <- t.on_enter @ [ f ]
let add_iter_listener t f = t.on_iter <- t.on_iter @ [ f ]
let add_exit_listener t f = t.on_exit <- t.on_exit @ [ f ]

let refresh_cache (t : t) =
  t.cached_actives <- List.concat_map (fun fr -> fr.lstack) t.frames

(** Active loop invocations, innermost first (across call frames). *)
let actives (t : t) : active list = t.cached_actives

(** Immutable snapshot [(lid, invocation, iteration)] for dependence
    attribution. *)
let snapshot (t : t) : (string * int * int) list =
  List.map (fun a -> (a.lid, a.invocation, a.iteration)) t.cached_actives

let call_enter (t : t) (fname : string) =
  t.frames <- { fname; lstack = [] } :: t.frames;
  refresh_cache t

let pop_loop (t : t) (fr : frame) =
  match fr.lstack with
  | a :: rest ->
      fr.lstack <- rest;
      List.iter (fun f -> f a) t.on_exit
  | [] -> ()

let call_exit (t : t) =
  (match t.frames with
  | fr :: rest ->
      while fr.lstack <> [] do
        pop_loop t fr
      done;
      t.frames <- rest
  | [] -> ());
  refresh_cache t

(** Unwind everything (end of run or abnormal exit). *)
let finish (t : t) =
  while t.frames <> [] do
    call_exit t
  done

let edge (t : t) ~(func : string) ~(src : string) ~(dst : string) =
  match t.frames with
  | [] -> ()
  | fr :: _ -> (
      if not (String.equal fr.fname func) then ()
      else
        match t.loops_of func with
        | None -> ()
        | Some li ->
            let cfg = li.Loops.cfg in
            let src_i = Cfg.index_of cfg src in
            let dst_i = Cfg.index_of cfg dst in
            ignore src_i;
            (* leave loops that do not contain the destination *)
            let rec pops () =
              match fr.lstack with
              | a :: _ when not (Loops.contains a.loop dst_i) ->
                  pop_loop t fr;
                  pops ()
              | _ -> ()
            in
            pops ();
            (* header? *)
            (match
               List.find_opt (fun (l : Loops.loop) -> l.Loops.header = dst_i) li.Loops.loops
             with
            | Some l -> (
                match fr.lstack with
                | a :: _ when String.equal a.lid l.Loops.lid ->
                    (* back edge: next iteration *)
                    a.iteration <- a.iteration + 1;
                    List.iter (fun f -> f a) t.on_iter
                | _ ->
                    let inv =
                      1
                      + Option.value ~default:0
                          (Hashtbl.find_opt t.inv_counter l.Loops.lid)
                    in
                    Hashtbl.replace t.inv_counter l.Loops.lid inv;
                    let a =
                      { lid = l.Loops.lid; invocation = inv; iteration = 1; loop = l }
                    in
                    fr.lstack <- a :: fr.lstack;
                    List.iter (fun f -> f a) t.on_enter;
                    List.iter (fun f -> f a) t.on_iter)
            | None -> ());
            refresh_cache t)
