(** Capture/escape analysis over SSA uses, shared by the reachability
    family (no-capture-source, no-capture-global, loop-fresh).

    A pointer value "escapes" when it (or a value derived from it through
    gep/select/arithmetic) is stored into memory, passed to a call that may
    retain it, returned, or carried across loop iterations through a phi. *)

open Scaf_ir
open Scaf_cfg

type capture = {
  cinstr : int;  (** the capturing instruction (or terminator) id *)
  ckind : [ `Stored | `Call_arg | `Returned | `Phi_carried ];
}

(* Registers derived from [root_reg] within [f], through gep / select /
   add / sub / phi. *)
let derived_regs (f : Func.t) (root_reg : string) : (string, unit) Hashtbl.t =
  let derived = Hashtbl.create 8 in
  Hashtbl.replace derived root_reg ();
  let changed = ref true in
  let uses_derived (i : Instr.t) =
    List.exists
      (fun v ->
        match v with Value.Reg r -> Hashtbl.mem derived r | _ -> false)
      (Instr.operands i)
  in
  while !changed do
    changed := false;
    Func.iter_instrs f (fun _ (i : Instr.t) ->
        match (i.Instr.dst, i.Instr.kind) with
        | Some d, (Instr.Gep _ | Instr.Select _ | Instr.Phi _ | Instr.Binop _)
          when (not (Hashtbl.mem derived d)) && uses_derived i ->
            Hashtbl.replace derived d ();
            changed := true
        | _ -> ())
  done;
  derived

(** [captures prog f root_reg] — every way the object behind [root_reg]
    may become reachable from memory, calls or later iterations.
    [retaining_call callee] decides whether a callee may retain its
    argument (defaults: [free] and readnone intrinsics do not). *)
let captures (prog : Progctx.t) (f : Func.t) (root_reg : string) : capture list
    =
  let m = prog.Progctx.m in
  let derived = derived_regs f root_reg in
  let is_derived = function
    | Value.Reg r -> Hashtbl.mem derived r
    | _ -> false
  in
  let li = Progctx.loops_of prog f.Func.name in
  let out = ref [] in
  Func.iter_instrs f (fun (b : Block.t) (i : Instr.t) ->
      match i.Instr.kind with
      | Instr.Store { value; _ } when is_derived value ->
          out := { cinstr = i.Instr.id; ckind = `Stored } :: !out
      | Instr.Call { callee; args } when List.exists is_derived args ->
          let benign =
            String.equal callee "free"
            || Irmod.has_attr m callee Func.Readnone
            || String.equal callee "print"
          in
          if not benign then
            out := { cinstr = i.Instr.id; ckind = `Call_arg } :: !out
      | Instr.Phi incoming -> (
          (* a phi carries the value across iterations when it sits at a
             loop header and a latch arm is derived; in-iteration merge
             phis (diamonds) are not captures *)
          match li with
          | None -> ()
          | Some li ->
              let cfg = li.Loops.cfg in
              let bi = Cfg.index_of cfg b.Block.label in
              List.iter
                (fun (l : Loops.loop) ->
                  if l.Loops.header = bi then
                    let latch_labels =
                      List.map (Cfg.label cfg) l.Loops.latches
                    in
                    if
                      List.exists
                        (fun (lbl, v) ->
                          List.mem lbl latch_labels && is_derived v)
                        incoming
                    then
                      out :=
                        { cinstr = i.Instr.id; ckind = `Phi_carried } :: !out)
                li.Loops.loops)
      | _ -> ());
  (* returns *)
  List.iter
    (fun (b : Block.t) ->
      match b.Block.term.Instr.tkind with
      | Instr.Ret (Some v) when is_derived v ->
          out := { cinstr = b.Block.term.Instr.tid; ckind = `Returned } :: !out
      | _ -> ())
    f.Func.blocks;
  List.rev !out

(** Captures of an allocation site given by its defining instruction id. *)
let captures_of_site (prog : Progctx.t) (site_id : int) : capture list option =
  match Progctx.occ prog site_id with
  | Some o -> (
      match o.Irmod.Index.instr.Instr.dst with
      | Some reg -> Some (captures prog o.Irmod.Index.func reg)
      | None -> None)
  | None -> None
