lib/analysis/ptrexpr.ml: Fmt Func Hashtbl Instr Int64 Irmod List Loops Progctx Scaf_cfg Scaf_ir Stdlib String Value
