lib/analysis/escape.ml: Block Cfg Func Hashtbl Instr Irmod List Loops Progctx Scaf_cfg Scaf_ir String Value
