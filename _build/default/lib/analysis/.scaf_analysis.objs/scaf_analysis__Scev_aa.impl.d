lib/analysis/scev_aa.ml: Affine Aresult Autil Module_api Progctx Query Response Scaf Scaf_cfg Scaf_ir String Value
