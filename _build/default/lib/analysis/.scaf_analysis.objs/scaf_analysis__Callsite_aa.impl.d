lib/analysis/callsite_aa.ml: Aresult Autil Func Instr Int64 Irmod Join List Module_api Option Progctx Query Response Scaf Scaf_cfg Scaf_ir Value
