lib/analysis/global_malloc_aa.ml: Aresult Assertion Globsum Instr Irmod Join List Module_api Progctx Ptrexpr Query Response Scaf Scaf_cfg Scaf_ir Value
