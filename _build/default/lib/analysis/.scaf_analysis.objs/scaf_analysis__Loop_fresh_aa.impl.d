lib/analysis/loop_fresh_aa.ml: Aresult Escape Hashtbl Loops Module_api Progctx Ptrexpr Query Response Scaf Scaf_cfg String
