lib/analysis/unique_paths_aa.ml: Aresult Func Instr Int64 Irmod Join List Loops Module_api Progctx Ptrexpr Query Response Scaf Scaf_cfg Scaf_ir String Value
