lib/analysis/no_capture_global_aa.ml: Aresult Assertion Escape Func Globsum Hashtbl Instr Irmod Join List Module_api Progctx Ptrexpr Query Response Scaf Scaf_cfg Scaf_ir String Value
