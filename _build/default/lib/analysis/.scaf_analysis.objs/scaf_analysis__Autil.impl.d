lib/analysis/autil.ml: Affine Aresult Func Instr Irmod Loops Progctx Query Response Scaf Scaf_cfg Scaf_ir String Value
