lib/analysis/no_capture_source_aa.ml: Aresult Assertion Escape Func Hashtbl Instr Irmod Join List Module_api Option Progctx Ptrexpr Query Response Scaf Scaf_cfg Scaf_ir Value
