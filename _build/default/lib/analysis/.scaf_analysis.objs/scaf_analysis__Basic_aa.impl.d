lib/analysis/basic_aa.ml: Aresult Autil Int64 Join Loops Module_api Progctx Ptrexpr Query Response Scaf Scaf_cfg Scaf_ir Value
