lib/analysis/disjoint_fields_aa.ml: Aresult Basic_aa Instr Int64 Module_api Progctx Ptrexpr Query Response Scaf Scaf_cfg Scaf_ir Value
