lib/analysis/globsum.ml: Func Hashtbl Instr Irmod List Option Progctx Ptrexpr Scaf_cfg Scaf_ir
