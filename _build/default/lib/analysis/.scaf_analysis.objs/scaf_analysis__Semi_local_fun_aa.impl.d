lib/analysis/semi_local_fun_aa.ml: Aresult Autil Func Hashtbl Instr Irmod Join List Module_api Option Progctx Ptrexpr Query Response Scaf Scaf_cfg Scaf_ir Set String Value
