lib/analysis/affine.ml: Hashtbl Induction Instr Int64 List Loops Option Progctx Scaf Scaf_cfg Scaf_ir Stdlib String Value
