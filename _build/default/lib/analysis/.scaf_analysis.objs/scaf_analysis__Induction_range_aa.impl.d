lib/analysis/induction_range_aa.ml: Affine Aresult Autil Int64 List Module_api Progctx Query Response Scaf Scaf_cfg Scaf_ir String Value
