lib/analysis/induction.ml: Block Cfg Hashtbl Instr Int64 List Loops Option Progctx Scaf_cfg Scaf_ir String Value
