lib/analysis/underlying_objects_aa.ml: Aresult List Module_api Progctx Ptrexpr Query Response Scaf Scaf_cfg
