lib/analysis/kill_flow_aa.ml: Aresult Autil Block Cfg Ctrl Fun Func Instr Irmod List Loops Module_api Progctx Query Reach Response Scaf Scaf_cfg Scaf_ir String
