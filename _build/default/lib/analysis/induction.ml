(** Induction-variable recognition: header phis whose in-loop arms advance
    the phi by a loop-invariant constant per iteration (through a bounded
    chain of adds/subs/geps). Works for both integer counters and pointer
    cursors. *)

open Scaf_ir
open Scaf_cfg

type iv = {
  reg : string;
  step : int64;  (** per-iteration increment *)
  init : Value.t;  (** value on loop entry *)
}

(* Does [v] equal [phi_reg + delta] for a constant delta, through a short
   def chain? *)
let rec step_from (prog : Progctx.t) (fname : string) (phi_reg : string)
    (depth : int) (v : Value.t) : int64 option =
  if depth > 6 then None
  else
    match v with
    | Value.Reg r when String.equal r phi_reg -> Some 0L
    | Value.Reg r -> (
        match Progctx.def prog fname r with
        | Some { Instr.kind = Instr.Binop (Instr.Add, a, Value.Int d); _ } ->
            Option.map (Int64.add d) (step_from prog fname phi_reg (depth + 1) a)
        | Some { Instr.kind = Instr.Binop (Instr.Add, Value.Int d, a); _ } ->
            Option.map (Int64.add d) (step_from prog fname phi_reg (depth + 1) a)
        | Some { Instr.kind = Instr.Binop (Instr.Sub, a, Value.Int d); _ } ->
            Option.map
              (fun s -> Int64.sub s d)
              (step_from prog fname phi_reg (depth + 1) a)
        | Some { Instr.kind = Instr.Gep { base; offset = Value.Int d }; _ } ->
            Option.map (Int64.add d) (step_from prog fname phi_reg (depth + 1) base)
        | _ -> None)
    | _ -> None

(** [of_loop prog ~fname li loop] — the basic induction variables of
    [loop]. *)
let of_loop (prog : Progctx.t) ~(fname : string) (li : Loops.t)
    (loop : Loops.loop) : iv list =
  let cfg = li.Loops.cfg in
  let header = Cfg.block cfg loop.Loops.header in
  let latch_labels = List.map (Cfg.label cfg) loop.Loops.latches in
  List.filter_map
    (fun (i : Instr.t) ->
      match (i.Instr.dst, i.Instr.kind) with
      | Some reg, Instr.Phi incoming -> (
          let latch_arms, entry_arms =
            List.partition (fun (l, _) -> List.mem l latch_labels) incoming
          in
          match (latch_arms, entry_arms) with
          | _ :: _, [ (_, init) ] -> (
              (* all latch arms must advance by the same constant *)
              let steps =
                List.map (fun (_, v) -> step_from prog fname reg 0 v) latch_arms
              in
              match steps with
              | Some s :: rest
                when List.for_all (fun x -> x = Some s) rest ->
                  Some { reg; step = s; init }
              | _ -> None)
          | _ -> None)
      | _ -> None)
    (Block.phis header)

(** [steps_of prog ~fname li loop] - map from iv register to step. *)
let steps_of (prog : Progctx.t) ~(fname : string) (li : Loops.t)
    (loop : Loops.loop) : (string, int64) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  List.iter (fun iv -> Hashtbl.replace tbl iv.reg iv.step) (of_loop prog ~fname li loop);
  tbl
