(** Pointer-expression resolution: trace SSA values to the set of base
    objects they can point into, with constant byte offsets when derivable.
    The underlying-objects, basic and reachability analyses are all built
    on this. *)

open Scaf_ir
open Scaf_cfg

type base =
  | BGlobal of string
  | BAlloca of int  (** alloca instruction id *)
  | BMalloc of int  (** malloc-like call instruction id *)
  | BArg of string * string  (** (function, parameter) — unknown caller object *)
  | BLoad of int  (** pointer loaded from memory (load instruction id) *)
  | BCall of int  (** result of a non-allocating call *)
  | BNull
  | BInt  (** forged from integer arithmetic *)
  | BUnknown

(** One resolution: a base and, when derivable, a constant byte offset. *)
type t = { base : base; off : int64 option }

let max_results = 16
let max_depth = 24

exception Too_complex

let add_off (o : int64 option) (d : int64 option) : int64 option =
  match (o, d) with Some a, Some b -> Some (Int64.add a b) | _ -> None

(* Constant folding for offsets. *)
let rec const_int (prog : Progctx.t) (fname : string) (depth : int)
    (v : Value.t) : int64 option =
  if depth <= 0 then None
  else
    match v with
    | Value.Int i -> Some i
    | Value.Null -> Some 0L
    | Value.Reg r -> (
        match Progctx.def prog fname r with
        | Some { Instr.kind = Instr.Binop (op, a, b); _ } -> (
            match
              ( const_int prog fname (depth - 1) a,
                const_int prog fname (depth - 1) b )
            with
            | Some x, Some y -> (
                match op with
                | Instr.Add -> Some (Int64.add x y)
                | Instr.Sub -> Some (Int64.sub x y)
                | Instr.Mul -> Some (Int64.mul x y)
                | Instr.Shl -> Some (Int64.shift_left x (Int64.to_int y))
                | Instr.And -> Some (Int64.logand x y)
                | Instr.Or -> Some (Int64.logor x y)
                | Instr.Xor -> Some (Int64.logxor x y)
                | _ -> None)
            | _ -> None)
        | _ -> None)
    | _ -> None

(** [resolve prog ~fname v] — all [(base, offset)] resolutions of [v].
    A cyclic phi (pointer induction) resolves to its loop-entry bases with
    the offset dropped (the offset varies per iteration). *)
let resolve (prog : Progctx.t) ~(fname : string) (v : Value.t) : t list =
  let in_progress : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec go depth (v : Value.t) : t list =
    if depth > max_depth then [ { base = BUnknown; off = None } ]
    else
      match v with
      | Value.Global g -> [ { base = BGlobal g; off = Some 0L } ]
      | Value.Null -> [ { base = BNull; off = Some 0L } ]
      | Value.Int _ -> [ { base = BInt; off = None } ]
      | Value.Undef -> [ { base = BUnknown; off = None } ]
      | Value.Reg r -> (
          match Progctx.def prog fname r with
          | None ->
              (* function parameter *)
              [ { base = BArg (fname, r); off = Some 0L } ]
          | Some def -> (
              match def.Instr.kind with
              | Instr.Alloca _ ->
                  [ { base = BAlloca def.Instr.id; off = Some 0L } ]
              | Instr.Call { callee; _ } ->
                  if Irmod.has_attr prog.Progctx.m callee Func.Malloc_like then
                    [ { base = BMalloc def.Instr.id; off = Some 0L } ]
                  else [ { base = BCall def.Instr.id; off = None } ]
              | Instr.Load _ -> [ { base = BLoad def.Instr.id; off = None } ]
              | Instr.Gep { base; offset } ->
                  let d = const_int prog fname 8 offset in
                  List.map
                    (fun (b : t) -> { b with off = add_off b.off d })
                    (go (depth + 1) base)
              | Instr.Binop (Instr.Add, a, b) -> (
                  (* pointer arithmetic spelled as integer add *)
                  match const_int prog fname 8 b with
                  | Some d ->
                      List.map
                        (fun (x : t) ->
                          { x with off = add_off x.off (Some d) })
                        (go (depth + 1) a)
                  | None -> (
                      match const_int prog fname 8 a with
                      | Some d ->
                          List.map
                            (fun (x : t) ->
                              { x with off = add_off x.off (Some d) })
                            (go (depth + 1) b)
                      | None -> [ { base = BUnknown; off = None } ]))
              | Instr.Binop (Instr.Sub, a, b) -> (
                  match const_int prog fname 8 b with
                  | Some d ->
                      List.map
                        (fun (x : t) ->
                          { x with off = add_off x.off (Some (Int64.neg d)) })
                        (go (depth + 1) a)
                  | None -> [ { base = BUnknown; off = None } ])
              | Instr.Binop _ | Instr.Icmp _ -> [ { base = BInt; off = None } ]
              | Instr.Select { if_true; if_false; _ } ->
                  go (depth + 1) if_true @ go (depth + 1) if_false
              | Instr.Phi incoming ->
                  if Hashtbl.mem in_progress r then
                    (* cycle: the recursive arm adds a varying offset *)
                    []
                  else begin
                    Hashtbl.replace in_progress r ();
                    let rs =
                      List.concat_map (fun (_, v) -> go (depth + 1) v) incoming
                    in
                    Hashtbl.remove in_progress r;
                    (* a cyclic phi's offset varies across iterations *)
                    let had_cycle =
                      List.exists
                        (fun (_, v) ->
                          match v with
                          | Value.Reg r' when String.equal r' r -> true
                          | Value.Reg r' -> (
                              (* one-step indirection through the cycle *)
                              match Progctx.def prog fname r' with
                              | Some
                                  {
                                    Instr.kind =
                                      ( Instr.Gep { base = Value.Reg rb; _ }
                                      | Instr.Binop (_, Value.Reg rb, _) );
                                    _;
                                  } ->
                                  String.equal rb r
                              | _ -> false)
                          | _ -> false)
                        incoming
                    in
                    if had_cycle then
                      List.map (fun (x : t) -> { x with off = None }) rs
                    else rs
                  end
              | Instr.Store _ -> [ { base = BUnknown; off = None } ]))
  in
  let rs =
    try
      let rs = go 0 v in
      if List.length rs > max_results then raise Too_complex else rs
    with Too_complex -> [ { base = BUnknown; off = None } ]
  in
  (* dedupe *)
  List.sort_uniq Stdlib.compare rs

(** Is the base a concrete, distinct object (as opposed to an opaque
    pointer of unknown provenance)? *)
let is_object = function
  | BGlobal _ | BAlloca _ | BMalloc _ | BNull -> true
  | BArg _ | BLoad _ | BCall _ | BInt | BUnknown -> false

(** Two *object* bases that differ denote distinct storage. (Two dynamic
    instances of one [BMalloc]/[BAlloca] site may still be distinct — that
    is temporal reasoning, left to callers.) *)
let distinct_objects (a : base) (b : base) : bool =
  is_object a && is_object b && a <> b

(** [single_object rs] - do all resolutions share one object base? *)
let single_object (rs : t list) : base option =
  match rs with
  | [] -> None
  | { base; _ } :: rest ->
      if is_object base && List.for_all (fun (x : t) -> x.base = base) rest
      then Some base
      else None

(** [all_objects rs] - are all resolutions concrete objects? *)
let all_objects (rs : t list) : bool =
  rs <> [] && List.for_all (fun (x : t) -> is_object x.base) rs

(** [defined_in_loop prog loops loop ~fname base] - is the base's defining
    instruction inside [loop] (a fresh instance per iteration)? *)
let defined_in_loop (prog : Progctx.t) (li : Loops.t) (loop : Loops.loop)
    (base : base) : bool =
  ignore prog;
  match base with
  | BAlloca id | BMalloc id -> Loops.contains_instr li loop id
  | _ -> false

let pp_base ppf = function
  | BGlobal g -> Fmt.pf ppf "@%s" g
  | BAlloca i -> Fmt.pf ppf "alloca#%d" i
  | BMalloc i -> Fmt.pf ppf "malloc#%d" i
  | BArg (f, p) -> Fmt.pf ppf "arg %%%s@@%s" p f
  | BLoad i -> Fmt.pf ppf "load#%d" i
  | BCall i -> Fmt.pf ppf "call#%d" i
  | BNull -> Fmt.string ppf "null"
  | BInt -> Fmt.string ppf "int"
  | BUnknown -> Fmt.string ppf "?"

let pp ppf (x : t) =
  Fmt.pf ppf "%a%a" pp_base x.base
    (Fmt.option (fun ppf o -> Fmt.pf ppf "+%Ld" o))
    x.off
