(** Module-wide store summaries for the reachability analyses: which stores
    can write into each global, what values they store, and which stores
    write through opaque pointers (and so could target anything).

    A *heap-confinement* fixpoint keeps the summary precise: a global is
    [heap_pure] when every value ever stored into it is a heap pointer
    (a fresh malloc, null, or a value loaded back from a heap-pure global).
    A store through a pointer loaded from a heap-pure global can only write
    heap objects — never a global — so it is excluded from every global's
    interference set. The fixpoint starts optimistic and retracts purity
    until stable. *)

open Scaf_ir
open Scaf_cfg

type store_info = {
  sid : int;  (** store instruction id *)
  sfname : string;
  value_res : Ptrexpr.t list;  (** resolutions of the stored value *)
  ptr_res : Ptrexpr.t list;  (** resolutions of the stored-to pointer *)
}

type t = {
  prog : Progctx.t;
  per_global : (string, store_info list) Hashtbl.t;
  wild_unconfined : store_info list;
      (** opaque-pointer stores that may target any global *)
  heap_pure : (string, unit) Hashtbl.t;
}

(* The global a load reads from, when that is a fixed slot. *)
let load_src_global (prog : Progctx.t) (l : int) : string option =
  match Progctx.occ prog l with
  | Some o -> (
      match o.Irmod.Index.instr.Instr.kind with
      | Instr.Load { ptr; _ } -> (
          match
            Ptrexpr.resolve prog ~fname:o.Irmod.Index.func.Func.name ptr
          with
          | [ { Ptrexpr.base = Ptrexpr.BGlobal g; _ } ] -> Some g
          | _ -> None)
      | _ -> None)
  | None -> None

let build (prog : Progctx.t) : t =
  let per_global = Hashtbl.create 16 in
  let wild = ref [] in
  Irmod.iter_instrs prog.Progctx.m (fun f _ (i : Instr.t) ->
      match i.Instr.kind with
      | Instr.Store { ptr; value; _ } ->
          let info =
            {
              sid = i.Instr.id;
              sfname = f.Func.name;
              value_res = Ptrexpr.resolve prog ~fname:f.Func.name value;
              ptr_res = Ptrexpr.resolve prog ~fname:f.Func.name ptr;
            }
          in
          let opaque =
            List.exists
              (fun (x : Ptrexpr.t) -> not (Ptrexpr.is_object x.Ptrexpr.base))
              info.ptr_res
          in
          if opaque then wild := info :: !wild
          else
            List.iter
              (fun (x : Ptrexpr.t) ->
                match x.Ptrexpr.base with
                | Ptrexpr.BGlobal g ->
                    Hashtbl.replace per_global g
                      (info
                      :: Option.value ~default:[]
                           (Hashtbl.find_opt per_global g))
                | _ -> ())
              info.ptr_res
      | _ -> ());
  let wild = !wild in
  (* Fixpoint: optimistically every global is heap-pure. *)
  let heap_pure : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (g : Irmod.global) -> Hashtbl.replace heap_pure g.Irmod.gname ())
    prog.Progctx.m.Irmod.globals;
  (* Is the stored value certainly a heap pointer (or null/int data)? *)
  let heap_value (x : Ptrexpr.t) : bool =
    match x.Ptrexpr.base with
    | Ptrexpr.BMalloc _ | Ptrexpr.BNull | Ptrexpr.BInt -> true
    | Ptrexpr.BLoad l -> (
        match load_src_global prog l with
        | Some h -> Hashtbl.mem heap_pure h
        | None -> false)
    | _ -> false
  in
  (* Is a wild store confined to heap objects? *)
  let confined (s : store_info) : bool =
    List.for_all
      (fun (x : Ptrexpr.t) ->
        Ptrexpr.is_object x.Ptrexpr.base
        ||
        match x.Ptrexpr.base with
        | Ptrexpr.BLoad l -> (
            match load_src_global prog l with
            | Some h -> Hashtbl.mem heap_pure h
            | None -> false)
        | _ -> false)
      s.ptr_res
  in
  let unconfined = ref [] in
  let changed = ref true in
  while !changed do
    changed := false;
    unconfined := List.filter (fun s -> not (confined s)) wild;
    Hashtbl.iter
      (fun g () ->
        let direct = Option.value ~default:[] (Hashtbl.find_opt per_global g) in
        let ok =
          List.for_all
            (fun (s : store_info) -> List.for_all heap_value s.value_res)
            (direct @ !unconfined)
        in
        if not ok then begin
          Hashtbl.remove heap_pure g;
          changed := true
        end)
      (Hashtbl.copy heap_pure)
  done;
  unconfined := List.filter (fun s -> not (confined s)) wild;
  { prog; per_global; wild_unconfined = !unconfined; heap_pure }

(** All stores that may write global [g] (direct plus unconfined wild). *)
let stores_to (t : t) (g : string) : store_info list =
  Option.value ~default:[] (Hashtbl.find_opt t.per_global g)
  @ t.wild_unconfined

(** Is every value held by [g] a heap pointer (or plain data)? *)
let heap_pure (t : t) (g : string) : bool = Hashtbl.mem t.heap_pure g

(** The malloc partition of [g]: if every store to [g] stores a value
    resolving to a single malloc site, the set of those sites — plus the
    list of offending stores that must be discharged (e.g. proven
    speculatively dead) for the property to hold. *)
let malloc_partition (t : t) (g : string) : int list * store_info list =
  let sites = ref [] and offenders = ref [] in
  List.iter
    (fun (s : store_info) ->
      match s.value_res with
      | [ { Ptrexpr.base = Ptrexpr.BMalloc m; _ } ] ->
          if not (List.mem m !sites) then sites := m :: !sites
      | [ { Ptrexpr.base = Ptrexpr.BNull; _ } ] -> ()
      | _ -> offenders := s :: !offenders)
    (stores_to t g);
  (List.sort compare !sites, List.rev !offenders)
