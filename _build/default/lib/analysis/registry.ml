(** The CAF memory-analysis ensemble: all 13 modules, in the default
    consultation order (cheap local reasoning first, module-wide
    reachability last — memory modules are assertion-free, so order only
    affects latency, §3.3). *)

let create (prog : Scaf_cfg.Progctx.t) : Scaf.Module_api.t list =
  [
    Basic_aa.create prog;
    Underlying_objects_aa.create prog;
    Callsite_aa.create prog;
    Disjoint_fields_aa.create prog;
    Scev_aa.create prog;
    Induction_range_aa.create prog;
    Loop_fresh_aa.create prog;
    Unique_paths_aa.create prog;
    Kill_flow_aa.create prog;
    Semi_local_fun_aa.create prog;
    Global_malloc_aa.create prog;
    No_capture_source_aa.create prog;
    No_capture_global_aa.create prog;
  ]
