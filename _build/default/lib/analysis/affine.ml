(** Scalar evolution of pointers, specialized to what loop dependence
    queries need: a pointer expression normalized, with respect to one
    loop, as

      [root + c + sum over r of coeff_r * r]

    where [root] is a loop-invariant pointer value, [c] a constant, and
    each [r] is either an induction variable of the loop (with known
    per-iteration step) or a loop-invariant register (step 0). The absolute
    values of the [r]s need not be known: comparisons between two affine
    forms cancel shared terms. *)

open Scaf_ir
open Scaf_cfg

type t = {
  root : Value.t;  (** loop-invariant pointer root *)
  c : int64;
  terms : (string * int64) list  (** register -> coefficient, sorted *)
}

type env = {
  prog : Progctx.t;
  fname : string;
  li : Loops.t;
  loop : Loops.loop;
  steps : (string, int64) Hashtbl.t;  (** iv -> per-iteration step *)
}

let make_env (prog : Progctx.t) ~(fname : string) (li : Loops.t)
    (loop : Loops.loop) : env =
  { prog; fname; li; loop; steps = Induction.steps_of prog ~fname li loop }

let is_invariant (e : env) (v : Value.t) : bool =
  match v with
  | Value.Int _ | Value.Null | Value.Global _ | Value.Undef -> true
  | Value.Reg r -> (
      match Progctx.def e.prog e.fname r with
      | None -> true (* parameter *)
      | Some def -> not (Loops.contains_instr e.li e.loop def.Instr.id))

let norm_terms terms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (r, k) ->
      Hashtbl.replace tbl r
        (Int64.add k (Option.value ~default:0L (Hashtbl.find_opt tbl r))))
    terms;
  Hashtbl.fold (fun r k acc -> if Int64.equal k 0L then acc else (r, k) :: acc) tbl []
  |> List.sort Stdlib.compare

(* Integer affine form: (constant, terms); no root. *)
let rec int_aff (e : env) (depth : int) (v : Value.t) :
    (int64 * (string * int64) list) option =
  if depth > 10 then None
  else
    match v with
    | Value.Int i -> Some (i, [])
    | Value.Null -> Some (0L, [])
    | Value.Reg r -> (
        if Hashtbl.mem e.steps r then
          (* induction variable: start-relative handling happens at
             comparison time; fold a constant init when available *)
          match Progctx.def e.prog e.fname r with
          | Some { Instr.kind = Instr.Phi _; _ } -> Some (0L, [ (r, 1L) ])
          | _ -> Some (0L, [ (r, 1L) ])
        else if is_invariant e v then Some (0L, [ (r, 1L) ])
        else
          match Progctx.def e.prog e.fname r with
          | Some { Instr.kind = Instr.Binop (op, a, b); _ } -> (
              match op with
              | Instr.Add -> (
                  match (int_aff e (depth + 1) a, int_aff e (depth + 1) b) with
                  | Some (c1, t1), Some (c2, t2) ->
                      Some (Int64.add c1 c2, norm_terms (t1 @ t2))
                  | _ -> None)
              | Instr.Sub -> (
                  match (int_aff e (depth + 1) a, int_aff e (depth + 1) b) with
                  | Some (c1, t1), Some (c2, t2) ->
                      Some
                        ( Int64.sub c1 c2,
                          norm_terms
                            (t1 @ List.map (fun (r, k) -> (r, Int64.neg k)) t2)
                        )
                  | _ -> None)
              | Instr.Mul -> (
                  match (int_aff e (depth + 1) a, int_aff e (depth + 1) b) with
                  | Some (c1, []), Some (c2, t2) ->
                      Some
                        ( Int64.mul c1 c2,
                          norm_terms (List.map (fun (r, k) -> (r, Int64.mul c1 k)) t2)
                        )
                  | Some (c1, t1), Some (c2, []) ->
                      Some
                        ( Int64.mul c1 c2,
                          norm_terms (List.map (fun (r, k) -> (r, Int64.mul c2 k)) t1)
                        )
                  | _ -> None)
              | Instr.Shl -> (
                  match (int_aff e (depth + 1) a, int_aff e (depth + 1) b) with
                  | Some (c1, t1), Some (c2, []) when c2 >= 0L && c2 < 32L ->
                      let f = Int64.shift_left 1L (Int64.to_int c2) in
                      Some
                        ( Int64.mul c1 f,
                          norm_terms (List.map (fun (r, k) -> (r, Int64.mul k f)) t1)
                        )
                  | _ -> None)
              | _ -> None)
          | _ -> None)
    | _ -> None

(** [of_value env v] — affine form of pointer [v] w.r.t. the loop, if it
    has one. *)
let of_value (e : env) (v : Value.t) : t option =
  let rec go depth (v : Value.t) : t option =
    if depth > 12 then None
    else if is_invariant e v then Some { root = v; c = 0L; terms = [] }
    else
      match v with
      | Value.Reg r -> (
          match Progctx.def e.prog e.fname r with
          | Some { Instr.kind = Instr.Gep { base; offset }; _ } -> (
              match (go (depth + 1) base, int_aff e 0 offset) with
              | Some p, Some (c, terms) ->
                  Some
                    {
                      p with
                      c = Int64.add p.c c;
                      terms = norm_terms (p.terms @ terms);
                    }
              | _ -> None)
          | Some { Instr.kind = Instr.Binop (Instr.Add, base, off); _ } -> (
              (* pointer + integer spelled as add *)
              match (go (depth + 1) base, int_aff e 0 off) with
              | Some p, Some (c, terms) ->
                  Some
                    {
                      p with
                      c = Int64.add p.c c;
                      terms = norm_terms (p.terms @ terms);
                    }
              | _ -> None)
          | Some { Instr.kind = Instr.Phi _; _ } when Hashtbl.mem e.steps r -> (
              (* pointer induction variable: root is its loop-entry value *)
              match
                List.find_opt
                  (fun (iv : Induction.iv) -> String.equal iv.Induction.reg r)
                  (Induction.of_loop e.prog ~fname:e.fname e.li e.loop)
              with
              | Some iv when is_invariant e iv.Induction.init -> (
                  match go (depth + 1) iv.Induction.init with
                  | Some p -> Some { p with terms = norm_terms ((r, 1L) :: p.terms) }
                  | None ->
                      Some
                        { root = iv.Induction.init; c = 0L; terms = [ (r, 1L) ] })
              | _ -> None)
          | _ -> None)
      | _ -> None
  in
  go 0 v

(** Per-iteration stride contributed by the terms: sum of coeff * step for
    induction terms. [None] when a term's evolution is unknown (a non-iv,
    non-invariant register slipped in — cannot happen by construction, but
    guard anyway). *)
let stride (e : env) (a : t) : int64 =
  List.fold_left
    (fun acc (r, k) ->
      match Hashtbl.find_opt e.steps r with
      | Some s -> Int64.add acc (Int64.mul k s)
      | None -> acc (* invariant register: step 0 *))
    0L a.terms

(* Difference of terms: a1 - a2, as (delta constant is separate). Returns
   None if the residual terms don't cancel (unknown relative value). *)
let terms_cancel (a1 : t) (a2 : t) : bool =
  norm_terms (a1.terms @ List.map (fun (r, k) -> (r, Int64.neg k)) a2.terms)
  = []

(** Compare two affine accesses over the *same root*.

    [tr] positions instance 1 relative to instance 2 ([Before]: instance 1
    executes in a strictly earlier iteration). Sizes are byte footprints.
    Returns [None] when undecidable. *)
let compare_access (e : env) ~(tr : Scaf.Query.temporal) (a1 : t) (s1 : int)
    (a2 : t) (s2 : int) : Scaf.Aresult.alias_res option =
  let open Scaf.Aresult in
  let s1L = Int64.of_int s1 and s2L = Int64.of_int s2 in
  let overlap (d : int64) =
    (* intervals [d, d+s1) and [0, s2) *)
    Int64.compare d s2L < 0 && Int64.compare (Int64.add d s1L) 0L > 0
  in
  let classify_const (d : int64) =
    if not (overlap d) then Some NoAlias
    else if Int64.equal d 0L && s1 = s2 then Some MustAlias
    else if Int64.compare d 0L >= 0 && Int64.compare (Int64.add d s1L) s2L <= 0
    then Some SubAlias (* 1 inside 2 *)
    else if Int64.compare d 0L <= 0 && Int64.compare (Int64.add d s1L) s2L >= 0
    then Some SubAlias (* 2 inside 1 *)
    else None (* partial overlap: stay conservative (MayAlias) *)
  in
  match tr with
  | Scaf.Query.Same ->
      if terms_cancel a1 a2 then classify_const (Int64.sub a1.c a2.c) else None
  | Scaf.Query.Before | Scaf.Query.After ->
      if not (terms_cancel a1 a2) then None
      else begin
        (* delta(dk) = c1 - c2 - S*dk (Before), + S*dk (After), dk >= 1 *)
        let s = stride e a1 in
        let dc = Int64.sub a1.c a2.c in
        if Int64.equal s 0L then classify_const dc
        else begin
          let sgn = if tr = Scaf.Query.Before then Int64.neg s else s in
          (* walk dk until delta passes beyond the window monotonically *)
          let rec probe dk =
            if dk > 4096 then None (* give up; treat as may-alias *)
            else begin
              let d = Int64.add dc (Int64.mul sgn (Int64.of_int dk)) in
              if overlap d then Some false (* some iteration pair overlaps *)
              else begin
                (* beyond the window moving away? window is (-s1, s2) *)
                let past =
                  if Int64.compare sgn 0L > 0 then Int64.compare d s2L >= 0
                  else Int64.compare (Int64.add d s1L) 0L <= 0
                in
                if past then Some true else probe (dk + 1)
              end
            end
          in
          match probe 1 with
          | Some true -> Some NoAlias
          | Some false -> None
          | None -> None
        end
      end
