(** Speculative assertions (§3.2.3, §4.2.1): the analysis-side description
    of a dynamically-enforced fact a client must validate to use a
    speculative answer. *)

type heap_kind = Read_only_heap | Short_lived_heap

(** What the client's instrumentation must realize (the "transformation
    part" of each decomposed speculative technique). *)
type payload =
  | Ctrl_block_dead of { fname : string; label : string; beacon : int }
      (** block never executes; insert a misspec beacon at its head *)
  | Value_predict of { load : int; value : int64 }
      (** the load always produces [value]; check equality after it *)
  | Residue of { access : int; allowed : int }
      (** the access's address keeps its 4-LSB residue in the 16-bit set *)
  | Heap_separate of {
      loop : string;
      sites : int list;  (** heap/stack allocation sites to re-allocate *)
      gsites : string list;  (** global objects to place in the heap *)
      heap : heap_kind;
      inside : int list;  (** accesses whose pointer must land in the heap *)
      outside : int list;  (** accesses whose pointer must avoid the heap *)
    }
  | Short_lived_balance of { loop : string; sites : int list }
      (** allocation/free balance checked at every iteration end *)
  | Points_to_objects of { instr : int }
      (** full points-to validation — prohibitively expensive (§4.2.3) *)
  | Mem_nodep of { src : int; dst : int; cross : bool }
      (** raw memory speculation, validated through shadow memory *)

type t = {
  module_id : string;  (** which speculation module produced it *)
  points : int list;  (** program points where validation attaches *)
  cost : float;  (** per-invocation latency x profiled execution count *)
  conflicts : int list;
      (** program points the transformation must modify; used to detect
          mutually-exclusive assertions ahead of time *)
  payload : payload;
}

(** Structural identity (module + payload); deduplicates options. *)
val equal : t -> t -> bool

val compare : t -> t -> int

(** [conflicts_with a b] — applying [a] prevents applying [b] or vice
    versa (§4.2.1 "Directives to Minimize Conflicts"). Irreflexive. *)
val conflicts_with : t -> t -> bool

val pp_payload : payload Fmt.t
val pp : t Fmt.t
