(** Response joining — Algorithm 2 of the paper. *)

type policy =
  | All  (** collect every way a query can be resolved (global reasoning) *)
  | Cheapest  (** keep only the locally optimal option set *)

val policy_name : policy -> string

(** [O1 + O2]: union of two assertion conjunctions, deduplicated. *)
val merge_option : Assertion.t list -> Assertion.t list -> Assertion.t list

val option_consistent : Assertion.t list -> bool
val dedup_options : Assertion.t list list -> Assertion.t list list

(** [S1 x S2]: all pairwise combinations whose assertions are mutually
    consistent; empty when every combination conflicts. *)
val product :
  Assertion.t list list -> Assertion.t list list -> Assertion.t list list

(** The side whose best option costs less. *)
val cheaper : Response.t -> Response.t -> Response.t

(** [join policy r1 r2] — Algorithm 2: higher precision wins; equal results
    merge per [policy]; [Mod] x [Ref] combines into [NoModRef] under the
    product of their assertion sets; contradictory equal-precision results
    resolve toward the assertion-free (or cheaper) side, warning when both
    are assertion-free (an analysis bug, §3.3). *)
val join : policy -> Response.t -> Response.t -> Response.t

val join_all : policy -> Response.t -> Response.t list -> Response.t
