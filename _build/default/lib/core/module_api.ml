(** The analysis-module interface.

    A module — memory analysis or speculation — answers queries through
    [answer]. *Factored* modules may formulate premise queries from an
    incoming query and submit them through [ctx.handle]; the Orchestrator
    routes premises through the whole ensemble, so a module never knows (or
    cares) who resolves them (§3.1). *)

type ctx = {
  prog : Scaf_cfg.Progctx.t;
  handle : Query.t -> Response.t;
      (** submit a premise query back to the Orchestrator *)
  depth : int;  (** premise nesting depth of the incoming query *)
}

type kind = Memory | Speculation

type t = {
  name : string;
  kind : kind;
  factored : bool;  (** does this module generate premise queries? *)
  answer : ctx -> Query.t -> Response.t;
}

(** "I cannot improve on the conservative answer." *)
let no_answer (q : Query.t) : Response.t = Response.bottom_for q

(** Wrap [answer] so that any non-bottom response carries the module's name
    in its provenance. *)
let make ~name ~kind ~factored answer : t =
  let answer ctx q =
    let r = answer ctx q in
    if Aresult.is_bottom r.Response.result && r.Response.options = [ [] ] then r
    else Response.add_provenance name r
  in
  { name; kind; factored; answer }
