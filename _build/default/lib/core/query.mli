(** SCAF's dependence-analysis query language (paper Figure 3).

    Two query types, as in LLVM/CAF: [alias] between two memory locations
    and [modref] between an instruction and a location or another
    instruction. SCAF's extensions: the temporal relation, the optional
    control-flow view ([Scaf_cfg.Ctrl.t] — possibly speculative dominator/
    post-dominator trees), the optional desired result (early bail-out for
    premise queries) and the optional calling context. *)

open Scaf_ir
open Scaf_cfg

(** Positions the first operand's dynamic instances relative to the
    second's: [Before]/[After] are cross-iteration (strictly earlier/later
    iteration of the scoping loop), [Same] is intra-iteration. *)
type temporal = Before | Same | After

(** The exact alias answer a factored module needs from a premise query;
    responders may bail out as soon as they know they cannot produce it. *)
type desired = DNoAlias | DMustAlias

(** A memory location: a pointer-valued SSA expression and a byte size,
    interpreted in function [fname]. *)
type memloc = { ptr : Value.t; size : int; fname : string }

type alias_q = {
  a1 : memloc;
  atr : temporal;
  a2 : memloc;
  aloop : string option;  (** loop id scoping the dynamic instances *)
  acc : int list option;  (** calling context *)
  adr : desired option;
}

type modref_target = TLoc of memloc | TInstr of int

type modref_q = {
  minstr : int;
  mtr : temporal;
  mtarget : modref_target;
  mloop : string option;
  mcc : int list option;
  mctrl : Ctrl.t option;  (** the (dt, pdt) parameters of Figure 3 *)
}

type t = Alias of alias_q | Modref of modref_q

val flip_temporal : temporal -> temporal
val temporal_name : temporal -> string

(** [alias ~fname ~tr (p1, s1) (p2, s2)] — may the two locations alias? *)
val alias :
  ?loop:string ->
  ?cc:int list ->
  ?dr:desired ->
  fname:string ->
  tr:temporal ->
  Value.t * int ->
  Value.t * int ->
  t

(** [modref_instrs ~tr i1 i2] — may [i1] read or write the memory footprint
    of [i2], with [i1] positioned [tr] relative to [i2]? *)
val modref_instrs :
  ?loop:string -> ?cc:int list -> ?ctrl:Ctrl.t -> tr:temporal -> int -> int -> t

val modref_loc :
  ?loop:string ->
  ?cc:int list ->
  ?ctrl:Ctrl.t ->
  tr:temporal ->
  int ->
  Value.t * int * string ->
  t

val is_alias : t -> bool

(** Strip the desired-result parameter (the Figure 10 ablation). *)
val without_desired : t -> t

val pp_memloc : memloc Fmt.t
val pp : t Fmt.t
