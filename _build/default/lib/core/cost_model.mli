(** Validation-cost model (§4.2.1): per-invocation latency estimates, in
    abstract cycle units scaled like the paper's Figure 7 — SCAF checks are
    a few ALU ops and a branch; the memory-speculation check adds
    shadow-memory traffic. An assertion's cost is the unit latency times
    the guarded operation's profiled execution count. *)

val ctrl_check : float
val residue_check : float
val value_check : float
val heap_check : float
val iter_check : float

(** Cost assigned to full points-to validation — "prohibitively high"
    (§4.2.3); rational clients never select it. *)
val prohibitive : float

val memspec_check : float
val scaled : float -> int -> float

(** Would a rational client pay this? ([cost < prohibitive]) *)
val affordable : float -> bool
