lib/core/orchestrator.mli: Hashtbl Join Module_api Query Response Scaf_cfg
