lib/core/response.ml: Aresult Assertion Fmt List Query Set String
