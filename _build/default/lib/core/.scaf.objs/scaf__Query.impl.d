lib/core/query.ml: Ctrl Fmt Scaf_cfg Scaf_ir Value
