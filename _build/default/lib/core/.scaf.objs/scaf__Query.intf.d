lib/core/query.mli: Ctrl Fmt Scaf_cfg Scaf_ir Value
