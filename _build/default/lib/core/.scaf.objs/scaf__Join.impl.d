lib/core/join.ml: Aresult Assertion List Logs Response Stdlib
