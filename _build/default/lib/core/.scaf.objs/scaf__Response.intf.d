lib/core/response.mli: Aresult Assertion Fmt Query Set
