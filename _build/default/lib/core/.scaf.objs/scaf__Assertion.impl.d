lib/core/assertion.ml: Fmt List Stdlib String
