lib/core/module_api.ml: Aresult Query Response Scaf_cfg
