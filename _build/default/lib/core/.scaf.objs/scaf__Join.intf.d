lib/core/join.mli: Assertion Response
