lib/core/orchestrator.ml: Aresult Hashtbl Join List Module_api Query Response Scaf_cfg Stdlib
