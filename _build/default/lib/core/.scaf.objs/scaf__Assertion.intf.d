lib/core/assertion.mli: Fmt
