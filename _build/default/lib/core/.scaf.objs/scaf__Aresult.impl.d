lib/core/aresult.ml: Fmt
