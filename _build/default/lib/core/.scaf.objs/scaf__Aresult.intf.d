lib/core/aresult.mli: Fmt
