lib/core/module_api.mli: Query Response Scaf_cfg
