(** Analysis results and their precision lattice (Figure 3 of the paper).

    Alias results include [SubAlias], SCAF's addition over LLVM/CAF: the
    first memory location is fully contained within the second (or vice
    versa — containment direction is recorded), which is stronger than
    LLVM's [PartialAlias] (mere overlap).

    Precision order (Algorithm 2):
    [pr NoAlias = pr MustAlias > pr SubAlias > pr MayAlias] and
    [pr NoModRef > pr Mod = pr Ref > pr ModRef]. *)

type alias_res = NoAlias | MustAlias | SubAlias | MayAlias
type modref_res = NoModRef | Mod | Ref | ModRef

type t = RAlias of alias_res | RModref of modref_res

let pr_alias = function
  | NoAlias | MustAlias -> 3
  | SubAlias -> 2
  | MayAlias -> 1

let pr_modref = function NoModRef -> 3 | Mod | Ref -> 2 | ModRef -> 1

(** Precision of a result; comparable only within the same query type. *)
let pr = function RAlias a -> pr_alias a | RModref m -> pr_modref m

(** Bottom (fully conservative) results. *)
let bottom_alias = RAlias MayAlias
let bottom_modref = RModref ModRef

let is_bottom = function
  | RAlias MayAlias | RModref ModRef -> true
  | _ -> false

(** Is this the most precise possible answer for its query type? *)
let is_definite (t : t) = pr t = 3

let alias_name = function
  | NoAlias -> "NoAlias"
  | MustAlias -> "MustAlias"
  | SubAlias -> "SubAlias"
  | MayAlias -> "MayAlias"

let modref_name = function
  | NoModRef -> "NoModRef"
  | Mod -> "Mod"
  | Ref -> "Ref"
  | ModRef -> "ModRef"

let pp ppf = function
  | RAlias a -> Fmt.string ppf (alias_name a)
  | RModref m -> Fmt.string ppf (modref_name m)

let equal (a : t) (b : t) = a = b
