(** Validation-cost model (§4.2.1 "Estimated Cost Computation").

    The cost of an assertion is a per-invocation latency estimate for its
    validation code multiplied by the profiled execution count of the
    guarded operation. Unit latencies below are in abstract cycle units,
    scaled relative to each other like the paper's Figure 7 code snippets:
    every SCAF check is a few ALU ops and a branch; the memory-speculation
    check adds shadow-memory loads/stores and metadata updates. *)

(** Control speculation: the branch is computed anyway; validation is a
    never-executed call on the dead path (§4.2.4 — "practically zero"). *)
let ctrl_check = 0.0

(** Residue check: two bitwise ops and a branch (Figure 7a shape). *)
let residue_check = 2.0

(** Value-prediction check: compare loaded value against the prediction. *)
let value_check = 2.0

(** Points-to heap check: mask, compare, branch (Figure 7a). *)
let heap_check = 3.0

(** Short-lived balance check, once per loop iteration. *)
let iter_check = 2.0

(** Full points-to object validation: "in general, expensive and
    complicated. Thus, we assign a prohibitively high cost" (§4.2.3). *)
let prohibitive = 1e12

(** Memory-speculation check per guarded access (Figure 7b): shadow-memory
    load + metadata check + metadata update + shadow store, and for
    cross-iteration dependences under parallelization, footprint
    communication between workers. *)
let memspec_check = 40.0

(** [scaled unit count] - total cost of a validation executed [count]
    times during profiling. *)
let scaled (unit : float) (count : int) : float = unit *. float_of_int count

(** A client-facing threshold: options costlier than this are not worth
    returning (used to discard points-to-predicated responses in the
    evaluation, §5). *)
let affordable (cost : float) : bool = cost < prohibitive
