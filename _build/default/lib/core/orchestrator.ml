(** The Orchestrator (§3.3, Algorithm 1).

    Coordinates all module interactions: forwards client queries to modules
    in configured order, joins their responses under the configured join
    policy, stops according to the bail-out policy, and routes premise
    queries back through the ensemble (with a recursion budget so factored
    modules cannot ping-pong forever).

    Configurability per the paper: module subset and order, join policy
    (ALL vs CHEAPEST), bail-out policy (definite-and-free, definite-at-any-
    cost, exhaustive), and the desired-result ablation switch. *)

type bailout =
  | Definite_free  (** stop at a maximally precise, assertion-free answer *)
  | Definite_any  (** stop at a maximally precise answer regardless of cost *)
  | Exhaustive  (** always consult every module *)
  | Timeout of float
      (** definite-free, plus a per-client-query budget in [clock] units
          (for clients sensitive to compilation time, §3.3) *)

type config = {
  modules : Module_api.t list;  (** consulted in order *)
  join_policy : Join.policy;
  bailout : bailout;
  max_premise_depth : int;
  respect_desired : bool;
      (** when false, the desired-result parameter is stripped from premise
          queries (the Figure 10 ablation) *)
  clock : (unit -> float) option;  (** for per-query latency statistics *)
}

let default_config (modules : Module_api.t list) : config =
  {
    modules;
    join_policy = Join.Cheapest;
    bailout = Definite_free;
    max_premise_depth = 4;
    respect_desired = true;
    clock = None;
  }

type stats = {
  mutable client_queries : int;
  mutable premise_queries : int;
  mutable module_evals : int;
  mutable latencies : float list;  (** per client query, reversed *)
}

type t = {
  config : config;
  prog : Scaf_cfg.Progctx.t;
  stats : stats;
  cache : (Query.t, Response.t) Hashtbl.t;
      (** structural memo for repeated (premise) queries; only queries
          without a control-flow view are keyed (views are closures) *)
  deadline : float option ref;
      (** per-client-query deadline when the bail-out policy is [Timeout] *)
}

let create (prog : Scaf_cfg.Progctx.t) (config : config) : t =
  {
    config;
    prog;
    stats =
      { client_queries = 0; premise_queries = 0; module_evals = 0; latencies = [] };
    cache = Hashtbl.create 1024;
    deadline = ref None;
  }

let cacheable (q : Query.t) : bool =
  match q with
  | Query.Alias _ -> true
  | Query.Modref m -> m.Query.mctrl = None

let should_bail (t : t) (r : Response.t) : bool =
  match t.config.bailout with
  | Definite_free -> Response.is_definite_free r
  | Definite_any -> Aresult.is_definite r.Response.result
  | Exhaustive -> false
  | Timeout _ -> (
      Response.is_definite_free r
      ||
      match (!(t.deadline), t.config.clock) with
      | Some d, Some clock -> clock () >= d
      | _ -> false)

let rec handle_at (t : t) (depth : int) (q : Query.t) : Response.t =
  match if cacheable q then Hashtbl.find_opt t.cache q else None with
  | Some r -> r
  | None -> handle_uncached t depth q

and handle_uncached (t : t) (depth : int) (q : Query.t) : Response.t =
  let ctx =
    {
      Module_api.prog = t.prog;
      depth;
      handle =
        (fun pq ->
          if depth + 1 > t.config.max_premise_depth then Response.bottom_for pq
          else begin
            t.stats.premise_queries <- t.stats.premise_queries + 1;
            let pq =
              if t.config.respect_desired then pq else Query.without_desired pq
            in
            handle_at t (depth + 1) pq
          end);
    }
  in
  let final = ref (Response.bottom_for q) in
  (try
     List.iter
       (fun (m : Module_api.t) ->
         t.stats.module_evals <- t.stats.module_evals + 1;
         let res = m.Module_api.answer ctx q in
         final := Join.join t.config.join_policy !final res;
         if should_bail t !final then raise Stdlib.Exit)
       t.config.modules
   with Stdlib.Exit -> ());
  (* memoize answers computed with (nearly) full premise budget *)
  if depth <= 1 && cacheable q then Hashtbl.replace t.cache q !final;
  !final

(** [handle t q] — Algorithm 1: resolve a client query. *)
let handle (t : t) (q : Query.t) : Response.t =
  t.stats.client_queries <- t.stats.client_queries + 1;
  match t.config.clock with
  | None -> handle_at t 0 q
  | Some clock ->
      let t0 = clock () in
      (match t.config.bailout with
      | Timeout budget -> t.deadline := Some (t0 +. budget)
      | _ -> ());
      let r = handle_at t 0 q in
      t.stats.latencies <- (clock () -. t0) :: t.stats.latencies;
      r

(** Latencies of all client queries so far, in query order. *)
let latencies (t : t) : float list = List.rev t.stats.latencies
