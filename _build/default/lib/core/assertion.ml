(** Speculative assertions (§3.2.3, §4.2.1).

    An assertion is the analysis-side description of a dynamically-enforced
    fact: which module produced it ([module_id]), where the client must
    insert validation ([points]), what that validation is expected to cost
    ([cost] — per-invocation latency x profiled execution count), which
    program points its transformation would modify ([conflicts]), and a
    machine-readable [payload] that the instrumentation pass (the
    "transformation part" of the decomposed speculative transformation)
    knows how to realize. *)

type heap_kind = Read_only_heap | Short_lived_heap

type payload =
  | Ctrl_block_dead of { fname : string; label : string; beacon : int }
      (** block [label] never executes; insert a misspec beacon at its head
          (program point [beacon]) *)
  | Value_predict of { load : int; value : int64 }
      (** load [load] always produces [value]; insert an equality check *)
  | Residue of { access : int; allowed : int }
      (** the address of [access] keeps its 4-LSB residues inside the
          16-bit set [allowed] *)
  | Heap_separate of {
      loop : string;
      sites : int list;  (** heap/stack allocation sites to re-allocate *)
      gsites : string list;  (** global objects to place in the heap *)
      heap : heap_kind;
      inside : int list;  (** accesses whose pointer must land in the heap *)
      outside : int list;  (** accesses whose pointer must avoid the heap *)
    }
      (** re-allocate objects of the allocation [sites] into a separate
          logical heap; guard pointers with heap(-absence) checks *)
  | Short_lived_balance of { loop : string; sites : int list }
      (** objects of [sites] die within each iteration of [loop]; check the
          allocation/free balance at iteration end *)
  | Points_to_objects of { instr : int }
      (** full points-to object validation for [instr]'s pointer —
          prohibitively expensive; never chosen by rational clients but
          replaceable by cheaper heap checks (§4.2.3) *)
  | Mem_nodep of { src : int; dst : int; cross : bool }
      (** raw memory speculation: the dependence [src] -> [dst] does not
          manifest; validate with shadow-memory tracking *)

type t = {
  module_id : string;
  points : int list;  (** program points where validation attaches *)
  cost : float;
  conflicts : int list;
      (** program points the transformation must modify (e.g. allocation
          sites being re-allocated) *)
  payload : payload;
}

(** Structural identity — used to deduplicate assertions inside options. *)
let equal (a : t) (b : t) =
  String.equal a.module_id b.module_id && a.payload = b.payload

let compare (a : t) (b : t) =
  Stdlib.compare (a.module_id, a.payload) (b.module_id, b.payload)

(** [conflicts_with a b]: applying [a] prevents applying [b] (or vice
    versa) because one's transformation modifies points the other needs
    intact (§4.2.1 "Directives to Minimize Conflicts"). *)
let conflicts_with (a : t) (b : t) : bool =
  (not (equal a b))
  && (List.exists (fun p -> List.mem p b.conflicts) a.conflicts
     || List.exists (fun p -> List.mem p b.points) a.conflicts
     || List.exists (fun p -> List.mem p a.points) b.conflicts)

let pp_payload ppf = function
  | Ctrl_block_dead { fname; label; _ } ->
      Fmt.pf ppf "block %s:%s never executes" fname label
  | Value_predict { load; value } ->
      Fmt.pf ppf "load %d always yields %Ld" load value
  | Residue { access; allowed } ->
      Fmt.pf ppf "access %d residues in %#x" access allowed
  | Heap_separate { loop; sites; heap; _ } ->
      Fmt.pf ppf "%s-separate sites [%a] for %s"
        (match heap with Read_only_heap -> "read-only" | Short_lived_heap -> "short-lived")
        (Fmt.list ~sep:Fmt.comma Fmt.int) sites loop
  | Short_lived_balance { loop; sites } ->
      Fmt.pf ppf "short-lived balance of [%a] in %s"
        (Fmt.list ~sep:Fmt.comma Fmt.int) sites loop
  | Points_to_objects { instr } -> Fmt.pf ppf "points-to objects of %d" instr
  | Mem_nodep { src; dst; cross } ->
      Fmt.pf ppf "no %s dep %d->%d"
        (if cross then "cross-iteration" else "intra-iteration")
        src dst

let pp ppf (a : t) =
  Fmt.pf ppf "[%s: %a (cost %.1f)]" a.module_id pp_payload a.payload a.cost
