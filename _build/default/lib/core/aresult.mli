(** Analysis results and their precision lattice (paper Figure 3).

    Alias results include [SubAlias], SCAF's addition over LLVM/CAF: one
    memory location is fully contained within the other — stronger than
    LLVM's [PartialAlias] (mere overlap). *)

type alias_res = NoAlias | MustAlias | SubAlias | MayAlias
type modref_res = NoModRef | Mod | Ref | ModRef

type t = RAlias of alias_res | RModref of modref_res

val pr_alias : alias_res -> int
val pr_modref : modref_res -> int

(** Precision of a result (Algorithm 2's [pr]):
    [pr NoAlias = pr MustAlias > pr SubAlias > pr MayAlias] and
    [pr NoModRef > pr Mod = pr Ref > pr ModRef]. Only comparable within one
    query type. *)
val pr : t -> int

(** Fully conservative results. *)
val bottom_alias : t

val bottom_modref : t
val is_bottom : t -> bool

(** Is this the most precise possible answer for its query type? *)
val is_definite : t -> bool

val alias_name : alias_res -> string
val modref_name : modref_res -> string
val pp : t Fmt.t
val equal : t -> t -> bool
