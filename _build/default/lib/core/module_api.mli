(** The analysis-module interface.

    A module — memory analysis or speculation — answers queries through
    [answer]. *Factored* modules may formulate premise queries from an
    incoming query and submit them through [ctx.handle]; the Orchestrator
    routes premises through the whole ensemble, so a module never knows who
    resolves them (§3.1). *)

type ctx = {
  prog : Scaf_cfg.Progctx.t;
  handle : Query.t -> Response.t;
      (** submit a premise query back to the Orchestrator *)
  depth : int;  (** premise nesting depth of the incoming query *)
}

type kind = Memory | Speculation

type t = {
  name : string;
  kind : kind;
  factored : bool;  (** does this module generate premise queries? *)
  answer : ctx -> Query.t -> Response.t;
}

(** "I cannot improve on the conservative answer." *)
val no_answer : Query.t -> Response.t

(** Build a module; every non-bottom answer automatically carries the
    module's name in its provenance. *)
val make :
  name:string ->
  kind:kind ->
  factored:bool ->
  (ctx -> Query.t -> Response.t) ->
  t
