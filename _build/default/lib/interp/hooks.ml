(** Instrumentation hooks for the interpreter.

    Profilers observe execution exclusively through these callbacks; the
    evaluator invokes them with enough context (instruction, resolved
    object, calling context) that no profiler needs to re-implement address
    resolution. *)

open Scaf_ir

type t = {
  on_block : Func.t -> Block.t -> unit;
      (** a block begins executing (after the edge hook) *)
  on_edge : src_term:int -> src:string -> dst:string -> func:Func.t -> unit;
      (** a control-flow edge is taken; [src_term] is the terminator id *)
  on_load :
    instr:Instr.t ->
    addr:int64 ->
    size:int ->
    value:int64 ->
    obj:Memory.obj option ->
    ctx:int list ->
    unit;
  on_store :
    instr:Instr.t ->
    addr:int64 ->
    size:int ->
    value:int64 ->
    obj:Memory.obj option ->
    ctx:int list ->
    unit;
  on_alloc : obj:Memory.obj -> unit;
  on_free : obj:Memory.obj -> unit;
  on_instr : Instr.t -> unit;  (** every executed instruction *)
  on_ptr :
    instr:Instr.t -> addr:int64 -> obj:Memory.obj option -> ctx:int list -> unit;
      (** a pointer-producing instruction (gep/alloca/malloc result) *)
  on_call_enter : Func.t -> ctx:int list -> unit;
      (** a user-function frame is pushed *)
  on_call_exit : Func.t -> unit;  (** a user-function frame is popped *)
}

let nop : t =
  {
    on_block = (fun _ _ -> ());
    on_edge = (fun ~src_term:_ ~src:_ ~dst:_ ~func:_ -> ());
    on_load = (fun ~instr:_ ~addr:_ ~size:_ ~value:_ ~obj:_ ~ctx:_ -> ());
    on_store = (fun ~instr:_ ~addr:_ ~size:_ ~value:_ ~obj:_ ~ctx:_ -> ());
    on_alloc = (fun ~obj:_ -> ());
    on_free = (fun ~obj:_ -> ());
    on_instr = (fun _ -> ());
    on_ptr = (fun ~instr:_ ~addr:_ ~obj:_ ~ctx:_ -> ());
    on_call_enter = (fun _ ~ctx:_ -> ());
    on_call_exit = (fun _ -> ());
  }

(** [combine a b] runs [a]'s callback then [b]'s for every event. *)
let combine (a : t) (b : t) : t =
  {
    on_block = (fun f blk -> a.on_block f blk; b.on_block f blk);
    on_edge =
      (fun ~src_term ~src ~dst ~func ->
        a.on_edge ~src_term ~src ~dst ~func;
        b.on_edge ~src_term ~src ~dst ~func);
    on_load =
      (fun ~instr ~addr ~size ~value ~obj ~ctx ->
        a.on_load ~instr ~addr ~size ~value ~obj ~ctx;
        b.on_load ~instr ~addr ~size ~value ~obj ~ctx);
    on_store =
      (fun ~instr ~addr ~size ~value ~obj ~ctx ->
        a.on_store ~instr ~addr ~size ~value ~obj ~ctx;
        b.on_store ~instr ~addr ~size ~value ~obj ~ctx);
    on_alloc = (fun ~obj -> a.on_alloc ~obj; b.on_alloc ~obj);
    on_free = (fun ~obj -> a.on_free ~obj; b.on_free ~obj);
    on_instr = (fun i -> a.on_instr i; b.on_instr i);
    on_ptr =
      (fun ~instr ~addr ~obj ~ctx ->
        a.on_ptr ~instr ~addr ~obj ~ctx;
        b.on_ptr ~instr ~addr ~obj ~ctx);
    on_call_enter =
      (fun f ~ctx ->
        a.on_call_enter f ~ctx;
        b.on_call_enter f ~ctx);
    on_call_exit = (fun f -> a.on_call_exit f; b.on_call_exit f);
  }

let combine_all (hs : t list) : t = List.fold_left combine nop hs
