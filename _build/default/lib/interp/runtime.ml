(** The speculation validation runtime (§4.2.5 and Figure 7).

    Clients that act on SCAF responses insert validation code; this module
    implements the semantics of those checks inside the interpreter, and is
    also what the Figure 7 microbenchmarks measure:

    - cheap checks: pointer-residue bit tests, points-to heap-tag tests,
      value-prediction equality tests, control-speculation "misspec beacons"
      on speculatively dead paths, short-lived liveness balance checks;
    - the expensive check: shadow-memory memory-speculation validation
      ([ms_read]/[ms_write]), which does metadata lookups and updates on
      every access. *)

exception Misspec of { tag : int64 }

let misspec ~(tag : int64) = raise (Misspec { tag })

type t = {
  mem : Memory.t;
  shadow : (int64, int64) Hashtbl.t;
      (** shadow memory: byte address -> last writer group *)
  tag_live : (int, int ref) Hashtbl.t;
      (** per-heap-tag count of live separated objects *)
  ms_forbidden : (int64 * int64, unit) Hashtbl.t;
      (** (writer group, reader group) pairs asserted dependence-free *)
  mutable cheap_checks : int;
  mutable expensive_checks : int;
}

let create (mem : Memory.t) : t =
  {
    mem;
    shadow = Hashtbl.create 1024;
    tag_live = Hashtbl.create 8;
    ms_forbidden = Hashtbl.create 16;
    cheap_checks = 0;
    expensive_checks = 0;
  }

(** Declare that no dependence from group [src] to group [dst] may
    manifest (memory-speculation setup, inserted at program entry). *)
let ms_forbid (t : t) ~(src : int64) ~(dst : int64) : unit =
  Hashtbl.replace t.ms_forbidden (src, dst) ()

(* ---- cheap checks ---- *)

(** Residue check: the pointer's 4 least-significant bits must be a member
    of the profiled residue set [allowed] (a 16-bit set). *)
let check_residue (t : t) ~(addr : int64) ~(allowed : int64) ~(tag : int64) :
    unit =
  t.cheap_checks <- t.cheap_checks + 1;
  let residue = Int64.to_int (Int64.logand addr 15L) in
  if Int64.logand (Int64.shift_right_logical allowed residue) 1L = 0L then
    misspec ~tag

(** Heap check: the object holding [addr] must have been separated into
    logical heap [heap_tag] (Figure 7a: [addr & MASK != EXPECTED]). *)
let check_heap (t : t) ~(addr : int64) ~(heap_tag : int) ~(tag : int64) : unit
    =
  t.cheap_checks <- t.cheap_checks + 1;
  match Memory.find_addr_opt t.mem addr with
  | Some (o, _) when o.Memory.heap_tag = heap_tag -> ()
  | _ -> misspec ~tag

(** Inverse heap check: misspeculate when the object holding [addr] *is* in
    logical heap [heap_tag] (guards writes against the read-only heap). *)
let check_not_heap (t : t) ~(addr : int64) ~(heap_tag : int) ~(tag : int64) :
    unit =
  t.cheap_checks <- t.cheap_checks + 1;
  match Memory.find_addr_opt t.mem addr with
  | Some (o, _) when o.Memory.heap_tag = heap_tag -> misspec ~tag
  | _ -> ()

(** Move the object holding [addr] to logical heap [heap_tag] — the runtime
    effect of re-allocating it to a separate heap at its allocation site. *)
let set_heap (t : t) ~(addr : int64) ~(heap_tag : int) : unit =
  match Memory.find_addr_opt t.mem addr with
  | Some (o, _) ->
      o.Memory.heap_tag <- heap_tag;
      let c =
        match Hashtbl.find_opt t.tag_live heap_tag with
        | Some c -> c
        | None ->
            let c = ref 0 in
            Hashtbl.replace t.tag_live heap_tag c;
            c
      in
      incr c
  | None -> ()

(** Called by the interpreter when a separated object dies. *)
let note_free (t : t) (o : Memory.obj) : unit =
  if o.Memory.heap_tag <> 0 then
    match Hashtbl.find_opt t.tag_live o.Memory.heap_tag with
    | Some c -> decr c
    | None -> ()

(** Value-prediction check (Figure: compare loaded value with prediction). *)
let check_value (t : t) ~(value : int64) ~(predicted : int64) ~(tag : int64) :
    unit =
  t.cheap_checks <- t.cheap_checks + 1;
  if not (Int64.equal value predicted) then misspec ~tag

(** Short-lived balance check at iteration end: every object separated into
    [heap_tag] must have been freed within the iteration. *)
let iter_check (t : t) ~(heap_tag : int) ~(tag : int64) : unit =
  t.cheap_checks <- t.cheap_checks + 1;
  match Hashtbl.find_opt t.tag_live heap_tag with
  | Some c when !c <> 0 -> misspec ~tag
  | _ -> ()

(* ---- the expensive check: memory speculation via shadow memory ---- *)

(** [ms_write] records the writing group on the written bytes, after
    checking that no forbidden output dependence manifests (Figure 7b:
    load shadow, check metadata, update metadata, store shadow). *)
let ms_write (t : t) ~(addr : int64) ~(size : int) ~(group : int64)
    ~(tag : int64) : unit =
  t.expensive_checks <- t.expensive_checks + 1;
  for k = 0 to size - 1 do
    let a = Int64.add addr (Int64.of_int k) in
    (match Hashtbl.find_opt t.shadow a with
    | Some g when Hashtbl.mem t.ms_forbidden (g, group) -> misspec ~tag
    | _ -> ());
    Hashtbl.replace t.shadow a group
  done

(** [ms_read] checks that the last writer of the read bytes is allowed to
    feed this reading group. *)
let ms_read (t : t) ~(addr : int64) ~(size : int) ~(group : int64)
    ~(tag : int64) : unit =
  t.expensive_checks <- t.expensive_checks + 1;
  for k = 0 to size - 1 do
    let a = Int64.add addr (Int64.of_int k) in
    match Hashtbl.find_opt t.shadow a with
    | Some g when Hashtbl.mem t.ms_forbidden (g, group) -> misspec ~tag
    | _ -> ()
  done
