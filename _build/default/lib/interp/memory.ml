(** Object-granular memory for the MIR interpreter.

    Every allocation (global, alloca, malloc) becomes an object with a
    unique id, a virtual base address and a byte payload. Addresses are
    dense enough for realistic pointer arithmetic *within* an object;
    objects are spaced apart so stray arithmetic traps instead of silently
    corrupting a neighbour. Loads and stores are little-endian. *)

type obj_kind =
  | KGlobal of string
  | KStack of int  (** alloca site: instruction id *)
  | KHeap of int  (** malloc/calloc site: instruction id *)

type obj = {
  oid : int;
  base : int64;
  size : int;
  kind : obj_kind;
  ctx : int list;  (** calling context at allocation (innermost first) *)
  data : Bytes.t;
  mutable live : bool;
  mutable heap_tag : int;
      (** logical heap for speculative separation; 0 = default heap *)
}

module Addr_map = Map.Make (Int64)

type t = {
  mutable next_base : int64;
  mutable by_base : obj Addr_map.t;
  objects : (int, obj) Hashtbl.t;
  mutable next_oid : int;
}

exception Trap of string

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

let create () =
  {
    next_base = 0x10000L;
    by_base = Addr_map.empty;
    objects = Hashtbl.create 64;
    next_oid = 0;
  }

let align16 n = Int64.logand (Int64.add n 15L) (Int64.lognot 15L)

(** [alloc t ~size ~kind ~ctx] creates a live, zero-initialized object. *)
let alloc (t : t) ~(size : int) ~(kind : obj_kind) ~(ctx : int list) : obj =
  if size < 0 then trap "allocation of negative size %d" size;
  let size = max size 1 in
  let oid = t.next_oid in
  t.next_oid <- oid + 1;
  let base = t.next_base in
  (* leave a 16-byte guard gap between objects *)
  t.next_base <- align16 (Int64.add base (Int64.of_int (size + 16)));
  let o =
    {
      oid;
      base;
      size;
      kind;
      ctx;
      data = Bytes.make size '\000';
      live = true;
      heap_tag = 0;
    }
  in
  t.by_base <- Addr_map.add base o t.by_base;
  Hashtbl.replace t.objects oid o;
  o

(** [find_addr t a] resolves address [a] to [(object, offset)]. Traps on
    wild or dangling pointers. *)
let find_addr (t : t) (a : int64) : obj * int =
  match Addr_map.find_last_opt (fun b -> Int64.compare b a <= 0) t.by_base with
  | None -> trap "wild pointer 0x%Lx" a
  | Some (_, o) ->
      let off = Int64.to_int (Int64.sub a o.base) in
      if off >= o.size then trap "pointer 0x%Lx past object %d" a o.oid
      else if not o.live then trap "use of freed object %d" o.oid
      else (o, off)

let find_addr_opt (t : t) (a : int64) : (obj * int) option =
  match Addr_map.find_last_opt (fun b -> Int64.compare b a <= 0) t.by_base with
  | Some (_, o) ->
      let off = Int64.to_int (Int64.sub a o.base) in
      if off < o.size && o.live then Some (o, off) else None
  | None -> None

let free (t : t) (a : int64) : obj =
  let o, off = find_addr t a in
  if off <> 0 then trap "free of interior pointer 0x%Lx" a;
  (match o.kind with
  | KHeap _ -> ()
  | _ -> trap "free of non-heap object %d" o.oid);
  o.live <- false;
  o

(** [load t a size] reads [size] bytes little-endian as a sign-agnostic
    integer (zero-extended). *)
let load (t : t) (a : int64) (size : int) : int64 =
  let o, off = find_addr t a in
  if off + size > o.size then
    trap "load of %d bytes at 0x%Lx overruns object %d" size a o.oid;
  let v = ref 0L in
  for k = size - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code (Bytes.get o.data (off + k))))
  done;
  !v

let store (t : t) (a : int64) (size : int) (value : int64) : unit =
  let o, off = find_addr t a in
  if off + size > o.size then
    trap "store of %d bytes at 0x%Lx overruns object %d" size a o.oid;
  let v = ref value in
  for k = 0 to size - 1 do
    Bytes.set o.data (off + k)
      (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
    v := Int64.shift_right_logical !v 8
  done

let memcpy (t : t) ~(dst : int64) ~(src : int64) ~(len : int) : unit =
  for k = 0 to len - 1 do
    let b = load t (Int64.add src (Int64.of_int k)) 1 in
    store t (Int64.add dst (Int64.of_int k)) 1 b
  done

let memset (t : t) ~(dst : int64) ~(byte : int64) ~(len : int) : unit =
  for k = 0 to len - 1 do
    store t (Int64.add dst (Int64.of_int k)) 1 byte
  done

(** [kill t o] marks a returning frame's alloca dead. *)
let kill (_t : t) (o : obj) : unit = o.live <- false
