lib/interp/eval.ml: Array Block Func Hashtbl Hooks Instr Int64 Irmod List Memory Option Runtime Scaf_ir String Value
