lib/interp/runtime.ml: Hashtbl Int64 Memory
