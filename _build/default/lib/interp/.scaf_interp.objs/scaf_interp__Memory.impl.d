lib/interp/memory.ml: Bytes Char Fmt Hashtbl Int64 Map
