lib/interp/hooks.ml: Block Func Instr List Memory Scaf_ir
