lib/speculation/sep_util.ml: Aresult Func Instr Int64 Irmod List Module_api Progctx Query Response Scaf Scaf_cfg Scaf_ir Scaf_profile Site Value
