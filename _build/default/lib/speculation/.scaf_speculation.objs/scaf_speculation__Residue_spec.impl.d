lib/speculation/residue_spec.ml: Aresult Assertion Autil Cost_model Func Instr Irmod Module_api Profiles Progctx Query Residue_profile Response Scaf Scaf_analysis Scaf_cfg Scaf_ir Scaf_profile Value
