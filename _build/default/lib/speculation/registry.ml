(** The speculation-module ensemble, in the default consultation order:
    cheapest average assertion cost first (§3.3 — "modules with the smaller
    average cost of speculative assertions are prioritized"); points-to
    last, since its own assertions are prohibitive and its value is as a
    premise resolver. *)

let create (profiles : Scaf_profile.Profiles.t) : Scaf.Module_api.t list =
  [
    Control_spec.create profiles;
    Value_pred_spec.create profiles;
    Residue_spec.create profiles;
    Read_only_spec.create profiles;
    Short_lived_spec.create profiles;
    Points_to_spec.create profiles;
  ]

(** The composition units for the *composition by confluence* baseline
    (§5): "each dependence query is passed to each module in isolation,
    and the confluence of individual results is returned". Only the memory
    analysis modules are grouped (as CAF), to avoid crediting this work for
    CAF's collaboration; every speculative technique stands alone, so e.g.
    the read-only module cannot lean on points-to answers the way it does
    inside SCAF. *)
let confluence_units (profiles : Scaf_profile.Profiles.t) :
    Scaf.Module_api.t list list =
  [
    [ Control_spec.create profiles ];
    [ Value_pred_spec.create profiles ];
    [ Residue_spec.create profiles ];
    [ Read_only_spec.create profiles ];
    [ Short_lived_spec.create profiles ];
    [ Points_to_spec.create profiles ];
  ]
