lib/report/experiments.ml: Benchmark Collab List Nodep Pdg Printf Profiler Profiles Registry Report Scaf_pdg Scaf_profile Scaf_suite Schemes
