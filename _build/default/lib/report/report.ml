(** ASCII rendering of the paper's tables and figures. *)

let hr width = String.make width '-'

(** Fixed-width table printer: [header] then [rows]. *)
let table ~(header : string list) ~(rows : string list list) : string =
  let cols =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w r -> max w (String.length (List.nth r i)))
          (String.length h) rows)
      header
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line cells =
    "| " ^ String.concat " | " (List.map2 pad cells cols) ^ " |"
  in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> hr (w + 2)) cols) ^ "+"
  in
  String.concat "\n"
    ([ sep; line header; sep ] @ List.map line rows @ [ sep ])

let pct f = Printf.sprintf "%5.1f" f
let pct2 f = Printf.sprintf "%6.2f" f

(** A horizontal ASCII bar scaled to [width] for a 0-100 value. *)
let bar ?(width = 40) (v : float) : string =
  let n = int_of_float (v /. 100.0 *. float_of_int width) in
  let n = max 0 (min width n) in
  String.make n '#' ^ String.make (width - n) '.'

(** Percentile of a sorted array. *)
let percentile (sorted : float array) (p : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (p /. 100.0 *. float_of_int (n - 1)) in
    sorted.(max 0 (min (n - 1) idx))

(** CDF summary of latencies (seconds): selected percentiles + geomean. *)
let cdf_summary (latencies : float list) : (string * float) list =
  let a = Array.of_list latencies in
  Array.sort compare a;
  let geo =
    match List.filter (fun x -> x > 0.0) latencies with
    | [] -> 0.0
    | xs ->
        exp
          (List.fold_left (fun s x -> s +. log x) 0.0 xs
          /. float_of_int (List.length xs))
  in
  [
    ("p10", percentile a 10.0);
    ("p25", percentile a 25.0);
    ("p50", percentile a 50.0);
    ("p75", percentile a 75.0);
    ("p90", percentile a 90.0);
    ("p95", percentile a 95.0);
    ("p99", percentile a 99.0);
    ("max", percentile a 100.0);
    ("geomean", geo);
  ]

(** Table 1 of the paper — qualitative; printed verbatim. *)
let table1 : string =
  table
    ~header:
      [
        "Approach";
        "Analysis decoupled from speculation";
        "Collab. among spec. techniques";
        "Collab. analysis <-> speculation";
      ]
    ~rows:
      [
        [ "Monolithic Integration"; "no"; "yes"; "no" ];
        [ "Composition by Confluence"; "no"; "no"; "yes" ];
        [ "Composition by Collaboration (SCAF)"; "yes"; "yes"; "yes" ];
      ]
