(** The evaluated schemes (§5): CAF (static only), composition by
    confluence (best prior), composition by collaboration (SCAF), the
    desired-result ablation of SCAF, memory speculation, and the observed
    dependences themselves. *)

open Scaf
open Scaf_profile

type resolver = {
  rname : string;
  resolve : Query.t -> Response.t;
  latencies : unit -> float list;  (** client-query latencies, if tracked *)
}

let orchestrate ?clock ?(respect_desired = true) prog modules : Orchestrator.t
    =
  Orchestrator.create prog
    { (Orchestrator.default_config modules) with
      Orchestrator.respect_desired;
      clock;
    }

(** CAF: collaboration among the 13 memory-analysis modules only. *)
let caf ?clock (profiles : Profiles.t) : resolver =
  let prog = profiles.Profiles.ctx in
  let o = orchestrate ?clock prog (Scaf_analysis.Registry.create prog) in
  {
    rname = "CAF";
    resolve = (fun q -> Orchestrator.handle o q);
    latencies = (fun () -> Orchestrator.latencies o);
  }

(** SCAF: full collaboration among memory analysis and speculation. *)
let scaf ?clock ?(respect_desired = true) (profiles : Profiles.t) : resolver =
  let prog = profiles.Profiles.ctx in
  let modules =
    Scaf_analysis.Registry.create prog
    @ Scaf_speculation.Registry.create profiles
  in
  let o = orchestrate ?clock ~respect_desired prog modules in
  {
    rname = (if respect_desired then "SCAF" else "SCAF w/o Desired Result");
    resolve = (fun q -> Orchestrator.handle o q);
    latencies = (fun () -> Orchestrator.latencies o);
  }

(** Composition by confluence: CAF as one collaborative component, each
    speculative technique self-contained, results joined. *)
let confluence ?clock (profiles : Profiles.t) : resolver =
  let prog = profiles.Profiles.ctx in
  let caf_o = orchestrate prog (Scaf_analysis.Registry.create prog) in
  let unit_os =
    List.map (orchestrate prog)
      (Scaf_speculation.Registry.confluence_units profiles)
  in
  let t0 = ref 0.0 in
  let lats = ref [] in
  let resolve q =
    (match clock with Some c -> t0 := c () | None -> ());
    let r =
      List.fold_left
        (fun acc o -> Join.join Join.Cheapest acc (Orchestrator.handle o q))
        (Orchestrator.handle caf_o q)
        unit_os
    in
    (match clock with Some c -> lats := (c () -. !t0) :: !lats | None -> ());
    r
  in
  {
    rname = "Confluence";
    resolve;
    latencies = (fun () -> List.rev !lats);
  }

(** Memory speculation: assert the absence of every dependence that did not
    manifest during profiling (loop-sensitive dependence profile), at
    shadow-memory validation cost. *)
let memory_speculation (profiles : Profiles.t) : resolver =
  let resolve (q : Query.t) : Response.t =
    match q with
    | Query.Alias _ -> Response.bottom_alias
    | Query.Modref mq -> (
        match (mq.Query.mloop, mq.Query.mtarget) with
        | Some lid, Query.TInstr i2 ->
            let cross =
              match mq.Query.mtr with
              | Query.Same -> false
              | Query.Before | Query.After -> true
            in
            let i1 = mq.Query.minstr in
            if
              Memdep_profile.observed profiles.Profiles.memdep ~lid ~src:i1
                ~dst:i2 ~cross
            then Response.bottom_modref
            else
              let count id =
                Residue_profile.exec_count profiles.Profiles.residues id
              in
              Response.speculative (Aresult.RModref Aresult.NoModRef)
                [
                  {
                    Assertion.module_id = "memory-speculation";
                    points = [ i1; i2 ];
                    cost =
                      Cost_model.scaled Cost_model.memspec_check
                        (count i1 + count i2);
                    conflicts = [];
                    payload = Assertion.Mem_nodep { src = i1; dst = i2; cross };
                  };
                ]
        | _ -> Response.bottom_modref)
  in
  { rname = "Memory Speculation"; resolve; latencies = (fun () -> []) }

(** Observed dependences: what actually manifested while profiling —
    the floor no speculative scheme can beat. *)
let observed (profiles : Profiles.t) : resolver =
  let resolve (q : Query.t) : Response.t =
    match q with
    | Query.Alias _ -> Response.bottom_alias
    | Query.Modref mq -> (
        match (mq.Query.mloop, mq.Query.mtarget) with
        | Some lid, Query.TInstr i2 ->
            let cross =
              match mq.Query.mtr with
              | Query.Same -> false
              | Query.Before | Query.After -> true
            in
            if
              Memdep_profile.observed profiles.Profiles.memdep ~lid
                ~src:mq.Query.minstr ~dst:i2 ~cross
            then Response.bottom_modref
            else Response.free (Aresult.RModref Aresult.NoModRef)
        | _ -> Response.bottom_modref)
  in
  { rname = "Observed"; resolve; latencies = (fun () -> []) }
