(** Table 2 accounting: which modules participate in the collaborations
    that make SCAF beat composition by confluence, at benchmark, loop and
    improved-query granularity. Participation is read off the provenance
    sets that responses accumulate as premise queries flow through the
    ensemble. *)

module Sset = Scaf.Response.Sset

let memory_module_names =
  [
    "basic-aa";
    "underlying-objects-aa";
    "callsite-aa";
    "disjoint-fields-aa";
    "scev-aa";
    "induction-range-aa";
    "loop-fresh-aa";
    "unique-paths-aa";
    "kill-flow-aa";
    "semi-local-fun-aa";
    "global-malloc-aa";
    "no-capture-source-aa";
    "no-capture-global-aa";
  ]

let speculation_module_names =
  [
    "control-spec";
    "value-pred";
    "pointer-residue";
    "read-only";
    "short-lived";
    "points-to";
  ]

(** Table rows, in the paper's order. *)
type row =
  | RCaf
  | RModule of string
  | RAmong_speculation
  | RBetween_caf_and_spec
  | RAll

let rows : (row * string) list =
  [
    (RCaf, "Memory Analysis (CAF)");
    (RModule "read-only", "Read-only");
    (RModule "value-pred", "Value Prediction");
    (RModule "pointer-residue", "Pointer-Residue");
    (RModule "control-spec", "Control Speculation");
    (RModule "points-to", "Points-to");
    (RModule "short-lived", "Short-lived");
    (RAmong_speculation, "Among Speculation Modules");
    (RBetween_caf_and_spec, "Between CAF and Speculation");
    (RAll, "All");
  ]

let has_memory (prov : Sset.t) =
  List.exists (fun n -> Sset.mem n prov) memory_module_names

let spec_count (prov : Sset.t) =
  List.length (List.filter (fun n -> Sset.mem n prov) speculation_module_names)

(** Does this provenance satisfy the row predicate? *)
let row_matches (r : row) (prov : Sset.t) : bool =
  match r with
  | RCaf -> has_memory prov
  | RModule m -> Sset.mem m prov
  | RAmong_speculation -> spec_count prov >= 2
  | RBetween_caf_and_spec -> has_memory prov && spec_count prov >= 1
  | RAll -> true

type improved = {
  ibench : string;
  iloop : string;
  iprov : Sset.t;  (** SCAF provenance of the improved query *)
}

(** Improved queries: disproven by SCAF (affordably) but not by
    confluence. *)
let improved_queries ~(bname : string) (scaf_r : Nodep.benchmark_report)
    (conf_r : Nodep.benchmark_report) : improved list =
  List.concat_map
    (fun (lid, (sr : Pdg.loop_report)) ->
      match List.assoc_opt lid conf_r.Nodep.per_loop with
      | None -> []
      | Some cr ->
          let conf_nodep =
            List.fold_left
              (fun acc (q : Pdg.qresult) ->
                if q.Pdg.nodep then (q.Pdg.dq :: acc) else acc)
              [] cr.Pdg.queries
          in
          List.filter_map
            (fun (q : Pdg.qresult) ->
              if q.Pdg.nodep && not (List.mem q.Pdg.dq conf_nodep) then
                Some
                  {
                    ibench = bname;
                    iloop = lid;
                    iprov = q.Pdg.resp.Scaf.Response.provenance;
                  }
              else None)
            sr.Pdg.queries)
    scaf_r.Nodep.per_loop

type coverage = {
  row_label : string;
  bench_pct : float;
  loop_pct : float;
  query_pct : float;
}

(** Aggregate Table 2 over all benchmarks. [all_loops] is the total number
    of evaluated hot loops; [benchmarks] the benchmark names. *)
let table2 ~(benchmarks : string list) ~(all_loops : (string * string) list)
    (improved : improved list) : coverage list =
  let nb = List.length benchmarks and nl = List.length all_loops in
  let nq = List.length improved in
  List.map
    (fun (r, row_label) ->
      let matching = List.filter (fun i -> row_matches r i.iprov) improved in
      let benches =
        List.sort_uniq compare (List.map (fun i -> i.ibench) matching)
      in
      let loops =
        List.sort_uniq compare
          (List.map (fun i -> (i.ibench, i.iloop)) matching)
      in
      {
        row_label;
        bench_pct =
          (if nb = 0 then 0.0
           else 100.0 *. float_of_int (List.length benches) /. float_of_int nb);
        loop_pct =
          (if nl = 0 then 0.0
           else 100.0 *. float_of_int (List.length loops) /. float_of_int nl);
        query_pct =
          (if nq = 0 then 0.0
           else
             100.0 *. float_of_int (List.length matching) /. float_of_int nq);
      })
    rows
