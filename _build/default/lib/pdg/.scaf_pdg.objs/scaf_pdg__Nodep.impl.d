lib/pdg/nodep.ml: List Pdg Profiles Scaf_profile Schemes Time_profile
