lib/pdg/schemes.ml: Aresult Assertion Cost_model Join List Memdep_profile Orchestrator Profiles Query Residue_profile Response Scaf Scaf_analysis Scaf_profile Scaf_speculation
