lib/pdg/pdg.ml: Aresult Block Cfg Cost_model Fun Func Instr Irmod List Loops Progctx Query Response Scaf Scaf_cfg Scaf_ir
