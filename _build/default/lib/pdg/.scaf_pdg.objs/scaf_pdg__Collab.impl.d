lib/pdg/collab.ml: List Nodep Pdg Scaf
