lib/suite/patterns.ml: Buffer List Printf
