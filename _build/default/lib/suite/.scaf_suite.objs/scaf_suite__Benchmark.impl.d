lib/suite/benchmark.ml: Patterns Scaf_ir
