lib/suite/registry.ml: Benchmark List Patterns String
