(** Loop-pattern generators for the synthetic SPEC stand-ins.

    The SPEC benchmarks are unavailable here (see DESIGN.md §2), so each
    evaluated benchmark is a composition of hot-loop *dependence idioms*
    distilled from what the paper's analyses exploit. Every generator emits
    one kernel function with one hot loop (>= 50 iterations per invocation)
    plus any init function and globals it needs. The idioms:

    - {!rare_kill}: a never-profiled path bypasses the killing store — the
      motivating example; SCAF wins via control-spec + kill-flow.
    - {!ro_table}: lookups in a heap table that is read-only in the loop,
      reachable only through opaque slot loads; SCAF wins via read-only +
      points-to.
    - {!short_lived}: a per-iteration heap buffer whose address escapes
      into a global slot; SCAF wins via short-lived + points-to.
    - {!dead_store_global_malloc}: a speculatively dead store poisons a
      global's malloc partition; SCAF wins via reachability analyses +
      control-spec premise discharge.
    - {!unique_path_chain}: the killer's must-alias premise needs a stable
      pointer slot whose only interfering store is speculatively dead; a
      three-deep premise chain (kill-flow -> unique-paths -> control-spec).
    - {!value_kill_output}: an output dependence between stores of a
      value-stable flag; SCAF wins via value-prediction kills + basic-aa.
    - {!residue_streams}: even/odd 16-byte phases with opaque indices;
      pointer-residue resolves it *in isolation* — confluence ties.
    - {!static_arrays}: textbook affine arrays; CAF resolves — ties.
    - {!indirect_index}: input-dependent disjoint regions no cheap
      technique can validate — only memory speculation covers them. *)

type piece = {
  globals : string;
  funcs : string;
  init_calls : string list;
  run_calls : string list;
}

let k = Printf.sprintf

(** The motivating-example idiom (Figures 1/5/6). *)
let rare_kill ~name ~iters ~gate : piece =
  {
    globals = k "global @%s_a 8\nglobal @%s_b 8\n" name name;
    init_calls = [];
    run_calls = [ k "call @%s_run()" name ];
    funcs =
      k
        {|
func @%s_run() {
entry:
  br loop
loop:
  %%i = phi [entry: 0], [latch: %%i2]
  %%r = call @input(%d)
  %%c = icmp ne %%r, 0
  condbr %%c, rare, common
rare:
  store 8, @%s_b, 7
  br cont
common:
  store 8, @%s_a, %%i
  br cont
cont:
  %%v = load 8, @%s_a
  %%w = load 8, @%s_b
  %%s = add %%v, %%w
  store 8, @%s_b, %%s
  br latch
latch:
  %%i2 = add %%i, 1
  store 8, @%s_a, %%i2
  %%d = icmp slt %%i2, %d
  condbr %%d, loop, exit
exit:
  %%f = load 8, @%s_b
  call @print(%%f)
  ret
}
|}
        name gate name name name name name name iters name;
  }

(** Read-only heap table behind opaque slot loads. [size] must be a
    multiple of 8; the fill loop strides by 32 to stay cold. *)
let ro_table ~name ~iters ~size : piece =
  let nslots = size / 8 in
  {
    globals =
      k "global @%s_tbl 8\nglobal @%s_out 8\nglobal @%s_acc 8\n" name name name;
    init_calls = [ k "call @%s_init()" name ];
    run_calls = [ k "call @%s_run()" name ];
    funcs =
      k
        {|
func @%s_init() {
entry:
  %%t = call @malloc(%d)
  store 8, @%s_tbl, %%t
  %%o = call @malloc(%d)
  store 8, @%s_out, %%o
  %%q = load 8, @%s_out
  store 8, @%s_out, %%q
  %%tp = load 8, @%s_tbl
  call @sink(%%tp)
  br fill
fill:
  %%i = phi [entry: 0], [fill: %%i2]
  %%p = gep %%t, %%i
  store 8, %%p, %%i
  %%i2 = add %%i, 32
  %%c = icmp slt %%i2, %d
  condbr %%c, fill, exit
exit:
  ret
}

func @%s_run() {
entry:
  br loop
loop:
  %%i = phi [loop: %%i2], [entry: 0]
  %%t = load 8, @%s_tbl
  %%o = load 8, @%s_out
  %%h = mul %%i, 37
  %%h2 = srem %%h, %d
  %%h3 = mul %%h2, 8
  %%p = gep %%t, %%h3
  %%v = load 8, %%p
  %%j = srem %%i, %d
  %%j3 = mul %%j, 8
  %%q = gep %%o, %%j3
  store 8, %%q, %%v
  %%a = load 8, @%s_acc
  %%a2 = add %%a, %%v
  store 8, @%s_acc, %%a2
  %%i2 = add %%i, 1
  %%c = icmp slt %%i2, %d
  condbr %%c, loop, exit
exit:
  %%f = load 8, @%s_acc
  call @print(%%f)
  ret
}
|}
        name size name size name name name name size name name name nslots
        nslots name name iters name;
  }

(** Per-iteration heap buffer escaping into a global slot. *)
let short_lived ~name ~iters : piece =
  {
    globals = k "global @%s_slot 8\nglobal @%s_acc 8\n" name name;
    init_calls = [];
    run_calls = [ k "call @%s_run()" name ];
    funcs =
      k
        {|
func @%s_run() {
entry:
  br loop
loop:
  %%i = phi [entry: 0], [loop: %%i2]
  %%b = call @malloc(64)
  store 8, @%s_slot, %%b
  %%p = load 8, @%s_slot
  %%j = srem %%i, 8
  %%j8 = mul %%j, 8
  %%q = gep %%p, %%j8
  store 8, %%q, %%i
  %%r = gep %%p, 8
  %%v = load 8, %%r
  %%a = load 8, @%s_acc
  %%a2 = add %%a, %%v
  store 8, @%s_acc, %%a2
  %%b2 = load 8, @%s_slot
  call @free(%%b2)
  %%i2 = add %%i, 1
  %%c = icmp slt %%i2, %d
  condbr %%c, loop, exit
exit:
  %%f = load 8, @%s_acc
  call @print(%%f)
  ret
}
|}
        name name name name name name iters name;
  }

(** Two malloc partitions; a speculatively dead store poisons one. *)
let dead_store_global_malloc ~name ~iters ~gate : piece =
  {
    globals = k "global @%s_sa 8\nglobal @%s_sb 8\nglobal @%s_acc 8\n" name name name;
    init_calls = [ k "call @%s_init()" name ];
    run_calls = [ k "call @%s_run()" name ];
    funcs =
      k
        {|
func @%s_init() {
entry:
  %%a = call @malloc(128)
  store 8, @%s_sa, %%a
  %%b = call @malloc(128)
  store 8, @%s_sb, %%b
  br fill
fill:
  %%i = phi [entry: 0], [fill: %%i2]
  %%p = gep %%b, %%i
  store 8, %%p, %%i
  %%i2 = add %%i, 32
  %%c = icmp slt %%i2, 128
  condbr %%c, fill, exit
exit:
  ret
}

func @%s_run() {
entry:
  br loop
loop:
  %%i = phi [entry: 0], [latch: %%i2]
  %%r = call @input(%d)
  %%c = icmp ne %%r, 0
  condbr %%c, rare, body
rare:
  %%x = load 8, @%s_sb
  %%x8 = gep %%x, 8
  store 8, @%s_sa, %%x8
  br body
body:
  %%pa = load 8, @%s_sa
  %%pb = load 8, @%s_sb
  %%j = srem %%i, 14
  %%j8 = mul %%j, 8
  %%qa = gep %%pa, %%j8
  store 8, %%qa, %%i
  %%qb = gep %%pb, %%j8
  %%v = load 8, %%qb
  %%a = load 8, @%s_acc
  %%a2 = add %%a, %%v
  store 8, @%s_acc, %%a2
  br latch
latch:
  %%i2 = add %%i, 1
  %%d = icmp slt %%i2, %d
  condbr %%d, loop, exit
exit:
  %%f = load 8, @%s_acc
  call @print(%%f)
  ret
}
|}
        name name name name gate name name name name name name iters name;
  }

(** Stable pointer slot + dead slot rewrite: a three-deep premise chain. *)
let unique_path_chain ~name ~iters ~gate : piece =
  {
    globals = k "global @%s_base 8\nglobal @%s_acc 8\n" name name;
    init_calls = [ k "call @%s_init()" name ];
    run_calls = [ k "call @%s_run()" name ];
    funcs =
      k
        {|
func @%s_init() {
entry:
  %%b = call @malloc(64)
  store 8, @%s_base, %%b
  ret
}

func @%s_run() {
entry:
  br loop
loop:
  %%i = phi [entry: 0], [latch: %%i2]
  %%g = call @input(%d)
  %%c = icmp ne %%g, 0
  condbr %%c, rare, cont
rare:
  %%nb = call @malloc(64)
  store 8, @%s_base, %%nb
  br cont
cont:
  %%p1 = load 8, @%s_base
  %%k1 = gep %%p1, 0
  store 8, %%k1, %%i
  %%p2 = load 8, @%s_base
  %%k2 = gep %%p2, 0
  %%v = load 8, %%k2
  %%a = load 8, @%s_acc
  %%a2 = add %%a, %%v
  store 8, @%s_acc, %%a2
  br latch
latch:
  %%i2 = add %%i, 1
  %%p3 = load 8, @%s_base
  %%k3 = gep %%p3, 0
  store 8, %%k3, %%i2
  %%d = icmp slt %%i2, %d
  condbr %%d, loop, exit
exit:
  %%f = load 8, @%s_acc
  call @print(%%f)
  ret
}
|}
        name name name gate name name name name name name iters name;
  }

(** Output dependence between stores of a value-stable flag. *)
let value_kill_output ~name ~iters : piece =
  {
    globals = k "global @%s_flag 8\nglobal @%s_acc 8\n" name name;
    init_calls = [];
    run_calls = [ k "call @%s_run()" name ];
    funcs =
      k
        {|
func @%s_run() {
entry:
  br loop
loop:
  %%i = phi [entry: 0], [loop: %%i2]
  %%z = icmp sgt %%i, 1000000
  store 8, @%s_flag, %%z
  %%fv = load 8, @%s_flag
  %%sel = select %%fv, 3, 1
  %%a = load 8, @%s_acc
  %%a2 = add %%a, %%sel
  store 8, @%s_acc, %%a2
  %%z2 = icmp sgt %%i, 2000000
  store 8, @%s_flag, %%z2
  %%i2 = add %%i, 1
  %%c = icmp slt %%i2, %d
  condbr %%c, loop, exit
exit:
  %%f = load 8, @%s_acc
  call @print(%%f)
  ret
}
|}
        name name name name name name iters name;
  }

(** Even/odd 16-byte phases with opaque indices: residue territory. *)
let residue_streams ~name ~iters ~gate : piece =
  {
    globals = k "global @%s_arr 256\nglobal @%s_acc 8\n" name name;
    init_calls = [];
    run_calls = [ k "call @%s_run()" name ];
    funcs =
      k
        {|
func @%s_run() {
entry:
  br loop
loop:
  %%i = phi [entry: 0], [loop: %%i2]
  %%e = call @input(%d)
  %%io = mul %%i, 48
  %%k0 = add %%io, %%e
  %%k2 = srem %%k0, 240
  %%p = gep @%s_arr, %%k2
  store 8, %%p, %%i
  %%j = mul %%i, 31
  %%j2 = srem %%j, 15
  %%j3 = mul %%j2, 16
  %%j4 = add %%j3, 8
  %%q = gep @%s_arr, %%j4
  %%v = load 8, %%q
  %%a = load 8, @%s_acc
  %%a2 = add %%a, %%v
  store 8, @%s_acc, %%a2
  %%i2 = add %%i, 1
  %%c = icmp slt %%i2, %d
  condbr %%c, loop, exit
exit:
  %%f = load 8, @%s_acc
  call @print(%%f)
  ret
}
|}
        name gate name name name name iters name;
  }

(** Textbook affine arrays: [x[i] = x[i] + y[i]] — CAF resolves it. The
    kernel runs twice (and [y] holds varying data) so no load is
    value-stable; a cold init loop fills [y]. *)
let static_arrays ~name ~size : piece =
  let iters = size / 8 in
  {
    globals = k "global @%s_x %d\nglobal @%s_y %d\n" name size name size;
    init_calls = [ k "call @%s_init()" name ];
    run_calls = [ k "call @%s_run()" name; k "call @%s_run()" name ];
    funcs =
      k
        {|
func @%s_init() {
entry:
  br fill
fill:
  %%i = phi [entry: 0], [fill: %%i2]
  %%p = gep @%s_y, %%i
  %%v = add %%i, 5
  store 8, %%p, %%v
  %%i2 = add %%i, 24
  %%c = icmp slt %%i2, %d
  condbr %%c, fill, exit
exit:
  ret
}

func @%s_run() {
entry:
  br loop
loop:
  %%i = phi [entry: 0], [loop: %%i2]
  %%i8 = mul %%i, 8
  %%p = gep @%s_x, %%i8
  %%q = gep @%s_y, %%i8
  %%v = load 8, %%q
  %%w = load 8, %%p
  %%s = add %%v, %%w
  store 8, %%p, %%s
  %%i2 = add %%i, 1
  %%c = icmp slt %%i2, %d
  condbr %%c, loop, exit
exit:
  %%f = load 8, @%s_x
  call @print(%%f)
  ret
}
|}
        name name size name name name iters name;
  }

(** Input-dependent disjoint regions only memory speculation covers. *)
let indirect_index ~name ~iters ~gate : piece =
  {
    globals = k "global @%s_arr 240\nglobal @%s_acc 8\n" name name;
    init_calls = [];
    run_calls = [ k "call @%s_run()" name ];
    funcs =
      k
        {|
func @%s_run() {
entry:
  br loop
loop:
  %%i = phi [entry: 0], [loop: %%i2]
  %%r1 = call @input(%d)
  %%h = mul %%i, 24
  %%h1 = add %%h, %%r1
  %%h2 = srem %%h1, 120
  %%p = gep @%s_arr, %%h2
  store 8, %%p, %%i
  %%g = mul %%i, 24
  %%g2 = srem %%g, 120
  %%g3 = add %%g2, 120
  %%q = gep @%s_arr, %%g3
  %%v = load 8, %%q
  %%a = load 8, @%s_acc
  %%a2 = add %%a, %%v
  store 8, @%s_acc, %%a2
  %%i2 = add %%i, 1
  %%c = icmp slt %%i2, %d
  condbr %%c, loop, exit
exit:
  %%f = load 8, @%s_acc
  call @print(%%f)
  ret
}
|}
        name gate name name name name iters name;
  }

(** Assemble a program from pieces: globals, the shared [@sink]
    declaration, all kernel functions, and a [@main] that runs every init
    then every kernel. *)
let compose (pieces : piece list) : string =
  let b = Buffer.create 4096 in
  List.iter (fun p -> Buffer.add_string b p.globals) pieces;
  Buffer.add_string b "\ndeclare @sink readonly\n";
  List.iter (fun p -> Buffer.add_string b p.funcs) pieces;
  Buffer.add_string b "\nfunc @main() {\nentry:\n";
  List.iter
    (fun p -> List.iter (fun c -> Buffer.add_string b ("  " ^ c ^ "\n")) p.init_calls)
    pieces;
  List.iter
    (fun p -> List.iter (fun c -> Buffer.add_string b ("  " ^ c ^ "\n")) p.run_calls)
    pieces;
  Buffer.add_string b "  ret\n}\n";
  Buffer.contents b
