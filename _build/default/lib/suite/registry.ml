(** The 16 evaluated benchmarks (§5 "Benchmark Selection"), one synthetic
    stand-in per C/C++ SPEC benchmark the paper evaluates. Each is composed
    of the hot-loop dependence idioms (see {!Patterns}) that characterize
    the original: e.g. the neural-net codes lean on read-only weight
    tables, the mcf codes on pointer-chasing through stable slots, and the
    compression codes saturate under cheap isolated speculation (the
    paper's Figure 9 outliers). *)

open Patterns

let spec_052_alvinn =
  Benchmark.make ~name:"052.alvinn"
    ~descr:
      "neural-net training: two read-only weight-table layers, a rare \
       saturation-reset path, and an affine update sweep"
    [
      ro_table ~name:"fwd" ~iters:120 ~size:512;
      ro_table ~name:"hid" ~iters:120 ~size:512;
      rare_kill ~name:"err" ~iters:120 ~gate:0;
      static_arrays ~name:"upd" ~size:800;
    ]

let spec_056_ear =
  Benchmark.make ~name:"056.ear"
    ~descr:
      "ear model: filterbank with even/odd channel phases and affine \
       sweeps; one small read-only gain table"
    [
      residue_streams ~name:"fb" ~iters:130 ~gate:0;
      static_arrays ~name:"win" ~size:880;
      ro_table ~name:"gain" ~iters:110 ~size:256;
    ]

let spec_129_compress =
  Benchmark.make ~name:"129.compress"
    ~descr:
      "LZW: hash probing with parity-split buckets, an affine copy, and a \
       rare table-clear path"
    [
      residue_streams ~name:"hash" ~iters:140 ~gate:0;
      static_arrays ~name:"copy" ~size:840;
      rare_kill ~name:"clear" ~iters:120 ~gate:0;
    ]

let spec_164_gzip =
  Benchmark.make ~name:"164.gzip"
    ~descr:
      "deflate: per-block short-lived window buffer, parity-split hash \
       chains, affine literal copy, and input-indexed history"
    [
      short_lived ~name:"blk" ~iters:110;
      residue_streams ~name:"chain" ~iters:120 ~gate:0;
      static_arrays ~name:"lit" ~size:800;
      indirect_index ~name:"hist" ~iters:110 ~gate:0;
    ]

let spec_175_vpr =
  Benchmark.make ~name:"175.vpr"
    ~descr:
      "placement: rare re-routing paths around killing updates, a poisoned \
       net partition, and a read-only timing table"
    [
      rare_kill ~name:"swap" ~iters:120 ~gate:0;
      dead_store_global_malloc ~name:"net" ~iters:110 ~gate:0;
      ro_table ~name:"tmg" ~iters:120 ~size:512;
      static_arrays ~name:"cost" ~size:800;
    ]

let spec_179_art =
  Benchmark.make ~name:"179.art"
    ~descr:
      "adaptive resonance: read-only weight matrix, affine activation \
       sweep, parity-split f1 layer"
    [
      ro_table ~name:"wgt" ~iters:130 ~size:512;
      static_arrays ~name:"act" ~size:880;
      residue_streams ~name:"f1" ~iters:120 ~gate:0;
    ]

let spec_181_mcf =
  Benchmark.make ~name:"181.mcf"
    ~descr:
      "min-cost flow: pointer chasing through a stable arc slot with a rare \
       rebase, a poisoned node partition, input-indexed buckets"
    [
      unique_path_chain ~name:"arc" ~iters:130 ~gate:0;
      dead_store_global_malloc ~name:"node" ~iters:110 ~gate:0;
      indirect_index ~name:"bkt" ~iters:110 ~gate:0;
    ]

let spec_183_equake =
  Benchmark.make ~name:"183.equake"
    ~descr:
      "earthquake FEM: read-only stiffness table, rare boundary fixup \
       around the killing store, affine time-step sweep"
    [
      ro_table ~name:"stif" ~iters:130 ~size:512;
      rare_kill ~name:"bnd" ~iters:120 ~gate:0;
      static_arrays ~name:"step" ~size:840;
    ]

let spec_429_mcf =
  Benchmark.make ~name:"429.mcf"
    ~descr:
      "min-cost flow (2006): two chased slots, a poisoned partition, a rare \
       pricing reset, and an affine refresh"
    [
      unique_path_chain ~name:"arc" ~iters:120 ~gate:0;
      dead_store_global_malloc ~name:"basket" ~iters:110 ~gate:0;
      rare_kill ~name:"price" ~iters:110 ~gate:0;
      static_arrays ~name:"rfr" ~size:800;
    ]

let spec_456_hmmer =
  Benchmark.make ~name:"456.hmmer"
    ~descr:
      "profile HMM: read-only transition table, rare underflow rescue, \
       value-stable termination flag, affine row sweep"
    [
      ro_table ~name:"trans" ~iters:120 ~size:512;
      rare_kill ~name:"resc" ~iters:110 ~gate:0;
      value_kill_output ~name:"term" ~iters:120;
      static_arrays ~name:"row" ~size:800;
    ]

let spec_462_libquantum =
  Benchmark.make ~name:"462.libquantum"
    ~descr:
      "quantum simulation: read-only gate table, short-lived scratch \
       register file per step, parity-split amplitudes"
    [
      ro_table ~name:"gate" ~iters:130 ~size:512;
      short_lived ~name:"scr" ~iters:120;
      residue_streams ~name:"amp" ~iters:120 ~gate:0;
    ]

let spec_470_lbm =
  Benchmark.make ~name:"470.lbm"
    ~descr:
      "lattice Boltzmann: poisoned src/dst grid partitions, read-only \
       collision weights, affine streaming sweep"
    [
      dead_store_global_malloc ~name:"grid" ~iters:120 ~gate:0;
      ro_table ~name:"coll" ~iters:120 ~size:512;
      static_arrays ~name:"strm" ~size:840;
    ]

let spec_482_sphinx3 =
  Benchmark.make ~name:"482.sphinx3"
    ~descr:
      "speech recognition: read-only dictionary and senone tables, rare \
       beam-reset around killing updates, input-indexed lattice"
    [
      ro_table ~name:"dict" ~iters:120 ~size:512;
      ro_table ~name:"sen" ~iters:110 ~size:512;
      rare_kill ~name:"beam" ~iters:110 ~gate:0;
      indirect_index ~name:"lat" ~iters:100 ~gate:0;
    ]

let spec_519_lbm =
  Benchmark.make ~name:"519.lbm"
    ~descr:
      "lattice Boltzmann (2017): read-only weights, rare boundary handling, \
       affine streaming"
    [
      ro_table ~name:"w" ~iters:130 ~size:512;
      rare_kill ~name:"bc" ~iters:120 ~gate:0;
      static_arrays ~name:"st" ~size:840;
    ]

let spec_525_x264 =
  Benchmark.make ~name:"525.x264"
    ~descr:
      "video encoding: value-stable slice flag, read-only quant tables, \
       short-lived per-macroblock scratch, affine SAD sweep"
    [
      value_kill_output ~name:"slice" ~iters:120;
      ro_table ~name:"quant" ~iters:110 ~size:512;
      short_lived ~name:"mb" ~iters:110;
      static_arrays ~name:"sad" ~size:800;
    ]

let spec_544_nab =
  Benchmark.make ~name:"544.nab"
    ~descr:
      "molecular dynamics: read-only force-field parameters, chased \
       neighbour-list slot, parity-split coordinates, affine integration"
    [
      ro_table ~name:"ff" ~iters:120 ~size:512;
      unique_path_chain ~name:"nbr" ~iters:110 ~gate:0;
      residue_streams ~name:"crd" ~iters:110 ~gate:0;
      static_arrays ~name:"intg" ~size:800;
    ]

(** All 16 benchmarks, in the paper's Figure 8 order. *)
let all : Benchmark.t list =
  [
    spec_052_alvinn;
    spec_056_ear;
    spec_129_compress;
    spec_164_gzip;
    spec_175_vpr;
    spec_179_art;
    spec_181_mcf;
    spec_183_equake;
    spec_429_mcf;
    spec_456_hmmer;
    spec_462_libquantum;
    spec_470_lbm;
    spec_482_sphinx3;
    spec_519_lbm;
    spec_525_x264;
    spec_544_nab;
  ]

let find (name : string) : Benchmark.t option =
  List.find_opt (fun (b : Benchmark.t) -> String.equal b.Benchmark.name name) all
