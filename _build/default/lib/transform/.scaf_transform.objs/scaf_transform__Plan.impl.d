lib/transform/plan.ml: Assertion Cost_model Float Fmt List Pdg Response Scaf Scaf_pdg
