lib/transform/apply.ml: Eval Instrument Irmod List Plan Runtime Scaf_interp Scaf_ir Scaf_pdg Scaf_profile
