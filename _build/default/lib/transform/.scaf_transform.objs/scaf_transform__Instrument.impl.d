lib/transform/instrument.ml: Assertion Block Cfg Func Hashtbl Instr Int64 Irmod List Loops Option Progctx Scaf Scaf_cfg Scaf_ir String Value
