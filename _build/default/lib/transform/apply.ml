(** End-to-end speculation: plan -> instrument -> run with recovery.

    Recovery model: the interpreter checkpoint is the program entry (the
    simplest of the process-based schemes of §4.2.5) — on misspeculation
    the original, uninstrumented program is re-executed from the start.
    Clients with finer-grained rollback would checkpoint per loop
    invocation; the correctness contract tested here is the same: the
    final result always equals the original program's. *)

open Scaf_ir
open Scaf_interp

type outcome = {
  result : Eval.result;
  misspeculated : bool;
  misspec_tag : int64 option;
}

(** [run_with_recovery ~original ~instrumented ?input ?fuel ()] — execute
    the speculative binary; fall back to the original on misspeculation. *)
let run_with_recovery ~(original : Irmod.t) ~(instrumented : Irmod.t)
    ?(input = [||]) ?fuel () : outcome =
  match Eval.run ?fuel ~input instrumented with
  | result -> { result; misspeculated = false; misspec_tag = None }
  | exception Runtime.Misspec { tag } ->
      let result = Eval.run ?fuel ~input original in
      { result; misspeculated = true; misspec_tag = Some tag }

(** Full pipeline for a profiled program: run the PDG client over the hot
    loops with SCAF, plan, instrument, and return the instrumented module
    with its plan. *)
let speculate (profiles : Scaf_profile.Profiles.t) : Plan.t * Irmod.t =
  let prog = profiles.Scaf_profile.Profiles.ctx in
  let resolver = Scaf_pdg.Schemes.scaf profiles in
  let reports =
    List.map
      (fun (lid, _) ->
        Scaf_pdg.Pdg.run_loop prog ~resolver:resolver.Scaf_pdg.Schemes.resolve
          lid)
      (Scaf_pdg.Nodep.hot_loop_weights profiles)
  in
  let plan = Plan.build reports in
  (plan, Instrument.apply prog plan.Plan.selected)
