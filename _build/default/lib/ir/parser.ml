(** Recursive-descent parser for the MIR textual format.

    Grammar (comments start with [;]; X,... denotes a comma-separated list):
    {v
    module  := { global | declare | func }
    global  := "global" @name INT [ "init" "[" INT ":" INT ,... "]" ]
    declare := "declare" @name { attr }
    func    := "func" @name "(" [ %reg ,... ] ")" "{" block { block } "}"
    block   := label ":" { instr } term
    instr   := [ %reg "=" ] op
    op      := "alloca" INT | "load" INT "," v | "store" INT "," v "," v
             | "gep" v "," v | BINOP v "," v | "icmp" CMP v "," v
             | "select" v "," v "," v | "call" @name "(" [ v ,... ] ")"
             | "phi" "[" label ":" v "]" ,...
    term    := "br" label | "condbr" v "," label "," label
             | "ret" [ v ] | "unreachable"
    v       := INT | "null" | "undef" | @name | %reg
    v}

    Instruction ids are assigned in source order, terminators included, and
    are unique across the module. *)

exception Parse_error of string * int  (** message, line *)

type state = { mutable toks : Lexer.located list; mutable next_id : int }

let error st msg =
  let line = match st.toks with { line; _ } :: _ -> line | [] -> 0 in
  raise (Parse_error (msg, line))

let peek st : Lexer.token =
  match st.toks with { tok; _ } :: _ -> tok | [] -> Lexer.EOF

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st (t : Lexer.token) =
  let got = peek st in
  if got = t then advance st
  else
    error st
      (Fmt.str "expected %a but found %a" Lexer.pp_token t Lexer.pp_token got)

let fresh_id st =
  let id = st.next_id in
  st.next_id <- id + 1;
  id

let ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t -> error st (Fmt.str "expected identifier, found %a" Lexer.pp_token t)

let global_name st =
  match peek st with
  | Lexer.GLOBAL s ->
      advance st;
      s
  | t -> error st (Fmt.str "expected @name, found %a" Lexer.pp_token t)

let reg_name st =
  match peek st with
  | Lexer.REG s ->
      advance st;
      s
  | t -> error st (Fmt.str "expected %%reg, found %a" Lexer.pp_token t)

let int_lit st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      i
  | t -> error st (Fmt.str "expected integer, found %a" Lexer.pp_token t)

let value st : Value.t =
  match peek st with
  | Lexer.INT i ->
      advance st;
      Value.Int i
  | Lexer.GLOBAL g ->
      advance st;
      Value.Global g
  | Lexer.REG r ->
      advance st;
      Value.Reg r
  | Lexer.IDENT "null" ->
      advance st;
      Value.Null
  | Lexer.IDENT "undef" ->
      advance st;
      Value.Undef
  | t -> error st (Fmt.str "expected value, found %a" Lexer.pp_token t)

let comma_sep st (elt : state -> 'a) : 'a list =
  let rec more acc =
    if peek st = Lexer.COMMA then (
      advance st;
      more (elt st :: acc))
    else List.rev acc
  in
  more [ elt st ]

let phi_arm st : string * Value.t =
  expect st Lexer.LBRACKET;
  let label = ident st in
  expect st Lexer.COLON;
  let v = value st in
  expect st Lexer.RBRACKET;
  (label, v)

(* Opcode keywords that terminate a block. *)
let is_term_opcode = function
  | "br" | "condbr" | "ret" | "unreachable" -> true
  | _ -> false

let instr_kind st (opcode : string) : Instr.kind =
  match opcode with
  | "alloca" -> Instr.Alloca { size = Int64.to_int (int_lit st) }
  | "load" ->
      let size = Int64.to_int (int_lit st) in
      expect st Lexer.COMMA;
      let ptr = value st in
      Instr.Load { ptr; size }
  | "store" ->
      let size = Int64.to_int (int_lit st) in
      expect st Lexer.COMMA;
      let ptr = value st in
      expect st Lexer.COMMA;
      let v = value st in
      Instr.Store { ptr; value = v; size }
  | "gep" ->
      let base = value st in
      expect st Lexer.COMMA;
      let offset = value st in
      Instr.Gep { base; offset }
  | "icmp" ->
      let c =
        match Instr.cmp_of_name (ident st) with
        | Some c -> c
        | None -> error st "bad icmp predicate"
      in
      let a = value st in
      expect st Lexer.COMMA;
      let b = value st in
      Instr.Icmp (c, a, b)
  | "select" ->
      let cond = value st in
      expect st Lexer.COMMA;
      let if_true = value st in
      expect st Lexer.COMMA;
      let if_false = value st in
      Instr.Select { cond; if_true; if_false }
  | "call" ->
      let callee = global_name st in
      expect st Lexer.LPAREN;
      let args =
        if peek st = Lexer.RPAREN then [] else comma_sep st value
      in
      expect st Lexer.RPAREN;
      Instr.Call { callee; args }
  | "phi" -> Instr.Phi (comma_sep st phi_arm)
  | op -> (
      match Instr.binop_of_name op with
      | Some b ->
          let a = value st in
          expect st Lexer.COMMA;
          let c = value st in
          Instr.Binop (b, a, c)
      | None -> error st (Printf.sprintf "unknown opcode %S" op))

let terminator st (opcode : string) : Instr.term_kind =
  match opcode with
  | "br" -> Instr.Br (ident st)
  | "condbr" ->
      let cond = value st in
      expect st Lexer.COMMA;
      let if_true = ident st in
      expect st Lexer.COMMA;
      let if_false = ident st in
      Instr.Condbr { cond; if_true; if_false }
  | "ret" -> (
      match peek st with
      | Lexer.INT _ | Lexer.GLOBAL _ | Lexer.REG _ | Lexer.IDENT "null"
      | Lexer.IDENT "undef" ->
          Instr.Ret (Some (value st))
      | _ -> Instr.Ret None)
  | "unreachable" -> Instr.Unreachable
  | op -> error st (Printf.sprintf "unknown terminator %S" op)

let block st : Block.t =
  let label = ident st in
  expect st Lexer.COLON;
  let instrs = ref [] in
  let rec stmts () =
    match peek st with
    | Lexer.REG dst -> (
        advance st;
        expect st Lexer.EQUALS;
        let opcode = ident st in
        if is_term_opcode opcode then
          error st "terminators cannot produce a value"
        else
          let kind = instr_kind st opcode in
          instrs := { Instr.id = fresh_id st; dst = Some dst; kind } :: !instrs;
          stmts ())
    | Lexer.IDENT opcode when is_term_opcode opcode ->
        advance st;
        let tkind = terminator st opcode in
        { Instr.tid = fresh_id st; tkind }
    | Lexer.IDENT opcode ->
        advance st;
        let kind = instr_kind st opcode in
        instrs := { Instr.id = fresh_id st; dst = None; kind } :: !instrs;
        stmts ()
    | t ->
        error st
          (Fmt.str "expected instruction or terminator, found %a"
             Lexer.pp_token t)
  in
  let term = stmts () in
  { Block.label; instrs = List.rev !instrs; term }

let func st : Func.t =
  let name = global_name st in
  expect st Lexer.LPAREN;
  let params = if peek st = Lexer.RPAREN then [] else comma_sep st reg_name in
  expect st Lexer.RPAREN;
  expect st Lexer.LBRACE;
  let blocks = ref [] in
  while peek st <> Lexer.RBRACE do
    blocks := block st :: !blocks
  done;
  expect st Lexer.RBRACE;
  if !blocks = [] then error st (Printf.sprintf "function @%s has no blocks" name);
  { Func.name; params; blocks = List.rev !blocks }

let global st : Irmod.global =
  let gname = global_name st in
  let gsize = Int64.to_int (int_lit st) in
  let ginit =
    if peek st = Lexer.IDENT "init" then (
      advance st;
      expect st Lexer.LBRACKET;
      let pair st =
        let off = Int64.to_int (int_lit st) in
        expect st Lexer.COLON;
        let v = int_lit st in
        (off, v)
      in
      let pairs = comma_sep st pair in
      expect st Lexer.RBRACKET;
      pairs)
    else []
  in
  { Irmod.gname; gsize; ginit }

let declare st : Func.decl =
  let dname = global_name st in
  let rec attrs acc =
    match peek st with
    | Lexer.IDENT a when Func.attr_of_name a <> None ->
        advance st;
        attrs (Option.get (Func.attr_of_name a) :: acc)
    | _ -> List.rev acc
  in
  { Func.dname; dattrs = attrs [] }

(** [parse src] parses a whole module from [src].
    @raise Parse_error on syntax errors
    @raise Lexer.Lex_error on lexical errors *)
let parse (src : string) : Irmod.t =
  let st = { toks = Lexer.tokenize src; next_id = 0 } in
  let globals = ref [] and decls = ref [] and funcs = ref [] in
  let rec toplevel () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.IDENT "global" ->
        advance st;
        globals := global st :: !globals;
        toplevel ()
    | Lexer.IDENT "declare" ->
        advance st;
        decls := declare st :: !decls;
        toplevel ()
    | Lexer.IDENT "func" ->
        advance st;
        funcs := func st :: !funcs;
        toplevel ()
    | t ->
        error st
          (Fmt.str "expected 'global', 'declare' or 'func', found %a"
             Lexer.pp_token t)
  in
  toplevel ();
  {
    Irmod.globals = List.rev !globals;
    decls = List.rev !decls;
    funcs = List.rev !funcs;
  }

(** [parse_exn_msg src] parses, turning errors into a human-readable
    [Failure] with line numbers; convenient in tests and examples. *)
let parse_exn_msg (src : string) : Irmod.t =
  try parse src with
  | Parse_error (msg, line) ->
      failwith (Printf.sprintf "parse error at line %d: %s" line msg)
  | Lexer.Lex_error (msg, line) ->
      failwith (Printf.sprintf "lex error at line %d: %s" line msg)
