(** A basic block: a label, a straight-line instruction list and one
    terminator. *)

type t = { label : string; instrs : Instr.t list; term : Instr.term }

(** [successors b] is the list of successor labels, in branch order. *)
let successors (b : t) : string list =
  match b.term.tkind with
  | Instr.Br l -> [ l ]
  | Instr.Condbr { if_true; if_false; _ } -> [ if_true; if_false ]
  | Instr.Ret _ | Instr.Unreachable -> []

(** [phis b] is the (possibly empty) leading run of phi instructions. *)
let phis (b : t) : Instr.t list =
  List.filter (fun (i : Instr.t) -> match i.kind with Phi _ -> true | _ -> false) b.instrs

let non_phis (b : t) : Instr.t list =
  List.filter (fun (i : Instr.t) -> match i.kind with Phi _ -> false | _ -> true) b.instrs

let pp ppf (b : t) =
  Fmt.pf ppf "%s:@." b.label;
  List.iter (fun i -> Fmt.pf ppf "  %a@." Instr.pp i) b.instrs;
  Fmt.pf ppf "  %a@." Instr.pp_term b.term
