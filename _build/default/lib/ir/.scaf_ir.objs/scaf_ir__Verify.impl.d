lib/ir/verify.ml: Block Fmt Func Hashtbl Instr Irmod List Option Printf String Value
