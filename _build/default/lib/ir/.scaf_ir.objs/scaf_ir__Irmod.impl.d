lib/ir/irmod.ml: Block Fmt Func Hashtbl Instr List Printf String
