lib/ir/builder.ml: Block Func Instr Irmod List Printf String Value
