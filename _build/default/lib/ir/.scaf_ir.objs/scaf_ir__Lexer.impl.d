lib/ir/lexer.ml: Buffer Fmt Int64 List Printf String
