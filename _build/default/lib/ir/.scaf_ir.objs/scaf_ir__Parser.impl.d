lib/ir/parser.ml: Block Fmt Func Instr Int64 Irmod Lexer List Option Printf Value
