lib/ir/verify.mli: Fmt Irmod
