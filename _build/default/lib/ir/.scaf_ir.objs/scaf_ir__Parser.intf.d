lib/ir/parser.mli: Irmod
