lib/ir/instr.ml: Fmt List Option Value
