lib/ir/value.ml: Fmt Int64 Stdlib String
