lib/ir/func.ml: Block Fmt Instr List Printf String
