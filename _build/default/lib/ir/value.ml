(** SSA values of the MIR.

    MIR is word-oriented: every register holds a 64-bit integer or a
    pointer. Sizes only matter at memory operations ([load]/[store] carry a
    byte width). This keeps the interpreter and the alias footprint
    arithmetic simple without losing anything the dependence analyses need. *)

type t =
  | Int of int64  (** integer constant *)
  | Null  (** the null pointer *)
  | Global of string  (** address of global [@name] *)
  | Reg of string  (** SSA register [%name] *)
  | Undef  (** undefined value *)

let int i = Int (Int64.of_int i)
let i64 i = Int i
let reg r = Reg r
let global g = Global g

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int64.equal x y
  | Null, Null | Undef, Undef -> true
  | Global x, Global y | Reg x, Reg y -> String.equal x y
  | _ -> false

let compare = Stdlib.compare

let is_const = function
  | Int _ | Null | Global _ | Undef -> true
  | Reg _ -> false

(** [as_reg v] is the register name if [v] is a register. *)
let as_reg = function Reg r -> Some r | _ -> None

let pp ppf = function
  | Int i -> Fmt.pf ppf "%Ld" i
  | Null -> Fmt.string ppf "null"
  | Global g -> Fmt.pf ppf "@%s" g
  | Reg r -> Fmt.pf ppf "%%%s" r
  | Undef -> Fmt.string ppf "undef"

let to_string v = Fmt.str "%a" pp v
