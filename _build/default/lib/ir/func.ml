(** MIR functions and external declarations.

    A definition has a body (the first block is the entry). A declaration is
    an external function known only through attributes, which the analyses
    use to summarize its memory behaviour (the MIR analogue of the C standard
    library features CAF reasons about). *)

type attr =
  | Readnone  (** accesses no memory visible to the program *)
  | Readonly  (** may read but never writes program memory *)
  | Malloc_like  (** returns a fresh, unaliased allocation *)
  | Free_like  (** deallocates its pointer argument *)
  | Argmemonly  (** touches only memory reachable from its arguments *)
  | Noreturn

type t = {
  name : string;
  params : string list;  (** parameter register names *)
  blocks : Block.t list;  (** first block is the entry *)
}

type decl = { dname : string; dattrs : attr list }

let attr_name = function
  | Readnone -> "readnone"
  | Readonly -> "readonly"
  | Malloc_like -> "malloc_like"
  | Free_like -> "free_like"
  | Argmemonly -> "argmemonly"
  | Noreturn -> "noreturn"

let attr_of_name = function
  | "readnone" -> Some Readnone
  | "readonly" -> Some Readonly
  | "malloc_like" -> Some Malloc_like
  | "free_like" -> Some Free_like
  | "argmemonly" -> Some Argmemonly
  | "noreturn" -> Some Noreturn
  | _ -> None

let entry (f : t) : Block.t =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg (Printf.sprintf "Func.entry: %s has no blocks" f.name)

let find_block (f : t) (label : string) : Block.t option =
  List.find_opt (fun (b : Block.t) -> String.equal b.label label) f.blocks

(** [iter_instrs f fn] applies [fn] to every non-terminator instruction. *)
let iter_instrs (f : t) (fn : Block.t -> Instr.t -> unit) : unit =
  List.iter (fun (b : Block.t) -> List.iter (fn b) b.instrs) f.blocks

let fold_instrs (f : t) (fn : 'a -> Block.t -> Instr.t -> 'a) (init : 'a) : 'a
    =
  List.fold_left
    (fun acc (b : Block.t) -> List.fold_left (fun acc i -> fn acc b i) acc b.instrs)
    init f.blocks

(** [instrs f] is every instruction of [f] in block order. *)
let instrs (f : t) : Instr.t list =
  List.concat_map (fun (b : Block.t) -> b.instrs) f.blocks

let pp ppf (f : t) =
  Fmt.pf ppf "func @%s(%a) {@."
    f.name
    (Fmt.list ~sep:Fmt.comma (fun ppf p -> Fmt.pf ppf "%%%s" p))
    f.params;
  List.iter (fun b -> Block.pp ppf b) f.blocks;
  Fmt.pf ppf "}@."

let pp_decl ppf (d : decl) =
  Fmt.pf ppf "declare @%s%a@." d.dname
    (Fmt.list ~sep:Fmt.nop (fun ppf a -> Fmt.pf ppf " %s" (attr_name a)))
    d.dattrs
