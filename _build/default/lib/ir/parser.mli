(** Recursive-descent parser for the MIR textual format.

    Grammar (comments start with [;]; X,... denotes a comma-separated list):
    {v
    module  := { global | declare | func }
    global  := "global" @name INT [ "init" "[" INT ":" INT ,... "]" ]
    declare := "declare" @name { attr }
    func    := "func" @name "(" [ %reg ,... ] ")" "{" block { block } "}"
    block   := label ":" { instr } term
    instr   := [ %reg "=" ] op
    op      := "alloca" INT | "load" INT "," v | "store" INT "," v "," v
             | "gep" v "," v | BINOP v "," v | "icmp" CMP v "," v
             | "select" v "," v "," v | "call" @name "(" [ v ,... ] ")"
             | "phi" "[" label ":" v "]" ,...
    term    := "br" label | "condbr" v "," label "," label
             | "ret" [ v ] | "unreachable"
    v       := INT | "null" | "undef" | @name | %reg
    v}

    Instruction ids are assigned in source order, terminators included, and
    are unique across the module. *)

exception Parse_error of string * int  (** message, line *)

(** [parse src] parses a whole module.
    @raise Parse_error on syntax errors
    @raise Lexer.Lex_error on lexical errors *)
val parse : string -> Irmod.t

(** Like {!parse} but turns errors into a readable [Failure] with line
    numbers; convenient in tests, examples and tools. *)
val parse_exn_msg : string -> Irmod.t
