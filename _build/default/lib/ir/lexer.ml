(** Hand-written lexer for the MIR textual format.

    Menhir is not available in this environment, so the frontend is a
    classic hand-rolled lexer + recursive-descent parser pair, which also
    gives precise error positions. Comments run from [;] to end of line. *)

type token =
  | IDENT of string
  | GLOBAL of string  (** [@name] *)
  | REG of string  (** [%name] *)
  | INT of int64
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | EQUALS
  | EOF

type located = { tok : token; line : int }

exception Lex_error of string * int  (** message, line *)

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | GLOBAL s -> Fmt.pf ppf "@%s" s
  | REG s -> Fmt.pf ppf "%%%s" s
  | INT i -> Fmt.pf ppf "%Ld" i
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | LBRACKET -> Fmt.string ppf "["
  | RBRACKET -> Fmt.string ppf "]"
  | COMMA -> Fmt.string ppf ","
  | COLON -> Fmt.string ppf ":"
  | EQUALS -> Fmt.string ppf "="
  | EOF -> Fmt.string ppf "<eof>"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '.'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** [tokenize src] lexes the whole input eagerly. *)
let tokenize (src : string) : located list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let emit tok = toks := { tok; line = !line } :: !toks in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let ident_from start =
    let b = Buffer.create 16 in
    pos := start;
    let rec go () =
      match peek () with
      | Some c when is_ident_char c ->
          Buffer.add_char b c;
          incr pos;
          go ()
      | _ -> Buffer.contents b
    in
    go ()
  in
  let int_from start =
    let b = Buffer.create 16 in
    pos := start;
    (match peek () with
    | Some '-' ->
        Buffer.add_char b '-';
        incr pos
    | _ -> ());
    let rec go () =
      match peek () with
      | Some c when is_digit c ->
          Buffer.add_char b c;
          incr pos;
          go ()
      | _ -> ()
    in
    go ();
    let s = Buffer.contents b in
    match Int64.of_string_opt s with
    | Some i -> i
    | None -> raise (Lex_error (Printf.sprintf "bad integer %S" s, !line))
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then (
      incr line;
      incr pos)
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = ';' then
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    else if c = '@' then (
      incr pos;
      match peek () with
      | Some c' when is_ident_start c' -> emit (GLOBAL (ident_from !pos))
      | _ -> raise (Lex_error ("expected name after '@'", !line)))
    else if c = '%' then (
      incr pos;
      match peek () with
      | Some c' when is_ident_char c' -> emit (REG (ident_from !pos))
      | _ -> raise (Lex_error ("expected name after '%'", !line)))
    else if is_digit c then emit (INT (int_from !pos))
    else if c = '-' && !pos + 1 < n && is_digit src.[!pos + 1] then
      emit (INT (int_from !pos))
    else if is_ident_start c then emit (IDENT (ident_from !pos))
    else (
      (match c with
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | '{' -> emit LBRACE
      | '}' -> emit RBRACE
      | '[' -> emit LBRACKET
      | ']' -> emit RBRACKET
      | ',' -> emit COMMA
      | ':' -> emit COLON
      | '=' -> emit EQUALS
      | _ ->
          raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line)));
      incr pos)
  done;
  emit EOF;
  List.rev !toks
