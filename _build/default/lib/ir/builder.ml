(** Programmatic construction of MIR modules.

    The builder assigns fresh SSA register names and instruction ids, and is
    the API used by tests, generated workloads and the instrumentation pass.
    Textual programs (the benchmark suite) go through {!Parser} instead. *)

type t = {
  mutable globals : Irmod.global list;
  mutable decls : Func.decl list;
  mutable funcs : Func.t list;
  mutable next_id : int;
  mutable next_reg : int;
}

type fbuilder = {
  parent : t;
  fname : string;
  params : string list;
  mutable blocks : (string * Instr.t list ref * Instr.term option ref) list;
  mutable current : (Instr.t list ref * Instr.term option ref) option;
}

let create () =
  { globals = []; decls = []; funcs = []; next_id = 0; next_reg = 0 }

(** [next_id_after m] is a fresh-id floor strictly above every id in [m];
    instrumentation passes seed their id counter with it. *)
let next_id_after (m : Irmod.t) : int =
  let top = ref 0 in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          List.iter (fun (i : Instr.t) -> if i.id >= !top then top := i.id + 1) b.instrs;
          if b.term.tid >= !top then top := b.term.tid + 1)
        f.blocks)
    m.funcs;
  !top

let fresh_id (b : t) =
  let id = b.next_id in
  b.next_id <- id + 1;
  id

let fresh_reg (b : t) =
  let r = b.next_reg in
  b.next_reg <- r + 1;
  Printf.sprintf "t%d" r

let add_global (b : t) ?(init = []) name size =
  b.globals <- { Irmod.gname = name; gsize = size; ginit = init } :: b.globals

let add_decl (b : t) name attrs =
  b.decls <- { Func.dname = name; dattrs = attrs } :: b.decls

let start_func (b : t) name params : fbuilder =
  { parent = b; fname = name; params; blocks = []; current = None }

(** [block fb label] starts (or re-enters is an error) block [label];
    subsequent emissions append to it. *)
let block (fb : fbuilder) label =
  if List.exists (fun (l, _, _) -> String.equal l label) fb.blocks then
    invalid_arg (Printf.sprintf "Builder.block: duplicate label %s" label);
  let instrs = ref [] and term = ref None in
  fb.blocks <- fb.blocks @ [ (label, instrs, term) ];
  fb.current <- Some (instrs, term)

let emitting fb =
  match fb.current with
  | Some (instrs, term) ->
      if !term <> None then
        invalid_arg "Builder: emitting after block terminator";
      instrs
  | None -> invalid_arg "Builder: no current block (call Builder.block first)"

(** [emit fb ?dst kind] appends an instruction, returning its result value
    (a fresh register if [dst] is omitted and the opcode produces one). *)
let emit (fb : fbuilder) ?dst (kind : Instr.kind) : Value.t =
  let instrs = emitting fb in
  let produces =
    match kind with Instr.Store _ -> false | Instr.Call { callee; _ } ->
      (* calls to void intrinsics still get a dst only when requested *)
      ignore callee;
      true
    | _ -> true
  in
  let dst =
    match dst with
    | Some d -> Some d
    | None -> if produces then Some (fresh_reg fb.parent) else None
  in
  let i = { Instr.id = fresh_id fb.parent; dst; kind } in
  instrs := i :: !instrs;
  match dst with Some d -> Value.Reg d | None -> Value.Undef

let emit_void (fb : fbuilder) (kind : Instr.kind) : unit =
  let instrs = emitting fb in
  let i = { Instr.id = fresh_id fb.parent; dst = None; kind } in
  instrs := i :: !instrs

let alloca fb ~size = emit fb (Instr.Alloca { size })
let load fb ~size ptr = emit fb (Instr.Load { ptr; size })
let store fb ~size ~ptr ~value = emit_void fb (Instr.Store { ptr; value; size })
let gep fb base offset = emit fb (Instr.Gep { base; offset })
let binop fb op a b = emit fb (Instr.Binop (op, a, b))
let add fb a b = binop fb Instr.Add a b
let sub fb a b = binop fb Instr.Sub a b
let mul fb a b = binop fb Instr.Mul a b
let icmp fb c a b = emit fb (Instr.Icmp (c, a, b))
let call fb callee args = emit fb (Instr.Call { callee; args })
let call_void fb callee args = emit_void fb (Instr.Call { callee; args })
let phi fb incoming = emit fb (Instr.Phi incoming)

(** [phi_named fb name incoming] defines a phi under a caller-chosen register
    name, needed when the phi's incoming values reference it recursively. *)
let phi_named fb name incoming = emit fb ~dst:name (Instr.Phi incoming)

let set_term (fb : fbuilder) (tkind : Instr.term_kind) =
  match fb.current with
  | Some (_, term) ->
      if !term <> None then invalid_arg "Builder: block already terminated";
      term := Some { Instr.tid = fresh_id fb.parent; tkind }
  | None -> invalid_arg "Builder: no current block"

let br fb label = set_term fb (Instr.Br label)

let condbr fb cond ~if_true ~if_false =
  set_term fb (Instr.Condbr { cond; if_true; if_false })

let ret fb v = set_term fb (Instr.Ret v)
let unreachable fb = set_term fb Instr.Unreachable

(** [end_func fb] seals the function and adds it to the module. *)
let end_func (fb : fbuilder) =
  let blocks =
    List.map
      (fun (label, instrs, term) ->
        match !term with
        | Some t -> { Block.label; instrs = List.rev !instrs; term = t }
        | None ->
            invalid_arg
              (Printf.sprintf "Builder.end_func: block %s of @%s not terminated"
                 label fb.fname))
      fb.blocks
  in
  if blocks = [] then
    invalid_arg (Printf.sprintf "Builder.end_func: @%s has no blocks" fb.fname);
  fb.parent.funcs <- fb.parent.funcs @ [ { Func.name = fb.fname; params = fb.params; blocks } ]

let finish (b : t) : Irmod.t =
  { Irmod.globals = List.rev b.globals; decls = List.rev b.decls; funcs = b.funcs }
