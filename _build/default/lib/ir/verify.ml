(** Structural well-formedness checks for MIR modules.

    Checks performed here are purely local (no dominance analysis — the CFG
    library layers a dominance-based SSA check on top):
    - instruction and terminator ids are unique module-wide;
    - every register is assigned at most once per function (SSA);
    - every used register has a definition (a parameter or an instruction);
    - branch targets and phi predecessor labels name existing blocks;
    - phis appear only at the start of a block and have one arm per
      predecessor;
    - globals referenced by value exist;
    - direct callees are defined, declared, or intrinsic;
    - load/store sizes are positive. *)

type error = { where : string; what : string }

let err where fmt = Fmt.kstr (fun what -> { where; what }) fmt

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.where e.what

(* Collect predecessors per label. *)
let preds_of (f : Func.t) : (string, string list) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun s ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt tbl s) in
          if not (List.mem b.label cur) then Hashtbl.replace tbl s (b.label :: cur))
        (Block.successors b))
    f.blocks;
  tbl

let check_func (m : Irmod.t) (f : Func.t) : error list =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  let where_block (b : Block.t) = Printf.sprintf "@%s:%s" f.name b.label in
  let defined : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace defined p ()) f.params;
  (* First pass: record all defs, catch double-assignment. *)
  Func.iter_instrs f (fun b (i : Instr.t) ->
      match i.dst with
      | Some d ->
          if Hashtbl.mem defined d then
            add (err (where_block b) "register %%%s assigned more than once" d)
          else Hashtbl.replace defined d ()
      | None -> ());
  let labels = List.map (fun (b : Block.t) -> b.label) f.blocks in
  let check_label where l =
    if not (List.mem l labels) then add (err where "unknown label %s" l)
  in
  let check_value where (v : Value.t) =
    match v with
    | Value.Reg r ->
        if not (Hashtbl.mem defined r) then
          add (err where "use of undefined register %%%s" r)
    | Value.Global g ->
        if Irmod.find_global m g = None then
          add (err where "use of undefined global @%s" g)
    | _ -> ()
  in
  let preds = preds_of f in
  List.iter
    (fun (b : Block.t) ->
      let where = where_block b in
      (* Phis must lead the block. *)
      let seen_nonphi = ref false in
      List.iter
        (fun (i : Instr.t) ->
          (match i.kind with
          | Instr.Phi incoming ->
              if !seen_nonphi then
                add (err where "phi after non-phi instruction");
              let ps =
                Option.value ~default:[] (Hashtbl.find_opt preds b.label)
              in
              List.iter
                (fun (l, v) ->
                  check_label where l;
                  if not (List.mem l ps) then
                    add (err where "phi arm for non-predecessor %s" l);
                  check_value where v)
                incoming;
              List.iter
                (fun p ->
                  if not (List.exists (fun (l, _) -> String.equal l p) incoming)
                  then add (err where "phi missing arm for predecessor %s" p))
                ps
          | Instr.Load { size; _ } | Instr.Store { size; _ } ->
              if size <= 0 then add (err where "non-positive access size");
              seen_nonphi := true
          | Instr.Call { callee; args = _ } ->
              if
                Irmod.find_func m callee = None
                && Irmod.decl_of m callee = None
              then add (err where "call to unknown function @%s" callee);
              seen_nonphi := true
          | _ -> seen_nonphi := true);
          (match i.kind with
          | Instr.Phi _ -> () (* phi operand checks above *)
          | _ -> List.iter (check_value where) (Instr.operands i)))
        b.instrs;
      List.iter (check_value where) (Instr.term_operands b.term);
      match b.term.tkind with
      | Instr.Br l -> check_label where l
      | Instr.Condbr { if_true; if_false; _ } ->
          check_label where if_true;
          check_label where if_false
      | Instr.Ret _ | Instr.Unreachable -> ())
    f.blocks;
  (* Duplicate labels. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      if Hashtbl.mem seen b.label then
        add (err ("@" ^ f.name) "duplicate block label %s" b.label)
      else Hashtbl.replace seen b.label ())
    f.blocks;
  List.rev !errors

(** [check m] is the list of structural errors in [m] (empty = well-formed). *)
let check (m : Irmod.t) : error list =
  let errors = ref [] in
  (* Unique ids module-wide. *)
  let ids = Hashtbl.create 256 in
  let check_id where id =
    if Hashtbl.mem ids id then
      errors := err where "duplicate instruction id %d" id :: !errors
    else Hashtbl.replace ids id ()
  in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          let where = Printf.sprintf "@%s:%s" f.name b.label in
          List.iter (fun (i : Instr.t) -> check_id where i.id) b.instrs;
          check_id where b.term.tid)
        f.blocks)
    m.funcs;
  let func_errors = List.concat_map (check_func m) m.funcs in
  List.rev !errors @ func_errors

(** [check_exn m] raises [Invalid_argument] with a readable report if [m]
    is not well-formed. *)
let check_exn (m : Irmod.t) : unit =
  match check m with
  | [] -> ()
  | errs ->
      invalid_arg
        (Fmt.str "ill-formed MIR module:@.%a"
           (Fmt.list ~sep:Fmt.cut pp_error)
           errs)
