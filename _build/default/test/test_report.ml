(** Tests for the reporting helpers, Table 2 accounting and the
    Orchestrator's query memoization. *)

open Scaf

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let test_table_render () =
  let t =
    Scaf_report.Report.table ~header:[ "a"; "bb" ]
      ~rows:[ [ "x"; "y" ]; [ "long"; "z" ] ]
  in
  checkb "aligned" true (Astring_contains.contains t "| long | z  |");
  checkb "has header" true (Astring_contains.contains t "| a    | bb |")

let test_percentiles () =
  let a = Array.init 101 (fun i -> float_of_int i) in
  checkf "p50" 50.0 (Scaf_report.Report.percentile a 50.0);
  checkf "p0" 0.0 (Scaf_report.Report.percentile a 0.0);
  checkf "p100" 100.0 (Scaf_report.Report.percentile a 100.0);
  checkf "empty" 0.0 (Scaf_report.Report.percentile [||] 50.0)

let test_geomean_mean () =
  checkf "geomean" 2.0 (Scaf_pdg.Nodep.geomean [ 1.0; 2.0; 4.0 ]);
  checkf "mean" 2.0 (Scaf_pdg.Nodep.mean [ 1.0; 2.0; 3.0 ]);
  checkf "geomean skips zeros" 4.0 (Scaf_pdg.Nodep.geomean [ 0.0; 4.0 ])

let test_bar () =
  Alcotest.(check string) "full" "####" (Scaf_report.Report.bar ~width:4 100.0);
  Alcotest.(check string) "half" "##.." (Scaf_report.Report.bar ~width:4 50.0);
  Alcotest.(check string) "clamped" "...." (Scaf_report.Report.bar ~width:4 (-5.0))

(* -- Table 2 accounting -------------------------------------------- *)

let prov names =
  List.fold_left (fun s n -> Response.Sset.add n s) Response.Sset.empty names

let test_collab_rows () =
  let open Scaf_pdg.Collab in
  checkb "caf row" true (row_matches RCaf (prov [ "kill-flow-aa" ]));
  checkb "caf row negative" false (row_matches RCaf (prov [ "control-spec" ]));
  checkb "among spec needs two" false
    (row_matches RAmong_speculation (prov [ "read-only" ]));
  checkb "among spec with two" true
    (row_matches RAmong_speculation (prov [ "read-only"; "points-to" ]));
  checkb "between needs both" true
    (row_matches RBetween_caf_and_spec
       (prov [ "kill-flow-aa"; "control-spec" ]));
  checkb "between not spec-only" false
    (row_matches RBetween_caf_and_spec (prov [ "read-only"; "points-to" ]))

let test_collab_coverage_math () =
  let open Scaf_pdg.Collab in
  let improved =
    [
      { ibench = "b1"; iloop = "l1"; iprov = prov [ "read-only"; "points-to" ] };
      { ibench = "b1"; iloop = "l2"; iprov = prov [ "control-spec" ] };
      { ibench = "b2"; iloop = "l3"; iprov = prov [ "read-only"; "points-to" ] };
    ]
  in
  let cov =
    table2 ~benchmarks:[ "b1"; "b2"; "b3" ]
      ~all_loops:[ ("b1", "l1"); ("b1", "l2"); ("b2", "l3"); ("b3", "l4") ]
      improved
  in
  let row name =
    List.find (fun (c : coverage) -> c.row_label = name) cov
  in
  let ro = row "Read-only" in
  checkf "ro bench%" (100.0 *. 2.0 /. 3.0) ro.bench_pct;
  checkf "ro loop%" 50.0 ro.loop_pct;
  checkf "ro query%" (100.0 *. 2.0 /. 3.0) ro.query_pct;
  let all = row "All" in
  checkf "all query%" 100.0 all.query_pct

(* -- Orchestrator memoization --------------------------------------- *)

let test_orchestrator_cache () =
  let prog =
    Scaf_cfg.Progctx.build
      (Scaf_ir.Parser.parse_exn_msg "func @main() {\nentry:\n  ret\n}")
  in
  let evals = ref 0 in
  let m =
    Module_api.make ~name:"m" ~kind:Module_api.Memory ~factored:false
      (fun _ q ->
        incr evals;
        match q with
        | Query.Modref _ -> Response.free (Aresult.RModref Aresult.NoModRef)
        | _ -> Module_api.no_answer q)
  in
  let o = Orchestrator.create prog (Orchestrator.default_config [ m ]) in
  let q = Query.modref_instrs ~tr:Query.Same 1 2 in
  let r1 = Orchestrator.handle o q in
  let r2 = Orchestrator.handle o q in
  checki "evaluated once" 1 !evals;
  checkb "same answer" true
    (Aresult.equal r1.Response.result r2.Response.result);
  (* a different query is a cache miss *)
  let _ = Orchestrator.handle o (Query.modref_instrs ~tr:Query.Before 1 2) in
  checki "new query evaluated" 2 !evals

let suite =
  [
    ( "report",
      [
        Alcotest.test_case "table rendering" `Quick test_table_render;
        Alcotest.test_case "percentiles" `Quick test_percentiles;
        Alcotest.test_case "geomean/mean" `Quick test_geomean_mean;
        Alcotest.test_case "bars" `Quick test_bar;
        Alcotest.test_case "table 2 row predicates" `Quick test_collab_rows;
        Alcotest.test_case "table 2 coverage math" `Quick
          test_collab_coverage_math;
        Alcotest.test_case "orchestrator memoization" `Quick
          test_orchestrator_cache;
      ] );
  ]
