(** Tests for the interpreter: arithmetic, memory, control flow, calls,
    intrinsics, hooks, traps and the validation runtime. *)

open Scaf_ir
open Scaf_interp

let checki64 = Alcotest.check Alcotest.int64
let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let run ?hooks ?input ?fuel src =
  Eval.run ?hooks ?input ?fuel (Parser.parse_exn_msg src)

let test_arith () =
  let r =
    run
      {|func @main() {
entry:
  %a = add 3, 4
  %b = mul %a, 10
  %c = sub %b, 5
  %d = sdiv %c, 2
  %e = srem %d, 13
  %f = shl %e, 2
  %g = ashr -8, 1
  %h = add %f, %g
  ret %h
}|}
  in
  (* c=65 d=32 e=6 f=24 g=-4 h=20 *)
  checki64 "ret" 20L r.Eval.ret

let test_icmp_select () =
  let r =
    run
      {|func @main() {
entry:
  %a = icmp slt 3, 4
  %b = icmp sge -1, 0
  %c = select %a, 100, 200
  %d = select %b, 1000, %c
  ret %d
}|}
  in
  checki64 "ret" 100L r.Eval.ret

let test_memory_roundtrip () =
  let r =
    run
      {|func @main() {
entry:
  %a = alloca 16
  %p = gep %a, 8
  store 8, %p, 123456789
  %v = load 8, %p
  ret %v
}|}
  in
  checki64 "ret" 123456789L r.Eval.ret

let test_store_sizes () =
  let r =
    run
      {|func @main() {
entry:
  %a = alloca 8
  store 8, %a, -1
  store 1, %a, 0
  %v = load 2, %a
  ret %v
}|}
  in
  (* low byte zeroed, next byte still 0xff *)
  checki64 "ret" 0xFF00L r.Eval.ret

let test_global_init () =
  let r =
    run
      {|global @g 16 init [0: 42, 8: 7]
func @main() {
entry:
  %p = gep @g, 8
  %a = load 8, @g
  %b = load 8, %p
  %s = add %a, %b
  ret %s
}|}
  in
  checki64 "ret" 49L r.Eval.ret

let test_loop_sum () =
  let r =
    run
      {|func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %s = phi [entry: 0], [loop: %s2]
  %s2 = add %s, %i
  %i2 = add %i, 1
  %c = icmp slt %i2, 10
  condbr %c, loop, exit
exit:
  ret %s2
}|}
  in
  checki64 "sum 0..9" 45L r.Eval.ret

let test_call_and_args () =
  let r =
    run
      {|func @sq(%x) {
entry:
  %y = mul %x, %x
  ret %y
}
func @main() {
entry:
  %a = call @sq(7)
  ret %a
}|}
  in
  checki64 "7^2" 49L r.Eval.ret

let test_malloc_free () =
  let r =
    run
      {|func @main() {
entry:
  %p = call @malloc(32)
  store 8, %p, 5
  %q = gep %p, 24
  store 8, %q, 6
  %a = load 8, %p
  %b = load 8, %q
  %s = add %a, %b
  call @free(%p)
  ret %s
}|}
  in
  checki64 "heap" 11L r.Eval.ret

let test_use_after_free_traps () =
  match
    run
      {|func @main() {
entry:
  %p = call @malloc(8)
  call @free(%p)
  %v = load 8, %p
  ret %v
}|}
  with
  | exception Memory.Trap _ -> ()
  | _ -> Alcotest.fail "expected trap"

let test_oob_traps () =
  match
    run
      {|func @main() {
entry:
  %a = alloca 8
  %p = gep %a, 8
  %v = load 8, %p
  ret %v
}|}
  with
  | exception Memory.Trap _ -> ()
  | _ -> Alcotest.fail "expected trap"

let test_wild_pointer_traps () =
  match run "func @main() {\nentry:\n  %v = load 8, 64\n  ret %v\n}" with
  | exception Memory.Trap _ -> ()
  | _ -> Alcotest.fail "expected trap"

let test_div_zero_traps () =
  match run "func @main() {\nentry:\n  %v = sdiv 1, 0\n  ret %v\n}" with
  | exception Memory.Trap _ -> ()
  | _ -> Alcotest.fail "expected trap"

let test_fuel () =
  match
    run ~fuel:100
      "func @main() {\nentry:\n  br loop\nloop:\n  br loop\n}"
  with
  | exception Memory.Trap msg ->
      checkb "mentions fuel" true (Astring_contains.contains msg "fuel")
  | _ -> Alcotest.fail "expected fuel trap"

let test_memcpy_memset () =
  let r =
    run
      {|func @main() {
entry:
  %a = alloca 16
  %b = alloca 16
  call @memset(%a, 7, 8)
  call @memcpy(%b, %a, 8)
  %v = load 1, %b
  ret %v
}|}
  in
  checki64 "copied byte" 7L r.Eval.ret

let test_print_output () =
  let r =
    run
      {|func @main() {
entry:
  call @print(1)
  call @print(2)
  call @print(3)
  ret
}|}
  in
  Alcotest.(check (list int64)) "output" [ 1L; 2L; 3L ] r.Eval.output

let test_input () =
  let r =
    run ~input:[| 10L; 20L; 30L |]
      {|func @main() {
entry:
  %a = call @input(0)
  %b = call @input(1)
  %c = call @input(4)
  %s = add %a, %b
  %t = add %s, %c
  ret %t
}|}
  in
  (* input wraps: input(4) = input(1) = 20 *)
  checki64 "inputs" 50L r.Eval.ret

let test_exit () =
  let r =
    run
      {|func @main() {
entry:
  call @exit(99)
  ret 1
}|}
  in
  checki64 "exit code" 99L r.Eval.ret

let test_alloca_freed_on_return () =
  (* callee's alloca dies; caller reusing the pointer traps *)
  match
    run
      {|func @leak() {
entry:
  %a = alloca 8
  ret %a
}
func @main() {
entry:
  %p = call @leak()
  %v = load 8, %p
  ret %v
}|}
  with
  | exception Memory.Trap _ -> ()
  | _ -> Alcotest.fail "expected trap on dead stack object"

let test_hooks_counts () =
  let loads = ref 0 and stores = ref 0 and blocks = ref 0 and edges = ref 0 in
  let allocs = ref 0 in
  let hooks =
    {
      Hooks.nop with
      Hooks.on_load =
        (fun ~instr:_ ~addr:_ ~size:_ ~value:_ ~obj:_ ~ctx:_ -> incr loads);
      on_store =
        (fun ~instr:_ ~addr:_ ~size:_ ~value:_ ~obj:_ ~ctx:_ -> incr stores);
      on_block = (fun _ _ -> incr blocks);
      on_edge = (fun ~src_term:_ ~src:_ ~dst:_ ~func:_ -> incr edges);
      on_alloc = (fun ~obj:_ -> incr allocs);
    }
  in
  let _ =
    run ~hooks
      {|func @main() {
entry:
  %a = alloca 8
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  store 8, %a, %i
  %v = load 8, %a
  %i2 = add %i, 1
  %c = icmp slt %i2, 5
  condbr %c, loop, exit
exit:
  ret
}|}
  in
  checki "loads" 5 !loads;
  checki "stores" 5 !stores;
  checki "blocks" 7 !blocks;
  (* entry->loop, loop->loop x4, loop->exit *)
  checki "edges" 6 !edges;
  checki "allocs" 1 !allocs

let test_hook_ctx () =
  (* calling context is the stack of call-site ids, innermost first *)
  let ctxs = ref [] in
  let hooks =
    {
      Hooks.nop with
      Hooks.on_store =
        (fun ~instr:_ ~addr:_ ~size:_ ~value:_ ~obj:_ ~ctx -> ctxs := ctx :: !ctxs);
    }
  in
  let _ =
    run ~hooks
      {|global @g 8
func @inner() {
entry:
  store 8, @g, 1
  ret
}
func @outer() {
entry:
  call @inner()
  ret
}
func @main() {
entry:
  call @outer()
  store 8, @g, 2
  ret
}|}
  in
  match List.rev !ctxs with
  | [ ctx_inner; ctx_main ] ->
      checki "inner depth" 2 (List.length ctx_inner);
      checki "main depth" 0 (List.length ctx_main)
  | l -> Alcotest.failf "expected 2 stores, got %d" (List.length l)

let test_runtime_residue_ok () =
  (* residue of every 16-aligned base is 0 -> allowed set {0} = 1 *)
  let r =
    run
      {|func @main() {
entry:
  %a = alloca 8
  call @scaf.check_residue(%a, 1, 7)
  ret 1
}|}
  in
  checki64 "survived" 1L r.Eval.ret;
  checki "one cheap check" 1 r.Eval.cheap_checks

let test_runtime_residue_misspec () =
  match
    run
      {|func @main() {
entry:
  %a = alloca 16
  %p = gep %a, 4
  call @scaf.check_residue(%p, 1, 7)
  ret 1
}|}
  with
  | exception Runtime.Misspec { tag } -> checki64 "tag" 7L tag
  | _ -> Alcotest.fail "expected misspec"

let test_runtime_heap_check () =
  let r =
    run
      {|func @main() {
entry:
  %p = call @malloc(8)
  call @scaf.set_heap(%p, 3)
  call @scaf.check_heap(%p, 3, 11)
  ret 1
}|}
  in
  checki64 "survived" 1L r.Eval.ret;
  match
    run
      {|func @main() {
entry:
  %p = call @malloc(8)
  call @scaf.check_heap(%p, 3, 11)
  ret 1
}|}
  with
  | exception Runtime.Misspec { tag } -> checki64 "tag" 11L tag
  | _ -> Alcotest.fail "expected misspec"

let test_runtime_value_check () =
  (match
     run
       {|func @main() {
entry:
  call @scaf.check_value(5, 5, 1)
  ret 1
}|}
   with
  | r -> checki64 "ok" 1L r.Eval.ret);
  match
    run
      {|func @main() {
entry:
  call @scaf.check_value(5, 6, 2)
  ret 1
}|}
  with
  | exception Runtime.Misspec { tag } -> checki64 "tag" 2L tag
  | _ -> Alcotest.fail "expected misspec"

let test_runtime_misspec_beacon () =
  match
    run
      {|func @main() {
entry:
  call @scaf.misspec(42)
  ret 1
}|}
  with
  | exception Runtime.Misspec { tag } -> checki64 "tag" 42L tag
  | _ -> Alcotest.fail "expected misspec"

let test_runtime_shortlived_check () =
  (* balanced alloc/free inside iteration passes *)
  let r =
    run
      {|func @main() {
entry:
  %p = call @malloc(8)
  call @scaf.set_heap(%p, 5)
  call @free(%p)
  call @scaf.iter_check(5, 9)
  ret 1
}|}
  in
  checki64 "balanced ok" 1L r.Eval.ret;
  match
    run
      {|func @main() {
entry:
  %p = call @malloc(8)
  call @scaf.set_heap(%p, 5)
  call @scaf.iter_check(5, 9)
  ret 1
}|}
  with
  | exception Runtime.Misspec { tag } -> checki64 "tag" 9L tag
  | _ -> Alcotest.fail "expected misspec"

let test_runtime_memspec_check () =
  (* the 1 -> 2 dependence is asserted absent; it manifests -> misspec *)
  match
    run
      {|func @main() {
entry:
  call @scaf.ms_forbid(1, 2)
  %a = alloca 8
  call @scaf.ms_write(%a, 8, 1, 3)
  call @scaf.ms_read(%a, 8, 2, 3)
  ret 1
}|}
  with
  | exception Runtime.Misspec { tag } -> checki64 "tag" 3L tag
  | _ -> Alcotest.fail "expected misspec"

let test_runtime_memspec_same_group_ok () =
  (* no pair declared absent: any dependence may manifest *)
  let r =
    run
      {|func @main() {
entry:
  %a = alloca 8
  call @scaf.ms_write(%a, 8, 1, 3)
  call @scaf.ms_read(%a, 8, 2, 3)
  ret 1
}|}
  in
  checki64 "undeclared dep ok" 1L r.Eval.ret;
  checki "expensive checks" 2 r.Eval.expensive_checks

(* qcheck: interpreter evaluates random arithmetic expressions like OCaml *)
let arb_expr =
  let open QCheck in
  let gen =
    Gen.(
      let node =
        oneofl [ `Add; `Sub; `Mul; `And; `Or; `Xor ]
      in
      let* ops = list_size (int_range 1 20) node in
      let* start = int_range (-1000) 1000 in
      let* operands = list_repeat (List.length ops) (int_range (-1000) 1000) in
      return (start, List.combine ops operands))
  in
  make
    ~print:(fun (s, l) -> Printf.sprintf "start=%d ops=%d" s (List.length l))
    gen

let prop_arith_matches_ocaml =
  QCheck.Test.make ~name:"interp arithmetic matches OCaml semantics" ~count:100
    arb_expr (fun (start, ops) ->
      let b = Buffer.create 256 in
      Buffer.add_string b "func @main() {\nentry:\n";
      Buffer.add_string b (Printf.sprintf "  %%v0 = add %d, 0\n" start);
      List.iteri
        (fun k (op, x) ->
          let opname =
            match op with
            | `Add -> "add"
            | `Sub -> "sub"
            | `Mul -> "mul"
            | `And -> "and"
            | `Or -> "or"
            | `Xor -> "xor"
          in
          Buffer.add_string b
            (Printf.sprintf "  %%v%d = %s %%v%d, %d\n" (k + 1) opname k x))
        ops;
      Buffer.add_string b
        (Printf.sprintf "  ret %%v%d\n}\n" (List.length ops));
      let expected =
        List.fold_left
          (fun acc (op, x) ->
            let x = Int64.of_int x in
            match op with
            | `Add -> Int64.add acc x
            | `Sub -> Int64.sub acc x
            | `Mul -> Int64.mul acc x
            | `And -> Int64.logand acc x
            | `Or -> Int64.logor acc x
            | `Xor -> Int64.logxor acc x)
          (Int64.of_int start) ops
      in
      let r = run (Buffer.contents b) in
      Int64.equal r.Eval.ret expected)

let prop_memory_byte_roundtrip =
  QCheck.Test.make ~name:"memory load/store round-trips any size" ~count:100
    QCheck.(pair (int_range 1 8) (map Int64.of_int int))
    (fun (size, v) ->
      let mem = Memory.create () in
      let o = Memory.alloc mem ~size:16 ~kind:(Memory.KStack 0) ~ctx:[] in
      Memory.store mem o.Memory.base size v;
      let back = Memory.load mem o.Memory.base size in
      let mask =
        if size = 8 then -1L
        else Int64.sub (Int64.shift_left 1L (8 * size)) 1L
      in
      Int64.equal back (Int64.logand v mask))

let suite =
  [
    ( "interp",
      [
        Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "icmp/select" `Quick test_icmp_select;
        Alcotest.test_case "memory round-trip" `Quick test_memory_roundtrip;
        Alcotest.test_case "store sizes" `Quick test_store_sizes;
        Alcotest.test_case "global init" `Quick test_global_init;
        Alcotest.test_case "loop sum" `Quick test_loop_sum;
        Alcotest.test_case "calls" `Quick test_call_and_args;
        Alcotest.test_case "malloc/free" `Quick test_malloc_free;
        Alcotest.test_case "use-after-free traps" `Quick
          test_use_after_free_traps;
        Alcotest.test_case "out-of-bounds traps" `Quick test_oob_traps;
        Alcotest.test_case "wild pointer traps" `Quick test_wild_pointer_traps;
        Alcotest.test_case "division by zero traps" `Quick test_div_zero_traps;
        Alcotest.test_case "fuel bound" `Quick test_fuel;
        Alcotest.test_case "memcpy/memset" `Quick test_memcpy_memset;
        Alcotest.test_case "print output" `Quick test_print_output;
        Alcotest.test_case "input vector" `Quick test_input;
        Alcotest.test_case "exit" `Quick test_exit;
        Alcotest.test_case "alloca dies at return" `Quick
          test_alloca_freed_on_return;
        Alcotest.test_case "hook event counts" `Quick test_hooks_counts;
        Alcotest.test_case "hook calling context" `Quick test_hook_ctx;
        Alcotest.test_case "residue check ok" `Quick test_runtime_residue_ok;
        Alcotest.test_case "residue check misspec" `Quick
          test_runtime_residue_misspec;
        Alcotest.test_case "heap check" `Quick test_runtime_heap_check;
        Alcotest.test_case "value check" `Quick test_runtime_value_check;
        Alcotest.test_case "misspec beacon" `Quick test_runtime_misspec_beacon;
        Alcotest.test_case "short-lived balance check" `Quick
          test_runtime_shortlived_check;
        Alcotest.test_case "memspec conflict detected" `Quick
          test_runtime_memspec_check;
        Alcotest.test_case "memspec same group ok" `Quick
          test_runtime_memspec_same_group_ok;
        QCheck_alcotest.to_alcotest prop_arith_matches_ocaml;
        QCheck_alcotest.to_alcotest prop_memory_byte_roundtrip;
      ] );
  ]
