(** Tests for the transformation side: plan selection (conflicts, sharing),
    validation instrumentation per assertion kind, and misspeculation
    recovery. *)

open Scaf
open Scaf_ir
open Scaf_transform

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let mk_assert ?(points = []) ?(conflicts = []) ?(cost = 1.0) id payload =
  { Assertion.module_id = id; points; cost; conflicts; payload }

let sep heap sites =
  mk_assert ~conflicts:sites "m"
    (Assertion.Heap_separate
       { loop = "l"; sites; gsites = []; heap; inside = []; outside = [] })

let dq src dst = { Scaf_pdg.Pdg.src; dst; cross = false }

let qres ?(nodep = true) dqv options =
  {
    Scaf_pdg.Pdg.dq = dqv;
    resp =
      Response.make (Aresult.RModref Aresult.NoModRef) ~options;
    nodep;
  }

let report queries =
  { Scaf_pdg.Pdg.lid = "l"; queries; mem_ops = [] }

(* -- plan ------------------------------------------------------------ *)

let test_plan_shares_assertions () =
  let a = mk_assert ~cost:5.0 "ctrl"
      (Assertion.Ctrl_block_dead { fname = "f"; label = "r"; beacon = 0 })
  in
  let p =
    Plan.build [ report [ qres (dq 1 2) [ [ a ] ]; qres (dq 3 4) [ [ a ] ] ] ]
  in
  checki "one shared assertion" 1 (List.length p.Plan.selected);
  checki "covers both deps" 2 (List.length p.Plan.covered);
  Alcotest.check (Alcotest.float 1e-9) "paid once" 5.0 p.Plan.total_cost

let test_plan_avoids_conflicts () =
  let ro = sep Assertion.Read_only_heap [ 7 ] in
  let sl = sep Assertion.Short_lived_heap [ 7 ] in
  let p =
    Plan.build [ report [ qres (dq 1 2) [ [ ro ] ]; qres (dq 3 4) [ [ sl ] ] ] ]
  in
  (* the second dependence's only option conflicts with the first *)
  checki "one covered" 1 (List.length p.Plan.covered);
  checki "one dropped" 1 (List.length p.Plan.dropped)

let test_plan_falls_back_to_alternative () =
  let ro = sep Assertion.Read_only_heap [ 7 ] in
  let sl = sep Assertion.Short_lived_heap [ 7 ] in
  let ctrl =
    mk_assert ~cost:100.0 "ctrl"
      (Assertion.Ctrl_block_dead { fname = "f"; label = "r"; beacon = 0 })
  in
  (* second dep has a non-conflicting (but costlier) alternative *)
  let p =
    Plan.build
      [ report [ qres (dq 1 2) [ [ ro ] ]; qres (dq 3 4) [ [ sl ]; [ ctrl ] ] ] ]
  in
  checki "both covered" 2 (List.length p.Plan.covered);
  checkb "alternative selected" true
    (List.exists
       (fun (a : Assertion.t) -> a.Assertion.module_id = "ctrl")
       p.Plan.selected)

let test_plan_skips_prohibitive () =
  let pt = mk_assert ~cost:Cost_model.prohibitive "points-to"
      (Assertion.Points_to_objects { instr = 3 })
  in
  let p = Plan.build [ report [ qres (dq 1 2) [ [ pt ] ] ] ] in
  checki "nothing selected" 0 (List.length p.Plan.selected);
  checki "nothing covered" 0 (List.length p.Plan.covered)

(* -- instrumentation -------------------------------------------------- *)

let instr_prog src = Scaf_cfg.Progctx.build (Parser.parse_exn_msg src)

let count_calls m callee =
  let n = ref 0 in
  Irmod.iter_instrs m (fun _ _ i ->
      match i.Instr.kind with
      | Instr.Call { callee = c; _ } when String.equal c callee -> incr n
      | _ -> ());
  !n

let test_instrument_value_check () =
  let prog =
    instr_prog
      {|
global @g 8
func @main() {
entry:
  %v = load 8, @g
  call @print(%v)
  ret
}
|}
  in
  let load =
    let r = ref (-1) in
    Irmod.iter_instrs prog.Scaf_cfg.Progctx.m (fun _ _ i ->
        if i.Instr.dst = Some "v" then r := i.Instr.id);
    !r
  in
  let m' =
    Instrument.apply prog
      [
        mk_assert "value-pred"
          (Assertion.Value_predict { load; value = 0L });
      ]
  in
  Verify.check_exn m';
  checki "one value check" 1 (count_calls m' "scaf.check_value");
  (* the check passes when the prediction holds *)
  let r = Scaf_interp.Eval.run m' in
  checki "ran" 1 (List.length r.Scaf_interp.Eval.output)

let test_instrument_dead_block_beacon () =
  let prog =
    instr_prog
      {|
func @main(%c) {
entry:
  condbr %c, rare, ok
rare:
  br ok
ok:
  ret
}
|}
  in
  let m' =
    Instrument.apply prog
      [
        mk_assert "control-spec"
          (Assertion.Ctrl_block_dead { fname = "main"; label = "rare"; beacon = 0 });
      ]
  in
  Verify.check_exn m';
  checki "one beacon" 1 (count_calls m' "scaf.misspec");
  (* %c defaults to 0: the false edge goes to ok, no misspec *)
  let r = Scaf_interp.Eval.run m' in
  checkb "clean run" true (Int64.equal r.Scaf_interp.Eval.ret 0L)

let test_instrument_heap_separation () =
  let prog =
    instr_prog
      {|
global @slot 8
func @main() {
entry:
  %t = call @malloc(16)
  store 8, @slot, %t
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %p = load 8, @slot
  %v = load 8, %p
  store 8, @slot, %p
  %i2 = add %i, 1
  %c = icmp slt %i2, 5
  condbr %c, loop, exit
exit:
  ret
}
|}
  in
  let m = prog.Scaf_cfg.Progctx.m in
  let site =
    let r = ref (-1) in
    Irmod.iter_instrs m (fun _ _ i ->
        match i.Instr.kind with
        | Instr.Call { callee = "malloc"; _ } -> r := i.Instr.id
        | _ -> ());
    !r
  in
  let reader =
    let r = ref (-1) in
    Irmod.iter_instrs m (fun _ _ i -> if i.Instr.dst = Some "v" then r := i.Instr.id);
    !r
  in
  let slot_store =
    let r = ref (-1) in
    Irmod.iter_instrs m (fun _ _ i ->
        match i.Instr.kind with
        | Instr.Store { ptr = Value.Global "slot"; value = Value.Reg "p"; _ } ->
            r := i.Instr.id
        | _ -> ());
    !r
  in
  let m' =
    Instrument.apply prog
      [
        mk_assert "read-only"
          (Assertion.Heap_separate
             {
               loop = "main:loop";
               sites = [ site ];
               gsites = [];
               heap = Assertion.Read_only_heap;
               inside = [ reader ];
               outside = [ slot_store ];
             });
      ]
  in
  Verify.check_exn m';
  checki "site tagged" 1 (count_calls m' "scaf.set_heap");
  checki "inside check" 1 (count_calls m' "scaf.check_heap");
  checki "outside check" 1 (count_calls m' "scaf.check_not_heap");
  (* inside: %p is in the heap; outside: @slot is not: both hold *)
  let r = Scaf_interp.Eval.run m' in
  checkb "clean" true (Int64.equal r.Scaf_interp.Eval.ret 0L)

let test_instrument_memspec_catches_violation () =
  let prog =
    instr_prog
      {|
global @x 8
func @main() {
entry:
  store 8, @x, 1
  %v = load 8, @x
  ret %v
}
|}
  in
  let m = prog.Scaf_cfg.Progctx.m in
  let st =
    let r = ref (-1) in
    Irmod.iter_instrs m (fun _ _ i -> if Instr.writes_memory i then r := i.Instr.id);
    !r
  in
  let ld =
    let r = ref (-1) in
    Irmod.iter_instrs m (fun _ _ i -> if i.Instr.dst = Some "v" then r := i.Instr.id);
    !r
  in
  (* assert (falsely) that the store never feeds the load *)
  let m' =
    Instrument.apply prog
      [
        mk_assert "memory-speculation"
          (Assertion.Mem_nodep { src = st; dst = ld; cross = false });
      ]
  in
  Verify.check_exn m';
  match Scaf_interp.Eval.run m' with
  | exception Scaf_interp.Runtime.Misspec _ -> ()
  | _ -> Alcotest.fail "the manifest dependence must trip the check"

let test_recovery_restores_semantics () =
  let src =
    {|
global @x 8
func @main() {
entry:
  store 8, @x, 5
  %v = load 8, @x
  call @print(%v)
  ret
}
|}
  in
  let prog = instr_prog src in
  let m = prog.Scaf_cfg.Progctx.m in
  let st =
    let r = ref (-1) in
    Irmod.iter_instrs m (fun _ _ i -> if Instr.writes_memory i then r := i.Instr.id);
    !r
  in
  let ld =
    let r = ref (-1) in
    Irmod.iter_instrs m (fun _ _ i -> if i.Instr.dst = Some "v" then r := i.Instr.id);
    !r
  in
  let instrumented =
    Instrument.apply prog
      [
        mk_assert "memory-speculation"
          (Assertion.Mem_nodep { src = st; dst = ld; cross = false });
      ]
  in
  let o = Apply.run_with_recovery ~original:m ~instrumented () in
  checkb "misspeculated" true o.Apply.misspeculated;
  Alcotest.(check (list int64))
    "recovered output" [ 5L ] o.Apply.result.Scaf_interp.Eval.output

let suite =
  [
    ( "transform",
      [
        Alcotest.test_case "plan shares assertions" `Quick
          test_plan_shares_assertions;
        Alcotest.test_case "plan avoids conflicts" `Quick
          test_plan_avoids_conflicts;
        Alcotest.test_case "plan falls back to alternative" `Quick
          test_plan_falls_back_to_alternative;
        Alcotest.test_case "plan skips prohibitive options" `Quick
          test_plan_skips_prohibitive;
        Alcotest.test_case "instrument: value check" `Quick
          test_instrument_value_check;
        Alcotest.test_case "instrument: dead-block beacon" `Quick
          test_instrument_dead_block_beacon;
        Alcotest.test_case "instrument: heap separation" `Quick
          test_instrument_heap_separation;
        Alcotest.test_case "instrument: memspec catches violation" `Quick
          test_instrument_memspec_catches_violation;
        Alcotest.test_case "recovery restores semantics" `Quick
          test_recovery_restores_semantics;
      ] );
  ]
