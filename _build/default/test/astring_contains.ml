(** Substring containment helper for test assertions. *)

let contains (haystack : string) (needle : string) : bool =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i + nl <= hl do
      if String.sub haystack !i nl = needle then found := true else incr i
    done;
    !found
  end
