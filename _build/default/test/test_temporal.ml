(** Tests for temporal-relation handling: [After] queries, cross-iteration
    instance reasoning, and nested-loop scoping subtleties. *)

open Scaf
open Scaf_ir
open Scaf_cfg
open Scaf_analysis

let checkb = Alcotest.check Alcotest.bool

let build src =
  let m = Parser.parse_exn_msg src in
  Verify.check_exn m;
  Progctx.build m

let caf prog =
  Orchestrator.create prog (Orchestrator.default_config (Registry.create prog))

let strided =
  build
    {|
global @arr 800
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %o = mul %i, 8
  %p = gep @arr, %o
  store 8, %p, %i
  %i2 = add %i, 1
  %c = icmp slt %i2, 100
  condbr %c, loop, exit
exit:
  ret
}
|}

let q tr =
  Query.alias ~loop:"main:loop" ~fname:"main" ~tr (Value.reg "p", 8)
    (Value.reg "p", 8)

let test_after_mirrors_before () =
  let o = caf strided in
  let before = Orchestrator.handle o (q Query.Before) in
  let after = Orchestrator.handle o (q Query.After) in
  checkb "Before NoAlias" true
    (before.Response.result = Aresult.RAlias Aresult.NoAlias);
  checkb "After NoAlias" true
    (after.Response.result = Aresult.RAlias Aresult.NoAlias);
  let same = Orchestrator.handle o (q Query.Same) in
  checkb "Same MustAlias" true
    (same.Response.result = Aresult.RAlias Aresult.MustAlias)

let test_asymmetric_stride_window () =
  (* addresses p = 16i and q = 16i + 8: Before (p earlier) hits q's window
     at no dk; check both directions stay NoAlias while Same does too *)
  let prog =
    build
      {|
global @arr 1700
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %o = mul %i, 16
  %p = gep @arr, %o
  store 8, %p, %i
  %o8 = add %o, 8
  %q = gep @arr, %o8
  %v = load 8, %q
  %i2 = add %i, 1
  %c = icmp slt %i2, 100
  condbr %c, loop, exit
exit:
  ret
}
|}
  in
  let o = caf prog in
  let mk tr =
    (Orchestrator.handle o
       (Query.alias ~loop:"main:loop" ~fname:"main" ~tr (Value.reg "p", 8)
          (Value.reg "q", 8)))
      .Response.result
  in
  checkb "Same disjoint fields" true (mk Query.Same = Aresult.RAlias Aresult.NoAlias);
  checkb "Before disjoint" true (mk Query.Before = Aresult.RAlias Aresult.NoAlias);
  checkb "After disjoint" true (mk Query.After = Aresult.RAlias Aresult.NoAlias)

let test_overlapping_after_window () =
  (* a genuine cross-iteration overlap: q = 16i + 16, so q at iteration k
     addresses exactly what p addresses at iteration k+1; the overlapping
     direction must stay conservative while the diverging one is disjoint *)
  let prog =
    build
      {|
global @arr 1800
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %o = mul %i, 16
  %p = gep @arr, %o
  store 8, %p, %i
  %o16 = add %o, 16
  %q = gep @arr, %o16
  %v = load 8, %q
  %i2 = add %i, 1
  %c = icmp slt %i2, 100
  condbr %c, loop, exit
exit:
  ret
}
|}
  in
  let o = caf prog in
  let mk tr a b =
    (Orchestrator.handle o
       (Query.alias ~loop:"main:loop" ~fname:"main" ~tr (Value.reg a, 8)
          (Value.reg b, 8)))
      .Response.result
  in
  (* q in iteration k addresses what p addresses in iteration k+1: the
     (q Before p) direction overlaps at dk = 1 *)
  checkb "real cross overlap stays conservative" true
    (Aresult.pr (mk Query.Before "q" "p") = 1);
  (* while (p Before q) moves away and is disjoint *)
  checkb "diverging direction disjoint" true
    (mk Query.Before "p" "q" = Aresult.RAlias Aresult.NoAlias);
  checkb "Same disjoint" true (mk Query.Same "p" "q" = Aresult.RAlias Aresult.NoAlias)

let test_nested_loop_instances () =
  (* an alloca inside the outer loop is NOT unique per inner-loop-scoped
     queries' instances when scoped to the outer loop... here: the inner
     loop re-executes the store against one alloca instance per outer
     iteration; same-SSA-value reasoning must stay valid for the inner
     query but cross-outer-iteration queries must not claim MustAlias *)
  let prog =
    build
      {|
func @main() {
entry:
  br outer
outer:
  %i = phi [entry: 0], [olatch: %i2]
  %a = call @malloc(8)
  br inner
inner:
  %j = phi [outer: 0], [inner: %j2]
  store 8, %a, %j
  %v = load 8, %a
  %j2 = add %j, 1
  %c = icmp slt %j2, 60
  condbr %c, inner, olatch
olatch:
  call @free(%a)
  %i2 = add %i, 1
  %d = icmp slt %i2, 55
  condbr %d, outer, exit
exit:
  ret
}
|}
  in
  let o = caf prog in
  let mk ~loop tr =
    (Orchestrator.handle o
       (Query.alias ~loop ~fname:"main" ~tr (Value.reg "a", 8)
          (Value.reg "a", 8)))
      .Response.result
  in
  (* within one inner iteration, %a is the same instance *)
  checkb "inner Same MustAlias" true
    (mk ~loop:"main:inner" Query.Same = Aresult.RAlias Aresult.MustAlias);
  (* across inner iterations, %a is invariant (allocated outside inner) *)
  checkb "inner Before MustAlias" true
    (mk ~loop:"main:inner" Query.Before = Aresult.RAlias Aresult.MustAlias);
  (* across outer iterations it is a fresh object each time: NoAlias *)
  checkb "outer Before NoAlias" true
    (mk ~loop:"main:outer" Query.Before = Aresult.RAlias Aresult.NoAlias)

let suite =
  [
    ( "temporal",
      [
        Alcotest.test_case "After mirrors Before" `Quick
          test_after_mirrors_before;
        Alcotest.test_case "asymmetric stride windows" `Quick
          test_asymmetric_stride_window;
        Alcotest.test_case "real cross-iteration overlap respected" `Quick
          test_overlapping_after_window;
        Alcotest.test_case "nested-loop instance reasoning" `Quick
          test_nested_loop_instances;
      ] );
  ]
