(** Tests for the profilers: edge, value, residue, points-to, lifetime,
    memory-dependence and loop-time, plus the loop tracker. *)

open Scaf_ir
open Scaf_profile

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-6)

let profile ?(inputs = [ [||] ]) src =
  let m = Parser.parse_exn_msg src in
  Verify.check_exn m;
  (m, Profiler.profile_module ~inputs m)

let find m p =
  let r = ref (-1) in
  Irmod.iter_instrs m (fun _ _ i -> if p i then r := i.Instr.id);
  !r

let branchy =
  {|
global @g 8
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [latch: %i2]
  %r = call @input(0)
  %c = icmp ne %r, 0
  condbr %c, hot, cold
hot:
  store 8, @g, %i
  br latch
cold:
  store 8, @g, 7
  br latch
latch:
  %i2 = add %i, 1
  %d = icmp slt %i2, 60
  condbr %d, loop, exit
exit:
  ret
}
|}

let test_edge_profile () =
  let _, p = profile ~inputs:[ [| 1L |] ] branchy in
  checki "loop block 60x" 60 (Edge_profile.block_count p.Profiles.edges ~func:"main" ~label:"loop");
  checki "hot block 60x" 60 (Edge_profile.block_count p.Profiles.edges ~func:"main" ~label:"hot");
  checkb "cold spec-dead" true
    (Edge_profile.spec_dead p.Profiles.edges ~func:"main" ~label:"cold");
  checkb "hot not dead" false
    (Edge_profile.spec_dead p.Profiles.edges ~func:"main" ~label:"hot");
  checki "main called once" 1 (Edge_profile.func_count p.Profiles.edges ~func:"main")

let test_edge_profile_multi_input () =
  (* two training inputs: one takes hot, one cold: nothing is dead *)
  let _, p = profile ~inputs:[ [| 1L |]; [| 0L |] ] branchy in
  checkb "cold not dead" false
    (Edge_profile.spec_dead p.Profiles.edges ~func:"main" ~label:"cold");
  checki "loop 120x" 120
    (Edge_profile.block_count p.Profiles.edges ~func:"main" ~label:"loop")

let value_src =
  {|
global @cfg 8 init [0: 42]
global @var 8
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %c = load 8, @cfg
  store 8, @var, %i
  %v = load 8, @var
  %i2 = add %i, 1
  %d = icmp slt %i2, 55
  condbr %d, loop, exit
exit:
  ret
}
|}

let test_value_profile () =
  let m, p = profile value_src in
  let cfg_load = find m (fun i -> i.Instr.dst = Some "c") in
  let var_load = find m (fun i -> i.Instr.dst = Some "v") in
  (match Value_profile.predictable p.Profiles.values cfg_load with
  | Some (v, n) ->
      Alcotest.check Alcotest.int64 "predicted value" 42L v;
      checki "count" 55 n
  | None -> Alcotest.fail "cfg load should be predictable");
  checkb "varying load not predictable" true
    (Value_profile.predictable p.Profiles.values var_load = None)

let residue_src =
  {|
global @arr 64
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %o = mul %i, 16
  %o2 = srem %o, 48
  %p = gep @arr, %o2
  store 8, %p, %i
  %q2 = add %o2, 8
  %q = gep @arr, %q2
  %v = load 8, %q
  %i2 = add %i, 1
  %d = icmp slt %i2, 52
  condbr %d, loop, exit
exit:
  ret
}
|}

let test_residue_profile () =
  let m, p = profile residue_src in
  let st = find m (fun i -> Instr.writes_memory i) in
  let ld = find m (fun i -> i.Instr.dst = Some "v") in
  (match Residue_profile.residue_set p.Profiles.residues st with
  | Some s -> checki "store residues {0}" 1 s
  | None -> Alcotest.fail "no store residues");
  (match Residue_profile.residue_set p.Profiles.residues ld with
  | Some s -> checki "load residues {8}" 0x100 s
  | None -> Alcotest.fail "no load residues");
  checkb "disjoint at size 8" true (Residue_profile.disjoint 1 8 0x100 8);
  checkb "overlap at size 16" false (Residue_profile.disjoint 1 16 0x100 8);
  checkb "oversize never disjoint" false (Residue_profile.disjoint 1 32 0x100 8)

let test_residue_expand () =
  checki "expand {0} by 4" 0b1111 (Residue_profile.expand 1 4);
  checki "expand {14} by 4 wraps" ((1 lsl 14) lor (1 lsl 15) lor 1 lor 2)
    (Residue_profile.expand (1 lsl 14) 4)

let pt_src =
  {|
global @slotA 8
global @slotB 8
func @main() {
entry:
  %a = call @malloc(32)
  store 8, @slotA, %a
  %b = call @malloc(32)
  store 8, @slotB, %b
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %pa = load 8, @slotA
  %qa = gep %pa, 8
  store 8, %qa, %i
  %pb = load 8, @slotB
  %qb = gep %pb, 16
  %v = load 8, %qb
  %i2 = add %i, 1
  %d = icmp slt %i2, 51
  condbr %d, loop, exit
exit:
  ret
}
|}

let test_points_to_profile () =
  let m, p = profile pt_src in
  let qa = find m (fun i -> i.Instr.dst = Some "qa") in
  let qb = find m (fun i -> i.Instr.dst = Some "qb") in
  match
    ( Points_to_profile.observed p.Profiles.points_to qa,
      Points_to_profile.observed p.Profiles.points_to qb )
  with
  | Some ea, Some eb ->
      checkb "disjoint sites" true (Points_to_profile.disjoint_sites ea eb);
      checki "qa const off" 8 (Option.get ea.Points_to_profile.const_off);
      checki "qb const off" 16 (Option.get eb.Points_to_profile.const_off)
  | _ -> Alcotest.fail "missing points-to entries"

let lifetime_src =
  {|
global @slot 8
global @ro 8
global @acc 8
func @main() {
entry:
  %t = call @malloc(16)
  store 8, @ro, %t
  store 8, %t, 5
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %b = call @malloc(8)
  store 8, @slot, %b
  store 8, %b, %i
  %rp = load 8, @ro
  %rv = load 8, %rp
  %a = load 8, @acc
  %a2 = add %a, %rv
  store 8, @acc, %a2
  %b2 = load 8, @slot
  call @free(%b2)
  %i2 = add %i, 1
  %d = icmp slt %i2, 60
  condbr %d, loop, exit
exit:
  ret
}
|}

let test_lifetime_profile () =
  let m, p = profile lifetime_src in
  let lid = "main:loop" in
  let heap_site id = { Site.skind = Site.SHeap id; sctx = Site.trim_ctx [ id ] } in
  let buf_malloc =
    find m (fun i ->
        match i.Instr.kind with
        | Instr.Call { callee = "malloc"; args = [ Value.Int 8L ] } -> true
        | _ -> false)
  in
  let tbl_malloc =
    find m (fun i ->
        match i.Instr.kind with
        | Instr.Call { callee = "malloc"; args = [ Value.Int 16L ] } -> true
        | _ -> false)
  in
  checkb "per-iter buffer short-lived" true
    (Lifetime_profile.short_lived p.Profiles.lifetime ~lid (heap_site buf_malloc));
  checkb "table not short-lived" false
    (Lifetime_profile.short_lived p.Profiles.lifetime ~lid (heap_site tbl_malloc));
  checkb "table read-only in loop" true
    (Lifetime_profile.read_only p.Profiles.lifetime ~lid (heap_site tbl_malloc));
  checkb "buffer not read-only" false
    (Lifetime_profile.read_only p.Profiles.lifetime ~lid (heap_site buf_malloc))

let test_lifetime_leak_detected () =
  (* a buffer kept across an iteration is not short-lived *)
  let src =
    {|
global @slot 8
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [sk: %i2]
  %old = load 8, @slot
  %c0 = icmp ne %old, 0
  condbr %c0, fr, sk
fr:
  call @free(%old)
  br sk
sk:
  %b = call @malloc(8)
  store 8, @slot, %b
  store 8, %b, %i
  %i2 = add %i, 1
  %d = icmp slt %i2, 60
  condbr %d, loop, exit
exit:
  ret
}
|}
  in
  let m, p = profile src in
  let malloc = find m (fun i -> match i.Instr.kind with Instr.Call { callee = "malloc"; _ } -> true | _ -> false) in
  checkb "leaked buffer not short-lived" false
    (Lifetime_profile.short_lived p.Profiles.lifetime ~lid:"main:loop"
       { Site.skind = Site.SHeap malloc; sctx = Site.trim_ctx [ malloc ] })

let memdep_src =
  {|
global @x 8
global @y 8
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  store 8, @x, %i
  %v = load 8, @x
  %w = load 8, @y
  store 8, @y, %v
  %i2 = add %i, 1
  %d = icmp slt %i2, 60
  condbr %d, loop, exit
exit:
  ret
}
|}

let test_memdep_profile () =
  let m, p = profile memdep_src in
  let lid = "main:loop" in
  let st_x = find m (fun i -> match i.Instr.kind with Instr.Store { ptr = Value.Global "x"; _ } -> true | _ -> false) in
  let ld_x = find m (fun i -> i.Instr.dst = Some "v") in
  let ld_y = find m (fun i -> i.Instr.dst = Some "w") in
  let st_y = find m (fun i -> match i.Instr.kind with Instr.Store { ptr = Value.Global "y"; _ } -> true | _ -> false) in
  (* intra flow x: store -> load, same iteration *)
  checkb "intra flow observed" true
    (Memdep_profile.observed p.Profiles.memdep ~lid ~src:st_x ~dst:ld_x ~cross:false);
  (* the store kills across iterations: no cross flow st_x -> ld_x *)
  checkb "cross flow killed" false
    (Memdep_profile.observed p.Profiles.memdep ~lid ~src:st_x ~dst:ld_x ~cross:true);
  (* cross output dep on x *)
  checkb "cross output observed" true
    (Memdep_profile.observed p.Profiles.memdep ~lid ~src:st_x ~dst:st_x ~cross:true);
  (* y: load old value, then store: anti dep intra; flow cross *)
  checkb "anti intra observed" true
    (Memdep_profile.observed p.Profiles.memdep ~lid ~src:ld_y ~dst:st_y ~cross:false);
  checkb "cross flow y observed" true
    (Memdep_profile.observed p.Profiles.memdep ~lid ~src:st_y ~dst:ld_y ~cross:true);
  (* no dep between x and y locations *)
  checkb "x-y unrelated" false
    (Memdep_profile.observed p.Profiles.memdep ~lid ~src:st_x ~dst:ld_y ~cross:false)

let nested_time_src =
  {|
func @main() {
entry:
  br outer
outer:
  %i = phi [entry: 0], [olatch: %i2]
  br inner
inner:
  %j = phi [outer: 0], [inner: %j2]
  %j2 = add %j, 1
  %c = icmp slt %j2, 60
  condbr %c, inner, olatch
olatch:
  %i2 = add %i, 1
  %d = icmp slt %i2, 55
  condbr %d, outer, exit
exit:
  ret
}
|}

let test_time_profile_nested () =
  let _, p = profile nested_time_src in
  let hot = Time_profile.hot_loops p.Profiles.time in
  checkb "inner hot" true (List.mem "main:inner" hot);
  checkb "outer hot" true (List.mem "main:outer" hot);
  checkf "inner avg iters" 60.0
    (Time_profile.avg_iterations p.Profiles.time ~lid:"main:inner");
  checkf "outer avg iters" 55.0
    (Time_profile.avg_iterations p.Profiles.time ~lid:"main:outer");
  checkb "outer fraction dominates" true
    (Time_profile.time_fraction p.Profiles.time ~lid:"main:outer"
    >= Time_profile.time_fraction p.Profiles.time ~lid:"main:inner")

let test_hot_loop_thresholds () =
  (* a 10-iteration loop fails the >= 50 average-iterations rule *)
  let src =
    {|
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %i2 = add %i, 1
  %c = icmp slt %i2, 10
  condbr %c, loop, exit
exit:
  ret
}
|}
  in
  let _, p = profile src in
  checkb "short loop not hot" false
    (List.mem "main:loop" (Time_profile.hot_loops p.Profiles.time))

let test_callee_time_attribution () =
  (* work done in a callee counts toward the calling loop *)
  let src =
    {|
global @g 8
func @work() {
entry:
  br wloop
wloop:
  %j = phi [entry: 0], [wloop: %j2]
  store 8, @g, %j
  %j2 = add %j, 1
  %c = icmp slt %j2, 20
  condbr %c, wloop, exit
exit:
  ret
}
func @main() {
entry:
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %x = call @work()
  %i2 = add %i, 1
  %d = icmp slt %i2, 60
  condbr %d, loop, exit
exit:
  ret
}
|}
  in
  let m, p = profile src in
  (* the store inside @work carries a dependence attributed to main:loop *)
  let st = find m (fun i -> Instr.writes_memory i) in
  checkb "callee store in caller-loop dep profile" true
    (Memdep_profile.observed p.Profiles.memdep ~lid:"main:loop" ~src:st ~dst:st
       ~cross:true);
  checkb "main loop fraction > 0.9" true
    (Time_profile.time_fraction p.Profiles.time ~lid:"main:loop" > 0.9)

let suite =
  [
    ( "profile",
      [
        Alcotest.test_case "edge profile" `Quick test_edge_profile;
        Alcotest.test_case "edge profile, multiple inputs" `Quick
          test_edge_profile_multi_input;
        Alcotest.test_case "value profile" `Quick test_value_profile;
        Alcotest.test_case "residue profile" `Quick test_residue_profile;
        Alcotest.test_case "residue expand" `Quick test_residue_expand;
        Alcotest.test_case "points-to profile" `Quick test_points_to_profile;
        Alcotest.test_case "lifetime profile" `Quick test_lifetime_profile;
        Alcotest.test_case "lifetime leak detected" `Quick
          test_lifetime_leak_detected;
        Alcotest.test_case "memory-dependence profile" `Quick
          test_memdep_profile;
        Alcotest.test_case "time profile, nested loops" `Quick
          test_time_profile_nested;
        Alcotest.test_case "hot-loop thresholds" `Quick
          test_hot_loop_thresholds;
        Alcotest.test_case "callee attribution" `Quick
          test_callee_time_attribution;
      ] );
  ]
