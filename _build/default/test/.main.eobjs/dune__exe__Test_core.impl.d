test/test_core.ml: Alcotest Aresult Assertion Fmt Gen Join List Module_api Orchestrator QCheck QCheck_alcotest Query Response Scaf Scaf_cfg Scaf_ir
