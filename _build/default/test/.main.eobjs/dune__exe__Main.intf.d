test/main.mli:
