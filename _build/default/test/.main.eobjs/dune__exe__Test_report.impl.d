test/test_report.ml: Alcotest Aresult Array Astring_contains List Module_api Orchestrator Query Response Scaf Scaf_cfg Scaf_ir Scaf_pdg Scaf_report
