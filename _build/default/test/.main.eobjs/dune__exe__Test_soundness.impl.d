test/test_soundness.ml: Bool Buffer Fun Instr Irmod List Memdep_profile Parser Pdg Printf Profiler Profiles QCheck QCheck_alcotest Response Scaf Scaf_ir Scaf_pdg Scaf_profile Schemes String Verify
