test/test_temporal.ml: Alcotest Aresult Orchestrator Parser Progctx Query Registry Response Scaf Scaf_analysis Scaf_cfg Scaf_ir Value Verify
