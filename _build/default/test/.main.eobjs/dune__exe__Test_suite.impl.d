test/test_suite.ml: Alcotest Benchmark List Option Printf Registry Scaf_interp Scaf_pdg Scaf_profile Scaf_report Scaf_suite Scaf_transform
