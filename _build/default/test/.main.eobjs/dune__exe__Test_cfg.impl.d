test/test_cfg.ml: Alcotest Array Cfg Ctrl Dom Func Gen Instr Int64 Irmod List Loops Option Parser Printf QCheck QCheck_alcotest Reach Scaf_cfg Scaf_ir String Value
