test/test_interp.ml: Alcotest Astring_contains Buffer Eval Gen Hooks Int64 List Memory Parser Printf QCheck QCheck_alcotest Runtime Scaf_interp Scaf_ir
