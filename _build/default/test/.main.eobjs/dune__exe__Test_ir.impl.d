test/test_ir.ml: Alcotest Astring_contains Builder Fmt Func Gen Instr Irmod Lexer List Option Parser QCheck QCheck_alcotest Scaf_ir Stdlib Value Verify
