test/test_context.ml: Alcotest Aresult Instr Irmod Module_api Orchestrator Parser Printf Profiler Profiles Query Response Scaf Scaf_cfg Scaf_ir Scaf_profile Scaf_speculation Value Verify
