examples/custom_module.mli:
