examples/parallelization_planning.ml: Aresult Benchmark Fmt List Nodep Option Pdg Registry Response Scaf Scaf_pdg Scaf_profile Scaf_suite Scaf_transform Schemes
