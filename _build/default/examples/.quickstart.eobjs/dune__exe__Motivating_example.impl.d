examples/motivating_example.ml: Assertion Fmt Instr Irmod List Parser Query Response Scaf Scaf_interp Scaf_ir Scaf_pdg Scaf_profile Scaf_transform String Value Verify
