examples/quickstart.mli:
