examples/quickstart.ml: Fmt Instr Irmod Parser Query Response Scaf Scaf_ir Scaf_pdg Scaf_profile Value Verify
