examples/custom_module.ml: Aresult Fmt Instr Int64 Irmod Module_api Orchestrator Parser Progctx Ptrexpr Query Response Scaf Scaf_analysis Scaf_cfg Scaf_ir Value Verify
