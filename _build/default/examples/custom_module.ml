(** Extending SCAF with a new analysis module (§3.1 "This decoupled design
    enables independent development of modules and easy extension of the
    framework").

    We add a deliberately tiny "alignment analysis" module: pointers
    derived from differently-sized allocations at constant offsets beyond
    the smaller allocation's size cannot alias. The point is the plumbing:
    a module only implements {!Scaf.Module_api.t}; dropping it into the
    Orchestrator's module list is the whole integration.

    Run with: dune exec examples/custom_module.exe *)

open Scaf
open Scaf_ir
open Scaf_cfg
open Scaf_analysis

(* The custom module: proves NoAlias between a small alloca and any
   constant-offset pointer past its end (a bounds argument the stock
   ensemble does not make for *unknown-base* pointers: if the offset from
   ANY base is larger than the small object's size, and the small object's
   pointer is at offset 0, an 8-byte overlap would overrun it). *)
let tiny_object_aa (prog : Progctx.t) : Module_api.t =
  Module_api.make ~name:"tiny-object-aa" ~kind:Module_api.Memory
    ~factored:false (fun _ctx q ->
      match q with
      | Query.Modref _ -> Module_api.no_answer q
      | Query.Alias a -> (
          let size_of v fname =
            match Ptrexpr.resolve prog ~fname v with
            | [ { Ptrexpr.base = Ptrexpr.BAlloca id; off = Some 0L } ] -> (
                match Progctx.occ prog id with
                | Some o -> (
                    match o.Irmod.Index.instr.Instr.kind with
                    | Instr.Alloca { size } -> Some size
                    | _ -> None)
                | None -> None)
            | _ -> None
          in
          let min_off v fname =
            match Ptrexpr.resolve prog ~fname v with
            | [ { Ptrexpr.off = Some o; _ } ] -> Some o
            | _ -> None
          in
          let check (small : Query.memloc) (other : Query.memloc) =
            match
              (size_of small.Query.ptr small.Query.fname,
               min_off other.Query.ptr other.Query.fname)
            with
            | Some sz, Some off when Int64.compare off (Int64.of_int sz) >= 0
              ->
                (* [other] points at least [sz] bytes into *some* object;
                   if it aliased the small object, the access would overrun
                   it — undefined behaviour analyses may assume away *)
                Some (Response.free (Aresult.RAlias Aresult.NoAlias))
            | _ -> None
          in
          match check a.Query.a1 a.Query.a2 with
          | Some r -> r
          | None -> (
              match check a.Query.a2 a.Query.a1 with
              | Some r -> r
              | None -> Module_api.no_answer q)))

let src =
  {|
func @work(%buf) {
entry:
  %tiny = alloca 8
  store 8, %tiny, 1
  br loop
loop:
  %i = phi [entry: 0], [loop: %i2]
  %p = gep %buf, 64
  store 8, %p, %i          ; 64 bytes into an *unknown* object
  %v = load 8, %tiny       ; the tiny object is only 8 bytes
  %s = add %v, %i
  store 8, %tiny, %s
  %i2 = add %i, 1
  %c = icmp slt %i2, 100
  condbr %c, loop, exit
exit:
  %f = load 8, %tiny
  ret %f
}

func @main() {
entry:
  %big = call @malloc(256)
  %r = call @work(%big)
  call @print(%r)
  ret
}
|}

let () =
  let m = Parser.parse_exn_msg src in
  Verify.check_exn m;
  let prog = Progctx.build m in
  let find p =
    let r = ref (-1) in
    Irmod.iter_instrs m (fun _ _ i -> if p i then r := i.Instr.id);
    !r
  in
  let deep_store =
    find (fun i ->
        match i.Instr.kind with
        | Instr.Store { ptr = Value.Reg "p"; _ } -> true
        | _ -> false)
  in
  let tiny_load = find (fun i -> i.Instr.dst = Some "v") in
  let q =
    Query.modref_instrs ~loop:"work:loop" ~tr:Query.Same deep_store tiny_load
  in

  (* Without the custom module. Note: %big is opaque enough here only if we
     hide it; for the demo we query through a configuration that lacks
     underlying-object reasoning, keeping the focus on the plumbing. *)
  let base_modules = [ Scaf_analysis.Basic_aa.create prog ] in
  let without =
    Orchestrator.create prog (Orchestrator.default_config base_modules)
  in
  let with_custom =
    Orchestrator.create prog
      (Orchestrator.default_config (base_modules @ [ tiny_object_aa prog ]))
  in
  Fmt.pr "query: %a@." Query.pp q;
  Fmt.pr "without tiny-object-aa: %a@." Response.pp
    (Orchestrator.handle without q);
  let r = Orchestrator.handle with_custom q in
  Fmt.pr "with tiny-object-aa:    %a (via %a)@." Response.pp r
    Fmt.(list ~sep:comma string)
    (Response.Sset.elements r.Response.provenance)
