(** Experiment drivers: everything needed to regenerate the paper's
    evaluation section (Figures 8, 9, 10 and Tables 1, 2) on the synthetic
    suite. See DESIGN.md §6 for the experiment index and EXPERIMENTS.md for
    recorded paper-vs-measured results. *)

open Scaf_profile
open Scaf_pdg
open Scaf_suite

type bench_eval = {
  bench : Program.t;
  profiles : Profiles.t;
  caf : Nodep.benchmark_report;
  confluence : Nodep.benchmark_report;
  scaf : Nodep.benchmark_report;
  memspec : Nodep.benchmark_report;
  observed : Nodep.benchmark_report;
  cache_stats : (string * Scaf.Qcache.Snapshot.t) list;
      (** per-scheme shared-cache counters, for the memoizing schemes *)
}

(** Profile one benchmark on its training inputs and run the PDG client
    under every scheme. [pool], when given, fans the hot loops of each
    scheme out across the pool's worker domains (one orchestrator per
    worker over the scheme's shared cache); [jobs > 1] scopes a transient
    pool instead. Results are identical to the sequential run either way.
    [trace]/[metrics] attach to the SCAF scheme — the one whose derivations
    the observability layer explains; both are domain-safe and strictly
    observational (reports are unchanged). [profiles] skips the profiling
    step when the caller (e.g. the query daemon, which profiles every
    benchmark once at load) already holds this benchmark's profiles. *)
let evaluate_bench ?pool ?(jobs = 1) ?trace ?metrics ?profiles
    (b : Program.t) : bench_eval =
  let profiles =
    match profiles with Some p -> p | None -> Program.profiles b
  in
  let eval s =
    Nodep.evaluate_scheme ?pool ~jobs ~bname:(Program.id b) profiles s
  in
  let caf_s = Schemes.caf_scheme profiles in
  let conf_s = Schemes.confluence_scheme profiles in
  let scaf_s = Schemes.scaf_scheme ?trace ?metrics profiles in
  let caf = eval caf_s in
  let confluence = eval conf_s in
  let scaf = eval scaf_s in
  let memspec = eval (Schemes.memory_speculation_scheme profiles) in
  let observed = eval (Schemes.observed_scheme profiles) in
  let cache_stats =
    List.filter_map
      (fun (s : Schemes.scheme) ->
        Option.map
          (fun c -> (s.Schemes.sname, Scaf.Qcache.snapshot c))
          s.Schemes.scache)
      [ caf_s; conf_s; scaf_s ]
  in
  { bench = b; profiles; caf; confluence; scaf; memspec; observed; cache_stats }

(** Two-level fan-out: with several benchmarks, whole benchmarks (profiling
    included — the dominant cost) spread across the pool's worker domains
    and each benchmark's loops run sequentially inside its worker; a
    single benchmark instead fans its hot loops out on the same pool.
    Either way the reports are identical to the sequential run.

    [pool] is the caller's long-lived pool; without one, [jobs > 1] scopes
    a transient pool around the batch ([jobs <= 1]: fully sequential, no
    pool at all). The per-benchmark stage never touches the shared pool
    from inside a worker — a nested [Scheduler.map] on the same pool would
    deadlock on the submission lock, so the fan-out chooses one level. *)
let evaluate_all ?pool ?(jobs = 1) ?trace ?metrics ?benchmarks () :
    bench_eval list =
  let benchmarks =
    match benchmarks with Some bs -> bs | None -> Registry.all ()
  in
  let fan (p : Scheduler.pool) =
    match benchmarks with
    | [ b ] -> [ evaluate_bench ~pool:p ?trace ?metrics b ]
    | bs ->
        Scheduler.map p
          ~state:(fun () -> ())
          ~f:(fun () b -> evaluate_bench ?trace ?metrics b)
          bs
  in
  match pool with
  | Some p -> fan p
  | None ->
      if jobs <= 1 then List.map (evaluate_bench ?trace ?metrics) benchmarks
      else Scheduler.with_pool ~jobs fan

(** Shared-cache counters summed over all benchmarks, per scheme — the
    hit-rate report behind the [--cache-stats] flag of [scaf_eval]. *)
let cache_stats_summary (evals : bench_eval list) :
    (string * Scaf.Qcache.Snapshot.t) list =
  List.fold_left
    (fun acc e ->
      List.fold_left
        (fun acc (name, (s : Scaf.Qcache.Snapshot.t)) ->
          let merged =
            match List.assoc_opt name acc with
            | None -> s
            | Some t -> Scaf.Qcache.Snapshot.merge s t
          in
          (name, merged) :: List.remove_assoc name acc)
        acc e.cache_stats)
    [] evals
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Figure 8                                                            *)
(* ------------------------------------------------------------------ *)

(** The raw numbers behind one Figure 8 row: this benchmark's weighted
    %NoDep under each scheme ([row_observed] is the raw observed share —
    rendering flips it to the 100-x ceiling the paper plots). Splitting the
    data from the rendering lets the query daemon ship rows over the wire
    (bit-exact binary64) and a remote client render the very same table
    bytes as the batch path. *)
type fig8_row = {
  row_bench : string;
  row_caf : float;
  row_confluence : float;
  row_scaf : float;
  row_memspec : float;
  row_observed : float;
}

let fig8_row_of_eval (e : bench_eval) : fig8_row =
  {
    row_bench = Program.id e.bench;
    row_caf = e.caf.Nodep.weighted_nodep;
    row_confluence = e.confluence.Nodep.weighted_nodep;
    row_scaf = e.scaf.Nodep.weighted_nodep;
    row_memspec = e.memspec.Nodep.weighted_nodep;
    row_observed = e.observed.Nodep.weighted_nodep;
  }

let fig8_rows (evals : bench_eval list) : fig8_row list =
  List.map fig8_row_of_eval evals

(** Figure 8: %NoDep per benchmark under each scheme (weighted by loop
    time). "Observed" is reported as the paper plots it: the share of
    dependences that *did* manifest (the ceiling no scheme passes is
    100 - observed). *)
let fig8_of_rows (rows : fig8_row list) : string =
  let table_rows =
    List.map
      (fun r ->
        [
          r.row_bench;
          Report.pct r.row_caf;
          Report.pct r.row_confluence;
          Report.pct r.row_scaf;
          Report.pct r.row_memspec;
          Report.pct (100.0 -. r.row_observed);
          Report.bar r.row_scaf;
        ])
      rows
  in
  let col f = List.map f rows in
  let avg = Nodep.mean and geo = Nodep.geomean in
  let caf_c = col (fun r -> r.row_caf) in
  let conf_c = col (fun r -> r.row_confluence) in
  let scaf_c = col (fun r -> r.row_scaf) in
  let ms_c = col (fun r -> r.row_memspec) in
  let obs_c = col (fun r -> 100.0 -. r.row_observed) in
  let stat name f =
    [
      name;
      Report.pct (f caf_c);
      Report.pct (f conf_c);
      Report.pct (f scaf_c);
      Report.pct (f ms_c);
      Report.pct (f obs_c);
      "";
    ]
  in
  Report.table
    ~header:
      [ "Benchmark"; "CAF"; "Confl."; "SCAF"; "MemSpec"; "Observed"; "SCAF bar" ]
    ~rows:(table_rows @ [ stat "Average" avg; stat "Geomean" geo ])

let fig8 (evals : bench_eval list) : string = fig8_of_rows (fig8_rows evals)

(** Figure 8 headline deltas: coverage gain over confluence, and shrink of
    the memory-speculation residual (MemSpec - X). *)
let fig8_deltas_of_rows (rows : fig8_row list) : string =
  let gain r = r.row_scaf -. r.row_confluence in
  let residual f r = max 0.0 (r.row_memspec -. f r) in
  let res_conf = residual (fun r -> r.row_confluence) in
  let res_scaf = residual (fun r -> r.row_scaf) in
  let shrink =
    List.filter_map
      (fun r ->
        let c = res_conf r in
        if c > 0.0 then Some (100.0 *. (c -. res_scaf r) /. c) else None)
      rows
  in
  (* speculation-attributable coverage: what cheap speculation adds beyond
     CAF; the paper reports SCAF's relative increase over confluence *)
  let rel =
    List.filter_map
      (fun r ->
        let conf = r.row_confluence -. r.row_caf in
        let scaf = r.row_scaf -. r.row_caf in
        if conf > 0.0 then Some (100.0 *. (scaf -. conf) /. conf) else None)
      rows
  in
  Printf.sprintf
    "SCAF coverage gain over Confluence: %+.2f mean / %+.2f geomean (pp)\n\
     Speculation-attributable coverage gain: %+.2f%% mean / %+.2f%% geomean\n\
     Memory-speculation residual shrink: %.2f%% mean / %.2f%% geomean\n\
     (paper: +68.35%% mean / +56.27%% geomean relative gain; 58.41%% geomean \
     residual shrink)"
    (Nodep.mean (List.map gain rows))
    (Nodep.geomean (List.map gain rows))
    (Nodep.mean rel)
    (Nodep.geomean (List.map (fun x -> max x 0.0) rel))
    (Nodep.mean shrink) (Nodep.geomean shrink)

let fig8_deltas (evals : bench_eval list) : string =
  fig8_deltas_of_rows (fig8_rows evals)

(* ------------------------------------------------------------------ *)
(* Figure 9                                                            *)
(* ------------------------------------------------------------------ *)

(** Figure 9: per-hot-loop scatter of Confluence vs SCAF %NoDep. *)
let fig9_points (evals : bench_eval list) : (string * float * float) list =
  List.concat_map
    (fun e ->
      List.map
        (fun (lid, r) ->
          let conf =
            match List.assoc_opt lid e.confluence.Nodep.per_loop with
            | Some cr -> Pdg.nodep_pct cr
            | None -> 0.0
          in
          (Printf.sprintf "%s %s" (Program.id e.bench) lid, conf, Pdg.nodep_pct r))
        e.scaf.Nodep.per_loop)
    evals

let fig9 (evals : bench_eval list) : string =
  let pts = fig9_points evals in
  let above =
    List.length (List.filter (fun (_, c, s) -> s > c +. 1e-9) pts)
  in
  let rows =
    List.map
      (fun (n, c, s) ->
        [
          n;
          Report.pct c;
          Report.pct s;
          (if s > c +. 1e-9 then "SCAF wins" else "tie");
        ])
      pts
  in
  Report.table ~header:[ "Hot loop"; "Confluence"; "SCAF"; "" ] ~rows
  ^ Printf.sprintf
      "\n%d hot loops; SCAF above the diagonal on %d (paper: 56 loops, 37 \
       above)\n"
      (List.length pts) above

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 (evals : bench_eval list) : string =
  let improved =
    List.concat_map
      (fun e ->
        Collab.improved_queries ~bname:(Program.id e.bench) e.scaf
          e.confluence)
      evals
  in
  let all_loops =
    List.concat_map
      (fun e ->
        List.map
          (fun (lid, _) -> (Program.id e.bench, lid))
          e.scaf.Nodep.per_loop)
      evals
  in
  let cov =
    Collab.table2
      ~benchmarks:(List.map (fun e -> Program.id e.bench) evals)
      ~all_loops improved
  in
  Report.table
    ~header:[ "Analysis Modules"; "Benchmark %"; "Loop %"; "Improved Query %" ]
    ~rows:
      (List.map
         (fun (c : Collab.coverage) ->
           [
             c.Collab.row_label;
             Report.pct2 c.Collab.bench_pct;
             Report.pct2 c.Collab.loop_pct;
             Report.pct2 c.Collab.query_pct;
           ])
         cov)
  ^ Printf.sprintf "\n(%d improved queries across %d hot loops)\n"
      (List.length improved) (List.length all_loops)

(* ------------------------------------------------------------------ *)
(* Figure 10                                                           *)
(* ------------------------------------------------------------------ *)

(** Figure 10: query-latency CDFs for CAF, SCAF without the Desired-Result
    parameter, and SCAF. Latencies are measured with [clock] over every
    PDG query of every benchmark. *)
let fig10 ~(clock : unit -> float) (evals : bench_eval list) : string =
  let collect mk =
    List.concat_map
      (fun e ->
        let r = mk e.profiles in
        let _ = Nodep.evaluate ~bname:(Program.id e.bench) e.profiles r in
        r.Schemes.latencies ())
      evals
  in
  let caf_l = collect (fun p -> Schemes.caf ~clock p) in
  let nodr_l =
    collect (fun p -> Schemes.scaf ~clock ~respect_desired:false p)
  in
  let scaf_l = collect (fun p -> Schemes.scaf ~clock p) in
  let fmt_line name lats =
    let s = Report.cdf_summary lats in
    name
    :: List.map (fun (_, v) -> Printf.sprintf "%8.1f" (v *. 1e6)) s
  in
  let header =
    "Scheme (us)"
    :: List.map fst (Report.cdf_summary [ 1.0 ])
  in
  let geo l =
    match List.filter (fun x -> x > 0.0) l with
    | [] -> 0.0
    | xs ->
        exp
          (List.fold_left (fun s x -> s +. log x) 0.0 xs
          /. float_of_int (List.length xs))
  in
  let g_caf = geo caf_l and g_nodr = geo nodr_l and g_scaf = geo scaf_l in
  Report.table ~header
    ~rows:
      [
        fmt_line "CAF" caf_l;
        fmt_line "SCAF w/o Desired Result" nodr_l;
        fmt_line "SCAF" scaf_l;
      ]
  ^ Printf.sprintf
      "\nDesired-Result parameter cuts SCAF geomean latency by %.1f%% (paper: \
       27.50%%)\nSCAF vs CAF geomean latency: %+.1f%% (paper: +1.61%%)\n"
      (if g_nodr > 0.0 then 100.0 *. (g_nodr -. g_scaf) /. g_nodr else 0.0)
      (if g_caf > 0.0 then 100.0 *. (g_scaf -. g_caf) /. g_caf else 0.0)
