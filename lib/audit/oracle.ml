(** Pass 2 — the dynamic-dependence oracle.

    The benchmark is executed under the interpreter with the
    {!Scaf_interp.Depwatch} instrumentation attached (driven by the loop
    tracker), once per training input and once on the reference input.
    What actually happened is ground truth:

    - an *assertion-free* NoDep/NoAlias answer claims every execution; one
      observed contradicting dependence — on any input — is a soundness
      bug in the answering module;
    - a *speculative* answer only claims the profiled behavior, so it is
      graded against the training inputs alone: a module whose speculative
      answer is contradicted by the very inputs it profiled misread its own
      profile (the reference input legitimately misspeculates — that is
      what validation and rollback are for).

    The pass also tallies per-module "audit cards": how often each module
    was consulted, answered, answered free vs speculatively, disproved a
    dependence, and was caught unsound. *)

open Scaf
open Scaf_cfg
open Scaf_interp
open Scaf_profile

(* ------------------------------------------------------------------ *)
(* Audit cards                                                         *)
(* ------------------------------------------------------------------ *)

type card = {
  cname : string;
  mutable consulted : int;
  mutable answered : int;  (** non-bottom results *)
  mutable free : int;  (** answered with an assertion-free option *)
  mutable speculative : int;  (** answered under assertions only *)
  mutable nodep : int;  (** affordable NoModRef answers (client currency) *)
  mutable unsound : int;  (** answers contradicted by observation *)
}

type cards = (string, card) Hashtbl.t

let create_cards () : cards = Hashtbl.create 32

let card_of (cards : cards) (name : string) : card =
  match Hashtbl.find_opt cards name with
  | Some c -> c
  | None ->
      let c =
        {
          cname = name;
          consulted = 0;
          answered = 0;
          free = 0;
          speculative = 0;
          nodep = 0;
          unsound = 0;
        }
      in
      Hashtbl.replace cards name c;
      c

let all_cards (cards : cards) : card list =
  Hashtbl.fold (fun _ c acc -> c :: acc) cards []
  |> List.sort (fun a b -> compare a.cname b.cname)

let tally (cards : cards) (name : string) (r : Response.t) : card =
  let c = card_of cards name in
  c.consulted <- c.consulted + 1;
  if not (Aresult.is_bottom r.Response.result) then begin
    c.answered <- c.answered + 1;
    if Response.Options.has_unconditional r.Response.options then c.free <- c.free + 1
    else c.speculative <- c.speculative + 1;
    if Scaf_pdg.Pdg.affordable_nodep r then c.nodep <- c.nodep + 1
  end;
  c

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

(* Hooks that drive a tracker from interpreter events. *)
let tracker_hooks (tracker : Tracker.t) : Hooks.t =
  {
    Hooks.nop with
    Hooks.on_edge =
      (fun ~src_term:_ ~src ~dst ~func ->
        Tracker.edge tracker ~func:func.Scaf_ir.Func.name ~src ~dst);
    on_call_enter =
      (fun f ~ctx:_ -> Tracker.call_enter tracker f.Scaf_ir.Func.name);
    on_call_exit = (fun _ -> Tracker.call_exit tracker);
  }

(** Run the program once per input with dependence watchers attached.
    Returns [(train, any)]: the dependences observed on the training
    inputs only, and on training plus reference inputs. *)
let observe ?(fuel = 50_000_000) (prog : Progctx.t)
    ~(train : int64 array list) ~(ref_input : int64 array) :
    Depwatch.t * Depwatch.t =
  let wt = Depwatch.create () and wa = Depwatch.create () in
  let run (watchers : Depwatch.t list) (input : int64 array) =
    List.iter Depwatch.reset_run watchers;
    let tracker =
      Tracker.create ~loops_of:(fun fname -> Progctx.loops_of prog fname)
    in
    let snapshot () = Tracker.snapshot tracker in
    let hooks =
      Hooks.combine_all
        (tracker_hooks tracker
        :: List.map (fun w -> Depwatch.hooks w ~snapshot) watchers)
    in
    let (_ : Eval.result) = Eval.run ~hooks ~fuel ~input prog.Progctx.m in
    Tracker.finish tracker
  in
  List.iter (run [ wt; wa ]) train;
  run [ wa ] ref_input;
  (wt, wa)

(* ------------------------------------------------------------------ *)
(* Grading                                                             *)
(* ------------------------------------------------------------------ *)

let render_query (q : Query.t) : string = Fmt.str "%a" Query.pp q

(* Value prediction breaks dependences that *do* manifest: the validated
   claim is the loaded value (at an endpoint, or at a must-aliasing kill
   load between the endpoints), not the absence of the store/load edge. A
   manifested dependence is therefore excused whenever an option carries a
   value-prediction check. *)
let value_predicted (r : Response.t) : bool =
  List.exists
    (List.exists (fun (a : Assertion.t) ->
         match a.Assertion.payload with
         | Assertion.Value_predict _ -> true
         | _ -> false))
    r.Response.options

(* Grade one module's response to a no-dependence/no-alias claim in loop
   [lid]. [evidence] lists the observed-dependence patterns (src, dst,
   cross) any one of which contradicts the claim — alias claims deny both
   directions, dependence claims exactly one. *)
let grade ~bench ~lid ~(train : Depwatch.t) ~(any : Depwatch.t) ~witness
    ~explain ~(evidence : (int * int * bool) list) ~(claim : string)
    (name : string) (r : Response.t) (card : card) (q : Query.t) :
    Finding.t option =
  let disproves =
    match (q, r.Response.result) with
    | Query.Modref _, Aresult.RModref Aresult.NoModRef -> true
    | Query.Alias _, Aresult.RAlias Aresult.NoAlias -> true
    | _ -> false
  in
  let manifested (w : Depwatch.t) =
    List.find_opt
      (fun (src, dst, cross) -> Depwatch.observed w ~lid ~src ~dst ~cross)
      evidence
  in
  let finding ~phrase (src, dst, cross) =
    card.unsound <- card.unsound + 1;
    Some
      (Finding.make ~pass:Finding.Oracle ~severity:Finding.Soundness
         ~modname:name ~bench ~query:(render_query q) ~witness:(witness ())
         ~explain:(explain ())
         (Printf.sprintf
            "%s %s contradicted by %s: dependence %d -> %d (%s-iteration) \
             manifested in loop %s"
            phrase claim
            (if phrase = "assertion-free" then "execution"
             else "its own profiling inputs")
            src dst
            (if cross then "cross" else "intra")
            lid))
  in
  if not disproves then None
  else if Response.Options.has_unconditional r.Response.options then
    match manifested any with
    | Some ev -> finding ~phrase:"assertion-free" ev
    | None -> None
  else if value_predicted r then None
  else
    match manifested train with
    | Some ev -> finding ~phrase:"speculative" ev
    | None -> None

(** Grade every module's individual answers over one hot loop's workload
    against the observed dependences, tallying audit cards along the way. *)
let check_loop (orch : Orchestrator.t) (prog : Progctx.t) ~(bench : string)
    ~(lid : string) ~(train : Depwatch.t) ~(any : Depwatch.t) (cards : cards)
    : Finding.t list =
  let w = lazy (Witness.for_loop prog ~lid) in
  let witness () = Lazy.force w in
  let dep_work =
    List.map
      (fun (dq : Scaf_pdg.Pdg.dep_query) ->
        ( Scaf_pdg.Pdg.to_query lid dq,
          [ (dq.Scaf_pdg.Pdg.src, dq.Scaf_pdg.Pdg.dst, dq.Scaf_pdg.Pdg.cross) ],
          "NoDep" ))
      (Scaf_pdg.Pdg.queries_of_loop prog lid)
  in
  let alias_work =
    List.map
      (fun (i1, i2, q) ->
        let evidence =
          match q with
          | Query.Alias { Query.atr = Query.Before; _ } ->
              (* (a1 from an earlier iteration) vs a2: the matching observed
                 pattern is i1-as-source, cross-iteration *)
              [ (i1, i2, true) ]
          | _ ->
              (* intra-iteration NoAlias denies overlap in both execution
                 orders *)
              [ (i1, i2, false); (i2, i1, false) ]
        in
        (q, evidence, "NoAlias"))
      (Scaf_pdg.Pdg.alias_probes_of_loop prog lid)
  in
  List.concat_map
    (fun (q, evidence, claim) ->
      let e = lazy (Contradiction.explain_query orch q) in
      let explain () = Lazy.force e in
      List.filter_map
        (fun (name, r) ->
          let card = tally cards name r in
          grade ~bench ~lid ~train ~any ~witness ~explain ~evidence ~claim
            name r card q)
        (Orchestrator.consult_all orch q))
    (dep_work @ alias_work)
