(** Pass 1 — cross-module contradiction detection.

    Every query of the benchmark workload is fanned to each registered
    module individually ({!Scaf.Orchestrator.consult_all}, which bypasses
    the join and the bail-out policy), and the per-module answers are
    cross-examined:

    - *lattice contradictions*: two assertion-free answers that cannot both
      hold — one module proves the locations disjoint ([NoAlias]) while
      another proves them identical ([MustAlias]/[SubAlias]). Free answers
      are claims about every execution, so this is a soundness bug in at
      least one of the two. (Mod vs Ref vs NoModRef answers are *not*
      contradictions: Algorithm 2 joins Mod and Ref to NoModRef by design.)
    - *asymmetry*: alias is symmetric up to operand order and
      [flip_temporal]; a module whose free answers to a query and its
      mirror contradict each other is unsound, one whose precision merely
      differs earns a warning.
    - *non-monotonicity*: the orchestrator's joined answer must be at least
      as precise as any single module's free answer — the join can only
      strengthen. A weaker joined answer means the configuration is leaving
      sound precision on the table. *)

open Scaf

let render_query (q : Query.t) : string = Fmt.str "%a" Query.pp q

(** The ensemble's derivation tree for [q], rendered: a fresh traced
    orchestrator (same program, same configuration, fresh cache — replaying
    through the shared memo table would show only a cache hit with no
    consults) re-resolves the query with a collecting sink attached. *)
let explain_query (orch : Orchestrator.t) (q : Query.t) : string =
  let sink = Scaf_trace.Sink.create () in
  let o =
    Orchestrator.create (Orchestrator.prog orch)
      { (Orchestrator.config orch) with Orchestrator.trace = sink }
  in
  ignore (Orchestrator.handle o q);
  match Scaf_trace.Sink.roots sink with
  | n :: _ -> Scaf_trace.Sink.tree_to_string n
  | [] -> ""

(* Assertion-free definite claims only: speculative options may legally
   contradict each other (each is validated at runtime). *)
let free_alias (r : Response.t) : Aresult.alias_res option =
  if not (Response.Options.has_unconditional r.Response.options) then None
  else match r.Response.result with Aresult.RAlias a -> Some a | _ -> None

let contradictory (a : Aresult.alias_res) (b : Aresult.alias_res) : bool =
  match (a, b) with
  | Aresult.NoAlias, (Aresult.MustAlias | Aresult.SubAlias)
  | (Aresult.MustAlias | Aresult.SubAlias), Aresult.NoAlias ->
      true
  | _ -> false

let mirror (q : Query.t) : Query.t option =
  match q with
  | Query.Alias a ->
      Some
        (Query.Alias
           {
             a with
             Query.a1 = a.Query.a2;
             a2 = a.Query.a1;
             atr = Query.flip_temporal a.Query.atr;
           })
  | Query.Modref _ -> None

(* Pairwise free-answer contradictions within one fan-out. *)
let check_pairwise ~bench ~query ~witness ~explain
    (answers : (string * Response.t) list) : Finding.t list =
  let frees =
    List.filter_map
      (fun (name, r) -> Option.map (fun a -> (name, a)) (free_alias r))
      answers
  in
  let rec pairs acc = function
    | [] -> acc
    | (n1, a1) :: rest ->
        let acc =
          List.fold_left
            (fun acc (n2, a2) ->
              if contradictory a1 a2 then
                Finding.make ~pass:Finding.Contradiction
                  ~severity:Finding.Soundness
                  ~modname:(Printf.sprintf "%s vs %s" n1 n2)
                  ~bench ~query ~witness:(witness ()) ~explain:(explain ())
                  (Printf.sprintf
                     "assertion-free answers contradict: %s says %s, %s says \
                      %s"
                     n1 (Aresult.alias_name a1) n2 (Aresult.alias_name a2))
                :: acc
              else acc)
            acc rest
        in
        pairs acc rest
  in
  pairs [] frees

(* Per-module symmetry under operand swap + temporal flip. *)
let check_symmetry (orch : Orchestrator.t) ~bench ~witness ~explain
    (q : Query.t) (answers : (string * Response.t) list) : Finding.t list =
  match mirror q with
  | None -> []
  | Some mq ->
      let manswers = Orchestrator.consult_all orch mq in
      List.concat_map
        (fun (name, r) ->
          match List.assoc_opt name manswers with
          | None -> []
          | Some mr -> (
              match (free_alias r, free_alias mr) with
              | Some a, Some b when contradictory a b ->
                  [
                    Finding.make ~pass:Finding.Contradiction
                      ~severity:Finding.Soundness ~modname:name ~bench
                      ~query:(render_query q) ~witness:(witness ())
                      ~explain:(explain ())
                      (Printf.sprintf
                         "free answers to a query and its mirror contradict: \
                          %s vs %s under operand swap + flip_temporal"
                         (Aresult.alias_name a) (Aresult.alias_name b));
                  ]
              | Some a, Some b when a <> b ->
                  [
                    Finding.make ~pass:Finding.Contradiction
                      ~severity:Finding.Warning ~modname:name ~bench
                      ~query:(render_query q)
                      (Printf.sprintf
                         "asymmetric precision under operand swap + \
                          flip_temporal: %s vs %s"
                         (Aresult.alias_name a) (Aresult.alias_name b));
                  ]
              | _ -> []))
        answers

(* The joined answer must be at least as precise as any free individual
   answer. *)
let check_monotonicity (orch : Orchestrator.t) ~bench (q : Query.t)
    (answers : (string * Response.t) list) : Finding.t list =
  let joined = Orchestrator.handle orch q in
  let joined_pr = Aresult.pr joined.Response.result in
  List.filter_map
    (fun (name, r) ->
      if
        Response.Options.has_unconditional r.Response.options
        && Aresult.pr r.Response.result > joined_pr
      then
        Some
          (Finding.make ~pass:Finding.Contradiction ~severity:Finding.Warning
             ~modname:name ~bench ~query:(render_query q)
             (Printf.sprintf
                "join is non-monotone: module alone proves %s free, joined \
                 ensemble answer is %s"
                (Fmt.str "%a" Aresult.pp r.Response.result)
                (Fmt.str "%a" Aresult.pp joined.Response.result)))
      else None)
    answers

(** Run the contradiction pass over one hot loop's workload (dependence
    queries + alias probes). *)
let check_loop (orch : Orchestrator.t) (prog : Scaf_cfg.Progctx.t)
    ~(bench : string) ~(lid : string) : Finding.t list =
  (* the witness is the same per-loop slice for every finding; compute it
     once, on demand *)
  let w = lazy (Witness.for_loop prog ~lid) in
  let witness () = Lazy.force w in
  let dep_queries =
    List.map (Scaf_pdg.Pdg.to_query lid)
      (Scaf_pdg.Pdg.queries_of_loop prog lid)
  in
  let alias_queries =
    List.map (fun (_, _, q) -> q) (Scaf_pdg.Pdg.alias_probes_of_loop prog lid)
  in
  List.concat_map
    (fun q ->
      let answers = Orchestrator.consult_all orch q in
      let query = render_query q in
      (* the derivation tree is only rendered when a finding embeds it *)
      let e = lazy (explain_query orch q) in
      let explain () = Lazy.force e in
      check_pairwise ~bench ~query ~witness ~explain answers
      @ check_symmetry orch ~bench ~witness ~explain q answers
      @ check_monotonicity orch ~bench q answers)
    (dep_queries @ alias_queries)
