(** Audit findings: what a pass discovered, about whom, with what evidence.

    Severity taxonomy (see DESIGN.md):
    - [Soundness] — the module (or configuration) can produce wrong
      optimizations: a free answer contradicted by another free answer or
      by an observed execution. The auditor exits non-zero on any of
      these.
    - [Warning] — suspicious but not demonstrably unsound: precision
      asymmetries, unreachable modules, misconfiguration that silently
      degrades to a weaker policy.
    - [Info] — structural observations worth a look (e.g. premise cycles,
      which the depth budget bounds by design). *)

type severity = Soundness | Warning | Info

type pass = Contradiction | Oracle | Lint

type t = {
  pass : pass;
  severity : severity;
  modname : string;  (** implicated module(s); "config" for wiring findings *)
  bench : string;  (** benchmark, or "-" for configuration findings *)
  query : string;  (** rendered query, or "" *)
  detail : string;  (** what exactly is wrong *)
  witness : string;  (** shrunk witness program, or "" *)
  explain : string;
      (** rendered provenance tree of the implicated query — how the
          ensemble actually derived its answer (modules consulted, premise
          sub-queries, join decisions) — or "" *)
}

let severity_name = function
  | Soundness -> "SOUNDNESS"
  | Warning -> "warning"
  | Info -> "info"

let pass_name = function
  | Contradiction -> "contradiction"
  | Oracle -> "oracle"
  | Lint -> "lint"

let is_soundness (f : t) = f.severity = Soundness

let severity_rank = function Soundness -> 0 | Warning -> 1 | Info -> 2

(** Most severe first, then by pass, module and benchmark. *)
let compare (a : t) (b : t) : int =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 ->
      Stdlib.compare
        (pass_name a.pass, a.modname, a.bench, a.query, a.detail)
        (pass_name b.pass, b.modname, b.bench, b.query, b.detail)
  | c -> c

let make ~pass ~severity ~modname ?(bench = "-") ?(query = "") ?(witness = "")
    ?(explain = "") detail : t =
  { pass; severity; modname; bench; query; detail; witness; explain }

let pp_indented ppf (s : string) =
  Fmt.pf ppf "%a"
    (Fmt.list ~sep:Fmt.cut (fun ppf l -> Fmt.pf ppf "    %s" l))
    (String.split_on_char '\n' s)

let pp ppf (f : t) =
  Fmt.pf ppf "[%s] %s/%s %s: %s" (severity_name f.severity) (pass_name f.pass)
    f.modname f.bench f.detail;
  if f.query <> "" then Fmt.pf ppf "@.  query: %s" f.query;
  if f.witness <> "" then Fmt.pf ppf "@.  witness:@.%a" pp_indented f.witness;
  if f.explain <> "" then
    Fmt.pf ppf "@.  derivation:@.%a" pp_indented f.explain
