(** Pass 3 — query-plan lint: static checks over an orchestrator
    configuration, using the modules' declared capabilities
    ({!Scaf.Module_api.caps}). Nothing here runs a query; these are the
    wiring mistakes that produce silently weak (not wrong) ensembles:

    - modules that can never fire: the reachable query classes are the
      client's classes plus everything reachable modules may emit as
      premises (a fixpoint); a module whose [answers] never intersects
      them is dead weight;
    - premise cycles (module A emits a class module B answers and vice
      versa): legal — the premise depth budget bounds them — but worth
      surfacing, so reported at Info severity;
    - degenerate policies: a [Timeout] bail-out or a module budget without
      a clock silently degrades to the un-budgeted behavior; a
      non-positive premise depth turns every factored module into a
      non-factored one;
    - duplicate module names, which fold distinct modules into one health
      record and one provenance entry. *)

open Scaf

let qclass_mem (c : Module_api.qclass) (cs : Module_api.qclass list) =
  List.mem c cs

let inter (a : Module_api.qclass list) (b : Module_api.qclass list) =
  List.filter (fun c -> qclass_mem c b) a

let config_finding ?(severity = Finding.Warning) detail =
  Finding.make ~pass:Finding.Lint ~severity ~modname:"config" detail

(* Reachability fixpoint over query classes. *)
let check_reachability ~(client : Module_api.qclass list)
    (modules : Module_api.t list) : Finding.t list =
  let reachable = ref client in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (m : Module_api.t) ->
        if inter m.Module_api.caps.Module_api.answers !reachable <> [] then
          List.iter
            (fun c ->
              if not (qclass_mem c !reachable) then begin
                reachable := c :: !reachable;
                changed := true
              end)
            m.Module_api.caps.Module_api.emits)
      modules
  done;
  List.filter_map
    (fun (m : Module_api.t) ->
      if inter m.Module_api.caps.Module_api.answers !reachable = [] then
        Some
          (Finding.make ~pass:Finding.Lint ~severity:Finding.Warning
             ~modname:m.Module_api.name
             (Printf.sprintf
                "module can never fire: it answers {%s} but only {%s} is \
                 reachable from the client query language"
                (String.concat ", "
                   (List.map Module_api.qclass_name
                      m.Module_api.caps.Module_api.answers))
                (String.concat ", "
                   (List.map Module_api.qclass_name !reachable))))
      else None)
    modules

(* Premise cycles: strongly-connected components of the emits->answers
   graph with at least two modules. *)
let check_cycles ~(max_premise_depth : int) (modules : Module_api.t list) :
    Finding.t list =
  let n = List.length modules in
  let arr = Array.of_list modules in
  let edge i j =
    i <> j
    && arr.(i).Module_api.factored
    && inter
         arr.(i).Module_api.caps.Module_api.emits
         arr.(j).Module_api.caps.Module_api.answers
       <> []
  in
  (* tiny Tarjan *)
  let index = Array.make n (-1)
  and low = Array.make n 0
  and on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    for w = 0 to n - 1 do
      if edge v w then
        if index.(w) < 0 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
    done;
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let scc = pop [] in
      if List.length scc > 1 then sccs := scc :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  List.map
    (fun scc ->
      config_finding ~severity:Finding.Info
        (Printf.sprintf
           "premise cycle among {%s} (bounded by max_premise_depth = %d)"
           (String.concat ", "
              (List.map (fun i -> arr.(i).Module_api.name) scc))
           max_premise_depth))
    (List.rev !sccs)

(** Lint an orchestrator configuration against the [client] query classes
    (defaults to the PDG client, which issues modref(instr,instr) only). *)
let check ?(client = [ Module_api.CModref_instr ])
    (config : Orchestrator.config) : Finding.t list =
  let modules = config.Orchestrator.modules in
  let dup_names =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun (m : Module_api.t) ->
        if Hashtbl.mem seen m.Module_api.name then
          Some
            (config_finding
               (Printf.sprintf
                  "duplicate module name %S: health tracking and provenance \
                   fold both instances into one"
                  m.Module_api.name))
        else begin
          Hashtbl.replace seen m.Module_api.name ();
          None
        end)
      modules
  in
  let policy =
    (match (config.Orchestrator.bailout, config.Orchestrator.clock) with
    | Orchestrator.Timeout _, None ->
        [
          config_finding
            "Timeout bail-out without a clock: the deadline can never fire, \
             silently degrading to Definite_free";
        ]
    | _ -> [])
    @ (match (config.Orchestrator.module_budget, config.Orchestrator.clock) with
      | Some _, None ->
          [
            config_finding
              "module_budget without a clock: per-module overruns can never \
               be detected";
          ]
      | _ -> [])
    @
    if
      config.Orchestrator.max_premise_depth <= 0
      && List.exists (fun (m : Module_api.t) -> m.Module_api.factored) modules
    then
      [
        config_finding
          "max_premise_depth <= 0: every premise query of the factored \
           modules is answered bottom";
      ]
    else []
  in
  let empty_caps =
    List.filter_map
      (fun (m : Module_api.t) ->
        if m.Module_api.caps.Module_api.answers = [] then
          Some
            (Finding.make ~pass:Finding.Lint ~severity:Finding.Warning
               ~modname:m.Module_api.name
               "module declares no answerable query class")
        else None)
      modules
  in
  dup_names @ policy @ empty_caps
  @ check_reachability ~client modules
  @ check_cycles
      ~max_premise_depth:config.Orchestrator.max_premise_depth modules
