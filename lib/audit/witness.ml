(** Witness extraction: shrink a whole benchmark module down to the part a
    finding is actually about — the function containing the offending
    query's loop, its transitive direct callees, the globals any of them
    reference, and the external declarations they call. The slice is a
    well-formed MIR module printable with the standard pretty-printer, so a
    finding's witness can be re-parsed and replayed in isolation. *)

open Scaf_ir
open Scaf_cfg

module Sset = Set.Make (String)

let values_of_func (f : Func.t) : Value.t list =
  List.concat_map
    (fun (b : Block.t) ->
      List.concat_map Instr.operands b.Block.instrs
      @ Instr.term_operands b.Block.term)
    f.Func.blocks

let callees_of_func (f : Func.t) : string list =
  List.concat_map
    (fun (b : Block.t) ->
      List.filter_map
        (fun (i : Instr.t) ->
          match i.Instr.kind with
          | Instr.Call { callee; _ } -> Some callee
          | _ -> None)
        b.Block.instrs)
    f.Func.blocks

(** [slice prog ~fname] — the sub-module reachable from function [fname]. *)
let slice (prog : Progctx.t) ~(fname : string) : Irmod.t =
  let m = prog.Progctx.m in
  let rec close seen = function
    | [] -> seen
    | n :: rest ->
        if Sset.mem n seen then close seen rest
        else (
          match Irmod.find_func m n with
          | None -> close seen rest (* external: kept via decls below *)
          | Some f -> close (Sset.add n seen) (callees_of_func f @ rest))
  in
  let fnames = close Sset.empty [ fname ] in
  let funcs =
    List.filter (fun (f : Func.t) -> Sset.mem f.Func.name fnames) m.Irmod.funcs
  in
  let called =
    List.fold_left
      (fun acc f -> Sset.union acc (Sset.of_list (callees_of_func f)))
      Sset.empty funcs
  in
  let globals_used =
    List.fold_left
      (fun acc f ->
        List.fold_left
          (fun acc v ->
            match v with Value.Global g -> Sset.add g acc | _ -> acc)
          acc (values_of_func f))
      Sset.empty funcs
  in
  {
    Irmod.globals =
      List.filter
        (fun (g : Irmod.global) -> Sset.mem g.Irmod.gname globals_used)
        m.Irmod.globals;
    decls =
      List.filter
        (fun (d : Func.decl) -> Sset.mem d.Func.dname called)
        m.Irmod.decls;
    funcs;
  }

(** The witness for a loop-scoped finding: the slice of the function that
    owns loop [lid], printed; empty string if the loop is unknown. *)
let for_loop (prog : Progctx.t) ~(lid : string) : string =
  match Progctx.loop_of_lid prog lid with
  | Some (fname, _) -> Irmod.to_string (slice prog ~fname)
  | None -> ""

(** The witness for an instruction-scoped finding. *)
let for_instr (prog : Progctx.t) ~(id : int) : string =
  match Progctx.func_of_instr prog id with
  | Some f -> Irmod.to_string (slice prog ~fname:f.Func.name)
  | None -> ""
