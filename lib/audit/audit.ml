(** The audit driver: runs all three passes over a benchmark suite and one
    module ensemble, and renders the result.

    Per benchmark: parse + fully verify the program, profile it on its
    training inputs, build the standard SCAF ensemble (plus any
    [extra_modules] under audit), observe its dynamic dependences under the
    interpreter, then sweep every hot loop's query workload through the
    contradiction and oracle passes. The query-plan lint runs once on the
    first benchmark's configuration (the wiring is identical across
    benchmarks).

    The exit contract: {!exit_code} is non-zero iff any finding is of
    soundness class. Warnings and infos never fail a build. *)

open Scaf
open Scaf_profile
open Scaf_suite

type report = {
  findings : Finding.t list;  (** most severe first *)
  cards : Oracle.card list;  (** per-module audit cards, merged over the suite *)
  benches : string list;
  queries : int;  (** client queries fanned out by the audit *)
  modules : string list;  (** ensemble under audit, in consultation order *)
}

let scaf_config ?(extra_modules = fun (_ : Profiles.t) -> [])
    ?(trace = Scaf_trace.Sink.noop) ?metrics (profiles : Profiles.t) :
    Orchestrator.config =
  let prog = profiles.Profiles.ctx in
  let base =
    Orchestrator.default_config
      (Scaf_analysis.Registry.create prog
      @ Scaf_speculation.Registry.create profiles
      @ extra_modules profiles)
  in
  { base with Orchestrator.trace; metrics }

let audit_bench ?extra_modules ?trace ?metrics (cards : Oracle.cards)
    (b : Program.t) : Finding.t list * Orchestrator.config * int =
  let profiles = Program.profiles b in
  let prog = profiles.Profiles.ctx in
  let config = scaf_config ?extra_modules ?trace ?metrics profiles in
  let orch = Orchestrator.create prog config in
  let train, any =
    Oracle.observe prog ~train:(Program.train_inputs b)
      ~ref_input:(Program.ref_input b)
  in
  let loops = List.map fst (Scaf_pdg.Nodep.hot_loop_weights profiles) in
  let bench = Program.id b in
  let findings =
    List.concat_map
      (fun lid ->
        Contradiction.check_loop orch prog ~bench ~lid
        @ Oracle.check_loop orch prog ~bench ~lid ~train ~any cards)
      loops
  in
  (findings, config, (Orchestrator.stats orch).Orchestrator.client_queries)

(** Run the full audit. [extra_modules] appends modules under audit to the
    shipped ensemble (used by tests to demonstrate that a deliberately
    broken module is caught). [trace]/[metrics] attach an observability
    sink and a metrics registry to every orchestrator the audit builds. *)
let run ?extra_modules ?trace ?metrics ?benchmarks () : report =
  let benchmarks =
    match benchmarks with Some bs -> bs | None -> Registry.all ()
  in
  let cards = Oracle.create_cards () in
  let findings, queries, modules, lint_done =
    List.fold_left
      (fun (fs, qs, mods, linted) b ->
        let bfs, config, q = audit_bench ?extra_modules ?trace ?metrics cards b in
        let lint_fs, mods =
          if linted then ([], mods)
          else
            ( Lint.check config,
              List.map
                (fun (m : Module_api.t) -> m.Module_api.name)
                config.Orchestrator.modules )
        in
        (fs @ bfs @ lint_fs, qs + q, mods, true))
      ([], 0, [], false) benchmarks
  in
  ignore lint_done;
  {
    findings = List.sort Finding.compare findings;
    cards = Oracle.all_cards cards;
    benches = List.map Program.id benchmarks;
    queries;
    modules;
  }

let soundness_count (r : report) : int =
  List.length (List.filter Finding.is_soundness r.findings)

(** 1 iff the report contains a soundness-class finding. *)
let exit_code (r : report) : int = if soundness_count r > 0 then 1 else 0

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pct_of n d =
  if d = 0 then "    -"
  else Scaf_report.Report.pct (100.0 *. float_of_int n /. float_of_int d)

let cards_table (cards : Oracle.card list) : string =
  Scaf_report.Report.table
    ~header:
      [
        "Module";
        "Consulted";
        "Answered";
        "Free";
        "Spec";
        "NoDep";
        "Answer %";
        "Unsound";
      ]
    ~rows:
      (List.map
         (fun (c : Oracle.card) ->
           [
             c.Oracle.cname;
             string_of_int c.Oracle.consulted;
             string_of_int c.Oracle.answered;
             string_of_int c.Oracle.free;
             string_of_int c.Oracle.speculative;
             string_of_int c.Oracle.nodep;
             pct_of c.Oracle.answered c.Oracle.consulted;
             (if c.Oracle.unsound = 0 then "-"
              else string_of_int c.Oracle.unsound);
           ])
         cards)

let render (r : report) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "Audit: %d benchmarks, %d modules, %d client queries fanned out\n\n"
       (List.length r.benches) (List.length r.modules) r.queries);
  Buffer.add_string buf "Per-module audit cards:\n";
  Buffer.add_string buf (cards_table r.cards);
  Buffer.add_char buf '\n';
  (match r.findings with
  | [] -> Buffer.add_string buf "\nNo findings.\n"
  | fs ->
      let count sev =
        List.length (List.filter (fun f -> f.Finding.severity = sev) fs)
      in
      Buffer.add_string buf
        (Printf.sprintf "\n%d findings (%d soundness, %d warning, %d info):\n"
           (List.length fs)
           (count Finding.Soundness)
           (count Finding.Warning)
           (count Finding.Info));
      List.iter
        (fun f -> Buffer.add_string buf (Fmt.str "%a@." Finding.pp f))
        fs);
  Buffer.add_string buf
    (if soundness_count r > 0 then
       "\nAUDIT FAILED: soundness-class findings present.\n"
     else "\nAudit passed: no soundness-class findings.\n");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON (hand-rolled: no JSON library in the toolchain)                *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (r : report) : string =
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let finding (f : Finding.t) =
    Printf.sprintf
      "{\"pass\":%s,\"severity\":%s,\"module\":%s,\"benchmark\":%s,\"query\":%s,\"detail\":%s,\"witness\":%s,\"explain\":%s}"
      (str (Finding.pass_name f.Finding.pass))
      (str (Finding.severity_name f.Finding.severity))
      (str f.Finding.modname) (str f.Finding.bench) (str f.Finding.query)
      (str f.Finding.detail) (str f.Finding.witness)
      (str f.Finding.explain)
  in
  let card (c : Oracle.card) =
    Printf.sprintf
      "{\"module\":%s,\"consulted\":%d,\"answered\":%d,\"free\":%d,\"speculative\":%d,\"nodep\":%d,\"unsound\":%d}"
      (str c.Oracle.cname) c.Oracle.consulted c.Oracle.answered c.Oracle.free
      c.Oracle.speculative c.Oracle.nodep c.Oracle.unsound
  in
  Printf.sprintf
    "{\"benchmarks\":[%s],\"modules\":[%s],\"queries\":%d,\"cards\":[%s],\"findings\":[%s],\"soundness_findings\":%d}"
    (String.concat "," (List.map str r.benches))
    (String.concat "," (List.map str r.modules))
    r.queries
    (String.concat "," (List.map card r.cards))
    (String.concat "," (List.map finding r.findings))
    (soundness_count r)
