(** Dominance-based SSA validation — the check [Scaf_ir.Verify] declares
    out of scope (it needs dominator trees, which live in this library).

    Rules, per function:
    - every (non-phi) use of a register must be dominated by its
      definition (parameters count as defined at the entry);
    - a phi arm's value must be defined by the end of the arm's
      predecessor block (dominate the predecessor's terminator);
    - uses inside unreachable blocks are skipped — no dominance relation
      exists there, and structural verification already validates them
      locally.

    [check_full] is the whole-module entry point clients should use:
    structural verification first (its errors would make CFG construction
    meaningless), then the SSA pass. *)

open Scaf_ir

let err where fmt = Fmt.kstr (fun what -> { Verify.where; what }) fmt

let check_ssa_func (f : Func.t) : Verify.error list =
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  let errors = ref [] in
  let add e = errors := e :: !errors in
  (* register -> defining instruction id (params have no entry: they
     dominate every reachable point by definition) *)
  let def_of : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.dst with
          | Some d -> Hashtbl.replace def_of d i.Instr.id
          | None -> ())
        b.Block.instrs)
    cfg.Cfg.blocks;
  let check_use where ~(at : int) (v : Value.t) =
    match v with
    | Value.Reg r -> (
        match Hashtbl.find_opt def_of r with
        | None -> () (* parameter, or structurally undefined (Verify's job) *)
        | Some d ->
            (* [dominates_instr] is reflexive within a block, but a
               definition never dominates its own operands *)
            if d = at || not (Dom.dominates_instr dom cfg d at) then
              add
                (err where
                   "use of %%%s not dominated by its definition (instr %d)" r d))
    | _ -> ()
  in
  Array.iteri
    (fun bi (b : Block.t) ->
      if Dom.reachable dom bi then begin
        let where = Printf.sprintf "@%s:%s" f.Func.name b.Block.label in
        List.iter
          (fun (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Phi incoming ->
                List.iter
                  (fun (l, v) ->
                    match Hashtbl.find_opt cfg.Cfg.index_of_label l with
                    | Some pi when Dom.reachable dom pi ->
                        (* the arm's value must be available at the end of
                           the predecessor *)
                        check_use where
                          ~at:(Cfg.block cfg pi).Block.term.Instr.tid v
                    | _ -> ())
                  incoming
            | _ ->
                List.iter (check_use where ~at:i.Instr.id) (Instr.operands i))
          b.Block.instrs;
        List.iter
          (check_use where ~at:b.Block.term.Instr.tid)
          (Instr.term_operands b.Block.term)
      end)
    cfg.Cfg.blocks;
  List.rev !errors

(** [check_ssa m] — dominance errors of every function. Assumes [m] is
    structurally well-formed (run [Verify.check] first, or use
    [check_full]); a function whose CFG cannot be built is skipped. *)
let check_ssa (m : Irmod.t) : Verify.error list =
  List.concat_map
    (fun f -> try check_ssa_func f with Invalid_argument _ -> [])
    m.Irmod.funcs

(** Full verification: structural checks, then (only when those pass) the
    dominance-based SSA check. *)
let check_full (m : Irmod.t) : Verify.error list =
  match Verify.check m with [] -> check_ssa m | errs -> errs

(** @raise Invalid_argument with a readable report if [m] fails full
    verification. *)
let check_full_exn (m : Irmod.t) : unit =
  match check_full m with
  | [] -> ()
  | errs ->
      invalid_arg
        (Fmt.str "ill-formed MIR module:@.%a"
           (Fmt.list ~sep:Fmt.cut Verify.pp_error)
           errs)
