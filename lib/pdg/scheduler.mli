(** Work-stealing domain pool with deterministic result reassembly.

    Replaces the old static-chunking convention (each call to
    [Schemes.parallel_map] respawned [jobs - 1] domains and handed every
    domain a fixed share via one shared index counter) with a first-class
    {!pool} value: domains are spawned once, live across calls, and each
    {!map} distributes the items as per-worker LIFO deques with
    random-victim stealing, so a worker that drew cheap items takes over
    the tail of a worker that drew expensive ones.

    {b Determinism.} Scheduling only decides {e who} computes an item and
    {e when}; the i-th result is always [f state items.(i)], written into
    slot [i] and reassembled in index order. Provided [f] is deterministic
    per item (SCAF's query evaluation is: a cache hit returns exactly the
    response a recompute would produce), the output is byte-identical at
    any pool size — including 1, where {!map} degenerates to [List.map]
    with zero scheduling overhead.

    {b Deques.} Items are dense indices, so a deque is just a contiguous
    interval [\[lo, hi)] under its own tiny mutex: the owner pops from the
    [hi] end (LIFO), a thief locks a random victim and takes the older
    half from the [lo] end, keeping every deque a contiguous interval. An
    idle worker gives up only after consecutive full scans find every
    deque empty (any remaining items are then in flight on other workers).

    {b Lifecycle.} A pool holds [jobs - 1] live domains; OCaml caps total
    domains at a small fixed number, so pools must be {!shutdown} (or
    scoped with {!with_pool}) — they are not garbage-collectable
    resources. {!map} calls are serialized: concurrent callers (the
    daemon's worker threads) queue on the submission lock and each batch
    has the whole pool. Calling {!map} on [pool] from inside a task
    running on that same pool would self-deadlock; fan out at one level
    only. *)

type pool

(** [create ()] — a pool of [jobs] workers: the caller (which participates
    in every {!map}) plus [jobs - 1] freshly spawned domains. [jobs]
    defaults to [Domain.recommended_domain_count ()] and is clamped to at
    least 1; [jobs = 1] spawns nothing. *)
val create : ?jobs:int -> unit -> pool

(** Worker count, including the calling slot. *)
val size : pool -> int

(** Total steal events since {!create} (a thief moving the older half of
    a victim's deque counts once, whatever the half's size). *)
val steals : pool -> int

(** [map pool ~state ~f items] — the i-th result is [f w items.(i)] where
    [w] is the per-worker state, built by calling [state ()] at most once
    per worker per call (lazily, in the worker's own domain — resolver
    spawners are not required to be thread-safe values). Results are in
    input order regardless of scheduling. The first exception raised by
    [f] (or [state]) is re-raised in the caller after the batch drains;
    remaining items are skipped, not half-run.

    Raises [Invalid_argument] on a pool that has been {!shutdown}. *)
val map : pool -> state:(unit -> 'w) -> f:('w -> 'a -> 'b) -> 'a list -> 'b list

(** Join the pool's domains. Idempotent; waits for an in-flight {!map} to
    finish first. The pool is unusable afterwards. *)
val shutdown : pool -> unit

(** [with_pool ?jobs f] — [create], run [f], and {!shutdown} even on
    exceptions. The right scope for one figure/one test; long-lived
    services keep a pool instead. *)
val with_pool : ?jobs:int -> (pool -> 'a) -> 'a
