(** The evaluated schemes (§5): CAF (static only), composition by
    confluence (best prior), composition by collaboration (SCAF), the
    desired-result ablation of SCAF, memory speculation, and the observed
    dependences themselves.

    Each scheme exists in two forms:

    - a {!resolver} — one live instance (the classic sequential path);
    - a {!scheme} — a domain-safe factory: every [spawn ()] builds a
      private module ensemble and orchestrator, but all workers spawned
      from one scheme share a single canonicalizing {!Scaf.Qcache.t}, so
      memoized answers flow between worker domains. {!parallel_map} is the
      deterministic fan-out that ties them together. *)

open Scaf
open Scaf_profile

type resolver = {
  rname : string;
  resolve : Query.t -> Response.t;
  latencies : unit -> float list;  (** client-query latencies, if tracked *)
}

(** A scheme as a factory of per-worker resolvers over one shared cache.
    [scache] is that cache when the scheme memoizes (None for the
    stateless profile-replay schemes). *)
type scheme = {
  sname : string;
  spawn : unit -> resolver;
  scache : Qcache.t option;
}

let orchestrate ?clock ?(respect_desired = true) ?cache
    ?(trace = Scaf_trace.Sink.noop) ?metrics prog modules : Orchestrator.t =
  Orchestrator.create ?cache prog
    { (Orchestrator.default_config modules) with
      Orchestrator.respect_desired;
      clock;
      trace;
      metrics;
    }

let resolver_of_orchestrator (rname : string) (o : Orchestrator.t) : resolver =
  {
    rname;
    resolve = (fun q -> Orchestrator.handle o q);
    latencies = (fun () -> Orchestrator.latencies o);
  }

(** CAF: collaboration among the 13 memory-analysis modules only. *)
let caf_scheme ?clock ?trace ?metrics (profiles : Profiles.t) : scheme =
  let prog = profiles.Profiles.ctx in
  let cache = Qcache.create () in
  {
    sname = "CAF";
    spawn =
      (fun () ->
        resolver_of_orchestrator "CAF"
          (orchestrate ?clock ?trace ?metrics ~cache prog
             (Scaf_analysis.Registry.create prog)));
    scache = Some cache;
  }

(** SCAF: full collaboration among memory analysis and speculation.
    [trace]/[metrics] attach one shared sink/registry to every spawned
    worker's orchestrator (both are domain-safe). *)
let scaf_scheme ?clock ?(respect_desired = true) ?trace ?metrics
    (profiles : Profiles.t) : scheme =
  let prog = profiles.Profiles.ctx in
  let cache = Qcache.create () in
  let name = if respect_desired then "SCAF" else "SCAF w/o Desired Result" in
  {
    sname = name;
    spawn =
      (fun () ->
        let modules =
          Scaf_analysis.Registry.create prog
          @ Scaf_speculation.Registry.create profiles
        in
        resolver_of_orchestrator name
          (orchestrate ?clock ~respect_desired ?trace ?metrics ~cache prog
             modules));
    scache = Some cache;
  }

(** Composition by confluence: CAF as one collaborative component, each
    speculative technique self-contained, results joined. Every
    sub-ensemble keeps its own shared cache (their answers differ, so they
    must never share entries). *)
let confluence_scheme ?clock ?trace ?metrics (profiles : Profiles.t) : scheme =
  let prog = profiles.Profiles.ctx in
  let caf_cache = Qcache.create () in
  let unit_caches =
    List.map
      (fun _ -> Qcache.create ())
      (Scaf_speculation.Registry.confluence_units profiles)
  in
  {
    sname = "Confluence";
    spawn =
      (fun () ->
        let caf_o =
          orchestrate ?trace ?metrics ~cache:caf_cache prog
            (Scaf_analysis.Registry.create prog)
        in
        let unit_os =
          List.map2
            (fun cache units -> orchestrate ~cache prog units)
            unit_caches
            (Scaf_speculation.Registry.confluence_units profiles)
        in
        let t0 = ref 0.0 in
        let lats = ref [] in
        let resolve q =
          (match clock with Some c -> t0 := c () | None -> ());
          let r =
            List.fold_left
              (fun acc o -> Join.join Join.Cheapest acc (Orchestrator.handle o q))
              (Orchestrator.handle caf_o q)
              unit_os
          in
          (match clock with Some c -> lats := (c () -. !t0) :: !lats | None -> ());
          r
        in
        { rname = "Confluence"; resolve; latencies = (fun () -> List.rev !lats) });
    scache = Some caf_cache;
  }

(** Memory speculation: assert the absence of every dependence that did not
    manifest during profiling (loop-sensitive dependence profile), at
    shadow-memory validation cost. *)
let memory_speculation (profiles : Profiles.t) : resolver =
  let resolve (q : Query.t) : Response.t =
    match q with
    | Query.Alias _ -> Response.bottom_alias
    | Query.Modref mq -> (
        match (mq.Query.mloop, mq.Query.mtarget) with
        | Some lid, Query.TInstr i2 ->
            let cross =
              match mq.Query.mtr with
              | Query.Same -> false
              | Query.Before | Query.After -> true
            in
            let i1 = mq.Query.minstr in
            if
              Memdep_profile.observed profiles.Profiles.memdep ~lid ~src:i1
                ~dst:i2 ~cross
            then Response.bottom_modref
            else
              let count id =
                Residue_profile.exec_count profiles.Profiles.residues id
              in
              Response.speculative (Aresult.RModref Aresult.NoModRef)
                [
                  {
                    Assertion.module_id = "memory-speculation";
                    points = [ i1; i2 ];
                    cost =
                      Cost_model.scaled Cost_model.memspec_check
                        (count i1 + count i2);
                    conflicts = [];
                    payload = Assertion.Mem_nodep { src = i1; dst = i2; cross };
                  };
                ]
        | _ -> Response.bottom_modref)
  in
  { rname = "Memory Speculation"; resolve; latencies = (fun () -> []) }

(** Observed dependences: what actually manifested while profiling —
    the floor no speculative scheme can beat. *)
let observed (profiles : Profiles.t) : resolver =
  let resolve (q : Query.t) : Response.t =
    match q with
    | Query.Alias _ -> Response.bottom_alias
    | Query.Modref mq -> (
        match (mq.Query.mloop, mq.Query.mtarget) with
        | Some lid, Query.TInstr i2 ->
            let cross =
              match mq.Query.mtr with
              | Query.Same -> false
              | Query.Before | Query.After -> true
            in
            if
              Memdep_profile.observed profiles.Profiles.memdep ~lid
                ~src:mq.Query.minstr ~dst:i2 ~cross
            then Response.bottom_modref
            else Response.free (Aresult.RModref Aresult.NoModRef)
        | _ -> Response.bottom_modref)
  in
  { rname = "Observed"; resolve; latencies = (fun () -> []) }

(* The classic one-instance entry points are the single-worker
   instantiations of the schemes above. *)
let caf ?clock ?trace ?metrics (profiles : Profiles.t) : resolver =
  (caf_scheme ?clock ?trace ?metrics profiles).spawn ()

let scaf ?clock ?(respect_desired = true) ?trace ?metrics
    (profiles : Profiles.t) : resolver =
  (scaf_scheme ?clock ~respect_desired ?trace ?metrics profiles).spawn ()

let confluence ?clock ?trace ?metrics (profiles : Profiles.t) : resolver =
  (confluence_scheme ?clock ?trace ?metrics profiles).spawn ()

(** A stateless resolver lifted to a (trivially domain-safe) scheme. *)
let stateless_scheme (mk : Profiles.t -> resolver) (profiles : Profiles.t) :
    scheme =
  let name = (mk profiles).rname in
  { sname = name; spawn = (fun () -> mk profiles); scache = None }

let memory_speculation_scheme = stateless_scheme memory_speculation
let observed_scheme = stateless_scheme observed

(* ------------------------------------------------------------------ *)
(* The domain-parallel batch engine                                    *)
(* ------------------------------------------------------------------ *)

let default_jobs () : int = Domain.recommended_domain_count ()

(** DEPRECATED one-PR compatibility shim — use {!Scheduler} directly.

    The old convention spawned (and joined) [jobs - 1] fresh domains on
    every call; this now scopes a transient {!Scheduler.pool} around one
    {!Scheduler.map}, so the semantics are unchanged (the i-th result
    comes from the i-th item; [jobs <= 1] is exactly
    [List.map (f (worker ())) items]; a worker exception is re-raised in
    the calling domain) but respawning per call is exactly what the pool
    API exists to avoid: long-lived callers should create one
    {!Scheduler.pool} and pass it around. This shim will be deleted; do
    not add callers. *)
let parallel_map ~(jobs : int) ~(worker : unit -> 'w) ~(f : 'w -> 'a -> 'b)
    (items : 'a list) : 'b list =
  let jobs = max 1 (min jobs (List.length items)) in
  Scheduler.with_pool ~jobs (fun pool ->
      Scheduler.map pool ~state:worker ~f items)
