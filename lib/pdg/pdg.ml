(** The Program Dependence Graph client (§5 "Client").

    For each hot loop it issues an intra-iteration and a cross-iteration
    dependence query for every (ordered) pair of memory operations, through
    whichever resolver a scheme provides, and records which dependences
    were disproven. *)

open Scaf
open Scaf_ir
open Scaf_cfg

type dep_query = {
  src : int;
  dst : int;
  cross : bool;  (** cross-iteration ([Before]) vs intra-iteration ([Same]) *)
}

type qresult = {
  dq : dep_query;
  resp : Response.t;
  nodep : bool;
      (** the dependence is disproven at an affordable validation cost
          (responses carrying only prohibitive options are discarded, §5) *)
}

type loop_report = {
  lid : string;
  queries : qresult list;
  mem_ops : int list;
}

(* May instruction [i] touch memory (and so participate in dependences)? *)
let is_mem_op (prog : Progctx.t) (i : Instr.t) : bool =
  match i.Instr.kind with
  | Instr.Load _ | Instr.Store _ -> true
  | Instr.Call { callee; _ } ->
      let m = prog.Progctx.m in
      not
        (Irmod.has_attr m callee Func.Readnone
        || Irmod.has_attr m callee Func.Malloc_like)
  | _ -> false

(* May instruction [i] write memory? *)
let may_write (prog : Progctx.t) (i : Instr.t) : bool =
  match i.Instr.kind with
  | Instr.Store _ -> true
  | Instr.Call { callee; _ } ->
      let m = prog.Progctx.m in
      is_mem_op prog i && not (Irmod.has_attr m callee Func.Readonly)
  | _ -> false

(** Memory operations of a loop, in block order. *)
let mem_ops_of_loop (prog : Progctx.t) (lid : string) : Instr.t list =
  match Progctx.loop_of_lid prog lid with
  | None -> []
  | Some (fname, loop) -> (
      match Progctx.cfg_of prog fname with
      | None -> []
      | Some cfg ->
          List.concat_map
            (fun b ->
              if Loops.contains loop b then
                List.filter (is_mem_op prog) (Cfg.block cfg b).Block.instrs
              else [])
            (List.init (Cfg.num_blocks cfg) Fun.id))

(** The dependence queries of a loop: for each ordered pair of memory ops
    with at least one potential writer, one intra- and one cross-iteration
    query; potential writers additionally get a self cross-iteration
    query. *)
let queries_of_loop (prog : Progctx.t) (lid : string) : dep_query list =
  let ops = mem_ops_of_loop prog lid in
  let qs = ref [] in
  List.iter
    (fun (i1 : Instr.t) ->
      List.iter
        (fun (i2 : Instr.t) ->
          if i1.Instr.id <> i2.Instr.id then
            if may_write prog i1 || may_write prog i2 then begin
              qs := { src = i1.Instr.id; dst = i2.Instr.id; cross = false } :: !qs;
              qs := { src = i1.Instr.id; dst = i2.Instr.id; cross = true } :: !qs
            end)
        ops;
      if may_write prog i1 then
        qs := { src = i1.Instr.id; dst = i1.Instr.id; cross = true } :: !qs)
    ops;
  List.rev !qs

(** Alias probes of a loop: for every unordered pair of direct accesses
    (self-pairs included), an intra- and a cross-iteration alias query over
    their footprints. Not part of the client's dependence workload — the
    audit layer fans these to every module to cross-examine alias answers
    (a self-pair in particular must never come back NoAlias while another
    module proves MustAlias). *)
let alias_probes_of_loop (prog : Progctx.t) (lid : string) :
    (int * int * Query.t) list =
  let ops = mem_ops_of_loop prog lid in
  List.concat_map
    (fun (i1 : Instr.t) ->
      List.concat_map
        (fun (i2 : Instr.t) ->
          if i1.Instr.id > i2.Instr.id then []
          else
            match
              ( Scaf_analysis.Autil.loc_of_instr prog i1.Instr.id,
                Scaf_analysis.Autil.loc_of_instr prog i2.Instr.id )
            with
            | Some l1, Some l2
              when String.equal l1.Query.fname l2.Query.fname ->
                List.map
                  (fun tr ->
                    ( i1.Instr.id,
                      i2.Instr.id,
                      Query.Alias
                        {
                          Query.a1 = l1;
                          atr = tr;
                          a2 = l2;
                          aloop = Some lid;
                          acc = None;
                          adr = None;
                          aepoch = 0;
                        } ))
                  [ Query.Same; Query.Before ]
            | _ -> [])
        ops)
    ops

let to_query (lid : string) (dq : dep_query) : Query.t =
  Query.modref_instrs ~loop:lid
    ~tr:(if dq.cross then Query.Before else Query.Same)
    dq.src dq.dst

(** [affordable_nodep resp] — did the resolver disprove the dependence at a
    cost a rational client would pay? *)
let affordable_nodep (resp : Response.t) : bool =
  (match resp.Response.result with
  | Aresult.RModref Aresult.NoModRef -> true
  | _ -> false)
  && Cost_model.affordable (Response.Options.cheapest_cost resp.Response.options)

(** Run the PDG client for one loop against a resolver. *)
let run_loop (prog : Progctx.t) ~(resolver : Query.t -> Response.t)
    (lid : string) : loop_report =
  let queries =
    List.map
      (fun dq ->
        let resp = resolver (to_query lid dq) in
        { dq; resp; nodep = affordable_nodep resp })
      (queries_of_loop prog lid)
  in
  {
    lid;
    queries;
    mem_ops = List.map (fun (i : Instr.t) -> i.Instr.id) (mem_ops_of_loop prog lid);
  }

(** %NoDep of a loop report. *)
let nodep_pct (r : loop_report) : float =
  match r.queries with
  | [] -> 100.0
  | qs ->
      100.0
      *. float_of_int (List.length (List.filter (fun q -> q.nodep) qs))
      /. float_of_int (List.length qs)
