(** Work-stealing domain pool (see scheduler.mli for the contract). *)

(* A deque over dense item indices is just a contiguous interval [lo, hi)
   guarded by its own mutex: the owner pops at the [hi] end (LIFO), a
   thief takes the older half at the [lo] end — both operations keep the
   interval contiguous, so there is no buffer to manage at all. The mutex
   is held for a handful of instructions; contention on it is the rare
   owner-vs-thief race, not the per-item common case. *)
type deque = { dm : Mutex.t; mutable lo : int; mutable hi : int }

(* One installed batch. [run slot i] executes item [i] attributed to
   worker [slot] (per-slot lazy state lives in the closure); [remaining]
   counts down to 0 as items finish — the only termination signal, so an
   item is decremented exactly once no matter who ran or skipped it. *)
type batch = {
  bseq : int;
  deques : deque array;
  run : int -> int -> unit;
  remaining : int Atomic.t;
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type pool = {
  size : int;  (** workers, including the calling slot 0 *)
  mutable domains : unit Domain.t list;
  m : Mutex.t;  (** guards [batch]/[shut] and both conditions *)
  work_cv : Condition.t;  (** a new batch was installed *)
  done_cv : Condition.t;  (** a batch's [remaining] hit 0 *)
  mutable batch : batch option;
  mutable shut : bool;
  submit_m : Mutex.t;  (** serializes [map] calls — one batch at a time *)
  nsteals : int Atomic.t;
}

let size (p : pool) : int = p.size
let steals (p : pool) : int = Atomic.get p.nsteals

(* Cheap per-worker xorshift for victim selection: stealing wants victim
   diversity, not statistical quality, and must not share global PRNG
   state across domains. *)
let rng_next (s : int ref) : int =
  let x = !s in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  s := x land max_int;
  !s

let pop_own (dq : deque) : int option =
  Mutex.lock dq.dm;
  let r =
    if dq.hi > dq.lo then begin
      dq.hi <- dq.hi - 1;
      Some dq.hi
    end
    else None
  in
  Mutex.unlock dq.dm;
  r

(* Steal the older half of [victim]'s interval. The stolen range is
   extracted under the victim's lock, then installed under the thief's own
   lock — never both at once, so there is no lock-ordering hazard; between
   the two the range is owned exclusively by the thief. *)
let try_steal (p : pool) (victim : deque) (self : deque) : bool =
  Mutex.lock victim.dm;
  let stolen =
    let len = victim.hi - victim.lo in
    if len <= 0 then None
    else begin
      let k = (len + 1) / 2 in
      let lo = victim.lo in
      victim.lo <- lo + k;
      Some (lo, lo + k)
    end
  in
  Mutex.unlock victim.dm;
  match stolen with
  | None -> false
  | Some (lo, hi) ->
      Mutex.lock self.dm;
      self.lo <- lo;
      self.hi <- hi;
      Mutex.unlock self.dm;
      Atomic.incr p.nsteals;
      true

let exec (p : pool) (b : batch) (slot : int) (i : int) : unit =
  (* after a failure the batch only drains — items are skipped, not
     half-run with a poisoned sibling state *)
  (if Atomic.get b.failed = None then
     try b.run slot i
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore (Atomic.compare_and_set b.failed None (Some (e, bt))));
  if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
    (* last item: wake the leader blocked in [map]. Taking [p.m] around
       the broadcast closes the classic lost-wakeup window. *)
    Mutex.lock p.m;
    Condition.broadcast p.done_cv;
    Mutex.unlock p.m
  end

(* One worker's participation in one batch: drain the own deque, then
   scavenge — steal from random victims until two consecutive full scans
   find every deque empty (whatever is still unfinished is then in flight
   on other workers, and no new deque work can appear out of thin air:
   thieves drain their own deque before scavenging again). *)
let work (p : pool) (b : batch) (slot : int) : unit =
  let self = b.deques.(slot) in
  let rec drain () =
    match pop_own self with
    | Some i ->
        exec p b slot i;
        drain ()
    | None -> ()
  in
  drain ();
  let n = Array.length b.deques in
  if n > 1 then begin
    let rng = ref ((slot + 1) * 0x9e3779b9) in
    let rec scavenge empty_scans =
      if Atomic.get b.remaining > 0 && empty_scans < 2 then begin
        (* one full scan starting from a random victim *)
        let start = rng_next rng mod n in
        let got = ref false in
        for off = 0 to n - 1 do
          let v = (start + off) mod n in
          if (not !got) && v <> slot && try_steal p b.deques.(v) self then
            got := true
        done;
        if !got then begin
          drain ();
          scavenge 0
        end
        else begin
          Domain.cpu_relax ();
          scavenge (empty_scans + 1)
        end
      end
    in
    scavenge 0
  end

(* Pool workers park between batches on [work_cv]; a batch is "new" for a
   worker when its sequence number differs from the last one the worker
   participated in (finished batches stay installed until the next [map],
   so the guard must be the sequence, not presence). *)
let worker_loop (p : pool) (slot : int) () : unit =
  let rec loop (last_seq : int) : unit =
    Mutex.lock p.m;
    let rec await () =
      if p.shut then None
      else
        match p.batch with
        | Some b when b.bseq <> last_seq -> Some b
        | _ ->
            Condition.wait p.work_cv p.m;
            await ()
    in
    let next = await () in
    Mutex.unlock p.m;
    match next with
    | None -> ()
    | Some b ->
        work p b slot;
        loop b.bseq
  in
  loop 0

let create ?jobs () : pool =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Domain.recommended_domain_count ()
  in
  let p =
    {
      size = jobs;
      domains = [];
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      batch = None;
      shut = false;
      submit_m = Mutex.create ();
      nsteals = Atomic.make 0;
    }
  in
  p.domains <-
    List.init (jobs - 1) (fun i -> Domain.spawn (worker_loop p (i + 1)));
  p

let shutdown (p : pool) : unit =
  (* taking the submission lock first lets an in-flight map finish *)
  Mutex.lock p.submit_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock p.submit_m)
    (fun () ->
      Mutex.lock p.m;
      let already = p.shut in
      p.shut <- true;
      Condition.broadcast p.work_cv;
      Mutex.unlock p.m;
      if not already then begin
        List.iter Domain.join p.domains;
        p.domains <- []
      end)

let with_pool ?jobs (f : pool -> 'a) : 'a =
  let p = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

let map (p : pool) ~(state : unit -> 'w) ~(f : 'w -> 'a -> 'b)
    (items : 'a list) : 'b list =
  match items with
  | [] -> []
  | _ when p.size <= 1 ->
      (* zero-overhead degenerate pool: identical results by the
         determinism contract, no batch machinery on the path at all *)
      if p.shut then invalid_arg "Scheduler.map: pool is shut down";
      let w = state () in
      List.map (f w) items
  | _ ->
      let arr = Array.of_list items in
      let n = Array.length arr in
      let nw = p.size in
      let out : 'b option array = Array.make n None in
      let states : 'w option array = Array.make nw None in
      let run slot i =
        let w =
          match states.(slot) with
          | Some w -> w
          | None ->
              (* lazily, in the worker's own domain: resolver spawners
                 build domain-local state *)
              let w = state () in
              states.(slot) <- Some w;
              w
        in
        out.(i) <- Some (f w arr.(i))
      in
      (* block distribution: slot s starts with the contiguous interval
         [s*n/nw, (s+1)*n/nw) — empty for the tail slots when n < nw;
         stealing rebalances from there *)
      let deques =
        Array.init nw (fun s ->
            { dm = Mutex.create (); lo = s * n / nw; hi = (s + 1) * n / nw })
      in
      Mutex.lock p.submit_m;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock p.submit_m)
        (fun () ->
          if p.shut then invalid_arg "Scheduler.map: pool is shut down";
          Mutex.lock p.m;
          let bseq =
            match p.batch with Some prev -> prev.bseq + 1 | None -> 1
          in
          let b =
            {
              bseq;
              deques;
              run;
              remaining = Atomic.make n;
              failed = Atomic.make None;
            }
          in
          p.batch <- Some b;
          Condition.broadcast p.work_cv;
          Mutex.unlock p.m;
          (* the caller is slot 0 — it computes too, it does not just wait *)
          work p b 0;
          Mutex.lock p.m;
          while Atomic.get b.remaining > 0 do
            Condition.wait p.done_cv p.m
          done;
          Mutex.unlock p.m;
          (match Atomic.get b.failed with
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ());
          Array.to_list
            (Array.map
               (function
                 | Some r -> r
                 | None -> assert false (* remaining = 0 and no failure *))
               out))
