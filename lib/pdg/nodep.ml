(** The %NoDep metric (§5 "Metric"): per-loop percentages weighted by each
    hot loop's share of execution time. *)

open Scaf_profile

type benchmark_report = {
  bname : string;
  loops : (string * float) list;  (** (loop id, weight) — weights sum to 1 *)
  per_loop : (string * Pdg.loop_report) list;
  weighted_nodep : float;
}

(** Hot loops of a profiled program, with time weights normalized over the
    hot set. *)
let hot_loop_weights ?(min_fraction = 0.10) ?(min_avg_iters = 50.0)
    (profiles : Profiles.t) : (string * float) list =
  let hot =
    Time_profile.hot_loops ~min_fraction ~min_avg_iters profiles.Profiles.time
  in
  let fractions =
    List.map
      (fun lid -> (lid, Time_profile.time_fraction profiles.Profiles.time ~lid))
      hot
  in
  let total = List.fold_left (fun a (_, f) -> a +. f) 0.0 fractions in
  if total <= 0.0 then []
  else List.map (fun (l, f) -> (l, f /. total)) fractions

let report_of ~bname ~loops per_loop : benchmark_report =
  let weighted_nodep =
    List.fold_left
      (fun acc (lid, w) ->
        let r = List.assoc lid per_loop in
        acc +. (w *. Pdg.nodep_pct r))
      0.0 loops
  in
  { bname; loops; per_loop; weighted_nodep }

(** Run the PDG client on every hot loop with [resolver] and compute the
    weighted %NoDep. *)
let evaluate ~(bname : string) (profiles : Profiles.t)
    (resolver : Schemes.resolver) : benchmark_report =
  let prog = profiles.Profiles.ctx in
  let loops = hot_loop_weights profiles in
  let per_loop =
    List.map
      (fun (lid, _) ->
        (lid, Pdg.run_loop prog ~resolver:resolver.Schemes.resolve lid))
      loops
  in
  report_of ~bname ~loops per_loop

(** The batch path: hot loops fan out across the pool's worker domains,
    each with a private resolver spawned from [scheme] over its shared
    cache. Per-loop results land at fixed positions, so the report is
    deterministic and identical to the sequential run at any pool size.

    [pool], when given, is the caller's long-lived {!Scheduler.pool} (one
    per process — the daemon and [scaf_eval] each keep one) and [jobs] is
    ignored; otherwise a transient pool of [jobs] workers (default 1:
    sequential in the calling domain, no spawn) is scoped around the
    fan-out. Work stolen from sibling deques is attributed to the
    scheme's shared cache ({!Scaf.Qcache.note_steals}) so `--cache-stats`
    shows how much rebalancing the loop mix needed. *)
let evaluate_scheme ?pool ?(jobs = 1) ~(bname : string)
    (profiles : Profiles.t) (scheme : Schemes.scheme) : benchmark_report =
  let prog = profiles.Profiles.ctx in
  let loops = hot_loop_weights profiles in
  let fan pool =
    let steals0 = Scheduler.steals pool in
    let per_loop =
      Scheduler.map pool ~state:scheme.Schemes.spawn
        ~f:(fun (r : Schemes.resolver) (lid, _) ->
          (lid, Pdg.run_loop prog ~resolver:r.Schemes.resolve lid))
        loops
    in
    (match scheme.Schemes.scache with
    | Some c -> Scaf.Qcache.note_steals c (Scheduler.steals pool - steals0)
    | None -> ());
    per_loop
  in
  let per_loop =
    match pool with
    | Some p -> fan p
    | None -> Scheduler.with_pool ~jobs:(max 1 jobs) fan
  in
  report_of ~bname ~loops per_loop

let geomean (xs : float list) : float =
  match List.filter (fun x -> x > 0.0) xs with
  | [] -> 0.0
  | xs ->
      exp
        (List.fold_left (fun a x -> a +. log x) 0.0 xs
        /. float_of_int (List.length xs))

let mean (xs : float list) : float =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
