(** Validation code generation — the "transformation part" of each
    decomposed speculative transformation (§4.2.1).

    Realizes a plan's assertions by rewriting the module:

    - dead blocks get a misspec beacon at their head;
    - predictable loads get a value check right after them;
    - residue-guarded pointers get a residue check after their definition;
    - heap separations tag their allocation sites ([scaf.set_heap] after
      the allocation — the moral equivalent of re-allocating to a separate
      heap) and guard the involved accesses with heap membership /
      absence checks;
    - short-lived balances insert an iteration check at every loop latch;
    - memory-speculation assertions wrap the involved accesses with
      shadow-memory reads/writes and declare the forbidden pair at entry.

    Checks are inserted *adjacent to* the guarded operations, never
    replacing them — the paper's directive for minimizing conflicts. *)

open Scaf
open Scaf_ir
open Scaf_cfg

(* Edit lists are built reversed (cons) and read back through [edits_of] /
   [List.rev] — appending with [@] per push is quadratic in edits per key. *)
type edits = {
  mutable before : (int, Instr.kind list) Hashtbl.t;
      (** instr id -> kinds to insert before it (reversed) *)
  mutable after : (int, Instr.kind list) Hashtbl.t;
  mutable block_head : (string * string, Instr.kind list) Hashtbl.t;
  mutable commit_head : (string * string, Instr.kind list) Hashtbl.t;
      (** checkpoint commits at loop-exit blocks; run before [block_head]
          edits so a dead-block beacon cannot fire inside a finished
          invocation's checkpoint *)
  mutable before_term : (string * string, Instr.kind list) Hashtbl.t;
  mutable entry_setup : Instr.kind list;  (** inserted at @main entry, reversed *)
}

let empty_edits () =
  {
    before = Hashtbl.create 16;
    after = Hashtbl.create 16;
    block_head = Hashtbl.create 8;
    commit_head = Hashtbl.create 8;
    before_term = Hashtbl.create 8;
    entry_setup = [];
  }

let push tbl key kind =
  Hashtbl.replace tbl key
    (kind :: Option.value ~default:[] (Hashtbl.find_opt tbl key))

let edits_of tbl key =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt tbl key))

let call callee args : Instr.kind = Instr.Call { callee; args }

(* The pointer operand of a memory access, and its result register. *)
let access_ptr (prog : Progctx.t) (id : int) : Value.t option =
  match Progctx.occ prog id with
  | Some o -> Option.map fst (Instr.footprint o.Irmod.Index.instr)
  | None -> None

let result_reg (prog : Progctx.t) (id : int) : Value.t option =
  match Progctx.occ prog id with
  | Some o -> Option.map Value.reg o.Irmod.Index.instr.Instr.dst
  | None -> None

(* Heap tags are keyed by the separated site set, so a balance check pairs
   with its companion separation no matter the assertion order. *)
type state = {
  mutable next_heap_tag : int;
  mutable next_misspec_tag : int64;
  heap_of_sites : (int list * string list, int) Hashtbl.t;
  mutable tag_map : (int64 * Assertion.t) list;
      (** misspec tag -> the assertion it validates (reversed) *)
}

let heap_for st (sites : int list) (gsites : string list) =
  let key = (List.sort compare sites, List.sort compare gsites) in
  match Hashtbl.find_opt st.heap_of_sites key with
  | Some t -> t
  | None ->
      let t = st.next_heap_tag in
      st.next_heap_tag <- t + 1;
      Hashtbl.replace st.heap_of_sites key t;
      t

let fresh_tag st =
  let t = st.next_misspec_tag in
  st.next_misspec_tag <- Int64.add t 1L;
  t

let add_assertion (prog : Progctx.t) (st : state) (e : edits)
    (a : Assertion.t) : unit =
  let tag = fresh_tag st in
  st.tag_map <- (tag, a) :: st.tag_map;
  let tagv = Value.Int tag in
  match a.Assertion.payload with
  | Assertion.Ctrl_block_dead { fname; label; beacon = _ } ->
      push e.block_head (fname, label) (call "scaf.misspec" [ tagv ])
  | Assertion.Value_predict { load; value } -> (
      match result_reg prog load with
      | Some r ->
          push e.after load
            (call "scaf.check_value" [ r; Value.Int value; tagv ])
      | None -> ())
  | Assertion.Residue { access; allowed } -> (
      (* [access] is either a memory access (guard its address operand) or
         a pointer-producing instruction (guard its result) *)
      let ptr =
        match access_ptr prog access with
        | Some p -> Some p
        | None -> result_reg prog access
      in
      match ptr with
      | Some p ->
          push e.after access
            (call "scaf.check_residue"
               [ p; Value.Int (Int64.of_int allowed); tagv ])
      | None -> ())
  | Assertion.Heap_separate { sites; gsites; inside; outside; _ } ->
      let heap = heap_for st sites gsites in
      let heapv = Value.Int (Int64.of_int heap) in
      List.iter
        (fun site ->
          match result_reg prog site with
          | Some r -> push e.after site (call "scaf.set_heap" [ r; heapv ])
          | None -> ())
        sites;
      List.iter
        (fun g ->
          e.entry_setup <-
            call "scaf.set_heap" [ Value.Global g; heapv ] :: e.entry_setup)
        gsites;
      List.iter
        (fun acc ->
          match access_ptr prog acc with
          | Some p ->
              push e.before acc (call "scaf.check_heap" [ p; heapv; tagv ])
          | None -> ())
        inside;
      List.iter
        (fun acc ->
          match access_ptr prog acc with
          | Some p ->
              push e.before acc (call "scaf.check_not_heap" [ p; heapv; tagv ])
          | None -> ())
        outside
  | Assertion.Short_lived_balance { loop; sites } -> (
      (* pair with the companion Heap_separate of the same sites *)
      let heap = heap_for st sites [] in
      match Progctx.loop_of_lid prog loop with
      | Some (fname, l) -> (
          match Progctx.cfg_of prog fname with
          | Some cfg ->
              List.iter
                (fun latch ->
                  push e.before_term (fname, Cfg.label cfg latch)
                    (call "scaf.iter_check"
                       [ Value.Int (Int64.of_int heap); tagv ]))
                l.Loops.latches
          | None -> ())
      | None -> ())
  | Assertion.Points_to_objects _ ->
      (* prohibitive: a rational client never selects it; realize it as an
         immediate beacon so accidental selection is loud *)
      e.entry_setup <- call "scaf.misspec" [ tagv ] :: e.entry_setup
  | Assertion.Mem_nodep { src; dst; cross = _ } ->
      e.entry_setup <-
        call "scaf.ms_forbid"
          [ Value.Int (Int64.of_int src); Value.Int (Int64.of_int dst) ]
        :: e.entry_setup;
      (* wrap both accesses with shadow tracking *)
      List.iter
        (fun id ->
          match Progctx.occ prog id with
          | Some o -> (
              match Instr.footprint o.Irmod.Index.instr with
              | Some (ptr, size) ->
                  let group = Value.Int (Int64.of_int id) in
                  let f =
                    if Instr.writes_memory o.Irmod.Index.instr then
                      "scaf.ms_write"
                    else "scaf.ms_read"
                  in
                  push e.after id
                    (call f [ ptr; Value.Int (Int64.of_int size); group; tagv ])
              | None -> ())
          | None -> ())
        [ src; dst ]

(* ---- checkpoint / commit insertion (§4.2.5 recovery) ---- *)

(** Insert [scaf.checkpoint] on every loop-entry edge and [scaf.commit] at
    every exit target of the loops named by [lids]; returns the lid ->
    runtime ordinal mapping for the loops actually protected.

    A checkpoint is only inserted when every entry edge into the header is
    an unconditional branch — placing one before a conditional terminator
    would open a checkpoint even when the branch bypasses the loop, leaving
    an unbalanced region. Deeper loops are processed first so a shared exit
    block commits the inner invocation before the outer one. *)
let add_checkpoints (prog : Progctx.t) (e : edits) (lids : string list) :
    (string * int) list =
  let loops =
    List.filter_map
      (fun lid ->
        match Progctx.loop_of_lid prog lid with
        | Some (fname, l) -> Some (lid, fname, l)
        | None -> None)
      (List.sort_uniq compare lids)
  in
  let loops =
    List.sort
      (fun (_, _, a) (_, _, b) -> compare b.Loops.depth a.Loops.depth)
      loops
  in
  let next_ord = ref 1 in
  List.filter_map
    (fun (lid, fname, l) ->
      match (Progctx.cfg_of prog fname, Progctx.loops_of prog fname) with
      | Some cfg, Some li ->
          let entry_preds =
            List.filter
              (fun p -> not (Loops.contains l p))
              cfg.Cfg.preds.(l.Loops.header)
          in
          let unconditional p =
            match (Cfg.block cfg p).Block.term.Instr.tkind with
            | Instr.Br _ -> true
            | _ -> false
          in
          if entry_preds <> [] && List.for_all unconditional entry_preds then begin
            let ord = !next_ord in
            incr next_ord;
            let ordv = Value.Int (Int64.of_int ord) in
            List.iter
              (fun p ->
                push e.before_term (fname, Cfg.label cfg p)
                  (call "scaf.checkpoint" [ ordv ]))
              entry_preds;
            (* one commit per distinct exit target: a duplicate would pop a
               recursive caller's checkpoint of the same loop *)
            let targets =
              List.sort_uniq compare (List.map snd (Loops.exits li l))
            in
            List.iter
              (fun dst ->
                push e.commit_head (fname, Cfg.label cfg dst)
                  (call "scaf.commit" [ ordv ]))
              targets;
            Some (lid, ord)
          end
          else None
      | _ -> None)
    loops

(** The instrumented module together with the metadata recovery needs. *)
type instrumented = {
  imod : Irmod.t;
  tag_map : (int64 * Assertion.t) list;
      (** misspec tag -> the assertion whose check raises it *)
  checkpoints : (string * int) list;
      (** protected loop lid -> runtime checkpoint ordinal *)
}

let assertion_of_tag (inst : instrumented) (tag : int64) : Assertion.t option =
  List.assoc_opt tag inst.tag_map

(** [instrument prog ?checkpoints assertions] — realize [assertions] in a
    copy of the module, optionally protecting the loops in [checkpoints]
    (lids) with invocation-granularity checkpoint/commit calls. The
    original module is left untouched. *)
let instrument (prog : Progctx.t) ?(checkpoints = [])
    (assertions : Assertion.t list) : instrumented =
  let m = prog.Progctx.m in
  let e = empty_edits () in
  let st =
    {
      next_heap_tag = 1;
      next_misspec_tag = 1L;
      heap_of_sites = Hashtbl.create 8;
      tag_map = [];
    }
  in
  List.iter (add_assertion prog st e) assertions;
  let ck_map = add_checkpoints prog e checkpoints in
  let next_id = ref (Scaf_ir.Builder.next_id_after m) in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let mk kind = { Instr.id = fresh (); dst = None; kind } in
  let rewrite_block (f : Func.t) (b : Block.t) : Block.t =
    let key = (f.Func.name, b.Block.label) in
    let commits = edits_of e.commit_head key in
    let head = edits_of e.block_head key in
    let tail = edits_of e.before_term key in
    (* entry setup goes at the very beginning of @main's entry block *)
    let setup =
      if
        String.equal f.Func.name "main"
        && b.Block.label = (Func.entry f).Block.label
      then List.rev e.entry_setup
      else []
    in
    let instrs =
      List.concat_map
        (fun (i : Instr.t) ->
          let bs = edits_of e.before i.Instr.id in
          let as_ = edits_of e.after i.Instr.id in
          List.map mk bs @ [ i ] @ List.map mk as_)
        b.Block.instrs
    in
    (* phis must stay at the head: insert head edits after the phi run;
       commits come first so no other inserted check (e.g. a dead-block
       beacon at a loop exit) can fire inside the finished invocation's
       checkpoint *)
    let phis, rest =
      List.partition
        (fun (i : Instr.t) ->
          match i.Instr.kind with Instr.Phi _ -> true | _ -> false)
        instrs
    in
    {
      b with
      Block.instrs =
        phis @ List.map mk commits @ List.map mk setup @ List.map mk head
        @ rest @ List.map mk tail;
    }
  in
  let imod =
    {
      m with
      Irmod.funcs =
        List.map
          (fun (f : Func.t) ->
            { f with Func.blocks = List.map (rewrite_block f) f.Func.blocks })
          m.Irmod.funcs;
    }
  in
  { imod; tag_map = List.rev st.tag_map; checkpoints = ck_map }

(** [apply prog assertions] — the instrumented module, discarding the
    recovery metadata (original checkpoint-free entry point). *)
let apply (prog : Progctx.t) (assertions : Assertion.t list) : Irmod.t =
  (instrument prog assertions).imod
