(** End-to-end speculation: plan -> instrument -> run with recovery.

    Two recovery models (§4.2.5):

    - [run_with_recovery] — the paper's simplest process-based scheme: the
      checkpoint is program entry, so on misspeculation the original,
      uninstrumented program is re-executed from the start.
    - [run_adaptive] — loop-invocation-granularity recovery. Misspeculation
      inside a checkpointed loop rolls back and replays in-run (see
      [Eval]); a misspeculation that escapes every checkpoint is mapped
      back to the offending [Assertion.t], which is blacklisted before
      re-planning and re-instrumenting, with a capped retry budget before
      degrading to the uninstrumented original.

    Either way the correctness contract is the same: the final result
    always equals the original program's. *)

open Scaf
open Scaf_ir
open Scaf_interp

type outcome = {
  result : Eval.result;
  misspeculated : bool;
  misspec_tag : int64 option;
}

(** [run_with_recovery ~original ~instrumented ?input ?fuel ()] — execute
    the speculative binary; fall back to the original on misspeculation. *)
let run_with_recovery ~(original : Irmod.t) ~(instrumented : Irmod.t)
    ?(input = [||]) ?fuel () : outcome =
  match Eval.run ?fuel ~input instrumented with
  | result -> { result; misspeculated = false; misspec_tag = None }
  | exception Runtime.Misspec { tag } ->
      let result = Eval.run ?fuel ~input original in
      { result; misspeculated = true; misspec_tag = Some tag }

(* ---- adaptive re-planning ---- *)

type adaptive = {
  final : Eval.result;
  attempts : int;  (** instrumented executions tried *)
  blacklisted : Assertion.t list;
      (** assertions abandoned by re-planning after an escaped misspec *)
  recovered : Assertion.t list;
      (** assertions squashed in-run by checkpoint rollback/replay *)
  degraded : bool;  (** fell back to the uninstrumented original *)
}

(** [run_adaptive ~original ~replan ?input ?fuel ?max_retries ()] — drive
    the blacklist/re-plan/retry loop. [replan ~blacklist] produces the next
    instrumented candidate (or [None] when nothing speculative is left
    worth running). Termination: each retry blacklists one more assertion
    from a finite set, and [max_retries] caps the loop regardless. *)
let run_adaptive ~(original : Irmod.t)
    ~(replan : blacklist:Assertion.t list -> Instrument.instrumented option)
    ?(input = [||]) ?fuel ?(max_retries = 3) () : adaptive =
  let degrade attempts blacklisted =
    {
      final = Eval.run ?fuel ~input original;
      attempts;
      blacklisted;
      recovered = [];
      degraded = true;
    }
  in
  let rec go attempts blacklisted =
    if attempts > max_retries then degrade attempts blacklisted
    else
      match replan ~blacklist:blacklisted with
      | None -> degrade attempts blacklisted
      | Some inst -> (
          match Eval.run ?fuel ~input inst.Instrument.imod with
          | result ->
              {
                final = result;
                attempts = attempts + 1;
                blacklisted;
                recovered =
                  List.filter_map
                    (Instrument.assertion_of_tag inst)
                    result.Eval.recovered_tags;
                degraded = false;
              }
          | exception Runtime.Misspec { tag } -> (
              match Instrument.assertion_of_tag inst tag with
              | Some a -> go (attempts + 1) (a :: blacklisted)
              | None ->
                  (* unattributable misspec: no plan survives it *)
                  degrade (attempts + 1) blacklisted))
  in
  go 0 []

(* ---- full pipelines over a profiled program ---- *)

let hot_reports (profiles : Scaf_profile.Profiles.t) =
  let prog = profiles.Scaf_profile.Profiles.ctx in
  let resolver = Scaf_pdg.Schemes.scaf profiles in
  let lids = List.map fst (Scaf_pdg.Nodep.hot_loop_weights profiles) in
  ( lids,
    List.map
      (fun lid ->
        Scaf_pdg.Pdg.run_loop prog ~resolver:resolver.Scaf_pdg.Schemes.resolve
          lid)
      lids )

(** Full pipeline for a profiled program: run the PDG client over the hot
    loops with SCAF, plan, instrument, and return the instrumented module
    with its plan. *)
let speculate (profiles : Scaf_profile.Profiles.t) : Plan.t * Irmod.t =
  let prog = profiles.Scaf_profile.Profiles.ctx in
  let _, reports = hot_reports profiles in
  let plan = Plan.build reports in
  (plan, Instrument.apply prog plan.Plan.selected)

(** Full adaptive pipeline: plan, instrument with checkpoints on the hot
    loops, execute with rollback/re-plan recovery. Returns the last plan
    attempted together with the execution outcome. *)
let speculate_adaptive (profiles : Scaf_profile.Profiles.t) ?(input = [||])
    ?fuel ?max_retries () : Plan.t * adaptive =
  let prog = profiles.Scaf_profile.Profiles.ctx in
  let lids, reports = hot_reports profiles in
  let last_plan = ref (Plan.build reports) in
  let replan ~blacklist =
    let plan = Plan.build ~blacklist reports in
    last_plan := plan;
    if plan.Plan.selected = [] && blacklist <> [] then None
    else
      Some (Instrument.instrument prog ~checkpoints:lids plan.Plan.selected)
  in
  let a =
    run_adaptive ~original:prog.Scaf_cfg.Progctx.m ~replan ~input ?fuel
      ?max_retries ()
  in
  (!last_plan, a)
