(** Speculation planning (§3.4 "SCAF facilitates planning").

    Given the PDG client's per-loop query results — each disproven
    dependence annotated with the assertion options that justify it — pick
    the set of assertions to actually enforce: per dependence, the cheapest
    affordable option whose assertions do not conflict with what has
    already been selected. Assertions are deduplicated, so one cheap
    assertion (e.g. a dead block) pays for many dependences — the
    "fewer and cheaper assertions" effect of §5.1. *)

open Scaf
open Scaf_pdg

type t = {
  selected : Assertion.t list;  (** deduplicated, conflict-free *)
  covered : Pdg.dep_query list;  (** dependences removed under [selected] *)
  dropped : Pdg.dep_query list;
      (** disproven dependences whose every option conflicted *)
  total_cost : float;
}

let conflicts_with_any (a : Assertion.t) (sel : Assertion.t list) : bool =
  List.exists (Assertion.conflicts_with a) sel

let option_compatible (o : Assertion.t list) (sel : Assertion.t list) : bool =
  List.for_all (fun a -> not (conflicts_with_any a sel)) o

(* Marginal cost of an option given already-selected assertions (shared
   assertions are free). *)
let marginal_cost (o : Assertion.t list) (sel : Assertion.t list) : float =
  List.fold_left
    (fun acc (a : Assertion.t) ->
      if List.exists (Assertion.equal a) sel then acc else acc +. a.Assertion.cost)
    0.0 o

(** [build ?blacklist reports] — greedy selection over every affordable
    disproven dependence of every loop report. Options containing a
    blacklisted assertion (one already refuted at run time) are skipped, so
    re-planning after a misspeculation converges on a plan that avoids the
    offending speculation. *)
let build ?(blacklist = []) (reports : Pdg.loop_report list) : t =
  let sel = ref [] in
  let covered = ref [] and dropped = ref [] in
  let blacklisted (o : Assertion.t list) =
    List.exists
      (fun a -> List.exists (Assertion.equal a) blacklist)
      o
  in
  let consider (q : Pdg.qresult) =
    if q.Pdg.nodep then begin
      let options =
        List.filter
          (fun o ->
            (not (blacklisted o))
            && Cost_model.affordable (Response.Options.cost o))
          q.Pdg.resp.Response.options
        |> List.sort (fun a b ->
               Float.compare (marginal_cost a !sel) (marginal_cost b !sel))
      in
      match List.find_opt (fun o -> option_compatible o !sel) options with
      | Some o ->
          List.iter
            (fun a -> if not (List.exists (Assertion.equal a) !sel) then sel := a :: !sel)
            o;
          covered := q.Pdg.dq :: !covered
      | None -> dropped := q.Pdg.dq :: !dropped
    end
  in
  List.iter
    (fun (r : Pdg.loop_report) -> List.iter consider r.Pdg.queries)
    reports;
  let selected = List.rev !sel in
  {
    selected;
    covered = List.rev !covered;
    dropped = List.rev !dropped;
    total_cost =
      List.fold_left (fun a (x : Assertion.t) -> a +. x.Assertion.cost) 0.0 selected;
  }

let pp ppf (t : t) =
  Fmt.pf ppf
    "plan: %d assertions, %d dependences covered, %d dropped, cost %.1f@."
    (List.length t.selected) (List.length t.covered) (List.length t.dropped)
    t.total_cost;
  List.iter (fun a -> Fmt.pf ppf "  %a@." Assertion.pp a) t.selected
