(** Length-prefixed JSON framing over a file descriptor.

    Frame format (DESIGN.md §11): a 4-byte big-endian unsigned payload
    length, then exactly that many bytes of UTF-8 JSON. A reader therefore
    never scans for delimiters and can reject an oversized frame from its
    prefix alone, before buffering a byte of payload.

    Robustness contract:

    - {e no partial writes}: {!write_frame} assembles the whole frame and
      loops until every byte is on the wire (EINTR retried), so a crash
      between two [write]s can never leave a half-frame for the peer;
    - {e no unbounded buffering}: a frame longer than [max_len] is
      rejected as {!Oversized} after reading only the 4-byte prefix;
    - {e slow-loris bound}: [read_frame ~frame_budget] gives the sender a
      wall-clock budget from the frame's first byte to its last — a client
      dribbling one byte per poll interval is cut off as {!Truncated}
      instead of wedging the connection's reader forever;
    - {e idle vs. dead}: a receive timeout {e before} the first byte of a
      frame is {!Idle} (the caller decides whether to keep waiting); after
      the first byte it is part of the frame budget. *)

type error =
  | Closed  (** peer closed (EOF or connection reset) *)
  | Idle  (** receive timeout with no frame started *)
  | Truncated of string  (** EOF / budget exhausted inside a frame *)
  | Oversized of int  (** declared payload length over [max_len] *)
  | Bad_json of string  (** payload is not a single JSON value *)

let error_to_string = function
  | Closed -> "connection closed"
  | Idle -> "idle"
  | Truncated d -> "truncated frame: " ^ d
  | Oversized n -> Printf.sprintf "oversized frame: %d bytes declared" n
  | Bad_json d -> "bad json: " ^ d

(** Default maximum payload length: 4 MiB. *)
let default_max_len = 4 * 1024 * 1024

let now () = Unix.gettimeofday ()

(* Read exactly [n] bytes into [buf]; [deadline] (absolute, from the frame
   budget) bounds the whole fill once a frame has started. *)
let really_read (fd : Unix.file_descr) (buf : Bytes.t) (n : int)
    ~(first_byte_idle : bool) ~(deadline : float option ref)
    ~(frame_budget : float option) : (unit, error) result =
  let got = ref 0 in
  let result = ref None in
  while !got < n && !result = None do
    match !deadline with
    | Some d when now () > d ->
        result := Some (Error (Truncated "frame budget exhausted"))
    | _ -> (
        match Unix.read fd buf !got (n - !got) with
        | 0 ->
            result :=
              Some
                (if !got = 0 && first_byte_idle then Error Closed
                 else Error (Truncated "peer closed mid-frame"))
        | k ->
            (* the frame clock starts at its first byte *)
            if !deadline = None then
              deadline := Option.map (fun b -> now () +. b) frame_budget;
            got := !got + k
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            (* a receive-timeout tick: before a frame's first byte it is
               Idle; mid-frame we just wait again — the budget check at
               the loop top is what finally cuts a dribbling sender off *)
            if !got = 0 && !deadline = None && first_byte_idle then
              result := Some (Error Idle)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception
            Unix.Unix_error
              ( ( Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF
                | Unix.ESHUTDOWN ),
                _,
                _ ) ->
            result := Some (Error Closed))
  done;
  match !result with Some r -> r | None -> Ok ()

(* [deadline] (absolute) bounds the whole frame's write once the peer
   stops draining: a send-timeout tick ([SO_SNDTIMEO] on the fd surfaces
   as EAGAIN) past the deadline fails the write instead of wedging the
   writer behind a consumer that never reads. *)
let rec write_all ?(deadline : float option) (fd : Unix.file_descr)
    (buf : Bytes.t) (off : int) (len : int) : (unit, error) result =
  if len = 0 then Ok ()
  else
    match Unix.write fd buf off len with
    | k -> write_all ?deadline fd buf (off + k) (len - k)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        write_all ?deadline fd buf off len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        match deadline with
        | Some d when now () > d ->
            Error (Truncated "write budget exhausted")
        | _ -> write_all ?deadline fd buf off len)
    | exception
        Unix.Unix_error
          ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ESHUTDOWN), _, _)
      ->
        Error Closed

(** [write_frame fd json] — frame and send one JSON value atomically from
    the caller's point of view: the whole frame is assembled first, then
    written to completion or [Error Closed]. [write_budget] (seconds)
    bounds the wall-clock of the whole write when the fd carries a send
    timeout ([SO_SNDTIMEO]) — the per-connection write deadline that keeps
    a slow consumer from parking the daemon's writer forever. *)
let write_frame ?(write_budget : float option) (fd : Unix.file_descr)
    (j : Json.t) : (unit, error) result =
  let payload = Json.to_string j in
  let n = String.length payload in
  let frame = Bytes.create (4 + n) in
  Bytes.set frame 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set frame 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set frame 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set frame 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 frame 4 n;
  let deadline = Option.map (fun b -> now () +. b) write_budget in
  write_all ?deadline fd frame 0 (4 + n)

(** [read_frame fd] — read one frame. [max_len] bounds the declared
    payload; [frame_budget] (seconds) bounds the wall-clock from a frame's
    first byte to its last. Set a receive timeout ([SO_RCVTIMEO]) on [fd]
    to get [Idle] ticks while no frame has started. *)
let read_frame ?(max_len = default_max_len) ?frame_budget
    (fd : Unix.file_descr) : (Json.t, error) result =
  let deadline = ref None in
  let prefix = Bytes.create 4 in
  match
    really_read fd prefix 4 ~first_byte_idle:true ~deadline ~frame_budget
  with
  | Error e -> Error e
  | Ok () -> (
      let b i = Char.code (Bytes.get prefix i) in
      let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if n > max_len then Error (Oversized n)
      else
        let payload = Bytes.create n in
        match
          really_read fd payload n ~first_byte_idle:false ~deadline
            ~frame_budget
        with
        | Error e -> Error e
        | Ok () -> (
            match Json.of_string (Bytes.to_string payload) with
            | j -> Ok j
            | exception Json.Parse_error msg -> Error (Bad_json msg)))
