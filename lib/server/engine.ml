(** The daemon's resident analysis state: every benchmark profiled once at
    load, one warm shared {!Scaf.Qcache.t} per benchmark (plus a separate
    one for the degraded cheap ensemble — their answers differ, so they
    must never share entries), per-worker orchestrators over those caches,
    and the in-flight coalescing table.

    Threading model: orchestrators are single-threaded, so each worker
    thread owns a private table of them (lazily instantiated per
    benchmark); everything shared — caches, the flight table, the lazy
    Figure 8 rows — is mutex-guarded or internally synchronized. *)

open Scaf
open Scaf_suite
open Scaf_profile

type bench = {
  benchmark : Benchmark.t;
  profiles : Profiles.t;
  prog : Scaf_cfg.Progctx.t;
  cache : Qcache.t;  (** shared by every worker's full-ensemble orchestrator *)
  cheap_cache : Qcache.t;  (** ditto for the cheap (analysis-only) ensemble *)
  loops : (string * float) list;  (** hot loops with time weights *)
  row_mutex : Mutex.t;
  mutable row : Scaf_report.Experiments.fig8_row option;
      (** the benchmark's Figure 8 row, evaluated on first demand *)
}

type t = {
  benches : (string * bench) list;
  wrap : Module_api.t list -> Module_api.t list;
      (** ensemble wrapper hook — identity in production, fault injection
          under the chaos harness *)
  flights : (string, flight) Hashtbl.t;
  fm : Mutex.t;
  fc : Condition.t;
  mutable coalesced : int;  (** requests served by joining a peer's flight *)
}

(** One in-flight full-fidelity evaluation; identical concurrent requests
    join it instead of re-running the consult sweep. *)
and flight = {
  mutable outcome : (Response.t * bool) option;  (** (response, expired) *)
  mutable waiters : int;
}

let load_bench (b : Benchmark.t) : bench =
  let m = Benchmark.program b in
  let profiles = Profiler.profile_module ~inputs:b.Benchmark.train_inputs m in
  {
    benchmark = b;
    profiles;
    prog = profiles.Profiles.ctx;
    cache = Qcache.create ();
    cheap_cache = Qcache.create ();
    loops = Scaf_pdg.Nodep.hot_loop_weights profiles;
    row_mutex = Mutex.create ();
    row = None;
  }

let create ?(wrap = Fun.id) ~(benchmarks : Benchmark.t list) () : t =
  {
    benches =
      List.map (fun b -> (b.Benchmark.name, load_bench b)) benchmarks;
    wrap;
    flights = Hashtbl.create 64;
    fm = Mutex.create ();
    fc = Condition.create ();
    coalesced = 0;
  }

let bench_names (t : t) : string list = List.map fst t.benches
let find_bench (t : t) (name : string) : bench option =
  List.assoc_opt name t.benches

let coalesced_count (t : t) : int =
  Mutex.lock t.fm;
  let n = t.coalesced in
  Mutex.unlock t.fm;
  n

(* ------------------------------------------------------------------ *)
(* Per-worker orchestrators                                            *)
(* ------------------------------------------------------------------ *)

type worker = {
  eng : t;
  full : (string, Orchestrator.t) Hashtbl.t;  (** by benchmark name *)
  cheap : (string, Orchestrator.t) Hashtbl.t;
}

let worker (eng : t) : worker =
  { eng; full = Hashtbl.create 8; cheap = Hashtbl.create 8 }

let clock () = Unix.gettimeofday ()

(* The full-fidelity ensemble: exactly the SCAF scheme's module stack, so
   a non-degraded daemon answer is the batch evaluation's answer. *)
let full_orchestrator (w : worker) (b : bench) : Orchestrator.t =
  match Hashtbl.find_opt w.full b.benchmark.Benchmark.name with
  | Some o -> o
  | None ->
      let modules =
        w.eng.wrap
          (Scaf_analysis.Registry.create b.prog
          @ Scaf_speculation.Registry.create b.profiles)
      in
      let o =
        Orchestrator.create ~cache:b.cache b.prog
          {
            (Orchestrator.default_config modules) with
            Orchestrator.clock = Some clock;
          }
      in
      Hashtbl.add w.full b.benchmark.Benchmark.name o;
      o

(* The load-shed ensemble: static analysis only, shallow premise budget —
   cheap, assertion-free, still sound. *)
let cheap_orchestrator (w : worker) (b : bench) : Orchestrator.t =
  match Hashtbl.find_opt w.cheap b.benchmark.Benchmark.name with
  | Some o -> o
  | None ->
      let modules = w.eng.wrap (Scaf_analysis.Registry.create b.prog) in
      let o =
        Orchestrator.create ~cache:b.cheap_cache b.prog
          {
            (Orchestrator.default_config modules) with
            Orchestrator.clock = Some clock;
            max_premise_depth = 2;
          }
      in
      Hashtbl.add w.cheap b.benchmark.Benchmark.name o;
      o

(* ------------------------------------------------------------------ *)
(* Answering                                                           *)
(* ------------------------------------------------------------------ *)

let flight_key (b : bench) (q : Query.t) : string =
  b.benchmark.Benchmark.name ^ "\x00" ^ Fmt.str "%a" Query.pp q

(* Full-fidelity evaluation with coalescing: the first thread in becomes
   the flight's leader and runs the consult sweep; identical concurrent
   queries block on the flight and share its outcome (a joiner inherits
   the leader's deadline fate — sound either way, and flagged). *)
let full_answer (w : worker) (b : bench) (q : Query.t)
    ~(deadline : float option) : Response.t * bool * bool =
  let eng = w.eng in
  let key = flight_key b q in
  Mutex.lock eng.fm;
  match Hashtbl.find_opt eng.flights key with
  | Some fl ->
      fl.waiters <- fl.waiters + 1;
      eng.coalesced <- eng.coalesced + 1;
      let rec wait () =
        match fl.outcome with
        | Some (r, expired) ->
            fl.waiters <- fl.waiters - 1;
            Mutex.unlock eng.fm;
            (r, expired, true)
        | None ->
            Condition.wait eng.fc eng.fm;
            wait ()
      in
      wait ()
  | None ->
      let fl = { outcome = None; waiters = 0 } in
      Hashtbl.add eng.flights key fl;
      Mutex.unlock eng.fm;
      let o = full_orchestrator w b in
      let outcome =
        match
          (match deadline with
          | Some d -> Orchestrator.handle_deadlined o ~deadline:d q
          | None -> (Orchestrator.handle o q, false))
        with
        | r -> Ok r
        | exception e -> Error e
      in
      Mutex.lock eng.fm;
      (* publish (bottom on a leader crash — waiters must never hang),
         then retire the flight so later requests re-evaluate *)
      (match outcome with
      | Ok re -> fl.outcome <- Some re
      | Error _ -> fl.outcome <- Some (Response.bottom_for q, false));
      Hashtbl.remove eng.flights key;
      Condition.broadcast eng.fc;
      Mutex.unlock eng.fm;
      (match outcome with
      | Ok (r, expired) -> (r, expired, false)
      | Error e -> raise e)

(** Answer one wire query at the given degradation level. Never raises on
    deadline expiry or load shedding — degradation is data, not control
    flow. *)
let answer (w : worker) ~(degrade : Admission.degrade)
    ~(deadline : float option) (b : bench) (wq : Protocol.wire_query) :
    Protocol.answer =
  let q = Protocol.to_core_query wq in
  match degrade with
  | Admission.Cached_only -> (
      (* shed to the warm cache: a hit is a real (possibly speculative)
         answer; a miss is the sound conservative bottom *)
      match Qcache.find_q b.cache q with
      | Some r ->
          Protocol.answer_of_response ~degraded:"load_shed:cached" r
      | None ->
          Protocol.answer_of_response ~degraded:"load_shed:cached-miss"
            (Response.bottom_for q))
  | Admission.Cheap ->
      let o = cheap_orchestrator w b in
      let r, expired =
        match deadline with
        | Some d -> Orchestrator.handle_deadlined o ~deadline:d q
        | None -> (Orchestrator.handle o q, false)
      in
      Protocol.answer_of_response
        ~degraded:(if expired then "deadline" else "load_shed:cheap-modules")
        r
  | Admission.Full ->
      let r, expired, coalesced = full_answer w b q ~deadline in
      if expired then
        Protocol.answer_of_response ~degraded:"deadline" ~coalesced r
      else Protocol.answer_of_response ~coalesced r

(* ------------------------------------------------------------------ *)
(* Workload and report ops                                             *)
(* ------------------------------------------------------------------ *)

(** The benchmark's PDG workload as JSON: hot loops with weights and their
    dependence queries — what a client needs to replay the Figure 8
    workload query by query. *)
let queries_json (b : bench) : Json.t =
  Json.Obj
    [
      ("bench", Json.String b.benchmark.Benchmark.name);
      ( "loops",
        Json.List
          (List.map
             (fun (lid, weight) ->
               Json.Obj
                 [
                   ("loop", Json.String lid);
                   ("weight", Json.float weight);
                   ( "queries",
                     Json.List
                       (List.map
                          (fun (dq : Scaf_pdg.Pdg.dep_query) ->
                            Protocol.query_to_json
                              {
                                Protocol.wloop = lid;
                                wsrc = dq.Scaf_pdg.Pdg.src;
                                wdst = dq.Scaf_pdg.Pdg.dst;
                                wcross = dq.Scaf_pdg.Pdg.cross;
                              })
                          (Scaf_pdg.Pdg.queries_of_loop b.prog lid)) );
                 ])
             b.loops) );
    ]

(** The benchmark's Figure 8 row, evaluated with the batch scheme stack on
    first demand and cached (the mutex makes the expensive evaluation
    happen once, not once per concurrent request). *)
let report_row (b : bench) : Scaf_report.Experiments.fig8_row =
  Mutex.lock b.row_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock b.row_mutex)
    (fun () ->
      match b.row with
      | Some r -> r
      | None ->
          let e =
            Scaf_report.Experiments.evaluate_bench ~profiles:b.profiles
              b.benchmark
          in
          let r = Scaf_report.Experiments.fig8_row_of_eval e in
          b.row <- Some r;
          r)

let cache_stats_json (t : t) : Json.t =
  let stats_obj (s : Qcache.stats) =
    Json.Obj
      [
        ("hits", Json.Int s.Qcache.hits);
        ("misses", Json.Int s.Qcache.misses);
        ("canonical_hits", Json.Int s.Qcache.canonical_hits);
        ("evictions", Json.Int s.Qcache.evictions);
        ("entries", Json.Int s.Qcache.entries);
      ]
  in
  Json.Obj
    (List.map
       (fun (name, b) ->
         ( name,
           Json.Obj
             [
               ("full", stats_obj (Qcache.stats b.cache));
               ("cheap", stats_obj (Qcache.stats b.cheap_cache));
             ] ))
       t.benches)
