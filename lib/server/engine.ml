(** The daemon's resident analysis state: every benchmark profiled once at
    load, one warm shared {!Scaf.Qcache.t} per benchmark (plus a separate
    one for the degraded cheap ensemble — their answers differ, so they
    must never share entries), per-worker orchestrators over those caches,
    and the in-flight coalescing table.

    Since the incremental engine landed, each benchmark is held as a
    {e forked} {!Scaf_suite.Program.t} handle (the registry hands out fresh
    handles, and the engine forks again so no other client of the same
    registry entry can mutate under it) plus an invalidation-graph
    {!Scaf_incremental.Collector.graph} that every worker's full-ensemble
    orchestrator feeds. {!apply_edit} commits an edit script, runs the
    provenance-driven invalidation pass over the shared cache, and bumps
    the program epoch; worker orchestrators notice the stale epoch on
    their next lookup and rebuild over the surviving entries — the daemon
    never restarts.

    Threading model: orchestrators are single-threaded, so each worker
    thread owns a private table of them (lazily instantiated per benchmark,
    epoch-checked); everything shared — caches, the collector graph, the
    flight table, the lazy Figure 8 rows — is mutex-guarded or internally
    synchronized. A query racing an edit is answered against whichever
    program state its orchestrator was built for: sound for that state,
    and unreachable from the new epoch's cache keys afterwards. *)

open Scaf
open Scaf_suite
open Scaf_profile
open Scaf_incremental

type bench = {
  program : Program.t;  (** forked handle; mutated only by {!apply_edit} *)
  cache : Qcache.t;  (** shared by every worker's full-ensemble orchestrator *)
  cheap_cache : Qcache.t;  (** ditto for the cheap (analysis-only) ensemble *)
  graph : Collector.graph;  (** read-set provenance of [cache]'s entries *)
  bm : Mutex.t;  (** guards edits and the lazy row *)
  mutable row : Scaf_report.Experiments.fig8_row option;
      (** the benchmark's Figure 8 row, evaluated on first demand and
          dropped by {!apply_edit} (it describes the previous epoch) *)
}

type t = {
  mutable benches : (string * bench) list;
      (** grows via {!submit}; the list value is immutable and swapped
          atomically under [em], so readers take a consistent snapshot
          without locking *)
  em : Mutex.t;  (** serializes submissions *)
  wrap : Module_api.t list -> Module_api.t list;
      (** ensemble wrapper hook — identity in production, fault injection
          under the chaos harness *)
  static_nodep : bool;
      (** consult {!Scaf_lint.Static_nodep} before the orchestrator *)
  metrics : Scaf_trace.Metrics.t option;
  pool : Scaf_pdg.Scheduler.pool;
      (** the engine's one long-lived work-stealing pool, shared by every
          figure evaluation for the daemon's whole lifetime (Scheduler.map
          serializes concurrent worker threads) *)
  flights : (string, flight) Hashtbl.t;
  fm : Mutex.t;
  fc : Condition.t;
  mutable coalesced : int;  (** requests served by joining a peer's flight *)
}

(** One in-flight full-fidelity evaluation; identical concurrent requests
    join it instead of re-running the consult sweep. *)
and flight = {
  mutable outcome : (Response.t * bool) option;  (** (response, expired) *)
  mutable waiters : int;
}

let bench_id (b : bench) : string = Program.id b.program
let bench_epoch (b : bench) : int = Program.epoch b.program
let bench_profiles (b : bench) : Profiles.t = Program.profiles b.program

(** Hot loops of the benchmark's current program state. *)
let bench_loops (b : bench) : (string * float) list =
  Scaf_pdg.Nodep.hot_loop_weights (bench_profiles b)

let clock () = Unix.gettimeofday ()

let load_bench (p : Program.t) : bench =
  let program = Program.fork p in
  ignore (Program.profiles program : Profiles.t) (* profile at load time *);
  {
    program;
    (* the daemon is the one deployment where shard-lock waits matter, so
       its caches get the wall clock and `ask stats` shows wait latency *)
    cache = Qcache.create ~wait_clock:clock ();
    cheap_cache = Qcache.create ~wait_clock:clock ();
    graph =
      Collector.create_graph
        ~funcs_of:(Collector.funcs_of_ctx (Program.ctx program));
    bm = Mutex.create ();
    row = None;
  }

(** [jobs] sizes the engine's domain pool (default 1: no extra domains —
    the right choice for tests and small hosts; the daemon passes its
    configured parallelism). Engines with [jobs > 1] hold live domains and
    must be {!shutdown}. *)
let create ?(wrap = Fun.id) ?(static_nodep = false) ?metrics ?(jobs = 1)
    ~(benchmarks : Program.t list) () : t =
  {
    benches = List.map (fun p -> (Program.id p, load_bench p)) benchmarks;
    em = Mutex.create ();
    wrap;
    static_nodep;
    metrics;
    pool = Scaf_pdg.Scheduler.create ~jobs ();
    flights = Hashtbl.create 64;
    fm = Mutex.create ();
    fc = Condition.create ();
    coalesced = 0;
  }

let pool (t : t) : Scaf_pdg.Scheduler.pool = t.pool

(** Join the engine's pool domains. The engine still answers queries
    afterwards (orchestrators are pool-independent); only the parallel
    figure evaluations are gone. *)
let shutdown (t : t) : unit = Scaf_pdg.Scheduler.shutdown t.pool

let bench_names (t : t) : string list = List.map fst t.benches
let find_bench (t : t) (name : string) : bench option =
  List.assoc_opt name t.benches

let coalesced_count (t : t) : int =
  Mutex.lock t.fm;
  let n = t.coalesced in
  Mutex.unlock t.fm;
  n

(* ------------------------------------------------------------------ *)
(* Per-worker orchestrators                                            *)
(* ------------------------------------------------------------------ *)

type worker = {
  eng : t;
  full : (string, int * Orchestrator.t) Hashtbl.t;
      (** by benchmark name, stamped with the epoch it was built for *)
  cheap : (string, int * Orchestrator.t) Hashtbl.t;
}

let worker (eng : t) : worker =
  { eng; full = Hashtbl.create 8; cheap = Hashtbl.create 8 }

(* The full-fidelity ensemble: exactly the SCAF scheme's module stack, so
   a non-degraded daemon answer is the batch evaluation's answer. Rebuilt
   (over the shared cache's surviving entries) whenever the benchmark's
   epoch moved past the memoized orchestrator's. *)
let full_orchestrator (w : worker) (b : bench) : Orchestrator.t =
  let epoch = bench_epoch b in
  match Hashtbl.find_opt w.full (bench_id b) with
  | Some (e, o) when e = epoch -> o
  | _ ->
      let profiles = bench_profiles b in
      let modules =
        w.eng.wrap
          (Scaf_analysis.Registry.create (Program.ctx b.program)
          @ Scaf_speculation.Registry.create profiles)
      in
      (* [l1_flush_every:1] publishes every memoized answer into the
         shared store immediately: other worker threads (flight joiners,
         cached-only degraded answers) probe the shared store, and
         {!apply_edit}'s invalidation walk can only restamp what the store
         holds — an answer parked in a private L1 batch would be invisible
         to all three. Per-add publication costs exactly what the pre-L1
         design did. *)
      let o =
        Orchestrator.create ~cache:b.cache ~l1_flush_every:1
          profiles.Profiles.ctx
          {
            (Orchestrator.default_config modules) with
            Orchestrator.clock = Some clock;
            epoch;
            depsink = Collector.sink (Collector.frontend b.graph);
          }
      in
      Hashtbl.replace w.full (bench_id b) (epoch, o);
      o

(* The load-shed ensemble: static analysis only, shallow premise budget —
   cheap, assertion-free, still sound. Its cache has no provenance graph;
   {!apply_edit} simply clears it. *)
let cheap_orchestrator (w : worker) (b : bench) : Orchestrator.t =
  let epoch = bench_epoch b in
  match Hashtbl.find_opt w.cheap (bench_id b) with
  | Some (e, o) when e = epoch -> o
  | _ ->
      let modules =
        w.eng.wrap (Scaf_analysis.Registry.create (Program.ctx b.program))
      in
      let o =
        (* immediate publication for the same reasons as the full
           ensemble above *)
        Orchestrator.create ~cache:b.cheap_cache ~l1_flush_every:1
          (Program.ctx b.program)
          {
            (Orchestrator.default_config modules) with
            Orchestrator.clock = Some clock;
            max_premise_depth = 2;
            epoch;
          }
      in
      Hashtbl.replace w.cheap (bench_id b) (epoch, o);
      o

(* ------------------------------------------------------------------ *)
(* Answering                                                           *)
(* ------------------------------------------------------------------ *)

(* The epoch is part of the flight key: a request racing an edit must not
   join a flight evaluating against the other program state. *)
let flight_key (b : bench) (q : Query.t) : string =
  Fmt.str "%s\x00%d\x00%a" (bench_id b) (Query.epoch_of q) Query.pp q

(* Full-fidelity evaluation with coalescing: the first thread in becomes
   the flight's leader and runs the consult sweep; identical concurrent
   queries block on the flight and share its outcome (a joiner inherits
   the leader's deadline fate — sound either way, and flagged). *)
let full_answer (w : worker) (b : bench) (q : Query.t)
    ~(deadline : float option) : Response.t * bool * bool =
  let eng = w.eng in
  let key = flight_key b q in
  Mutex.lock eng.fm;
  match Hashtbl.find_opt eng.flights key with
  | Some fl ->
      fl.waiters <- fl.waiters + 1;
      eng.coalesced <- eng.coalesced + 1;
      let rec wait () =
        match fl.outcome with
        | Some (r, expired) ->
            fl.waiters <- fl.waiters - 1;
            Mutex.unlock eng.fm;
            (r, expired, true)
        | None ->
            Condition.wait eng.fc eng.fm;
            wait ()
      in
      wait ()
  | None ->
      let fl = { outcome = None; waiters = 0 } in
      Hashtbl.add eng.flights key fl;
      Mutex.unlock eng.fm;
      let o = full_orchestrator w b in
      let outcome =
        match
          (match deadline with
          | Some d -> Orchestrator.handle_deadlined o ~deadline:d q
          | None -> (Orchestrator.handle o q, false))
        with
        | r -> Ok r
        | exception e -> Error e
      in
      Mutex.lock eng.fm;
      (* publish (bottom on a leader crash — waiters must never hang),
         then retire the flight so later requests re-evaluate *)
      (match outcome with
      | Ok re -> fl.outcome <- Some re
      | Error _ -> fl.outcome <- Some (Response.bottom_for q, false));
      Hashtbl.remove eng.flights key;
      Condition.broadcast eng.fc;
      Mutex.unlock eng.fm;
      (match outcome with
      | Ok (r, expired) -> (r, expired, false)
      | Error e -> raise e)

(** Answer one wire query at the given degradation level. The query is
    stamped with the benchmark's current epoch, so it can only hit cache
    entries valid for the current program state. Never raises on deadline
    expiry or load shedding — degradation is data, not control flow. *)
(* The static quick-answer pass (opt-in): a provably-disjoint query is
   resolved from the lint layer's pointer reasoning alone — cheaper than a
   cache probe, never cached, counted either way. *)
let static_quick (t : t) (b : bench) (q : Query.t) : Response.t option =
  if not t.static_nodep then None
  else begin
    let r = Scaf_lint.Static_nodep.answer (Program.ctx b.program) q in
    (match t.metrics with
    | Some m ->
        Scaf_trace.Metrics.incr
          (Scaf_trace.Metrics.counter m
             (match r with
             | Some _ -> "lint.static_nodep.hits"
             | None -> "lint.static_nodep.misses"))
    | None -> ());
    r
  end

let answer (w : worker) ~(degrade : Admission.degrade)
    ~(deadline : float option) (b : bench) (wq : Protocol.wire_query) :
    Protocol.answer =
  let q = Query.at_epoch (bench_epoch b) (Protocol.to_core_query wq) in
  match static_quick w.eng b q with
  | Some r -> Protocol.answer_of_response r
  | None -> (
  match degrade with
  | Admission.Cached_only -> (
      (* shed to the warm cache: a hit is a real (possibly speculative)
         answer; a miss is the sound conservative bottom *)
      match Qcache.find_q b.cache q with
      | Some r ->
          Protocol.answer_of_response ~degraded:"load_shed:cached" r
      | None ->
          Protocol.answer_of_response ~degraded:"load_shed:cached-miss"
            (Response.bottom_for q))
  | Admission.Cheap ->
      let o = cheap_orchestrator w b in
      let r, expired =
        match deadline with
        | Some d -> Orchestrator.handle_deadlined o ~deadline:d q
        | None -> (Orchestrator.handle o q, false)
      in
      Protocol.answer_of_response
        ~degraded:(if expired then "deadline" else "load_shed:cheap-modules")
        r
  | Admission.Full ->
      let r, expired, coalesced = full_answer w b q ~deadline in
      if expired then
        Protocol.answer_of_response ~degraded:"deadline" ~coalesced r
      else Protocol.answer_of_response ~coalesced r)

(* ------------------------------------------------------------------ *)
(* Edits                                                               *)
(* ------------------------------------------------------------------ *)

(** Resolve a wire edit against the benchmark's current program state.
    [WAuto] becomes the scripted single-loop edit of the incremental
    session (insert one fresh instruction into the hot loop with the
    smallest workload share). *)
let resolve_edit (b : bench) (we : Protocol.wire_edit) : Edit.op =
  match we with
  | Protocol.WInsert { fname; block; at; text } ->
      Edit.Insert_instr { fname; block; at; text }
  | Protocol.WDelete { id } -> Edit.Delete_instr { id }
  | Protocol.WReplace { lid; block; body } ->
      Edit.Replace_loop_body { lid; block; body }
  | Protocol.WAuto ->
      let s = Session.create (Program.fork b.program) in
      Session.auto_edit s

(** Apply an edit script to the resident benchmark: commit the edit, run
    the provenance-driven invalidation pass over the shared full cache,
    clear the cheap cache (its analysis-only ensemble has no provenance
    graph), drop the stale Figure 8 row, and rebind the collector's
    footprint mapping to the new program. Worker orchestrators rebuild on
    their next request via the epoch check. Serialized per benchmark. *)
let apply_edit (t : t) (b : bench) (wedits : Protocol.wire_edit list) :
    (Edit.diff * Invalidate.stats, Scaf_lint.Diagnostic.t list) result =
  Mutex.lock b.bm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock b.bm)
    (fun () ->
      match List.map (resolve_edit b) wedits with
      | exception e ->
          Error
            [
              Scaf_lint.Diagnostic.error ~code:"edit.target" ~pass:"edit"
                "cannot resolve edit: %s" (Printexc.to_string e);
            ]
      | ops -> (
          let old_m = Program.program b.program in
          let old_fp = Fingerprint.of_profiles (bench_profiles b) in
          match Edit.apply_all b.program ops with
          | Error e -> Error e
          | Ok diff ->
              let new_fp = Fingerprint.of_profiles (bench_profiles b) in
              let profile_dirty =
                Fingerprint.changed ~before:old_fp ~after:new_fp
              in
              let components =
                Components.build [ old_m; Program.program b.program ]
              in
              (* caps of the wrapped ensemble — a chaos wrapper that
                 changes a module's declaration is still judged by what
                 the workers actually consult *)
              let modules =
                t.wrap
                  (Scaf_analysis.Registry.create (Program.ctx b.program)
                  @ Scaf_speculation.Registry.create (bench_profiles b))
              in
              let caps_of name =
                Option.map
                  (fun (m : Module_api.t) -> m.Module_api.caps)
                  (List.find_opt
                     (fun (m : Module_api.t) ->
                       String.equal m.Module_api.name name)
                     modules)
              in
              let stats =
                Invalidate.run ~graph:b.graph ~caps_of ~components
                  ~touched_funcs:diff.Edit.touched_funcs
                  ~touched_globals:diff.Edit.touched_globals ~profile_dirty
                  ~next_epoch:diff.Edit.epoch b.cache
              in
              Qcache.clear b.cheap_cache;
              Collector.set_funcs_of b.graph
                (Collector.funcs_of_ctx (Program.ctx b.program));
              b.row <- None;
              Ok (diff, stats)))

(* ------------------------------------------------------------------ *)
(* Submissions                                                         *)
(* ------------------------------------------------------------------ *)

let valid_id (id : string) : bool =
  String.length id > 0
  && String.length id <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '.' || c = '_' || c = '-')
       id

(** Lint-gate and register a user-submitted program: validate the id,
    parse, run the full lint suite, check the static query estimate
    against the admission ceiling [max_est_queries] — all {e before} any
    profiling or analysis — then build the {!Program.t} handle, profile it
    on its training inputs, and publish it in the bench table. On success
    the program is queryable like any suite benchmark (same [Ask] /
    [Queries] / [Edit] / [Report] ops, same epoch discipline). Rejections
    carry the full diagnostic report. *)
let submit (t : t) ~(max_est_queries : int) (wp : Protocol.wire_program) :
    (Protocol.submit_report * bench, Protocol.err) result =
  let id = wp.Protocol.wp_id in
  if not (valid_id id) then
    Error
      (Protocol.bad_request
         (Printf.sprintf
            "submit: invalid program id %S (want [A-Za-z0-9._-]{1,64})" id))
  else if Option.is_some (find_bench t id) then
    Error
      (Protocol.bad_request
         (Printf.sprintf "submit: a benchmark named %S is already registered"
            id))
  else
    match Scaf_ir.Parser.parse_exn_msg wp.Protocol.wp_source with
    | exception Failure msg ->
        Error
          (Protocol.lint_rejected
             [
               Scaf_lint.Diagnostic.error ~code:"parse.error" ~pass:"parse"
                 "%s" msg;
             ])
    | m -> (
        let report = Scaf_lint.Pass.run ?metrics:t.metrics m in
        match Scaf_lint.Pass.errors report with
        | _ :: _ ->
            Error (Protocol.lint_rejected report.Scaf_lint.Pass.diagnostics)
        | [] -> (
            let cost =
              match report.Scaf_lint.Pass.ctx with
              | Some prog -> Scaf_lint.Cost.of_ctx prog
              | None ->
                  (* unreachable: a clean report always carries its ctx *)
                  Scaf_lint.Cost.of_ctx (Scaf_cfg.Progctx.build m)
            in
            if cost.Scaf_lint.Cost.total_est > max_est_queries then
              Error
                (Protocol.lint_rejected
                   [
                     Scaf_lint.Diagnostic.error ~code:"cost.budget"
                       ~pass:"cost"
                       "estimated %d dependence queries exceeds the \
                        admission ceiling (%d)"
                       cost.Scaf_lint.Cost.total_est max_est_queries;
                   ])
            else
              let p =
                Program.make ~id ~descr:"user-submitted"
                  ?train_inputs:wp.Protocol.wp_train
                  ?ref_input:wp.Protocol.wp_ref wp.Protocol.wp_source
              in
              match load_bench p with
              | exception e ->
                  Error
                    (Protocol.lint_rejected
                       [
                         Scaf_lint.Diagnostic.error ~code:"runtime.trap"
                           ~pass:"submit"
                           "program failed while profiling on its training \
                            input: %s"
                           (Printexc.to_string e);
                       ])
              | b ->
                  Mutex.lock t.em;
                  let dup = List.mem_assoc id t.benches in
                  if not dup then t.benches <- t.benches @ [ (id, b) ];
                  Mutex.unlock t.em;
                  if dup then
                    Error
                      (Protocol.bad_request
                         (Printf.sprintf
                            "submit: a benchmark named %S is already \
                             registered"
                            id))
                  else
                    let warnings =
                      List.length
                        (List.filter
                           (fun (d : Scaf_lint.Diagnostic.t) ->
                             d.Scaf_lint.Diagnostic.severity
                             = Scaf_lint.Diagnostic.Warning)
                           report.Scaf_lint.Pass.diagnostics)
                    in
                    Ok
                      ( {
                          Protocol.s_id = id;
                          s_loops =
                            List.map
                              (fun (l : Scaf_lint.Cost.loop_cost) ->
                                (l.Scaf_lint.Cost.lid, l.Scaf_lint.Cost.est))
                              cost.Scaf_lint.Cost.loops;
                          s_est_queries = cost.Scaf_lint.Cost.total_est;
                          s_warnings = warnings;
                        },
                        b )))

(* ------------------------------------------------------------------ *)
(* Workload and report ops                                             *)
(* ------------------------------------------------------------------ *)

(** The benchmark's PDG workload as JSON: hot loops with weights and their
    dependence queries — what a client needs to replay the Figure 8
    workload query by query. Reflects the current program epoch. *)
let queries_json (b : bench) : Json.t =
  let prog = Program.ctx b.program in
  Json.Obj
    [
      ("bench", Json.String (bench_id b));
      ("epoch", Json.Int (bench_epoch b));
      ( "loops",
        Json.List
          (List.map
             (fun (lid, weight) ->
               Json.Obj
                 [
                   ("loop", Json.String lid);
                   ("weight", Json.float weight);
                   ( "queries",
                     Json.List
                       (List.map
                          (fun (dq : Scaf_pdg.Pdg.dep_query) ->
                            Protocol.query_to_json
                              {
                                Protocol.wloop = lid;
                                wsrc = dq.Scaf_pdg.Pdg.src;
                                wdst = dq.Scaf_pdg.Pdg.dst;
                                wcross = dq.Scaf_pdg.Pdg.cross;
                              })
                          (Scaf_pdg.Pdg.queries_of_loop prog lid)) );
                 ])
             (bench_loops b)) );
    ]

(** The benchmark's Figure 8 row, evaluated with the batch scheme stack on
    first demand and cached (the mutex makes the expensive evaluation
    happen once, not once per concurrent request). An edit drops the
    cached row, so a post-edit request re-evaluates against the new
    program state. *)
let report_row (t : t) (b : bench) : Scaf_report.Experiments.fig8_row =
  Mutex.lock b.bm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock b.bm)
    (fun () ->
      match b.row with
      | Some r -> r
      | None ->
          let e =
            Scaf_report.Experiments.evaluate_bench ~pool:t.pool
              ~profiles:(bench_profiles b) b.program
          in
          let r = Scaf_report.Experiments.fig8_row_of_eval e in
          b.row <- Some r;
          r)

let cache_stats_json (t : t) : Json.t =
  let stats_obj (s : Qcache.Snapshot.t) =
    Json.Obj
      [
        ("hits", Json.Int s.Qcache.Snapshot.hits);
        ("l1_hits", Json.Int s.Qcache.Snapshot.l1_hits);
        ("misses", Json.Int s.Qcache.Snapshot.misses);
        ("canonical_hits", Json.Int s.Qcache.Snapshot.canonical_hits);
        ("evictions", Json.Int s.Qcache.Snapshot.evictions);
        ("entries", Json.Int s.Qcache.Snapshot.entries);
        ("publishes", Json.Int s.Qcache.Snapshot.publishes);
        ("steals", Json.Int s.Qcache.Snapshot.steals);
        ("contended", Json.Int s.Qcache.Snapshot.contended);
        ("waits", Json.Int s.Qcache.Snapshot.waits);
        (* lock-wait latency, microseconds: rare by construction, so the
           reservoir-backed p95 is the honest headline number *)
        ( "wait_us_total",
          Json.Float (s.Qcache.Snapshot.wait_ns_total /. 1e3) );
        ("wait_us_max", Json.Float (s.Qcache.Snapshot.wait_ns_max /. 1e3));
        ("wait_us_p95", Json.Float (s.Qcache.Snapshot.wait_ns_p95 /. 1e3));
      ]
  in
  Json.Obj
    (List.map
       (fun (name, b) ->
         ( name,
           Json.Obj
             [
               ("epoch", Json.Int (bench_epoch b));
               ("full", stats_obj (Qcache.snapshot b.cache));
               ("cheap", stats_obj (Qcache.snapshot b.cheap_cache));
             ] ))
       t.benches)
