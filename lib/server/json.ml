(** A deliberately small JSON codec for the wire protocol.

    The repo carries no JSON dependency (the trace layer emits JSON by
    hand), so the server speaks through this self-contained value type: a
    recursive-descent parser and a printer whose floats round-trip
    binary64 exactly ([%.17g] out, [float_of_string] back), which is what
    lets the daemon's fig8 replay be byte-identical to the batch
    evaluation. Non-finite floats have no JSON spelling and are clamped by
    {!float} at construction. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** insertion order is preserved *)

exception Parse_error of string

let parse_error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Construction / access helpers                                       *)
(* ------------------------------------------------------------------ *)

(** Total float constructor: JSON has no spelling for nan/inf, so they are
    clamped to null / +-max_float rather than producing unparseable
    output. *)
let float (f : float) : t =
  match Float.classify_float f with
  | Float.FP_nan -> Null
  | Float.FP_infinite -> Float (if f > 0.0 then Float.max_float else -.Float.max_float)
  | _ -> Float f

let member (name : string) (j : t) : t option =
  match j with Obj fields -> List.assoc_opt name fields | _ -> None

let mem_or (name : string) ~(default : t) (j : t) : t =
  Option.value ~default (member name j)

let to_string_exn = function
  | String s -> s
  | j -> parse_error "expected a string, got %s" (match j with
      | Null -> "null" | Bool _ -> "a bool" | Int _ -> "an int"
      | Float _ -> "a float" | List _ -> "a list" | Obj _ -> "an object"
      | String _ -> assert false)

let to_int_exn = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | _ -> parse_error "expected an int"

let to_float_exn = function
  | Int i -> float_of_int i
  | Float f -> f
  | _ -> parse_error "expected a number"

let to_bool_exn = function Bool b -> b | _ -> parse_error "expected a bool"
let to_list_exn = function List l -> l | _ -> parse_error "expected a list"

let string_member name j =
  match member name j with
  | Some v -> to_string_exn v
  | None -> parse_error "missing field %S" name

let int_member name j =
  match member name j with
  | Some v -> to_int_exn v
  | None -> parse_error "missing field %S" name

let float_member_opt name j = Option.map to_float_exn (member name j)

let string_member_opt name j =
  match member name j with
  | Some Null | None -> None
  | Some v -> Some (to_string_exn v)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape (b : Buffer.t) (s : string) : unit =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit (b : Buffer.t) (j : t) : unit =
  match j with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* %.17g round-trips every binary64; integral values pick up a ".0"
         so they parse back as Float, not Int *)
      let s = Printf.sprintf "%.17g" f in
      Buffer.add_string b s;
      if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
        Buffer.add_string b ".0"
  | String s -> escape b s
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          emit b v)
        fields;
      Buffer.add_char b '}'

let to_string (j : t) : string =
  let b = Buffer.create 256 in
  emit b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { s : string; mutable pos : int }

let peek (c : cursor) : char option =
  if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance (c : cursor) : unit = c.pos <- c.pos + 1

let skip_ws (c : cursor) : unit =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect (c : cursor) (ch : char) : unit =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "at %d: expected %C, got %C" c.pos ch x
  | None -> parse_error "at %d: expected %C, got end of input" c.pos ch

let parse_hex4 (c : cursor) : int =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek c with
    | Some ch ->
        let d =
          match ch with
          | '0' .. '9' -> Char.code ch - Char.code '0'
          | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
          | _ -> parse_error "at %d: bad \\u escape" c.pos
        in
        v := (!v * 16) + d
    | None -> parse_error "unterminated \\u escape");
    advance c
  done;
  !v

let parse_string (c : cursor) : string =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> Buffer.add_char b '"'; advance c; loop ()
        | Some '\\' -> Buffer.add_char b '\\'; advance c; loop ()
        | Some '/' -> Buffer.add_char b '/'; advance c; loop ()
        | Some 'n' -> Buffer.add_char b '\n'; advance c; loop ()
        | Some 't' -> Buffer.add_char b '\t'; advance c; loop ()
        | Some 'r' -> Buffer.add_char b '\r'; advance c; loop ()
        | Some 'b' -> Buffer.add_char b '\b'; advance c; loop ()
        | Some 'f' -> Buffer.add_char b '\012'; advance c; loop ()
        | Some 'u' ->
            advance c;
            let code = parse_hex4 c in
            (* good enough for the protocol: BMP code points as UTF-8 *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | _ -> parse_error "at %d: bad escape" c.pos)
    | Some ch ->
        Buffer.add_char b ch;
        advance c;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number (c : cursor) : t =
  let start = c.pos in
  let is_float = ref false in
  let rec loop () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') -> advance c; loop ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance c;
        loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_error "at %d: bad number %S" start text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> parse_error "at %d: bad number %S" start text)

let rec parse_value (c : cursor) : t =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '"' -> String (parse_string c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (k, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; fields_loop ()
          | Some '}' -> advance c
          | _ -> parse_error "at %d: expected ',' or '}'" c.pos
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items_loop ()
          | Some ']' -> advance c
          | _ -> parse_error "at %d: expected ',' or ']'" c.pos
        in
        items_loop ();
        List (List.rev !items)
      end
  | Some 't' ->
      if c.pos + 4 <= String.length c.s && String.sub c.s c.pos 4 = "true" then begin
        c.pos <- c.pos + 4;
        Bool true
      end
      else parse_error "at %d: bad literal" c.pos
  | Some 'f' ->
      if c.pos + 5 <= String.length c.s && String.sub c.s c.pos 5 = "false"
      then begin
        c.pos <- c.pos + 5;
        Bool false
      end
      else parse_error "at %d: bad literal" c.pos
  | Some 'n' ->
      if c.pos + 4 <= String.length c.s && String.sub c.s c.pos 4 = "null" then begin
        c.pos <- c.pos + 4;
        Null
      end
      else parse_error "at %d: bad literal" c.pos
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "at %d: unexpected %C" c.pos ch

(** [of_string s] — parse one JSON value; trailing garbage is an error.
    Raises {!Parse_error}. *)
let of_string (s : string) : t =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    parse_error "at %d: trailing garbage after value" c.pos;
  v
