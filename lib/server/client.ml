(** Blocking client for the SCAF query daemon.

    Connection management is deliberately boring: one socket, one
    outstanding request (the protocol is strictly request/response per
    connection — the one exception is a streaming [ask_many], whose reply
    is a frame sequence), and a retry layer with exponential backoff +
    jitter that re-resolves both transport failures (connect refused,
    connection reset mid-call) and the server's explicit retryable
    rejections — honoring a [retry_after_ms] hint when the server provides
    one. Non-retryable server errors surface immediately as
    {!Server_error}.

    The endpoint string accepts both transports ({!Addr}): a plain path is
    a Unix-domain socket, ["tcp:HOST:PORT"] a TCP endpoint. Every read
    path transparently skips the daemon's keepalive heartbeat frames. *)

exception Server_error of Protocol.err
(** a structured failure the server deliberately sent *)

exception Transport_error of string
(** the conversation itself broke and retries were exhausted *)

type retry = {
  attempts : int;  (** total tries, the first included *)
  base_ms : float;  (** first backoff step *)
  cap_ms : float;  (** backoff ceiling *)
}

let default_retry = { attempts = 5; base_ms = 25.0; cap_ms = 1000.0 }
let no_retry = { attempts = 1; base_ms = 0.0; cap_ms = 0.0 }

type t = {
  path : string;
  name : string;
  retry : retry;
  rng : Random.State.t;
  mutable fd : Unix.file_descr option;  (** [None] between reconnects *)
  mutable closed : bool;
}

(* Full jitter: a uniform draw from [0, min(cap, base * 2^attempt)] — the
   fleet of retrying clients decorrelates instead of thundering back in
   lockstep. A server hint overrides the exponential base. *)
let backoff_s (c : t) ~(attempt : int) ~(hint_ms : float option) : float =
  let ceiling =
    match hint_ms with
    | Some ms -> Float.min c.retry.cap_ms (Float.max ms c.retry.base_ms)
    | None ->
        Float.min c.retry.cap_ms
          (c.retry.base_ms *. Float.pow 2.0 (float_of_int attempt))
  in
  Random.State.float c.rng (Float.max ceiling 0.001) /. 1000.0

let connect_fd (c : t) : Unix.file_descr =
  let addr =
    try Addr.of_string c.path
    with Invalid_argument msg -> raise (Transport_error msg)
  in
  Addr.connect addr

let disconnect (c : t) : unit =
  match c.fd with
  | Some fd ->
      c.fd <- None;
      (try Unix.close fd with _ -> ())
  | None -> ()

(* One request/response exchange over the current socket; raises
   [Transport_error] (after dropping the socket) when the conversation
   breaks — the retry layer above decides whether to reconnect. *)
let exchange (c : t) (req : Protocol.request) : (Json.t, Protocol.err) result
    =
  let fd =
    match c.fd with
    | Some fd -> fd
    | None ->
        let fd =
          match connect_fd c with
          | fd -> fd
          | exception Unix.Unix_error (e, _, _) ->
              raise (Transport_error (Unix.error_message e))
          | exception Failure msg -> raise (Transport_error msg)
        in
        c.fd <- Some fd;
        fd
  in
  let fail msg =
    disconnect c;
    raise (Transport_error msg)
  in
  match Wire.write_frame fd (Protocol.request_to_json req) with
  | Error e -> fail (Wire.error_to_string e)
  | Ok () -> (
      (* skip idle-keepalive heartbeats: they carry no data and may
         arrive ahead of any reply *)
      let rec read () =
        match Wire.read_frame fd with
        | Error e -> fail (Wire.error_to_string e)
        | Ok j when Protocol.is_heartbeat j -> read ()
        | Ok j -> (
            match Protocol.open_envelope j with
            | r -> r
            | exception Json.Parse_error msg -> fail msg)
      in
      read ())

(** Send one request, retrying transport failures and retryable server
    rejections with backoff. Raises {!Server_error} on a non-retryable
    rejection, {!Transport_error} once retries are exhausted. *)
let rpc (c : t) (req : Protocol.request) : Json.t =
  if c.closed then raise (Transport_error "client closed");
  let rec go attempt =
    let retry_or ~hint_ms (fail : unit -> 'a) : Json.t =
      if attempt + 1 >= c.retry.attempts then fail ()
      else begin
        Thread.delay (backoff_s c ~attempt ~hint_ms);
        go (attempt + 1)
      end
    in
    match exchange c req with
    | Ok j -> j
    | Error e when e.Protocol.retryable ->
        retry_or ~hint_ms:e.Protocol.retry_after_ms (fun () ->
            raise (Server_error e))
    | Error e -> raise (Server_error e)
    | exception Transport_error msg ->
        retry_or ~hint_ms:None (fun () -> raise (Transport_error msg))
  in
  go 0

(** [connect path] — connect and handshake. [retry] also governs the
    initial connection (a client racing a still-starting daemon backs off
    instead of failing). Returns the daemon's benchmark list. *)
let connect ?(name = "client") ?(retry = default_retry) ?(seed = 7)
    (path : string) : t * string list =
  let c =
    {
      path;
      name;
      retry;
      rng = Random.State.make [| seed; Hashtbl.hash path |];
      fd = None;
      closed = false;
    }
  in
  let hello = rpc c (Protocol.Hello { client = name }) in
  let benchmarks =
    List.map Json.to_string_exn
      (Json.to_list_exn (Json.mem_or "benchmarks" ~default:(Json.List []) hello))
  in
  (c, benchmarks)

let close (c : t) : unit =
  c.closed <- true;
  disconnect c

let ping (c : t) : unit = ignore (rpc c Protocol.Ping)

(** Ask one dependence query. *)
let ask ?deadline_ms (c : t) ~(bench : string) (q : Protocol.wire_query) :
    Protocol.answer =
  let j = rpc c (Protocol.Ask { bench; q; deadline_ms }) in
  match Json.member "answer" j with
  | Some a -> Protocol.answer_of_json a
  | None -> raise (Transport_error "response missing \"answer\"")

(* One streaming ask_many over the current socket: send the request, then
   reassemble the frame sequence (items in index order, heartbeats
   skipped) until the terminal summary. An error envelope before any item
   is an ordinary rejection (connection intact); one mid-stream means the
   server abandoned the stream — the socket is dropped either way the
   framing is uncertain. *)
let stream_exchange (c : t) ~(bench : string)
    ~(qs : Protocol.wire_query list) ~(deadline_ms : float option)
    ~(on_item : (int -> Protocol.answer -> [ `Continue | `Cancel ]) option) :
    (Protocol.answer list * Protocol.stream_summary, Protocol.err) result =
  let fd =
    match c.fd with
    | Some fd -> fd
    | None ->
        let fd =
          match connect_fd c with
          | fd -> fd
          | exception Unix.Unix_error (e, _, _) ->
              raise (Transport_error (Unix.error_message e))
          | exception Failure msg -> raise (Transport_error msg)
        in
        c.fd <- Some fd;
        fd
  in
  let fail msg =
    disconnect c;
    raise (Transport_error msg)
  in
  match
    Wire.write_frame fd
      (Protocol.request_to_json
         (Protocol.Ask_many { bench; qs; deadline_ms; stream = true }))
  with
  | Error e -> fail (Wire.error_to_string e)
  | Ok () ->
      let items = ref [] in
      let cancel_sent = ref false in
      let rec read () =
        match Wire.read_frame fd with
        | Error e -> fail (Wire.error_to_string e)
        | Ok j -> (
            match Protocol.open_envelope j with
            | Error e ->
                (* a mid-stream abort loses framing; a pre-stream
                   rejection leaves the connection usable *)
                if !items <> [] then disconnect c;
                Error e
            | Ok j -> (
                match Protocol.stream_frame_of_json j with
                | Protocol.Sheartbeat -> read ()
                | Protocol.Sitem (i, a) ->
                    items := (i, a) :: !items;
                    (match on_item with
                    | Some f when not !cancel_sent -> (
                        match f i a with
                        | `Cancel ->
                            cancel_sent := true;
                            ignore
                              (Wire.write_frame fd
                                 (Protocol.request_to_json Protocol.Cancel))
                        | `Continue -> ())
                    | _ -> ());
                    read ()
                | Protocol.Send s ->
                    let answers =
                      List.sort
                        (fun (i, _) (k, _) -> Int.compare i k)
                        (List.rev !items)
                      |> List.map snd
                    in
                    Ok (answers, s)
                | Protocol.Snot_stream ->
                    fail "expected a stream frame in the reply"
                | exception Json.Parse_error msg -> fail msg))
        | exception Json.Parse_error msg -> fail msg
      in
      read ()

(** Ask a batch as a {e stream}: the daemon frames each answer as it
    resolves, and this call reassembles them in query order. [on_item]
    observes each item as it arrives and may return [`Cancel] to stop the
    stream mid-flight (the summary then has [st_cancelled] set and the
    answer list holds only what arrived). Admission rejections and
    retryable aborts (e.g. [stream_overrun]) are retried like {!rpc};
    answers already received are discarded on retry, so the result is
    always one coherent stream. *)
let ask_stream ?deadline_ms ?on_item (c : t) ~(bench : string)
    (qs : Protocol.wire_query list) :
    Protocol.answer list * Protocol.stream_summary =
  if c.closed then raise (Transport_error "client closed");
  let rec go attempt =
    let retry_or ~hint_ms (fail : unit -> 'a) =
      if attempt + 1 >= c.retry.attempts then fail ()
      else begin
        Thread.delay (backoff_s c ~attempt ~hint_ms);
        go (attempt + 1)
      end
    in
    match stream_exchange c ~bench ~qs ~deadline_ms ~on_item with
    | Ok r -> r
    | Error e when e.Protocol.retryable ->
        retry_or ~hint_ms:e.Protocol.retry_after_ms (fun () ->
            raise (Server_error e))
    | Error e -> raise (Server_error e)
    | exception Transport_error msg ->
        retry_or ~hint_ms:None (fun () -> raise (Transport_error msg))
  in
  go 0

(** Ask a batch; the i-th answer matches the i-th query. With
    [~stream:true] the reply arrives incrementally and is reassembled —
    byte-identical answers, lower time-to-first-answer. *)
let ask_many ?deadline_ms ?(stream = false) (c : t) ~(bench : string)
    (qs : Protocol.wire_query list) : Protocol.answer list =
  if stream then fst (ask_stream ?deadline_ms c ~bench qs)
  else
    let j =
      rpc c (Protocol.Ask_many { bench; qs; deadline_ms; stream = false })
    in
    match Json.member "answers" j with
    | Some (Json.List l) -> List.map Protocol.answer_of_json l
    | _ -> raise (Transport_error "response missing \"answers\"")

(** The benchmark's PDG workload: (loop, weight, queries) per hot loop. *)
let queries (c : t) ~(bench : string) :
    (string * float * Protocol.wire_query list) list =
  let j = rpc c (Protocol.Queries { bench }) in
  let w = Json.mem_or "workload" ~default:(Json.Obj []) j in
  List.map
    (fun lj ->
      ( Json.string_member "loop" lj,
        Json.to_float_exn (Json.mem_or "weight" ~default:(Json.Float 0.0) lj),
        List.map Protocol.query_of_json
          (Json.to_list_exn (Json.mem_or "queries" ~default:(Json.List []) lj))
      ))
    (Json.to_list_exn (Json.mem_or "loops" ~default:(Json.List []) w))

(** Commit an edit script to the daemon's resident program; the daemon
    invalidates affected cache entries and re-analyzes incrementally
    without restarting. Returns the invalidation report. *)
let edit (c : t) ~(bench : string) (edits : Protocol.wire_edit list) :
    Protocol.edit_report =
  let j = rpc c (Protocol.Edit { bench; edits }) in
  match Json.member "edit" j with
  | Some r -> Protocol.edit_report_of_json r
  | None -> raise (Transport_error "response missing \"edit\"")

(** Submit a user program for lint-gated registration. On success the
    program is queryable under its id like any suite benchmark; a lint
    rejection surfaces as {!Server_error} whose [err.diags] carry the
    full diagnostic report. *)
let submit (c : t) (prog : Protocol.wire_program) : Protocol.submit_report =
  let j = rpc c (Protocol.Submit { prog }) in
  match Json.member "submitted" j with
  | Some r -> Protocol.submit_report_of_json r
  | None -> raise (Transport_error "response missing \"submitted\"")

(** The benchmark's Figure 8 row, evaluated server-side. *)
let report (c : t) ~(bench : string) : Scaf_report.Experiments.fig8_row =
  let j = rpc c (Protocol.Report { bench }) in
  match Json.member "row" j with
  | Some r -> Protocol.fig8_row_of_json r
  | None -> raise (Transport_error "response missing \"row\"")

(** The daemon's health snapshot, as raw JSON. *)
let stats (c : t) : Json.t = rpc c Protocol.Stats

(** Ask the daemon to shut down (acknowledged before teardown). *)
let shutdown (c : t) : unit = ignore (rpc c Protocol.Shutdown)
