(** The daemon's wire vocabulary: request and response values and their
    JSON codecs, shared by server and client so both sides round-trip
    through the same code (and so tests can exercise the codec without a
    socket).

    Every response is an object with an ["ok"] boolean. Failures carry a
    structured {!err} whose [retryable] flag tells a client whether backing
    off and retrying can help (admission rejection, shutting down) or
    cannot (unknown benchmark, malformed request). *)

(** Protocol version. Every request envelope carries it as ["v"]; the
    daemon refuses a mismatched (or missing) version with the structured,
    non-retryable [version_mismatch] error instead of a parse failure —
    an old client gets told {e what} is wrong, not just "bad request".

    History: v1 — PR 5's original request/response protocol (no version
    field); v2 — TCP transport, streaming [ask_many] replies, the
    [cancel] op, and the version field itself. *)
let version = 2

(* ------------------------------------------------------------------ *)
(* Queries on the wire                                                 *)
(* ------------------------------------------------------------------ *)

(** A PDG dependence query in wire form — exactly the client workload of
    [Scaf_pdg.Pdg]: may [src] (positioned cross- or intra-iteration) touch
    the footprint of [dst] within hot loop [loop]? *)
type wire_query = { wloop : string; wsrc : int; wdst : int; wcross : bool }

let query_to_json (q : wire_query) : Json.t =
  Json.Obj
    [
      ("loop", Json.String q.wloop);
      ("src", Json.Int q.wsrc);
      ("dst", Json.Int q.wdst);
      ("cross", Json.Bool q.wcross);
    ]

let query_of_json (j : Json.t) : wire_query =
  {
    wloop = Json.string_member "loop" j;
    wsrc = Json.int_member "src" j;
    wdst = Json.int_member "dst" j;
    wcross = Json.to_bool_exn (Json.mem_or "cross" ~default:(Json.Bool false) j);
  }

let to_core_query (q : wire_query) : Scaf.Query.t =
  Scaf_pdg.Pdg.to_query q.wloop
    { Scaf_pdg.Pdg.src = q.wsrc; dst = q.wdst; cross = q.wcross }

(* ------------------------------------------------------------------ *)
(* Diagnostics on the wire                                             *)
(* ------------------------------------------------------------------ *)

(** Lint diagnostics serialize whole — a rejected submission or edit
    carries its full report, so the client can render exactly what
    [scaf_eval lint] would have printed locally. *)
let diagnostic_to_json (d : Scaf_lint.Diagnostic.t) : Json.t =
  let open Scaf_lint.Diagnostic in
  let opt name = function
    | None -> []
    | Some s -> [ (name, Json.String s) ]
  in
  Json.Obj
    ([
       ("severity", Json.String (severity_name d.severity));
       ("code", Json.String d.code);
       ("pass", Json.String d.pass);
     ]
    @ opt "func" d.span.func @ opt "block" d.span.block
    @ opt "loop" d.span.loop
    @ (match d.span.instr with
      | None -> []
      | Some i -> [ ("instr", Json.Int i) ])
    @ [ ("msg", Json.String d.message) ])

let diagnostic_of_json (j : Json.t) : Scaf_lint.Diagnostic.t =
  let open Scaf_lint.Diagnostic in
  let severity =
    match severity_of_name (Json.string_member "severity" j) with
    | s -> s
    | exception Invalid_argument m -> raise (Json.Parse_error m)
  in
  {
    code = Json.string_member "code" j;
    severity;
    pass = Json.string_member "pass" j;
    span =
      {
        func = Json.string_member_opt "func" j;
        block = Json.string_member_opt "block" j;
        loop = Json.string_member_opt "loop" j;
        instr = Option.map Json.to_int_exn (Json.member "instr" j);
      };
    message = Json.string_member "msg" j;
  }

(* ------------------------------------------------------------------ *)
(* Programs on the wire                                                *)
(* ------------------------------------------------------------------ *)

(** A user-submitted program: MIR source plus optional training/reference
    inputs (defaulted server-side like any suite program). Inputs travel
    as decimal strings so int64 values survive the JSON float funnel. *)
type wire_program = {
  wp_id : string;  (** session-unique name the program registers under *)
  wp_source : string;  (** MIR text, [Scaf_ir.Parser] syntax *)
  wp_train : int64 array list option;
  wp_ref : int64 array option;
}

let int64s_to_json (a : int64 array) : Json.t =
  Json.List
    (List.map (fun v -> Json.String (Int64.to_string v)) (Array.to_list a))

let int64s_of_json (j : Json.t) : int64 array =
  Array.of_list
    (List.map
       (fun x ->
         match Int64.of_string_opt (Json.to_string_exn x) with
         | Some v -> v
         | None -> raise (Json.Parse_error "input: expected an int64 string"))
       (Json.to_list_exn j))

let program_to_json (p : wire_program) : Json.t =
  Json.Obj
    ([ ("id", Json.String p.wp_id); ("source", Json.String p.wp_source) ]
    @ (match p.wp_train with
      | None -> []
      | Some tr -> [ ("train", Json.List (List.map int64s_to_json tr)) ])
    @
    match p.wp_ref with
    | None -> []
    | Some r -> [ ("ref", int64s_to_json r) ])

let program_of_json (j : Json.t) : wire_program =
  {
    wp_id = Json.string_member "id" j;
    wp_source = Json.string_member "source" j;
    wp_train =
      Option.map
        (fun tj -> List.map int64s_of_json (Json.to_list_exn tj))
        (Json.member "train" j);
    wp_ref = Option.map int64s_of_json (Json.member "ref" j);
  }

(** What a successful submission registered: the static lint summary the
    admission decision was based on. *)
type submit_report = {
  s_id : string;
  s_loops : (string * int) list;  (** lid → statically estimated queries *)
  s_est_queries : int;  (** whole-program estimate (admission metric) *)
  s_warnings : int;  (** lint warnings (submission still accepted) *)
}

let submit_report_to_json (r : submit_report) : Json.t =
  Json.Obj
    [
      ("id", Json.String r.s_id);
      ( "loops",
        Json.List
          (List.map
             (fun (lid, est) ->
               Json.Obj [ ("loop", Json.String lid); ("est", Json.Int est) ])
             r.s_loops) );
      ("est_queries", Json.Int r.s_est_queries);
      ("warnings", Json.Int r.s_warnings);
    ]

let submit_report_of_json (j : Json.t) : submit_report =
  {
    s_id = Json.string_member "id" j;
    s_loops =
      List.map
        (fun lj -> (Json.string_member "loop" lj, Json.int_member "est" lj))
        (Json.to_list_exn (Json.mem_or "loops" ~default:(Json.List []) j));
    s_est_queries = Json.int_member "est_queries" j;
    s_warnings = Json.int_member "warnings" j;
  }

(* ------------------------------------------------------------------ *)
(* Edits on the wire                                                   *)
(* ------------------------------------------------------------------ *)

(** A structured program edit in wire form — the
    {!Scaf_suite.Edit.op} vocabulary plus [WAuto], the server-side
    scripted single-loop edit (the differential/CI workload's "small
    change to a big program"). *)
type wire_edit =
  | WInsert of { fname : string; block : string; at : int; text : string }
  | WDelete of { id : int }
  | WReplace of { lid : string; block : string; body : string }
  | WAuto

let edit_to_json (e : wire_edit) : Json.t =
  match e with
  | WInsert { fname; block; at; text } ->
      Json.Obj
        [
          ("kind", Json.String "insert");
          ("fname", Json.String fname);
          ("block", Json.String block);
          ("at", Json.Int at);
          ("text", Json.String text);
        ]
  | WDelete { id } ->
      Json.Obj [ ("kind", Json.String "delete"); ("id", Json.Int id) ]
  | WReplace { lid; block; body } ->
      Json.Obj
        [
          ("kind", Json.String "replace");
          ("lid", Json.String lid);
          ("block", Json.String block);
          ("body", Json.String body);
        ]
  | WAuto -> Json.Obj [ ("kind", Json.String "auto") ]

let edit_of_json (j : Json.t) : wire_edit =
  match Json.string_member "kind" j with
  | "insert" ->
      WInsert
        {
          fname = Json.string_member "fname" j;
          block = Json.string_member "block" j;
          at = Json.int_member "at" j;
          text = Json.string_member "text" j;
        }
  | "delete" -> WDelete { id = Json.int_member "id" j }
  | "replace" ->
      WReplace
        {
          lid = Json.string_member "lid" j;
          block = Json.string_member "block" j;
          body = Json.string_member "body" j;
        }
  | "auto" -> WAuto
  | k -> raise (Json.Parse_error (Printf.sprintf "unknown edit kind %S" k))

(** What an applied edit did: the new program epoch, the edit's reach, and
    the invalidation outcome over the benchmark's warm cache. *)
type edit_report = {
  e_epoch : int;
  e_touched_funcs : string list;
  e_touched_loops : string list;
  e_nodes : int;  (** provenance-graph nodes examined *)
  e_dirty : int;  (** nodes judged dirty *)
  e_evicted : int;  (** cache entries dropped *)
  e_retained : int;  (** cache entries carried to the new epoch *)
}

let edit_report_of (d : Scaf_suite.Edit.diff)
    (s : Scaf_incremental.Invalidate.stats) : edit_report =
  {
    e_epoch = d.Scaf_suite.Edit.epoch;
    e_touched_funcs = d.Scaf_suite.Edit.touched_funcs;
    e_touched_loops = d.Scaf_suite.Edit.touched_loops;
    e_nodes = s.Scaf_incremental.Invalidate.nodes;
    e_dirty = s.Scaf_incremental.Invalidate.dirty;
    e_evicted = s.Scaf_incremental.Invalidate.evicted;
    e_retained = s.Scaf_incremental.Invalidate.retained;
  }

let edit_report_to_json (r : edit_report) : Json.t =
  let strs l = Json.List (List.map (fun s -> Json.String s) l) in
  Json.Obj
    [
      ("epoch", Json.Int r.e_epoch);
      ("touched_funcs", strs r.e_touched_funcs);
      ("touched_loops", strs r.e_touched_loops);
      ("nodes", Json.Int r.e_nodes);
      ("dirty", Json.Int r.e_dirty);
      ("evicted", Json.Int r.e_evicted);
      ("retained", Json.Int r.e_retained);
    ]

let edit_report_of_json (j : Json.t) : edit_report =
  let strs name =
    List.map Json.to_string_exn
      (Json.to_list_exn (Json.mem_or name ~default:(Json.List []) j))
  in
  {
    e_epoch = Json.int_member "epoch" j;
    e_touched_funcs = strs "touched_funcs";
    e_touched_loops = strs "touched_loops";
    e_nodes = Json.int_member "nodes" j;
    e_dirty = Json.int_member "dirty" j;
    e_evicted = Json.int_member "evicted" j;
    e_retained = Json.int_member "retained" j;
  }

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Hello of { client : string }
  | Ping
  | Ask of { bench : string; q : wire_query; deadline_ms : float option }
  | Ask_many of {
      bench : string;
      qs : wire_query list;
      deadline_ms : float option;
      stream : bool;
          (** [true]: the daemon frames each answer as it completes
              (ordered, index-tagged, closed by a summary frame) instead
              of one batched reply; the client may cancel mid-stream *)
    }
  | Cancel
      (** abandon the connection's in-flight streaming reply; outside a
          stream it is a harmless acknowledged no-op *)
  | Queries of { bench : string }  (** the PDG workload of a benchmark *)
  | Report of { bench : string }  (** the benchmark's Figure 8 row *)
  | Edit of { bench : string; edits : wire_edit list }
      (** commit an edit script to the resident program and invalidate —
          the daemon re-analyzes incrementally, it never restarts *)
  | Submit of { prog : wire_program }
      (** lint-gate and register a user program; on success it is
          queryable under [prog.wp_id] like any suite benchmark *)
  | Stats
  | Shutdown

let request_to_json (r : request) : Json.t =
  (* every request envelope leads with the protocol version *)
  let obj op rest =
    Json.Obj (("v", Json.Int version) :: ("op", Json.String op) :: rest)
  in
  let deadline = function
    | None -> []
    | Some ms -> [ ("deadline_ms", Json.float ms) ]
  in
  match r with
  | Hello { client } -> obj "hello" [ ("client", Json.String client) ]
  | Ping -> obj "ping" []
  | Cancel -> obj "cancel" []
  | Ask { bench; q; deadline_ms } ->
      obj "ask"
        ([ ("bench", Json.String bench); ("query", query_to_json q) ]
        @ deadline deadline_ms)
  | Ask_many { bench; qs; deadline_ms; stream } ->
      obj "ask_many"
        ([
           ("bench", Json.String bench);
           ("queries", Json.List (List.map query_to_json qs));
         ]
        @ (if stream then [ ("stream", Json.Bool true) ] else [])
        @ deadline deadline_ms)
  | Queries { bench } -> obj "queries" [ ("bench", Json.String bench) ]
  | Report { bench } -> obj "report" [ ("bench", Json.String bench) ]
  | Edit { bench; edits } ->
      obj "edit"
        [
          ("bench", Json.String bench);
          ("edits", Json.List (List.map edit_to_json edits));
        ]
  | Submit { prog } -> obj "submit" [ ("program", program_to_json prog) ]
  | Stats -> obj "stats" []
  | Shutdown -> obj "shutdown" []

(** Raises [Json.Parse_error] on anything that is not a well-formed
    request — the daemon turns that into a non-retryable [bad_request]. *)
let request_of_json (j : Json.t) : request =
  let deadline_ms = Json.float_member_opt "deadline_ms" j in
  match Json.string_member "op" j with
  | "hello" ->
      Hello
        {
          client =
            Json.to_string_exn
              (Json.mem_or "client" ~default:(Json.String "?") j);
        }
  | "ping" -> Ping
  | "cancel" -> Cancel
  | "ask" ->
      let q =
        match Json.member "query" j with
        | Some qj -> query_of_json qj
        | None -> raise (Json.Parse_error "ask: missing field \"query\"")
      in
      Ask { bench = Json.string_member "bench" j; q; deadline_ms }
  | "ask_many" ->
      let qs =
        match Json.member "queries" j with
        | Some qj -> List.map query_of_json (Json.to_list_exn qj)
        | None -> raise (Json.Parse_error "ask_many: missing field \"queries\"")
      in
      Ask_many
        {
          bench = Json.string_member "bench" j;
          qs;
          deadline_ms;
          stream =
            Json.to_bool_exn
              (Json.mem_or "stream" ~default:(Json.Bool false) j);
        }
  | "queries" -> Queries { bench = Json.string_member "bench" j }
  | "report" -> Report { bench = Json.string_member "bench" j }
  | "edit" ->
      let edits =
        match Json.member "edits" j with
        | Some ej -> List.map edit_of_json (Json.to_list_exn ej)
        | None -> raise (Json.Parse_error "edit: missing field \"edits\"")
      in
      Edit { bench = Json.string_member "bench" j; edits }
  | "submit" -> (
      match Json.member "program" j with
      | Some pj -> Submit { prog = program_of_json pj }
      | None -> raise (Json.Parse_error "submit: missing field \"program\""))
  | "stats" -> Stats
  | "shutdown" -> Shutdown
  | op -> raise (Json.Parse_error (Printf.sprintf "unknown op %S" op))

(** The protocol version a raw request envelope declares; [None] when the
    field is absent (a pre-v2 client) or not an integer. Checked by the
    daemon {e before} the op is parsed, so a vocabulary drift between
    versions surfaces as [version_mismatch], never as a confusing parse
    error. *)
let request_version (j : Json.t) : int option =
  match Json.member "v" j with Some (Json.Int n) -> Some n | _ -> None

(* ------------------------------------------------------------------ *)
(* Answers                                                             *)
(* ------------------------------------------------------------------ *)

(** One resolved dependence query. [a_degraded] is the load-shedding /
    deadline tag when the answer is {e not} the full-collaboration one
    ([None] means full fidelity — byte-identical to batch evaluation);
    degraded answers are always sound, merely conservative. *)
type answer = {
  a_result : string;  (** the analysis result, e.g. ["NoModRef"] *)
  a_nodep : bool;  (** dependence disproven at an affordable cost *)
  a_cost : float;  (** validation cost of the cheapest option *)
  a_options : int;  (** size of the assertion-option disjunction *)
  a_unconditional : bool;  (** some option is literally assertion-free *)
  a_provenance : string list;  (** contributing modules *)
  a_degraded : string option;
  a_coalesced : bool;  (** shared an in-flight evaluation with a peer *)
}

let answer_of_response ?(degraded : string option) ?(coalesced = false)
    (resp : Scaf.Response.t) : answer =
  let opts = resp.Scaf.Response.options in
  {
    a_result = Fmt.str "%a" Scaf.Aresult.pp resp.Scaf.Response.result;
    a_nodep = Scaf_pdg.Pdg.affordable_nodep resp;
    a_cost = Scaf.Response.Options.cheapest_cost opts;
    a_options = Scaf.Response.Options.count opts;
    a_unconditional = Scaf.Response.Options.has_unconditional opts;
    a_provenance =
      Scaf.Response.Sset.elements resp.Scaf.Response.provenance;
    a_degraded = degraded;
    a_coalesced = coalesced;
  }

let answer_to_json (a : answer) : Json.t =
  Json.Obj
    [
      ("result", Json.String a.a_result);
      ("nodep", Json.Bool a.a_nodep);
      ("cost", Json.float a.a_cost);
      ("options", Json.Int a.a_options);
      ("unconditional", Json.Bool a.a_unconditional);
      ("provenance", Json.List (List.map (fun s -> Json.String s) a.a_provenance));
      ( "degraded",
        match a.a_degraded with None -> Json.Null | Some s -> Json.String s );
      ("coalesced", Json.Bool a.a_coalesced);
    ]

let answer_of_json (j : Json.t) : answer =
  {
    a_result = Json.string_member "result" j;
    a_nodep = Json.to_bool_exn (Json.mem_or "nodep" ~default:(Json.Bool false) j);
    a_cost =
      Json.to_float_exn (Json.mem_or "cost" ~default:(Json.Float infinity) j);
    a_options = Json.int_member "options" j;
    a_unconditional =
      Json.to_bool_exn
        (Json.mem_or "unconditional" ~default:(Json.Bool false) j);
    a_provenance =
      List.map Json.to_string_exn
        (Json.to_list_exn (Json.mem_or "provenance" ~default:(Json.List []) j));
    a_degraded = Json.string_member_opt "degraded" j;
    a_coalesced =
      Json.to_bool_exn (Json.mem_or "coalesced" ~default:(Json.Bool false) j);
  }

(** The canonical one-line rendering of an answer's {e analysis} content —
    result, nodep verdict, cheapest cost ([%.17g], bit-exact across the
    wire), option count, unconditionality. Transport annotations
    (provenance, degradation, coalescing) are deliberately excluded, so a
    full-fidelity replayed answer renders byte-identically to the same
    query evaluated in-process. *)
let render_answer (a : answer) : string =
  (* costs pass through [Json.float]'s nan/inf clamping before printing,
     so the rendering of a local answer matches one that crossed the wire *)
  let cost =
    match Json.float a.a_cost with
    | Json.Float f -> Printf.sprintf "%.17g" f
    | _ -> "nan"
  in
  Printf.sprintf "%s nodep=%b cost=%s options=%d unconditional=%b" a.a_result
    a.a_nodep cost a.a_options a.a_unconditional

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

type err = {
  code : string;
  msg : string;
  retryable : bool;
  retry_after_ms : float option;
      (** server-suggested backoff, on admission rejection *)
  diags : Scaf_lint.Diagnostic.t list;
      (** full lint report, on a rejected submission or edit *)
}

let err_to_json (e : err) : Json.t =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          ([
             ("code", Json.String e.code);
             ("msg", Json.String e.msg);
             ("retryable", Json.Bool e.retryable);
           ]
          @ (match e.retry_after_ms with
            | None -> []
            | Some ms -> [ ("retry_after_ms", Json.float ms) ])
          @
          match e.diags with
          | [] -> []
          | ds ->
              [ ("diagnostics", Json.List (List.map diagnostic_to_json ds)) ])
      );
    ]

let bad_request msg =
  {
    code = "bad_request";
    msg;
    retryable = false;
    retry_after_ms = None;
    diags = [];
  }

let unknown_bench bench =
  {
    code = "unknown_bench";
    msg = Printf.sprintf "no benchmark named %S" bench;
    retryable = false;
    retry_after_ms = None;
    diags = [];
  }

let overloaded ~retry_after_ms =
  {
    code = "overloaded";
    msg = "admission queue full";
    retryable = true;
    retry_after_ms = Some retry_after_ms;
    diags = [];
  }

let shutting_down =
  {
    code = "shutting_down";
    msg = "server is shutting down";
    retryable = true;
    retry_after_ms = Some 1000.0;
    diags = [];
  }

let internal msg =
  {
    code = "internal";
    msg;
    retryable = false;
    retry_after_ms = None;
    diags = [];
  }

(** A client speaking the wrong protocol version: non-retryable (retrying
    the same bytes cannot help) with a message naming both versions and
    the fix. *)
let version_mismatch ~(got : int option) =
  {
    code = "version_mismatch";
    msg =
      Printf.sprintf
        "client speaks protocol %s but this daemon speaks %d; rebuild the \
         client and daemon from the same checkout (scaf_eval and the \
         daemon must match)"
        (match got with None -> "v1 (no version field)" | Some v -> string_of_int v)
        version;
    retryable = false;
    retry_after_ms = None;
    diags = [];
  }

(** The stream's terminal summary frame was never seen: the per-connection
    outbox overflowed its grace period with the consumer stuck, and the
    daemon chose disconnection over an unbounded buffer. *)
let stream_overrun ~retry_after_ms =
  {
    code = "stream_overrun";
    msg =
      "stream consumer too slow: per-connection outbox exhausted its \
       backpressure grace; reconnect and retry";
    retryable = true;
    retry_after_ms = Some retry_after_ms;
    diags = [];
  }

(** A submission that failed the lint gate; not retryable as-is (fix the
    program), and the whole report rides along. *)
let lint_rejected (diags : Scaf_lint.Diagnostic.t list) =
  {
    code = "lint_rejected";
    msg =
      Printf.sprintf "program rejected: %d lint error(s)"
        (List.length (Scaf_lint.Diagnostic.errors diags));
    retryable = false;
    retry_after_ms = None;
    diags;
  }

(** An edit script the resident program rejected (bad target, parse error
    in spliced text, or the edited program no longer lints clean); the
    program stays at its prior epoch. *)
let edit_rejected (diags : Scaf_lint.Diagnostic.t list) =
  {
    code = "edit_rejected";
    msg =
      Printf.sprintf "edit rejected: %d error(s); program unchanged"
        (List.length (Scaf_lint.Diagnostic.errors diags));
    retryable = false;
    retry_after_ms = None;
    diags;
  }

(* ------------------------------------------------------------------ *)
(* Response envelopes                                                  *)
(* ------------------------------------------------------------------ *)

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

(** Parse a response envelope into [Ok payload] / [Error err]. Raises
    [Json.Parse_error] when it is not an envelope at all. *)
let open_envelope (j : Json.t) : (Json.t, err) result =
  match Json.member "ok" j with
  | Some (Json.Bool true) -> Ok j
  | Some (Json.Bool false) ->
      let e = Json.mem_or "error" ~default:(Json.Obj []) j in
      Error
        {
          code =
            Json.to_string_exn
              (Json.mem_or "code" ~default:(Json.String "unknown") e);
          msg = Json.to_string_exn (Json.mem_or "msg" ~default:(Json.String "") e);
          retryable =
            Json.to_bool_exn
              (Json.mem_or "retryable" ~default:(Json.Bool false) e);
          retry_after_ms = Json.float_member_opt "retry_after_ms" e;
          diags =
            List.map diagnostic_of_json
              (Json.to_list_exn
                 (Json.mem_or "diagnostics" ~default:(Json.List []) e));
        }
  | _ -> raise (Json.Parse_error "response has no \"ok\" field")

(* ------------------------------------------------------------------ *)
(* Streaming reply frames                                              *)
(* ------------------------------------------------------------------ *)

(** A streaming [ask_many] reply is a sequence of frames, each a normal
    [ok] envelope distinguished by its ["stream"] tag:

    - {e item}: one resolved query, tagged with its index in the request's
      query list (items always arrive in index order);
    - {e hb}: a keepalive heartbeat — emitted while the next answer is
      still cooking and on otherwise-idle connections, carrying no data;
    - {e end}: the terminal summary (total items, backpressure sheds,
      whether the stream was cancelled). A stream that ends in an error
      envelope instead was aborted.

    A non-streaming client never sees these: the tag only appears on
    frames of a reply the client explicitly requested as a stream, plus
    idle heartbeats (which every client skips). *)

type stream_summary = {
  st_count : int;  (** items framed before the stream closed *)
  st_shed : int;  (** answers degraded by outbox backpressure *)
  st_cancelled : bool;  (** closed early by a client [cancel] *)
}

let stream_item_to_json (i : int) (a : answer) : Json.t =
  ok
    [
      ("stream", Json.String "item");
      ("i", Json.Int i);
      ("answer", answer_to_json a);
    ]

let stream_heartbeat_json : Json.t = ok [ ("stream", Json.String "hb") ]

let stream_end_to_json (s : stream_summary) : Json.t =
  ok
    [
      ("stream", Json.String "end");
      ("count", Json.Int s.st_count);
      ("shed", Json.Int s.st_shed);
      ("cancelled", Json.Bool s.st_cancelled);
    ]

type stream_frame =
  | Sitem of int * answer
  | Sheartbeat
  | Send of stream_summary
  | Snot_stream  (** an ordinary (non-stream-tagged) reply frame *)

(** Classify one frame of a streaming reply. Raises [Json.Parse_error] on
    a malformed stream-tagged frame. *)
let stream_frame_of_json (j : Json.t) : stream_frame =
  match Json.member "stream" j with
  | None -> Snot_stream
  | Some (Json.String "hb") -> Sheartbeat
  | Some (Json.String "item") -> (
      match Json.member "answer" j with
      | Some a -> Sitem (Json.int_member "i" j, answer_of_json a)
      | None -> raise (Json.Parse_error "stream item without \"answer\""))
  | Some (Json.String "end") ->
      Send
        {
          st_count = Json.int_member "count" j;
          st_shed = Json.int_member "shed" j;
          st_cancelled =
            Json.to_bool_exn
              (Json.mem_or "cancelled" ~default:(Json.Bool false) j);
        }
  | Some t ->
      raise
        (Json.Parse_error
           (Printf.sprintf "unknown stream frame tag %s" (Json.to_string t)))

(** Whether a reply frame is the idle-connection heartbeat every client
    read path must skip transparently. *)
let is_heartbeat (j : Json.t) : bool =
  match Json.member "stream" j with
  | Some (Json.String "hb") -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Figure 8 rows on the wire                                           *)
(* ------------------------------------------------------------------ *)

(** The raw numbers behind one Figure 8 row (see
    [Scaf_report.Experiments.fig8_row]): weighted %NoDep per scheme, as
    binary64. [Json.float] prints them with [%.17g], so a row survives the
    wire bit-exactly and the client-side rendering of a replayed Figure 8
    is byte-identical to the batch one. *)
let fig8_row_to_json (r : Scaf_report.Experiments.fig8_row) : Json.t =
  Json.Obj
    [
      ("bench", Json.String r.Scaf_report.Experiments.row_bench);
      ("caf", Json.float r.Scaf_report.Experiments.row_caf);
      ("confluence", Json.float r.Scaf_report.Experiments.row_confluence);
      ("scaf", Json.float r.Scaf_report.Experiments.row_scaf);
      ("memspec", Json.float r.Scaf_report.Experiments.row_memspec);
      ("observed", Json.float r.Scaf_report.Experiments.row_observed);
    ]

let fig8_row_of_json (j : Json.t) : Scaf_report.Experiments.fig8_row =
  let f name =
    match Json.float_member_opt name j with
    | Some v -> v
    | None -> raise (Json.Parse_error ("fig8 row: missing field " ^ name))
  in
  {
    Scaf_report.Experiments.row_bench = Json.string_member "bench" j;
    row_caf = f "caf";
    row_confluence = f "confluence";
    row_scaf = f "scaf";
    row_memspec = f "memspec";
    row_observed = f "observed";
  }
