(** The crash-durable submission journal.

    PR 7 made user programs first-class over the wire, but they lived only
    in the daemon's heap: [kill -9] silently lost every registered
    program and every committed edit. This journal makes the {e accepted}
    mutations durable: once the daemon has admitted a [submit] or [edit],
    the operation is appended here and fsync'd {e before} the success
    reply leaves the socket — so any mutation a client was told succeeded
    survives an unclean death and is replayed through the same
    lint/cost-admission pipeline on the next start.

    On-disk format (one file, append-only):

    {v
    record  := length(4, BE) crc32(4, BE, over payload) payload
    payload := one JSON entry ({"k":"submit",...} | {"k":"edit",...})
    v}

    Recovery contract: {!open_and_replay} scans records from the start;
    the first record that cannot be read whole — short header, short
    payload, CRC mismatch, malformed JSON — marks the {e torn tail}, and
    the file is truncated back to the last whole record. A crash halfway
    through an append therefore costs at most the operation that never
    got acknowledged, never the journal. Entries are replayed strictly in
    append order, so an edit to a journaled submission lands on the
    re-registered program.

    The journal is deliberately {e not} a general write-ahead log: queries
    are stateless and benchmarks reload from the suite, so only the two
    state-mutating ops are recorded. *)

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected), table-driven                        *)
(* ------------------------------------------------------------------ *)

let crc_table : int32 array =
  let poly = 0xEDB88320l in
  Array.init 256 (fun n ->
      let c = ref (Int32.of_int n) in
      for _ = 0 to 7 do
        c :=
          if Int32.logand !c 1l <> 0l then
            Int32.logxor poly (Int32.shift_right_logical !c 1)
          else Int32.shift_right_logical !c 1
      done;
      !c)

let crc32 (s : string) : int32 =
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor crc_table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Entries                                                             *)
(* ------------------------------------------------------------------ *)

type entry =
  | Submit of Protocol.wire_program
  | Edit of { bench : string; edits : Protocol.wire_edit list }

let entry_to_json (e : entry) : Json.t =
  match e with
  | Submit p ->
      Json.Obj
        [ ("k", Json.String "submit"); ("program", Protocol.program_to_json p) ]
  | Edit { bench; edits } ->
      Json.Obj
        [
          ("k", Json.String "edit");
          ("bench", Json.String bench);
          ("edits", Json.List (List.map Protocol.edit_to_json edits));
        ]

let entry_of_json (j : Json.t) : entry =
  match Json.string_member "k" j with
  | "submit" -> (
      match Json.member "program" j with
      | Some p -> Submit (Protocol.program_of_json p)
      | None -> raise (Json.Parse_error "journal submit without program"))
  | "edit" ->
      Edit
        {
          bench = Json.string_member "bench" j;
          edits =
            List.map Protocol.edit_of_json
              (Json.to_list_exn
                 (Json.mem_or "edits" ~default:(Json.List []) j));
        }
  | k -> raise (Json.Parse_error (Printf.sprintf "unknown journal entry %S" k))

(* ------------------------------------------------------------------ *)
(* The journal handle                                                  *)
(* ------------------------------------------------------------------ *)

type t = {
  path : string;
  fd : Unix.file_descr;
  m : Mutex.t;  (** serializes appends; replay happens before any append *)
  mutable entries : int;  (** whole records currently on disk *)
  mutable closed : bool;
}

type recovery = {
  replayed : int;  (** whole entries recovered from the file *)
  truncated_bytes : int;  (** torn tail dropped by the open *)
}

let be32 (n : int) : string =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.to_string b

let read_be32 (s : string) (off : int) : int =
  let b i = Char.code s.[off + i] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

(** Hard ceiling on one journal record's payload — matches the wire
    layer's frame bound, since every journaled entry arrived as a frame. *)
let max_record = Wire.default_max_len

let default_file = "submits.journal"

let read_whole (path : string) : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Scan [data] for whole records; return (entries in order, byte offset of
   the first torn/corrupt record). Anything unreadable is the tail by
   definition — the file is append-only and fsync'd in record order. *)
let scan (data : string) : entry list * int =
  let len = String.length data in
  let entries = ref [] in
  let pos = ref 0 in
  let torn = ref None in
  while !torn = None && !pos < len do
    if len - !pos < 8 then torn := Some !pos
    else
      let n = read_be32 data !pos in
      let crc_stored = read_be32 data (!pos + 4) in
      if n < 0 || n > max_record || len - !pos - 8 < n then torn := Some !pos
      else
        let payload = String.sub data (!pos + 8) n in
        if Int32.to_int (crc32 payload) land 0xFFFFFFFF <> crc_stored then
          torn := Some !pos
        else
          match entry_of_json (Json.of_string payload) with
          | e ->
              entries := e :: !entries;
              pos := !pos + 8 + n
          | exception Json.Parse_error _ -> torn := Some !pos
  done;
  (List.rev !entries, match !torn with Some p -> p | None -> len)

(** Open (creating if absent) the journal at [dir ^/ submits.journal],
    recover every whole record, truncate any torn tail in place, and
    return the handle, the recovered entries in append order, and the
    recovery stats. *)
let open_and_replay ~(dir : string) : t * entry list * recovery =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir default_file in
  let entries, keep, dropped =
    if Sys.file_exists path then begin
      let data = read_whole path in
      let entries, keep = scan data in
      (entries, keep, String.length data - keep)
    end
    else ([], 0, 0)
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  if dropped > 0 then begin
    Unix.ftruncate fd keep;
    Unix.fsync fd
  end;
  ignore (Unix.lseek fd keep Unix.SEEK_SET);
  ( {
      path;
      fd;
      m = Mutex.create ();
      entries = List.length entries;
      closed = false;
    },
    entries,
    { replayed = List.length entries; truncated_bytes = dropped } )

(** Append one entry and fsync before returning: when [append] comes back,
    the entry survives [kill -9]. *)
let append (t : t) (e : entry) : unit =
  let payload = Json.to_string (entry_to_json e) in
  let n = String.length payload in
  if n > max_record then invalid_arg "Journal.append: oversized entry";
  let crc = Int32.to_int (crc32 payload) land 0xFFFFFFFF in
  let record = be32 n ^ be32 crc ^ payload in
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      if t.closed then invalid_arg "Journal.append: closed";
      let b = Bytes.of_string record in
      let off = ref 0 in
      while !off < Bytes.length b do
        off := !off + Unix.write t.fd b !off (Bytes.length b - !off)
      done;
      Unix.fsync t.fd;
      t.entries <- t.entries + 1)

let entries (t : t) : int = t.entries

let close (t : t) : unit =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        try Unix.close t.fd with _ -> ()
      end)
