(** Server addresses: one vocabulary for both transports.

    Every place that names an endpoint — the daemon's listeners, the
    client's [--socket] flag, the chaos proxy's two ends — speaks the same
    string syntax:

    - ["tcp:HOST:PORT"] — a TCP endpoint ([HOST] is a dotted quad or a
      resolvable name; [PORT] 0 asks the kernel for an ephemeral port, and
      {!bound} recovers the one actually assigned);
    - anything else — a Unix-domain socket path.

    The helpers here are deliberately thin wrappers over [Unix]: parse,
    print, listen (with [SO_REUSEADDR] on TCP, so a restarted daemon does
    not trip over its own TIME_WAIT sockets), and connect (with
    [TCP_NODELAY] on TCP — the protocol is small request/response frames,
    exactly the workload Nagle's algorithm penalizes). *)

type t =
  | Unix_path of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host, port *)

let to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

(** Parse an endpoint string. Raises [Invalid_argument] on a malformed
    ["tcp:..."] spec; any string without the prefix is a socket path. *)
let of_string (s : string) : t =
  match String.length s >= 4 && String.sub s 0 4 = "tcp:" with
  | false -> Unix_path s
  | true -> (
      let rest = String.sub s 4 (String.length s - 4) in
      match String.rindex_opt rest ':' with
      | None ->
          invalid_arg
            (Printf.sprintf "Addr.of_string: %S wants tcp:HOST:PORT" s)
      | Some i -> (
          let host = String.sub rest 0 i in
          let port = String.sub rest (i + 1) (String.length rest - i - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && p <= 65535 && host <> "" ->
              Tcp (host, p)
          | _ ->
              invalid_arg
                (Printf.sprintf "Addr.of_string: %S wants tcp:HOST:PORT" s)))

let resolve_inet (host : string) : Unix.inet_addr =
  match Unix.inet_addr_of_string host with
  | a -> a
  | exception Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

let sockaddr_of (a : t) : Unix.sockaddr =
  match a with
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (h, p) -> Unix.ADDR_INET (resolve_inet h, p)

let domain_of = function
  | Unix_path _ -> Unix.PF_UNIX
  | Tcp _ -> Unix.PF_INET

(** Bind and listen. TCP listeners get [SO_REUSEADDR] (restart without
    waiting out TIME_WAIT); the caller owns stale-socket handling for Unix
    paths (the daemon probes liveness first). *)
let listen ?(backlog = 64) (a : t) : Unix.file_descr =
  let fd = Unix.socket (domain_of a) Unix.SOCK_STREAM 0 in
  match
    (match a with
    | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Unix_path _ -> ());
    Unix.bind fd (sockaddr_of a);
    Unix.listen fd backlog
  with
  | () -> fd
  | exception e ->
      (try Unix.close fd with _ -> ());
      raise e

(** The address a listening fd actually bound — resolves a requested port
    0 to the kernel-assigned ephemeral port. *)
let bound (fd : Unix.file_descr) (a : t) : t =
  match (a, Unix.getsockname fd) with
  | Tcp (h, _), Unix.ADDR_INET (_, p) -> Tcp (h, p)
  | _ -> a

(** Tune an {e accepted} connection for the protocol: [TCP_NODELAY] (small
    frames must not wait on Nagle) and [SO_KEEPALIVE] (a vanished peer on
    a quiet connection is eventually detected by the kernel, below the
    application-level heartbeats). No-ops on Unix sockets. *)
let tune_accepted (a : t) (fd : Unix.file_descr) : unit =
  match a with
  | Unix_path _ -> ()
  | Tcp _ ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
      (try Unix.setsockopt fd Unix.SO_KEEPALIVE true with _ -> ())

(** Connect to an endpoint (with [TCP_NODELAY] on TCP). *)
let connect (a : t) : Unix.file_descr =
  let fd = Unix.socket (domain_of a) Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (sockaddr_of a);
    match a with
    | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ())
    | Unix_path _ -> ()
  with
  | () -> fd
  | exception e ->
      (try Unix.close fd with _ -> ());
      raise e

(** Hard reset: on TCP, [SO_LINGER 0] turns the close into an RST instead
    of an orderly FIN — the chaos proxy's "connection reset by peer". *)
let reset_close (fd : Unix.file_descr) : unit =
  (try Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0) with _ -> ());
  try Unix.close fd with _ -> ()
