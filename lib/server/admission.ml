(** Bounded admission queue with watermark-driven load shedding.

    The daemon's backpressure state machine (DESIGN.md §11). Work is
    admitted into a bounded FIFO consumed by the worker pool; the decision
    at submission time depends only on the instantaneous queue depth:

    - depth < [cheap_watermark]: {e Accepting} — full-fidelity evaluation;
    - depth < [cache_watermark]: {e Shedding (cheap)} — admitted, but
      evaluated by the cheap module subset (static analysis only, shallow
      premise budget), answer tagged degraded;
    - depth < [capacity]: {e Shedding (cached)} — admitted, answered from
      the shared cache alone (a miss returns the sound conservative
      bottom), tagged degraded;
    - depth = [capacity]: {e Rejecting} — refused outright with an explicit
      retry-after hint, never silently dropped or blocked.

    Degrading {e admitted-but-late} work keeps the daemon's latency bounded
    under overload while every answer stays sound; the explicit rejection
    band bounds memory. All transitions are per-submission — the machine
    has no hysteresis to get stuck in. *)

type degrade = Full | Cheap | Cached_only

let degrade_name = function
  | Full -> "full"
  | Cheap -> "cheap"
  | Cached_only -> "cached"

type config = {
  capacity : int;  (** hard bound on queued jobs *)
  cheap_watermark : int;  (** depth at which answers degrade to [Cheap] *)
  cache_watermark : int;  (** depth at which answers degrade to [Cached_only] *)
  retry_after_ms : float;  (** backoff hint attached to rejections *)
}

let default_config =
  { capacity = 64; cheap_watermark = 16; cache_watermark = 32;
    retry_after_ms = 50.0 }

type submit_result =
  | Admitted of degrade
  | Overloaded of float  (** rejected; retry after this many ms *)
  | Closed  (** queue closed — the daemon is shutting down *)

type stats = {
  depth : int;
  capacity : int;
  admitted_full : int;
  shed_cheap : int;
  shed_cached : int;
  rejected : int;
}

type 'a t = {
  cfg : config;
  q : ('a * degrade) Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable admitted_full : int;
  mutable shed_cheap : int;
  mutable shed_cached : int;
  mutable rejected : int;
}

let create (cfg : config) : 'a t =
  if cfg.capacity < 1 then invalid_arg "Admission.create: capacity < 1";
  {
    cfg;
    q = Queue.create ();
    m = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
    admitted_full = 0;
    shed_cheap = 0;
    shed_cached = 0;
    rejected = 0;
  }

let with_lock (t : 'a t) (f : unit -> 'b) : 'b =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(** Admission decision and enqueue, atomically against the consumers. *)
let submit (t : 'a t) (job : 'a) : submit_result =
  with_lock t (fun () ->
      if t.closed then Closed
      else
        let depth = Queue.length t.q in
        if depth >= t.cfg.capacity then begin
          t.rejected <- t.rejected + 1;
          Overloaded t.cfg.retry_after_ms
        end
        else begin
          let d =
            if depth >= t.cfg.cache_watermark then Cached_only
            else if depth >= t.cfg.cheap_watermark then Cheap
            else Full
          in
          (match d with
          | Full -> t.admitted_full <- t.admitted_full + 1
          | Cheap -> t.shed_cheap <- t.shed_cheap + 1
          | Cached_only -> t.shed_cached <- t.shed_cached + 1);
          Queue.push (job, d) t.q;
          Condition.signal t.nonempty;
          Admitted d
        end)

(** Blocking pop for the worker pool; [None] once the queue is closed and
    drained — the worker's signal to exit. *)
let pop (t : 'a t) : ('a * degrade) option =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.m;
          wait ()
        end
      in
      wait ())

(** Close the intake: further submissions get [Closed], blocked workers
    drain what is queued and then wake to [None]. *)
let close (t : 'a t) : unit =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth (t : 'a t) : int = with_lock t (fun () -> Queue.length t.q)

let stats (t : 'a t) : stats =
  with_lock t (fun () ->
      {
        depth = Queue.length t.q;
        capacity = t.cfg.capacity;
        admitted_full = t.admitted_full;
        shed_cheap = t.shed_cheap;
        shed_cached = t.shed_cached;
        rejected = t.rejected;
      })

(** The state-machine label for a given depth — for the [stats] wire
    response and the docs' state diagram. *)
let state_name (t : 'a t) : string =
  with_lock t (fun () ->
      if t.closed then "closed"
      else
        let depth = Queue.length t.q in
        if depth >= t.cfg.capacity then "rejecting"
        else if depth >= t.cfg.cache_watermark then "shedding-cached"
        else if depth >= t.cfg.cheap_watermark then "shedding-cheap"
        else "accepting")
