(** The SCAF query daemon: analysis as a long-lived service.

    One process loads every configured benchmark once (parse, verify,
    profile — the dominant cost of a batch run), keeps the shared
    canonicalizing caches warm, and answers dependence queries over a
    length-prefixed JSON protocol ({!Wire}) on a Unix-domain socket.

    Thread layout:

    - the {e accept} thread owns the listening socket and, once asked to
      stop, performs the final teardown (join everything, unlink socket);
    - one thread {e per connection} reads frames, runs cheap ops inline,
      and submits analysis work to the admission queue, so a stalled
      client stalls only its own connection;
    - a pool of {e worker} threads drains the admission queue, each with
      its private orchestrators over the shared caches;
    - a {e reaper} thread shuts down sessions idle past [idle_timeout]
      ([Unix.shutdown], not [close] — shutdown reliably wakes a reader
      blocked in [read], and the connection thread still owns the fd's
      lifetime, so no double-close races).

    Every accepted request is answered, cleanly rejected, or
    deadline-expired — never silently dropped, never left hanging: frames
    are written whole ({!Wire.write_frame}), admitted jobs survive
    shutdown (the queue drains before workers exit), and a crashed worker
    converts its job into an [internal] error response. *)

open Scaf_trace

type config = {
  socket_path : string;
  benchmarks : Scaf_suite.Program.t list;
  workers : int;
  admission : Admission.config;
  idle_timeout : float;  (** reap sessions idle this many seconds *)
  frame_budget : float;  (** slow-loris bound: max seconds per frame *)
  max_frame : int;  (** max payload bytes per frame *)
  default_deadline_ms : float option;
      (** deadline applied to requests that do not carry one *)
  max_submit_queries : int;
      (** admission ceiling for submitted programs: reject a submission
          whose statically estimated query count exceeds this *)
  static_nodep : bool;
      (** answer provably-disjoint queries from the lint layer's static
          pass before consulting the orchestrator (off by default: a
          short-circuited answer is not byte-identical to batch) *)
  metrics : Metrics.t;
  wrap : Scaf.Module_api.t list -> Scaf.Module_api.t list;
      (** ensemble hook for the chaos harness; [Fun.id] in production *)
}

let default_config ?(socket_path = Filename.concat (Filename.get_temp_dir_name ()) "scaf-eval.sock")
    ?benchmarks () : config =
  let benchmarks =
    match benchmarks with Some bs -> bs | None -> Scaf_suite.Registry.all ()
  in
  {
    socket_path;
    benchmarks;
    workers = 2;
    admission = Admission.default_config;
    idle_timeout = 30.0;
    frame_budget = 5.0;
    max_frame = Wire.default_max_len;
    default_deadline_ms = None;
    max_submit_queries = 200_000;
    static_nodep = false;
    metrics = Metrics.create ();
    wrap = Fun.id;
  }

(* ------------------------------------------------------------------ *)
(* Jobs and sessions                                                   *)
(* ------------------------------------------------------------------ *)

type job = {
  j_bench : Engine.bench;
  j_queries : Protocol.wire_query list;
  j_deadline : float option;  (** absolute, [Unix.gettimeofday] units *)
  j_mail : mail;
}

and mail = {
  mm : Mutex.t;
  mc : Condition.t;
  mutable result : (Protocol.answer list, Protocol.err) result option;
}

type session = {
  sid : int;
  fd : Unix.file_descr;
  peer : string;  (** client-announced name, for the stats view *)
  mutable last_active : float;
  mutable reaped : bool;
}

type t = {
  cfg : config;
  engine : Engine.t;
  listen_fd : Unix.file_descr;
  queue : job Admission.t;
  sessions : (int, session) Hashtbl.t;
  sm : Mutex.t;
  mutable next_sid : int;
  mutable stopping : bool;
  started_at : float;
  mutable accept_thread : Thread.t option;
  (* resolved metric handles (satellite: daemon health via the PR 4
     registry) *)
  m_requests : Metrics.counter;
  m_answered : Metrics.counter;
  m_rejected : Metrics.counter;
  m_shed : Metrics.counter;
  m_deadline_miss : Metrics.counter;
  m_coalesced : Metrics.counter;
  m_sessions_opened : Metrics.counter;
  m_sessions_open : Metrics.counter;  (** gauge: [add +1 / -1] *)
  m_sessions_reaped : Metrics.counter;
  m_bad_frames : Metrics.counter;
  m_queue_depth : Metrics.counter;  (** gauge *)
  m_request_latency : Metrics.histogram;
}

let now () = Unix.gettimeofday ()

let with_sessions (t : t) (f : unit -> 'a) : 'a =
  Mutex.lock t.sm;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sm) f

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

let deliver (mail : mail) (r : (Protocol.answer list, Protocol.err) result) :
    unit =
  Mutex.lock mail.mm;
  mail.result <- Some r;
  Condition.signal mail.mc;
  Mutex.unlock mail.mm

let collect (mail : mail) : (Protocol.answer list, Protocol.err) result =
  Mutex.lock mail.mm;
  let rec wait () =
    match mail.result with
    | Some r ->
        Mutex.unlock mail.mm;
        r
    | None ->
        Condition.wait mail.mc mail.mm;
        wait ()
  in
  wait ()

let run_job (t : t) (w : Engine.worker) (job : job)
    (degrade : Admission.degrade) : unit =
  Metrics.add t.m_queue_depth (-1);
  if degrade <> Admission.Full then Metrics.incr t.m_shed;
  let res =
    match
      List.map
        (fun wq ->
          (* a job that waited out its whole deadline in the queue is not
             evaluated at all: the sound bottom, tagged, immediately *)
          match job.j_deadline with
          | Some d when now () > d ->
              Protocol.answer_of_response ~degraded:"deadline"
                (Scaf.Response.bottom_for (Protocol.to_core_query wq))
          | _ ->
              Engine.answer w ~degrade ~deadline:job.j_deadline job.j_bench
                wq)
        job.j_queries
    with
    | answers -> Ok answers
    | exception e ->
        Error (Protocol.internal ("worker: " ^ Printexc.to_string e))
  in
  (match res with
  | Ok answers ->
      List.iter
        (fun (a : Protocol.answer) ->
          if a.Protocol.a_degraded = Some "deadline" then
            Metrics.incr t.m_deadline_miss;
          if a.Protocol.a_coalesced then Metrics.incr t.m_coalesced)
        answers
  | Error _ -> ());
  deliver job.j_mail res

let worker_loop (t : t) () : unit =
  let w = Engine.worker t.engine in
  let rec loop () =
    match Admission.pop t.queue with
    | None -> ()  (* closed and drained *)
    | Some (job, degrade) ->
        run_job t w job degrade;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let stats_json (t : t) : Json.t =
  let a = Admission.stats t.queue in
  let sessions_open = with_sessions t (fun () -> Hashtbl.length t.sessions) in
  Protocol.ok
    [
      ( "server",
        Json.Obj
          [
            ("version", Json.Int Protocol.version);
            ("uptime_s", Json.float (now () -. t.started_at));
            ("stopping", Json.Bool t.stopping);
            ("sessions_open", Json.Int sessions_open);
            ( "benchmarks",
              Json.List
                (List.map
                   (fun n -> Json.String n)
                   (Engine.bench_names t.engine)) );
          ] );
      ( "admission",
        Json.Obj
          [
            ("state", Json.String (Admission.state_name t.queue));
            ("depth", Json.Int a.Admission.depth);
            ("capacity", Json.Int a.Admission.capacity);
            ("admitted_full", Json.Int a.Admission.admitted_full);
            ("shed_cheap", Json.Int a.Admission.shed_cheap);
            ("shed_cached", Json.Int a.Admission.shed_cached);
            ("rejected", Json.Int a.Admission.rejected);
          ] );
      ( "engine",
        Json.Obj
          [
            ("coalesced", Json.Int (Engine.coalesced_count t.engine));
            ("caches", Engine.cache_stats_json t.engine);
          ] );
      ("metrics", Json.of_string (Metrics.to_json t.cfg.metrics));
    ]

let wake_accept (t : t) : unit =
  (* a throwaway self-connection unblocks [accept] so it can observe
     [stopping]; every failure mode here means accept is already awake *)
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception _ -> ()
  | fd ->
      (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
       with _ -> ());
      (try Unix.close fd with _ -> ())

let request_stop (t : t) : unit =
  if not t.stopping then begin
    t.stopping <- true;
    Admission.close t.queue;
    (* unblock readers stuck on dead clients *)
    with_sessions t (fun () ->
        Hashtbl.iter
          (fun _ s -> try Unix.shutdown s.fd Unix.SHUTDOWN_ALL with _ -> ())
          t.sessions);
    wake_accept t
  end

(* Deadline of a request: explicit [deadline_ms], else the configured
   default, as an absolute clock value. *)
let deadline_of (t : t) (deadline_ms : float option) : float option =
  match
    (match deadline_ms with Some _ -> deadline_ms | None -> t.cfg.default_deadline_ms)
  with
  | Some ms -> Some (now () +. (ms /. 1000.0))
  | None -> None

let submit_ask (t : t) ~(bench : string)
    ~(qs : Protocol.wire_query list) ~(deadline_ms : float option) :
    (Protocol.answer list, Protocol.err) result =
  match Engine.find_bench t.engine bench with
  | None -> Error (Protocol.unknown_bench bench)
  | Some b -> (
      let mail =
        { mm = Mutex.create (); mc = Condition.create (); result = None }
      in
      let job =
        {
          j_bench = b;
          j_queries = qs;
          j_deadline = deadline_of t deadline_ms;
          j_mail = mail;
        }
      in
      match Admission.submit t.queue job with
      | Admission.Admitted _ ->
          Metrics.add t.m_queue_depth 1;
          collect mail
      | Admission.Overloaded retry_after_ms ->
          Metrics.incr t.m_rejected;
          Error (Protocol.overloaded ~retry_after_ms)
      | Admission.Closed ->
          Metrics.incr t.m_rejected;
          Error Protocol.shutting_down)

let handle_request (t : t) (req : Protocol.request) : Json.t =
  match req with
  | Protocol.Hello { client = _ } ->
      Protocol.ok
        [
          ("server", Json.String "scaf-eval");
          ("version", Json.Int Protocol.version);
          ( "benchmarks",
            Json.List
              (List.map (fun n -> Json.String n) (Engine.bench_names t.engine))
          );
        ]
  | Protocol.Ping -> Protocol.ok []
  | Protocol.Stats -> stats_json t
  | Protocol.Queries { bench } -> (
      match Engine.find_bench t.engine bench with
      | Some b -> Protocol.ok [ ("workload", Engine.queries_json b) ]
      | None -> Protocol.err_to_json (Protocol.unknown_bench bench))
  | Protocol.Report { bench } -> (
      match Engine.find_bench t.engine bench with
      | Some b ->
          Protocol.ok
            [ ("row", Protocol.fig8_row_to_json (Engine.report_row b)) ]
      | None -> Protocol.err_to_json (Protocol.unknown_bench bench))
  | Protocol.Edit { bench; edits } -> (
      (* inline, like Report: edits are rare, administrative, and must be
         serialized per benchmark anyway (the engine's bench mutex) *)
      match Engine.find_bench t.engine bench with
      | None -> Protocol.err_to_json (Protocol.unknown_bench bench)
      | Some b -> (
          match Engine.apply_edit t.engine b edits with
          | Ok (diff, stats) ->
              Protocol.ok
                [
                  ( "edit",
                    Protocol.edit_report_to_json
                      (Protocol.edit_report_of diff stats) );
                ]
          | Error diags ->
              Protocol.err_to_json (Protocol.edit_rejected diags)))
  | Protocol.Submit { prog } -> (
      (* inline, like Edit: a submission is rare and administrative; the
         lint gate runs before the expensive profiling, so a malformed
         program is rejected without burning worker time *)
      match
        Engine.submit t.engine ~max_est_queries:t.cfg.max_submit_queries prog
      with
      | Ok (report, _b) ->
          Metrics.incr (Metrics.counter t.cfg.metrics "lint.submit.accepted");
          Protocol.ok
            [ ("submitted", Protocol.submit_report_to_json report) ]
      | Error e ->
          Metrics.incr (Metrics.counter t.cfg.metrics "lint.submit.rejected");
          Protocol.err_to_json e)
  | Protocol.Ask { bench; q; deadline_ms } -> (
      match submit_ask t ~bench ~qs:[ q ] ~deadline_ms with
      | Ok [ a ] -> Protocol.ok [ ("answer", Protocol.answer_to_json a) ]
      | Ok _ -> Protocol.err_to_json (Protocol.internal "answer count mismatch")
      | Error e -> Protocol.err_to_json e)
  | Protocol.Ask_many { bench; qs; deadline_ms } -> (
      match submit_ask t ~bench ~qs ~deadline_ms with
      | Ok answers ->
          Protocol.ok
            [ ("answers", Json.List (List.map Protocol.answer_to_json answers)) ]
      | Error e -> Protocol.err_to_json e)
  | Protocol.Shutdown ->
      (* reply first; the teardown happens after the frame is on the wire *)
      Protocol.ok [ ("stopping", Json.Bool true) ]

(* ------------------------------------------------------------------ *)
(* Connection threads                                                  *)
(* ------------------------------------------------------------------ *)

let close_session (t : t) (s : session) : unit =
  let removed =
    with_sessions t (fun () ->
        if Hashtbl.mem t.sessions s.sid then begin
          Hashtbl.remove t.sessions s.sid;
          true
        end
        else false)
  in
  if removed then Metrics.add t.m_sessions_open (-1);
  (try Unix.close s.fd with _ -> ())

let serve_connection (t : t) (s : session) : unit =
  Fun.protect
    ~finally:(fun () -> close_session t s)
    (fun () ->
      (* the receive timeout turns a quiet socket into periodic [Idle]
         results, giving this thread a heartbeat to notice stop/reap *)
      (try Unix.setsockopt_float s.fd Unix.SO_RCVTIMEO 0.2 with _ -> ());
      let rec loop () =
        if t.stopping || s.reaped then ()
        else
          match
            Wire.read_frame ~max_len:t.cfg.max_frame
              ~frame_budget:t.cfg.frame_budget s.fd
          with
          | Error Wire.Idle -> loop ()
          | Error Wire.Closed -> ()
          | Error (Wire.Truncated _ as e) | Error (Wire.Oversized _ as e) ->
              (* framing is lost — answer if possible, then hang up *)
              Metrics.incr t.m_bad_frames;
              ignore
                (Wire.write_frame s.fd
                   (Protocol.err_to_json
                      (Protocol.bad_request (Wire.error_to_string e))))
          | Error (Wire.Bad_json msg) ->
              (* the frame was well-delimited: report and keep serving *)
              Metrics.incr t.m_bad_frames;
              (match
                 Wire.write_frame s.fd
                   (Protocol.err_to_json
                      (Protocol.bad_request ("bad json: " ^ msg)))
               with
              | Ok () -> loop ()
              | Error _ -> ())
          | Ok j -> (
              s.last_active <- now ();
              Metrics.incr t.m_requests;
              let t0 = now () in
              let reply, is_shutdown =
                match Protocol.request_of_json j with
                | Protocol.Shutdown as req -> (handle_request t req, true)
                | req -> (handle_request t req, false)
                | exception Json.Parse_error msg ->
                    (Protocol.err_to_json (Protocol.bad_request msg), false)
                | exception e ->
                    ( Protocol.err_to_json
                        (Protocol.internal (Printexc.to_string e)),
                      false )
              in
              (match Json.member "ok" reply with
              | Some (Json.Bool true) -> Metrics.incr t.m_answered
              | _ -> ());
              Metrics.observe t.m_request_latency (now () -. t0);
              match Wire.write_frame s.fd reply with
              | Error _ -> ()
              | Ok () ->
                  if is_shutdown then request_stop t else loop ())
      in
      loop ())

(* ------------------------------------------------------------------ *)
(* Reaper                                                              *)
(* ------------------------------------------------------------------ *)

let reaper_loop (t : t) () : unit =
  while not t.stopping do
    Thread.delay (Float.min 0.5 (t.cfg.idle_timeout /. 2.0));
    let stale =
      with_sessions t (fun () ->
          Hashtbl.fold
            (fun _ s acc ->
              if
                (not s.reaped)
                && now () -. s.last_active > t.cfg.idle_timeout
              then begin
                s.reaped <- true;
                s :: acc
              end
              else acc)
            t.sessions [])
    in
    List.iter
      (fun s ->
        Metrics.incr t.m_sessions_reaped;
        (* wake the connection thread's blocked read; it closes the fd *)
        try Unix.shutdown s.fd Unix.SHUTDOWN_ALL with _ -> ())
      stale
  done

(* ------------------------------------------------------------------ *)
(* Listening socket lifecycle                                          *)
(* ------------------------------------------------------------------ *)

(** A socket file with no listener behind it (e.g. after [kill -9]) is
    stale and silently removed; a live listener is a hard error. *)
let prepare_socket_path (path : string) : unit =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
          false
      | exception _ -> false
    in
    (try Unix.close probe with _ -> ());
    if live then
      failwith (Printf.sprintf "daemon already listening on %s" path)
    else Unix.unlink path
  end

let accept_loop (t : t) (workers : Thread.t list) (reaper : Thread.t) () :
    unit =
  let conn_threads = ref [] in
  (try
     while not t.stopping do
       match Unix.accept t.listen_fd with
       | fd, _ ->
           if t.stopping then (try Unix.close fd with _ -> ())
           else begin
             let s =
               with_sessions t (fun () ->
                   let sid = t.next_sid in
                   t.next_sid <- sid + 1;
                   let s =
                     { sid; fd; peer = ""; last_active = now (); reaped = false }
                   in
                   Hashtbl.add t.sessions sid s;
                   s)
             in
             Metrics.incr t.m_sessions_opened;
             Metrics.add t.m_sessions_open 1;
             conn_threads :=
               Thread.create (fun () -> serve_connection t s) () :: !conn_threads
           end
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
           (* listening fd torn down under us: only valid during stop *)
           if not t.stopping then raise Exit
     done
   with Exit -> ());
  (* teardown: the accept thread owns the final cleanup *)
  request_stop t;
  List.iter Thread.join !conn_threads;
  List.iter Thread.join workers;
  Thread.join reaper;
  (try Unix.close t.listen_fd with _ -> ());
  try Unix.unlink t.cfg.socket_path with _ -> ()

(** [start cfg] — load the benchmarks (the slow part), bind and listen,
    spawn the service threads, return the running daemon. The socket
    accepts connections by the time this returns. *)
let start (cfg : config) : t =
  (* a dead peer must error the writer, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let engine =
    Engine.create ~wrap:cfg.wrap ~static_nodep:cfg.static_nodep
      ~metrics:cfg.metrics ~benchmarks:cfg.benchmarks ()
  in
  prepare_socket_path cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  let m = cfg.metrics in
  let t =
    {
      cfg;
      engine;
      listen_fd;
      queue = Admission.create cfg.admission;
      sessions = Hashtbl.create 16;
      sm = Mutex.create ();
      next_sid = 1;
      stopping = false;
      started_at = now ();
      accept_thread = None;
      m_requests = Metrics.counter m "server.requests";
      m_answered = Metrics.counter m "server.answered";
      m_rejected = Metrics.counter m "server.rejected";
      m_shed = Metrics.counter m "server.shed";
      m_deadline_miss = Metrics.counter m "server.deadline_miss";
      m_coalesced = Metrics.counter m "server.coalesced";
      m_sessions_opened = Metrics.counter m "server.sessions.opened";
      m_sessions_open = Metrics.counter m "server.sessions.open";
      m_sessions_reaped = Metrics.counter m "server.sessions.reaped";
      m_bad_frames = Metrics.counter m "server.bad_frames";
      m_queue_depth = Metrics.counter m "server.queue_depth";
      m_request_latency = Metrics.histogram m "server.request_latency_s";
    }
  in
  let workers =
    List.init (max 1 cfg.workers) (fun _ -> Thread.create (worker_loop t) ())
  in
  let reaper = Thread.create (reaper_loop t) () in
  t.accept_thread <- Some (Thread.create (accept_loop t workers reaper) ());
  t

(** Block until the daemon has fully stopped (socket unlinked). *)
let wait (t : t) : unit =
  match t.accept_thread with Some th -> Thread.join th | None -> ()

(** Stop the daemon and wait for the teardown to finish. Idempotent. *)
let stop (t : t) : unit =
  request_stop t;
  wait t

(** [run cfg] — start and serve until a [shutdown] request (or a stop from
    another thread) tears the daemon down. *)
let run (cfg : config) : unit = wait (start cfg)
