(** The SCAF query daemon: analysis as a long-lived service.

    One process loads every configured benchmark once (parse, verify,
    profile — the dominant cost of a batch run), keeps the shared
    canonicalizing caches warm, and answers dependence queries over a
    length-prefixed JSON protocol ({!Wire}) on a Unix-domain socket and,
    optionally, a TCP listener ({!Addr}) — both speak the same framing,
    share the same admission queue, and count against the same session
    table.

    Thread layout:

    - the {e accept} thread multiplexes every listening socket through
      [select] and, once asked to stop, performs the final teardown (join
      everything, close listeners, unlink the Unix socket). Transient
      accept failures (EMFILE, ECONNABORTED, ...) back off exponentially
      instead of spinning hot, and are counted;
    - one thread {e per connection} reads frames, runs cheap ops inline,
      and submits analysis work to the admission queue, so a stalled
      client stalls only its own connection. Quiet connections receive
      keepalive heartbeat frames — a dead peer turns the heartbeat write
      into an error long before TCP gives up on retransmits;
    - a pool of {e worker} threads drains the admission queue, each with
      its private orchestrators over the shared caches. A streaming job
      hands each answer to a {e bounded} per-connection outbox the
      connection thread drains; a consumer that stops draining first
      degrades the remaining answers (backpressure shed) and is then
      disconnected with a retryable [stream_overrun];
    - a {e reaper} thread shuts down sessions idle past [idle_timeout]
      ([Unix.shutdown], not [close] — shutdown reliably wakes a reader
      blocked in [read], and the connection thread still owns the fd's
      lifetime, so no double-close races).

    Durability: with [state_dir] set, every {e accepted} [submit]/[edit]
    is appended (fsync'd, checksummed) to a {!Journal} before the success
    reply leaves the socket, and replayed through the same lint/admission
    pipeline on the next start — [kill -9] no longer loses registered
    programs.

    Every accepted request is answered, cleanly rejected, or
    deadline-expired — never silently dropped, never left hanging: frames
    are written whole ({!Wire.write_frame}, bounded by [write_budget]),
    admitted jobs survive shutdown (the queue drains before workers
    exit), and a crashed worker converts its job into an [internal] error
    response. *)

open Scaf_trace

type config = {
  socket_path : string;
  tcp : string option;
      (** optional second listener, ["HOST:PORT"] (port 0 = ephemeral) *)
  state_dir : string option;
      (** journal accepted submit/edit ops here and replay them on start *)
  benchmarks : Scaf_suite.Program.t list;
  workers : int;
  admission : Admission.config;
  idle_timeout : float;  (** reap sessions idle this many seconds *)
  frame_budget : float;  (** slow-loris bound: max seconds per frame *)
  write_budget : float;
      (** per-frame write deadline once the peer stops draining *)
  heartbeat_interval : float;
      (** seconds of write-silence before a keepalive heartbeat frame *)
  outbox_cap : int;  (** streaming: buffered answers per connection *)
  stream_grace : float;
      (** streaming: seconds a worker may wait on a full outbox; sheds to
          degraded answers at a quarter of this, disconnects past it *)
  max_frame : int;  (** max payload bytes per frame *)
  default_deadline_ms : float option;
      (** deadline applied to requests that do not carry one *)
  max_submit_queries : int;
      (** admission ceiling for submitted programs: reject a submission
          whose statically estimated query count exceeds this *)
  static_nodep : bool;
      (** answer provably-disjoint queries from the lint layer's static
          pass before consulting the orchestrator (off by default: a
          short-circuited answer is not byte-identical to batch) *)
  jobs : int;
      (** worker domains in the engine's work-stealing pool, used by the
          parallel figure evaluations (default 1: no extra domains) *)
  metrics : Metrics.t;
  wrap : Scaf.Module_api.t list -> Scaf.Module_api.t list;
      (** ensemble hook for the chaos harness; [Fun.id] in production *)
}

let default_config ?(socket_path = Filename.concat (Filename.get_temp_dir_name ()) "scaf-eval.sock")
    ?benchmarks () : config =
  let benchmarks =
    match benchmarks with Some bs -> bs | None -> Scaf_suite.Registry.all ()
  in
  {
    socket_path;
    tcp = None;
    state_dir = None;
    benchmarks;
    workers = 2;
    admission = Admission.default_config;
    idle_timeout = 30.0;
    frame_budget = 5.0;
    write_budget = 5.0;
    heartbeat_interval = 5.0;
    outbox_cap = 8;
    stream_grace = 2.0;
    max_frame = Wire.default_max_len;
    default_deadline_ms = None;
    max_submit_queries = 200_000;
    static_nodep = false;
    jobs = 1;
    metrics = Metrics.create ();
    wrap = Fun.id;
  }

(* ------------------------------------------------------------------ *)
(* Jobs, outboxes, and sessions                                        *)
(* ------------------------------------------------------------------ *)

type job = {
  j_bench : Engine.bench;
  j_queries : Protocol.wire_query list;
  j_deadline : float option;  (** absolute, [Unix.gettimeofday] units *)
  j_sink : sink;
}

and sink =
  | Batch of mail  (** one reply frame carrying every answer *)
  | Stream of outbox  (** one frame per answer, through the outbox *)

and mail = {
  mm : Mutex.t;
  mc : Condition.t;
  mutable result : (Protocol.answer list, Protocol.err) result option;
}

(** The bounded per-connection outbox between a streaming job's worker
    (producer) and its connection thread (consumer). Capacity is the
    backpressure: a full outbox makes the worker wait, a wait past
    [grace/4] sheds the remaining answers to degraded, a wait past
    [grace] abandons the stream entirely. *)
and outbox = {
  om : Mutex.t;
  oc : Condition.t;
  obuf : (int * Protocol.answer) Queue.t;
  ocap : int;
  ograce : float;
  mutable o_closed : bool;  (** consumer gone; producer must stop *)
  mutable o_cancel : bool;  (** client sent [cancel] *)
  mutable o_done : bool;  (** producer finished (or gave up) *)
  mutable o_err : Protocol.err option;  (** abort reason, if any *)
  mutable o_shed : int;  (** answers degraded by backpressure *)
}

type session = {
  sid : int;
  fd : Unix.file_descr;
  peer : string;  (** client-announced name, for the stats view *)
  mutable last_active : float;
  mutable reaped : bool;
}

type t = {
  cfg : config;
  engine : Engine.t;
  listeners : (Unix.file_descr * Addr.t) list;
      (** every listening socket, with the address it actually bound *)
  journal : Journal.t option;
  queue : job Admission.t;
  sessions : (int, session) Hashtbl.t;
  sm : Mutex.t;
  mutable next_sid : int;
  mutable stopping : bool;
  started_at : float;
  mutable accept_thread : Thread.t option;
  (* resolved metric handles (satellite: daemon health via the PR 4
     registry) *)
  m_requests : Metrics.counter;
  m_answered : Metrics.counter;
  m_rejected : Metrics.counter;
  m_shed : Metrics.counter;
  m_deadline_miss : Metrics.counter;
  m_coalesced : Metrics.counter;
  m_sessions_opened : Metrics.counter;
  m_sessions_open : Metrics.counter;  (** gauge: [add +1 / -1] *)
  m_sessions_reaped : Metrics.counter;
  m_bad_frames : Metrics.counter;
  m_queue_depth : Metrics.counter;  (** gauge *)
  m_request_latency : Metrics.histogram;
  (* transport counters (this PR) *)
  m_accept_errors : Metrics.counter;
  m_heartbeats : Metrics.counter;
  m_streams_opened : Metrics.counter;
  m_streams_cancelled : Metrics.counter;
  m_streams_aborted : Metrics.counter;
  m_stream_items : Metrics.counter;
  m_bp_sheds : Metrics.counter;
  m_version_mismatch : Metrics.counter;
  m_journal_appended : Metrics.counter;
  m_journal_append_failed : Metrics.counter;
  m_journal_replayed : Metrics.counter;
  m_journal_replay_failed : Metrics.counter;
  m_journal_truncated : Metrics.counter;
}

let now () = Unix.gettimeofday ()

let with_sessions (t : t) (f : unit -> 'a) : 'a =
  Mutex.lock t.sm;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.sm) f

(* ------------------------------------------------------------------ *)
(* Outbox                                                              *)
(* ------------------------------------------------------------------ *)

let outbox_create ~(cap : int) ~(grace : float) : outbox =
  {
    om = Mutex.create ();
    oc = Condition.create ();
    obuf = Queue.create ();
    ocap = max 1 cap;
    ograce = grace;
    o_closed = false;
    o_cancel = false;
    o_done = false;
    o_err = None;
    o_shed = 0;
  }

let with_outbox (ob : outbox) (f : unit -> 'a) : 'a =
  Mutex.lock ob.om;
  Fun.protect ~finally:(fun () -> Mutex.unlock ob.om) f

(* Producer side: push one answer, waiting while the outbox is full.
   OCaml's [Condition] has no timed wait, so the wait is emulated in
   50 ms slices — the grace clock keeps running even if the consumer
   never signals again. *)
let outbox_push (ob : outbox) (item : int * Protocol.answer) :
    [ `Ok of float | `Overrun | `Stopped ] =
  let t0 = now () in
  let rec wait () =
    match
      with_outbox ob (fun () ->
          if ob.o_closed || ob.o_cancel then `Stopped
          else if Queue.length ob.obuf < ob.ocap then begin
            Queue.add item ob.obuf;
            Condition.broadcast ob.oc;
            `Ok (now () -. t0)
          end
          else if now () -. t0 > ob.ograce then `Overrun
          else `Full)
    with
    | `Full ->
        Thread.delay 0.05;
        wait ()
    | (`Ok _ | `Overrun | `Stopped) as r -> r
  in
  wait ()

(* Consumer side: take the next item, waiting at most [max_wait] so the
   connection thread keeps its own heartbeat/cancel-poll cadence. *)
let outbox_take (ob : outbox) ~(max_wait : float) :
    [ `Item of int * Protocol.answer | `Err of Protocol.err | `Done | `Timeout ]
    =
  let t0 = now () in
  let rec wait () =
    match
      with_outbox ob (fun () ->
          if not (Queue.is_empty ob.obuf) then begin
            let it = Queue.pop ob.obuf in
            Condition.broadcast ob.oc;
            `Item it
          end
          else
            match ob.o_err with
            | Some e -> `Err e
            | None ->
                if ob.o_done then `Done
                else if now () -. t0 >= max_wait then `Timeout
                else `Empty)
    with
    | `Empty ->
        Thread.delay 0.02;
        wait ()
    | (`Item _ | `Err _ | `Done | `Timeout) as r -> r
  in
  wait ()

let outbox_finish ?err (ob : outbox) : unit =
  with_outbox ob (fun () ->
      (match err with Some e when ob.o_err = None -> ob.o_err <- Some e | _ -> ());
      ob.o_done <- true;
      Condition.broadcast ob.oc)

let outbox_close (ob : outbox) : unit =
  with_outbox ob (fun () ->
      ob.o_closed <- true;
      Condition.broadcast ob.oc)

let outbox_cancel (ob : outbox) : unit =
  with_outbox ob (fun () ->
      ob.o_cancel <- true;
      Condition.broadcast ob.oc)

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

let deliver (mail : mail) (r : (Protocol.answer list, Protocol.err) result) :
    unit =
  Mutex.lock mail.mm;
  mail.result <- Some r;
  Condition.signal mail.mc;
  Mutex.unlock mail.mm

let collect (mail : mail) : (Protocol.answer list, Protocol.err) result =
  Mutex.lock mail.mm;
  let rec wait () =
    match mail.result with
    | Some r ->
        Mutex.unlock mail.mm;
        r
    | None ->
        Condition.wait mail.mc mail.mm;
        wait ()
  in
  wait ()

let answer_one (w : Engine.worker) (job : job)
    (degrade : Admission.degrade) (wq : Protocol.wire_query) : Protocol.answer
    =
  (* a query that waited out its whole deadline in the queue is not
     evaluated at all: the sound bottom, tagged, immediately *)
  match job.j_deadline with
  | Some d when now () > d ->
      Protocol.answer_of_response ~degraded:"deadline"
        (Scaf.Response.bottom_for (Protocol.to_core_query wq))
  | _ -> Engine.answer w ~degrade ~deadline:job.j_deadline job.j_bench wq

let count_answer (t : t) (a : Protocol.answer) : unit =
  if a.Protocol.a_degraded = Some "deadline" then
    Metrics.incr t.m_deadline_miss;
  if a.Protocol.a_coalesced then Metrics.incr t.m_coalesced

let run_batch_job (t : t) (w : Engine.worker) (job : job) (mail : mail)
    (degrade : Admission.degrade) : unit =
  let res =
    match List.map (answer_one w job degrade) job.j_queries with
    | answers -> Ok answers
    | exception e ->
        Error (Protocol.internal ("worker: " ^ Printexc.to_string e))
  in
  (match res with
  | Ok answers -> List.iter (count_answer t) answers
  | Error _ -> ());
  deliver mail res

(* A streaming job pushes each answer into the bounded outbox as it
   resolves. Backpressure policy: a push that had to wait more than a
   quarter of the grace period flips the job to shed mode (remaining
   queries evaluated cache-only and tagged), and a push that exhausts the
   grace abandons the stream with a retryable [stream_overrun]. *)
let run_stream_job (t : t) (w : Engine.worker) (job : job) (ob : outbox)
    (degrade : Admission.degrade) : unit =
  let shed = ref false in
  match
    List.iteri
      (fun i wq ->
        if with_outbox ob (fun () -> ob.o_closed || ob.o_cancel) then
          raise Exit;
        let degrade' = if !shed then Admission.Cached_only else degrade in
        let a = answer_one w job degrade' wq in
        let a =
          if !shed && a.Protocol.a_degraded = None then begin
            with_outbox ob (fun () -> ob.o_shed <- ob.o_shed + 1);
            Metrics.incr t.m_bp_sheds;
            { a with Protocol.a_degraded = Some "backpressure" }
          end
          else a
        in
        count_answer t a;
        match outbox_push ob (i, a) with
        | `Ok waited ->
            if (not !shed) && waited > ob.ograce /. 4.0 then shed := true
        | `Stopped -> raise Exit
        | `Overrun ->
            outbox_finish
              ~err:(Protocol.stream_overrun ~retry_after_ms:1000.0) ob;
            raise Exit)
      job.j_queries
  with
  | () -> outbox_finish ob
  | exception Exit -> outbox_finish ob
  | exception e ->
      outbox_finish ~err:(Protocol.internal ("worker: " ^ Printexc.to_string e))
        ob

let run_job (t : t) (w : Engine.worker) (job : job)
    (degrade : Admission.degrade) : unit =
  Metrics.add t.m_queue_depth (-1);
  if degrade <> Admission.Full then Metrics.incr t.m_shed;
  match job.j_sink with
  | Batch mail -> run_batch_job t w job mail degrade
  | Stream ob -> run_stream_job t w job ob degrade

let worker_loop (t : t) () : unit =
  let w = Engine.worker t.engine in
  let rec loop () =
    match Admission.pop t.queue with
    | None -> ()  (* closed and drained *)
    | Some (job, degrade) ->
        run_job t w job degrade;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let stats_json (t : t) : Json.t =
  let a = Admission.stats t.queue in
  let sessions_open = with_sessions t (fun () -> Hashtbl.length t.sessions) in
  let v c = Json.Int (Metrics.counter_value c) in
  Protocol.ok
    [
      ( "server",
        Json.Obj
          [
            ("version", Json.Int Protocol.version);
            ("uptime_s", Json.float (now () -. t.started_at));
            ("stopping", Json.Bool t.stopping);
            ("sessions_open", Json.Int sessions_open);
            ( "benchmarks",
              Json.List
                (List.map
                   (fun n -> Json.String n)
                   (Engine.bench_names t.engine)) );
          ] );
      ( "transport",
        Json.Obj
          [
            ( "listeners",
              Json.List
                (List.map
                   (fun (_, a) -> Json.String (Addr.to_string a))
                   t.listeners) );
            ("accept_errors", v t.m_accept_errors);
            ("heartbeats", v t.m_heartbeats);
            ("streams_opened", v t.m_streams_opened);
            ("streams_cancelled", v t.m_streams_cancelled);
            ("streams_aborted", v t.m_streams_aborted);
            ("stream_items", v t.m_stream_items);
            ("backpressure_sheds", v t.m_bp_sheds);
            ("version_mismatches", v t.m_version_mismatch);
            ( "journal",
              match t.journal with
              | None -> Json.Null
              | Some j ->
                  Json.Obj
                    [
                      ("entries", Json.Int (Journal.entries j));
                      ("appended", v t.m_journal_appended);
                      ("replayed", v t.m_journal_replayed);
                      ("replay_failed", v t.m_journal_replay_failed);
                      ("truncated_bytes", v t.m_journal_truncated);
                    ] );
          ] );
      ( "admission",
        Json.Obj
          [
            ("state", Json.String (Admission.state_name t.queue));
            ("depth", Json.Int a.Admission.depth);
            ("capacity", Json.Int a.Admission.capacity);
            ("admitted_full", Json.Int a.Admission.admitted_full);
            ("shed_cheap", Json.Int a.Admission.shed_cheap);
            ("shed_cached", Json.Int a.Admission.shed_cached);
            ("rejected", Json.Int a.Admission.rejected);
          ] );
      ( "engine",
        Json.Obj
          [
            ("coalesced", Json.Int (Engine.coalesced_count t.engine));
            ("caches", Engine.cache_stats_json t.engine);
          ] );
      ("metrics", Json.of_string (Metrics.to_json t.cfg.metrics));
    ]

let wake_accept (t : t) : unit =
  (* a throwaway self-connection unblocks the accept thread's [select] so
     it can observe [stopping]; every failure mode here means accept is
     already awake *)
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception _ -> ()
  | fd ->
      (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
       with _ -> ());
      (try Unix.close fd with _ -> ())

let request_stop (t : t) : unit =
  if not t.stopping then begin
    t.stopping <- true;
    Admission.close t.queue;
    (* unblock readers stuck on dead clients *)
    with_sessions t (fun () ->
        Hashtbl.iter
          (fun _ s -> try Unix.shutdown s.fd Unix.SHUTDOWN_ALL with _ -> ())
          t.sessions);
    wake_accept t
  end

(* Deadline of a request: explicit [deadline_ms], else the configured
   default, as an absolute clock value. *)
let deadline_of (t : t) (deadline_ms : float option) : float option =
  match
    (match deadline_ms with Some _ -> deadline_ms | None -> t.cfg.default_deadline_ms)
  with
  | Some ms -> Some (now () +. (ms /. 1000.0))
  | None -> None

let submit_ask (t : t) ~(bench : string)
    ~(qs : Protocol.wire_query list) ~(deadline_ms : float option) :
    (Protocol.answer list, Protocol.err) result =
  match Engine.find_bench t.engine bench with
  | None -> Error (Protocol.unknown_bench bench)
  | Some b -> (
      let mail =
        { mm = Mutex.create (); mc = Condition.create (); result = None }
      in
      let job =
        {
          j_bench = b;
          j_queries = qs;
          j_deadline = deadline_of t deadline_ms;
          j_sink = Batch mail;
        }
      in
      match Admission.submit t.queue job with
      | Admission.Admitted _ ->
          Metrics.add t.m_queue_depth 1;
          collect mail
      | Admission.Overloaded retry_after_ms ->
          Metrics.incr t.m_rejected;
          Error (Protocol.overloaded ~retry_after_ms)
      | Admission.Closed ->
          Metrics.incr t.m_rejected;
          Error Protocol.shutting_down)

(* Journal an accepted mutation. The op already succeeded in memory; an
   append failure (disk full, journal closed) degrades durability but
   must not un-accept the op — it is counted and the reply still stands. *)
let journal_append (t : t) (e : Journal.entry) : unit =
  match t.journal with
  | None -> ()
  | Some j -> (
      match Journal.append j e with
      | () -> Metrics.incr t.m_journal_appended
      | exception _ -> Metrics.incr t.m_journal_append_failed)

let handle_request (t : t) (req : Protocol.request) : Json.t =
  match req with
  | Protocol.Hello { client = _ } ->
      Protocol.ok
        [
          ("server", Json.String "scaf-eval");
          ("version", Json.Int Protocol.version);
          ( "benchmarks",
            Json.List
              (List.map (fun n -> Json.String n) (Engine.bench_names t.engine))
          );
        ]
  | Protocol.Ping -> Protocol.ok []
  | Protocol.Stats -> stats_json t
  | Protocol.Cancel ->
      (* a cancel outside a live stream is a harmless no-op *)
      Protocol.ok [ ("cancelled", Json.Bool false) ]
  | Protocol.Queries { bench } -> (
      match Engine.find_bench t.engine bench with
      | Some b -> Protocol.ok [ ("workload", Engine.queries_json b) ]
      | None -> Protocol.err_to_json (Protocol.unknown_bench bench))
  | Protocol.Report { bench } -> (
      match Engine.find_bench t.engine bench with
      | Some b ->
          Protocol.ok
            [ ("row", Protocol.fig8_row_to_json (Engine.report_row t.engine b)) ]
      | None -> Protocol.err_to_json (Protocol.unknown_bench bench))
  | Protocol.Edit { bench; edits } -> (
      (* inline, like Report: edits are rare, administrative, and must be
         serialized per benchmark anyway (the engine's bench mutex) *)
      match Engine.find_bench t.engine bench with
      | None -> Protocol.err_to_json (Protocol.unknown_bench bench)
      | Some b -> (
          match Engine.apply_edit t.engine b edits with
          | Ok (diff, stats) ->
              journal_append t (Journal.Edit { bench; edits });
              Protocol.ok
                [
                  ( "edit",
                    Protocol.edit_report_to_json
                      (Protocol.edit_report_of diff stats) );
                ]
          | Error diags ->
              Protocol.err_to_json (Protocol.edit_rejected diags)))
  | Protocol.Submit { prog } -> (
      (* inline, like Edit: a submission is rare and administrative; the
         lint gate runs before the expensive profiling, so a malformed
         program is rejected without burning worker time *)
      match
        Engine.submit t.engine ~max_est_queries:t.cfg.max_submit_queries prog
      with
      | Ok (report, _b) ->
          Metrics.incr (Metrics.counter t.cfg.metrics "lint.submit.accepted");
          journal_append t (Journal.Submit prog);
          Protocol.ok
            [ ("submitted", Protocol.submit_report_to_json report) ]
      | Error e ->
          Metrics.incr (Metrics.counter t.cfg.metrics "lint.submit.rejected");
          Protocol.err_to_json e)
  | Protocol.Ask { bench; q; deadline_ms } -> (
      match submit_ask t ~bench ~qs:[ q ] ~deadline_ms with
      | Ok [ a ] -> Protocol.ok [ ("answer", Protocol.answer_to_json a) ]
      | Ok _ -> Protocol.err_to_json (Protocol.internal "answer count mismatch")
      | Error e -> Protocol.err_to_json e)
  | Protocol.Ask_many { bench; qs; deadline_ms; stream = _ } -> (
      (* [stream = true] never reaches here (the connection thread owns
         the streaming path); treat a stray one as the batch fallback *)
      match submit_ask t ~bench ~qs ~deadline_ms with
      | Ok answers ->
          Protocol.ok
            [ ("answers", Json.List (List.map Protocol.answer_to_json answers)) ]
      | Error e -> Protocol.err_to_json e)
  | Protocol.Shutdown ->
      (* reply first; the teardown happens after the frame is on the wire *)
      Protocol.ok [ ("stopping", Json.Bool true) ]

(* ------------------------------------------------------------------ *)
(* Streaming replies                                                   *)
(* ------------------------------------------------------------------ *)

(* Drain a streaming job's outbox onto the wire. Runs on the connection
   thread. Returns [`Keep] when the connection can keep serving requests
   and [`Drop] when the stream died in a way that loses framing (slow
   consumer, vanished peer). While pumping, the socket is polled for a
   client [cancel] frame; any other pipelined request mid-stream is
   ignored by protocol contract. *)
let pump_stream (t : t) (s : session) (ob : outbox) : [ `Keep | `Drop ] =
  let items = ref 0 in
  let last_write = ref (now ()) in
  let dead = ref false in
  let write j =
    match Wire.write_frame ~write_budget:t.cfg.write_budget s.fd j with
    | Ok () ->
        last_write := now ();
        true
    | Error _ -> false
  in
  let poll_cancel () =
    match Unix.select [ s.fd ] [] [] 0.0 with
    | [], _, _ -> ()
    | _ -> (
        match
          Wire.read_frame ~max_len:t.cfg.max_frame
            ~frame_budget:t.cfg.frame_budget s.fd
        with
        | Ok j -> (
            match Protocol.request_of_json j with
            | Protocol.Cancel -> outbox_cancel ob
            | _ -> ()
            | exception _ -> ())
        | Error Wire.Idle -> ()
        | Error _ ->
            (* EOF or broken framing mid-stream: the consumer is gone *)
            dead := true)
    | exception _ -> ()
  in
  (* note: [t.stopping] is deliberately not checked here — an admitted
     streaming job drains through the worker pool on shutdown, and this
     pump keeps running so its answers are not silently dropped *)
  let rec pump () =
    poll_cancel ();
    if !dead then begin
      outbox_close ob;
      Metrics.incr t.m_streams_aborted;
      `Drop
    end
    else
      match outbox_take ob ~max_wait:0.2 with
      | `Item (i, a) ->
          if write (Protocol.stream_item_to_json i a) then begin
            incr items;
            Metrics.incr t.m_stream_items;
            pump ()
          end
          else begin
            outbox_close ob;
            Metrics.incr t.m_streams_aborted;
            `Drop
          end
      | `Err e ->
          (* stream aborted server-side (overrun / worker crash): report
             and hang up — mid-stream framing cannot be resumed *)
          Metrics.incr t.m_streams_aborted;
          ignore (write (Protocol.err_to_json e));
          `Drop
      | `Done ->
          let cancelled = with_outbox ob (fun () -> ob.o_cancel) in
          if cancelled then Metrics.incr t.m_streams_cancelled;
          let summary =
            {
              Protocol.st_count = !items;
              st_shed = with_outbox ob (fun () -> ob.o_shed);
              st_cancelled = cancelled;
            }
          in
          if write (Protocol.stream_end_to_json summary) then `Keep
          else `Drop
      | `Timeout ->
          (* the next answer is still cooking: heartbeat so the client
             (and any NAT in between) knows the stream is alive *)
          if
            t.cfg.heartbeat_interval > 0.0
            && now () -. !last_write > t.cfg.heartbeat_interval
          then
            if write Protocol.stream_heartbeat_json then begin
              Metrics.incr t.m_heartbeats;
              pump ()
            end
            else begin
              outbox_close ob;
              Metrics.incr t.m_streams_aborted;
              `Drop
            end
          else pump ()
  in
  Metrics.incr t.m_streams_opened;
  pump ()

(* Admit and serve one streaming [ask_many]. Admission errors are ordinary
   reply frames (the stream never opened). *)
let handle_stream (t : t) (s : session) ~(bench : string)
    ~(qs : Protocol.wire_query list) ~(deadline_ms : float option) :
    [ `Keep | `Drop ] =
  let reply_err e =
    match Wire.write_frame ~write_budget:t.cfg.write_budget s.fd
            (Protocol.err_to_json e)
    with
    | Ok () -> `Keep
    | Error _ -> `Drop
  in
  match Engine.find_bench t.engine bench with
  | None -> reply_err (Protocol.unknown_bench bench)
  | Some b -> (
      let ob = outbox_create ~cap:t.cfg.outbox_cap ~grace:t.cfg.stream_grace in
      let job =
        {
          j_bench = b;
          j_queries = qs;
          j_deadline = deadline_of t deadline_ms;
          j_sink = Stream ob;
        }
      in
      match Admission.submit t.queue job with
      | Admission.Admitted _ ->
          Metrics.add t.m_queue_depth 1;
          pump_stream t s ob
      | Admission.Overloaded retry_after_ms ->
          Metrics.incr t.m_rejected;
          reply_err (Protocol.overloaded ~retry_after_ms)
      | Admission.Closed ->
          Metrics.incr t.m_rejected;
          reply_err Protocol.shutting_down)

(* ------------------------------------------------------------------ *)
(* Connection threads                                                  *)
(* ------------------------------------------------------------------ *)

let close_session (t : t) (s : session) : unit =
  let removed =
    with_sessions t (fun () ->
        if Hashtbl.mem t.sessions s.sid then begin
          Hashtbl.remove t.sessions s.sid;
          true
        end
        else false)
  in
  if removed then Metrics.add t.m_sessions_open (-1);
  (try Unix.close s.fd with _ -> ())

let serve_connection (t : t) (s : session) : unit =
  Fun.protect
    ~finally:(fun () -> close_session t s)
    (fun () ->
      (* the receive timeout turns a quiet socket into periodic [Idle]
         results, giving this thread a heartbeat to notice stop/reap;
         the send timeout turns a wedged peer into EAGAIN ticks that the
         write budget converts into a failed write *)
      (try Unix.setsockopt_float s.fd Unix.SO_RCVTIMEO 0.2 with _ -> ());
      (try Unix.setsockopt_float s.fd Unix.SO_SNDTIMEO 0.2 with _ -> ());
      let last_write = ref (now ()) in
      let write j =
        match Wire.write_frame ~write_budget:t.cfg.write_budget s.fd j with
        | Ok () ->
            last_write := now ();
            true
        | Error _ -> false
      in
      let rec loop () =
        if t.stopping || s.reaped then ()
        else
          match
            Wire.read_frame ~max_len:t.cfg.max_frame
              ~frame_budget:t.cfg.frame_budget s.fd
          with
          | Error Wire.Idle ->
              (* keepalive: a quiet-but-alive connection gets a heartbeat
                 frame; a dead peer fails the write and we hang up *)
              if
                t.cfg.heartbeat_interval > 0.0
                && now () -. !last_write > t.cfg.heartbeat_interval
              then begin
                if write Protocol.stream_heartbeat_json then begin
                  Metrics.incr t.m_heartbeats;
                  loop ()
                end
              end
              else loop ()
          | Error Wire.Closed -> ()
          | Error (Wire.Truncated _ as e) | Error (Wire.Oversized _ as e) ->
              (* framing is lost — answer if possible, then hang up *)
              Metrics.incr t.m_bad_frames;
              ignore
                (write
                   (Protocol.err_to_json
                      (Protocol.bad_request (Wire.error_to_string e))))
          | Error (Wire.Bad_json msg) ->
              (* the frame was well-delimited: report and keep serving *)
              Metrics.incr t.m_bad_frames;
              if write
                   (Protocol.err_to_json
                      (Protocol.bad_request ("bad json: " ^ msg)))
              then loop ()
          | Ok j -> (
              s.last_active <- now ();
              Metrics.incr t.m_requests;
              (* the version gate runs before the op parser so vocabulary
                 drift between releases surfaces as [version_mismatch],
                 never as a confusing parse failure *)
              match Protocol.request_version j with
              | got when got <> Some Protocol.version ->
                  Metrics.incr t.m_version_mismatch;
                  if write
                       (Protocol.err_to_json (Protocol.version_mismatch ~got))
                  then loop ()
              | _ -> (
                  let t0 = now () in
                  match Protocol.request_of_json j with
                  | Protocol.Ask_many { bench; qs; deadline_ms; stream = true }
                    -> (
                      match handle_stream t s ~bench ~qs ~deadline_ms with
                      | `Keep ->
                          last_write := now ();
                          Metrics.incr t.m_answered;
                          Metrics.observe t.m_request_latency (now () -. t0);
                          loop ()
                      | `Drop -> ())
                  | req ->
                      let reply, is_shutdown =
                        match req with
                        | Protocol.Shutdown -> (handle_request t req, true)
                        | _ -> (handle_request t req, false)
                      in
                      (match Json.member "ok" reply with
                      | Some (Json.Bool true) -> Metrics.incr t.m_answered
                      | _ -> ());
                      Metrics.observe t.m_request_latency (now () -. t0);
                      if write reply then
                        if is_shutdown then request_stop t else loop ()
                  | exception Json.Parse_error msg ->
                      if write
                           (Protocol.err_to_json (Protocol.bad_request msg))
                      then loop ()
                  | exception e ->
                      if write
                           (Protocol.err_to_json
                              (Protocol.internal (Printexc.to_string e)))
                      then loop ()))
      in
      loop ())

(* ------------------------------------------------------------------ *)
(* Reaper                                                              *)
(* ------------------------------------------------------------------ *)

let reaper_loop (t : t) () : unit =
  while not t.stopping do
    Thread.delay (Float.min 0.5 (t.cfg.idle_timeout /. 2.0));
    let stale =
      with_sessions t (fun () ->
          Hashtbl.fold
            (fun _ s acc ->
              if
                (not s.reaped)
                && now () -. s.last_active > t.cfg.idle_timeout
              then begin
                s.reaped <- true;
                s :: acc
              end
              else acc)
            t.sessions [])
    in
    List.iter
      (fun s ->
        Metrics.incr t.m_sessions_reaped;
        (* wake the connection thread's blocked read; it closes the fd *)
        try Unix.shutdown s.fd Unix.SHUTDOWN_ALL with _ -> ())
      stale
  done

(* ------------------------------------------------------------------ *)
(* Listening socket lifecycle                                          *)
(* ------------------------------------------------------------------ *)

(** A socket file with no listener behind it (e.g. after [kill -9]) is
    stale and silently removed; a live listener is a hard error. *)
let prepare_socket_path (path : string) : unit =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
          false
      | exception _ -> false
    in
    (try Unix.close probe with _ -> ());
    if live then
      failwith (Printf.sprintf "daemon already listening on %s" path)
    else Unix.unlink path
  end

let spawn_session (t : t) (addr : Addr.t) (fd : Unix.file_descr)
    (conn_threads : Thread.t list ref) : unit =
  Addr.tune_accepted addr fd;
  let s =
    with_sessions t (fun () ->
        let sid = t.next_sid in
        t.next_sid <- sid + 1;
        let s = { sid; fd; peer = ""; last_active = now (); reaped = false } in
        Hashtbl.add t.sessions sid s;
        s)
  in
  Metrics.incr t.m_sessions_opened;
  Metrics.add t.m_sessions_open 1;
  conn_threads :=
    Thread.create (fun () -> serve_connection t s) () :: !conn_threads

let accept_loop (t : t) (workers : Thread.t list) (reaper : Thread.t) () :
    unit =
  let conn_threads = ref [] in
  let lfds = List.map fst t.listeners in
  (* transient-failure backoff (EMFILE and friends): exponential from
     10 ms, capped at 1 s, reset by the next successful accept *)
  let backoff = ref 0.01 in
  (try
     while not t.stopping do
       match Unix.select lfds [] [] 0.5 with
       | ready, _, _ ->
           List.iter
             (fun lfd ->
               let addr = List.assq lfd t.listeners in
               match Unix.accept lfd with
               | fd, _ ->
                   backoff := 0.01;
                   if t.stopping then (try Unix.close fd with _ -> ())
                   else spawn_session t addr fd conn_threads
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
               | exception
                   Unix.Unix_error
                     ( ( Unix.EMFILE | Unix.ENFILE | Unix.ECONNABORTED
                       | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ENOBUFS
                       | Unix.ECONNRESET ),
                       _,
                       _ ) ->
                   (* transient: count, back off boundedly, keep serving *)
                   Metrics.incr t.m_accept_errors;
                   Thread.delay !backoff;
                   backoff := Float.min 1.0 (!backoff *. 2.0)
               | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _)
                 ->
                   (* listening fd torn down under us: only valid during
                      stop *)
                   if not t.stopping then raise Exit)
             ready
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
           if not t.stopping then raise Exit
     done
   with Exit -> ());
  (* teardown: the accept thread owns the final cleanup *)
  request_stop t;
  List.iter Thread.join !conn_threads;
  List.iter Thread.join workers;
  Thread.join reaper;
  Engine.shutdown t.engine;
  List.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) t.listeners;
  (match t.journal with Some j -> Journal.close j | None -> ());
  try Unix.unlink t.cfg.socket_path with _ -> ()

(* Replay journaled mutations through the same pipeline live requests
   take. A replay failure (e.g. the lint rules tightened since the entry
   was accepted) degrades to a counter, not a crash: the daemon serves
   what it can recover. *)
let replay_journal (t : t) (entries : Journal.entry list) : unit =
  List.iter
    (fun e ->
      let ok =
        match e with
        | Journal.Submit prog -> (
            match
              Engine.submit t.engine
                ~max_est_queries:t.cfg.max_submit_queries prog
            with
            | Ok _ -> true
            | Error _ -> false
            | exception _ -> false)
        | Journal.Edit { bench; edits } -> (
            match Engine.find_bench t.engine bench with
            | None -> false
            | Some b -> (
                match Engine.apply_edit t.engine b edits with
                | Ok _ -> true
                | Error _ -> false
                | exception _ -> false))
      in
      Metrics.incr
        (if ok then t.m_journal_replayed else t.m_journal_replay_failed))
    entries

(** [start cfg] — load the benchmarks (the slow part), bind and listen,
    replay the journal if [state_dir] is set, spawn the service threads,
    return the running daemon. Every listener accepts connections by the
    time this returns. *)
let start (cfg : config) : t =
  (* a dead peer must error the writer, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let engine =
    Engine.create ~wrap:cfg.wrap ~static_nodep:cfg.static_nodep
      ~metrics:cfg.metrics ~jobs:cfg.jobs ~benchmarks:cfg.benchmarks ()
  in
  prepare_socket_path cfg.socket_path;
  let unix_addr = Addr.Unix_path cfg.socket_path in
  let unix_fd = Addr.listen unix_addr in
  let tcp_listener =
    match cfg.tcp with
    | None -> []
    | Some spec -> (
        let a = Addr.of_string ("tcp:" ^ spec) in
        match Addr.listen a with
        | fd -> [ (fd, Addr.bound fd a) ]
        | exception e ->
            (try Unix.close unix_fd with _ -> ());
            (try Unix.unlink cfg.socket_path with _ -> ());
            raise e)
  in
  let journal, journal_entries, recovery =
    match cfg.state_dir with
    | None -> (None, [], None)
    | Some dir ->
        let j, entries, r = Journal.open_and_replay ~dir in
        (Some j, entries, Some r)
  in
  let m = cfg.metrics in
  let t =
    {
      cfg;
      engine;
      listeners = (unix_fd, unix_addr) :: tcp_listener;
      journal;
      queue = Admission.create cfg.admission;
      sessions = Hashtbl.create 16;
      sm = Mutex.create ();
      next_sid = 1;
      stopping = false;
      started_at = now ();
      accept_thread = None;
      m_requests = Metrics.counter m "server.requests";
      m_answered = Metrics.counter m "server.answered";
      m_rejected = Metrics.counter m "server.rejected";
      m_shed = Metrics.counter m "server.shed";
      m_deadline_miss = Metrics.counter m "server.deadline_miss";
      m_coalesced = Metrics.counter m "server.coalesced";
      m_sessions_opened = Metrics.counter m "server.sessions.opened";
      m_sessions_open = Metrics.counter m "server.sessions.open";
      m_sessions_reaped = Metrics.counter m "server.sessions.reaped";
      m_bad_frames = Metrics.counter m "server.bad_frames";
      m_queue_depth = Metrics.counter m "server.queue_depth";
      m_request_latency = Metrics.histogram m "server.request_latency_s";
      m_accept_errors = Metrics.counter m "server.accept_errors";
      m_heartbeats = Metrics.counter m "server.heartbeats";
      m_streams_opened = Metrics.counter m "server.streams.opened";
      m_streams_cancelled = Metrics.counter m "server.streams.cancelled";
      m_streams_aborted = Metrics.counter m "server.streams.aborted";
      m_stream_items = Metrics.counter m "server.streams.items";
      m_bp_sheds = Metrics.counter m "server.backpressure.sheds";
      m_version_mismatch = Metrics.counter m "server.version_mismatch";
      m_journal_appended = Metrics.counter m "server.journal.appended";
      m_journal_append_failed =
        Metrics.counter m "server.journal.append_failed";
      m_journal_replayed = Metrics.counter m "server.journal.replayed";
      m_journal_replay_failed =
        Metrics.counter m "server.journal.replay_failed";
      m_journal_truncated =
        Metrics.counter m "server.journal.truncated_bytes";
    }
  in
  (match recovery with
  | Some r ->
      Metrics.add t.m_journal_truncated r.Journal.truncated_bytes;
      replay_journal t journal_entries
  | None -> ());
  let workers =
    List.init (max 1 cfg.workers) (fun _ -> Thread.create (worker_loop t) ())
  in
  let reaper = Thread.create (reaper_loop t) () in
  t.accept_thread <- Some (Thread.create (accept_loop t workers reaper) ());
  t

(** The endpoint strings this daemon is actually serving on — the TCP one
    has any requested port 0 resolved to the kernel-assigned port, so a
    test can start on an ephemeral port and learn where to connect. *)
let endpoints (t : t) : string list =
  List.map (fun (_, a) -> Addr.to_string a) t.listeners

(** The TCP endpoint (["tcp:HOST:PORT"]) if one is listening. *)
let tcp_endpoint (t : t) : string option =
  List.find_map
    (function
      | _, (Addr.Tcp _ as a) -> Some (Addr.to_string a) | _ -> None)
    t.listeners

(** Block until the daemon has fully stopped (socket unlinked). *)
let wait (t : t) : unit =
  match t.accept_thread with Some th -> Thread.join th | None -> ()

(** Stop the daemon and wait for the teardown to finish. Idempotent. *)
let stop (t : t) : unit =
  request_stop t;
  wait t

(** [run cfg] — start and serve until a [shutdown] request (or a stop from
    another thread) tears the daemon down. *)
let run (cfg : config) : unit = wait (start cfg)
