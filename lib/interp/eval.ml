(** The MIR interpreter.

    Executes [@main] of a module with a per-run {!Memory.t}, an optional
    input vector (read by the [@input] intrinsic — how "train" and "ref"
    workloads differ), instrumentation {!Hooks.t}, and a fuel bound. Raises
    {!Runtime.Misspec} when an inserted validation check fails, and
    {!Memory.Trap} on genuine memory errors. *)

open Scaf_ir

exception Program_exit of int64

type result = {
  ret : int64;
  output : int64 list;  (** values passed to [@print], in order *)
  instrs_executed : int;
  cheap_checks : int;
  expensive_checks : int;
  checkpoints : int;  (** loop-invocation checkpoints taken *)
  rollbacks : int;
      (** misspeculations recovered in place by checkpoint rollback *)
  recovered_tags : int64 list;
      (** assertion tags squashed during rollback recovery *)
}

type state = {
  m : Irmod.t;
  mem : Memory.t;
  rt : Runtime.t;
  hooks : Hooks.t;
  input : int64 array;
  mutable fuel : int;
  mutable output_rev : int64 list;
  mutable executed : int;
  mutable pending_checkpoint : int option;
      (** loop ordinal set by [scaf.checkpoint]; consumed by the next
          control-flow edge, which opens the checkpointed region *)
  globals : (string, int64) Hashtbl.t;
}

let value_of (st : state) (env : (string, int64) Hashtbl.t) (v : Value.t) :
    int64 =
  match v with
  | Value.Int i -> i
  | Value.Null -> 0L
  | Value.Undef -> 0L
  | Value.Global g -> (
      match Hashtbl.find_opt st.globals g with
      | Some a -> a
      | None -> Memory.trap "unknown global @%s" g)
  | Value.Reg r -> (
      match Hashtbl.find_opt env r with
      | Some x -> x
      | None -> Memory.trap "read of unset register %%%s" r)

let apply_binop (op : Instr.binop) (a : int64) (b : int64) : int64 =
  let open Int64 in
  match op with
  | Instr.Add -> add a b
  | Instr.Sub -> sub a b
  | Instr.Mul -> mul a b
  | Instr.Sdiv -> if equal b 0L then Memory.trap "division by zero" else div a b
  | Instr.Srem -> if equal b 0L then Memory.trap "division by zero" else rem a b
  | Instr.And -> logand a b
  | Instr.Or -> logor a b
  | Instr.Xor -> logxor a b
  | Instr.Shl -> shift_left a (to_int (logand b 63L))
  | Instr.Lshr -> shift_right_logical a (to_int (logand b 63L))
  | Instr.Ashr -> shift_right a (to_int (logand b 63L))

let apply_cmp (c : Instr.cmp) (a : int64) (b : int64) : int64 =
  let r =
    match c with
    | Instr.Eq -> Int64.equal a b
    | Instr.Ne -> not (Int64.equal a b)
    | Instr.Slt -> Int64.compare a b < 0
    | Instr.Sle -> Int64.compare a b <= 0
    | Instr.Sgt -> Int64.compare a b > 0
    | Instr.Sge -> Int64.compare a b >= 0
  in
  if r then 1L else 0L

(* Execute an intrinsic (or trap). [ctx] is the calling context including
   the call instruction itself at its head. *)
let intrinsic (st : state) ~(instr : Instr.t) ~(callee : string)
    ~(args : int64 list) ~(ctx : int list) : int64 =
  let arg n =
    match List.nth_opt args n with
    | Some v -> v
    | None -> Memory.trap "@%s: missing argument %d" callee n
  in
  match callee with
  | "malloc" | "calloc" ->
      let size = Int64.to_int (arg 0) in
      let o =
        Memory.alloc st.mem ~size ~kind:(Memory.KHeap instr.Instr.id) ~ctx
      in
      st.hooks.Hooks.on_alloc ~obj:o;
      st.hooks.Hooks.on_ptr ~instr ~addr:o.Memory.base ~obj:(Some o) ~ctx;
      o.Memory.base
  | "free" ->
      let o = Memory.free st.mem (arg 0) in
      Runtime.note_free st.rt o;
      st.hooks.Hooks.on_free ~obj:o;
      0L
  | "memcpy" ->
      Memory.memcpy st.mem ~dst:(arg 0) ~src:(arg 1)
        ~len:(Int64.to_int (arg 2));
      arg 0
  | "memset" ->
      Memory.memset st.mem ~dst:(arg 0) ~byte:(arg 1)
        ~len:(Int64.to_int (arg 2));
      arg 0
  | "print" ->
      st.output_rev <- arg 0 :: st.output_rev;
      0L
  | "input" ->
      let n = Array.length st.input in
      if n = 0 then 0L
      else
        let i = Int64.to_int (Int64.rem (Int64.abs (arg 0)) (Int64.of_int n)) in
        st.input.(i)
  | "exit" -> raise (Program_exit (arg 0))
  | "scaf.misspec" ->
      Runtime.beacon st.rt ~tag:(arg 0);
      0L
  | "scaf.checkpoint" ->
      st.pending_checkpoint <- Some (Int64.to_int (arg 0));
      0L
  | "scaf.commit" ->
      Runtime.commit st.rt ~loop_ord:(Int64.to_int (arg 0));
      0L
  | "scaf.check_residue" ->
      Runtime.check_residue st.rt ~addr:(arg 0) ~allowed:(arg 1) ~tag:(arg 2);
      0L
  | "scaf.check_heap" ->
      Runtime.check_heap st.rt ~addr:(arg 0)
        ~heap_tag:(Int64.to_int (arg 1))
        ~tag:(arg 2);
      0L
  | "scaf.check_not_heap" ->
      Runtime.check_not_heap st.rt ~addr:(arg 0)
        ~heap_tag:(Int64.to_int (arg 1))
        ~tag:(arg 2);
      0L
  | "scaf.ms_forbid" ->
      Runtime.ms_forbid st.rt ~src:(arg 0) ~dst:(arg 1);
      0L
  | "scaf.set_heap" ->
      Runtime.set_heap st.rt ~addr:(arg 0) ~heap_tag:(Int64.to_int (arg 1));
      0L
  | "scaf.check_value" ->
      Runtime.check_value st.rt ~value:(arg 0) ~predicted:(arg 1) ~tag:(arg 2);
      0L
  | "scaf.iter_check" ->
      Runtime.iter_check st.rt ~heap_tag:(Int64.to_int (arg 0)) ~tag:(arg 1);
      0L
  | "scaf.ms_read" ->
      Runtime.ms_read st.rt ~addr:(arg 0) ~size:(Int64.to_int (arg 1))
        ~group:(arg 2) ~tag:(arg 3);
      0L
  | "scaf.ms_write" ->
      Runtime.ms_write st.rt ~addr:(arg 0) ~size:(Int64.to_int (arg 1))
        ~group:(arg 2) ~tag:(arg 3);
      0L
  | _ ->
      (* declared externals without side effects are executable no-ops *)
      if
        Irmod.has_attr st.m callee Func.Readnone
        || Irmod.has_attr st.m callee Func.Readonly
      then 0L
      else Memory.trap "call to undefined function @%s" callee

let rec exec_func (st : state) (f : Func.t) (args : int64 list)
    (ctx : int list) : int64 =
  st.hooks.Hooks.on_call_enter f ~ctx;
  let env : (string, int64) Hashtbl.t = Hashtbl.create 32 in
  (try List.iter2 (fun p a -> Hashtbl.replace env p a) f.Func.params args
   with Invalid_argument _ ->
     Memory.trap "@%s called with %d args, expects %d" f.Func.name
       (List.length args)
       (List.length f.Func.params));
  let frame_objs : Memory.obj list ref = ref [] in
  let finish v =
    List.iter (fun o -> Memory.kill st.mem o) !frame_objs;
    st.hooks.Hooks.on_call_exit f;
    v
  in
  let rec exec_block (b : Block.t) (prev : string option) : int64 =
    st.hooks.Hooks.on_block f b;
    (* Phis evaluate in parallel against the pre-block environment. *)
    let phis, rest =
      let rec split acc = function
        | ({ Instr.kind = Instr.Phi _; _ } as i) :: tl -> split (i :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      split [] b.Block.instrs
    in
    (if phis <> [] then
       let prev =
         match prev with
         | Some p -> p
         | None -> Memory.trap "phi in entry block of @%s" f.Func.name
       in
       let resolved =
         List.map
           (fun (i : Instr.t) ->
             match i.Instr.kind with
             | Instr.Phi incoming -> (
                 match
                   List.find_opt (fun (l, _) -> String.equal l prev) incoming
                 with
                 | Some (_, v) -> (i, value_of st env v)
                 | None ->
                     Memory.trap "phi %d has no arm for predecessor %s"
                       i.Instr.id prev)
             | _ -> assert false)
           phis
       in
       List.iter
         (fun ((i : Instr.t), v) ->
           st.hooks.Hooks.on_instr i;
           st.executed <- st.executed + 1;
           match i.Instr.dst with
           | Some d -> Hashtbl.replace env d v
           | None -> ())
         resolved);
    List.iter (fun i -> step i) rest;
    (* Terminator *)
    st.fuel <- st.fuel - 1;
    st.executed <- st.executed + 1;
    if st.fuel <= 0 then Memory.trap "fuel exhausted";
    let goto l =
      st.hooks.Hooks.on_edge ~src_term:b.Block.term.Instr.tid
        ~src:b.Block.label ~dst:l ~func:f;
      match Func.find_block f l with
      | None -> Memory.trap "branch to unknown block %s" l
      | Some nb -> (
          let continue () = exec_block nb (Some b.Block.label) in
          match st.pending_checkpoint with
          | None -> continue ()
          | Some loop_ord ->
              (* Loop-invocation checkpoint (§4.2.5): on misspeculation
                 inside the region, restore memory/runtime/frame state,
                 squash the offending assertion and replay from this edge.
                 The replayed code is semantically the original (checks are
                 only ever inserted adjacent to existing instructions), so
                 squash-and-replay preserves the original semantics. *)
              st.pending_checkpoint <- None;
              let id = Runtime.checkpoint st.rt ~loop_ord in
              let env_snap = Hashtbl.copy env in
              let objs_snap = !frame_objs in
              let out_snap = st.output_rev in
              let rec attempt () =
                try continue ()
                with Runtime.Misspec { tag } when Runtime.is_active st.rt id ->
                  Runtime.rollback_to st.rt id;
                  Runtime.disable_tag st.rt tag;
                  (* a check that fired between [scaf.checkpoint] and its
                     edge leaves the flag set; drop it or the replay would
                     open a checkpoint at the wrong edge *)
                  st.pending_checkpoint <- None;
                  Hashtbl.reset env;
                  Hashtbl.iter (fun r v -> Hashtbl.replace env r v) env_snap;
                  frame_objs := objs_snap;
                  st.output_rev <- out_snap;
                  attempt ()
              in
              attempt ())
    in
    match b.Block.term.Instr.tkind with
    | Instr.Br l -> goto l
    | Instr.Condbr { cond; if_true; if_false } ->
        if not (Int64.equal (value_of st env cond) 0L) then goto if_true
        else goto if_false
    | Instr.Ret v ->
        finish (match v with Some v -> value_of st env v | None -> 0L)
    | Instr.Unreachable -> Memory.trap "reached 'unreachable' in @%s" f.Func.name
  and step (i : Instr.t) : unit =
    st.hooks.Hooks.on_instr i;
    st.fuel <- st.fuel - 1;
    st.executed <- st.executed + 1;
    if st.fuel <= 0 then Memory.trap "fuel exhausted";
    let set v = match i.Instr.dst with
      | Some d -> Hashtbl.replace env d v
      | None -> ()
    in
    match i.Instr.kind with
    | Instr.Alloca { size } ->
        let o =
          Memory.alloc st.mem ~size ~kind:(Memory.KStack i.Instr.id) ~ctx
        in
        frame_objs := o :: !frame_objs;
        st.hooks.Hooks.on_alloc ~obj:o;
        st.hooks.Hooks.on_ptr ~instr:i ~addr:o.Memory.base ~obj:(Some o) ~ctx;
        set o.Memory.base
    | Instr.Load { ptr; size } ->
        let addr = value_of st env ptr in
        let v = Memory.load st.mem addr size in
        st.hooks.Hooks.on_load ~instr:i ~addr ~size ~value:v
          ~obj:(Option.map fst (Memory.find_addr_opt st.mem addr))
          ~ctx;
        set v
    | Instr.Store { ptr; value; size } ->
        let addr = value_of st env ptr in
        let v = value_of st env value in
        Memory.store st.mem addr size v;
        st.hooks.Hooks.on_store ~instr:i ~addr ~size ~value:v
          ~obj:(Option.map fst (Memory.find_addr_opt st.mem addr))
          ~ctx
    | Instr.Gep { base; offset } ->
        let a = Int64.add (value_of st env base) (value_of st env offset) in
        st.hooks.Hooks.on_ptr ~instr:i ~addr:a
          ~obj:(Option.map fst (Memory.find_addr_opt st.mem a))
          ~ctx;
        set a
    | Instr.Binop (op, a, b) ->
        set (apply_binop op (value_of st env a) (value_of st env b))
    | Instr.Icmp (c, a, b) ->
        set (apply_cmp c (value_of st env a) (value_of st env b))
    | Instr.Select { cond; if_true; if_false } ->
        set
          (if not (Int64.equal (value_of st env cond) 0L) then
             value_of st env if_true
           else value_of st env if_false)
    | Instr.Call { callee; args } -> (
        let argv = List.map (value_of st env) args in
        match Irmod.find_func st.m callee with
        | Some g -> set (exec_func st g argv (i.Instr.id :: ctx))
        | None -> set (intrinsic st ~instr:i ~callee ~args:argv ~ctx:(i.Instr.id :: ctx)))
    | Instr.Phi _ -> Memory.trap "phi %d not at block start" i.Instr.id
  in
  exec_block (Func.entry f) None

(** [run ?hooks ?fuel ?input ?entry m] executes [m] and returns the result.
    [entry] defaults to ["main"]. *)
let run ?(hooks = Hooks.nop) ?(fuel = 50_000_000) ?(input = [||])
    ?(entry = "main") (m : Irmod.t) : result =
  let mem = Memory.create () in
  let rt = Runtime.create mem in
  let st =
    {
      m;
      mem;
      rt;
      hooks;
      input;
      fuel;
      output_rev = [];
      executed = 0;
      pending_checkpoint = None;
      globals = Hashtbl.create 16;
    }
  in
  (* Globals live for the whole run. *)
  List.iter
    (fun (g : Irmod.global) ->
      let o =
        Memory.alloc mem ~size:g.Irmod.gsize ~kind:(Memory.KGlobal g.Irmod.gname)
          ~ctx:[]
      in
      Hashtbl.replace st.globals g.Irmod.gname o.Memory.base;
      List.iter
        (fun (off, v) ->
          let size = if off + 8 <= g.Irmod.gsize then 8 else 1 in
          Memory.store mem (Int64.add o.Memory.base (Int64.of_int off)) size v)
        g.Irmod.ginit)
    m.Irmod.globals;
  let f =
    match Irmod.find_func m entry with
    | Some f -> f
    | None -> Memory.trap "no @%s function" entry
  in
  let args = List.map (fun _ -> 0L) f.Func.params in
  let ret = try exec_func st f args [] with Program_exit v -> v in
  {
    ret;
    output = List.rev st.output_rev;
    instrs_executed = st.executed;
    cheap_checks = st.rt.Runtime.cheap_checks;
    expensive_checks = st.rt.Runtime.expensive_checks;
    checkpoints = st.rt.Runtime.checkpoints_taken;
    rollbacks = st.rt.Runtime.rollbacks;
    recovered_tags = Runtime.disabled_tags st.rt;
  }
