(** The speculation validation runtime (§4.2.5 and Figure 7).

    Clients that act on SCAF responses insert validation code; this module
    implements the semantics of those checks inside the interpreter, and is
    also what the Figure 7 microbenchmarks measure:

    - cheap checks: pointer-residue bit tests, points-to heap-tag tests,
      value-prediction equality tests, control-speculation "misspec beacons"
      on speculatively dead paths, short-lived liveness balance checks;
    - the expensive check: shadow-memory memory-speculation validation
      ([ms_read]/[ms_write]), which does metadata lookups and updates on
      every access. *)

exception Misspec of { tag : int64 }

let misspec ~(tag : int64) = raise (Misspec { tag })

(** One active checkpoint: the memory undo-log mark plus snapshots of the
    speculative runtime state (shadow memory, heap-tag balances). *)
type checkpoint = {
  ck_id : int;
  ck_loop : int;  (** static loop ordinal the instrumentation assigned *)
  ck_mem : Memory.mark;
  ck_shadow : (int64, int64) Hashtbl.t;
  ck_tag_live : (int * int) list;
}

type t = {
  mem : Memory.t;
  shadow : (int64, int64) Hashtbl.t;
      (** shadow memory: byte address -> last writer group *)
  tag_live : (int, int ref) Hashtbl.t;
      (** per-heap-tag count of live separated objects *)
  ms_forbidden : (int64 * int64, unit) Hashtbl.t;
      (** (writer group, reader group) pairs asserted dependence-free *)
  disabled : (int64, unit) Hashtbl.t;
      (** assertion tags squashed by a rollback: their checks are skipped
          for the rest of the run (the speculation was wrong; the replayed
          code is semantically the original, so skipping is sound) *)
  mutable stack : checkpoint list;  (** active checkpoints, innermost first *)
  mutable next_ck_id : int;
  mutable cheap_checks : int;
  mutable expensive_checks : int;
  mutable checkpoints_taken : int;
  mutable commits : int;
  mutable rollbacks : int;
}

let create (mem : Memory.t) : t =
  {
    mem;
    shadow = Hashtbl.create 1024;
    tag_live = Hashtbl.create 8;
    ms_forbidden = Hashtbl.create 16;
    disabled = Hashtbl.create 8;
    stack = [];
    next_ck_id = 0;
    cheap_checks = 0;
    expensive_checks = 0;
    checkpoints_taken = 0;
    commits = 0;
    rollbacks = 0;
  }

let tag_disabled (t : t) (tag : int64) : bool = Hashtbl.mem t.disabled tag

(** [disable_tag t tag] squashes the assertion behind [tag]; invoked when a
    rollback attributes a misspeculation to it. *)
let disable_tag (t : t) (tag : int64) : unit = Hashtbl.replace t.disabled tag ()

let disabled_tags (t : t) : int64 list =
  Hashtbl.fold (fun tag () acc -> tag :: acc) t.disabled []

(* ---- checkpoint / commit / rollback (§4.2.5 recovery) ---- *)

(** [checkpoint t ~loop_ord] opens a loop-invocation checkpoint and returns
    its id. Memory journaling stays on while any checkpoint is active. *)
let checkpoint (t : t) ~(loop_ord : int) : int =
  if t.stack = [] then Memory.set_journaling t.mem true;
  let id = t.next_ck_id in
  t.next_ck_id <- id + 1;
  t.checkpoints_taken <- t.checkpoints_taken + 1;
  t.stack <-
    {
      ck_id = id;
      ck_loop = loop_ord;
      ck_mem = Memory.mark t.mem;
      ck_shadow = Hashtbl.copy t.shadow;
      ck_tag_live =
        Hashtbl.fold (fun k c acc -> (k, !c) :: acc) t.tag_live [];
    }
    :: t.stack;
  id

(** [commit t ~loop_ord] retires the innermost checkpoint, provided it was
    opened for the same loop — commits reached without the matching
    checkpoint (e.g. an exit block with an extra-loop predecessor) are
    no-ops. *)
let commit (t : t) ~(loop_ord : int) : unit =
  match t.stack with
  | ck :: rest when ck.ck_loop = loop_ord ->
      t.stack <- rest;
      t.commits <- t.commits + 1;
      if rest = [] then Memory.set_journaling t.mem false
  | _ -> ()

let is_active (t : t) (id : int) : bool =
  List.exists (fun ck -> ck.ck_id = id) t.stack

(** [rollback_to t id] unwinds memory and speculative runtime state to
    checkpoint [id], discarding any inner checkpoints interrupted by the
    misspeculation. The checkpoint stays active for the replay. *)
let rollback_to (t : t) (id : int) : unit =
  let rec pop = function
    | ck :: rest when ck.ck_id <> id -> pop rest
    | stack -> stack
  in
  (match pop t.stack with
  | [] -> invalid_arg "Runtime.rollback_to: unknown checkpoint"
  | ck :: _ as stack ->
      t.stack <- stack;
      Memory.undo_to t.mem ck.ck_mem;
      Hashtbl.reset t.shadow;
      Hashtbl.iter (fun a g -> Hashtbl.replace t.shadow a g) ck.ck_shadow;
      Hashtbl.reset t.tag_live;
      List.iter
        (fun (k, c) -> Hashtbl.replace t.tag_live k (ref c))
        ck.ck_tag_live);
  t.rollbacks <- t.rollbacks + 1

(** Declare that no dependence from group [src] to group [dst] may
    manifest (memory-speculation setup, inserted at program entry). *)
let ms_forbid (t : t) ~(src : int64) ~(dst : int64) : unit =
  Hashtbl.replace t.ms_forbidden (src, dst) ()

(* ---- cheap checks ---- *)

(** Control-speculation beacon on a speculatively dead path. *)
let beacon (t : t) ~(tag : int64) : unit =
  t.cheap_checks <- t.cheap_checks + 1;
  if not (tag_disabled t tag) then misspec ~tag

(** Residue check: the pointer's 4 least-significant bits must be a member
    of the profiled residue set [allowed] (a 16-bit set). *)
let check_residue (t : t) ~(addr : int64) ~(allowed : int64) ~(tag : int64) :
    unit =
  t.cheap_checks <- t.cheap_checks + 1;
  let residue = Int64.to_int (Int64.logand addr 15L) in
  if
    Int64.logand (Int64.shift_right_logical allowed residue) 1L = 0L
    && not (tag_disabled t tag)
  then misspec ~tag

(** Heap check: the object holding [addr] must have been separated into
    logical heap [heap_tag] (Figure 7a: [addr & MASK != EXPECTED]). *)
let check_heap (t : t) ~(addr : int64) ~(heap_tag : int) ~(tag : int64) : unit
    =
  t.cheap_checks <- t.cheap_checks + 1;
  match Memory.find_addr_opt t.mem addr with
  | Some (o, _) when o.Memory.heap_tag = heap_tag -> ()
  | _ -> if not (tag_disabled t tag) then misspec ~tag

(** Inverse heap check: misspeculate when the object holding [addr] *is* in
    logical heap [heap_tag] (guards writes against the read-only heap). *)
let check_not_heap (t : t) ~(addr : int64) ~(heap_tag : int) ~(tag : int64) :
    unit =
  t.cheap_checks <- t.cheap_checks + 1;
  match Memory.find_addr_opt t.mem addr with
  | Some (o, _) when o.Memory.heap_tag = heap_tag ->
      if not (tag_disabled t tag) then misspec ~tag
  | _ -> ()

(** Move the object holding [addr] to logical heap [heap_tag] — the runtime
    effect of re-allocating it to a separate heap at its allocation site. *)
let set_heap (t : t) ~(addr : int64) ~(heap_tag : int) : unit =
  match Memory.find_addr_opt t.mem addr with
  | Some (o, _) ->
      Memory.set_heap_tag t.mem o heap_tag;
      let c =
        match Hashtbl.find_opt t.tag_live heap_tag with
        | Some c -> c
        | None ->
            let c = ref 0 in
            Hashtbl.replace t.tag_live heap_tag c;
            c
      in
      incr c
  | None -> ()

(** Called by the interpreter when a separated object dies. *)
let note_free (t : t) (o : Memory.obj) : unit =
  if o.Memory.heap_tag <> 0 then
    match Hashtbl.find_opt t.tag_live o.Memory.heap_tag with
    | Some c -> decr c
    | None -> ()

(** Value-prediction check (Figure: compare loaded value with prediction). *)
let check_value (t : t) ~(value : int64) ~(predicted : int64) ~(tag : int64) :
    unit =
  t.cheap_checks <- t.cheap_checks + 1;
  if not (Int64.equal value predicted) && not (tag_disabled t tag) then
    misspec ~tag

(** Short-lived balance check at iteration end: every object separated into
    [heap_tag] must have been freed within the iteration. *)
let iter_check (t : t) ~(heap_tag : int) ~(tag : int64) : unit =
  t.cheap_checks <- t.cheap_checks + 1;
  match Hashtbl.find_opt t.tag_live heap_tag with
  | Some c when !c <> 0 -> if not (tag_disabled t tag) then misspec ~tag
  | _ -> ()

(* ---- the expensive check: memory speculation via shadow memory ---- *)

(** [ms_write] records the writing group on the written bytes, after
    checking that no forbidden output dependence manifests (Figure 7b:
    load shadow, check metadata, update metadata, store shadow). *)
let ms_write (t : t) ~(addr : int64) ~(size : int) ~(group : int64)
    ~(tag : int64) : unit =
  t.expensive_checks <- t.expensive_checks + 1;
  for k = 0 to size - 1 do
    let a = Int64.add addr (Int64.of_int k) in
    (match Hashtbl.find_opt t.shadow a with
    | Some g when Hashtbl.mem t.ms_forbidden (g, group) ->
        if not (tag_disabled t tag) then misspec ~tag
    | _ -> ());
    Hashtbl.replace t.shadow a group
  done

(** [ms_read] checks that the last writer of the read bytes is allowed to
    feed this reading group. *)
let ms_read (t : t) ~(addr : int64) ~(size : int) ~(group : int64)
    ~(tag : int64) : unit =
  t.expensive_checks <- t.expensive_checks + 1;
  for k = 0 to size - 1 do
    let a = Int64.add addr (Int64.of_int k) in
    match Hashtbl.find_opt t.shadow a with
    | Some g when Hashtbl.mem t.ms_forbidden (g, group) ->
        if not (tag_disabled t tag) then misspec ~tag
    | _ -> ()
  done
