(** Dynamic memory-dependence watcher — the runtime oracle behind the audit
    layer.

    Observes every load and store through {!Hooks} and records, per loop,
    which (src instr -> dst instr) memory dependences actually manifested
    (byte-granular, split intra-/cross-iteration), plus the set of
    instruction pairs whose accesses ever overlapped in memory at all. A
    static answer of "no dependence" (or "no alias") that contradicts these
    observations is definitionally unsound — the program just did it.

    This watcher deliberately knows nothing about loops itself: the active
    loop-invocation/iteration scope is supplied by a [snapshot] callback
    (wired to [Scaf_profile.Tracker] by clients — this library sits below
    the profile layer and cannot depend on it). *)

type access = { ainstr : int; asnap : (string * int * int) list }

type byte_state = {
  mutable writer : access option;
  mutable readers : access list;
  mutable touched : int list;  (** every instr that ever accessed this byte *)
}

type t = {
  shadow : (int64, byte_state) Hashtbl.t;
  deps : (string, (int * int * bool, unit) Hashtbl.t) Hashtbl.t;
      (** lid -> set of (src instr, dst instr, cross-iteration?) *)
  overlaps : (int * int, unit) Hashtbl.t;
      (** unordered instr pairs (min, max) that touched a common byte *)
}

let create () : t =
  {
    shadow = Hashtbl.create 4096;
    deps = Hashtbl.create 16;
    overlaps = Hashtbl.create 256;
  }

(** Interpreter addresses are reused between runs: call between runs to
    clear the transient shadow state while keeping the accumulated
    dependence and overlap sets. *)
let reset_run (t : t) = Hashtbl.reset t.shadow

let dep_tbl (t : t) lid =
  match Hashtbl.find_opt t.deps lid with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 64 in
      Hashtbl.replace t.deps lid tbl;
      tbl

(* A dependence src -> dst holds for every loop invocation both accesses
   executed in (same attribution rule as the memory-dependence profiler). *)
let add_dep (t : t) (src : access) (dst : access) =
  List.iter
    (fun (lid, inv_d, iter_d) ->
      match
        List.find_opt (fun (l, _, _) -> String.equal l lid) src.asnap
      with
      | Some (_, inv_s, iter_s) when inv_s = inv_d ->
          let key = (src.ainstr, dst.ainstr, iter_d <> iter_s) in
          Hashtbl.replace (dep_tbl t lid) key ()
      | _ -> ())
    dst.asnap

let byte_state (t : t) a =
  match Hashtbl.find_opt t.shadow a with
  | Some bs -> bs
  | None ->
      let bs = { writer = None; readers = []; touched = [] } in
      Hashtbl.replace t.shadow a bs;
      bs

let touch (t : t) (bs : byte_state) (instr : int) =
  List.iter
    (fun j ->
      if j <> instr then
        Hashtbl.replace t.overlaps (min instr j, max instr j) ())
    bs.touched;
  if not (List.mem instr bs.touched) then bs.touched <- instr :: bs.touched

let record_store (t : t) ~(instr : int) ~(addr : int64) ~(size : int)
    ~(snap : (string * int * int) list) =
  let acc = { ainstr = instr; asnap = snap } in
  for k = 0 to size - 1 do
    let bs = byte_state t (Int64.add addr (Int64.of_int k)) in
    touch t bs instr;
    List.iter (fun r -> add_dep t r acc) bs.readers;
    (match bs.writer with Some w -> add_dep t w acc | None -> ());
    bs.writer <- Some acc;
    bs.readers <- []
  done

let record_load (t : t) ~(instr : int) ~(addr : int64) ~(size : int)
    ~(snap : (string * int * int) list) =
  let acc = { ainstr = instr; asnap = snap } in
  for k = 0 to size - 1 do
    let bs = byte_state t (Int64.add addr (Int64.of_int k)) in
    touch t bs instr;
    (match bs.writer with Some w -> add_dep t w acc | None -> ());
    bs.readers <- acc :: List.filter (fun r -> r.ainstr <> instr) bs.readers
  done

(** Hooks recording through this watcher; [snapshot] supplies the active
    loop scopes [(lid, invocation, iteration)], innermost first. Combine
    with tracker-driving hooks via {!Hooks.combine}. *)
let hooks (t : t) ~(snapshot : unit -> (string * int * int) list) : Hooks.t =
  {
    Hooks.nop with
    Hooks.on_load =
      (fun ~instr ~addr ~size ~value:_ ~obj:_ ~ctx:_ ->
        record_load t ~instr:instr.Scaf_ir.Instr.id ~addr ~size
          ~snap:(snapshot ()));
    on_store =
      (fun ~instr ~addr ~size ~value:_ ~obj:_ ~ctx:_ ->
        record_store t ~instr:instr.Scaf_ir.Instr.id ~addr ~size
          ~snap:(snapshot ()));
  }

(** Did a dependence from [src] to [dst] manifest in loop [lid]? *)
let observed (t : t) ~(lid : string) ~(src : int) ~(dst : int) ~(cross : bool)
    : bool =
  match Hashtbl.find_opt t.deps lid with
  | Some tbl -> Hashtbl.mem tbl (src, dst, cross)
  | None -> false

(** All observed dependences of loop [lid], as [(src, dst, cross)]. *)
let deps_of (t : t) ~(lid : string) : (int * int * bool) list =
  match Hashtbl.find_opt t.deps lid with
  | Some tbl -> Hashtbl.fold (fun k () acc -> k :: acc) tbl []
  | None -> []

(** Loops that manifested at least one dependence. *)
let loops (t : t) : string list =
  Hashtbl.fold (fun lid _ acc -> lid :: acc) t.deps [] |> List.sort compare

(** Did accesses of instructions [a] and [b] ever touch a common byte?
    (Evidence that their pointers alias at runtime.) *)
let overlapped (t : t) ~(a : int) ~(b : int) : bool =
  Hashtbl.mem t.overlaps (min a b, max a b)

(** Every instruction pair that touched a common byte. *)
let all_overlaps (t : t) : (int * int) list =
  Hashtbl.fold (fun k () acc -> k :: acc) t.overlaps [] |> List.sort compare
