(** Object-granular memory for the MIR interpreter.

    Every allocation (global, alloca, malloc) becomes an object with a
    unique id, a virtual base address and a byte payload. Addresses are
    dense enough for realistic pointer arithmetic *within* an object;
    objects are spaced apart so stray arithmetic traps instead of silently
    corrupting a neighbour. Loads and stores are little-endian. *)

type obj_kind =
  | KGlobal of string
  | KStack of int  (** alloca site: instruction id *)
  | KHeap of int  (** malloc/calloc site: instruction id *)

type obj = {
  oid : int;
  base : int64;
  size : int;
  kind : obj_kind;
  ctx : int list;  (** calling context at allocation (innermost first) *)
  data : Bytes.t;
  mutable live : bool;
  mutable heap_tag : int;
      (** logical heap for speculative separation; 0 = default heap *)
}

module Addr_map = Map.Make (Int64)

(** Undo-log entries for checkpoint/rollback (§4.2.5 recovery). Each entry
    is the inverse of one state change, applied in LIFO order. *)
type journal_entry =
  | JData of { o : obj; old : Bytes.t }
      (** object payload before its first write in the current epoch *)
  | JAlloc of obj  (** object created since the mark; undo removes it *)
  | JLive of { o : obj; was : bool }  (** liveness flip (free / frame kill) *)
  | JTag of { o : obj; was : int }  (** speculative heap-tag change *)

type t = {
  mutable next_base : int64;
  mutable by_base : obj Addr_map.t;
  objects : (int, obj) Hashtbl.t;
  mutable next_oid : int;
  mutable journal : journal_entry list;
  mutable journaling : bool;
      (** record undo entries; enabled while any checkpoint is active *)
  mutable epoch : int;
      (** bumped on every checkpoint and rollback; scopes the first-write
          dedup below *)
  written : (int * int, unit) Hashtbl.t;
      (** (epoch, oid) pairs whose old bytes are already journaled *)
}

(** A position in the undo log plus the allocation cursors, so rollback
    restores deterministic addresses for replayed allocations. *)
type mark = {
  m_journal : journal_entry list;
  m_next_base : int64;
  m_next_oid : int;
}

exception Trap of string

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

let create () =
  {
    next_base = 0x10000L;
    by_base = Addr_map.empty;
    objects = Hashtbl.create 64;
    next_oid = 0;
    journal = [];
    journaling = false;
    epoch = 0;
    written = Hashtbl.create 64;
  }

(* ---- checkpoint journal ---- *)

(** [set_journaling t on] toggles undo recording. Turning it off (no active
    checkpoint remains) discards the accumulated log. *)
let set_journaling (t : t) (on : bool) : unit =
  t.journaling <- on;
  if not on then begin
    t.journal <- [];
    Hashtbl.reset t.written
  end

(** [mark t] opens a new epoch and returns the current undo-log position. *)
let mark (t : t) : mark =
  t.epoch <- t.epoch + 1;
  { m_journal = t.journal; m_next_base = t.next_base; m_next_oid = t.next_oid }

let journal_data (t : t) (o : obj) : unit =
  if t.journaling && not (Hashtbl.mem t.written (t.epoch, o.oid)) then begin
    Hashtbl.replace t.written (t.epoch, o.oid) ();
    t.journal <- JData { o; old = Bytes.copy o.data } :: t.journal
  end

let journal_live (t : t) (o : obj) : unit =
  if t.journaling then t.journal <- JLive { o; was = o.live } :: t.journal

let journal_tag (t : t) (o : obj) : unit =
  if t.journaling then t.journal <- JTag { o; was = o.heap_tag } :: t.journal

(** [undo_to t m] rolls memory back to [m]: restores journaled payloads,
    liveness and heap tags, removes objects allocated since the mark, and
    rewinds the allocation cursors so a replay re-allocates at the same
    addresses. *)
let undo_to (t : t) (m : mark) : unit =
  let rec go = function
    | j when j == m.m_journal -> j
    | [] -> []  (* mark predates the log: nothing left to undo *)
    | entry :: rest ->
        (match entry with
        | JData { o; old } -> Bytes.blit old 0 o.data 0 (Bytes.length old)
        | JAlloc o ->
            t.by_base <- Addr_map.remove o.base t.by_base;
            Hashtbl.remove t.objects o.oid
        | JLive { o; was } -> o.live <- was
        | JTag { o; was } -> o.heap_tag <- was);
        go rest
  in
  t.journal <- go t.journal;
  t.next_base <- m.m_next_base;
  t.next_oid <- m.m_next_oid;
  t.epoch <- t.epoch + 1

let align16 n = Int64.logand (Int64.add n 15L) (Int64.lognot 15L)

(** [alloc t ~size ~kind ~ctx] creates a live, zero-initialized object. *)
let alloc (t : t) ~(size : int) ~(kind : obj_kind) ~(ctx : int list) : obj =
  if size < 0 then trap "allocation of negative size %d" size;
  let size = max size 1 in
  let oid = t.next_oid in
  t.next_oid <- oid + 1;
  let base = t.next_base in
  (* leave a 16-byte guard gap between objects *)
  t.next_base <- align16 (Int64.add base (Int64.of_int (size + 16)));
  let o =
    {
      oid;
      base;
      size;
      kind;
      ctx;
      data = Bytes.make size '\000';
      live = true;
      heap_tag = 0;
    }
  in
  t.by_base <- Addr_map.add base o t.by_base;
  Hashtbl.replace t.objects oid o;
  if t.journaling then t.journal <- JAlloc o :: t.journal;
  o

(** [find_addr t a] resolves address [a] to [(object, offset)]. Traps on
    wild or dangling pointers. *)
let find_addr (t : t) (a : int64) : obj * int =
  match Addr_map.find_last_opt (fun b -> Int64.compare b a <= 0) t.by_base with
  | None -> trap "wild pointer 0x%Lx" a
  | Some (_, o) ->
      let off = Int64.to_int (Int64.sub a o.base) in
      if off >= o.size then trap "pointer 0x%Lx past object %d" a o.oid
      else if not o.live then trap "use of freed object %d" o.oid
      else (o, off)

let find_addr_opt (t : t) (a : int64) : (obj * int) option =
  match Addr_map.find_last_opt (fun b -> Int64.compare b a <= 0) t.by_base with
  | Some (_, o) ->
      let off = Int64.to_int (Int64.sub a o.base) in
      if off < o.size && o.live then Some (o, off) else None
  | None -> None

let free (t : t) (a : int64) : obj =
  let o, off = find_addr t a in
  if off <> 0 then trap "free of interior pointer 0x%Lx" a;
  (match o.kind with
  | KHeap _ -> ()
  | _ -> trap "free of non-heap object %d" o.oid);
  journal_live t o;
  o.live <- false;
  o

(** [load t a size] reads [size] bytes little-endian as a sign-agnostic
    integer (zero-extended). *)
let load (t : t) (a : int64) (size : int) : int64 =
  let o, off = find_addr t a in
  if off + size > o.size then
    trap "load of %d bytes at 0x%Lx overruns object %d" size a o.oid;
  let v = ref 0L in
  for k = size - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code (Bytes.get o.data (off + k))))
  done;
  !v

let store (t : t) (a : int64) (size : int) (value : int64) : unit =
  let o, off = find_addr t a in
  if off + size > o.size then
    trap "store of %d bytes at 0x%Lx overruns object %d" size a o.oid;
  journal_data t o;
  let v = ref value in
  for k = 0 to size - 1 do
    Bytes.set o.data (off + k)
      (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
    v := Int64.shift_right_logical !v 8
  done

let memcpy (t : t) ~(dst : int64) ~(src : int64) ~(len : int) : unit =
  for k = 0 to len - 1 do
    let b = load t (Int64.add src (Int64.of_int k)) 1 in
    store t (Int64.add dst (Int64.of_int k)) 1 b
  done

let memset (t : t) ~(dst : int64) ~(byte : int64) ~(len : int) : unit =
  for k = 0 to len - 1 do
    store t (Int64.add dst (Int64.of_int k)) 1 byte
  done

(** [kill t o] marks a returning frame's alloca dead. *)
let kill (t : t) (o : obj) : unit =
  journal_live t o;
  o.live <- false

(** [set_heap_tag t o tag] re-tags [o]'s logical heap, journaled so a
    rollback restores the previous separation state. *)
let set_heap_tag (t : t) (o : obj) (tag : int) : unit =
  journal_tag t o;
  o.heap_tag <- tag
