(** Trace sinks and provenance trees (see sink.mli). *)

type cache_status =
  | Cache_hit
  | Cache_canonical_hit
  | Cache_miss
  | Uncacheable
  | Budget_denied

let cache_status_name = function
  | Cache_hit -> "hit"
  | Cache_canonical_hit -> "canonical-hit"
  | Cache_miss -> "miss"
  | Uncacheable -> "uncacheable"
  | Budget_denied -> "budget-denied"

type node = {
  query : string;
  qclass : string;
  depth : int;
  mutable cache : cache_status;
  mutable consults : consult list;  (** reverse chronological *)
  mutable result : string;
  mutable cost : float;
  mutable n_options : int;
  mutable assertions : string list;  (** cheapest option, rendered *)
  mutable provenance : string list;
  mutable bailed_after : int option;  (** [Some k]: stopped after k modules *)
  mutable modules_total : int;
  mutable t0 : float;
  mutable t1 : float;
}

and consult = {
  c_module : string;
  mutable c_result : string;
  mutable c_cost : float;
  mutable c_note : string;  (** "", "quarantined", "fault", "overrun" *)
  mutable c_improved : bool;  (** the join kept (part of) this answer *)
  mutable c_premises : node list;  (** reverse chronological *)
  mutable c_t0 : float;
  mutable c_t1 : float;
}

type t = {
  enabled : bool;
  sample_every : int;
  seen : int Atomic.t;
  clock : (unit -> float) option;
  lock : Mutex.t;
  mutable roots : node list;  (** reverse chronological *)
  mutable n_roots : int;
  mutable dropped : int;
  max_roots : int;
}

let noop : t =
  {
    enabled = false;
    sample_every = 1;
    seen = Atomic.make 0;
    clock = None;
    lock = Mutex.create ();
    roots = [];
    n_roots = 0;
    dropped = 0;
    max_roots = 0;
  }

let create ?(sample_every = 1) ?(max_roots = 100_000) ?clock () : t =
  {
    enabled = true;
    sample_every = max 1 sample_every;
    seen = Atomic.make 0;
    clock;
    lock = Mutex.create ();
    roots = [];
    n_roots = 0;
    dropped = 0;
    max_roots = max 1 max_roots;
  }

let enabled (t : t) : bool = t.enabled

(* Callers must check [enabled] first (the no-op fast path); [sample] then
   decides whether THIS client query gets a tree. *)
let sample (t : t) : bool =
  t.enabled
  && Atomic.fetch_and_add t.seen 1 mod t.sample_every = 0

let now (t : t) : float = match t.clock with Some c -> c () | None -> 0.0

let node (t : t) ~(query : string) ~(qclass : string) ~(depth : int) : node =
  {
    query;
    qclass;
    depth;
    cache = Uncacheable;
    consults = [];
    result = "";
    cost = 0.0;
    n_options = 0;
    assertions = [];
    provenance = [];
    bailed_after = None;
    modules_total = 0;
    t0 = now t;
    t1 = 0.0;
  }

let consult (t : t) (n : node) (modname : string) : consult =
  let c =
    {
      c_module = modname;
      c_result = "";
      c_cost = 0.0;
      c_note = "";
      c_improved = false;
      c_premises = [];
      c_t0 = now t;
      c_t1 = 0.0;
    }
  in
  n.consults <- c :: n.consults;
  c

let add_premise (c : consult) (n : node) : unit = c.c_premises <- n :: c.c_premises

let finish_consult (t : t) (c : consult) : unit = c.c_t1 <- now t

let finish_node (t : t) (n : node) : unit = n.t1 <- now t

let add_root (t : t) (n : node) : unit =
  Mutex.lock t.lock;
  if t.n_roots < t.max_roots then begin
    t.roots <- n :: t.roots;
    t.n_roots <- t.n_roots + 1
  end
  else t.dropped <- t.dropped + 1;
  Mutex.unlock t.lock

let roots (t : t) : node list =
  Mutex.lock t.lock;
  let r = List.rev t.roots in
  Mutex.unlock t.lock;
  r

let root_count (t : t) : int =
  Mutex.lock t.lock;
  let n = t.n_roots in
  Mutex.unlock t.lock;
  n

let dropped (t : t) : int = t.dropped

let clear (t : t) : unit =
  Mutex.lock t.lock;
  t.roots <- [];
  t.n_roots <- 0;
  t.dropped <- 0;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Structure queries                                                   *)
(* ------------------------------------------------------------------ *)

let consults (n : node) : consult list = List.rev n.consults
let premises (c : consult) : node list = List.rev c.c_premises

let rec max_depth (n : node) : int =
  List.fold_left
    (fun acc c ->
      List.fold_left (fun acc p -> max acc (max_depth p)) acc c.c_premises)
    n.depth n.consults

(** A premise query whose rendered form equals one of its ancestors': the
    shape the depth budget exists to cut (factored modules ping-ponging). *)
let has_cycle (n : node) : bool =
  let rec go ancestors (n : node) =
    List.mem n.query ancestors
    || List.exists
         (fun c -> List.exists (go (n.query :: ancestors)) c.c_premises)
         n.consults
  in
  go [] n

(* ------------------------------------------------------------------ *)
(* Derivation-tree rendering                                           *)
(* ------------------------------------------------------------------ *)

let pp_assertions ppf = function
  | [] -> Fmt.pf ppf "(unconditional)"
  | assertions ->
      Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any "; ") Fmt.string) assertions

let pp_tree ppf (root : node) : unit =
  let pf fmt = Fmt.pf ppf fmt in
  let rec pp_node indent ancestors (n : node) =
    let cycle = List.mem n.query ancestors in
    pf "%s%s %s [%s]%s@." indent
      (if n.depth = 0 then "query" else "premise")
      n.query
      (cache_status_name n.cache)
      (if cycle then "  (cycle: repeats an enclosing query)" else "");
    pf "%s  -> %s @@ cost %g, %d option(s), assertions %a@." indent n.result
      n.cost n.n_options pp_assertions n.assertions;
    if n.provenance <> [] then
      pf "%s  via %a@." indent
        (Fmt.list ~sep:Fmt.comma Fmt.string)
        n.provenance;
    (match n.bailed_after with
    | Some k when k < n.modules_total ->
        pf "%s  bailed out after %d of %d module(s)@." indent k n.modules_total
    | _ -> ());
    List.iter
      (fun (c : consult) ->
        pf "%s  consult %-22s -> %s%s%s@." indent c.c_module
          (if c.c_result = "" then "(no answer)" else c.c_result)
          (if c.c_cost > 0.0 then Printf.sprintf " @ cost %g" c.c_cost else "")
          (match (c.c_improved, c.c_note) with
          | _, ("quarantined" | "fault" | "overrun") ->
              Printf.sprintf "  [%s]" c.c_note
          | true, _ -> "  [join kept this]"
          | false, _ -> "");
        List.iter
          (pp_node (indent ^ "    ") (n.query :: ancestors))
          (premises c))
      (consults n)
  in
  pp_node "" [] root

let tree_to_string (n : node) : string = Fmt.str "%a" pp_tree n

(* ------------------------------------------------------------------ *)
(* JSON (hand-rolled: no JSON library in the toolchain)                *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)
let jnum (f : float) = Printf.sprintf "%g" f

let rec node_to_json (n : node) : string =
  Printf.sprintf
    "{\"query\":%s,\"class\":%s,\"depth\":%d,\"cache\":%s,\"result\":%s,\"cost\":%s,\"options\":%d,\"assertions\":[%s],\"provenance\":[%s],\"consults\":[%s]}"
    (jstr n.query) (jstr n.qclass) n.depth
    (jstr (cache_status_name n.cache))
    (jstr n.result) (jnum n.cost) n.n_options
    (String.concat "," (List.map jstr n.assertions))
    (String.concat "," (List.map jstr n.provenance))
    (String.concat "," (List.map consult_to_json (consults n)))

and consult_to_json (c : consult) : string =
  Printf.sprintf
    "{\"module\":%s,\"result\":%s,\"cost\":%s,\"note\":%s,\"improved\":%b,\"premises\":[%s]}"
    (jstr c.c_module) (jstr c.c_result) (jnum c.c_cost) (jstr c.c_note)
    c.c_improved
    (String.concat "," (List.map node_to_json (premises c)))

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)
(* ------------------------------------------------------------------ *)

(* Complete events ("ph":"X") with microsecond timestamps, one per query
   node and per module consult, so the derivation nests as a flamegraph in
   Chrome's trace viewer (chrome://tracing or Perfetto). When the sink has
   no clock every recorded duration is 0; a synthetic virtual clock then
   assigns each leaf 1us so the nesting is still visible. *)
let to_chrome_json (t : t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit ~name ~cat ~ts ~dur ~args =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1,\"args\":{%s}}"
         (jstr name) (jstr cat) (jnum ts) (jnum dur) args)
  in
  let vt = ref 0.0 in
  (* virtual clock, in us *)
  let rec emit_node (n : node) : unit =
    let real = n.t1 > n.t0 in
    let ts = if real then n.t0 *. 1e6 else !vt in
    let start_vt = !vt in
    List.iter
      (fun (c : consult) ->
        let c_real = c.c_t1 > c.c_t0 in
        let c_ts = if c_real then c.c_t0 *. 1e6 else !vt in
        let c_start = !vt in
        List.iter emit_node (premises c);
        let c_dur =
          if c_real then (c.c_t1 -. c.c_t0) *. 1e6
          else begin
            vt := max !vt (c_start +. 1.0);
            !vt -. c_start
          end
        in
        emit ~name:("consult " ^ c.c_module) ~cat:"module" ~ts:c_ts ~dur:c_dur
          ~args:
            (Printf.sprintf "\"result\":%s,\"cost\":%s,\"improved\":%b"
               (jstr c.c_result) (jnum c.c_cost) c.c_improved))
      (consults n);
    let dur =
      if real then (n.t1 -. n.t0) *. 1e6
      else begin
        vt := max !vt (start_vt +. 1.0);
        !vt -. start_vt
      end
    in
    emit ~name:n.query
      ~cat:(if n.depth = 0 then "query" else "premise")
      ~ts ~dur
      ~args:
        (Printf.sprintf
           "\"class\":%s,\"depth\":%d,\"cache\":%s,\"result\":%s,\"cost\":%s"
           (jstr n.qclass) n.depth
           (jstr (cache_status_name n.cache))
           (jstr n.result) (jnum n.cost))
  in
  List.iter emit_node (roots t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
