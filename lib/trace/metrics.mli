(** Process-wide metrics registry: named counters and histograms with JSON
    export.

    Producers resolve a handle once ({!counter} / {!histogram} get or
    create under the registry lock) and then update it lock-free: counters
    are [Atomic], histograms a mutex-guarded bounded {!Reservoir} (exact
    count, sampled percentiles). Both are safe to update from several
    worker domains — parallel evaluation loses no increments.

    {!global} is the conventional process-wide registry (the [--metrics]
    flag of [scaf_eval] exports it); private registries for tests or
    isolated subsystems come from {!create}. *)

type t

type counter

type histogram

val create : unit -> t

(** The process-wide default registry. *)
val global : t

(** [counter t name] — the counter named [name], created at 0 on first
    use. *)
val counter : t -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** [histogram t name] — the histogram named [name], created empty on
    first use. *)
val histogram : t -> string -> histogram

val observe : histogram -> float -> unit

(** Exact number of observations ever made. *)
val observed_count : histogram -> int

type histogram_snapshot = {
  count : int;  (** exact observation count *)
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;  (** percentiles over the retained sample *)
}

val histogram_snapshot : histogram -> histogram_snapshot

(** Sorted name/value views (deterministic order). *)
val counters : t -> (string * int) list

val histograms : t -> (string * histogram_snapshot) list

(** Zero every counter and forget every histogram observation, in place:
    handles resolved before a [reset] stay valid and keep feeding the same
    (now zeroed) cells. *)
val reset : t -> unit

(** [{"counters":{...},"histograms":{...}}] with sorted keys. *)
val to_json : t -> string
