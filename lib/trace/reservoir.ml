(** Fixed-capacity reservoir sample (Algorithm R); see reservoir.mli. *)

type t = {
  buf : float array;
  mutable filled : int;  (** live prefix of [buf] *)
  mutable count : int;  (** exact observations ever added *)
  mutable state : int64;  (** deterministic LCG state *)
}

let create ?(capacity = 4096) ?(seed = 0x5caf) () : t =
  {
    buf = Array.make (max 1 capacity) 0.0;
    filled = 0;
    count = 0;
    state = Int64.of_int seed;
  }

(* Knuth MMIX LCG; only the high bits are used below. *)
let next_state (s : int64) : int64 =
  Int64.add (Int64.mul s 6364136223846793005L) 1442695040888963407L

(* Uniform int in [0, n): high 32 bits of the LCG state mod n. *)
let rand_below (t : t) (n : int) : int =
  t.state <- next_state t.state;
  let hi = Int64.to_int (Int64.shift_right_logical t.state 33) in
  hi mod n

let add (t : t) (x : float) : unit =
  t.count <- t.count + 1;
  if t.filled < Array.length t.buf then begin
    t.buf.(t.filled) <- x;
    t.filled <- t.filled + 1
  end
  else
    let j = rand_below t t.count in
    if j < Array.length t.buf then t.buf.(j) <- x

let count (t : t) : int = t.count

let samples (t : t) : float list =
  Array.to_list (Array.sub t.buf 0 t.filled)

let percentile (t : t) (p : float) : float =
  if t.filled = 0 then 0.0
  else begin
    let a = Array.sub t.buf 0 t.filled in
    Array.sort Float.compare a;
    let idx = int_of_float (p /. 100.0 *. float_of_int (t.filled - 1)) in
    a.(max 0 (min (t.filled - 1) idx))
  end

let mean (t : t) : float =
  if t.filled = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 (Array.sub t.buf 0 t.filled) /. float_of_int t.filled

let clear (t : t) : unit =
  t.filled <- 0;
  t.count <- 0

let merge ~(into : t) (src : t) : unit =
  let retained = src.filled in
  Array.iter (add into) (Array.sub src.buf 0 retained);
  into.count <- into.count + (src.count - retained)
