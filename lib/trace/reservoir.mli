(** Fixed-capacity reservoir sample of a float stream.

    Replaces the orchestrator's old unbounded per-query latency list:
    memory stays O(capacity) no matter how many observations arrive, while
    the sample remains uniform over the whole stream (Vitter's
    Algorithm R, driven by a deterministic per-reservoir LCG so runs are
    reproducible and domain-local reservoirs need no locking).

    The exact observation {e count} is always tracked; only the retained
    sample is bounded. *)

type t

(** [create ()] — capacity 4096 by default. *)
val create : ?capacity:int -> ?seed:int -> unit -> t

val add : t -> float -> unit

(** Exact number of observations ever added (not the sample size). *)
val count : t -> int

(** The retained sample, in no particular order; its length is
    [min (count t) capacity]. *)
val samples : t -> float list

(** [percentile t p] — the [p]-th percentile (0..100) of the retained
    sample; 0.0 when empty. *)
val percentile : t -> float -> float

(** Arithmetic mean of the retained sample; 0.0 when empty. *)
val mean : t -> float

(** [merge ~into src] — feed every retained sample of [src] into [into]
    and add [src]'s unretained observation count, so [count] stays exact
    when per-worker reservoirs are folded into a shared one. *)
val merge : into:t -> t -> unit

(** Forget every observation (the PRNG state is kept). *)
val clear : t -> unit
