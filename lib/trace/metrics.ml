(** Process-wide metrics registry (see metrics.mli). *)

type counter = { cname : string; value : int Atomic.t }

type histogram = { hname : string; hlock : Mutex.t; sample : Reservoir.t }

type t = {
  lock : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () : t =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 16;
  }

let global : t = create ()

let with_lock (t : t) (f : unit -> 'a) : 'a =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Get-or-create is the registration point: handles are meant to be
   resolved once (at orchestrator creation) and then hit lock-free. *)
let counter (t : t) (name : string) : counter =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> c
      | None ->
          let c = { cname = name; value = Atomic.make 0 } in
          Hashtbl.replace t.counters name c;
          c)

let incr (c : counter) : unit = Atomic.incr c.value
let add (c : counter) (n : int) : unit = ignore (Atomic.fetch_and_add c.value n)
let counter_value (c : counter) : int = Atomic.get c.value

let histogram (t : t) (name : string) : histogram =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
          let h =
            { hname = name; hlock = Mutex.create (); sample = Reservoir.create () }
          in
          Hashtbl.replace t.histograms name h;
          h)

let observe (h : histogram) (x : float) : unit =
  Mutex.lock h.hlock;
  Reservoir.add h.sample x;
  Mutex.unlock h.hlock

let observed_count (h : histogram) : int =
  Mutex.lock h.hlock;
  let n = Reservoir.count h.sample in
  Mutex.unlock h.hlock;
  n

type histogram_snapshot = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let histogram_snapshot (h : histogram) : histogram_snapshot =
  Mutex.lock h.hlock;
  let s =
    {
      count = Reservoir.count h.sample;
      mean = Reservoir.mean h.sample;
      p50 = Reservoir.percentile h.sample 50.0;
      p90 = Reservoir.percentile h.sample 90.0;
      p99 = Reservoir.percentile h.sample 99.0;
    }
  in
  Mutex.unlock h.hlock;
  s

(** Sorted (name, value) views — the stable, diff-friendly order. *)
let counters (t : t) : (string * int) list =
  with_lock t (fun () ->
      Hashtbl.fold (fun n c acc -> (n, Atomic.get c.value) :: acc) t.counters [])
  |> List.sort compare

let histograms (t : t) : (string * histogram_snapshot) list =
  with_lock t (fun () -> Hashtbl.fold (fun n h acc -> (n, h) :: acc) t.histograms [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (n, h) -> (n, histogram_snapshot h))

(* Zero in place, keeping registrations: handles are pre-bound (e.g. at
   orchestrator creation), so dropping the tables would leave them counting
   into orphaned cells invisible to the exporters. *)
let reset (t : t) : unit =
  with_lock t (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.value 0) t.counters;
      Hashtbl.iter
        (fun _ h ->
          Mutex.lock h.hlock;
          Reservoir.clear h.sample;
          Mutex.unlock h.hlock)
        t.histograms)

let to_json (t : t) : string =
  let jstr s = Printf.sprintf "\"%s\"" (Sink.json_escape s) in
  let cs =
    List.map
      (fun (n, v) -> Printf.sprintf "%s:%d" (jstr n) v)
      (counters t)
  in
  let hs =
    List.map
      (fun (n, (s : histogram_snapshot)) ->
        Printf.sprintf
          "%s:{\"count\":%d,\"mean\":%g,\"p50\":%g,\"p90\":%g,\"p99\":%g}"
          (jstr n) s.count s.mean s.p50 s.p90 s.p99)
      (histograms t)
  in
  Printf.sprintf "{\"counters\":{%s},\"histograms\":{%s}}"
    (String.concat "," cs) (String.concat "," hs)
