(** Trace sinks: the structured-observability channel of the query hot
    path.

    A sink receives one {e provenance tree} per (sampled) client query:
    which modules were consulted, which premise sub-queries each consult
    raised at which depth, what every module answered, which answer the
    join kept, how the cache behaved, and the final assertion set and
    cost. The orchestrator builds the tree; this library only defines the
    (domain-safe) collection substrate and the exporters.

    The substrate is deliberately generic — queries, results and
    assertions arrive {e rendered as strings} — so it has no dependency on
    the core query language and can sit below it in the library stack.

    {b Zero cost when disabled.} {!noop} is a shared, permanently disabled
    sink; producers must check {!enabled} (one immutable bool read) before
    doing any rendering or allocation. With the no-op sink the hot path is
    byte-for-byte the untraced one.

    {b Sampling.} A collector created with [~sample_every:n] accepts every
    n-th client query ({!sample}); non-sampled queries pay exactly the
    disabled-path cost after one atomic increment.

    {b Concurrency.} Completed trees are appended under a mutex, so one
    sink may be shared by orchestrators on several worker domains. *)

type cache_status =
  | Cache_hit
  | Cache_canonical_hit  (** served through the mirrored alias form *)
  | Cache_miss
  | Uncacheable  (** carries a control-flow view; never keyed *)
  | Budget_denied  (** premise refused: depth budget exhausted *)

val cache_status_name : cache_status -> string

(** One resolved query: the root is the client query, nested nodes are the
    premise queries raised while answering it. *)
type node = {
  query : string;  (** rendered query *)
  qclass : string;  (** query-language class, for grouping *)
  depth : int;  (** premise nesting depth (0 = client query) *)
  mutable cache : cache_status;
  mutable consults : consult list;  (** reverse chronological *)
  mutable result : string;  (** rendered final (joined) result *)
  mutable cost : float;  (** cheapest-option validation cost *)
  mutable n_options : int;
  mutable assertions : string list;  (** cheapest option, rendered *)
  mutable provenance : string list;  (** modules behind the final answer *)
  mutable bailed_after : int option;
      (** [Some k]: the bail-out policy stopped after [k] modules *)
  mutable modules_total : int;
  mutable t0 : float;
  mutable t1 : float;
}

(** One module evaluation within a node. *)
and consult = {
  c_module : string;
  mutable c_result : string;  (** "" = no answer *)
  mutable c_cost : float;
  mutable c_note : string;  (** "", "quarantined", "fault", "overrun" *)
  mutable c_improved : bool;  (** the join kept (part of) this answer *)
  mutable c_premises : node list;  (** reverse chronological *)
  mutable c_t0 : float;
  mutable c_t1 : float;
}

type t

(** The permanently disabled sink ([enabled] = false, collects nothing). *)
val noop : t

(** A collecting sink. [sample_every] traces every n-th client query
    (default 1: all); [max_roots] bounds retained trees (further trees are
    counted in {!dropped}); [clock] timestamps spans (omitted: synthetic
    ordering, still viewable). *)
val create :
  ?sample_every:int -> ?max_roots:int -> ?clock:(unit -> float) -> unit -> t

val enabled : t -> bool

(** Should THIS client query be traced? Advances the sampling counter;
    callers check {!enabled} first and call this once per client query. *)
val sample : t -> bool

(** Current clock reading (0. without a clock). *)
val now : t -> float

(** {2 Tree construction (producer side)} *)

val node : t -> query:string -> qclass:string -> depth:int -> node
val consult : t -> node -> string -> consult
val add_premise : consult -> node -> unit
val finish_consult : t -> consult -> unit
val finish_node : t -> node -> unit

(** Record a completed client-query tree (thread-safe). *)
val add_root : t -> node -> unit

(** {2 Consumption} *)

(** Completed trees, oldest first (thread-safe snapshot). *)
val roots : t -> node list

val root_count : t -> int

(** Trees discarded because [max_roots] was reached. *)
val dropped : t -> int

val clear : t -> unit

(** Consults / premises in chronological order. *)
val consults : node -> consult list

val premises : consult -> node list

(** Deepest premise depth reachable in the tree. *)
val max_depth : node -> int

(** Does any premise repeat an enclosing query (the ping-pong shape the
    depth budget cuts)? *)
val has_cycle : node -> bool

(** {2 Export} *)

(** Pretty-printed derivation tree (the [scaf_eval explain] format):
    per-node query, cache status, joined result, cost, assertion option,
    provenance; per-consult module answers with the join's pick marked;
    premise recursion indented, cycles annotated. *)
val pp_tree : Format.formatter -> node -> unit

val tree_to_string : node -> string

(** Structured JSON of one tree (consults and premises nested). *)
val node_to_json : node -> string

(** All collected trees as Chrome [trace_event] JSON (complete "X" events,
    microsecond timestamps — synthetic when the sink has no clock), ready
    for chrome://tracing or Perfetto. *)
val to_chrome_json : t -> string

(**/**)

val json_escape : string -> string
