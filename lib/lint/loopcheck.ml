(** Loop well-formedness pass: the structural assumptions the profilers
    and speculation modules rely on.

    - [loop.irreducible] (error): a cycle that is not a natural loop.
      Natural-loop detection only sees back edges whose target dominates
      their source, so an irreducible cycle silently produces *no* loop
      info — the loop-aware profiler and every cross-iteration query
      would ignore it. Detected as a DFS retreating edge whose target
      does not dominate its source.
    - [loop.no-preheader] (warning): the header is not entered through a
      single dedicated preheader block.
    - [loop.multi-latch] (warning): more than one back edge. *)

open Scaf_cfg

let pass_name = "loopcheck"

let irreducible (fname : string) (cfg : Cfg.t) (dom : Dom.t) :
    Diagnostic.t list =
  let n = Cfg.num_blocks cfg in
  (* 0 = unvisited, 1 = on the DFS stack, 2 = done *)
  let state = Array.make n 0 in
  let diags = ref [] in
  let rec dfs a =
    state.(a) <- 1;
    List.iter
      (fun b ->
        if state.(b) = 0 then dfs b
        else if state.(b) = 1 && not (Dom.dominates dom b a) then
          diags :=
            Diagnostic.error ~func:fname ~block:(Cfg.label cfg b)
              ~code:"loop.irreducible" ~pass:pass_name
              "cycle through %s is irreducible (retreating edge %s -> %s \
               does not target a dominator); no loop info will exist for it"
              (Cfg.label cfg b) (Cfg.label cfg a) (Cfg.label cfg b)
            :: !diags)
      cfg.Cfg.succs.(a);
    state.(a) <- 2
  in
  dfs Cfg.entry_index;
  List.rev !diags

let loop_shape (fname : string) (cfg : Cfg.t) (li : Loops.t) :
    Diagnostic.t list =
  List.concat_map
    (fun (l : Loops.loop) ->
      let header_label = Cfg.label cfg l.Loops.header in
      let multi_latch =
        let k = List.length l.Loops.latches in
        if k > 1 then
          [
            Diagnostic.warning ~func:fname ~block:header_label
              ~loop:l.Loops.lid ~code:"loop.multi-latch" ~pass:pass_name
              "loop has %d back edges; profilers assume a single latch" k;
          ]
        else []
      in
      let outside =
        List.filter
          (fun p -> not (Loops.contains l p))
          cfg.Cfg.preds.(l.Loops.header)
      in
      let preheader =
        match outside with
        | [ p ] when List.length cfg.Cfg.succs.(p) = 1 -> []
        | [ p ] ->
            [
              Diagnostic.warning ~func:fname ~block:header_label
                ~loop:l.Loops.lid ~code:"loop.no-preheader" ~pass:pass_name
                "entry block %s also branches elsewhere — the loop has no \
                 dedicated preheader"
                (Cfg.label cfg p);
            ]
        | ps ->
            [
              Diagnostic.warning ~func:fname ~block:header_label
                ~loop:l.Loops.lid ~code:"loop.no-preheader" ~pass:pass_name
                "header is entered by %d out-of-loop edges instead of one \
                 preheader"
                (List.length ps);
            ]
      in
      multi_latch @ preheader)
    li.Loops.loops

let run ?funcs (prog : Progctx.t) : Diagnostic.t list =
  let selected (f : Scaf_ir.Func.t) =
    match funcs with None -> true | Some fs -> List.mem f.Scaf_ir.Func.name fs
  in
  List.concat_map
    (fun (f : Scaf_ir.Func.t) ->
      if not (selected f) then []
      else
        let fname = f.Scaf_ir.Func.name in
        match (Progctx.cfg_of prog fname, Progctx.loops_of prog fname) with
        | Some cfg, Some li ->
            let dom = Dom.compute cfg in
            irreducible fname cfg dom @ loop_shape fname cfg li
        | _ -> [])
    prog.Progctx.m.Scaf_ir.Irmod.funcs
