(** Memory-region sanity pass, built on [Scaf_analysis.Ptrexpr].

    - [mem.null-deref] (error): a load/store whose pointer resolves only
      to null.
    - [mem.oob-global] / [mem.oob-alloca]: a constant-offset access that
      falls outside its object's byte range. An error when the pointer
      resolves to exactly one object (the access *will* be out of
      bounds); a warning when the resolution is ambiguous.
    - [mem.escape-ret] (error): returning a pointer into stack storage —
      the caller would hold a dangling pointer, and every alias analysis
      here assumes allocas do not outlive their frame.
    - [mem.escape-store] (warning): the address of an alloca is itself
      stored to memory; region-based reasoning about it degrades. *)

open Scaf_ir
open Scaf_cfg
open Scaf_analysis

let pass_name = "memsanity"

let obj_size (prog : Progctx.t) (b : Ptrexpr.base) : int option =
  match b with
  | Ptrexpr.BGlobal g ->
      Option.map
        (fun (g : Irmod.global) -> g.Irmod.gsize)
        (Irmod.find_global prog.Progctx.m g)
  | Ptrexpr.BAlloca id -> (
      match Progctx.occ prog id with
      | Some { Irmod.Index.instr = { Instr.kind = Instr.Alloca { size }; _ }; _ }
        ->
          Some size
      | _ -> None)
  | _ -> None

let access_word (i : Instr.t) : string =
  match i.Instr.kind with Instr.Store _ -> "store" | _ -> "load"

let check_footprint (prog : Progctx.t) (fname : string) (b : Block.t)
    (i : Instr.t) (ptr : Value.t) (size : int) : Diagnostic.t list =
  let rs = Ptrexpr.resolve prog ~fname ptr in
  if
    rs <> []
    && List.for_all (fun (x : Ptrexpr.t) -> x.Ptrexpr.base = Ptrexpr.BNull) rs
  then
    [
      Diagnostic.error ~func:fname ~block:b.Block.label ~instr:i.Instr.id
        ~code:"mem.null-deref" ~pass:pass_name "%s through null pointer %a"
        (access_word i) Value.pp ptr;
    ]
  else
    let ambiguous = List.length rs > 1 in
    List.filter_map
      (fun (x : Ptrexpr.t) ->
        match (obj_size prog x.Ptrexpr.base, x.Ptrexpr.off) with
        | Some osz, Some off
          when Int64.compare off 0L < 0
               || Int64.compare
                    (Int64.add off (Int64.of_int size))
                    (Int64.of_int osz)
                  > 0 ->
            let code =
              match x.Ptrexpr.base with
              | Ptrexpr.BGlobal _ -> "mem.oob-global"
              | _ -> "mem.oob-alloca"
            in
            let mk = if ambiguous then Diagnostic.warning else Diagnostic.error in
            Some
              (mk ~func:fname ~block:b.Block.label ~instr:i.Instr.id ~code
                 ~pass:pass_name
                 "%s of %d byte(s) at %a+%Ld is outside the %d-byte object"
                 (access_word i) size Ptrexpr.pp_base x.Ptrexpr.base off osz)
        | _ -> None)
      rs

let stack_bases (prog : Progctx.t) (fname : string) (v : Value.t) : int list =
  List.filter_map
    (fun (x : Ptrexpr.t) ->
      match x.Ptrexpr.base with Ptrexpr.BAlloca id -> Some id | _ -> None)
    (Ptrexpr.resolve prog ~fname v)

let run ?funcs (prog : Progctx.t) : Diagnostic.t list =
  let selected (f : Func.t) =
    match funcs with None -> true | Some fs -> List.mem f.Func.name fs
  in
  List.concat_map
    (fun (f : Func.t) ->
      if not (selected f) then []
      else
        let fname = f.Func.name in
        List.concat_map
          (fun (b : Block.t) ->
            let per_instr =
              List.concat_map
                (fun (i : Instr.t) ->
                  let footprint =
                    match Instr.footprint i with
                    | Some (ptr, size) -> check_footprint prog fname b i ptr size
                    | None -> []
                  in
                  let escape_store =
                    match i.Instr.kind with
                    | Instr.Store { value; _ } -> (
                        match stack_bases prog fname value with
                        | [] -> []
                        | id :: _ ->
                            [
                              Diagnostic.warning ~func:fname
                                ~block:b.Block.label ~instr:i.Instr.id
                                ~code:"mem.escape-store" ~pass:pass_name
                                "address of stack allocation (instr %d) is \
                                 stored to memory"
                                id;
                            ])
                    | _ -> []
                  in
                  footprint @ escape_store)
                b.Block.instrs
            in
            let escape_ret =
              match b.Block.term.Instr.tkind with
              | Instr.Ret (Some v) -> (
                  match stack_bases prog fname v with
                  | [] -> []
                  | id :: _ ->
                      [
                        Diagnostic.error ~func:fname ~block:b.Block.label
                          ~code:"mem.escape-ret" ~pass:pass_name
                          "returning a pointer into stack allocation (instr \
                           %d); it dies with this frame"
                          id;
                      ])
              | _ -> []
            in
            per_instr @ escape_ret)
          f.Func.blocks)
    prog.Progctx.m.Irmod.funcs
