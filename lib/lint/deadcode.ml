(** Dead-code lints: unreachable blocks, block-local overwritten stores
    and never-read stack allocations.

    Codes (all warnings — dead code is legal MIR, just suspicious):
    - [cfg.unreachable-block]: not reachable from the entry.
    - [dead.store-overwritten]: a store whose exact (pointer, size) cell
      is stored again in the same block with no intervening load or call.
      Intervening stores to *other* pointers cannot rescue the first
      store — only reads can observe its value.
    - [dead.alloca-unread]: an alloca whose derived pointers are only
      ever used as store destinations or GEP bases — written, never
      read, never escaping. *)

open Scaf_ir
open Scaf_cfg
module Sset = Set.Make (String)

let pass_name = "deadcode"

let unreachable (fname : string) (cfg : Cfg.t) : Diagnostic.t list =
  List.map
    (fun bi ->
      Diagnostic.warning ~func:fname ~block:(Cfg.label cfg bi)
        ~code:"cfg.unreachable-block" ~pass:pass_name
        "block %s is unreachable from the entry" (Cfg.label cfg bi))
    (Cfg.unreachable_blocks cfg)

let block_dead_stores (fname : string) (b : Block.t) : Diagnostic.t list =
  (* (pointer value, size) -> the as-yet-unread store to that cell *)
  let pending : ((Value.t * int) * Instr.t) list ref = ref [] in
  let diags = ref [] in
  List.iter
    (fun (i : Instr.t) ->
      match i.Instr.kind with
      | Instr.Store { ptr; size; _ } ->
          (match List.assoc_opt (ptr, size) !pending with
          | Some (prev : Instr.t) ->
              diags :=
                Diagnostic.warning ~func:fname ~block:b.Block.label
                  ~instr:prev.Instr.id ~code:"dead.store-overwritten"
                  ~pass:pass_name
                  "store (instr %d) is overwritten by instr %d before any \
                   possible read"
                  prev.Instr.id i.Instr.id
                :: !diags
          | None -> ());
          pending := ((ptr, size), i) :: List.remove_assoc (ptr, size) !pending
      | Instr.Load _ | Instr.Call _ ->
          (* conservatively, anything might be read now *)
          pending := []
      | _ -> ())
    b.Block.instrs;
  List.rev !diags

(* All registers derived from [d] by GEP chains. *)
let derived_of (f : Func.t) (d : string) : Sset.t =
  let step s =
    Func.fold_instrs f
      (fun s _ (i : Instr.t) ->
        match (i.Instr.kind, i.Instr.dst) with
        | Instr.Gep { base = Value.Reg r; _ }, Some dst when Sset.mem r s ->
            Sset.add dst s
        | _ -> s)
      s
  in
  let rec fix s =
    let s' = step s in
    if Sset.equal s' s then s else fix s'
  in
  fix (Sset.singleton d)

(* Is any register of [s] used other than as a store destination or GEP
   base? (A load through it, an escape, or pointer forging all count.) *)
let read_or_escapes (f : Func.t) (s : Sset.t) : bool =
  let bad = ref false in
  let check (v : Value.t) =
    match v with Value.Reg r when Sset.mem r s -> bad := true | _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.kind with
          | Instr.Gep { offset; _ } -> check offset
          | Instr.Store { value; _ } -> check value
          | _ -> List.iter check (Instr.operands i))
        b.Block.instrs;
      List.iter check (Instr.term_operands b.Block.term))
    f.Func.blocks;
  !bad

let alloca_unread (fname : string) (f : Func.t) : Diagnostic.t list =
  Func.fold_instrs f
    (fun acc (b : Block.t) (i : Instr.t) ->
      match (i.Instr.kind, i.Instr.dst) with
      | Instr.Alloca { size }, Some d ->
          if read_or_escapes f (derived_of f d) then acc
          else
            Diagnostic.warning ~func:fname ~block:b.Block.label
              ~instr:i.Instr.id ~code:"dead.alloca-unread" ~pass:pass_name
              "%d-byte alloca %%%s is never read" size d
            :: acc
      | _ -> acc)
    []
  |> List.rev

let run ?funcs (prog : Progctx.t) : Diagnostic.t list =
  let selected (f : Func.t) =
    match funcs with None -> true | Some fs -> List.mem f.Func.name fs
  in
  List.concat_map
    (fun (f : Func.t) ->
      if not (selected f) then []
      else
        let fname = f.Func.name in
        let unreach =
          match Progctx.cfg_of prog fname with
          | Some cfg -> unreachable fname cfg
          | None -> []
        in
        unreach
        @ List.concat_map (block_dead_stores fname) f.Func.blocks
        @ alloca_unread fname f)
    prog.Progctx.m.Irmod.funcs
