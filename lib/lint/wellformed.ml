(** Well-formedness pass: structural verification ([Scaf_ir.Verify]),
    dominance-based SSA validation ([Scaf_cfg.Ssa]), call-arity and
    empty-function checks, all surfaced as diagnostics.

    Codes: [wf.structural], [wf.ssa], [wf.call-arity],
    [wf.empty-function]. This pass runs without a [Progctx] — it is the
    gate that decides whether building one is safe at all. *)

open Scaf_ir

let pass_name = "wellformed"

let of_verify_error (code : string) (e : Verify.error) : Diagnostic.t =
  {
    Diagnostic.code;
    severity = Diagnostic.Error;
    pass = pass_name;
    span = Diagnostic.span_of_where e.Verify.where;
    message = e.Verify.what;
  }

let selected (funcs : string list option) (f : Func.t) : bool =
  match funcs with None -> true | Some fs -> List.mem f.Func.name fs

(* Structural verification is module-wide regardless of a [funcs]
   restriction: id uniqueness and callee resolution are cross-function
   properties, and [Verify.check] is cheap. *)
let structural (m : Irmod.t) : Diagnostic.t list =
  List.map (of_verify_error "wf.structural") (Verify.check m)

let empty_functions ?funcs (m : Irmod.t) : Diagnostic.t list =
  List.filter_map
    (fun (f : Func.t) ->
      if selected funcs f && f.Func.blocks = [] then
        Some
          (Diagnostic.error ~func:f.Func.name ~code:"wf.empty-function"
             ~pass:pass_name "function @%s has no blocks" f.Func.name)
      else None)
    m.Irmod.funcs

(* Arity of calls to *defined* functions (declared externals carry no
   signature — the interpreter takes whatever it is given). *)
let call_arity ?funcs (m : Irmod.t) : Diagnostic.t list =
  let arities =
    List.map (fun (f : Func.t) -> (f.Func.name, List.length f.Func.params)) m.Irmod.funcs
  in
  List.concat_map
    (fun (f : Func.t) ->
      if not (selected funcs f) then []
      else
        Func.fold_instrs f
          (fun acc (b : Block.t) (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Call { callee; args } -> (
                match List.assoc_opt callee arities with
                | Some n when n <> List.length args ->
                    Diagnostic.error ~func:f.Func.name ~block:b.Block.label
                      ~instr:i.Instr.id ~code:"wf.call-arity" ~pass:pass_name
                      "call @%s passes %d argument(s) but @%s takes %d" callee
                      (List.length args) callee n
                    :: acc
                | _ -> acc)
            | _ -> acc)
          []
        |> List.rev)
    m.Irmod.funcs

let ssa ?funcs (m : Irmod.t) : Diagnostic.t list =
  List.concat_map
    (fun (f : Func.t) ->
      if not (selected funcs f) then []
      else
        let errs =
          (* a function whose CFG cannot be built is already flagged
             structurally (unknown branch target) *)
          try Scaf_cfg.Ssa.check_ssa_func f with Invalid_argument _ -> []
        in
        List.map (of_verify_error "wf.ssa") errs)
    m.Irmod.funcs

let run ?funcs (m : Irmod.t) : Diagnostic.t list =
  structural m @ empty_functions ?funcs m @ call_arity ?funcs m @ ssa ?funcs m
