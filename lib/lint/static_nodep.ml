(** Static quick-answer pass: resolve provably-disjoint-region queries
    before any speculation module is consulted (in the spirit of a
    purely static dependence pre-pass; see PAPERS.md, Staticdeps).

    Soundness mirrors [Scaf_analysis.Basic_aa] — the reference for what
    static reasoning this framework considers safe: both pointers must
    resolve to a *single* base each; distinct concrete objects never
    overlap; the same object with two constant offsets is disjoint only
    when the byte intervals miss each other and the allocation site's
    dynamic instance is stable across the query's temporal scope.

    The engine consults this (opt-in, [--static-nodep]) before the
    orchestrator; hits are counted in [Metrics] and never cached — they
    are cheaper than a cache probe. *)

open Scaf
open Scaf_cfg
open Scaf_analysis

let provenance = Response.Sset.singleton "static-nodep"

let disjoint (prog : Progctx.t) ~(tr : Query.temporal) ~(lid : string option)
    (l1 : Query.memloc) (l2 : Query.memloc) : bool =
  match
    ( Ptrexpr.resolve prog ~fname:l1.Query.fname l1.Query.ptr,
      Ptrexpr.resolve prog ~fname:l2.Query.fname l2.Query.ptr )
  with
  | [ x1 ], [ x2 ] ->
      Ptrexpr.distinct_objects x1.Ptrexpr.base x2.Ptrexpr.base
      || x1.Ptrexpr.base = x2.Ptrexpr.base
         && Ptrexpr.is_object x1.Ptrexpr.base
         && Basic_aa.site_instance_stable prog tr lid x1.Ptrexpr.base
         && (match (x1.Ptrexpr.off, x2.Ptrexpr.off) with
            | Some o1, Some o2 ->
                Basic_aa.classify_offsets o1 l1.Query.size o2 l2.Query.size
                = Aresult.NoAlias
            | _ -> false)
  | _ -> false

(** [answer prog q] — a free, maximally precise response when the
    query's regions are provably disjoint; [None] otherwise (fall
    through to the orchestrator). *)
let answer (prog : Progctx.t) (q : Query.t) : Response.t option =
  match q with
  | Query.Alias a ->
      if disjoint prog ~tr:a.Query.atr ~lid:a.Query.aloop a.Query.a1 a.Query.a2
      then Some (Response.free ~provenance (Aresult.RAlias Aresult.NoAlias))
      else None
  | Query.Modref mq -> (
      let l1 = Autil.loc_of_instr prog mq.Query.minstr in
      let l2 =
        match mq.Query.mtarget with
        | Query.TLoc l -> Some l
        | Query.TInstr i -> Autil.loc_of_instr prog i
      in
      match (l1, l2) with
      | Some l1, Some l2
        when disjoint prog ~tr:mq.Query.mtr ~lid:mq.Query.mloop l1 l2 ->
          Some (Response.free ~provenance (Aresult.RModref Aresult.NoModRef))
      | _ -> None)
