(** The lint pass manager.

    A {!t} is a named analysis producing diagnostics over a module.
    Passes that need CFG/loop information ([needs_ctx]) only run once the
    context-free well-formedness passes report no errors — building a
    [Progctx] over a structurally broken module raises — and receive a
    [Progctx.t] built once and shared; {!report} hands that context back
    so callers (e.g. [Program.commit]) can keep it instead of rebuilding.

    [?funcs] restricts function-local passes to the named functions —
    the Edit API re-lints only the functions an edit touched.
    Module-wide checks (id uniqueness, callee resolution) always run;
    they are cross-function properties and cheap.

    With [?metrics], per-pass wall time goes to histograms
    [lint.pass.<name>_s] and diagnostic counts to counters
    [lint.diagnostics.errors] / [lint.diagnostics.warnings]. *)

open Scaf_ir
open Scaf_cfg

type t = {
  name : string;
  needs_ctx : bool;
  run :
    funcs:string list option ->
    Progctx.t option ->
    Irmod.t ->
    Diagnostic.t list;
}

let wellformed : t =
  {
    name = "wellformed";
    needs_ctx = false;
    run = (fun ~funcs _ m -> Wellformed.run ?funcs m);
  }

let ctx_pass name f : t =
  {
    name;
    needs_ctx = true;
    run =
      (fun ~funcs prog _m ->
        match prog with Some p -> f ?funcs:funcs p | None -> []);
  }

let loopcheck : t = ctx_pass "loopcheck" Loopcheck.run
let deadcode : t = ctx_pass "deadcode" Deadcode.run
let memsanity : t = ctx_pass "memsanity" Memsanity.run
let cost : t = ctx_pass "cost" Cost.run

(** The standard suite, in execution order. *)
let default : t list = [ wellformed; loopcheck; deadcode; memsanity; cost ]

type report = {
  diagnostics : Diagnostic.t list;  (** sorted: errors first *)
  timings : (string * float) list;  (** (pass, seconds), execution order *)
  skipped : string list;
      (** context passes not run because well-formedness failed *)
  ctx : Progctx.t option;
      (** the analysis context built for the context passes, for reuse *)
}

let errors (r : report) : Diagnostic.t list = Diagnostic.errors r.diagnostics
let clean (r : report) : bool = errors r = []

let run ?metrics ?funcs ?(passes = default) (m : Irmod.t) : report =
  let diags = ref [] and timings = ref [] in
  let observe name dt =
    timings := (name, dt) :: !timings;
    match metrics with
    | Some reg ->
        Scaf_trace.Metrics.observe
          (Scaf_trace.Metrics.histogram reg ("lint.pass." ^ name ^ "_s"))
          dt
    | None -> ()
  in
  let run_pass prog (p : t) =
    let t0 = Sys.time () in
    let ds = p.run ~funcs prog m in
    observe p.name (Sys.time () -. t0);
    diags := !diags @ ds
  in
  let pre, needing_ctx = List.partition (fun p -> not p.needs_ctx) passes in
  List.iter (run_pass None) pre;
  let ctx, skipped =
    if List.exists Diagnostic.is_error !diags then
      (None, List.map (fun p -> p.name) needing_ctx)
    else begin
      let prog = Progctx.build m in
      List.iter (run_pass (Some prog)) needing_ctx;
      (Some prog, [])
    end
  in
  let diagnostics = List.stable_sort Diagnostic.compare !diags in
  (match metrics with
  | Some reg ->
      let count sev =
        List.length
          (List.filter (fun d -> d.Diagnostic.severity = sev) diagnostics)
      in
      Scaf_trace.Metrics.add
        (Scaf_trace.Metrics.counter reg "lint.diagnostics.errors")
        (count Diagnostic.Error);
      Scaf_trace.Metrics.add
        (Scaf_trace.Metrics.counter reg "lint.diagnostics.warnings")
        (count Diagnostic.Warning)
  | None -> ());
  { diagnostics; timings = List.rev !timings; skipped; ctx }

let pp_report ppf (r : report) =
  List.iter (fun d -> Fmt.pf ppf "%a@." Diagnostic.pp d) r.diagnostics;
  if r.skipped <> [] then
    Fmt.pf ppf "(skipped: %s — fix well-formedness errors first)@."
      (String.concat ", " r.skipped)
