(** Structured lint diagnostics.

    Every finding of the static-analysis framework is one {!t}: a
    machine-readable [code] (stable, dot-separated, e.g. ["wf.ssa"] or
    ["mem.escape-ret"]), the [pass] that produced it, a {!severity}, a
    source {!span} (function / block / loop / instruction — all optional,
    refined as far as the pass can localize), and a human-readable
    message.

    Diagnostics replaced the ad-hoc error strings of the edit/verify
    paths: callers render them with {!pp} (one line each), machine
    consumers key on [code], and the wire protocol serializes them whole
    so a rejected submission carries its full lint report. *)

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_name = function
  | "error" -> Error
  | "warning" -> Warning
  | "info" -> Info
  | s -> invalid_arg (Printf.sprintf "Diagnostic.severity_of_name: %S" s)

(** Where in the program the finding points. Everything is optional: a
    module-wide finding carries nothing, a well-localized one carries the
    function, block and instruction id. *)
type span = {
  func : string option;
  block : string option;
  loop : string option;  (** loop id, ["func:header_label"] *)
  instr : int option;  (** instruction id *)
}

let no_span = { func = None; block = None; loop = None; instr = None }

type t = {
  code : string;  (** stable machine-readable identity *)
  severity : severity;
  pass : string;  (** producing pass *)
  span : span;
  message : string;
}

let make ?func ?block ?loop ?instr ~code ~pass (severity : severity)
    (message : string) : t =
  { code; severity; pass; span = { func; block; loop; instr }; message }

let error ?func ?block ?loop ?instr ~code ~pass fmt =
  Fmt.kstr (fun m -> make ?func ?block ?loop ?instr ~code ~pass Error m) fmt

let warning ?func ?block ?loop ?instr ~code ~pass fmt =
  Fmt.kstr (fun m -> make ?func ?block ?loop ?instr ~code ~pass Warning m) fmt

let info ?func ?block ?loop ?instr ~code ~pass fmt =
  Fmt.kstr (fun m -> make ?func ?block ?loop ?instr ~code ~pass Info m) fmt

let is_error (d : t) : bool = d.severity = Error

(** Parse a [Scaf_ir.Verify.error]'s ["@func:block"] / ["@func"] location
    into a span. *)
let span_of_where (where : string) : span =
  let where =
    if String.length where > 0 && where.[0] = '@' then
      String.sub where 1 (String.length where - 1)
    else where
  in
  match String.index_opt where ':' with
  | Some i ->
      {
        no_span with
        func = Some (String.sub where 0 i);
        block = Some (String.sub where (i + 1) (String.length where - i - 1));
      }
  | None -> { no_span with func = (if where = "" then None else Some where) }

let pp_span ppf (s : span) =
  let parts =
    List.filter_map Fun.id
      [
        Option.map (fun f -> "@" ^ f) s.func;
        Option.map (fun b -> b) s.block;
        Option.map (fun l -> "loop " ^ l) s.loop;
        Option.map (fun i -> Printf.sprintf "instr %d" i) s.instr;
      ]
  in
  match parts with
  | [] -> Fmt.string ppf "<module>"
  | parts -> Fmt.string ppf (String.concat ":" parts)

(** One line: [severity[code] span: message]. *)
let pp ppf (d : t) =
  Fmt.pf ppf "%s[%s] %a: %s" (severity_name d.severity) d.code pp_span d.span
    d.message

(** Deterministic ordering: severity (errors first), then function,
    instruction, code, message. *)
let compare (a : t) (b : t) : int =
  let sev = function Error -> 0 | Warning -> 1 | Info -> 2 in
  let c = Stdlib.compare (sev a.severity) (sev b.severity) in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.span.func b.span.func in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.span.instr b.span.instr in
      if c <> 0 then c
      else
        let c = String.compare a.code b.code in
        if c <> 0 then c else String.compare a.message b.message

let errors (ds : t list) : t list = List.filter is_error ds

(** Render a diagnostic list as one semicolon-joined line — the bridge for
    callers that still want a flat error string (logs, [failwith]). *)
let to_summary (ds : t list) : string =
  String.concat "; " (List.map (fun d -> Fmt.str "%a" pp d) ds)
