(** Static cost estimator: per-loop instruction and memory-operation
    counts, and the number of dependence queries the PDG client would
    issue for the loop if it were hot.

    The query estimate mirrors [Scaf_pdg.Pdg.queries_of_loop] exactly
    (kept local to avoid a dependency cycle through the suite): every
    ordered pair of memory operations with at least one potential writer
    costs an intra- and a cross-iteration query, and each writer costs
    one cross-iteration self query. With [m] memory ops of which [w] may
    write: [2*(m*(m-1) - (m-w)*(m-w-1)) + w].

    The daemon's admission control uses the module total as the a priori
    cost of a submitted program — a submission whose loops would explode
    into more queries than the configured budget is rejected before any
    profiling or analysis runs. *)

open Scaf_ir
open Scaf_cfg

let pass_name = "cost"

(* Mirrors [Scaf_pdg.Pdg.is_mem_op] / [may_write]. *)
let is_mem_op (m : Irmod.t) (i : Instr.t) : bool =
  match i.Instr.kind with
  | Instr.Load _ | Instr.Store _ -> true
  | Instr.Call { callee; _ } ->
      not
        (Irmod.has_attr m callee Func.Readnone
        || Irmod.has_attr m callee Func.Malloc_like)
  | _ -> false

let may_write (m : Irmod.t) (i : Instr.t) : bool =
  match i.Instr.kind with
  | Instr.Store _ -> true
  | Instr.Call { callee; _ } ->
      is_mem_op m i && not (Irmod.has_attr m callee Func.Readonly)
  | _ -> false

let est_queries ~(mem_ops : int) ~(writers : int) : int =
  let r = mem_ops - writers in
  (2 * ((mem_ops * (mem_ops - 1)) - (r * (r - 1)))) + writers

type loop_cost = {
  lfunc : string;
  lid : string;
  depth : int;
  blocks : int;
  instrs : int;  (** non-terminator instructions in loop blocks *)
  mem_ops : int;
  writers : int;
  est : int;  (** dependence queries the PDG client would issue *)
}

type summary = {
  loops : loop_cost list;
  total_instrs : int;  (** whole module, loops or not *)
  total_mem_ops : int;
  total_est : int;
      (** sum over all loops; nested loops count at each depth, as the
          client queries each loop level separately *)
}

let of_ctx ?funcs (prog : Progctx.t) : summary =
  let m = prog.Progctx.m in
  let selected (f : Func.t) =
    match funcs with None -> true | Some fs -> List.mem f.Func.name fs
  in
  let loops =
    List.concat_map
      (fun (f : Func.t) ->
        if not (selected f) then []
        else
          match
            (Progctx.cfg_of prog f.Func.name, Progctx.loops_of prog f.Func.name)
          with
          | Some cfg, Some li ->
              List.map
                (fun (l : Loops.loop) ->
                  let instrs, mem, wr =
                    Loops.Int_set.fold
                      (fun bi (n, mm, ww) ->
                        List.fold_left
                          (fun (n, mm, ww) i ->
                            ( n + 1,
                              (if is_mem_op m i then mm + 1 else mm),
                              if may_write m i then ww + 1 else ww ))
                          (n, mm, ww)
                          (Cfg.block cfg bi).Block.instrs)
                      l.Loops.blocks (0, 0, 0)
                  in
                  {
                    lfunc = f.Func.name;
                    lid = l.Loops.lid;
                    depth = l.Loops.depth;
                    blocks = Loops.Int_set.cardinal l.Loops.blocks;
                    instrs;
                    mem_ops = mem;
                    writers = wr;
                    est = est_queries ~mem_ops:mem ~writers:wr;
                  })
                li.Loops.loops
          | _ -> [])
      m.Irmod.funcs
  in
  let total_instrs =
    List.fold_left
      (fun acc (f : Func.t) ->
        if selected f then acc + List.length (Func.instrs f) else acc)
      0 m.Irmod.funcs
  in
  let total_mem_ops =
    List.fold_left
      (fun acc (f : Func.t) ->
        if selected f then
          Func.fold_instrs f
            (fun acc _ i -> if is_mem_op m i then acc + 1 else acc)
            acc
        else acc)
      0 m.Irmod.funcs
  in
  {
    loops;
    total_instrs;
    total_mem_ops;
    total_est = List.fold_left (fun acc l -> acc + l.est) 0 loops;
  }

let diagnostics (s : summary) : Diagnostic.t list =
  List.map
    (fun (l : loop_cost) ->
      Diagnostic.info ~func:l.lfunc ~loop:l.lid ~code:"cost.loop"
        ~pass:pass_name
        "%d block(s), %d instr(s), %d mem op(s) (%d writer(s)) — about %d \
         dependence queries"
        l.blocks l.instrs l.mem_ops l.writers l.est)
    s.loops

let run ?funcs (prog : Progctx.t) : Diagnostic.t list =
  diagnostics (of_ctx ?funcs prog)

let pp_summary ppf (s : summary) =
  Fmt.pf ppf "module: %d instrs, %d mem ops, ~%d queries over %d loop(s)@."
    s.total_instrs s.total_mem_ops s.total_est (List.length s.loops);
  List.iter
    (fun (l : loop_cost) ->
      Fmt.pf ppf "  %-24s depth %d  %3d instrs  %3d mem ops  ~%d queries@."
        l.lid l.depth l.instrs l.mem_ops l.est)
    s.loops
