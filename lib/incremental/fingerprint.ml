(** Per-function profile fingerprints.

    Profile-dependent answers ([uses_profile] in a module's caps) must be
    invalidated when the profile facts they could have read changed — but
    re-profiling after an edit regenerates every table, so "did the profile
    change?" cannot be asked of the tables directly. This module renders
    each profile bundle into a canonical, per-function set of fact strings
    and compares those across an edit: a function whose fact set is
    byte-identical before and after contributes nothing new to any
    profile-derived answer, so such answers survive.

    Attribution: edge counts through the terminator/block/function they
    count; access facts (values, residues, points-to) through the function
    owning the instruction; loop-scoped facts (lifetime read/write sets,
    allocation sites, violations, memory dependences) through the loop's
    function. Transient collection state (lifetime [pending]/[live_oids],
    memdep shadow memory) and the time profile are excluded: the former is
    dead weight after profiling finishes, and wall-clock timings differ
    between runs of identical programs — fingerprinting them would turn
    every edit into a global invalidation. *)

open Scaf_profile

type t = (string, string list) Hashtbl.t
(* function name -> sorted fact strings *)

let func_of_lid (lid : string) : string =
  match String.index_opt lid ':' with
  | Some i -> String.sub lid 0 i
  | None -> lid

let add (acc : (string, string list) Hashtbl.t) (fname : string) (fact : string)
    : unit =
  Hashtbl.replace acc fname
    (fact :: Option.value ~default:[] (Hashtbl.find_opt acc fname))

let pp_site = Fmt.to_to_string Site.pp

let of_profiles (p : Profiles.t) : t =
  let acc = Hashtbl.create 64 in
  let ctx = p.Profiles.ctx in
  let func_of_instr id =
    Option.map
      (fun o -> o.Scaf_ir.Irmod.Index.func.Scaf_ir.Func.name)
      (Scaf_cfg.Progctx.occ ctx id)
  in
  let add_instr_fact id fact =
    match func_of_instr id with Some f -> add acc f fact | None -> ()
  in
  (* edge profile *)
  Hashtbl.iter
    (fun (tid, dst) n ->
      match Hashtbl.find_opt ctx.Scaf_cfg.Progctx.index.Scaf_ir.Irmod.Index.term_by_id tid with
      | Some (f, b) ->
          add acc f.Scaf_ir.Func.name
            (Printf.sprintf "edge %s->%s %d" b.Scaf_ir.Block.label dst n)
      | None -> ())
    p.Profiles.edges.Edge_profile.edges;
  Hashtbl.iter
    (fun (f, label) n -> add acc f (Printf.sprintf "block %s %d" label n))
    p.Profiles.edges.Edge_profile.blocks;
  Hashtbl.iter
    (fun f n -> add acc f (Printf.sprintf "func %d" n))
    p.Profiles.edges.Edge_profile.funcs;
  (* value profile *)
  Hashtbl.iter
    (fun id (e : Value_profile.entry) ->
      add_instr_fact id
        (Printf.sprintf "value %d %Ld %b %d" id e.Value_profile.first
           e.Value_profile.stable e.Value_profile.count))
    p.Profiles.values;
  (* residue profile *)
  Hashtbl.iter
    (fun id (e : Residue_profile.entry) ->
      add_instr_fact id
        (Printf.sprintf "residue %d %d %d" id e.Residue_profile.residues
           e.Residue_profile.count))
    p.Profiles.residues;
  (* points-to profile *)
  let pt_fact tag id (e : Points_to_profile.entry) =
    Printf.sprintf "pt%s %d [%s] %d %d %s %d" tag id
      (String.concat ";"
         (List.map pp_site (Site.Set.elements e.Points_to_profile.sites)))
      e.Points_to_profile.min_off e.Points_to_profile.max_off
      (match e.Points_to_profile.const_off with
      | Some o -> string_of_int o
      | None -> "*")
      e.Points_to_profile.count
  in
  Hashtbl.iter
    (fun id e -> add_instr_fact id (pt_fact "" id e))
    p.Profiles.points_to.Points_to_profile.by_instr;
  Hashtbl.iter
    (fun (id, cc) e ->
      add_instr_fact id
        (pt_fact
           (Printf.sprintf "@[%s]"
              (String.concat "," (List.map string_of_int cc)))
           id e))
    p.Profiles.points_to.Points_to_profile.by_instr_ctx;
  (* lifetime profile (transient pending/live_oids excluded) *)
  Hashtbl.iter
    (fun (lid, site) (rw : Lifetime_profile.rw) ->
      add acc (func_of_lid lid)
        (Printf.sprintf "rw %s %s %d %d" lid (pp_site site)
           rw.Lifetime_profile.reads rw.Lifetime_profile.writes))
    p.Profiles.lifetime.Lifetime_profile.rw;
  Hashtbl.iter
    (fun (lid, site) () ->
      add acc (func_of_lid lid) (Printf.sprintf "alloc %s %s" lid (pp_site site)))
    p.Profiles.lifetime.Lifetime_profile.alloc_sites;
  Hashtbl.iter
    (fun (lid, site) () ->
      add acc (func_of_lid lid)
        (Printf.sprintf "violated %s %s" lid (pp_site site)))
    p.Profiles.lifetime.Lifetime_profile.violated;
  (* memory-dependence profile (shadow memory excluded) *)
  Hashtbl.iter
    (fun lid tbl ->
      Hashtbl.iter
        (fun (src, dst, cross) n ->
          add acc (func_of_lid lid)
            (Printf.sprintf "memdep %s %d->%d %b %d" lid src dst cross n))
        tbl)
    p.Profiles.memdep.Memdep_profile.deps;
  (* canonicalize *)
  Hashtbl.filter_map_inplace (fun _ facts -> Some (List.sort compare facts)) acc;
  acc

(** Functions whose fact set differs between the two fingerprints
    (including functions present in only one). *)
let changed ~(before : t) ~(after : t) : string list =
  let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] in
  List.sort_uniq compare (keys before @ keys after)
  |> List.filter (fun f ->
         Hashtbl.find_opt before f <> Hashtbl.find_opt after f)
