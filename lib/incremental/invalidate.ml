(** The invalidation pass: after a committed edit, decide which cached
    answers are still derivable from the new program and evict the rest.

    A cached answer is {e directly} dirty when some module that contributed
    to it could have read something the edit changed, judged per that
    module's declared {!Scaf.Module_api.reach}:

    - [Reach_global]: the module may read anything — any edit dirties its
      answers (the sound fallback for unannotated modules);
    - [Reach_local]: dirty iff the query's own functions intersect the
      edited functions, or (for profile-using modules) the functions whose
      profile fingerprints changed;
    - [Reach_symbols]: as local, but through the value-flow symbol
      closure ({!Components}) of the edited functions and globals.

    A node with no recorded consults (or consulting a module whose caps are
    unknown) is conservatively dirty. Dirtiness then propagates
    transitively along premise edges to a fixpoint — an answer derived from
    a dirty premise is dirty — with premise keys missing from the graph
    treated as dirty. Finally {!Scaf.Qcache.invalidate} evicts the dirty
    entries and restamps the survivors to the new epoch; a cached entry
    with no graph node at all (collector attached late, graph dropped) is
    evicted. *)

open Scaf

type stats = {
  nodes : int;  (** provenance-graph nodes examined *)
  dirty : int;  (** nodes judged dirty (direct + transitive) *)
  evicted : int;  (** cache entries dropped *)
  retained : int;  (** cache entries restamped to the new epoch *)
}

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "%d/%d nodes dirty; cache -%d/+%d" s.dirty s.nodes s.evicted
    s.retained

(** [run] — mark-and-evict. [touched_funcs]/[touched_globals] come from the
    edit {!Scaf_suite.Edit.diff}; [profile_dirty] from the
    {!Fingerprint.changed} comparison; [components] must be built over the
    union of the pre- and post-edit programs; [caps_of] resolves a
    consulted module's declared capabilities. *)
let run ~(graph : Collector.graph)
    ~(caps_of : string -> Module_api.caps option)
    ~(components : Components.t) ~(touched_funcs : string list)
    ~(touched_globals : string list) ~(profile_dirty : string list)
    ~(next_epoch : int) (cache : Qcache.t) : stats =
  let edit_reach =
    Components.reach components ~funcs:touched_funcs ~globals:touched_globals
  in
  let profile_reach =
    Components.reach components ~funcs:profile_dirty ~globals:[]
  in
  let hits_local funcs among = List.exists (fun f -> List.mem f among) funcs in
  let module_dirties (n : Collector.node) (mname : string) : bool =
    match caps_of mname with
    | None -> true
    | Some c -> (
        match c.Module_api.reach with
        | Module_api.Reach_global -> true
        | Module_api.Reach_local ->
            hits_local n.Collector.nfuncs touched_funcs
            || (c.Module_api.uses_profile
               && hits_local n.Collector.nfuncs profile_dirty)
        | Module_api.Reach_symbols ->
            List.exists edit_reach n.Collector.nfuncs
            || (c.Module_api.uses_profile
               && List.exists profile_reach n.Collector.nfuncs))
  in
  let direct (n : Collector.node) : bool =
    n.Collector.nmodules = []
    || List.exists (module_dirties n) n.Collector.nmodules
  in
  (* seed with directly dirty nodes, then propagate along premise edges;
     the graph lock is held for the whole mark phase (concurrent frontends
     publishing mid-walk could otherwise tear the fixpoint) *)
  Mutex.lock graph.Collector.lock;
  let dirty : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun key n -> if direct n then Hashtbl.replace dirty key ())
    graph.Collector.nodes;
  let premise_dirty key =
    Hashtbl.mem dirty key
    || not (Hashtbl.mem graph.Collector.nodes key)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun key (n : Collector.node) ->
        if
          (not (Hashtbl.mem dirty key))
          && List.exists premise_dirty n.Collector.npremises
        then begin
          Hashtbl.replace dirty key ();
          changed := true
        end)
      graph.Collector.nodes
  done;
  Mutex.unlock graph.Collector.lock;
  let dirty_query (q : Query.t) : bool =
    let key = Collector.key_of_query q in
    Hashtbl.mem dirty key || not (Hashtbl.mem graph.Collector.nodes key)
  in
  let evicted, retained = Qcache.invalidate cache ~dirty:dirty_query ~next_epoch in
  {
    nodes = Hashtbl.length graph.Collector.nodes;
    dirty = Hashtbl.length dirty;
    evicted;
    retained;
  }
