(** An incremental analysis session: one {!Scaf_suite.Program.t} handle,
    one shared {!Scaf.Qcache.t}, one invalidation-graph {!Collector}, and
    an orchestrator rebuilt (over the surviving cache) after every edit.

    The contract is differential: after any edit sequence, {!ask} must
    return byte-identical answers to a from-scratch batch run over the
    edited program — the invalidation pass may only evict {e more} than
    strictly necessary, never less. The batch baseline is {!baseline},
    a fresh session over {!Scaf_suite.Program.fork} of the edited handle:
    forking shares the edited in-memory module, so both sides analyze the
    {e same} instruction ids (re-parsing printed source would renumber
    them and break byte-comparability for reasons that have nothing to do
    with incrementality).

    {!ask} pre-probes the cache before handing the query to the
    orchestrator, maintaining the recompute counters the <20%%
    re-answer gate and the read-set qcheck property are judged on. *)

open Scaf
open Scaf_suite

type counters = {
  mutable asked : int;  (** queries submitted since the last reset *)
  mutable recomputed : int;
      (** of those, how many missed the cache (were actually re-derived) *)
}

type t = {
  program : Program.t;
  cache : Qcache.t;
  graph : Collector.graph;
  frontend : Collector.t;
  mutable modules : Module_api.t list;
  mutable orch : Orchestrator.t;
  counters : counters;
}

let modules_of (p : Program.t) : Module_api.t list =
  let profiles = Program.profiles p in
  Scaf_analysis.Registry.create (Program.ctx p)
  @ Scaf_speculation.Registry.create profiles

(* The orchestrator mirrors the batch scaf scheme — full analysis +
   speculation stack over the profiled context, no clock (deterministic
   output) — plus the epoch stamp and the collector's sink.
   [l1_flush_every:1] publishes every memoized answer into the shared
   store immediately: the session's recompute counters are defined by the
   {e shared-store} pre-probe in {!ask}, so an answer parked in a pending
   L1 batch would misclassify its re-ask as a recompute. A session is
   single-threaded, so per-add publication costs exactly what the
   pre-L1 design did. *)
let make_orch (p : Program.t) (cache : Qcache.t) (frontend : Collector.t)
    (modules : Module_api.t list) : Orchestrator.t =
  let profiles = Program.profiles p in
  let config =
    {
      (Orchestrator.default_config modules) with
      Orchestrator.epoch = Program.epoch p;
      depsink = Collector.sink frontend;
    }
  in
  Orchestrator.create ~cache ~l1_flush_every:1
    profiles.Scaf_profile.Profiles.ctx config

let create (program : Program.t) : t =
  let cache = Qcache.create () in
  let graph =
    Collector.create_graph
      ~funcs_of:(Collector.funcs_of_ctx (Program.ctx program))
  in
  let frontend = Collector.frontend graph in
  let modules = modules_of program in
  {
    program;
    cache;
    graph;
    frontend;
    modules;
    orch = make_orch program cache frontend modules;
    counters = { asked = 0; recomputed = 0 };
  }

let program (t : t) : Program.t = t.program
let epoch (t : t) : int = Program.epoch t.program
let counters (t : t) : counters = t.counters

let reset_counters (t : t) : unit =
  t.counters.asked <- 0;
  t.counters.recomputed <- 0

(** Resolve a client query at the session's current epoch. The pre-probe
    classifies it as cached vs recomputed {e before} the orchestrator runs
    (uncacheable queries — those carrying a control-flow view — always
    count as recomputed). *)
let ask (t : t) (q : Query.t) : Response.t =
  let q = Query.at_epoch (epoch t) q in
  t.counters.asked <- t.counters.asked + 1;
  (match Qcache.find_q t.cache q with
  | Some _ -> ()
  | None -> t.counters.recomputed <- t.counters.recomputed + 1);
  Orchestrator.handle t.orch q

(** The benchmark's standard client workload: every PDG dependence query of
    every hot loop, in deterministic order. *)
let workload (t : t) : Query.t list =
  let ctx = Program.ctx t.program in
  let profiles = Program.profiles t.program in
  List.concat_map
    (fun (lid, _) ->
      List.map (Scaf_pdg.Pdg.to_query lid) (Scaf_pdg.Pdg.queries_of_loop ctx lid))
    (Scaf_pdg.Nodep.hot_loop_weights profiles)

(** Apply an edit script, re-profile, and run the invalidation pass.
    On [Ok] the session is at the new epoch with a rebuilt orchestrator
    over the surviving cache entries; on [Error] it is untouched and the
    lint/edit diagnostics say why. *)
let edit (t : t) (ops : Edit.op list) :
    (Edit.diff * Invalidate.stats, Scaf_lint.Diagnostic.t list) result =
  let old_m = Program.program t.program in
  let old_fp = Fingerprint.of_profiles (Program.profiles t.program) in
  match Edit.apply_all t.program ops with
  | Error e -> Error e
  | Ok diff ->
      let new_fp = Fingerprint.of_profiles (Program.profiles t.program) in
      let profile_dirty = Fingerprint.changed ~before:old_fp ~after:new_fp in
      let components =
        Components.build [ old_m; Program.program t.program ]
      in
      let caps_of name =
        Option.map
          (fun (m : Module_api.t) -> m.Module_api.caps)
          (List.find_opt
             (fun (m : Module_api.t) -> String.equal m.Module_api.name name)
             t.modules)
      in
      (* the invalidation walk restamps only what the shared store holds:
         any answer still buffered in the orchestrator's L1 batch must be
         published first or the generation bump drops it *)
      Orchestrator.flush_cache t.orch;
      let stats =
        Invalidate.run ~graph:t.graph ~caps_of ~components
          ~touched_funcs:diff.Edit.touched_funcs
          ~touched_globals:diff.Edit.touched_globals ~profile_dirty
          ~next_epoch:diff.Edit.epoch t.cache
      in
      Collector.set_funcs_of t.graph
        (Collector.funcs_of_ctx (Program.ctx t.program));
      t.modules <- modules_of t.program;
      t.orch <- make_orch t.program t.cache t.frontend t.modules;
      Ok (diff, stats)

(** A fresh from-scratch session over an independent fork of the (edited)
    program — the differential baseline. Shares the in-memory module and
    memoized profiles, nothing else. *)
let baseline (t : t) : t = create (Program.fork t.program)

(** Render a workload's answers in the canonical differential format, one
    ["query => response"] line per query. [Query.pp] never prints the
    epoch, so incremental and batch renderings are byte-comparable. *)
let render_answers (t : t) (qs : Query.t list) : string =
  String.concat ""
    (List.map
       (fun q ->
         Fmt.str "%a => %a\n" Query.pp q Response.pp (ask t q))
       qs)

(** The scripted single-loop edit used by the watch CLI, the qcheck
    differential property, the bench gate and CI: insert one fresh
    side-effect-free instruction at the top of a hot loop's header block
    (after any leading phis). The register name embeds the current epoch,
    so repeated auto-edits stay SSA-unique.

    The invalidation pass is function-precise (an edit to loop [L]
    recomputes exactly the queries whose read-set meets [L]'s function),
    so which loop is edited decides the recompute share outright. The
    scripted edit targets the hot loop owning the {e smallest} slice of
    the client workload — the representative "small change to a big
    program" the <20%% re-answer gate is about; the qcheck differential
    property separately exercises edits to arbitrary loops. *)
let auto_edit (t : t) : Edit.op =
  let ctx = Program.ctx t.program in
  let profiles = Program.profiles t.program in
  let weighted =
    List.map
      (fun (lid, _) ->
        (List.length (Scaf_pdg.Pdg.queries_of_loop ctx lid), lid))
      (Scaf_pdg.Nodep.hot_loop_weights profiles)
  in
  match List.sort compare weighted with
  | [] -> invalid_arg "auto_edit: benchmark has no hot loops"
  | (_, lid) :: _ ->
      let fname, header =
        match String.index_opt lid ':' with
        | Some i ->
            ( String.sub lid 0 i,
              String.sub lid (i + 1) (String.length lid - i - 1) )
        | None -> invalid_arg ("auto_edit: malformed lid " ^ lid)
      in
      let at =
        (* phis must stay a prefix of the block *)
        match
          Option.bind
            (Scaf_ir.Irmod.find_func (Program.program t.program) fname)
            (fun f -> Scaf_ir.Func.find_block f header)
        with
        | None -> 0
        | Some b ->
            let rec leading_phis n = function
              | { Scaf_ir.Instr.kind = Scaf_ir.Instr.Phi _; _ } :: rest ->
                  leading_phis (n + 1) rest
              | _ -> n
            in
            leading_phis 0 b.Scaf_ir.Block.instrs
      in
      Edit.Insert_instr
        {
          fname;
          block = header;
          at;
          text = Printf.sprintf "  %%__edit%d = add 1, 2" (epoch t);
        }
