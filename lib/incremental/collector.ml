(** The invalidation-graph collector: a {!Scaf.Depsink.t} implementation
    that turns the orchestrator's dependency events into a provenance graph
    of *what each memoized answer read*.

    The orchestrator emits strictly nested events (each orchestrator is
    single-threaded): [Enter] when a query misses the memo table and the
    consult sweep starts, [Consult] per module evaluated, [Hit] when a
    (premise) query is served from the memo table, and [Exit] when the
    sweep finishes, flagged with whether the answer was memoized. The
    collector mirrors this nesting with a frame stack:

    - a memoized [Exit] publishes the frame as a graph {!node} keyed by the
      canonical query print (the same identity, modulo epoch, that
      {!Scaf.Qcache} keys on) and records it as a premise of its parent;
    - a non-memoized [Exit] (deep premise, uncacheable query, expired
      deadline) *folds* its consults and premise edges into the parent
      frame — whatever the unmemoized sub-derivation read, its memoized
      ancestor read too;
    - a [Hit] records a premise edge from the current frame to the cached
      entry's node.

    The resulting graph is exactly what the invalidation pass needs: per
    cached answer, the functions its query footprint touches, the modules
    that contributed (whose {!Scaf.Module_api.caps} bound how far they
    read), and the memoized premises it depends on.

    Structure mirrors the cache-sharing one: orchestrators sharing one
    {!Scaf.Qcache.t} (one per worker thread in the daemon) each own a
    per-thread {!t} frontend — frame nesting is per-orchestrator — and all
    frontends publish into one shared {!graph}, whose node table is
    mutex-guarded. *)

open Scaf

type node = {
  nfuncs : string list;  (** functions the query footprint touches *)
  nmodules : string list;  (** modules consulted while deriving the answer *)
  npremises : string list;  (** keys of memoized premises it depends on *)
}

type graph = {
  nodes : (string, node) Hashtbl.t;
  lock : Mutex.t;
  mutable funcs_of : Query.t -> string list;
      (** query -> footprint functions; rebound after each edit (the
          mapping reads the current program's instruction index) *)
}

type frame = {
  fq : Query.t;
  mutable fmodules : string list;  (* reversed accumulation *)
  mutable fpremises : string list;
}

type t = { graph : graph; mutable stack : frame list }
(* one frontend per orchestrator: nesting state is thread-private *)

(** The graph identity of a query: its canonical print. [Query.pp] never
    prints the epoch and {!Scaf.Query.canonical} fixes mirror orientation,
    so the key survives epoch restamps and mirrored lookups — the same
    invariances {!Scaf.Qcache} keys have. *)
let key_of_query (q : Query.t) : string =
  Fmt.str "%a" Query.pp (Query.canonical q)

let create_graph ~(funcs_of : Query.t -> string list) : graph =
  { nodes = Hashtbl.create 1024; lock = Mutex.create (); funcs_of }

let frontend (graph : graph) : t = { graph; stack = [] }

(** One-shot convenience for single-threaded owners (the incremental
    session): a fresh graph with its only frontend. *)
let create ~(funcs_of : Query.t -> string list) : t =
  frontend (create_graph ~funcs_of)

let set_funcs_of (g : graph) (f : Query.t -> string list) : unit =
  g.funcs_of <- f

let node_of (g : graph) (key : string) : node option =
  Mutex.lock g.lock;
  let n = Hashtbl.find_opt g.nodes key in
  Mutex.unlock g.lock;
  n

let size (g : graph) : int = Hashtbl.length g.nodes

let uniq l = List.sort_uniq compare l

let record_premise (t : t) (key : string) : unit =
  match t.stack with
  | top :: _ -> top.fpremises <- key :: top.fpremises
  | [] -> ()

let on_event (t : t) (ev : Depsink.event) : unit =
  match ev with
  | Depsink.Enter { q; _ } ->
      t.stack <- { fq = q; fmodules = []; fpremises = [] } :: t.stack
  | Depsink.Consult { name } -> (
      match t.stack with
      | top :: _ -> top.fmodules <- name :: top.fmodules
      | [] -> ())
  | Depsink.Hit { q; _ } -> record_premise t (key_of_query q)
  | Depsink.Exit { q; memoized } -> (
      match t.stack with
      | [] -> ()
      | top :: rest ->
          t.stack <- rest;
          if memoized then begin
            let key = key_of_query q in
            let n =
              {
                nfuncs = uniq (t.graph.funcs_of q);
                nmodules = uniq top.fmodules;
                npremises = uniq top.fpremises;
              }
            in
            Mutex.lock t.graph.lock;
            Hashtbl.replace t.graph.nodes key n;
            Mutex.unlock t.graph.lock;
            record_premise t key
          end
          else begin
            (* fold the unmemoized derivation into its parent: the parent's
               cached answer depends on everything read down here *)
            match t.stack with
            | parent :: _ ->
                parent.fmodules <- top.fmodules @ parent.fmodules;
                parent.fpremises <- top.fpremises @ parent.fpremises
            | [] -> ()
          end)

let sink (t : t) : Depsink.t = { Depsink.emit = (fun ev -> on_event t ev) }

(** The footprint-function mapping for queries against [ctx]: the
    functions named by the query's memory locations, instruction
    occurrences and loop scope. Unresolvable ids (e.g. ids deleted by a
    later edit) contribute nothing — the invalidation pass treats such
    nodes through their remaining funcs, and the cache entry itself is
    keyed on a query whose ids can no longer be issued. *)
let funcs_of_ctx (ctx : Scaf_cfg.Progctx.t) (q : Query.t) : string list =
  let func_of_instr id =
    match Scaf_cfg.Progctx.occ ctx id with
    | Some o -> [ o.Scaf_ir.Irmod.Index.func.Scaf_ir.Func.name ]
    | None -> []
  in
  let func_of_lid lid =
    match String.index_opt lid ':' with
    | Some i -> [ String.sub lid 0 i ]
    | None -> []
  in
  match q with
  | Query.Alias a ->
      [ a.Query.a1.Query.fname; a.Query.a2.Query.fname ]
      @ (match a.Query.aloop with Some l -> func_of_lid l | None -> [])
  | Query.Modref m ->
      func_of_instr m.Query.minstr
      @ (match m.Query.mtarget with
        | Query.TInstr i -> func_of_instr i
        | Query.TLoc loc -> [ loc.Query.fname ])
      @ (match m.Query.mloop with Some l -> func_of_lid l | None -> [])
