(** Value-flow symbol components — the program partition behind the
    [Reach_symbols] invalidation scope.

    A module declaring {!Scaf.Module_api.Reach_symbols} may read beyond the
    query's own function, but only along value flow: globals the function
    references, and calls that actually pass values (arguments or a
    captured result). This module materializes that relation as a
    union-find over symbols — one node per function and per global — with:

    - an edge between a function and every global it references;
    - an edge between caller and callee when the call passes arguments or
      captures the result (a bare [call @f()] whose result is dropped
      transfers no values, so the two sides stay separate components —
      exactly the shape of the suite's piece-per-piece [main] driver).

    Calls to {e external declarations} never union: a declaration has no
    program text an analysis could have read, so two functions that share
    only an external callee (every kernel calls [@malloc] and [@sink]) do
    not read each other's text through it.

    Soundness across an edit wants the {e union} of the pre- and post-edit
    relations (a deleted call edge once carried values into the cached
    answers; a new one carries values now), so {!build} accepts several
    modules and unions them all into one partition. *)

open Scaf_ir

type t = (string, string) Hashtbl.t
(* parent map over symbol names; roots absent or self-mapped *)

let fsym f = "f:" ^ f
let gsym g = "g:" ^ g

let rec find (t : t) (x : string) : string =
  match Hashtbl.find_opt t x with
  | None | Some "" -> x
  | Some p when String.equal p x -> x
  | Some p ->
      let r = find t p in
      Hashtbl.replace t x r;
      r

let union (t : t) (a : string) (b : string) : unit =
  let ra = find t a and rb = find t b in
  if not (String.equal ra rb) then Hashtbl.replace t ra rb

let add_module (t : t) (m : Irmod.t) : unit =
  let defined name = Irmod.find_func m name <> None in
  List.iter
    (fun (f : Func.t) ->
      let fs = fsym f.Func.name in
      let link_value = function
        | Value.Global g -> union t fs (gsym g)
        | _ -> ()
      in
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (i : Instr.t) ->
              List.iter link_value (Instr.operands i);
              match i.Instr.kind with
              | Instr.Call { callee; args } ->
                  (* values flow across the call iff it passes arguments or
                     the caller captures the result — and the callee has a
                     body to read at all *)
                  if (args <> [] || i.Instr.dst <> None) && defined callee
                  then union t fs (fsym callee)
              | _ -> ())
            b.Block.instrs;
          List.iter link_value (Instr.term_operands b.Block.term))
        f.Func.blocks)
    m.Irmod.funcs

(** One partition over the union of all [ms] (pre- and post-edit program
    states). *)
let build (ms : Irmod.t list) : t =
  let t = Hashtbl.create 256 in
  List.iter (add_module t) ms;
  t

(** [reach t ~funcs ~globals] — the membership test of the symbol closure:
    does a function share a component with any touched function or touched
    global? *)
let reach (t : t) ~(funcs : string list) ~(globals : string list) :
    string -> bool =
  let roots =
    List.sort_uniq compare
      (List.map (fun f -> find t (fsym f)) funcs
      @ List.map (fun g -> find t (gsym g)) globals)
  in
  fun f -> List.mem (find t (fsym f)) roots
