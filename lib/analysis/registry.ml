(** The CAF memory-analysis ensemble: all 13 modules, in the default
    consultation order (cheap local reasoning first, module-wide
    reachability last — memory modules are assertion-free, so order only
    affects latency, §3.3).

    Each module is annotated with its capability declaration
    ({!Scaf.Module_api.caps}): the query classes it can improve, the
    premise classes it emits, and the invalidation scope of its answers
    (reach / profile dependence). The orchestrator never filters on these —
    they feed the audit layer's query-plan lint and the incremental
    engine's invalidation pass. The memory modules are profile-free;
    modules that chase underlying objects, call sites or globals across
    function boundaries declare [Reach_symbols], the rest [Reach_local]. *)

open Scaf.Module_api

let w ?(reach = Reach_local) answers emits m =
  with_caps { answers; emits; reach; uses_profile = false } m

let create (prog : Scaf_cfg.Progctx.t) : Scaf.Module_api.t list =
  [
    w [ CAlias; CModref_instr; CModref_loc ] [ CAlias ] (Basic_aa.create prog);
    w ~reach:Reach_symbols [ CAlias ] [] (Underlying_objects_aa.create prog);
    w ~reach:Reach_symbols
      [ CModref_instr; CModref_loc ]
      [ CAlias ] (Callsite_aa.create prog);
    w [ CAlias ] [ CAlias ] (Disjoint_fields_aa.create prog);
    w [ CAlias ] [ CAlias ] (Scev_aa.create prog);
    w [ CAlias ] [ CAlias ] (Induction_range_aa.create prog);
    w [ CAlias ] [] (Loop_fresh_aa.create prog);
    w [ CAlias ] [ CAlias ] (Unique_paths_aa.create prog);
    w [ CModref_instr; CModref_loc ] [ CAlias ] (Kill_flow_aa.create prog);
    w ~reach:Reach_symbols
      [ CModref_instr; CModref_loc ]
      [ CAlias ]
      (Semi_local_fun_aa.create prog);
    w ~reach:Reach_symbols [ CAlias ] [ CAlias ] (Global_malloc_aa.create prog);
    w ~reach:Reach_symbols [ CAlias ] [ CAlias ]
      (No_capture_source_aa.create prog);
    w ~reach:Reach_symbols [ CAlias ] [ CAlias ]
      (No_capture_global_aa.create prog);
  ]
