(** Global-malloc reachability (factored).

    A global whose every store writes a freshly-malloc'd pointer defines a
    heap *partition*: pointers loaded from it can only point into objects
    allocated at those malloc sites. Two partitions with disjoint site sets
    cannot alias; a partition cannot alias a distinct concrete object.

    Offending stores (non-malloc values, or stores that might target the
    global through opaque pointers) are discharged through premise modref
    queries — which the control speculation module can resolve for
    speculatively dead stores, the exact collaboration described in §4.2.4. *)

open Scaf
open Scaf_ir
open Scaf_cfg

type region =
  | RPartition of string * int list  (** global, malloc sites *)
  | RSite of Ptrexpr.base
  | RUnknown

let max_offenders = 4

(* Try to prove every offending store harmless w.r.t. global [g]; returns
   the combined assertion options on success. *)
let discharge (ctx : Module_api.Ctx.t) (g : string)
    (offenders : Globsum.store_info list) :
    (Assertion.t list list * Response.Sset.t) option =
  if List.length offenders > max_offenders then None
  else
    let rec go opts prov = function
      | [] -> Some (opts, prov)
      | (s : Globsum.store_info) :: rest -> (
          let premise =
            Query.modref_loc ~tr:Query.Same s.Globsum.sid
              (Value.Global g, 8, s.Globsum.sfname)
          in
          let presp = Module_api.Ctx.ask ctx premise in
          match presp.Response.result with
          | Aresult.RModref Aresult.NoModRef ->
              go
                (Join.product opts presp.Response.options)
                (Response.Sset.union prov presp.Response.provenance)
                rest
          | _ -> None)
    in
    go [ [] ] Response.Sset.empty offenders

let region_of (prog : Progctx.t) (gsum : Globsum.t) (ctx : Module_api.Ctx.t)
    ~(fname : string) (v : Value.t) :
    (region * Assertion.t list list * Response.Sset.t) list =
  List.map
    (fun (x : Ptrexpr.t) ->
      match x.Ptrexpr.base with
      | Ptrexpr.BLoad l -> (
          match Progctx.occ prog l with
          | Some o -> (
              match o.Irmod.Index.instr.Instr.kind with
              | Instr.Load { ptr; _ } -> (
                  match Ptrexpr.resolve prog ~fname ptr with
                  | [ { Ptrexpr.base = Ptrexpr.BGlobal g; _ } ] -> (
                      let sites, offenders = Globsum.malloc_partition gsum g in
                      match discharge ctx g offenders with
                      | Some (opts, prov) -> (RPartition (g, sites), opts, prov)
                      | None -> (RUnknown, [ [] ], Response.Sset.empty))
                  | _ -> (RUnknown, [ [] ], Response.Sset.empty))
              | _ -> (RUnknown, [ [] ], Response.Sset.empty))
          | None -> (RUnknown, [ [] ], Response.Sset.empty))
      | b when Ptrexpr.is_object b -> (RSite b, [ [] ], Response.Sset.empty)
      | _ -> (RUnknown, [ [] ], Response.Sset.empty))
    (Ptrexpr.resolve prog ~fname v)

let disjoint (r1 : region) (r2 : region) : bool =
  match (r1, r2) with
  | RPartition (_, s1), RPartition (_, s2) ->
      List.for_all (fun s -> not (List.mem s s2)) s1
  | RPartition (_, s), RSite (Ptrexpr.BMalloc m)
  | RSite (Ptrexpr.BMalloc m), RPartition (_, s) ->
      not (List.mem m s)
  | RPartition _, RSite (Ptrexpr.BGlobal _ | Ptrexpr.BAlloca _ | Ptrexpr.BNull)
  | RSite (Ptrexpr.BGlobal _ | Ptrexpr.BAlloca _ | Ptrexpr.BNull), RPartition _
    ->
      (* partitions contain heap objects only *)
      true
  | RSite a, RSite b -> Ptrexpr.distinct_objects a b
  | _ -> false

let answer (prog : Progctx.t) (gsum : Globsum.t) (ctx : Module_api.Ctx.t)
    (q : Query.t) : Response.t =
  match q with
  | Query.Modref _ -> Module_api.no_answer q
  | Query.Alias a ->
      if a.Query.adr = Some Query.DMustAlias then Module_api.no_answer q
      else begin
        let rs1 =
          region_of prog gsum ctx ~fname:a.Query.a1.Query.fname
            a.Query.a1.Query.ptr
        in
        let rs2 =
          region_of prog gsum ctx ~fname:a.Query.a2.Query.fname
            a.Query.a2.Query.ptr
        in
        (* at least one side must actually involve a partition, and all
           pairs must be disjoint *)
        let involves_partition =
          List.exists (fun (r, _, _) -> match r with RPartition _ -> true | _ -> false)
            (rs1 @ rs2)
        in
        if
          involves_partition
          && List.for_all
               (fun (r1, _, _) ->
                 List.for_all (fun (r2, _, _) -> disjoint r1 r2) rs2)
               rs1
        then begin
          let opts, prov =
            List.fold_left
              (fun (o, p) (_, o2, p2) ->
                (Join.product o o2, Response.Sset.union p p2))
              ([ [] ], Response.Sset.empty)
              (rs1 @ rs2)
          in
          if opts = [] then Module_api.no_answer q
          else
            {
              Response.result = Aresult.RAlias Aresult.NoAlias;
              options = opts;
              provenance = prov;
            }
        end
        else Module_api.no_answer q
      end

let create (prog : Progctx.t) : Module_api.t =
  let gsum = Globsum.build prog in
  Module_api.make ~name:"global-malloc-aa" ~kind:Module_api.Memory
    ~factored:true (fun ctx q -> answer prog gsum ctx q)
