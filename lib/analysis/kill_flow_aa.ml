(** Kill-flow analysis (factored) — the paper's motivating module (§2.2.2,
    §3.5).

    A flow from [i1] to [i2] is dead if some store [k] must-overwrite the
    flowing location on *every* path from [i1] to [i2]. Path reasoning uses
    the control-flow view supplied by the query ([mctrl]): when the control
    speculation module re-issues a query with a speculative view (dead
    blocks removed), this module transparently proves kills that the static
    CFG cannot — the collaboration of Figure 6.

    Premise queries with Desired Result = MustAlias establish that the
    killer covers the flowing footprint; any module (including speculation
    modules) may resolve them. *)

open Scaf
open Scaf_ir
open Scaf_cfg

let max_candidates = 32

(* Collect candidate killer stores inside the region (a loop, or the whole
   function). *)
let killer_candidates (prog : Progctx.t) ~(fname : string)
    ~(loop : Loops.loop option) : Instr.t list =
  match Progctx.cfg_of prog fname with
  | None -> []
  | Some cfg ->
      let blocks =
        match loop with
        | Some l ->
            List.filter
              (fun i -> Loops.contains l i)
              (List.init (Cfg.num_blocks cfg) Fun.id)
        | None -> List.init (Cfg.num_blocks cfg) Fun.id
      in
      List.concat_map
        (fun bi ->
          List.filter
            (fun (i : Instr.t) ->
              match i.Instr.kind with Instr.Store _ -> true | _ -> false)
            (Cfg.block cfg bi).Block.instrs)
        blocks

(* Does the path structure force every relevant path to pass [k]?
   [src]/[dst] are instruction ids; [mode] selects the path family. *)
let paths_all_killed (ctrl : Ctrl.t) ~(loop : Loops.loop option)
    ~(mode : [ `Same | `Header_to_dst | `Src_to_latches ]) ~(src : int)
    ~(dst : int) ~(k : int) : bool =
  let cfg = ctrl.Ctrl.cfg in
  match (Cfg.position cfg src, Cfg.position cfg dst, Cfg.position cfg k) with
  | Some (bs, ps), Some (bd, pd), Some (bk, pk) -> (
      let in_loop b =
        match loop with Some l -> Loops.contains l b | None -> true
      in
      let block_ok b = in_loop b && ctrl.Ctrl.live b in
      let kill = { Reach.blk = bk; pos = pk } in
      if not (ctrl.Ctrl.live bk) then false
      else
        match mode with
        | `Same ->
            (* intra-iteration: do not re-enter the loop header *)
            let header = match loop with Some l -> Some l.Loops.header | None -> None in
            let succs b =
              List.filter
                (fun s -> Some s <> header)
                (ctrl.Ctrl.succs b)
            in
            not
              (Reach.path_avoiding ~succs ~block_ok
                 ~src:{ Reach.blk = bs; pos = ps }
                 ~dst:{ Reach.blk = bd; pos = pd }
                 ~kill ())
        | `Header_to_dst -> (
            (* cross-iteration arrival: header entry down to dst *)
            match loop with
            | None -> false
            | Some l ->
                not
                  (Reach.path_avoiding ~succs:ctrl.Ctrl.succs ~block_ok
                     ~src:(Reach.entry_of l.Loops.header)
                     ~dst:{ Reach.blk = bd; pos = pd }
                     ~kill ()))
        | `Src_to_latches -> (
            (* cross-iteration departure: src to every latch exit *)
            match loop with
            | None -> false
            | Some l ->
                l.Loops.latches <> []
                && List.for_all
                     (fun latch ->
                       not
                         (Reach.path_avoiding ~succs:ctrl.Ctrl.succs ~block_ok
                            ~src:{ Reach.blk = bs; pos = ps }
                            ~dst:(Reach.exit_of latch) ~kill ()))
                     l.Loops.latches))
  | _ -> false

let answer (prog : Progctx.t) (ctx : Module_api.Ctx.t) (q : Query.t) : Response.t
    =
  match q with
  | Query.Alias _ -> Module_api.no_answer q
  | Query.Modref m -> (
      (* only flows out of a store are killable *)
      match Autil.rw_of_instr prog m.Query.minstr with
      | `Store -> (
          match (Autil.loc_of_instr prog m.Query.minstr, m.Query.mtarget) with
          | Some loc1, Query.TInstr i2 -> (
              match Autil.loc_of_instr prog i2 with
              | Some loc2 -> (
                  match Progctx.occ prog m.Query.minstr with
                  | Some o when String.equal o.Irmod.Index.func.Func.name loc2.Query.fname
                    -> (
                      let fname = loc2.Query.fname in
                      let ctrl =
                        match m.Query.mctrl with
                        | Some c -> Some c
                        | None -> Progctx.ctrl_of prog fname
                      in
                      match ctrl with
                      | None -> Module_api.no_answer q
                      | Some ctrl ->
                          let loop =
                            match m.Query.mloop with
                            | Some lid -> (
                                match Progctx.loop_of_lid prog lid with
                                | Some (lf, l) when String.equal lf fname ->
                                    Some l
                                | _ -> None)
                            | None -> None
                          in
                          if m.Query.mtr <> Query.Same && loop = None then
                            Module_api.no_answer q
                          else begin
                            let candidates =
                              killer_candidates prog ~fname ~loop
                              |> List.filter (fun (k : Instr.t) ->
                                     k.Instr.id <> m.Query.minstr
                                     && k.Instr.id <> i2)
                            in
                            let candidates =
                              if List.length candidates > max_candidates then
                                []
                              else candidates
                            in
                            (* try killers until one covers and cuts *)
                            let try_killer (k : Instr.t) : Response.t option =
                              let kloc =
                                match Instr.footprint k with
                                | Some (ptr, size) ->
                                    { Query.ptr; size; fname }
                                | None -> assert false
                              in
                              begin
                                let covers (target : Query.memloc) =
                                  if kloc.Query.size < target.Query.size then
                                    None
                                  else
                                  let premise =
                                    Query.Alias
                                      {
                                        Query.a1 =
                                          { kloc with Query.size = target.Query.size };
                                        atr = Query.Same;
                                        a2 = target;
                                        aloop = m.Query.mloop;
                                        acc = m.Query.mcc;
                                        adr = Some Query.DMustAlias;
                                        aepoch = m.Query.mepoch;
                                      }
                                  in
                                  let presp = Module_api.Ctx.ask ctx premise in
                                  match presp.Response.result with
                                  | Aresult.RAlias Aresult.MustAlias ->
                                      Some presp
                                  | _ -> None
                                in
                                let finish (presp : Response.t) =
                                  Some
                                    {
                                      presp with
                                      Response.result =
                                        Aresult.RModref Aresult.NoModRef;
                                    }
                                in
                                match m.Query.mtr with
                                | Query.Same -> (
                                    match covers loc2 with
                                    | Some presp
                                      when paths_all_killed ctrl ~loop
                                             ~mode:`Same ~src:m.Query.minstr
                                             ~dst:i2 ~k:k.Instr.id ->
                                        finish presp
                                    | _ -> None)
                                | Query.Before -> (
                                    (* killed on arrival in i2's iteration,
                                       or killed before leaving i1's *)
                                    match covers loc2 with
                                    | Some presp
                                      when paths_all_killed ctrl ~loop
                                             ~mode:`Header_to_dst
                                             ~src:m.Query.minstr ~dst:i2
                                             ~k:k.Instr.id ->
                                        finish presp
                                    | _ -> (
                                        match covers loc1 with
                                        | Some presp
                                          when paths_all_killed ctrl ~loop
                                                 ~mode:`Src_to_latches
                                                 ~src:m.Query.minstr ~dst:i2
                                                 ~k:k.Instr.id ->
                                            finish presp
                                        | _ -> None))
                                | Query.After -> None
                              end
                            in
                            let rec first = function
                              | [] -> Module_api.no_answer q
                              | k :: rest -> (
                                  match try_killer k with
                                  | Some r -> r
                                  | None -> first rest)
                            in
                            (* flows sink into reads or overwrites; only
                               store -> load and store -> store matter *)
                            match Autil.rw_of_instr prog i2 with
                            | `Load | `Store -> first candidates
                            | _ -> Module_api.no_answer q
                          end)
                  | _ -> Module_api.no_answer q)
              | None -> Module_api.no_answer q)
          | _ -> Module_api.no_answer q)
      | _ -> Module_api.no_answer q)

let create (prog : Progctx.t) : Module_api.t =
  Module_api.make ~name:"kill-flow-aa" ~kind:Module_api.Memory ~factored:true
    (fun ctx q -> answer prog ctx q)
