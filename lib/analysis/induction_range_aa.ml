(** Induction-range / congruence analysis (factored).

    Handles struct-field accesses inside arrays even when the two accesses
    use *different* induction variables: if every induction term's
    coefficient is a multiple of a modulus [m], each address is congruent
    to its constant offset mod [m]; disjoint offset windows within [0, m)
    give NoAlias for every pair of iterations (e.g. [a + 16*i] vs
    [a + 16*j + 8] with 8-byte accesses). *)

open Scaf
open Scaf_ir
open Scaf_cfg

let rec gcd64 (a : int64) (b : int64) : int64 =
  if Int64.equal b 0L then Int64.abs a else gcd64 b (Int64.rem a b)

let answer (prog : Progctx.t) (ctx : Module_api.Ctx.t) (q : Query.t) : Response.t
    =
  match q with
  | Query.Modref _ -> Module_api.no_answer q
  | Query.Alias a -> (
      if a.Query.adr = Some Query.DMustAlias then
        (* this module only ever proves NoAlias *)
        Module_api.no_answer q
      else
        match Autil.loop_env prog a.Query.aloop with
        | None -> Module_api.no_answer q
        | Some env -> (
            if not (String.equal env.Affine.fname a.Query.a1.Query.fname) then
              Module_api.no_answer q
            else
              match
                ( Affine.of_value env a.Query.a1.Query.ptr,
                  Affine.of_value env a.Query.a2.Query.ptr )
              with
              | Some f1, Some f2 -> (
                  let coeffs =
                    List.map snd f1.Affine.terms @ List.map snd f2.Affine.terms
                  in
                  (* the modulus: gcd of every variable contribution; terms
                     over invariant registers would contribute unknown
                     multiples of their coefficient, which is fine *)
                  let m = List.fold_left gcd64 0L coeffs in
                  if Int64.compare m 2L < 0 then Module_api.no_answer q
                  else begin
                    let mi = Int64.to_int m in
                    let w1 =
                      Int64.to_int
                        (Int64.rem
                           (Int64.add (Int64.rem f1.Affine.c m) m)
                           m)
                    in
                    let w2 =
                      Int64.to_int
                        (Int64.rem
                           (Int64.add (Int64.rem f2.Affine.c m) m)
                           m)
                    in
                    let s1 = a.Query.a1.Query.size
                    and s2 = a.Query.a2.Query.size in
                    (* windows must not wrap and must be disjoint in [0, m) *)
                    if
                      w1 + s1 <= mi && w2 + s2 <= mi
                      && (w1 + s1 <= w2 || w2 + s2 <= w1)
                    then
                      if Value.equal f1.Affine.root f2.Affine.root then
                        Response.free (Aresult.RAlias Aresult.NoAlias)
                      else begin
                        let premise =
                          Query.alias ~fname:a.Query.a1.Query.fname
                            ?loop:a.Query.aloop ?cc:a.Query.acc
                            ~dr:Query.DMustAlias ~tr:Query.Same
                            (f1.Affine.root, 1)
                            (f2.Affine.root, 1)
                        in
                        let presp = Module_api.Ctx.ask ctx premise in
                        match presp.Response.result with
                        | Aresult.RAlias Aresult.MustAlias ->
                            {
                              presp with
                              Response.result = Aresult.RAlias Aresult.NoAlias;
                            }
                        | _ -> Module_api.no_answer q
                      end
                    else Module_api.no_answer q
                  end)
              | _ -> Module_api.no_answer q))

let create (prog : Progctx.t) : Module_api.t =
  Module_api.make ~name:"induction-range-aa" ~kind:Module_api.Memory
    ~factored:true (fun ctx q -> answer prog ctx q)
