(** Underlying-objects analysis (shape-analysis stand-in): trace each
    pointer through gep/phi/select chains to the full *set* of allocation
    sites it can point into; two pointers whose sets are pairwise-distinct
    concrete objects cannot alias. *)

open Scaf
open Scaf_cfg

let answer_alias (prog : Progctx.t) (q : Query.alias_q) : Response.t =
  let open Ptrexpr in
  let r1 = resolve prog ~fname:q.Query.a1.Query.fname q.Query.a1.Query.ptr in
  let r2 = resolve prog ~fname:q.Query.a2.Query.fname q.Query.a2.Query.ptr in
  if
    all_objects r1 && all_objects r2
    && List.for_all
         (fun (x1 : t) ->
           List.for_all (fun (x2 : t) -> distinct_objects x1.base x2.base) r2)
         r1
  then Response.free (Aresult.RAlias Aresult.NoAlias)
  else Response.bottom_alias

let answer (prog : Progctx.t) (_ctx : Module_api.Ctx.t) (q : Query.t) :
    Response.t =
  match q with
  | Query.Alias a -> answer_alias prog a
  | Query.Modref _ -> Module_api.no_answer q

let create (prog : Progctx.t) : Module_api.t =
  Module_api.make ~name:"underlying-objects-aa" ~kind:Module_api.Memory
    ~factored:false (fun ctx q -> answer prog ctx q)
