(** Basic alias rules (module 1 of the CAF ensemble, factored).

    Alias queries: single-resolution reasoning — distinct objects cannot
    alias; same object + constant offsets classify as
    NoAlias/MustAlias/SubAlias by interval arithmetic (with temporal
    instance checks for cross-iteration queries).

    Modref queries: the kind refinement (loads never Mod, stores never
    Ref), plus the central *footprint lift*: a modref query between two
    direct accesses is reduced to an alias premise query between their
    footprints and handed back to the Orchestrator, so every other module —
    including speculation modules — can contribute (§3.1). *)

open Scaf
open Scaf_ir
open Scaf_cfg

let classify_offsets (o1 : int64) (s1 : int) (o2 : int64) (s2 : int) :
    Aresult.alias_res =
  let open Aresult in
  let d = Int64.sub o1 o2 in
  let s1L = Int64.of_int s1 and s2L = Int64.of_int s2 in
  if Int64.compare d s2L >= 0 || Int64.compare (Int64.add d s1L) 0L <= 0 then
    NoAlias
  else if Int64.equal d 0L && s1 = s2 then MustAlias
  else if Int64.compare d 0L >= 0 && Int64.compare (Int64.add d s1L) s2L <= 0
  then SubAlias
  else if Int64.compare d 0L <= 0 && Int64.compare (Int64.add d s1L) s2L >= 0
  then SubAlias
  else MayAlias (* partial overlap *)

(* Is the dynamic instance of [site] stable across the query's temporal
   scope? Globals always; allocas/mallocs only when the query is
   intra-iteration or the site is outside the query loop. *)
let site_instance_stable (prog : Progctx.t) (tr : Query.temporal)
    (lid : string option) (b : Ptrexpr.base) : bool =
  match b with
  | Ptrexpr.BGlobal _ | Ptrexpr.BNull -> true
  | Ptrexpr.BAlloca id | Ptrexpr.BMalloc id -> (
      match tr with
      | Query.Same -> Autil.unique_per_iteration prog ~lid id
      | Query.Before | Query.After -> (
          match lid with
          | None -> false
          | Some lid -> (
              match Progctx.loop_of_lid prog lid with
              | Some (fname, loop) -> (
                  match Progctx.loops_of prog fname with
                  | Some li -> not (Loops.contains_instr li loop id)
                  | None -> false)
              | None -> false)))
  | _ -> false

let answer_alias (prog : Progctx.t) (q : Query.alias_q) : Response.t =
  let open Ptrexpr in
  (* syntactic identity: same SSA value denotes the same address within an
     iteration (and across iterations when loop-invariant) *)
  if
    Value.equal q.Query.a1.Query.ptr q.Query.a2.Query.ptr
    && Autil.instance_stable q.Query.atr
         ~invariant:
           (Autil.value_invariant prog ~fname:q.Query.a1.Query.fname
              ~lid:q.Query.aloop q.Query.a1.Query.ptr)
         ~unique:
           (Autil.value_unique_per_iteration prog
              ~fname:q.Query.a1.Query.fname ~lid:q.Query.aloop
              q.Query.a1.Query.ptr)
  then begin
    if q.Query.a1.Query.size = q.Query.a2.Query.size then
      Response.free (Aresult.RAlias Aresult.MustAlias)
    else Response.free (Aresult.RAlias Aresult.SubAlias)
  end
  else
  let r1 = resolve prog ~fname:q.Query.a1.Query.fname q.Query.a1.Query.ptr in
  let r2 = resolve prog ~fname:q.Query.a2.Query.fname q.Query.a2.Query.ptr in
  match (r1, r2) with
  | [ x1 ], [ x2 ] ->
      if distinct_objects x1.base x2.base then
        Response.free (Aresult.RAlias Aresult.NoAlias)
      else if
        x1.base = x2.base && is_object x1.base
        && site_instance_stable prog q.Query.atr q.Query.aloop x1.base
      then
        match (x1.off, x2.off) with
        | Some o1, Some o2 ->
            let res =
              classify_offsets o1 q.Query.a1.Query.size o2 q.Query.a2.Query.size
            in
            if res = Aresult.MayAlias then Response.bottom_alias
            else Response.free (Aresult.RAlias res)
        | _ -> Response.bottom_alias
      else Response.bottom_alias
  | _ -> Response.bottom_alias

let answer (prog : Progctx.t) (ctx : Module_api.Ctx.t) (q : Query.t) :
    Response.t =
  match q with
  | Query.Alias a -> answer_alias prog a
  | Query.Modref m -> (
      let kind_r = Autil.kind_refinement prog m.Query.minstr in
      (* the footprint lift: only meaningful when both sides are direct
         accesses *)
      match Autil.footprint_alias_premise prog m ~dr:Query.DNoAlias () with
      | Some premise ->
          let presp = Module_api.Ctx.ask ctx (Query.Alias premise) in
          let lifted =
            Autil.modref_of_alias_response prog m.Query.minstr presp
          in
          Join.join Join.Cheapest kind_r lifted
      | None -> kind_r)

let create (prog : Progctx.t) : Module_api.t =
  Module_api.make ~name:"basic-aa" ~kind:Module_api.Memory ~factored:true
    (fun ctx q -> answer prog ctx q)
