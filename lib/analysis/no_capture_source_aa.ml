(** No-capture-source reachability (factored).

    An alloca/malloc whose address never escapes its function's SSA values
    cannot be the target of any pointer of unknown provenance (loaded from
    memory, received as an argument, or returned by an opaque call).
    Capturing instructions may be discharged by premise queries (e.g.
    proven speculatively dead by the control speculation module). *)

open Scaf
open Scaf_ir
open Scaf_cfg

let max_offenders = 4

(* Site id -> Some offender-instruction-ids (empty = uncaptured), cached. *)
let offenders_of (prog : Progctx.t) (cache : (int, int list option) Hashtbl.t)
    (site : int) : int list option =
  match Hashtbl.find_opt cache site with
  | Some v -> v
  | None ->
      let v =
        match Escape.captures_of_site prog site with
        | None -> None
        | Some caps ->
            let hard = ref false in
            let ids =
              List.filter_map
                (fun (c : Escape.capture) ->
                  match c.Escape.ckind with
                  | `Stored | `Call_arg -> Some c.Escape.cinstr
                  | `Returned ->
                      hard := true;
                      None
                  | `Phi_carried -> None)
                caps
            in
            if !hard then None else Some (List.sort_uniq compare ids)
      in
      Hashtbl.replace cache site v;
      v

let discharge (prog : Progctx.t) (ctx : Module_api.Ctx.t) (ids : int list) :
    (Assertion.t list list * Response.Sset.t) option =
  if List.length ids > max_offenders then None
  else
    let rec go opts prov = function
      | [] -> Some (opts, prov)
      | id :: rest -> (
          match Progctx.occ prog id with
          | None -> None
          | Some o -> (
              let fname = o.Irmod.Index.func.Func.name in
              let loc =
                match Instr.footprint o.Irmod.Index.instr with
                | Some (ptr, size) -> (ptr, size, fname)
                | None -> (Value.Null, 1, fname)
              in
              let premise = Query.modref_loc ~tr:Query.Same id loc in
              let presp = Module_api.Ctx.ask ctx premise in
              match presp.Response.result with
              | Aresult.RModref Aresult.NoModRef ->
                  go
                    (Join.product opts presp.Response.options)
                    (Response.Sset.union prov presp.Response.provenance)
                    rest
              | _ -> None))
    in
    go [ [] ] Response.Sset.empty ids

(* Every resolution of [v] is of unknown provenance — the kind of pointer
   that cannot reach an uncaptured local object. *)
let all_opaque (prog : Progctx.t) ~(fname : string) (v : Value.t) : bool =
  let rs = Ptrexpr.resolve prog ~fname v in
  rs <> []
  && List.for_all
       (fun (x : Ptrexpr.t) ->
         match x.Ptrexpr.base with
         | Ptrexpr.BLoad _ | Ptrexpr.BArg _ | Ptrexpr.BCall _ -> true
         | _ -> false)
       rs

let answer (prog : Progctx.t) (cache : (int, int list option) Hashtbl.t)
    (ctx : Module_api.Ctx.t) (q : Query.t) : Response.t =
  match q with
  | Query.Modref _ -> Module_api.no_answer q
  | Query.Alias a ->
      if a.Query.adr = Some Query.DMustAlias then Module_api.no_answer q
      else begin
        let f1 = a.Query.a1.Query.fname and f2 = a.Query.a2.Query.fname in
        let p1 = a.Query.a1.Query.ptr and p2 = a.Query.a2.Query.ptr in
        let site_of v fname =
          match Ptrexpr.resolve prog ~fname v with
          | [ { Ptrexpr.base = Ptrexpr.BAlloca s; _ } ]
          | [ { Ptrexpr.base = Ptrexpr.BMalloc s; _ } ] ->
              Some s
          | _ -> None
        in
        let attempt site other other_fname =
          match offenders_of prog cache site with
          | None -> None
          | Some ids ->
              if all_opaque prog ~fname:other_fname other then
                match discharge prog ctx ids with
                | Some (opts, prov) when opts <> [] ->
                    Some
                      {
                        Response.result = Aresult.RAlias Aresult.NoAlias;
                        options = opts;
                        provenance = prov;
                      }
                | _ -> None
              else None
        in
        let r =
          match site_of p1 f1 with
          | Some s -> attempt s p2 f2
          | None -> (
              match site_of p2 f2 with
              | Some s -> attempt s p1 f1
              | None -> None)
        in
        Option.value ~default:(Module_api.no_answer q) r
      end

let create (prog : Progctx.t) : Module_api.t =
  let cache = Hashtbl.create 16 in
  Module_api.make ~name:"no-capture-source-aa" ~kind:Module_api.Memory
    ~factored:true (fun ctx q -> answer prog cache ctx q)
