(** Semi-local function summaries (factored).

    Summarizes, per user-defined function, the abstract regions it may read
    and write: named globals, memory reachable from its pointer arguments,
    and "unknown" (anything, through opaque pointers or un-summarizable
    callees). Modref queries involving direct calls to summarized functions
    are answered by comparing the target location against the summary;
    argument-reachable regions are premise-compared against the location. *)

open Scaf
open Scaf_ir
open Scaf_cfg

module Sset = Set.Make (String)

type summary = {
  gmod : Sset.t;  (** globals possibly written *)
  gref : Sset.t;  (** globals possibly read *)
  arg_mod : bool;  (** writes through argument-derived pointers *)
  arg_ref : bool;
  unk_mod : bool;  (** writes through opaque pointers / unknown callees *)
  unk_ref : bool;
}

let empty_sum =
  {
    gmod = Sset.empty;
    gref = Sset.empty;
    arg_mod = false;
    arg_ref = false;
    unk_mod = false;
    unk_ref = false;
  }

let merge a b =
  {
    gmod = Sset.union a.gmod b.gmod;
    gref = Sset.union a.gref b.gref;
    arg_mod = a.arg_mod || b.arg_mod;
    arg_ref = a.arg_ref || b.arg_ref;
    unk_mod = a.unk_mod || b.unk_mod;
    unk_ref = a.unk_ref || b.unk_ref;
  }

(* Classify a pointer's resolutions into summary effects. *)
let effect_of (prog : Progctx.t) ~(fname : string) (ptr : Value.t)
    ~(write : bool) : summary =
  List.fold_left
    (fun acc (x : Ptrexpr.t) ->
      match x.Ptrexpr.base with
      | Ptrexpr.BGlobal g ->
          if write then { acc with gmod = Sset.add g acc.gmod }
          else { acc with gref = Sset.add g acc.gref }
      | Ptrexpr.BAlloca _ | Ptrexpr.BMalloc _ | Ptrexpr.BNull ->
          acc (* local objects die with the call; invisible to callers *)
      | Ptrexpr.BArg _ ->
          if write then { acc with arg_mod = true } else { acc with arg_ref = true }
      | _ -> if write then { acc with unk_mod = true } else { acc with unk_ref = true })
    empty_sum
    (Ptrexpr.resolve prog ~fname ptr)

let summarize (prog : Progctx.t) : (string, summary) Hashtbl.t =
  let sums : (string, summary) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) -> Hashtbl.replace sums f.Func.name empty_sum)
    prog.Progctx.m.Irmod.funcs;
  let m = prog.Progctx.m in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 10 do
    changed := false;
    incr rounds;
    List.iter
      (fun (f : Func.t) ->
        let fname = f.Func.name in
        let acc = ref empty_sum in
        Func.iter_instrs f (fun _ (i : Instr.t) ->
            match i.Instr.kind with
            | Instr.Load { ptr; _ } ->
                acc := merge !acc (effect_of prog ~fname ptr ~write:false)
            | Instr.Store { ptr; _ } ->
                acc := merge !acc (effect_of prog ~fname ptr ~write:true)
            | Instr.Call { callee; args } -> (
                match Irmod.find_func m callee with
                | Some _ ->
                    (* user function: fold its current summary; its
                       argument effects flow through our args *)
                    let cs =
                      Option.value ~default:empty_sum
                        (Hashtbl.find_opt sums callee)
                    in
                    let arg_effects =
                      List.fold_left
                        (fun a v ->
                          merge a
                            (merge
                               (if cs.arg_mod then
                                  effect_of prog ~fname v ~write:true
                                else empty_sum)
                               (if cs.arg_ref then
                                  effect_of prog ~fname v ~write:false
                                else empty_sum)))
                        empty_sum args
                    in
                    acc :=
                      merge !acc
                        (merge arg_effects
                           { cs with arg_mod = false; arg_ref = false })
                | None ->
                    if Irmod.has_attr m callee Func.Readnone then ()
                    else if Irmod.has_attr m callee Func.Malloc_like then ()
                    else if Irmod.has_attr m callee Func.Argmemonly then
                      List.iter
                        (fun v ->
                          acc :=
                            merge !acc
                              (merge
                                 (effect_of prog ~fname v ~write:true)
                                 (effect_of prog ~fname v ~write:false)))
                        args
                    else if Irmod.has_attr m callee Func.Readonly then
                      acc := { !acc with unk_ref = true }
                    else acc := { !acc with unk_mod = true; unk_ref = true })
            | _ -> ());
        let prev = Hashtbl.find sums fname in
        let next = !acc in
        if next <> prev then begin
          Hashtbl.replace sums fname next;
          changed := true
        end)
      m.Irmod.funcs
  done;
  sums

(* Answer "how does a call to [callee](args) relate to [loc]" using the
   summary, premise-comparing argument pointers against [loc]. *)
let call_vs_loc (prog : Progctx.t) (sums : (string, summary) Hashtbl.t)
    (ctx : Module_api.Ctx.t) ~(tr : Query.temporal) ~(loop : string option)
    ~(cc : int list option) ~(call_fname : string) (callee : string)
    (args : Value.t list) (loc : Query.memloc) : Response.t =
  match Hashtbl.find_opt sums callee with
  | None -> Response.bottom_modref
  | Some s -> (
      if s.unk_mod || s.unk_ref then Response.bottom_modref
      else begin
        (* which global does loc refer to, if any? *)
        let loc_globals, loc_all_objects =
          let rs = Ptrexpr.resolve prog ~fname:loc.Query.fname loc.Query.ptr in
          ( List.filter_map
              (fun (x : Ptrexpr.t) ->
                match x.Ptrexpr.base with
                | Ptrexpr.BGlobal g -> Some g
                | _ -> None)
              rs,
            Ptrexpr.all_objects rs )
        in
        if not loc_all_objects then Response.bottom_modref
        else begin
          let touches_globals_mod =
            List.exists (fun g -> Sset.mem g s.gmod) loc_globals
          in
          let touches_globals_ref =
            List.exists (fun g -> Sset.mem g s.gref) loc_globals
          in
          (* can an argument point at loc? *)
          let arg_overlap, opts, prov =
            if (not s.arg_mod) && not s.arg_ref then
              (false, [ [] ], Response.Sset.empty)
            else if List.length args > 4 then (true, [ [] ], Response.Sset.empty)
            else
              List.fold_left
                (fun (ov, opts, prov) v ->
                  if ov then (ov, opts, prov)
                  else
                    match v with
                    | Value.Int _ | Value.Null | Value.Undef ->
                        (false, opts, prov)
                    | _ -> (
                        let premise =
                          Query.alias ~fname:call_fname ?loop ?cc
                            ~dr:Query.DNoAlias ~tr (v, loc.Query.size)
                            (loc.Query.ptr, loc.Query.size)
                        in
                        let presp = Module_api.Ctx.ask ctx premise in
                        match presp.Response.result with
                        | Aresult.RAlias Aresult.NoAlias ->
                            ( false,
                              Join.product opts presp.Response.options,
                              Response.Sset.union prov
                                presp.Response.provenance )
                        | _ -> (true, opts, prov)))
                (false, [ [] ], Response.Sset.empty)
                args
          in
          let may_mod = touches_globals_mod || (s.arg_mod && arg_overlap) in
          let may_ref = touches_globals_ref || (s.arg_ref && arg_overlap) in
          match (may_mod, may_ref) with
          | false, false ->
              if opts = [] then Response.bottom_modref
              else
                {
                  Response.result = Aresult.RModref Aresult.NoModRef;
                  options = opts;
                  provenance = prov;
                }
          | true, false -> Response.free (Aresult.RModref Aresult.Mod)
          | false, true -> Response.free (Aresult.RModref Aresult.Ref)
          | true, true -> Response.bottom_modref
        end
      end)

let answer (prog : Progctx.t) (sums : (string, summary) Hashtbl.t)
    (ctx : Module_api.Ctx.t) (q : Query.t) : Response.t =
  match q with
  | Query.Alias _ -> Module_api.no_answer q
  | Query.Modref mq -> (
      let user_call id =
        match Progctx.occ prog id with
        | Some o -> (
            match o.Irmod.Index.instr.Instr.kind with
            | Instr.Call { callee; args }
              when Irmod.find_func prog.Progctx.m callee <> None ->
                Some (callee, args, o.Irmod.Index.func.Func.name)
            | _ -> None)
        | None -> None
      in
      let tr = mq.Query.mtr and loop = mq.Query.mloop and cc = mq.Query.mcc in
      match user_call mq.Query.minstr with
      | Some (callee, args, call_fname) -> (
          match mq.Query.mtarget with
          | Query.TLoc loc ->
              call_vs_loc prog sums ctx ~tr ~loop ~cc ~call_fname callee args
                loc
          | Query.TInstr i2 -> (
              match Autil.loc_of_instr prog i2 with
              | Some loc ->
                  call_vs_loc prog sums ctx ~tr ~loop ~cc ~call_fname callee
                    args loc
              | None -> Module_api.no_answer q))
      | None -> (
          match mq.Query.mtarget with
          | Query.TInstr i2 -> (
              match user_call i2 with
              | Some (callee, args, call_fname) -> (
                  match Autil.loc_of_instr prog mq.Query.minstr with
                  | Some loc1 -> (
                      let r =
                        call_vs_loc prog sums ctx
                          ~tr:(Query.flip_temporal tr) ~loop ~cc ~call_fname
                          callee args loc1
                      in
                      match r.Response.result with
                      | Aresult.RModref Aresult.NoModRef -> r
                      | _ -> Autil.kind_refinement prog mq.Query.minstr)
                  | None -> Module_api.no_answer q)
              | None -> Module_api.no_answer q)
          | Query.TLoc _ -> Module_api.no_answer q))

let create (prog : Progctx.t) : Module_api.t =
  let sums = summarize prog in
  Module_api.make ~name:"semi-local-fun-aa" ~kind:Module_api.Memory
    ~factored:true (fun ctx q -> answer prog sums ctx q)
