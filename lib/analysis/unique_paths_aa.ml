(** Unique-access-paths analysis (factored).

    When both pointers are loads of the *same* stable memory slot (plus
    equal constant offsets), they hold the same value and MustAlias. Slot
    stability — "no store modifies the slot in scope" — is established by
    premise-querying every potentially-interfering store, so the control
    speculation module can vouch for speculatively dead stores and kindred
    modules for offset-disjoint ones. This is the ensemble's main producer
    of MustAlias facts, i.e. the usual *resolver* of the Desired
    Result = MustAlias premises that kill-flow and the field modules emit. *)

open Scaf
open Scaf_ir
open Scaf_cfg

let max_interfering = 6

(* Peel [v] down to (load instruction, extra constant offset). *)
let as_load_plus (prog : Progctx.t) ~(fname : string) (v : Value.t) :
    (Instr.t * int64) option =
  let rec go depth v acc =
    if depth > 10 then None
    else
      match v with
      | Value.Reg r -> (
          match Progctx.def prog fname r with
          | Some ({ Instr.kind = Instr.Load _; _ } as def) -> Some (def, acc)
          | Some { Instr.kind = Instr.Gep { base; offset }; _ } -> (
              match Ptrexpr.const_int prog fname 8 offset with
              | Some c -> go (depth + 1) base (Int64.add acc c)
              | None -> None)
          | _ -> None)
      | _ -> None
  in
  go 0 v 0L

(* The memory slot a load reads, when it is a stable expression. *)
let slot_of_load (prog : Progctx.t) ~(fname : string) (l : Instr.t) :
    (Value.t * int) option =
  match l.Instr.kind with
  | Instr.Load { ptr; size } -> (
      (* the slot pointer itself must be a fixed object location *)
      match Ptrexpr.resolve prog ~fname ptr with
      | [ { Ptrexpr.base = Ptrexpr.BGlobal _; off = Some _ } ] ->
          Some (ptr, size)
      | [ { Ptrexpr.base = Ptrexpr.BAlloca _; off = Some _ } ] ->
          Some (ptr, size)
      | _ -> None)
  | _ -> None

(* Stores in scope that might write [slot]; scope = the query loop when
   present, else the whole function. *)
let interfering_stores (prog : Progctx.t) ~(lid : string option)
    ~(fname : string) : Instr.t list =
  let in_scope (i : Instr.t) =
    match lid with
    | Some lid -> (
        match Progctx.loop_of_lid prog lid with
        | Some (lf, loop) -> (
            String.equal lf fname
            &&
            match Progctx.loops_of prog fname with
            | Some li -> Loops.contains_instr li loop i.Instr.id
            | None -> true)
        | None -> true)
    | None -> true
  in
  let out = ref [] in
  Irmod.iter_instrs prog.Progctx.m (fun f _ (i : Instr.t) ->
      if String.equal f.Func.name fname && in_scope i then
        match i.Instr.kind with
        | Instr.Store _ -> out := i :: !out
        | Instr.Call { callee; _ }
          when not (Irmod.has_attr prog.Progctx.m callee Func.Readnone) ->
            (* calls may write the slot through the callee *)
            out := i :: !out
        | _ -> ());
  List.rev !out

let answer (prog : Progctx.t) (ctx : Module_api.Ctx.t) (q : Query.t) : Response.t
    =
  match q with
  | Query.Modref _ -> Module_api.no_answer q
  | Query.Alias a -> (
      if a.Query.adr = Some Query.DNoAlias then Module_api.no_answer q
      else if a.Query.a1.Query.size <> a.Query.a2.Query.size then
        Module_api.no_answer q
      else
        let f1 = a.Query.a1.Query.fname and f2 = a.Query.a2.Query.fname in
        match
          ( as_load_plus prog ~fname:f1 a.Query.a1.Query.ptr,
            as_load_plus prog ~fname:f2 a.Query.a2.Query.ptr )
        with
        | Some (l1, c1), Some (l2, c2) when Int64.equal c1 c2 -> (
            match
              (slot_of_load prog ~fname:f1 l1, slot_of_load prog ~fname:f2 l2)
            with
            | Some (slot1, ssize1), Some (slot2, ssize2)
              when Value.equal slot1 slot2 && ssize1 = ssize2 -> (
                (* same slot: equal loaded values provided no store touches
                   the slot in scope *)
                let stores = interfering_stores prog ~lid:a.Query.aloop ~fname:f1 in
                if List.length stores > max_interfering then
                  Module_api.no_answer q
                else
                  let rec go opts prov = function
                    | [] ->
                        Some
                          {
                            Response.result = Aresult.RAlias Aresult.MustAlias;
                            options = opts;
                            provenance = prov;
                          }
                    | (s : Instr.t) :: rest -> (
                        let premise =
                          Query.modref_loc ~tr:Query.Same ?loop:a.Query.aloop
                            s.Instr.id (slot1, ssize1, f1)
                        in
                        let presp = Module_api.Ctx.ask ctx premise in
                        match presp.Response.result with
                        | Aresult.RModref Aresult.NoModRef
                        | Aresult.RModref Aresult.Ref ->
                            go
                              (Join.product opts presp.Response.options)
                              (Response.Sset.union prov
                                 presp.Response.provenance)
                              rest
                        | _ -> None)
                  in
                  match go [ [] ] Response.Sset.empty stores with
                  | Some r when r.Response.options <> [] -> r
                  | _ -> Module_api.no_answer q)
            | _ -> Module_api.no_answer q)
        | _ -> Module_api.no_answer q)

let create (prog : Progctx.t) : Module_api.t =
  Module_api.make ~name:"unique-paths-aa" ~kind:Module_api.Memory
    ~factored:true (fun ctx q -> answer prog ctx q)
