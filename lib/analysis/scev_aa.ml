(** Scalar-evolution alias analysis (factored).

    Normalizes both pointers to affine forms over the query loop's
    induction variables and compares them under the query's temporal
    relation: canceled terms leave a constant distance (intra-iteration);
    cross-iteration queries reason about strides. Roots that differ
    syntactically are premise-queried with Desired Result = MustAlias. *)

open Scaf
open Scaf_ir
open Scaf_cfg

let answer (prog : Progctx.t) (ctx : Module_api.Ctx.t) (q : Query.t) : Response.t
    =
  match q with
  | Query.Modref _ -> Module_api.no_answer q
  | Query.Alias a -> (
      match Autil.loop_env prog a.Query.aloop with
      | None -> Module_api.no_answer q
      | Some env -> (
          if not (String.equal env.Affine.fname a.Query.a1.Query.fname) then
            Module_api.no_answer q
          else
            match
              ( Affine.of_value env a.Query.a1.Query.ptr,
                Affine.of_value env a.Query.a2.Query.ptr )
            with
            | Some f1, Some f2
              when not
                     (a.Query.adr = Some Query.DMustAlias
                     && not (Affine.terms_cancel f1 f2)) -> (
                (* (the guard is the desired-result early bail-out) *)
                let compare_with options provenance =
                  match
                    Affine.compare_access env ~tr:a.Query.atr f1
                      a.Query.a1.Query.size f2 a.Query.a2.Query.size
                  with
                  | Some res ->
                      {
                        Response.result = Aresult.RAlias res;
                        options;
                        provenance;
                      }
                  | None -> Module_api.no_answer q
                in
                if Value.equal f1.Affine.root f2.Affine.root then
                  compare_with [ [] ] Response.Sset.empty
                else begin
                  let premise =
                    Query.alias ~fname:a.Query.a1.Query.fname
                      ?loop:a.Query.aloop ?cc:a.Query.acc ~dr:Query.DMustAlias
                      ~tr:Query.Same
                      (f1.Affine.root, 1)
                      (f2.Affine.root, 1)
                  in
                  let presp = Module_api.Ctx.ask ctx premise in
                  match presp.Response.result with
                  | Aresult.RAlias Aresult.MustAlias ->
                      compare_with presp.Response.options
                        presp.Response.provenance
                  | _ -> Module_api.no_answer q
                end)
            | _ -> Module_api.no_answer q))

let create (prog : Progctx.t) : Module_api.t =
  Module_api.make ~name:"scev-aa" ~kind:Module_api.Memory ~factored:true
    (fun ctx q -> answer prog ctx q)
