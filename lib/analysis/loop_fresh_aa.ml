(** Loop-fresh allocation analysis.

    An allocation site *inside* the query loop produces a fresh object in
    every iteration. If its address never outlives the iteration (no store,
    no retaining call, no loop-carried phi), two cross-iteration uses of
    the site necessarily touch different objects: NoAlias for
    [Before]/[After] queries. *)

open Scaf
open Scaf_cfg

let answer (prog : Progctx.t) (cache : (int, bool) Hashtbl.t)
    (_ctx : Module_api.Ctx.t) (q : Query.t) : Response.t =
  match q with
  | Query.Modref _ -> Module_api.no_answer q
  | Query.Alias a -> (
      match (a.Query.atr, a.Query.aloop) with
      | (Query.Before | Query.After), Some lid -> (
          match Progctx.loop_of_lid prog lid with
          | None -> Module_api.no_answer q
          | Some (lf, loop) -> (
              match Progctx.loops_of prog lf with
              | None -> Module_api.no_answer q
              | Some li ->
                  let fresh_site v fname =
                    if not (String.equal fname lf) then None
                    else
                      match Ptrexpr.resolve prog ~fname v with
                      | [ { Ptrexpr.base = Ptrexpr.BAlloca s; _ } ]
                      | [ { Ptrexpr.base = Ptrexpr.BMalloc s; _ } ]
                        when Loops.contains_instr li loop s ->
                          Some s
                      | _ -> None
                  in
                  let iteration_private s =
                    match Hashtbl.find_opt cache s with
                    | Some v -> v
                    | None ->
                        let v =
                          match Escape.captures_of_site prog s with
                          | Some [] -> true
                          | _ -> false
                        in
                        Hashtbl.replace cache s v;
                        v
                  in
                  let s1 =
                    fresh_site a.Query.a1.Query.ptr a.Query.a1.Query.fname
                  in
                  let s2 =
                    fresh_site a.Query.a2.Query.ptr a.Query.a2.Query.fname
                  in
                  (match (s1, s2) with
                  | Some x, Some y
                    when x = y && iteration_private x ->
                      (* same site, different iterations: distinct objects *)
                      Response.free (Aresult.RAlias Aresult.NoAlias)
                  | _ -> Module_api.no_answer q)))
      | _ -> Module_api.no_answer q)

let create (prog : Progctx.t) : Module_api.t =
  let cache = Hashtbl.create 16 in
  Module_api.make ~name:"loop-fresh-aa" ~kind:Module_api.Memory ~factored:false
    (fun ctx q -> answer prog cache ctx q)
