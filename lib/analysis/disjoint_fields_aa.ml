(** Field disambiguation across syntactically different base pointers
    (factored).

    When the two pointers are [base1 + c1] and [base2 + c2] with constant
    offsets but different base expressions, this module premise-queries the
    bases with Desired Result = MustAlias; on success the constant offsets
    decide the answer. The desired-result parameter lets every consulted
    module bail out the moment it knows it cannot prove MustAlias —
    the query-latency mechanism of §3.2.2. *)

open Scaf
open Scaf_ir
open Scaf_cfg

(* Strip constant-offset geps, returning (root value, accumulated const). *)
let rec strip (prog : Progctx.t) (fname : string) (depth : int) (v : Value.t) :
    Value.t * int64 =
  if depth > 12 then (v, 0L)
  else
    match v with
    | Value.Reg r -> (
        match Progctx.def prog fname r with
        | Some { Instr.kind = Instr.Gep { base; offset }; _ } -> (
            match Ptrexpr.const_int prog fname 8 offset with
            | Some c ->
                let root, acc = strip prog fname (depth + 1) base in
                (root, Int64.add acc c)
            | None -> (v, 0L))
        | _ -> (v, 0L))
    | _ -> (v, 0L)

let answer (prog : Progctx.t) (ctx : Module_api.Ctx.t) (q : Query.t) : Response.t
    =
  match q with
  | Query.Modref _ -> Module_api.no_answer q
  | Query.Alias a -> (
      let root1, c1 = strip prog a.Query.a1.Query.fname 0 a.Query.a1.Query.ptr in
      let root2, c2 = strip prog a.Query.a2.Query.fname 0 a.Query.a2.Query.ptr in
      if Value.equal root1 root2 then
        (* same SSA root: handled cost-free elsewhere *)
        Module_api.no_answer q
      else begin
        let res =
          Basic_aa.classify_offsets c1 a.Query.a1.Query.size c2
            a.Query.a2.Query.size
        in
        (* early bail-out against the incoming desired result *)
        let compatible =
          match a.Query.adr with
          | Some Query.DMustAlias -> res = Aresult.MustAlias
          | Some Query.DNoAlias -> res = Aresult.NoAlias
          | None -> true
        in
        if (not compatible) || res = Aresult.MayAlias then
          Module_api.no_answer q
        else begin
          (* ask the ensemble whether the roots must alias *)
          let premise =
            Query.alias ~fname:a.Query.a1.Query.fname ?loop:a.Query.aloop
              ?cc:a.Query.acc ~dr:Query.DMustAlias ~tr:a.Query.atr (root1, 1)
              (root2, 1)
          in
          let presp = Module_api.Ctx.ask ctx premise in
          match presp.Response.result with
          | Aresult.RAlias Aresult.MustAlias ->
              { presp with Response.result = Aresult.RAlias res }
          | _ -> Module_api.no_answer q
        end
      end)

let create (prog : Progctx.t) : Module_api.t =
  Module_api.make ~name:"disjoint-fields-aa" ~kind:Module_api.Memory
    ~factored:true (fun ctx q -> answer prog ctx q)
