(** No-capture-global reachability (factored).

    Strengthens the global-malloc partition: when, module-wide, every value
    loaded from global [g] is never re-stored (outside [g]), passed to a
    retaining call, or returned, pointers into [g]'s partition live only in
    [g]'s slots and local SSA values. Then the partition cannot alias
    arguments or pointers loaded from any *other* known object. Capturing
    uses may be discharged through premise queries (speculatively dead
    code). *)

open Scaf
open Scaf_ir
open Scaf_cfg

let max_offenders = 4

(* All loads whose source is global [g]. *)
let loads_of_global (prog : Progctx.t) (g : string) : (Func.t * Instr.t) list =
  let out = ref [] in
  Irmod.iter_instrs prog.Progctx.m (fun f _ (i : Instr.t) ->
      match i.Instr.kind with
      | Instr.Load { ptr; _ } -> (
          match Ptrexpr.resolve prog ~fname:f.Func.name ptr with
          | [ { Ptrexpr.base = Ptrexpr.BGlobal g'; _ } ] when String.equal g g'
            ->
              out := (f, i) :: !out
          | _ -> ())
      | _ -> ());
  !out

(* Captures of g-loaded values, excluding stores whose target is g itself. *)
let capture_offenders (prog : Progctx.t) (g : string) : int list option =
  let offenders = ref [] in
  let ok = ref true in
  List.iter
    (fun ((f : Func.t), (i : Instr.t)) ->
      match i.Instr.dst with
      | None -> ()
      | Some reg ->
          List.iter
            (fun (c : Escape.capture) ->
              match c.Escape.ckind with
              | `Stored -> (
                  (* a store back into g keeps the closure *)
                  match Progctx.occ prog c.Escape.cinstr with
                  | Some o -> (
                      match o.Irmod.Index.instr.Instr.kind with
                      | Instr.Store { ptr; _ } -> (
                          match
                            Ptrexpr.resolve prog ~fname:f.Func.name ptr
                          with
                          | [ { Ptrexpr.base = Ptrexpr.BGlobal g'; _ } ]
                            when String.equal g g' ->
                              ()
                          | _ -> offenders := c.Escape.cinstr :: !offenders)
                      | _ -> ok := false)
                  | None -> ok := false)
              | `Call_arg | `Returned -> offenders := c.Escape.cinstr :: !offenders
              | `Phi_carried -> ())
            (Escape.captures prog f reg))
    (loads_of_global prog g);
  if !ok then Some (List.sort_uniq compare !offenders) else None

let discharge_instrs (prog : Progctx.t) (ctx : Module_api.Ctx.t)
    (ids : int list) : (Assertion.t list list * Response.Sset.t) option =
  if List.length ids > max_offenders then None
  else
    let rec go opts prov = function
      | [] -> Some (opts, prov)
      | id :: rest -> (
          match Progctx.occ prog id with
          | None -> None
          | Some o -> (
              (* "is this instruction inert?" — control speculation answers
                 NoModRef for speculatively dead instructions *)
              let fname = o.Irmod.Index.func.Func.name in
              let loc =
                match Instr.footprint o.Irmod.Index.instr with
                | Some (ptr, size) -> (ptr, size, fname)
                | None -> (Value.Null, 1, fname)
              in
              let premise = Query.modref_loc ~tr:Query.Same id loc in
              let presp = Module_api.Ctx.ask ctx premise in
              match presp.Response.result with
              | Aresult.RModref Aresult.NoModRef ->
                  go
                    (Join.product opts presp.Response.options)
                    (Response.Sset.union prov presp.Response.provenance)
                    rest
              | _ -> None))
    in
    go [ [] ] Response.Sset.empty ids

(* Is [v] provably outside g's partition when the partition is closed?
   Arguments and loads from other known objects qualify. *)
let outside_partition (prog : Progctx.t) ~(fname : string) (g : string)
    (sites : int list) (v : Value.t) : bool =
  List.for_all
    (fun (x : Ptrexpr.t) ->
      match x.Ptrexpr.base with
      | Ptrexpr.BArg _ -> true
      | Ptrexpr.BMalloc m -> not (List.mem m sites)
      | Ptrexpr.BGlobal _ | Ptrexpr.BAlloca _ | Ptrexpr.BNull -> true
      | Ptrexpr.BLoad l -> (
          match Progctx.occ prog l with
          | Some o -> (
              match o.Irmod.Index.instr.Instr.kind with
              | Instr.Load { ptr; _ } -> (
                  match
                    Ptrexpr.resolve prog
                      ~fname:o.Irmod.Index.func.Func.name ptr
                  with
                  | [ { Ptrexpr.base = Ptrexpr.BGlobal g'; _ } ] ->
                      not (String.equal g g')
                  | [ { Ptrexpr.base = b; _ } ] -> Ptrexpr.is_object b
                  | _ -> false)
              | _ -> false)
          | None -> false)
      | _ -> false)
    (Ptrexpr.resolve prog ~fname v)

(* Is [v] inside g's partition (a load from g)? *)
let inside_partition (prog : Progctx.t) ~(fname : string) (g : string)
    (v : Value.t) : bool =
  List.for_all
    (fun (x : Ptrexpr.t) ->
      match x.Ptrexpr.base with
      | Ptrexpr.BLoad l -> (
          match Progctx.occ prog l with
          | Some o -> (
              match o.Irmod.Index.instr.Instr.kind with
              | Instr.Load { ptr; _ } -> (
                  match
                    Ptrexpr.resolve prog
                      ~fname:o.Irmod.Index.func.Func.name ptr
                  with
                  | [ { Ptrexpr.base = Ptrexpr.BGlobal g'; _ } ] ->
                      String.equal g g'
                  | _ -> false)
              | _ -> false)
          | None -> false)
      | _ -> false)
    (Ptrexpr.resolve prog ~fname v)

type gcache = {
  mutable props : (string, (int list * int list) option) Hashtbl.t;
      (** g -> Some (sites, offender instrs), None = property unusable *)
  mutable discharged :
    (string, (Assertion.t list list * Response.Sset.t) option) Hashtbl.t;
}

let props_of (prog : Progctx.t) (gsum : Globsum.t) (cache : gcache) (g : string)
    : (int list * int list) option =
  match Hashtbl.find_opt cache.props g with
  | Some v -> v
  | None ->
      let v =
        let sites, store_offenders = Globsum.malloc_partition gsum g in
        if sites = [] then None
        else
          match capture_offenders prog g with
          | None -> None
          | Some cap_offenders ->
              Some
                ( sites,
                  List.sort_uniq compare
                    (List.map
                       (fun (s : Globsum.store_info) -> s.Globsum.sid)
                       store_offenders
                    @ cap_offenders) )
      in
      Hashtbl.replace cache.props g v;
      v

let answer (prog : Progctx.t) (gsum : Globsum.t) (cache : gcache)
    (ctx : Module_api.Ctx.t) (q : Query.t) : Response.t =
  match q with
  | Query.Modref _ -> Module_api.no_answer q
  | Query.Alias a ->
      if a.Query.adr = Some Query.DMustAlias then Module_api.no_answer q
      else begin
        (* find a global g with one side inside its closed partition and
           the other side provably outside *)
        let try_global g : Response.t option =
          match props_of prog gsum cache g with
          | None -> None
          | Some (sites, all_offenders) -> (
                let f1 = a.Query.a1.Query.fname
                and f2 = a.Query.a2.Query.fname in
                let p1 = a.Query.a1.Query.ptr and p2 = a.Query.a2.Query.ptr in
                let oriented =
                  if
                    inside_partition prog ~fname:f1 g p1
                    && outside_partition prog ~fname:f2 g sites p2
                  then true
                  else
                    inside_partition prog ~fname:f2 g p2
                    && outside_partition prog ~fname:f1 g sites p1
                in
                if not oriented then None
                else
                  let discharged =
                    match Hashtbl.find_opt cache.discharged g with
                    | Some d -> d
                    | None ->
                        let d = discharge_instrs prog ctx all_offenders in
                        Hashtbl.replace cache.discharged g d;
                        d
                  in
                  match discharged with
                  | Some (opts, prov) when opts <> [] ->
                      Some
                        {
                          Response.result = Aresult.RAlias Aresult.NoAlias;
                          options = opts;
                          provenance = prov;
                        }
                  | _ -> None)
        in
        let globals =
          List.map (fun (g : Irmod.global) -> g.Irmod.gname)
            prog.Progctx.m.Irmod.globals
        in
        let rec first = function
          | [] -> Module_api.no_answer q
          | g :: rest -> (
              match try_global g with Some r -> r | None -> first rest)
        in
        first globals
      end

let create (prog : Progctx.t) : Module_api.t =
  let gsum = Globsum.build prog in
  let cache = { props = Hashtbl.create 8; discharged = Hashtbl.create 8 } in
  Module_api.make ~name:"no-capture-global-aa" ~kind:Module_api.Memory
    ~factored:true (fun ctx q -> answer prog gsum cache ctx q)
