(** Shared helpers for analysis modules: footprints, temporal-safety
    checks, and alias->modref lifting. *)

open Scaf_ir
open Scaf_cfg
open Scaf

(** The memory footprint of instruction [id], as a query memloc. *)
let loc_of_instr (prog : Progctx.t) (id : int) : Query.memloc option =
  match Progctx.occ prog id with
  | Some o -> (
      match Instr.footprint o.Irmod.Index.instr with
      | Some (ptr, size) ->
          Some { Query.ptr; size; fname = o.Irmod.Index.func.Func.name }
      | None -> None)
  | None -> None

(** Does instruction [id] read / write memory directly? *)
let rw_of_instr (prog : Progctx.t) (id : int) : [ `Load | `Store | `Call | `None ]
    =
  match Progctx.occ prog id with
  | Some o -> (
      match o.Irmod.Index.instr.Instr.kind with
      | Instr.Load _ -> `Load
      | Instr.Store _ -> `Store
      | Instr.Call _ -> `Call
      | _ -> `None)
  | None -> `None

(** [value_invariant prog ~fname ~lid v] - is [v] the same dynamic value in
    every iteration of loop [lid]? (Constants and globals always; registers
    when defined outside the loop.) *)
let value_invariant (prog : Progctx.t) ~(fname : string)
    ~(lid : string option) (v : Value.t) : bool =
  match v with
  | Value.Int _ | Value.Null | Value.Global _ | Value.Undef -> true
  | Value.Reg r -> (
      match lid with
      | None ->
          (* no loop scope to be invariant with respect to *)
          false
      | Some lid -> (
          match Progctx.loop_of_lid prog lid with
          | None -> false
          | Some (lf, loop) -> (
              (not (String.equal lf fname))
              ||
              match Progctx.def prog fname r with
              | None -> true (* parameter *)
              | Some def -> (
                  match Progctx.loops_of prog fname with
                  | Some li ->
                      not (Loops.contains_instr li loop def.Instr.id)
                  | None -> false))))

(** [unique_per_iteration prog ~lid id] - does the instruction [id] execute
    at most once per iteration of loop [lid]? True when it sits outside the
    loop, or directly in the loop body but not in any nested loop. *)
let unique_per_iteration (prog : Progctx.t) ~(lid : string option) (id : int) :
    bool =
  match lid with
  | None -> (
      (* no loop scope: unique iff not inside any loop at all *)
      match Progctx.func_of_instr prog id with
      | Some f -> (
          match Progctx.loops_of prog f.Func.name with
          | Some li -> Loops.innermost_of_instr li id = None
          | None -> true)
      | None -> false)
  | Some lid -> (
      match Progctx.loop_of_lid prog lid with
      | None -> false
      | Some (lf, loop) -> (
          match Progctx.func_of_instr prog id with
          | Some f when String.equal f.Func.name lf -> (
              match Progctx.loops_of prog lf with
              | Some li -> (
                  if not (Loops.contains_instr li loop id) then true
                  else
                    match Loops.innermost_of_instr li id with
                    | Some l -> String.equal l.Loops.lid lid
                    | None -> true)
              | None -> false)
          | Some _ -> true (* other function: fixed during the loop *)
          | None -> false))

(** [value_unique_per_iteration prog ~fname ~lid v] - lifted to values. *)
let value_unique_per_iteration (prog : Progctx.t) ~(fname : string)
    ~(lid : string option) (v : Value.t) : bool =
  match v with
  | Value.Int _ | Value.Null | Value.Global _ | Value.Undef -> true
  | Value.Reg r -> (
      match Progctx.def prog fname r with
      | None -> true (* parameter *)
      | Some def -> unique_per_iteration prog ~lid def.Instr.id)

(** [instance_stable q_tr ~invariant ~unique] - may we treat the two
    compared pointer expressions as denoting the same dynamic instances?
    For [Same] queries the value must be unique per iteration (not defined
    in a nested loop); for cross-iteration queries it must be loop
    invariant. *)
let instance_stable (tr : Query.temporal) ~(invariant : bool) ~(unique : bool)
    : bool =
  match tr with Query.Same -> unique | Query.Before | Query.After -> invariant

(** Lift an alias response between footprints to the modref result for the
    accessing instruction: NoAlias -> NoModRef; otherwise a load can only
    Ref and a store can only Mod. Options and provenance carry over. *)
let modref_of_alias_response (prog : Progctx.t) (instr : int)
    (alias_resp : Response.t) : Response.t =
  let open Aresult in
  match alias_resp.Response.result with
  | RAlias NoAlias -> { alias_resp with Response.result = RModref NoModRef }
  | _ -> (
      match rw_of_instr prog instr with
      | `Load -> Response.free (RModref Ref)
      | `Store -> Response.free (RModref Mod)
      | _ -> Response.bottom_modref)

(** The cheap, assertion-free refinement available for any direct access:
    loads never Mod, stores never Ref. *)
let kind_refinement (prog : Progctx.t) (instr : int) : Response.t =
  match rw_of_instr prog instr with
  | `Load -> Response.free (Aresult.RModref Aresult.Ref)
  | `Store -> Response.free (Aresult.RModref Aresult.Mod)
  | _ -> Response.bottom_modref

(** Build the alias premise between a modref query's two footprints.
    Returns [None] when either side has no direct footprint. *)
let footprint_alias_premise (prog : Progctx.t) (q : Query.modref_q)
    ?(dr : Query.desired option) () : Query.alias_q option =
  match (loc_of_instr prog q.Query.minstr, q.Query.mtarget) with
  | Some l1, Query.TInstr i2 -> (
      match loc_of_instr prog i2 with
      | Some l2 ->
          Some
            {
              Query.a1 = l1;
              atr = q.Query.mtr;
              a2 = l2;
              aloop = q.Query.mloop;
              acc = q.Query.mcc;
              adr = dr;
              aepoch = q.Query.mepoch;
            }
      | None -> None)
  | Some l1, Query.TLoc l2 ->
      Some
        {
          Query.a1 = l1;
          atr = q.Query.mtr;
          a2 = l2;
          aloop = q.Query.mloop;
          acc = q.Query.mcc;
          adr = dr;
          aepoch = q.Query.mepoch;
        }
  | None, _ -> None

(** [loop_env prog lid] - the affine environment for a loop id, when the
    loop exists. *)
let loop_env (prog : Progctx.t) (lid : string option) : Affine.env option =
  match lid with
  | None -> None
  | Some lid -> (
      match Progctx.loop_of_lid prog lid with
      | Some (fname, loop) -> (
          match Progctx.loops_of prog fname with
          | Some li -> Some (Affine.make_env prog ~fname li loop)
          | None -> None)
      | None -> None)
