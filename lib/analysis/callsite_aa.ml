(** Call-site semantics (C standard library / intrinsics reasoning,
    factored for argument-memory functions).

    Uses declaration attributes: [readnone] calls have no memory footprint;
    [readonly] calls never Mod; [malloc_like] calls touch only fresh
    memory; [argmemonly] calls (memcpy/memset/free) touch only through
    their pointer arguments, which are premise-compared against the other
    location. *)

open Scaf
open Scaf_ir
open Scaf_cfg

let call_of (prog : Progctx.t) (id : int) : (Instr.t * string * Value.t list) option =
  match Progctx.occ prog id with
  | Some o -> (
      match o.Irmod.Index.instr.Instr.kind with
      | Instr.Call { callee; args } -> Some (o.Irmod.Index.instr, callee, args)
      | _ -> None)
  | None -> None

let fname_of (prog : Progctx.t) (id : int) : string option =
  Option.map
    (fun (o : Irmod.Index.occurrence) -> o.Irmod.Index.func.Func.name)
    (Progctx.occ prog id)

(* Regions an argmemonly intrinsic touches: (pointer, size, mod?, ref?). A
   negative size means "unbounded from the pointer". *)
let arg_regions (callee : string) (args : Value.t list) :
    (Value.t * int * bool * bool) list option =
  let arg n = List.nth_opt args n in
  let size_arg n =
    match arg n with Some (Value.Int i) -> Some (Int64.to_int i) | _ -> None
  in
  match callee with
  | "memcpy" -> (
      match (arg 0, arg 1, size_arg 2) with
      | Some d, Some s, Some n -> Some [ (d, n, true, false); (s, n, false, true) ]
      | Some d, Some s, None -> Some [ (d, -1, true, false); (s, -1, false, true) ]
      | _ -> None)
  | "memset" -> (
      match (arg 0, size_arg 2) with
      | Some d, Some n -> Some [ (d, n, true, false) ]
      | Some d, None -> Some [ (d, -1, true, false) ]
      | _ -> None)
  | "free" -> (
      (* deallocation: treat as a write to the object head *)
      match arg 0 with Some p -> Some [ (p, 1, true, false) ] | _ -> None)
  | _ -> None

(* How does a call with [callee] relate to location [loc]? *)
let call_vs_loc (prog : Progctx.t) (ctx : Module_api.Ctx.t) ~(tr : Query.temporal)
    ~(loop : string option) ~(cc : int list option) (callee : string)
    (args : Value.t list) (call_fname : string) (loc : Query.memloc) :
    Response.t =
  let m = prog.Progctx.m in
  if Irmod.has_attr m callee Func.Readnone then
    Response.free (Aresult.RModref Aresult.NoModRef)
  else if Irmod.has_attr m callee Func.Malloc_like then
    (* allocates fresh memory: touches nothing that already exists *)
    Response.free (Aresult.RModref Aresult.NoModRef)
  else if Irmod.has_attr m callee Func.Argmemonly then begin
    match arg_regions callee args with
    | None ->
        if Irmod.has_attr m callee Func.Readonly then
          Response.free (Aresult.RModref Aresult.Ref)
        else Response.bottom_modref
    | Some regions ->
        (* NoModRef iff every region is NoAlias with loc; the premise goes
           through the whole ensemble *)
        let rec go acc_opts acc_prov mods refs = function
          | [] ->
              if not (mods || refs) then
                {
                  Response.result = Aresult.RModref Aresult.NoModRef;
                  options = acc_opts;
                  provenance = acc_prov;
                }
              else if mods && not refs then
                Response.free (Aresult.RModref Aresult.Mod)
              else if refs && not mods then
                Response.free (Aresult.RModref Aresult.Ref)
              else Response.bottom_modref
          | (p, size, w, r) :: rest -> (
              let size = if size < 0 || size > 1 lsl 20 then 1 lsl 20 else size in
              let premise =
                Query.alias ~fname:call_fname ?loop ?cc ~dr:Query.DNoAlias ~tr
                  (p, size)
                  (loc.Query.ptr, loc.Query.size)
              in
              let presp = Module_api.Ctx.ask ctx premise in
              match presp.Response.result with
              | Aresult.RAlias Aresult.NoAlias ->
                  go
                    (Join.product acc_opts presp.Response.options)
                    (Response.Sset.union acc_prov presp.Response.provenance)
                    mods refs rest
              | _ -> go acc_opts acc_prov (mods || w) (refs || r) rest)
        in
        go [ [] ] Response.Sset.empty false false regions
  end
  else if Irmod.has_attr m callee Func.Readonly then
    Response.free (Aresult.RModref Aresult.Ref)
  else Response.bottom_modref

let answer (prog : Progctx.t) (ctx : Module_api.Ctx.t) (q : Query.t) : Response.t
    =
  match q with
  | Query.Alias _ -> Module_api.no_answer q
  | Query.Modref mq -> (
      let tr = mq.Query.mtr
      and loop = mq.Query.mloop
      and cc = mq.Query.mcc in
      (* case 1: the querying instruction is a call *)
      match call_of prog mq.Query.minstr with
      | Some (_, callee, args)
        when Irmod.find_func prog.Progctx.m callee = None -> (
          let call_fname = Option.get (fname_of prog mq.Query.minstr) in
          match mq.Query.mtarget with
          | Query.TLoc loc ->
              call_vs_loc prog ctx ~tr ~loop ~cc callee args call_fname loc
          | Query.TInstr i2 -> (
              match Autil.loc_of_instr prog i2 with
              | Some loc ->
                  call_vs_loc prog ctx ~tr ~loop ~cc callee args call_fname loc
              | None -> Module_api.no_answer q))
      | _ -> (
          (* case 2: the target is a call; how does minstr relate to the
             call's footprint? *)
          match mq.Query.mtarget with
          | Query.TInstr i2 -> (
              match call_of prog i2 with
              | Some (_, callee, args)
                when Irmod.find_func prog.Progctx.m callee = None -> (
                  match Autil.loc_of_instr prog mq.Query.minstr with
                  | Some loc1 -> (
                      let call_fname = Option.get (fname_of prog i2) in
                      (* disjointness is symmetric; direction of tr flips *)
                      let r =
                        call_vs_loc prog ctx ~tr:(Query.flip_temporal tr) ~loop
                          ~cc callee args call_fname loc1
                      in
                      match r.Response.result with
                      | Aresult.RModref Aresult.NoModRef -> r
                      | _ -> Autil.kind_refinement prog mq.Query.minstr)
                  | None -> Module_api.no_answer q)
              | _ -> Module_api.no_answer q)
          | Query.TLoc _ -> Module_api.no_answer q))

let create (prog : Progctx.t) : Module_api.t =
  Module_api.make ~name:"callsite-aa" ~kind:Module_api.Memory ~factored:true
    (fun ctx q -> answer prog ctx q)
