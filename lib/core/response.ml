(** Query responses: a result plus the set of assertion *options* under
    which it holds (Figure 3's Response Syntax).

    [options] is a disjunction of conjunctions: the client may pick *any
    one* option and must then validate *all* of that option's assertions.
    The cost-free response is represented by the single empty option
    [[ [] ]]; an empty [options] list would mean "holds under no
    circumstances" and never appears in well-formed responses.

    [provenance] records which modules contributed to this answer
    (directly or through premise queries) — the bookkeeping behind the
    paper's Table 2. *)

module Sset = Set.Make (String)

type t = {
  result : Aresult.t;
  options : Assertion.t list list;
  provenance : Sset.t;
}

let make ?(options = [ [] ]) ?(provenance = Sset.empty) result =
  { result; options; provenance }

(** Cost-free conservative responses (the Orchestrator's starting point). *)
let bottom_alias = make Aresult.bottom_alias
let bottom_modref = make Aresult.bottom_modref

let bottom_for (q : Query.t) =
  match q with Query.Alias _ -> bottom_alias | Query.Modref _ -> bottom_modref

(** A module asserting a fact with no speculation. *)
let free ?provenance (r : Aresult.t) : t = make ?provenance r

(** A speculative answer under one option of assertions. *)
let speculative ?provenance (r : Aresult.t) (assertions : Assertion.t list) : t
    =
  make ~options:[ assertions ] ?provenance r

let option_cost (o : Assertion.t list) : float =
  List.fold_left (fun acc (a : Assertion.t) -> acc +. a.Assertion.cost) 0.0 o

(** Cost of the cheapest option. *)
let cheapest_cost (t : t) : float =
  match t.options with
  | [] -> infinity
  | os -> List.fold_left (fun acc o -> min acc (option_cost o)) infinity os

(** The cheapest option itself. *)
let cheapest_option (t : t) : Assertion.t list option =
  match t.options with
  | [] -> None
  | os ->
      Some
        (List.fold_left
           (fun best o -> if option_cost o < option_cost best then o else best)
           (List.hd os) (List.tl os))

(** Does the response include a zero-cost (assertion-free) option? *)
let has_free_option (t : t) : bool =
  List.exists (fun o -> option_cost o = 0.0) t.options

(** Does the response include a literally assertion-free option — a claim
    about every execution? Distinct from {!has_free_option}, which also
    accepts zero-{e cost} assertions (e.g. control speculation's dead-block
    beacons): those are free to validate but still speculative. *)
let has_unconditional_option (t : t) : bool =
  List.exists (fun o -> o = []) t.options

(** Is the response both maximally precise and free to use? This is the
    Orchestrator's default bail-out condition. *)
let is_definite_free (t : t) : bool =
  Aresult.is_definite t.result && has_free_option t

let add_provenance (name : string) (t : t) : t =
  { t with provenance = Sset.add name t.provenance }

let merge_provenance (a : Sset.t) (t : t) : t =
  { t with provenance = Sset.union a t.provenance }

let pp ppf (t : t) =
  Fmt.pf ppf "%a" Aresult.pp t.result;
  match t.options with
  | [ [] ] -> ()
  | os ->
      Fmt.pf ppf " under %a"
        (Fmt.list ~sep:(Fmt.any " | ") (fun ppf o ->
             Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.comma Assertion.pp) o))
        os
