(** Query responses: a result plus the set of assertion *options* under
    which it holds (Figure 3's Response Syntax).

    [options] is a disjunction of conjunctions: the client may pick *any
    one* option and must then validate *all* of that option's assertions.
    The cost-free response is represented by the single empty option
    [[ [] ]]; an empty [options] list would mean "holds under no
    circumstances" and never appears in well-formed responses.

    [provenance] records which modules contributed to this answer
    (directly or through premise queries) — the bookkeeping behind the
    paper's Table 2. *)

module Sset = Set.Make (String)

type t = {
  result : Aresult.t;
  options : Assertion.t list list;
  provenance : Sset.t;
}

let make ?(options = [ [] ]) ?(provenance = Sset.empty) result =
  { result; options; provenance }

(** Cost-free conservative responses (the Orchestrator's starting point). *)
let bottom_alias = make Aresult.bottom_alias
let bottom_modref = make Aresult.bottom_modref

let bottom_for (q : Query.t) =
  match q with Query.Alias _ -> bottom_alias | Query.Modref _ -> bottom_modref

(** A module asserting a fact with no speculation. *)
let free ?provenance (r : Aresult.t) : t = make ?provenance r

(** A speculative answer under one option of assertions. *)
let speculative ?provenance (r : Aresult.t) (assertions : Assertion.t list) : t
    =
  make ~options:[ assertions ] ?provenance r

(** The one home of assertion-set introspection. A response's [options]
    field is a disjunction of conjunctions; everything a client wants to
    know about it — iteration, filtering, costs, the free/unconditional
    distinction — lives here, instead of the ad-hoc helpers that used to
    accrete on [Response] one predicate at a time. *)
module Options = struct
  (** The assertion-option disjunction, as stored in [Response.options]. *)
  type nonrec t = Assertion.t list list

  (** Validation cost of one option: the sum of its assertion costs. *)
  let cost (o : Assertion.t list) : float =
    List.fold_left (fun acc (a : Assertion.t) -> acc +. a.Assertion.cost) 0.0 o

  (** A literally assertion-free option — a claim about every execution.
      Distinct from costing 0.0: zero-cost assertions (e.g. control
      speculation's dead-block beacons) are free to validate but still
      speculative. *)
  let is_unconditional (o : Assertion.t list) : bool = o = []

  let count : t -> int = List.length
  let iter : (Assertion.t list -> unit) -> t -> unit = List.iter
  let fold : ('a -> Assertion.t list -> 'a) -> 'a -> t -> 'a = List.fold_left
  let filter : (Assertion.t list -> bool) -> t -> t = List.filter
  let exists : (Assertion.t list -> bool) -> t -> bool = List.exists

  (** Cost of the cheapest option ([infinity] on the ill-formed empty
      disjunction). *)
  let cheapest_cost (os : t) : float =
    match os with
    | [] -> infinity
    | os -> fold (fun acc o -> min acc (cost o)) infinity os

  (** The cheapest option itself. *)
  let cheapest (os : t) : Assertion.t list option =
    match os with
    | [] -> None
    | o :: rest ->
        Some (fold (fun best o -> if cost o < cost best then o else best) o rest)

  (** Some option costs nothing to validate. *)
  let has_free (os : t) : bool = exists (fun o -> cost o = 0.0) os

  (** Some option is literally assertion-free. *)
  let has_unconditional (os : t) : bool = exists is_unconditional os
end

(** Is the response both maximally precise and free to use? This is the
    Orchestrator's default bail-out condition. *)
let is_definite_free (t : t) : bool =
  Aresult.is_definite t.result && Options.has_free t.options

let add_provenance (name : string) (t : t) : t =
  { t with provenance = Sset.add name t.provenance }

let merge_provenance (a : Sset.t) (t : t) : t =
  { t with provenance = Sset.union a t.provenance }

let pp ppf (t : t) =
  Fmt.pf ppf "%a" Aresult.pp t.result;
  match t.options with
  | [ [] ] -> ()
  | os ->
      Fmt.pf ppf " under %a"
        (Fmt.list ~sep:(Fmt.any " | ") (fun ppf o ->
             Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.comma Assertion.pp) o))
        os
