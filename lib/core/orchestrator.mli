(** The Orchestrator (§3.3, Algorithm 1): forwards queries to modules in
    configured order, joins their responses, stops per the bail-out policy
    and routes premise queries back through the ensemble with a recursion
    budget. Configurable per the paper: module subset and order, join
    policy, bail-out policy, and the desired-result ablation switch.

    The orchestrator's state is abstract: clients observe it only through
    the immutable {!stats} snapshot and the accessors below, so nothing
    outside this module can poison the memo table or the latency
    accounting. Memoization lives in a {!Qcache.t} that may be shared by
    several orchestrators — one per worker domain — to build a parallel
    batch engine (see [Scaf_pdg.Schemes]). *)

type bailout =
  | Definite_free  (** stop at a maximally precise, assertion-free answer *)
  | Definite_any  (** stop at a maximally precise answer regardless of cost *)
  | Exhaustive  (** always consult every module *)
  | Timeout of float
      (** definite-free, plus a per-client-query budget in [clock] units
          (for clients sensitive to compilation time, §3.3) *)

type config = {
  modules : Module_api.t list;  (** consulted in order *)
  join_policy : Join.policy;
  bailout : bailout;
  max_premise_depth : int;
  respect_desired : bool;
      (** when false, the desired-result parameter is stripped from premise
          queries (the Figure 10 ablation) *)
  clock : (unit -> float) option;  (** per-query latency statistics *)
  module_budget : float option;
      (** per-module-evaluation latency budget in [clock] units; an answer
          arriving past it is discarded as a fault *)
  breaker_threshold : int;
      (** quarantine a module after this many consecutive faults *)
  trace : Scaf_trace.Sink.t;
      (** provenance-tree sink. With {!Scaf_trace.Sink.noop} (the default)
          the query path is byte-for-byte the untraced one; with a
          collecting sink, every sampled client query records a full
          derivation tree: cache behaviour, each module consulted, the
          premise sub-queries it raised (recursively), what the join kept,
          and the final assertion set and cost. *)
  metrics : Scaf_trace.Metrics.t option;
      (** metrics registry. When set, the orchestrator maintains counters
          (query classes, cache hit/miss/canonical-hit, bail-outs, premise
          budget denials) and histograms (premise depth; with [clock],
          per-module and per-query latency). Handles are resolved once at
          {!create}. *)
  epoch : int;
      (** program epoch every cache key is stamped with ({!Qcache.key_of}).
          Batch analysis runs at epoch 0; the incremental engine rebuilds
          orchestrators with the bumped epoch after each program edit. *)
  depsink : Depsink.t;
      (** always-on-grade dependency-event sink feeding the incremental
          engine's invalidation-graph collector. {!Depsink.noop} (the
          default) keeps the query path byte-for-byte unchanged. *)
}

(** CHEAPEST join, definite-free bail-out, premise depth 4, desired-result
    respected, no clock, no module budget, breaker threshold 3, no-op
    trace sink, no metrics, epoch 0, no-op dependency sink. *)
val default_config : Module_api.t list -> config

(** An immutable view of the orchestrator's counters at one instant. *)
type stats_snapshot = {
  client_queries : int;
  premise_queries : int;
  module_evals : int;
  module_faults : int;  (** module evaluations that raised *)
  module_overruns : int;  (** evaluations past [module_budget] *)
  quarantine_skips : int;  (** evaluations skipped by the breaker *)
  deadline_expiries : int;
      (** client queries whose armed deadline (a [Timeout] policy budget or
          an explicit [handle ~deadline]) expired before the consult sweep
          finished — their answers were truncated joins *)
  latency_count : int;  (** client queries with a recorded latency *)
  cache : Qcache.Snapshot.t;
      (** the shared memo store's own counters (immutable snapshot) *)
}

(** Per-module fault-isolation record: a faulting or overrunning module is
    converted into a conservative no-answer, and [breaker_threshold]
    consecutive faults quarantine it for the rest of the session. *)
type health = {
  mutable faults : int;
  mutable overruns : int;
  mutable consecutive : int;  (** consecutive faults; a success resets it *)
  mutable quarantined : bool;
}

type t

(** [create ?cache prog config] — a fresh orchestrator. When [cache] is
    given it is used as the shared memo store (and may be shared with other
    orchestrators, e.g. one per worker domain); otherwise a private one is
    created. Every orchestrator additionally owns a private
    {!Qcache.Local.t} L1 over that store — unsynchronized lookups, batched
    publication — sized by [l1_capacity] (default 8192) and flushed every
    [l1_flush_every] memoized answers (default 32). An orchestrator must
    therefore stay single-worker: share the {!Qcache.t}, not the
    orchestrator. *)
val create :
  ?cache:Qcache.t ->
  ?l1_capacity:int ->
  ?l1_flush_every:int ->
  Scaf_cfg.Progctx.t ->
  config ->
  t

val config : t -> config
val prog : t -> Scaf_cfg.Progctx.t

(** The shared memo store — pass it to [create ?cache] to share
    memoization. *)
val cache : t -> Qcache.t

(** Publish this orchestrator's pending L1 entries into the shared store
    now. Anyone about to walk or invalidate the shared store (the
    incremental engine before [Qcache.invalidate], a peer orchestrator that
    wants to observe this one's answers) must flush first; otherwise the
    batch publishes on its own cadence. *)
val flush_cache : t -> unit

(** Counters right now, as an immutable snapshot. *)
val stats : t -> stats_snapshot

(** The (created-on-demand) health record of the module named [name]. *)
val health_of : t -> string -> health

(** Names of the modules currently quarantined by the circuit breaker. *)
val quarantined : t -> string list

(** [handle t q] — Algorithm 1: resolve a client query.

    [deadline], when given, is an {e absolute} point in [clock] units: once
    it has passed, the consult sweep stops (whatever the bail-out policy)
    and the best joined answer so far is returned — always sound, possibly
    conservative. This is how a long-lived service propagates per-request
    deadlines into the analysis without reconfiguring the orchestrator.
    When the configuration's bail-out policy is [Timeout b], the effective
    deadline is the earlier of the two. Requires [clock] (raises
    [Invalid_argument] otherwise); answers truncated by an expired deadline
    are never memoized, so they cannot poison later full-budget queries. *)
val handle : ?deadline:float -> t -> Query.t -> Response.t

(** [handle_deadlined t ~deadline q] — like [handle ~deadline q] but also
    reports whether the deadline expired while answering, i.e. whether the
    response may be a truncated join that a service should flag as
    degraded. *)
val handle_deadlined : t -> deadline:float -> Query.t -> Response.t * bool

(** [ask_many t qs] — resolve a batch; the i-th response answers the i-th
    query. Equivalent to [List.map (handle t) qs]; the domain-parallel
    fan-out over a shared cache lives in [Scaf_pdg.Schemes]. *)
val ask_many : t -> Query.t list -> Response.t list

(** [consult_all t q] — every module's individual answer to [q], in
    configuration order, bypassing the join and the bail-out policy.
    Premise queries still flow through the whole ensemble, so each response
    is the module's contribution under full collaboration; per-module
    answers are never memoized. This is the audit layer's entry point for
    grading modules one by one. *)
val consult_all : t -> Query.t -> (string * Response.t) list

(** Retained client-query latency sample (needs [clock]). Bounded by the
    latency reservoir's capacity; see [latency_count] for the exact number
    of observations. *)
val latencies : t -> float list

(** Exact number of client queries whose latency was recorded. *)
val latency_count : t -> int

(** [latency_percentile t p] — the [p]-th percentile (0..100) of the
    retained latency sample. *)
val latency_percentile : t -> float -> float

(** Is a [Timeout] deadline currently armed? (Always false between
    queries — [handle] clears it on exit.) *)
val deadline_pending : t -> bool
