(** The Orchestrator (§3.3, Algorithm 1): forwards queries to modules in
    configured order, joins their responses, stops per the bail-out policy
    and routes premise queries back through the ensemble with a recursion
    budget. Configurable per the paper: module subset and order, join
    policy, bail-out policy, and the desired-result ablation switch. *)

type bailout =
  | Definite_free  (** stop at a maximally precise, assertion-free answer *)
  | Definite_any  (** stop at a maximally precise answer regardless of cost *)
  | Exhaustive  (** always consult every module *)
  | Timeout of float
      (** definite-free, plus a per-client-query budget in [clock] units
          (for clients sensitive to compilation time, §3.3) *)

type config = {
  modules : Module_api.t list;  (** consulted in order *)
  join_policy : Join.policy;
  bailout : bailout;
  max_premise_depth : int;
  respect_desired : bool;
      (** when false, the desired-result parameter is stripped from premise
          queries (the Figure 10 ablation) *)
  clock : (unit -> float) option;  (** per-query latency statistics *)
  module_budget : float option;
      (** per-module-evaluation latency budget in [clock] units; an answer
          arriving past it is discarded as a fault *)
  breaker_threshold : int;
      (** quarantine a module after this many consecutive faults *)
}

(** CHEAPEST join, definite-free bail-out, premise depth 4, desired-result
    respected, no clock, no module budget, breaker threshold 3. *)
val default_config : Module_api.t list -> config

type stats = {
  mutable client_queries : int;
  mutable premise_queries : int;
  mutable module_evals : int;
  mutable latencies : float list;
  mutable module_faults : int;  (** module evaluations that raised *)
  mutable module_overruns : int;  (** evaluations past [module_budget] *)
  mutable quarantine_skips : int;  (** evaluations skipped by the breaker *)
}

(** Per-module fault-isolation record: a faulting or overrunning module is
    converted into a conservative no-answer, and [breaker_threshold]
    consecutive faults quarantine it for the rest of the session. *)
type health = {
  mutable faults : int;
  mutable overruns : int;
  mutable consecutive : int;  (** consecutive faults; a success resets it *)
  mutable quarantined : bool;
}

type t = {
  config : config;
  prog : Scaf_cfg.Progctx.t;
  stats : stats;
  cache : (Query.t, Response.t) Hashtbl.t;
  deadline : float option ref;
  health : (string, health) Hashtbl.t;  (** keyed by module name *)
}

val create : Scaf_cfg.Progctx.t -> config -> t

(** The (created-on-demand) health record of the module named [name]. *)
val health_of : t -> string -> health

(** Names of the modules currently quarantined by the circuit breaker. *)
val quarantined : t -> string list

(** [handle t q] — Algorithm 1: resolve a client query. *)
val handle : t -> Query.t -> Response.t

(** Client-query latencies so far, in query order (needs [clock]). *)
val latencies : t -> float list
