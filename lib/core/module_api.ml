(** The analysis-module interface.

    A module — memory analysis or speculation — answers queries through
    [answer]. *Factored* modules may formulate premise queries from an
    incoming query and submit them through [Ctx.ask]; the Orchestrator
    routes premises through the whole ensemble, so a module never knows (or
    cares) who resolves them (§3.1). *)

(** The evaluation context handed to every module. One extensible record
    (constructed only through {!Ctx.make}, read only through accessors)
    instead of the accreted positional parameters of old: growing a new
    capability — the trace sink was the first — adds a field and a default
    here, and no module signature anywhere changes. *)
module Ctx = struct
  type t = {
    prog : Scaf_cfg.Progctx.t;
    ask : Query.t -> Response.t;
        (** the premise oracle: submit a premise query back to the
            Orchestrator *)
    depth : int;  (** premise nesting depth of the incoming query *)
    desired : Query.desired option;
        (** the incoming query's desired-result parameter, if any *)
    loop : string option;  (** the incoming query's loop scope, if any *)
    ctrl_view : Scaf_cfg.Ctrl.t option;
        (** speculative control-flow view carried by the incoming query *)
    sink : Scaf_trace.Sink.t;  (** trace sink (noop unless tracing) *)
  }

  let make ?(depth = 0) ?desired ?loop ?ctrl_view
      ?(sink = Scaf_trace.Sink.noop) ~(ask : Query.t -> Response.t)
      (prog : Scaf_cfg.Progctx.t) : t =
    { prog; ask; depth; desired; loop; ctrl_view; sink }

  let prog (t : t) = t.prog
  let ask (t : t) (q : Query.t) : Response.t = t.ask q
  let depth (t : t) = t.depth
  let desired (t : t) = t.desired
  let loop (t : t) = t.loop
  let sink (t : t) = t.sink

  (** The control-flow view to reason under: the speculative view carried
      by the incoming query when present, the static one otherwise. *)
  let ctrl (t : t) ~(fname : string) : Scaf_cfg.Ctrl.t option =
    match t.ctrl_view with
    | Some v -> Some v
    | None -> Scaf_cfg.Progctx.ctrl_of t.prog fname

  (** [with_ask ask t] — [t] with the premise oracle replaced (wrappers and
      tests interpose on premise routing without rebuilding the record). *)
  let with_ask (ask : Query.t -> Response.t) (t : t) : t = { t with ask }
end

type kind = Memory | Speculation

(** The classes of SCAF's query language (Figure 3), at the granularity the
    query-plan lint reasons about: a module either can or cannot improve on
    the conservative answer for a whole class. *)
type qclass = CAlias | CModref_instr | CModref_loc

let all_qclasses = [ CAlias; CModref_instr; CModref_loc ]

let qclass_name = function
  | CAlias -> "alias"
  | CModref_instr -> "modref(instr,instr)"
  | CModref_loc -> "modref(instr,loc)"

let qclass_of_query (q : Query.t) : qclass =
  match q with
  | Query.Alias _ -> CAlias
  | Query.Modref { Query.mtarget = Query.TInstr _; _ } -> CModref_instr
  | Query.Modref { Query.mtarget = Query.TLoc _; _ } -> CModref_loc

(** How far beyond the queried instructions' own function a module's answer
    may depend on program text — the coarse dependency declaration the
    incremental engine falls back on when a module opts out of fine-grained
    read-set tracking. Declaring too wide merely over-invalidates; declaring
    too narrow is unsound, so the default is [Reach_global]. *)
type reach =
  | Reach_local
      (** reads only the function(s) the query's instructions live in *)
  | Reach_symbols
      (** additionally reads functions/globals connected to the query's
          function through value flow (shared globals, calls passing
          arguments or using results) *)
  | Reach_global  (** may read anything in the module (sound fallback) *)

(** Declared capabilities: which query classes a module may improve
    ([answers]), which classes of premise queries it may submit through
    [Ctx.ask] ([emits]), how far its answers reach into the program text
    ([reach]) and whether they depend on profile data ([uses_profile]).
    Purely declarative — the Orchestrator never filters on them — but the
    audit layer's query-plan lint cross-checks answers/emits against the
    ensemble wiring, and the incremental engine derives sound invalidation
    scopes from reach/uses_profile. *)
type caps = {
  answers : qclass list;
  emits : qclass list;
  reach : reach;
  uses_profile : bool;
}

(** The conservative declaration assumed for unannotated modules: may
    improve anything; factored modules may emit any premise class; answers
    may depend on any program text and on profiles (so every edit
    invalidates them). *)
let default_caps ~(factored : bool) : caps =
  {
    answers = all_qclasses;
    emits = (if factored then all_qclasses else []);
    reach = Reach_global;
    uses_profile = true;
  }

type t = {
  name : string;
  kind : kind;
  factored : bool;  (** does this module generate premise queries? *)
  caps : caps;
  answer : Ctx.t -> Query.t -> Response.t;
}

(** "I cannot improve on the conservative answer." *)
let no_answer (q : Query.t) : Response.t = Response.bottom_for q

(** Wrap [answer] so that any non-bottom response carries the module's name
    in its provenance. *)
let make ?caps ~name ~kind ~factored answer : t =
  let answer ctx q =
    let r = answer ctx q in
    if Aresult.is_bottom r.Response.result && r.Response.options = [ [] ] then r
    else Response.add_provenance name r
  in
  let caps = match caps with Some c -> c | None -> default_caps ~factored in
  { name; kind; factored; caps; answer }

(** [with_caps caps m] — [m] with its capability declaration replaced
    (registries annotate shipped modules without touching their code). *)
let with_caps (caps : caps) (m : t) : t = { m with caps }
