(** The analysis-module interface.

    A module — memory analysis or speculation — answers queries through
    [answer]. *Factored* modules may formulate premise queries from an
    incoming query and submit them through [ctx.handle]; the Orchestrator
    routes premises through the whole ensemble, so a module never knows (or
    cares) who resolves them (§3.1). *)

type ctx = {
  prog : Scaf_cfg.Progctx.t;
  handle : Query.t -> Response.t;
      (** submit a premise query back to the Orchestrator *)
  depth : int;  (** premise nesting depth of the incoming query *)
}

type kind = Memory | Speculation

(** The classes of SCAF's query language (Figure 3), at the granularity the
    query-plan lint reasons about: a module either can or cannot improve on
    the conservative answer for a whole class. *)
type qclass = CAlias | CModref_instr | CModref_loc

let all_qclasses = [ CAlias; CModref_instr; CModref_loc ]

let qclass_name = function
  | CAlias -> "alias"
  | CModref_instr -> "modref(instr,instr)"
  | CModref_loc -> "modref(instr,loc)"

let qclass_of_query (q : Query.t) : qclass =
  match q with
  | Query.Alias _ -> CAlias
  | Query.Modref { Query.mtarget = Query.TInstr _; _ } -> CModref_instr
  | Query.Modref { Query.mtarget = Query.TLoc _; _ } -> CModref_loc

(** Declared capabilities: which query classes a module may improve
    ([answers]) and which classes of premise queries it may submit through
    [ctx.handle] ([emits]). Purely declarative — the Orchestrator never
    filters on them — but the audit layer's query-plan lint cross-checks
    them against the client query language and the ensemble wiring. *)
type caps = { answers : qclass list; emits : qclass list }

(** The conservative declaration assumed for unannotated modules: may
    improve anything; factored modules may emit any premise class. *)
let default_caps ~(factored : bool) : caps =
  { answers = all_qclasses; emits = (if factored then all_qclasses else []) }

type t = {
  name : string;
  kind : kind;
  factored : bool;  (** does this module generate premise queries? *)
  caps : caps;
  answer : ctx -> Query.t -> Response.t;
}

(** "I cannot improve on the conservative answer." *)
let no_answer (q : Query.t) : Response.t = Response.bottom_for q

(** Wrap [answer] so that any non-bottom response carries the module's name
    in its provenance. *)
let make ?caps ~name ~kind ~factored answer : t =
  let answer ctx q =
    let r = answer ctx q in
    if Aresult.is_bottom r.Response.result && r.Response.options = [ [] ] then r
    else Response.add_provenance name r
  in
  let caps = match caps with Some c -> c | None -> default_caps ~factored in
  { name; kind; factored; caps; answer }

(** [with_caps caps m] — [m] with its capability declaration replaced
    (registries annotate shipped modules without touching their code). *)
let with_caps (caps : caps) (m : t) : t = { m with caps }
