(** Response joining — Algorithm 2 of the paper, including the
    assertion-set semantics [S1 + S2] (union of options) and [S1 x S2]
    (cross product of options), the precision order, the [Mod]/[Ref]
    combination into [NoModRef], and conflict handling. *)

module Sset = Response.Sset

type policy = All | Cheapest

let policy_name = function All -> "ALL" | Cheapest -> "CHEAPEST"

(* O1 + O2: union of two assertion conjunctions, deduplicated. *)
let merge_option (o1 : Assertion.t list) (o2 : Assertion.t list) :
    Assertion.t list =
  List.sort_uniq Assertion.compare (o1 @ o2)

(* Does option [o] contain internally conflicting assertions? *)
let option_consistent (o : Assertion.t list) : bool =
  let rec go = function
    | [] -> true
    | a :: rest ->
        (not (List.exists (Assertion.conflicts_with a) rest)) && go rest
  in
  go o

let dedup_options (os : Assertion.t list list) : Assertion.t list list =
  let sorted = List.map (List.sort_uniq Assertion.compare) os in
  List.sort_uniq Stdlib.compare sorted

(* S1 x S2: all pairwise combinations whose assertions are mutually
   consistent. An empty product means every combination conflicts. *)
let product (s1 : Assertion.t list list) (s2 : Assertion.t list list) :
    Assertion.t list list =
  List.concat_map
    (fun o1 ->
      List.filter_map
        (fun o2 ->
          let o = merge_option o1 o2 in
          if option_consistent o then Some o else None)
        s2)
    s1
  |> dedup_options

(* cheaper(S1, S2): the side whose best option costs less. *)
let cheaper (r1 : Response.t) (r2 : Response.t) : Response.t =
  if
    Response.Options.cheapest_cost r1.Response.options
    <= Response.Options.cheapest_cost r2.Response.options
  then r1
  else r2

(* Same-precision but contradictory results (e.g. NoAlias vs MustAlias).
   With speculation in play this is possible under different profiles; the
   cost-free (or cheaper) side wins. Two contradictory *cost-free* results
   indicate an analysis bug (§3.3), which we surface via Logs. *)
let handle_conflicting_results (r1 : Response.t) (r2 : Response.t) :
    Response.t =
  let free1 = Response.Options.has_free r1.Response.options
  and free2 = Response.Options.has_free r2.Response.options in
  if free1 && free2 then
    Logs.warn (fun m ->
        m "conflicting assertion-free analysis results: %a vs %a — analysis bug"
          Aresult.pp r1.Response.result Aresult.pp r2.Response.result);
  match (free1, free2) with
  | true, false -> r1
  | false, true -> r2
  | _ -> cheaper r1 r2

(** [join policy r1 r2] — Algorithm 2. *)
let join (policy : policy) (r1 : Response.t) (r2 : Response.t) : Response.t =
  let open Response in
  let p1 = Aresult.pr r1.result and p2 = Aresult.pr r2.result in
  if p1 > p2 then r1
  else if p2 > p1 then r2
  else if Aresult.equal r1.result r2.result then
    match policy with
    | All ->
        {
          result = r1.result;
          options = dedup_options (r1.options @ r2.options);
          provenance = Sset.union r1.provenance r2.provenance;
        }
    | Cheapest ->
        (* the loser's options (and thus its provenance) are discarded *)
        cheaper r1 r2
  else
    match (r1.result, r2.result) with
    | Aresult.RModref Aresult.Mod, Aresult.RModref Aresult.Ref
    | Aresult.RModref Aresult.Ref, Aresult.RModref Aresult.Mod -> (
        (* One side proves "never reads", the other "never writes": their
           conjunction proves NoModRef — the collaboration special case. *)
        match product r1.options r2.options with
        | [] ->
            (* every combination of assertions conflicts *)
            cheaper r1 r2
        | options ->
            {
              result = Aresult.RModref Aresult.NoModRef;
              options;
              provenance = Sset.union r1.provenance r2.provenance;
            })
    | _ -> handle_conflicting_results r1 r2

(** N-way fold of [join] starting from the conservative bottom. *)
let join_all (policy : policy) (bottom : Response.t) (rs : Response.t list) :
    Response.t =
  List.fold_left (join policy) bottom rs
