(** Compatibility re-export of {!Scaf_trace.Reservoir} (its new home —
    the metrics layer's histograms are built on it). Types are equal, so
    values flow freely between the two spellings. *)

include module type of struct
  include Scaf_trace.Reservoir
end
