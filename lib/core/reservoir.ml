(** Compatibility alias: the reservoir sampler now lives in [Scaf_trace]
    (the metrics layer's histograms are built on it, and [scaf_trace] sits
    below [scaf] in the library stack). [Scaf.Reservoir] remains a
    re-export so existing users keep compiling. *)

include Scaf_trace.Reservoir
