(** SCAF's dependence-analysis query language (paper Figure 3).

    Two query types, as in LLVM/CAF: [alias] between two memory locations
    and [modref] between an instruction and a location or another
    instruction. SCAF's extensions: the temporal relation, the optional
    control-flow view ([Scaf_cfg.Ctrl.t] — possibly speculative dominator/
    post-dominator trees), the optional desired result (early bail-out for
    premise queries) and the optional calling context. *)

open Scaf_ir
open Scaf_cfg

(** Positions the first operand's dynamic instances relative to the
    second's: [Before]/[After] are cross-iteration (strictly earlier/later
    iteration of the scoping loop), [Same] is intra-iteration. *)
type temporal = Before | Same | After

(** The exact alias answer a factored module needs from a premise query;
    responders may bail out as soon as they know they cannot produce it. *)
type desired = DNoAlias | DMustAlias

(** A memory location: a pointer-valued SSA expression and a byte size,
    interpreted in function [fname]. *)
type memloc = { ptr : Value.t; size : int; fname : string }

type alias_q = {
  a1 : memloc;
  atr : temporal;
  a2 : memloc;
  aloop : string option;  (** loop id scoping the dynamic instances *)
  acc : int list option;  (** calling context *)
  adr : desired option;
  aepoch : int;  (** program epoch the query is posed against *)
}

type modref_target = TLoc of memloc | TInstr of int

type modref_q = {
  minstr : int;
  mtr : temporal;
  mtarget : modref_target;
  mloop : string option;
  mcc : int list option;
  mctrl : Ctrl.t option;  (** the (dt, pdt) parameters of Figure 3 *)
  mepoch : int;  (** program epoch the query is posed against *)
}

type t = Alias of alias_q | Modref of modref_q

val flip_temporal : temporal -> temporal
val temporal_name : temporal -> string

(** [alias ~fname ~tr (p1, s1) (p2, s2)] — may the two locations alias?
    [epoch] (default 0, the initial program version) stamps the query with
    the program version it is posed against; see {!epoch_of}. *)
val alias :
  ?loop:string ->
  ?cc:int list ->
  ?dr:desired ->
  ?epoch:int ->
  fname:string ->
  tr:temporal ->
  Value.t * int ->
  Value.t * int ->
  t

(** [modref_instrs ~tr i1 i2] — may [i1] read or write the memory footprint
    of [i2], with [i1] positioned [tr] relative to [i2]? *)
val modref_instrs :
  ?loop:string ->
  ?cc:int list ->
  ?ctrl:Ctrl.t ->
  ?epoch:int ->
  tr:temporal ->
  int ->
  int ->
  t

val modref_loc :
  ?loop:string ->
  ?cc:int list ->
  ?ctrl:Ctrl.t ->
  ?epoch:int ->
  tr:temporal ->
  int ->
  Value.t * int * string ->
  t

val is_alias : t -> bool

(** The program epoch a query is posed against. Every query carries one:
    the incremental engine keys caches by (query, epoch) so an answer
    computed against a stale program version is unreachable after an edit. *)
val epoch_of : t -> int

(** [at_epoch e q] — [q] restamped to program epoch [e] (physically [q]
    when already there). {!pp} never renders the epoch, so query and answer
    output stays byte-comparable across epochs. *)
val at_epoch : int -> t -> t

(** Canonical operand order for symmetric alias queries (the structurally
    smaller location first, flipping the temporal relation); modref queries
    are directional and returned unchanged. Returns [q] physically when
    already canonical, so callers can detect mirroring with [==]. *)
val canonical : t -> t

(** Strip the desired-result parameter (the Figure 10 ablation). *)
val without_desired : t -> t

val pp_memloc : memloc Fmt.t
val pp : t Fmt.t
