(** Canonicalizing, sharded, bounded, two-tier response cache (see
    qcache.mli for the protocol-level story). *)

type key = {
  cq : Query.t;  (** canonical form; guaranteed closure-free *)
  mirrored : bool;  (** the original query was the mirrored alias form *)
}

type entry = {
  resp : Response.t;
  mutable referenced : bool;  (** second-chance reference bit *)
}

type shard = {
  lock : Mutex.t;
  tbl : (Query.t, entry) Hashtbl.t;
  order : Query.t Queue.t;  (** insertion ring for the clock scan *)
  cap : int;
}

(* The lock-free read tier: a frozen copy of the shared store, published
   with a single [Atomic.set]. The table is never mutated after
   publication, so cross-domain readers need no synchronization beyond the
   atomic load (OCaml atomics are SC: the publishing store happens-before
   any load that observes it). A snapshot is only trusted while its
   generation matches the store's — after invalidate/clear it can only
   miss, and epoch-stamped keys make a stale hit unrepresentable anyway. *)
type ro = {
  rtbl : (Query.t, Response.t) Hashtbl.t;
  rgen : int;
}

type t = {
  shards : shard array;
  gen : int Atomic.t;  (** bumped by invalidate/clear; L1s revalidate *)
  ro : ro Atomic.t;
  ro_building : bool Atomic.t;  (** single-flight guard for publication *)
  ro_published : int Atomic.t;  (** live size at last snapshot publish *)
  live : int Atomic.t;  (** live shared entries (maintained under locks) *)
  wait_clock : (unit -> float) option;
  hits : int Atomic.t;
  l1_hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  canonical_hits : int Atomic.t;
  contended : int Atomic.t;
  waits : int Atomic.t;
  wait_ns_total : float Atomic.t;
  wait_ns_max : float Atomic.t;
  publishes : int Atomic.t;
  steals : int Atomic.t;
  wait_mx : Mutex.t;  (** guards [wait_res]; waits are rare by design *)
  wait_res : Reservoir.t;
}

module Snapshot = struct
  type t = {
    hits : int;
    l1_hits : int;
    misses : int;
    evictions : int;
    canonical_hits : int;
    contended : int;
    waits : int;
    wait_ns_total : float;
    wait_ns_max : float;
    wait_ns_p95 : float;
    publishes : int;
    steals : int;
    entries : int;
    capacity : int;
    shards : int;
  }

  let zero =
    {
      hits = 0;
      l1_hits = 0;
      misses = 0;
      evictions = 0;
      canonical_hits = 0;
      contended = 0;
      waits = 0;
      wait_ns_total = 0.;
      wait_ns_max = 0.;
      wait_ns_p95 = 0.;
      publishes = 0;
      steals = 0;
      entries = 0;
      capacity = 0;
      shards = 0;
    }

  let merge a b =
    {
      hits = a.hits + b.hits;
      l1_hits = a.l1_hits + b.l1_hits;
      misses = a.misses + b.misses;
      evictions = a.evictions + b.evictions;
      canonical_hits = a.canonical_hits + b.canonical_hits;
      contended = a.contended + b.contended;
      waits = a.waits + b.waits;
      wait_ns_total = a.wait_ns_total +. b.wait_ns_total;
      wait_ns_max = Float.max a.wait_ns_max b.wait_ns_max;
      (* percentiles cannot be folded exactly; the max of the two is the
         conservative (never understating) choice *)
      wait_ns_p95 = Float.max a.wait_ns_p95 b.wait_ns_p95;
      publishes = a.publishes + b.publishes;
      steals = a.steals + b.steals;
      entries = a.entries + b.entries;
      capacity = a.capacity + b.capacity;
      shards = max a.shards b.shards;
    }

  let lookups s = s.hits + s.l1_hits + s.misses

  let hit_rate s =
    let l = lookups s in
    if l = 0 then 0. else 100. *. float_of_int (s.hits + s.l1_hits) /. float_of_int l
end

let create ?(shards = 8) ?(capacity = 65536) ?wait_clock () : t =
  let shards = max 1 shards in
  let per_shard = max 1 ((capacity + shards - 1) / shards) in
  {
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            tbl = Hashtbl.create (min per_shard 1024);
            order = Queue.create ();
            cap = per_shard;
          });
    gen = Atomic.make 0;
    ro = Atomic.make { rtbl = Hashtbl.create 0; rgen = -1 };
    ro_building = Atomic.make false;
    ro_published = Atomic.make 0;
    live = Atomic.make 0;
    wait_clock;
    hits = Atomic.make 0;
    l1_hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    canonical_hits = Atomic.make 0;
    contended = Atomic.make 0;
    waits = Atomic.make 0;
    wait_ns_total = Atomic.make 0.;
    wait_ns_max = Atomic.make 0.;
    publishes = Atomic.make 0;
    steals = Atomic.make 0;
    wait_mx = Mutex.create ();
    wait_res = Reservoir.create ~capacity:1024 ();
  }

(* Alias queries are symmetric up to operand order: alias (l1, tr, l2) is
   alias (l2, flip tr, l1); the canonical form ([Query.canonical]) puts the
   structurally smaller location first. The desired-result and
   calling-context parameters describe the pair, not an operand, so they
   survive the swap. Every key is stamped with the program [epoch] it was
   built for — there is no epoch-less key, so an entry computed against a
   stale program version can never be hit after an edit bumps the epoch. *)
let key_of ~(epoch : int) (q : Query.t) : key option =
  match q with
  | Query.Alias _ ->
      let c = Query.canonical q in
      Some { cq = Query.at_epoch epoch c; mirrored = not (c == q) }
  | Query.Modref m ->
      (* a control-flow view holds closures; structural keying would raise
         on a bucket collision — refuse the key altogether *)
      if m.Query.mctrl = None then
        Some { cq = Query.at_epoch epoch q; mirrored = false }
      else None

let mirrored (k : key) : bool = k.mirrored
let key_epoch (k : key) : int = Query.epoch_of k.cq
let key_query (k : key) : Query.t = k.cq

let shard_index (t : t) (cq : Query.t) : int =
  Hashtbl.hash cq mod Array.length t.shards

let shard_of (t : t) (k : key) : shard = t.shards.(shard_index t k.cq)

let with_lock (s : shard) (f : unit -> 'a) : 'a =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(* CAS loops for the float accumulators: boxed floats compare physically,
   and the value we read is the value we pass back, so the loop is sound. *)
let atomic_add_float (a : float Atomic.t) (x : float) : unit =
  let rec go () =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (cur +. x)) then go ()
  in
  go ()

let atomic_max_float (a : float Atomic.t) (x : float) : unit =
  let rec go () =
    let cur = Atomic.get a in
    if x > cur && not (Atomic.compare_and_set a cur x) then go ()
  in
  go ()

(* Contention accounting. The old implementation bumped [contended] on any
   [try_lock] failure — double-counting the overwhelmingly common case
   where the holder releases within nanoseconds and the blocking [lock]
   acquires instantly. Now a failed try is given a brief bounded spin
   ([cpu_relax] keeps the core polite); only when the spin also fails do we
   count a contention event, and — when a clock was injected — measure how
   long the blocking acquire actually took. *)
let spin_tries = 16

let with_lock_counted (t : t) (s : shard) (f : unit -> 'a) : 'a =
  let rec spin n = if n = 0 then false
    else begin
      Domain.cpu_relax ();
      Mutex.try_lock s.lock || spin (n - 1)
    end
  in
  (if not (Mutex.try_lock s.lock || spin spin_tries) then begin
     Atomic.incr t.contended;
     match t.wait_clock with
     | None -> Mutex.lock s.lock
     | Some clock ->
         let t0 = clock () in
         Mutex.lock s.lock;
         let dt_ns = (clock () -. t0) *. 1e9 in
         Atomic.incr t.waits;
         atomic_add_float t.wait_ns_total dt_ns;
         atomic_max_float t.wait_ns_max dt_ns;
         Mutex.lock t.wait_mx;
         Reservoir.add t.wait_res dt_ns;
         Mutex.unlock t.wait_mx
   end);
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(* Second-chance eviction: walk the ring; a referenced entry gets its bit
   cleared and one more lap, the first unreferenced entry is the victim.
   Terminates within two laps (after one lap every bit is clear). *)
let evict_one (t : t) (s : shard) : unit =
  let rec scan () =
    match Queue.take_opt s.order with
    | None -> ()
    | Some q -> (
        match Hashtbl.find_opt s.tbl q with
        | None -> scan () (* stale ring slot for an overwritten key *)
        | Some e ->
            if e.referenced then begin
              e.referenced <- false;
              Queue.add q s.order;
              scan ()
            end
            else begin
              Hashtbl.remove s.tbl q;
              Atomic.decr t.live;
              Atomic.incr t.evictions
            end)
  in
  scan ()

(* Insert under an already-held shard lock (shared by [add], batch
   publication and the invalidation rebuild). *)
let insert_locked (t : t) (s : shard) (cq : Query.t) (resp : Response.t) :
    unit =
  if not (Hashtbl.mem s.tbl cq) then begin
    if Hashtbl.length s.tbl >= s.cap then evict_one t s;
    Queue.add cq s.order;
    Atomic.incr t.live
  end;
  Hashtbl.replace s.tbl cq { resp; referenced = false }

(* Read-only snapshot publication. Single-flight via [ro_building];
   republish only once the store has both reached the floor and doubled
   since the last snapshot, so the copy cost amortizes to O(1) per insert.
   The copy is taken shard by shard under each shard's own lock; if the
   generation moved while we copied, the snapshot describes a dead world
   and is simply dropped. *)
let ro_floor = 256

let maybe_publish_ro (t : t) : unit =
  let live = Atomic.get t.live in
  if
    live >= ro_floor
    && live >= 2 * Atomic.get t.ro_published
    && Atomic.compare_and_set t.ro_building false true
  then
    Fun.protect
      ~finally:(fun () -> Atomic.set t.ro_building false)
      (fun () ->
        let gen0 = Atomic.get t.gen in
        let snap = Hashtbl.create (max 16 (Atomic.get t.live)) in
        Array.iter
          (fun s ->
            with_lock s (fun () ->
                Hashtbl.iter (fun q e -> Hashtbl.replace snap q e.resp) s.tbl))
          t.shards;
        if Atomic.get t.gen = gen0 then begin
          Atomic.set t.ro { rtbl = snap; rgen = gen0 };
          Atomic.set t.ro_published (Hashtbl.length snap)
        end)

let locked_find (t : t) (k : key) : Response.t option =
  let s = shard_of t k in
  with_lock_counted t s (fun () ->
      match Hashtbl.find_opt s.tbl k.cq with
      | Some e ->
          e.referenced <- true;
          Some e.resp
      | None -> None)

let find (t : t) (k : key) : Response.t option =
  let r =
    (* lock-free tier first: a published snapshot valid for the current
       generation answers without touching any mutex (the hit skips the
       reference bit — acceptable clock imprecision for lock freedom) *)
    let ro = Atomic.get t.ro in
    if ro.rgen = Atomic.get t.gen then
      match Hashtbl.find_opt ro.rtbl k.cq with
      | Some resp -> Some resp
      | None -> locked_find t k
    else locked_find t k
  in
  (match r with
  | Some _ ->
      Atomic.incr t.hits;
      if k.mirrored then Atomic.incr t.canonical_hits
  | None -> Atomic.incr t.misses);
  r

let add (t : t) (k : key) (r : Response.t) : unit =
  let s = shard_of t k in
  with_lock s (fun () -> insert_locked t s k.cq r);
  maybe_publish_ro t

let find_q ?epoch (t : t) (q : Query.t) : Response.t option =
  let epoch = match epoch with Some e -> e | None -> Query.epoch_of q in
  match key_of ~epoch q with None -> None | Some k -> find t k

let add_q ?epoch (t : t) (q : Query.t) (r : Response.t) : unit =
  let epoch = match epoch with Some e -> e | None -> Query.epoch_of q in
  match key_of ~epoch q with None -> () | Some k -> add t k r

module Local = struct
  type cache = t

  type t = {
    shared : cache;
    mutable lgen : int;  (** store generation the L1 was filled under *)
    ltbl : (Query.t, Response.t) Hashtbl.t;
    lcap : int;
    flush_every : int;
    mutable pend : (Query.t * Response.t) list;  (** newest first *)
    mutable npend : int;
  }

  let create ?(capacity = 8192) ?(flush_every = 32) (shared : cache) : t =
    {
      shared;
      lgen = Atomic.get shared.gen;
      ltbl = Hashtbl.create 64;
      lcap = max 1 capacity;
      flush_every = max 1 flush_every;
      pend = [];
      npend = 0;
    }

  let shared (l : t) : cache = l.shared

  (* Self-invalidation: the store generation moved (invalidate/clear), so
     every L1 entry — and every pending, still-unpublished entry, which was
     computed against the superseded program state — is dropped. *)
  let validate (l : t) : unit =
    let g = Atomic.get l.shared.gen in
    if g <> l.lgen then begin
      Hashtbl.reset l.ltbl;
      l.pend <- [];
      l.npend <- 0;
      l.lgen <- g
    end

  (* The L1 is a hint, the store holds the truth: on overflow just drop it
     and refill, no eviction bookkeeping on the per-query hot path. *)
  let l1_put (l : t) (cq : Query.t) (r : Response.t) : unit =
    if Hashtbl.length l.ltbl >= l.lcap then Hashtbl.reset l.ltbl;
    Hashtbl.replace l.ltbl cq r

  let flush (l : t) : unit =
    validate l;
    if l.npend > 0 then begin
      let c = l.shared in
      let nsh = Array.length c.shards in
      let buckets = Array.make nsh [] in
      (* [pend] is newest-first; prepending flips each bucket to
         chronological order, so a re-answered query publishes its latest
         response last *)
      List.iter
        (fun ((cq, _) as p) ->
          let i = Hashtbl.hash cq mod nsh in
          buckets.(i) <- p :: buckets.(i))
        l.pend;
      Array.iteri
        (fun i bucket ->
          match bucket with
          | [] -> ()
          | _ ->
              let s = c.shards.(i) in
              with_lock s (fun () ->
                  List.iter (fun (cq, r) -> insert_locked c s cq r) bucket))
        buckets;
      ignore (Atomic.fetch_and_add c.publishes l.npend);
      l.pend <- [];
      l.npend <- 0;
      maybe_publish_ro c
    end

  let find (l : t) (k : key) : Response.t option =
    validate l;
    match Hashtbl.find_opt l.ltbl k.cq with
    | Some r ->
        Atomic.incr l.shared.l1_hits;
        if k.mirrored then Atomic.incr l.shared.canonical_hits;
        Some r
    | None -> (
        match find l.shared k with
        | Some r ->
            (* pull the shared hit into the L1 so the next probe is free;
               not pending — the store already has it *)
            l1_put l k.cq r;
            Some r
        | None -> None)

  let add (l : t) (k : key) (r : Response.t) : unit =
    validate l;
    l1_put l k.cq r;
    l.pend <- (k.cq, r) :: l.pend;
    l.npend <- l.npend + 1;
    if l.npend >= l.flush_every then flush l

  let find_q ?epoch (l : t) (q : Query.t) : Response.t option =
    let epoch = match epoch with Some e -> e | None -> Query.epoch_of q in
    match key_of ~epoch q with None -> None | Some k -> find l k

  let pending (l : t) : int = l.npend
  let size (l : t) : int = Hashtbl.length l.ltbl
end

(* Invalidation after a program edit: evict every entry whose query the
   predicate marks dirty and restamp the survivors to the new epoch, so
   they keep hitting for lookups keyed at [next_epoch]. Restamping changes
   the structural hash, so survivors are drained out of every shard first
   and re-routed through the normal shard function. The generation bump —
   taken before the drain — retires every L1 and read-only snapshot.
   Callers must quiesce concurrent writers around the edit (and flush any
   live locals first — see Local.flush); readers racing the walk can only
   miss, never hit a stale entry. *)
let invalidate (t : t) ~(dirty : Query.t -> bool) ~(next_epoch : int) :
    int * int =
  Atomic.incr t.gen;
  let evicted = ref 0 in
  let survivors = ref [] in
  Array.iter
    (fun s ->
      with_lock s (fun () ->
          Hashtbl.iter
            (fun q e ->
              if dirty q then incr evicted
              else survivors := (Query.at_epoch next_epoch q, e) :: !survivors)
            s.tbl;
          Hashtbl.reset s.tbl;
          Queue.clear s.order))
    t.shards;
  Atomic.set t.live 0;
  Atomic.set t.ro_published 0;
  List.iter
    (fun ((q', e) : Query.t * entry) ->
      let s = t.shards.(shard_index t q') in
      with_lock s (fun () ->
          if not (Hashtbl.mem s.tbl q') then begin
            if Hashtbl.length s.tbl >= s.cap then evict_one t s;
            Queue.add q' s.order;
            Atomic.incr t.live
          end;
          Hashtbl.replace s.tbl q' e))
    !survivors;
  (!evicted, List.length !survivors)

let note_steals (t : t) (n : int) : unit =
  if n > 0 then ignore (Atomic.fetch_and_add t.steals n)

let generation (t : t) : int = Atomic.get t.gen
let length (t : t) : int = Atomic.get t.live

let snapshot (t : t) : Snapshot.t =
  let p95 =
    Mutex.lock t.wait_mx;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.wait_mx)
      (fun () ->
        if Reservoir.count t.wait_res = 0 then 0.
        else Reservoir.percentile t.wait_res 95.)
  in
  {
    Snapshot.hits = Atomic.get t.hits;
    l1_hits = Atomic.get t.l1_hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    canonical_hits = Atomic.get t.canonical_hits;
    contended = Atomic.get t.contended;
    waits = Atomic.get t.waits;
    wait_ns_total = Atomic.get t.wait_ns_total;
    wait_ns_max = Atomic.get t.wait_ns_max;
    wait_ns_p95 = p95;
    publishes = Atomic.get t.publishes;
    steals = Atomic.get t.steals;
    entries = Atomic.get t.live;
    capacity = Array.fold_left (fun acc s -> acc + s.cap) 0 t.shards;
    shards = Array.length t.shards;
  }

let clear (t : t) : unit =
  Atomic.incr t.gen;
  Array.iter
    (fun s ->
      with_lock s (fun () ->
          Hashtbl.reset s.tbl;
          Queue.clear s.order))
    t.shards;
  Atomic.set t.live 0;
  Atomic.set t.ro_published 0
