(** Canonicalizing, sharded, bounded response cache (see qcache.mli). *)

type key = {
  cq : Query.t;  (** canonical form; guaranteed closure-free *)
  mirrored : bool;  (** the original query was the mirrored alias form *)
}

type entry = {
  resp : Response.t;
  mutable referenced : bool;  (** second-chance reference bit *)
}

type shard = {
  lock : Mutex.t;
  tbl : (Query.t, entry) Hashtbl.t;
  order : Query.t Queue.t;  (** insertion ring for the clock scan *)
  cap : int;
}

type t = {
  shards : shard array;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  canonical_hits : int Atomic.t;
  contended : int Atomic.t;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  canonical_hits : int;
  contended : int;
  entries : int;
  capacity : int;
  shards : int;
}

let create ?(shards = 8) ?(capacity = 65536) () : t =
  let shards = max 1 shards in
  let per_shard = max 1 ((capacity + shards - 1) / shards) in
  {
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            tbl = Hashtbl.create (min per_shard 1024);
            order = Queue.create ();
            cap = per_shard;
          });
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    canonical_hits = Atomic.make 0;
    contended = Atomic.make 0;
  }

(* Alias queries are symmetric up to operand order: alias (l1, tr, l2) is
   alias (l2, flip tr, l1); the canonical form ([Query.canonical]) puts the
   structurally smaller location first. The desired-result and
   calling-context parameters describe the pair, not an operand, so they
   survive the swap. Every key is stamped with the program [epoch] it was
   built for — there is no epoch-less key, so an entry computed against a
   stale program version can never be hit after an edit bumps the epoch. *)
let key_of ~(epoch : int) (q : Query.t) : key option =
  match q with
  | Query.Alias _ ->
      let c = Query.canonical q in
      Some { cq = Query.at_epoch epoch c; mirrored = not (c == q) }
  | Query.Modref m ->
      (* a control-flow view holds closures; structural keying would raise
         on a bucket collision — refuse the key altogether *)
      if m.Query.mctrl = None then
        Some { cq = Query.at_epoch epoch q; mirrored = false }
      else None

let mirrored (k : key) : bool = k.mirrored
let key_epoch (k : key) : int = Query.epoch_of k.cq
let key_query (k : key) : Query.t = k.cq

let shard_of (t : t) (k : key) : shard =
  t.shards.(Hashtbl.hash k.cq mod Array.length t.shards)

let with_lock (s : shard) (f : unit -> 'a) : 'a =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(* Same, but counts a contention event when the shard lock is already held
   by another domain — the signal behind the shard-contention metric. *)
let with_lock_counted (t : t) (s : shard) (f : unit -> 'a) : 'a =
  if not (Mutex.try_lock s.lock) then begin
    Atomic.incr t.contended;
    Mutex.lock s.lock
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let find (t : t) (k : key) : Response.t option =
  let s = shard_of t k in
  let r =
    with_lock_counted t s (fun () ->
        match Hashtbl.find_opt s.tbl k.cq with
        | Some e ->
            e.referenced <- true;
            Some e.resp
        | None -> None)
  in
  (match r with
  | Some _ ->
      Atomic.incr t.hits;
      if k.mirrored then Atomic.incr t.canonical_hits
  | None -> Atomic.incr t.misses);
  r

(* Second-chance eviction: walk the ring; a referenced entry gets its bit
   cleared and one more lap, the first unreferenced entry is the victim.
   Terminates within two laps (after one lap every bit is clear). *)
let evict_one (t : t) (s : shard) : unit =
  let rec scan () =
    match Queue.take_opt s.order with
    | None -> ()
    | Some q -> (
        match Hashtbl.find_opt s.tbl q with
        | None -> scan () (* stale ring slot for an overwritten key *)
        | Some e ->
            if e.referenced then begin
              e.referenced <- false;
              Queue.add q s.order;
              scan ()
            end
            else begin
              Hashtbl.remove s.tbl q;
              Atomic.incr t.evictions
            end)
  in
  scan ()

let add (t : t) (k : key) (r : Response.t) : unit =
  let s = shard_of t k in
  with_lock s (fun () ->
      if not (Hashtbl.mem s.tbl k.cq) then begin
        if Hashtbl.length s.tbl >= s.cap then evict_one t s;
        Queue.add k.cq s.order
      end;
      Hashtbl.replace s.tbl k.cq { resp = r; referenced = false })

let find_q ?epoch (t : t) (q : Query.t) : Response.t option =
  let epoch =
    match epoch with Some e -> e | None -> Query.epoch_of q
  in
  match key_of ~epoch q with None -> None | Some k -> find t k

let add_q ?epoch (t : t) (q : Query.t) (r : Response.t) : unit =
  let epoch =
    match epoch with Some e -> e | None -> Query.epoch_of q
  in
  match key_of ~epoch q with None -> () | Some k -> add t k r

(* Invalidation after a program edit: evict every entry whose query the
   predicate marks dirty and restamp the survivors to the new epoch, so
   they keep hitting for lookups keyed at [next_epoch]. Restamping changes
   the structural hash, so survivors are drained out of every shard first
   and re-routed through the normal shard function (reference bits kept).
   Callers must quiesce concurrent writers around the edit; readers racing
   the walk can only miss, never hit a stale entry. *)
let invalidate (t : t) ~(dirty : Query.t -> bool) ~(next_epoch : int) :
    int * int =
  let evicted = ref 0 in
  let survivors = ref [] in
  Array.iter
    (fun s ->
      with_lock s (fun () ->
          Hashtbl.iter
            (fun q e ->
              if dirty q then incr evicted
              else survivors := (Query.at_epoch next_epoch q, e) :: !survivors)
            s.tbl;
          Hashtbl.reset s.tbl;
          Queue.clear s.order))
    t.shards;
  List.iter
    (fun ((q', e) : Query.t * entry) ->
      let s = shard_of t { cq = q'; mirrored = false } in
      with_lock s (fun () ->
          if not (Hashtbl.mem s.tbl q') then begin
            if Hashtbl.length s.tbl >= s.cap then evict_one t s;
            Queue.add q' s.order
          end;
          Hashtbl.replace s.tbl q' e))
    !survivors;
  (!evicted, List.length !survivors)

let length (t : t) : int =
  Array.fold_left
    (fun acc s -> acc + with_lock s (fun () -> Hashtbl.length s.tbl))
    0 t.shards

let stats (t : t) : stats =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    canonical_hits = Atomic.get t.canonical_hits;
    contended = Atomic.get t.contended;
    entries = length t;
    capacity = Array.fold_left (fun acc s -> acc + s.cap) 0 t.shards;
    shards = Array.length t.shards;
  }

let clear (t : t) : unit =
  Array.iter
    (fun s ->
      with_lock s (fun () ->
          Hashtbl.reset s.tbl;
          Queue.clear s.order))
    t.shards
