(** Canonicalizing, sharded, bounded response cache.

    The memoization layer behind the orchestrator (and shared by the
    domain-parallel batch engine): maps dependence queries to their joined
    responses.

    {b Canonicalization.} Alias queries are symmetric up to operand order:
    [alias (l1, tr, l2)] asks the same question as
    [alias (l2, flip_temporal tr, l1)]. Keys are normalized so both forms
    share one entry; a hit through the mirrored form is additionally
    counted as a {e canonical hit}. Modref queries are directional and are
    never mirrored.

    {b Key safety.} Queries carrying a control-flow view ([mctrl]) embed
    closures ([Scaf_cfg.Ctrl.t] holds [succs]/[live] functions) and must
    never be used as structural table keys — [Stdlib.compare] would raise
    [Invalid_argument "compare: functional value"] on a bucket collision.
    The only way to obtain a {!key} is {!key_of}, which returns [None] for
    such queries, so the invariant is enforced by construction.

    {b Concurrency.} The table is split into shards, each guarded by its
    own [Mutex], so orchestrators running on different domains can share
    one cache with low contention. Counters are [Atomic].

    {b Bounded capacity.} Each shard holds at most [capacity / shards]
    entries and evicts with the second-chance (clock) policy: a hit sets
    the entry's reference bit; the victim scan clears bits and evicts the
    first entry found clear. *)

type t

(** A canonicalized, closure-free cache key. *)
type key

type stats = {
  hits : int;  (** lookups answered from the cache *)
  misses : int;  (** lookups that found nothing *)
  evictions : int;  (** entries removed by the clock policy *)
  canonical_hits : int;
      (** subset of [hits] served through a mirrored alias form *)
  contended : int;
      (** lookups that found their shard lock already held by another
          domain (shard-contention signal for the metrics layer) *)
  entries : int;  (** live entries right now *)
  capacity : int;  (** configured bound (total across shards) *)
  shards : int;
}

(** [create ()] — default 8 shards, 65536 entries total. [capacity] is
    rounded up to at least one entry per shard. *)
val create : ?shards:int -> ?capacity:int -> unit -> t

(** [key_of q] is the canonical key for [q], or [None] when [q] cannot be
    a table key (it carries a [Ctrl.t] control-flow view). *)
val key_of : Query.t -> key option

(** [mirrored k] — was [k] built from the mirrored alias form? A hit
    through such a key is a canonical hit (the trace layer distinguishes
    the two). *)
val mirrored : key -> bool

(** [find t k] — the cached response, if any. Bumps hit/miss counters
    (and canonical-hit when [k] was built from a mirrored alias form). *)
val find : t -> key -> Response.t option

(** [add t k r] — insert (or overwrite) the entry for [k], evicting a
    second-chance victim if the shard is full. *)
val add : t -> key -> Response.t -> unit

(** [find_q]/[add_q] — conveniences over {!key_of}; no-ops (resp. [None])
    on uncacheable queries. *)
val find_q : t -> Query.t -> Response.t option

val add_q : t -> Query.t -> Response.t -> unit

val stats : t -> stats

(** Number of live entries across all shards. *)
val length : t -> int

(** Drop every entry (counters are kept). *)
val clear : t -> unit
