(** Canonicalizing, sharded, bounded response cache — two-tier since the
    multicore-scaling redesign.

    The memoization layer behind the orchestrator (and shared by the
    domain-parallel batch engine): maps dependence queries to their joined
    responses.

    {b Canonicalization.} Alias queries are symmetric up to operand order:
    [alias (l1, tr, l2)] asks the same question as
    [alias (l2, flip_temporal tr, l1)]. Keys are normalized so both forms
    share one entry; a hit through the mirrored form is additionally
    counted as a {e canonical hit}. Modref queries are directional and are
    never mirrored.

    {b Key safety.} Queries carrying a control-flow view ([mctrl]) embed
    closures ([Scaf_cfg.Ctrl.t] holds [succs]/[live] functions) and must
    never be used as structural table keys — [Stdlib.compare] would raise
    [Invalid_argument "compare: functional value"] on a bucket collision.
    The only way to obtain a {!key} is {!key_of}, which returns [None] for
    such queries, so the invariant is enforced by construction.

    {b Two tiers.} The shared store is split into shards, each guarded by
    its own [Mutex]. On top of it, each worker owns a {!Local.t}: a
    bounded, completely unsynchronized L1 whose entries are published into
    the shared store in batches ({!Local.flush}), so the per-query hot
    path takes no lock at all once warm. Additionally the store
    [Atomic]-publishes a read-only snapshot of its (immutable) entries, so
    even a cross-worker warm hit is lock-free; only a genuine first-time
    miss or a publication batch touches a shard mutex.

    {b Generations.} The store carries a generation counter, bumped by
    {!invalidate} and {!clear}. Every {!Local.t} and every published
    read-only snapshot is stamped with the generation it was filled under
    and self-invalidates when the store moves on — an epoch bump therefore
    empties every L1 (and drops their unpublished entries, which were
    computed against the superseded program state).

    {b Bounded capacity.} Each shard holds at most [capacity / shards]
    entries and evicts with the second-chance (clock) policy: a locked hit
    sets the entry's reference bit; the victim scan clears bits and evicts
    the first entry found clear. (L1 and snapshot hits skip the bit — the
    price of lock freedom is slightly less precise clock information.) *)

type t

(** A canonicalized, closure-free cache key, stamped with the program epoch
    it was built for. Keys are abstract and only {!key_of} builds one, so an
    epoch-less (stale-able) key is unrepresentable by construction. *)
type key

(** Immutable counter snapshots — the only stats surface. The store's
    internal counters are private; callers compare, render and fold
    snapshots (see {!Snapshot.merge}). *)
module Snapshot : sig
  type t = {
    hits : int;  (** lookups answered from the shared store *)
    l1_hits : int;  (** lookups answered from a worker's private L1 *)
    misses : int;  (** lookups that found nothing in any tier *)
    evictions : int;  (** shared-store entries removed by the clock policy *)
    canonical_hits : int;
        (** subset of [hits + l1_hits] served through a mirrored alias form *)
    contended : int;
        (** lookups that actually waited for a shard lock (a failed
            [try_lock] that a brief bounded spin could not recover —
            transient holds that release immediately are not counted) *)
    waits : int;  (** [contended] waits with a measured duration *)
    wait_ns_total : float;  (** summed measured lock-wait time, ns *)
    wait_ns_max : float;  (** worst measured lock wait, ns *)
    wait_ns_p95 : float;
        (** 95th percentile of the lock-wait reservoir, ns (0 when no
            wait was ever measured) *)
    publishes : int;
        (** L1 entries published into the shared store by batch flushes *)
    steals : int;
        (** scheduler work-steal events attributed to this cache via
            {!note_steals} (the scheduler itself lives in [Scaf_pdg]) *)
    entries : int;  (** live shared-store entries right now *)
    capacity : int;  (** configured bound (total across shards) *)
    shards : int;
  }

  (** All-zero snapshot — the identity of {!merge}. *)
  val zero : t

  (** Field-wise fold of two snapshots: counters, [waits], [publishes],
      [steals], [entries] and [capacity] add; [wait_ns_max] takes the max;
      [wait_ns_p95] approximates as the max of the two (reservoirs cannot
      be merged from their percentiles); [shards] takes the max. *)
  val merge : t -> t -> t

  (** Total lookups across every tier: [hits + l1_hits + misses]. *)
  val lookups : t -> int

  (** All-tier hit rate in percent (0 when no lookups). *)
  val hit_rate : t -> float
end

(** [create ()] — default 8 shards, 65536 entries total. [capacity] is
    rounded up to at least one entry per shard. [wait_clock], when given,
    times actual lock waits (seconds, like every other clock in the core)
    for the [wait_ns_*] snapshot fields; without it waits are only
    counted. *)
val create :
  ?shards:int -> ?capacity:int -> ?wait_clock:(unit -> float) -> unit -> t

(** [key_of ~epoch q] is the canonical key for [q] at program epoch
    [epoch], or [None] when [q] cannot be a table key (it carries a
    [Ctrl.t] control-flow view). The epoch is part of the key's structural
    identity: after an edit bumps the program epoch, lookups keyed at the
    new epoch can never hit an entry stamped with the old one (surviving
    entries are restamped by {!invalidate}). *)
val key_of : epoch:int -> Query.t -> key option

(** [mirrored k] — was [k] built from the mirrored alias form? A hit
    through such a key is a canonical hit (the trace layer distinguishes
    the two). *)
val mirrored : key -> bool

(** The program epoch [k] was stamped with. *)
val key_epoch : key -> int

(** The canonical (epoch-stamped) query behind [k]. *)
val key_query : key -> Query.t

(** [find t k] — the cached response, if any, from the shared store
    (lock-free when the read-only snapshot holds [k], locked otherwise).
    Bumps hit/miss counters (and canonical-hit when [k] was built from a
    mirrored alias form). *)
val find : t -> key -> Response.t option

(** [add t k r] — insert (or overwrite) the entry for [k] directly in the
    shared store, evicting a second-chance victim if the shard is full.
    Worker hot paths should go through {!Local.add} instead. *)
val add : t -> key -> Response.t -> unit

(** [find_q]/[add_q] — conveniences over {!key_of}; no-ops (resp. [None])
    on uncacheable queries. [epoch] defaults to the query's own embedded
    epoch ({!Query.epoch_of}). *)
val find_q : ?epoch:int -> t -> Query.t -> Response.t option

val add_q : ?epoch:int -> t -> Query.t -> Response.t -> unit

(** The per-worker unsynchronized L1 tier. A [Local.t] must only ever be
    used by the worker (domain or thread) that owns it; the shared store
    underneath may be shared freely. *)
module Local : sig
  (** The shared store a local caches over. *)
  type cache = t

  type t

  (** [create cache] — an empty L1 over [cache]. [capacity] bounds the
      table (default 8192; on overflow the L1 is simply dropped and
      refilled — an L1 is a hint, the store holds the truth).
      [flush_every] is the publication batch size (default 32): every
      [flush_every]-th {!add} publishes the pending batch into the shared
      store, grouped by shard so each shard lock is taken once per
      batch. *)
  val create : ?capacity:int -> ?flush_every:int -> cache -> t

  (** The store this local publishes into. *)
  val shared : t -> cache

  (** [find l k] — L1 probe first (no synchronization at all), then the
      shared store ({!val-find}); a shared hit is pulled into the L1. *)
  val find : t -> key -> Response.t option

  (** [add l k r] — record a computed answer: into the L1 immediately, and
      into the pending publication batch (flushed every [flush_every]
      adds, or explicitly via {!flush}). *)
  val add : t -> key -> Response.t -> unit

  (** [find_q l q] — {!find} through {!key_of}; [None] on uncacheable
      queries. *)
  val find_q : ?epoch:int -> t -> Query.t -> Response.t option

  (** Publish the pending batch into the shared store now. Callers that
      are about to {!invalidate} the store must flush every live local
      first, or the pending (still unpublished) entries are dropped by the
      generation bump instead of surviving as restamped entries. *)
  val flush : t -> unit

  (** Entries currently buffered for publication (testing/diagnostics). *)
  val pending : t -> int

  (** Live L1 entries (testing/diagnostics). *)
  val size : t -> int
end

(** [invalidate t ~dirty ~next_epoch] — the post-edit invalidation walk:
    drops every entry whose (canonical, epoch-stamped) query satisfies
    [dirty] and restamps the survivors to [next_epoch], re-routing them to
    their new shards. Returns [(evicted, retained)]. Bumps the store
    generation, so every {!Local.t} and read-only snapshot self-empties.
    Counters are kept; clock-eviction counts are unaffected. Concurrent
    writers must be quiesced around the call (readers racing it can only
    miss). *)
val invalidate : t -> dirty:(Query.t -> bool) -> next_epoch:int -> int * int

(** The current immutable counter snapshot. *)
val snapshot : t -> Snapshot.t

(** [note_steals t n] — attribute [n] scheduler work-steal events to this
    cache (surfaced as {!Snapshot.t.steals}); the batch engine calls this
    after each fan-out with the pool's steal delta. *)
val note_steals : t -> int -> unit

(** The store generation — bumped by {!invalidate} and {!clear}
    (testing/diagnostics; locals revalidate against it). *)
val generation : t -> int

(** Number of live entries across all shards. *)
val length : t -> int

(** Drop every entry (counters are kept; the generation bump empties every
    L1 and snapshot too). *)
val clear : t -> unit
