(** Canonicalizing, sharded, bounded response cache.

    The memoization layer behind the orchestrator (and shared by the
    domain-parallel batch engine): maps dependence queries to their joined
    responses.

    {b Canonicalization.} Alias queries are symmetric up to operand order:
    [alias (l1, tr, l2)] asks the same question as
    [alias (l2, flip_temporal tr, l1)]. Keys are normalized so both forms
    share one entry; a hit through the mirrored form is additionally
    counted as a {e canonical hit}. Modref queries are directional and are
    never mirrored.

    {b Key safety.} Queries carrying a control-flow view ([mctrl]) embed
    closures ([Scaf_cfg.Ctrl.t] holds [succs]/[live] functions) and must
    never be used as structural table keys — [Stdlib.compare] would raise
    [Invalid_argument "compare: functional value"] on a bucket collision.
    The only way to obtain a {!key} is {!key_of}, which returns [None] for
    such queries, so the invariant is enforced by construction.

    {b Concurrency.} The table is split into shards, each guarded by its
    own [Mutex], so orchestrators running on different domains can share
    one cache with low contention. Counters are [Atomic].

    {b Bounded capacity.} Each shard holds at most [capacity / shards]
    entries and evicts with the second-chance (clock) policy: a hit sets
    the entry's reference bit; the victim scan clears bits and evicts the
    first entry found clear. *)

type t

(** A canonicalized, closure-free cache key, stamped with the program epoch
    it was built for. Keys are abstract and only {!key_of} builds one, so an
    epoch-less (stale-able) key is unrepresentable by construction. *)
type key

type stats = {
  hits : int;  (** lookups answered from the cache *)
  misses : int;  (** lookups that found nothing *)
  evictions : int;  (** entries removed by the clock policy *)
  canonical_hits : int;
      (** subset of [hits] served through a mirrored alias form *)
  contended : int;
      (** lookups that found their shard lock already held by another
          domain (shard-contention signal for the metrics layer) *)
  entries : int;  (** live entries right now *)
  capacity : int;  (** configured bound (total across shards) *)
  shards : int;
}

(** [create ()] — default 8 shards, 65536 entries total. [capacity] is
    rounded up to at least one entry per shard. *)
val create : ?shards:int -> ?capacity:int -> unit -> t

(** [key_of ~epoch q] is the canonical key for [q] at program epoch
    [epoch], or [None] when [q] cannot be a table key (it carries a
    [Ctrl.t] control-flow view). The epoch is part of the key's structural
    identity: after an edit bumps the program epoch, lookups keyed at the
    new epoch can never hit an entry stamped with the old one (surviving
    entries are restamped by {!invalidate}). *)
val key_of : epoch:int -> Query.t -> key option

(** [mirrored k] — was [k] built from the mirrored alias form? A hit
    through such a key is a canonical hit (the trace layer distinguishes
    the two). *)
val mirrored : key -> bool

(** The program epoch [k] was stamped with. *)
val key_epoch : key -> int

(** The canonical (epoch-stamped) query behind [k]. *)
val key_query : key -> Query.t

(** [find t k] — the cached response, if any. Bumps hit/miss counters
    (and canonical-hit when [k] was built from a mirrored alias form). *)
val find : t -> key -> Response.t option

(** [add t k r] — insert (or overwrite) the entry for [k], evicting a
    second-chance victim if the shard is full. *)
val add : t -> key -> Response.t -> unit

(** [find_q]/[add_q] — conveniences over {!key_of}; no-ops (resp. [None])
    on uncacheable queries. [epoch] defaults to the query's own embedded
    epoch ({!Query.epoch_of}). *)
val find_q : ?epoch:int -> t -> Query.t -> Response.t option

val add_q : ?epoch:int -> t -> Query.t -> Response.t -> unit

(** [invalidate t ~dirty ~next_epoch] — the post-edit invalidation walk:
    drops every entry whose (canonical, epoch-stamped) query satisfies
    [dirty] and restamps the survivors to [next_epoch], re-routing them to
    their new shards. Returns [(evicted, retained)]. Counters are kept;
    clock-eviction counts are unaffected. Concurrent writers must be
    quiesced around the call (readers racing it can only miss). *)
val invalidate : t -> dirty:(Query.t -> bool) -> next_epoch:int -> int * int

val stats : t -> stats

(** Number of live entries across all shards. *)
val length : t -> int

(** Drop every entry (counters are kept). *)
val clear : t -> unit
