(** Query responses (Figure 3's Response Syntax): a result plus the
    assertion *options* under which it holds.

    [options] is a disjunction of conjunctions: a client picks any one
    option and must validate all of that option's assertions. The cost-free
    response is the single empty option [[ [] ]]. [provenance] records the
    modules that contributed (directly or through premise queries) — the
    bookkeeping behind the paper's Table 2. *)

module Sset : Set.S with type elt = string

type t = {
  result : Aresult.t;
  options : Assertion.t list list;
  provenance : Sset.t;
}

val make :
  ?options:Assertion.t list list -> ?provenance:Sset.t -> Aresult.t -> t

val bottom_alias : t
val bottom_modref : t

(** The conservative response matching the query's type. *)
val bottom_for : Query.t -> t

(** An assertion-free (static) answer. *)
val free : ?provenance:Sset.t -> Aresult.t -> t

(** A speculative answer under a single option of assertions. *)
val speculative : ?provenance:Sset.t -> Aresult.t -> Assertion.t list -> t

(** Assertion-set introspection: the one documented iteration/filter API
    over a response's option disjunction. *)
module Options : sig
  (** The assertion-option disjunction, as stored in [options]. *)
  type nonrec t = Assertion.t list list

  (** Validation cost of one option: the sum of its assertion costs. *)
  val cost : Assertion.t list -> float

  (** A literally assertion-free option — a claim about every execution
      (stricter than costing 0.0: zero-cost assertions are free to
      validate but still speculative). *)
  val is_unconditional : Assertion.t list -> bool

  val count : t -> int
  val iter : (Assertion.t list -> unit) -> t -> unit
  val fold : ('a -> Assertion.t list -> 'a) -> 'a -> t -> 'a
  val filter : (Assertion.t list -> bool) -> t -> t
  val exists : (Assertion.t list -> bool) -> t -> bool

  (** Cost of the cheapest option ([infinity] on the ill-formed empty
      disjunction). *)
  val cheapest_cost : t -> float

  (** The cheapest option itself. *)
  val cheapest : t -> Assertion.t list option

  (** Some option costs nothing to validate. *)
  val has_free : t -> bool

  (** Some option is literally assertion-free. *)
  val has_unconditional : t -> bool
end

(** Maximally precise *and* free — the default bail-out condition. *)
val is_definite_free : t -> bool

val add_provenance : string -> t -> t
val merge_provenance : Sset.t -> t -> t
val pp : t Fmt.t
