(** Query responses (Figure 3's Response Syntax): a result plus the
    assertion *options* under which it holds.

    [options] is a disjunction of conjunctions: a client picks any one
    option and must validate all of that option's assertions. The cost-free
    response is the single empty option [[ [] ]]. [provenance] records the
    modules that contributed (directly or through premise queries) — the
    bookkeeping behind the paper's Table 2. *)

module Sset : Set.S with type elt = string

type t = {
  result : Aresult.t;
  options : Assertion.t list list;
  provenance : Sset.t;
}

val make :
  ?options:Assertion.t list list -> ?provenance:Sset.t -> Aresult.t -> t

val bottom_alias : t
val bottom_modref : t

(** The conservative response matching the query's type. *)
val bottom_for : Query.t -> t

(** An assertion-free (static) answer. *)
val free : ?provenance:Sset.t -> Aresult.t -> t

(** A speculative answer under a single option of assertions. *)
val speculative : ?provenance:Sset.t -> Aresult.t -> Assertion.t list -> t

val option_cost : Assertion.t list -> float
val cheapest_cost : t -> float
val cheapest_option : t -> Assertion.t list option
val has_free_option : t -> bool

(** A literally assertion-free option exists — a claim about every
    execution. Stricter than {!has_free_option}, which also accepts
    zero-cost (but still speculative) assertions. *)
val has_unconditional_option : t -> bool

(** Maximally precise *and* free — the default bail-out condition. *)
val is_definite_free : t -> bool

val add_provenance : string -> t -> t
val merge_provenance : Sset.t -> t -> t
val pp : t Fmt.t
