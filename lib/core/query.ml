(** SCAF's dependence-analysis query language (Figure 3).

    Two query types, as in LLVM/CAF: [alias] between two memory locations,
    and [modref] between an instruction and a location or between two
    instructions. SCAF's extensions over CAF (colored in the paper's
    Figure 3) are all here:

    - the *temporal relation* scopes the query to intra-iteration ([Same])
      or cross-iteration ([Before]/[After]) dynamic instances;
    - the optional *control-flow view* ([ctrl]: dominator + post-dominator
      trees) lets speculation modules hand speculative control flow to
      control-flow-sensitive modules;
    - the optional *desired result* lets factored modules ask exactly the
      alias answer they need, so other modules can bail out early;
    - the optional *calling context* disambiguates dynamic instances of one
      static instruction. *)

open Scaf_ir
open Scaf_cfg

type temporal = Before | Same | After

type desired = DNoAlias | DMustAlias

(** A memory location: a pointer-valued SSA expression and an access size,
    interpreted in function [fname]. *)
type memloc = { ptr : Value.t; size : int; fname : string }

type alias_q = {
  a1 : memloc;
  atr : temporal;
  a2 : memloc;
  aloop : string option;  (** loop id scoping dynamic instances *)
  acc : int list option;  (** calling context *)
  adr : desired option;  (** desired result *)
  aepoch : int;  (** program epoch the query is posed against *)
}

type modref_target = TLoc of memloc | TInstr of int

type modref_q = {
  minstr : int;  (** the (potentially) accessing instruction *)
  mtr : temporal;
  mtarget : modref_target;
  mloop : string option;
  mcc : int list option;
  mctrl : Ctrl.t option;  (** dominator/post-dominator trees (dt, pdt) *)
  mepoch : int;  (** program epoch the query is posed against *)
}

type t = Alias of alias_q | Modref of modref_q

let flip_temporal = function Before -> After | After -> Before | Same -> Same

let temporal_name = function
  | Before -> "Before"
  | Same -> "Same"
  | After -> "After"

(** [alias] smart constructor. [epoch] is the program version the query is
    posed against; batch clients analyse the initial version (epoch 0). *)
let alias ?loop ?cc ?dr ?(epoch = 0) ~fname ~tr (p1, s1) (p2, s2) : t =
  Alias
    {
      a1 = { ptr = p1; size = s1; fname };
      atr = tr;
      a2 = { ptr = p2; size = s2; fname };
      aloop = loop;
      acc = cc;
      adr = dr;
      aepoch = epoch;
    }

(** [modref_instrs] smart constructor: may [i1] read or write the memory
    footprint of [i2] (with [i1] positioned [tr] relative to [i2])? *)
let modref_instrs ?loop ?cc ?ctrl ?(epoch = 0) ~tr i1 i2 : t =
  Modref
    {
      minstr = i1;
      mtr = tr;
      mtarget = TInstr i2;
      mloop = loop;
      mcc = cc;
      mctrl = ctrl;
      mepoch = epoch;
    }

let modref_loc ?loop ?cc ?ctrl ?(epoch = 0) ~tr i (ptr, size, fname) : t =
  Modref
    {
      minstr = i;
      mtr = tr;
      mtarget = TLoc { ptr; size; fname };
      mloop = loop;
      mcc = cc;
      mctrl = ctrl;
      mepoch = epoch;
    }

(** The program epoch a query is posed against. *)
let epoch_of = function Alias a -> a.aepoch | Modref m -> m.mepoch

(** [at_epoch e q] — [q] restamped to program epoch [e] (physically [q]
    itself when already there). The epoch never appears in {!pp}: rendered
    queries and answers are epoch-free, so incremental output stays
    byte-comparable to batch output. *)
let at_epoch (e : int) (q : t) : t =
  if epoch_of q = e then q
  else
    match q with
    | Alias a -> Alias { a with aepoch = e }
    | Modref m -> Modref { m with mepoch = e }

(** Canonical operand order for symmetric alias queries: [alias (l1, tr,
    l2)] asks the same question as [alias (l2, flip tr, l1)], so the
    structurally smaller location goes first. Modref queries are
    directional and returned unchanged (physically [q] when already
    canonical — callers detect mirroring with [==]). *)
let canonical (q : t) : t =
  match q with
  | Alias a when Stdlib.compare a.a2 a.a1 < 0 ->
      Alias { a with a1 = a.a2; a2 = a.a1; atr = flip_temporal a.atr }
  | _ -> q

let is_alias = function Alias _ -> true | Modref _ -> false

(** Strip the desired-result parameter (the Figure 10 ablation). *)
let without_desired = function
  | Alias a -> Alias { a with adr = None }
  | Modref _ as q -> q

let pp_memloc ppf (l : memloc) =
  Fmt.pf ppf "(%a,%d)@@%s" Value.pp l.ptr l.size l.fname

let pp ppf = function
  | Alias a ->
      Fmt.pf ppf "alias(%a, %s, %a%a%a)" pp_memloc a.a1
        (temporal_name a.atr) pp_memloc a.a2
        (Fmt.option (fun ppf l -> Fmt.pf ppf ", loop=%s" l))
        a.aloop
        (Fmt.option (fun ppf d ->
             Fmt.pf ppf ", dr=%s"
               (match d with DNoAlias -> "NoAlias" | DMustAlias -> "MustAlias")))
        a.adr
  | Modref m ->
      Fmt.pf ppf "modref(%d, %s, %a%a%s)" m.minstr (temporal_name m.mtr)
        (fun ppf -> function
          | TLoc l -> pp_memloc ppf l
          | TInstr i -> Fmt.pf ppf "instr %d" i)
        m.mtarget
        (Fmt.option (fun ppf l -> Fmt.pf ppf ", loop=%s" l))
        m.mloop
        (match m.mctrl with Some _ -> ", ctrl" | None -> "")
