(** The Orchestrator (§3.3, Algorithm 1).

    Coordinates all module interactions: forwards client queries to modules
    in configured order, joins their responses under the configured join
    policy, stops according to the bail-out policy, and routes premise
    queries back through the ensemble (with a recursion budget so factored
    modules cannot ping-pong forever).

    Configurability per the paper: module subset and order, join policy
    (ALL vs CHEAPEST), bail-out policy (definite-and-free, definite-at-any-
    cost, exhaustive), and the desired-result ablation switch. *)

type bailout =
  | Definite_free  (** stop at a maximally precise, assertion-free answer *)
  | Definite_any  (** stop at a maximally precise answer regardless of cost *)
  | Exhaustive  (** always consult every module *)
  | Timeout of float
      (** definite-free, plus a per-client-query budget in [clock] units
          (for clients sensitive to compilation time, §3.3) *)

type config = {
  modules : Module_api.t list;  (** consulted in order *)
  join_policy : Join.policy;
  bailout : bailout;
  max_premise_depth : int;
  respect_desired : bool;
      (** when false, the desired-result parameter is stripped from premise
          queries (the Figure 10 ablation) *)
  clock : (unit -> float) option;  (** for per-query latency statistics *)
  module_budget : float option;
      (** per-module-evaluation latency budget in [clock] units; an answer
          arriving past it is discarded as a fault *)
  breaker_threshold : int;
      (** quarantine a module after this many consecutive faults *)
}

let default_config (modules : Module_api.t list) : config =
  {
    modules;
    join_policy = Join.Cheapest;
    bailout = Definite_free;
    max_premise_depth = 4;
    respect_desired = true;
    clock = None;
    module_budget = None;
    breaker_threshold = 3;
  }

type stats = {
  mutable client_queries : int;
  mutable premise_queries : int;
  mutable module_evals : int;
  mutable latencies : float list;  (** per client query, reversed *)
  mutable module_faults : int;  (** module evaluations that raised *)
  mutable module_overruns : int;  (** evaluations past [module_budget] *)
  mutable quarantine_skips : int;  (** evaluations skipped by the breaker *)
}

(** Per-module fault-isolation record (§3.3 collaboration requires that one
    misbehaving module cannot take down the ensemble). *)
type health = {
  mutable faults : int;
  mutable overruns : int;
  mutable consecutive : int;  (** consecutive faults; a success resets it *)
  mutable quarantined : bool;
}

type t = {
  config : config;
  prog : Scaf_cfg.Progctx.t;
  stats : stats;
  cache : (Query.t, Response.t) Hashtbl.t;
      (** structural memo for repeated (premise) queries; only queries
          without a control-flow view are keyed (views are closures) *)
  deadline : float option ref;
      (** per-client-query deadline when the bail-out policy is [Timeout] *)
  health : (string, health) Hashtbl.t;  (** keyed by module name *)
}

let create (prog : Scaf_cfg.Progctx.t) (config : config) : t =
  {
    config;
    prog;
    stats =
      {
        client_queries = 0;
        premise_queries = 0;
        module_evals = 0;
        latencies = [];
        module_faults = 0;
        module_overruns = 0;
        quarantine_skips = 0;
      };
    cache = Hashtbl.create 1024;
    deadline = ref None;
    health = Hashtbl.create 8;
  }

let health_of (t : t) (name : string) : health =
  match Hashtbl.find_opt t.health name with
  | Some h -> h
  | None ->
      let h = { faults = 0; overruns = 0; consecutive = 0; quarantined = false } in
      Hashtbl.replace t.health name h;
      h

(** Names of the modules currently quarantined by the circuit breaker. *)
let quarantined (t : t) : string list =
  Hashtbl.fold (fun n h acc -> if h.quarantined then n :: acc else acc) t.health []
    |> List.sort compare

let cacheable (q : Query.t) : bool =
  match q with
  | Query.Alias _ -> true
  | Query.Modref m -> m.Query.mctrl = None

let deadline_passed (t : t) : bool =
  match (!(t.deadline), t.config.clock) with
  | Some d, Some clock -> clock () >= d
  | _ -> false

let should_bail (t : t) (r : Response.t) : bool =
  match t.config.bailout with
  | Definite_free -> Response.is_definite_free r
  | Definite_any -> Aresult.is_definite r.Response.result
  | Exhaustive -> false
  | Timeout _ -> Response.is_definite_free r || deadline_passed t

(** [guarded_answer t m ctx q] — fault-isolated module evaluation
    (Algorithm 1, hardened): an exception or a [module_budget] overrun is
    recorded against the module and converted into the conservative
    [no_answer]; [breaker_threshold] consecutive faults quarantine the
    module for the rest of the session. A quarantined or faulting module
    can therefore never abort a client query. *)
let guarded_answer (t : t) (m : Module_api.t) (ctx : Module_api.ctx)
    (q : Query.t) : Response.t =
  let name = m.Module_api.name in
  let h = health_of t name in
  if h.quarantined then begin
    t.stats.quarantine_skips <- t.stats.quarantine_skips + 1;
    Module_api.no_answer q
  end
  else begin
    t.stats.module_evals <- t.stats.module_evals + 1;
    let fault ~overrun =
      if overrun then begin
        h.overruns <- h.overruns + 1;
        t.stats.module_overruns <- t.stats.module_overruns + 1
      end
      else begin
        h.faults <- h.faults + 1;
        t.stats.module_faults <- t.stats.module_faults + 1
      end;
      h.consecutive <- h.consecutive + 1;
      if h.consecutive >= t.config.breaker_threshold then h.quarantined <- true;
      Module_api.no_answer q
    in
    (* only sample the clock when a budget is configured, so fake-clock
       latency accounting is unchanged otherwise *)
    let t0 =
      match (t.config.module_budget, t.config.clock) with
      | Some _, Some clock -> Some (clock ())
      | _ -> None
    in
    match m.Module_api.answer ctx q with
    | r -> (
        match (t0, t.config.module_budget, t.config.clock) with
        | Some start, Some budget, Some clock when clock () -. start > budget ->
            fault ~overrun:true
        | _ ->
            h.consecutive <- 0;
            r)
    | exception _ -> fault ~overrun:false
  end

let rec handle_at (t : t) (depth : int) (q : Query.t) : Response.t =
  match if cacheable q then Hashtbl.find_opt t.cache q else None with
  | Some r -> r
  | None -> handle_uncached t depth q

and handle_uncached (t : t) (depth : int) (q : Query.t) : Response.t =
  let ctx =
    {
      Module_api.prog = t.prog;
      depth;
      handle =
        (fun pq ->
          if depth + 1 > t.config.max_premise_depth then Response.bottom_for pq
          else begin
            t.stats.premise_queries <- t.stats.premise_queries + 1;
            let pq =
              if t.config.respect_desired then pq else Query.without_desired pq
            in
            handle_at t (depth + 1) pq
          end);
    }
  in
  let final = ref (Response.bottom_for q) in
  (try
     List.iter
       (fun (m : Module_api.t) ->
         let res = guarded_answer t m ctx q in
         final := Join.join t.config.join_policy !final res;
         if should_bail t !final then raise Stdlib.Exit)
       t.config.modules
   with Stdlib.Exit -> ());
  (* memoize answers computed with (nearly) full premise budget — but not
     one truncated by an expired deadline: a partial join replayed for a
     later query with a fresh budget would poison it *)
  if depth <= 1 && cacheable q && not (deadline_passed t) then
    Hashtbl.replace t.cache q !final;
  !final

(** [handle t q] — Algorithm 1: resolve a client query. *)
let handle (t : t) (q : Query.t) : Response.t =
  t.stats.client_queries <- t.stats.client_queries + 1;
  match t.config.clock with
  | None -> handle_at t 0 q
  | Some clock ->
      let t0 = clock () in
      (match t.config.bailout with
      | Timeout budget -> t.deadline := Some (t0 +. budget)
      | _ -> ());
      let r = handle_at t 0 q in
      t.stats.latencies <- (clock () -. t0) :: t.stats.latencies;
      (* don't leak this query's deadline into the next one *)
      t.deadline := None;
      r

(** Latencies of all client queries so far, in query order. *)
let latencies (t : t) : float list = List.rev t.stats.latencies
