(** The Orchestrator (§3.3, Algorithm 1).

    Coordinates all module interactions: forwards client queries to modules
    in configured order, joins their responses under the configured join
    policy, stops according to the bail-out policy, and routes premise
    queries back through the ensemble (with a recursion budget so factored
    modules cannot ping-pong forever).

    Configurability per the paper: module subset and order, join policy
    (ALL vs CHEAPEST), bail-out policy (definite-and-free, definite-at-any-
    cost, exhaustive), and the desired-result ablation switch.

    Observability (optional, off by default): a {!Scaf_trace.Sink.t}
    receives one provenance tree per sampled client query, and a
    {!Scaf_trace.Metrics.t} registry receives counters and latency
    histograms. Both are strictly observational — with the no-op sink and
    no registry the query path is the plain Algorithm 1. *)

module Sink = Scaf_trace.Sink
module Metrics = Scaf_trace.Metrics

type bailout =
  | Definite_free  (** stop at a maximally precise, assertion-free answer *)
  | Definite_any  (** stop at a maximally precise answer regardless of cost *)
  | Exhaustive  (** always consult every module *)
  | Timeout of float
      (** definite-free, plus a per-client-query budget in [clock] units
          (for clients sensitive to compilation time, §3.3) *)

type config = {
  modules : Module_api.t list;  (** consulted in order *)
  join_policy : Join.policy;
  bailout : bailout;
  max_premise_depth : int;
  respect_desired : bool;
      (** when false, the desired-result parameter is stripped from premise
          queries (the Figure 10 ablation) *)
  clock : (unit -> float) option;  (** for per-query latency statistics *)
  module_budget : float option;
      (** per-module-evaluation latency budget in [clock] units; an answer
          arriving past it is discarded as a fault *)
  breaker_threshold : int;
      (** quarantine a module after this many consecutive faults *)
  trace : Sink.t;
      (** provenance-tree sink; {!Scaf_trace.Sink.noop} disables tracing *)
  metrics : Metrics.t option;  (** metrics registry, if any *)
  epoch : int;
      (** program epoch all cache keys are stamped with; the incremental
          engine rebuilds orchestrators with the bumped epoch after an
          edit, so pre-edit entries (restamped or evicted by
          [Qcache.invalidate]) can never be hit by mistake *)
  depsink : Depsink.t;
      (** dependency-event sink feeding the invalidation-graph collector;
          {!Depsink.noop} (the default) keeps the query path untouched *)
}

let default_config (modules : Module_api.t list) : config =
  {
    modules;
    join_policy = Join.Cheapest;
    bailout = Definite_free;
    max_premise_depth = 4;
    respect_desired = true;
    clock = None;
    module_budget = None;
    breaker_threshold = 3;
    trace = Sink.noop;
    metrics = None;
    epoch = 0;
    depsink = Depsink.noop;
  }

(* Internal mutable counters; exposed to clients only as the immutable
   [stats_snapshot] below. Latencies go through a bounded reservoir, not an
   unbounded list, so million-query sessions stay O(1) per query. *)
type counters = {
  mutable client_queries : int;
  mutable premise_queries : int;
  mutable module_evals : int;
  lat : Reservoir.t;
  mutable module_faults : int;  (** module evaluations that raised *)
  mutable module_overruns : int;  (** evaluations past [module_budget] *)
  mutable quarantine_skips : int;  (** evaluations skipped by the breaker *)
  mutable deadline_expiries : int;
      (** client queries whose armed deadline expired before the consult
          sweep finished *)
}

type stats_snapshot = {
  client_queries : int;
  premise_queries : int;
  module_evals : int;
  module_faults : int;
  module_overruns : int;
  quarantine_skips : int;
  deadline_expiries : int;
  latency_count : int;
  cache : Qcache.Snapshot.t;
}

(** Per-module fault-isolation record (§3.3 collaboration requires that one
    misbehaving module cannot take down the ensemble). *)
type health = {
  mutable faults : int;
  mutable overruns : int;
  mutable consecutive : int;  (** consecutive faults; a success resets it *)
  mutable quarantined : bool;
}

(* Metric handles resolved once at [create], so the hot path never touches
   the registry's name table. *)
type mx = {
  mx_client : Metrics.counter;
  mx_premise : Metrics.counter;
  mx_alias : Metrics.counter;
  mx_modref_instr : Metrics.counter;
  mx_modref_loc : Metrics.counter;
  mx_bailouts : Metrics.counter;
  mx_hit : Metrics.counter;
  mx_canonical : Metrics.counter;
  mx_miss : Metrics.counter;
  mx_uncacheable : Metrics.counter;
  mx_budget_denied : Metrics.counter;
  mx_premise_depth : Metrics.histogram;
  mx_query_latency : Metrics.histogram;
  mx_module_lat : (string, Metrics.histogram) Hashtbl.t;
      (** read-only after [create]; safe to share across domains *)
}

let bind_metrics (config : config) : mx option =
  match config.metrics with
  | None -> None
  | Some r ->
      let c = Metrics.counter r and h = Metrics.histogram r in
      Some
        {
          mx_client = c "queries.client";
          mx_premise = c "queries.premise";
          mx_alias = c "queries.class.alias";
          mx_modref_instr = c "queries.class.modref_instr";
          mx_modref_loc = c "queries.class.modref_loc";
          mx_bailouts = c "orchestrator.bailouts";
          mx_hit = c "cache.hit";
          mx_canonical = c "cache.canonical_hit";
          mx_miss = c "cache.miss";
          mx_uncacheable = c "cache.uncacheable";
          mx_budget_denied = c "premise.budget_denied";
          mx_premise_depth = h "premise.depth";
          mx_query_latency = h "query.latency";
          mx_module_lat =
            (let tbl = Hashtbl.create 16 in
             List.iter
               (fun (m : Module_api.t) ->
                 Hashtbl.replace tbl m.Module_api.name
                   (h ("module.latency." ^ m.Module_api.name)))
               config.modules;
             tbl);
        }

type t = {
  config : config;
  prog : Scaf_cfg.Progctx.t;
  c : counters;
  cache : Qcache.t;
      (** canonicalizing memo for repeated (premise) queries; queries
          carrying a control-flow view are never keyed (views are closures,
          enforced by [Qcache.key_of]) *)
  local : Qcache.Local.t;
      (** this orchestrator's private L1 over [cache]: unsynchronized
          lookups, batched publication into the shared store. An
          orchestrator is single-worker by construction (one per domain or
          thread), which is exactly the [Local] ownership contract. *)
  deadline : float option ref;
      (** per-client-query deadline when the bail-out policy is [Timeout] *)
  health : (string, health) Hashtbl.t;  (** keyed by module name *)
  mx : mx option;  (** pre-bound metric handles, when [config.metrics] *)
}

let create ?cache ?l1_capacity ?l1_flush_every (prog : Scaf_cfg.Progctx.t)
    (config : config) : t =
  let cache = match cache with Some c -> c | None -> Qcache.create () in
  {
    config;
    prog;
    c =
      {
        client_queries = 0;
        premise_queries = 0;
        module_evals = 0;
        lat = Reservoir.create ();
        module_faults = 0;
        module_overruns = 0;
        quarantine_skips = 0;
        deadline_expiries = 0;
      };
    cache;
    local =
      Qcache.Local.create ?capacity:l1_capacity ?flush_every:l1_flush_every
        cache;
    deadline = ref None;
    health = Hashtbl.create 8;
    mx = bind_metrics config;
  }

let config (t : t) : config = t.config
let prog (t : t) : Scaf_cfg.Progctx.t = t.prog
let cache (t : t) : Qcache.t = t.cache
let flush_cache (t : t) : unit = Qcache.Local.flush t.local

let stats (t : t) : stats_snapshot =
  {
    client_queries = t.c.client_queries;
    premise_queries = t.c.premise_queries;
    module_evals = t.c.module_evals;
    module_faults = t.c.module_faults;
    module_overruns = t.c.module_overruns;
    quarantine_skips = t.c.quarantine_skips;
    deadline_expiries = t.c.deadline_expiries;
    latency_count = Reservoir.count t.c.lat;
    cache = Qcache.snapshot t.cache;
  }

let health_of (t : t) (name : string) : health =
  match Hashtbl.find_opt t.health name with
  | Some h -> h
  | None ->
      let h = { faults = 0; overruns = 0; consecutive = 0; quarantined = false } in
      Hashtbl.replace t.health name h;
      h

(** Names of the modules currently quarantined by the circuit breaker. *)
let quarantined (t : t) : string list =
  Hashtbl.fold (fun n h acc -> if h.quarantined then n :: acc else acc) t.health []
    |> List.sort compare

let deadline_passed (t : t) : bool =
  match (!(t.deadline), t.config.clock) with
  | Some d, Some clock -> clock () >= d
  | _ -> false

let deadline_pending (t : t) : bool = !(t.deadline) <> None

(* An armed per-query deadline trumps every bail-out policy: once it has
   passed, the current join is the best answer this query will get.
   [t.deadline] is only armed by a [Timeout] policy or an explicit
   [handle ~deadline], so the plain policies are unchanged otherwise. *)
let should_bail (t : t) (r : Response.t) : bool =
  deadline_passed t
  ||
  match t.config.bailout with
  | Definite_free -> Response.is_definite_free r
  | Definite_any -> Aresult.is_definite r.Response.result
  | Exhaustive -> false
  | Timeout _ -> Response.is_definite_free r

let class_counter (m : mx) (q : Query.t) : Metrics.counter =
  match Module_api.qclass_of_query q with
  | Module_api.CAlias -> m.mx_alias
  | Module_api.CModref_instr -> m.mx_modref_instr
  | Module_api.CModref_loc -> m.mx_modref_loc

let render_query (q : Query.t) : string = Fmt.str "%a" Query.pp q
let render_result (r : Response.t) : string =
  Fmt.str "%a" Aresult.pp r.Response.result

(* Fill a node's summary fields from its final (joined) response and close
   its span. *)
let seal_node (sink : Sink.t) (n : Sink.node) (r : Response.t) : unit =
  n.Sink.result <- render_result r;
  n.Sink.cost <- Response.Options.cheapest_cost r.Response.options;
  n.Sink.n_options <- Response.Options.count r.Response.options;
  n.Sink.assertions <-
    (match Response.Options.cheapest r.Response.options with
    | Some o -> List.map (fun a -> Fmt.str "%a" Assertion.pp a) o
    | None -> []);
  n.Sink.provenance <- Response.Sset.elements r.Response.provenance;
  Sink.finish_node sink n

(** [guarded_answer t m ctx q] — fault-isolated module evaluation
    (Algorithm 1, hardened): an exception or a [module_budget] overrun is
    recorded against the module and converted into the conservative
    [no_answer]; [breaker_threshold] consecutive faults quarantine the
    module for the rest of the session. A quarantined or faulting module
    can therefore never abort a client query. When tracing, the outcome is
    annotated on [consult]. *)
let guarded_answer ?consult (t : t) (m : Module_api.t) (ctx : Module_api.Ctx.t)
    (q : Query.t) : Response.t =
  let note (s : string) =
    match consult with
    | Some (c : Sink.consult) -> c.Sink.c_note <- s
    | None -> ()
  in
  let name = m.Module_api.name in
  let h = health_of t name in
  if h.quarantined then begin
    t.c.quarantine_skips <- t.c.quarantine_skips + 1;
    note "quarantined";
    Module_api.no_answer q
  end
  else begin
    t.c.module_evals <- t.c.module_evals + 1;
    let fault ~overrun =
      if overrun then begin
        h.overruns <- h.overruns + 1;
        t.c.module_overruns <- t.c.module_overruns + 1;
        note "overrun"
      end
      else begin
        h.faults <- h.faults + 1;
        t.c.module_faults <- t.c.module_faults + 1;
        note "fault"
      end;
      h.consecutive <- h.consecutive + 1;
      if h.consecutive >= t.config.breaker_threshold then h.quarantined <- true;
      Module_api.no_answer q
    in
    let mlat =
      match t.mx with
      | Some m -> Hashtbl.find_opt m.mx_module_lat name
      | None -> None
    in
    (* only sample the clock when a budget or a latency histogram needs it,
       so fake-clock latency accounting is unchanged otherwise *)
    let t0 =
      match t.config.clock with
      | Some clock when t.config.module_budget <> None || mlat <> None ->
          Some (clock ())
      | _ -> None
    in
    match m.Module_api.answer ctx q with
    | r -> (
        let elapsed =
          match (t0, t.config.clock) with
          | Some start, Some clock -> Some (clock () -. start)
          | _ -> None
        in
        (match (mlat, elapsed) with
        | Some hist, Some e -> Metrics.observe hist e
        | _ -> ());
        match (t.config.module_budget, elapsed) with
        | Some budget, Some e when e > budget -> fault ~overrun:true
        | _ ->
            h.consecutive <- 0;
            r)
    | exception _ -> fault ~overrun:false
  end

(* The context handed to modules answering [q] at [depth]. Scope fields
   come from the incoming query itself (its desired result, loop scope and
   speculative control-flow view); [dest], when tracing, is where resolved
   premise trees attach. *)
let rec premise_ctx (t : t) (depth : int) (dest : (Sink.node -> unit) option)
    (q : Query.t) : Module_api.Ctx.t =
  let desired, loop, ctrl_view =
    match q with
    | Query.Alias a -> (a.Query.adr, a.Query.aloop, None)
    | Query.Modref m -> (None, m.Query.mloop, m.Query.mctrl)
  in
  let ask pq =
    if depth + 1 > t.config.max_premise_depth then begin
      (match t.mx with
      | Some m -> Metrics.incr m.mx_budget_denied
      | None -> ());
      let r = Response.bottom_for pq in
      (match dest with
      | Some attach ->
          (* the denial is part of the derivation: record a leaf *)
          let sink = t.config.trace in
          let n =
            Sink.node sink ~query:(render_query pq)
              ~qclass:
                (Module_api.qclass_name (Module_api.qclass_of_query pq))
              ~depth:(depth + 1)
          in
          n.Sink.cache <- Sink.Budget_denied;
          seal_node sink n r;
          attach n
      | None -> ());
      r
    end
    else begin
      t.c.premise_queries <- t.c.premise_queries + 1;
      (match t.mx with
      | Some m ->
          Metrics.incr m.mx_premise;
          Metrics.observe m.mx_premise_depth (float_of_int (depth + 1))
      | None -> ());
      let pq =
        if t.config.respect_desired then pq else Query.without_desired pq
      in
      handle_at t (depth + 1) dest pq
    end
  in
  Module_api.Ctx.make ~depth ?desired ?loop ?ctrl_view ~sink:t.config.trace
    ~ask t.prog

and handle_at (t : t) (depth : int) (dest : (Sink.node -> unit) option)
    (q : Query.t) : Response.t =
  (match t.mx with
  | Some m -> Metrics.incr (class_counter m q)
  | None -> ());
  match dest with
  | None -> (
      (* untraced fast path: Algorithm 1 with memoization, nothing else *)
      match Qcache.key_of ~epoch:t.config.epoch q with
      | None ->
          (match t.mx with
          | Some m -> Metrics.incr m.mx_uncacheable
          | None -> ());
          handle_uncached t depth None None q
      | Some k -> (
          match Qcache.Local.find t.local k with
          | Some r ->
              (match t.mx with
              | Some m ->
                  Metrics.incr
                    (if Qcache.mirrored k then m.mx_canonical else m.mx_hit)
              | None -> ());
              let ds = t.config.depsink in
              if Depsink.enabled ds then
                ds.Depsink.emit (Depsink.Hit { depth; q });
              r
          | None ->
              (match t.mx with
              | Some m -> Metrics.incr m.mx_miss
              | None -> ());
              handle_uncached t depth (Some k) None q))
  | Some attach ->
      let sink = t.config.trace in
      let n =
        Sink.node sink ~query:(render_query q)
          ~qclass:(Module_api.qclass_name (Module_api.qclass_of_query q))
          ~depth
      in
      let finish status r =
        n.Sink.cache <- status;
        seal_node sink n r;
        attach n;
        r
      in
      (match Qcache.key_of ~epoch:t.config.epoch q with
      | None ->
          (match t.mx with
          | Some m -> Metrics.incr m.mx_uncacheable
          | None -> ());
          finish Sink.Uncacheable (handle_uncached t depth None (Some n) q)
      | Some k -> (
          match Qcache.Local.find t.local k with
          | Some r ->
              let mirrored = Qcache.mirrored k in
              (match t.mx with
              | Some m ->
                  Metrics.incr (if mirrored then m.mx_canonical else m.mx_hit)
              | None -> ());
              let ds = t.config.depsink in
              if Depsink.enabled ds then
                ds.Depsink.emit (Depsink.Hit { depth; q });
              finish
                (if mirrored then Sink.Cache_canonical_hit else Sink.Cache_hit)
                r
          | None ->
              (match t.mx with
              | Some m -> Metrics.incr m.mx_miss
              | None -> ());
              finish Sink.Cache_miss
                (handle_uncached t depth (Some k) (Some n) q)))

and handle_uncached (t : t) (depth : int) (key : Qcache.key option)
    (node : Sink.node option) (q : Query.t) : Response.t =
  let ds = t.config.depsink in
  let deps = Depsink.enabled ds in
  if deps then ds.Depsink.emit (Depsink.Enter { depth; q });
  let final = ref (Response.bottom_for q) in
  (match node with
  | None ->
      (* one shared context for the whole consult sweep, as always *)
      let ctx = premise_ctx t depth None q in
      (try
         List.iter
           (fun (m : Module_api.t) ->
             if deps then
               ds.Depsink.emit (Depsink.Consult { name = m.Module_api.name });
             let res = guarded_answer t m ctx q in
             final := Join.join t.config.join_policy !final res;
             if should_bail t !final then raise Stdlib.Exit)
           t.config.modules
       with Stdlib.Exit -> ())
  | Some n ->
      let sink = t.config.trace in
      let total = List.length t.config.modules in
      n.Sink.modules_total <- total;
      let consulted = ref 0 in
      let bailed = ref false in
      (try
         List.iter
           (fun (m : Module_api.t) ->
             incr consulted;
             if deps then
               ds.Depsink.emit (Depsink.Consult { name = m.Module_api.name });
             let c = Sink.consult sink n m.Module_api.name in
             (* per-consult context so this module's premises attach to
                its own consult record *)
             let ctx =
               premise_ctx t depth
                 (Some (fun pn -> Sink.add_premise c pn))
                 q
             in
             let before = !final in
             let res = guarded_answer ~consult:c t m ctx q in
             c.Sink.c_result <- render_result res;
             c.Sink.c_cost <-
               Response.Options.cheapest_cost res.Response.options;
             final := Join.join t.config.join_policy before res;
             (* structural check only on the All policy, where the join
                rebuilds an equal record even from a no-op merge *)
             if (not (before == !final)) && before <> !final then
               c.Sink.c_improved <- true;
             Sink.finish_consult sink c;
             if should_bail t !final then begin
               bailed := true;
               raise Stdlib.Exit
             end)
           t.config.modules
       with Stdlib.Exit -> ());
      if !bailed then begin
        n.Sink.bailed_after <- Some !consulted;
        match t.mx with
        | Some m -> Metrics.incr m.mx_bailouts
        | None -> ()
      end);
  (* memoize answers computed with (nearly) full premise budget — but not
     one truncated by an expired deadline: a partial join replayed for a
     later query with a fresh budget would poison it *)
  let memoized =
    match key with
    | Some k when depth <= 1 && not (deadline_passed t) ->
        Qcache.Local.add t.local k !final;
        true
    | _ -> false
  in
  if deps then ds.Depsink.emit (Depsink.Exit { q; memoized });
  !final

(* Resolve one client query with an optional per-request absolute deadline
   (in [clock] units) armed alongside any [Timeout] policy budget; returns
   the response and whether the armed deadline expired while answering. *)
let handle_core (t : t) ~(deadline : float option) (q : Query.t) :
    Response.t * bool =
  t.c.client_queries <- t.c.client_queries + 1;
  (match t.mx with Some m -> Metrics.incr m.mx_client | None -> ());
  let sink = t.config.trace in
  let dest =
    if Sink.enabled sink && Sink.sample sink then
      Some (fun n -> Sink.add_root sink n)
    else None
  in
  match t.config.clock with
  | None ->
      if deadline <> None then
        invalid_arg "Orchestrator.handle: a deadline needs a clock";
      (handle_at t 0 dest q, false)
  | Some clock ->
      let t0 = clock () in
      let policy_deadline =
        match t.config.bailout with
        | Timeout budget -> Some (t0 +. budget)
        | _ -> None
      in
      (t.deadline :=
         match (policy_deadline, deadline) with
         | Some a, Some b -> Some (Float.min a b)
         | Some a, None -> Some a
         | None, d -> d);
      let r = handle_at t 0 dest q in
      let expired = deadline_passed t in
      if expired then t.c.deadline_expiries <- t.c.deadline_expiries + 1;
      let dt = clock () -. t0 in
      Reservoir.add t.c.lat dt;
      (match t.mx with
      | Some m -> Metrics.observe m.mx_query_latency dt
      | None -> ());
      (* don't leak this query's deadline into the next one *)
      t.deadline := None;
      (r, expired)

(** [handle t q] — Algorithm 1: resolve a client query. [deadline], when
    given, is an absolute point in [clock] units past which the consult
    sweep stops at the best joined answer so far (the analysis-as-a-service
    path: the daemon propagates each request's deadline down here).
    Requires a [clock]; answers truncated by an expired deadline are never
    memoized, so a degraded answer cannot poison later full-budget ones. *)
let handle ?deadline (t : t) (q : Query.t) : Response.t =
  fst (handle_core t ~deadline q)

(** [handle_deadlined t ~deadline q] — like [handle ~deadline] but also
    reports whether the deadline expired while answering (i.e. the response
    may be a truncated, conservative join — the daemon tags such answers as
    degraded). *)
let handle_deadlined (t : t) ~(deadline : float) (q : Query.t) :
    Response.t * bool =
  handle_core t ~deadline:(Some deadline) q

(** [ask_many t qs] — the batch entry point: the i-th response answers the
    i-th query. The domain-parallel fan-out (several orchestrators over a
    shared cache) lives in [Scaf_pdg.Schemes]; this sequential form is its
    [jobs=1] reference semantics. *)
let ask_many (t : t) (qs : Query.t list) : Response.t list =
  List.map (handle t) qs

(** [consult_all t q] — every module's *individual* answer to [q], in
    configuration order, bypassing the join and the bail-out policy (and
    never memoizing the per-module answers). Premise queries a factored
    module raises still flow through the whole ensemble exactly as under
    [handle], so each response is what that module contributes given full
    collaboration — the per-module provenance the audit layer's
    contradiction detector and oracle grade against. Module evaluations are
    guarded (fault isolation and the circuit breaker apply) but no
    [Timeout] deadline is armed. *)
let consult_all (t : t) (q : Query.t) : (string * Response.t) list =
  let ctx = premise_ctx t 0 None q in
  List.map
    (fun (m : Module_api.t) -> (m.Module_api.name, guarded_answer t m ctx q))
    t.config.modules

(** Retained client-query latency sample (bounded reservoir). *)
let latencies (t : t) : float list = Reservoir.samples t.c.lat

let latency_count (t : t) : int = Reservoir.count t.c.lat

let latency_percentile (t : t) (p : float) : float =
  Reservoir.percentile t.c.lat p
