(** The Orchestrator (§3.3, Algorithm 1).

    Coordinates all module interactions: forwards client queries to modules
    in configured order, joins their responses under the configured join
    policy, stops according to the bail-out policy, and routes premise
    queries back through the ensemble (with a recursion budget so factored
    modules cannot ping-pong forever).

    Configurability per the paper: module subset and order, join policy
    (ALL vs CHEAPEST), bail-out policy (definite-and-free, definite-at-any-
    cost, exhaustive), and the desired-result ablation switch. *)

type bailout =
  | Definite_free  (** stop at a maximally precise, assertion-free answer *)
  | Definite_any  (** stop at a maximally precise answer regardless of cost *)
  | Exhaustive  (** always consult every module *)
  | Timeout of float
      (** definite-free, plus a per-client-query budget in [clock] units
          (for clients sensitive to compilation time, §3.3) *)

type config = {
  modules : Module_api.t list;  (** consulted in order *)
  join_policy : Join.policy;
  bailout : bailout;
  max_premise_depth : int;
  respect_desired : bool;
      (** when false, the desired-result parameter is stripped from premise
          queries (the Figure 10 ablation) *)
  clock : (unit -> float) option;  (** for per-query latency statistics *)
  module_budget : float option;
      (** per-module-evaluation latency budget in [clock] units; an answer
          arriving past it is discarded as a fault *)
  breaker_threshold : int;
      (** quarantine a module after this many consecutive faults *)
}

let default_config (modules : Module_api.t list) : config =
  {
    modules;
    join_policy = Join.Cheapest;
    bailout = Definite_free;
    max_premise_depth = 4;
    respect_desired = true;
    clock = None;
    module_budget = None;
    breaker_threshold = 3;
  }

(* Internal mutable counters; exposed to clients only as the immutable
   [stats_snapshot] below. Latencies go through a bounded reservoir, not an
   unbounded list, so million-query sessions stay O(1) per query. *)
type counters = {
  mutable client_queries : int;
  mutable premise_queries : int;
  mutable module_evals : int;
  lat : Reservoir.t;
  mutable module_faults : int;  (** module evaluations that raised *)
  mutable module_overruns : int;  (** evaluations past [module_budget] *)
  mutable quarantine_skips : int;  (** evaluations skipped by the breaker *)
}

type stats_snapshot = {
  client_queries : int;
  premise_queries : int;
  module_evals : int;
  module_faults : int;
  module_overruns : int;
  quarantine_skips : int;
  latency_count : int;
  cache : Qcache.stats;
}

(** Per-module fault-isolation record (§3.3 collaboration requires that one
    misbehaving module cannot take down the ensemble). *)
type health = {
  mutable faults : int;
  mutable overruns : int;
  mutable consecutive : int;  (** consecutive faults; a success resets it *)
  mutable quarantined : bool;
}

type t = {
  config : config;
  prog : Scaf_cfg.Progctx.t;
  c : counters;
  cache : Qcache.t;
      (** canonicalizing memo for repeated (premise) queries; queries
          carrying a control-flow view are never keyed (views are closures,
          enforced by [Qcache.key_of]) *)
  deadline : float option ref;
      (** per-client-query deadline when the bail-out policy is [Timeout] *)
  health : (string, health) Hashtbl.t;  (** keyed by module name *)
}

let create ?cache (prog : Scaf_cfg.Progctx.t) (config : config) : t =
  {
    config;
    prog;
    c =
      {
        client_queries = 0;
        premise_queries = 0;
        module_evals = 0;
        lat = Reservoir.create ();
        module_faults = 0;
        module_overruns = 0;
        quarantine_skips = 0;
      };
    cache = (match cache with Some c -> c | None -> Qcache.create ());
    deadline = ref None;
    health = Hashtbl.create 8;
  }

let config (t : t) : config = t.config
let prog (t : t) : Scaf_cfg.Progctx.t = t.prog
let cache (t : t) : Qcache.t = t.cache

let stats (t : t) : stats_snapshot =
  {
    client_queries = t.c.client_queries;
    premise_queries = t.c.premise_queries;
    module_evals = t.c.module_evals;
    module_faults = t.c.module_faults;
    module_overruns = t.c.module_overruns;
    quarantine_skips = t.c.quarantine_skips;
    latency_count = Reservoir.count t.c.lat;
    cache = Qcache.stats t.cache;
  }

let health_of (t : t) (name : string) : health =
  match Hashtbl.find_opt t.health name with
  | Some h -> h
  | None ->
      let h = { faults = 0; overruns = 0; consecutive = 0; quarantined = false } in
      Hashtbl.replace t.health name h;
      h

(** Names of the modules currently quarantined by the circuit breaker. *)
let quarantined (t : t) : string list =
  Hashtbl.fold (fun n h acc -> if h.quarantined then n :: acc else acc) t.health []
    |> List.sort compare

let deadline_passed (t : t) : bool =
  match (!(t.deadline), t.config.clock) with
  | Some d, Some clock -> clock () >= d
  | _ -> false

let deadline_pending (t : t) : bool = !(t.deadline) <> None

let should_bail (t : t) (r : Response.t) : bool =
  match t.config.bailout with
  | Definite_free -> Response.is_definite_free r
  | Definite_any -> Aresult.is_definite r.Response.result
  | Exhaustive -> false
  | Timeout _ -> Response.is_definite_free r || deadline_passed t

(** [guarded_answer t m ctx q] — fault-isolated module evaluation
    (Algorithm 1, hardened): an exception or a [module_budget] overrun is
    recorded against the module and converted into the conservative
    [no_answer]; [breaker_threshold] consecutive faults quarantine the
    module for the rest of the session. A quarantined or faulting module
    can therefore never abort a client query. *)
let guarded_answer (t : t) (m : Module_api.t) (ctx : Module_api.ctx)
    (q : Query.t) : Response.t =
  let name = m.Module_api.name in
  let h = health_of t name in
  if h.quarantined then begin
    t.c.quarantine_skips <- t.c.quarantine_skips + 1;
    Module_api.no_answer q
  end
  else begin
    t.c.module_evals <- t.c.module_evals + 1;
    let fault ~overrun =
      if overrun then begin
        h.overruns <- h.overruns + 1;
        t.c.module_overruns <- t.c.module_overruns + 1
      end
      else begin
        h.faults <- h.faults + 1;
        t.c.module_faults <- t.c.module_faults + 1
      end;
      h.consecutive <- h.consecutive + 1;
      if h.consecutive >= t.config.breaker_threshold then h.quarantined <- true;
      Module_api.no_answer q
    in
    (* only sample the clock when a budget is configured, so fake-clock
       latency accounting is unchanged otherwise *)
    let t0 =
      match (t.config.module_budget, t.config.clock) with
      | Some _, Some clock -> Some (clock ())
      | _ -> None
    in
    match m.Module_api.answer ctx q with
    | r -> (
        match (t0, t.config.module_budget, t.config.clock) with
        | Some start, Some budget, Some clock when clock () -. start > budget ->
            fault ~overrun:true
        | _ ->
            h.consecutive <- 0;
            r)
    | exception _ -> fault ~overrun:false
  end

let rec premise_ctx (t : t) (depth : int) : Module_api.ctx =
  {
    Module_api.prog = t.prog;
    depth;
    handle =
      (fun pq ->
        if depth + 1 > t.config.max_premise_depth then Response.bottom_for pq
        else begin
          t.c.premise_queries <- t.c.premise_queries + 1;
          let pq =
            if t.config.respect_desired then pq else Query.without_desired pq
          in
          handle_at t (depth + 1) pq
        end);
  }

and handle_at (t : t) (depth : int) (q : Query.t) : Response.t =
  match Qcache.key_of q with
  | None -> handle_uncached t depth None q
  | Some k -> (
      match Qcache.find t.cache k with
      | Some r -> r
      | None -> handle_uncached t depth (Some k) q)

and handle_uncached (t : t) (depth : int) (key : Qcache.key option)
    (q : Query.t) : Response.t =
  let ctx = premise_ctx t depth in
  let final = ref (Response.bottom_for q) in
  (try
     List.iter
       (fun (m : Module_api.t) ->
         let res = guarded_answer t m ctx q in
         final := Join.join t.config.join_policy !final res;
         if should_bail t !final then raise Stdlib.Exit)
       t.config.modules
   with Stdlib.Exit -> ());
  (* memoize answers computed with (nearly) full premise budget — but not
     one truncated by an expired deadline: a partial join replayed for a
     later query with a fresh budget would poison it *)
  (match key with
  | Some k when depth <= 1 && not (deadline_passed t) ->
      Qcache.add t.cache k !final
  | _ -> ());
  !final

(** [handle t q] — Algorithm 1: resolve a client query. *)
let handle (t : t) (q : Query.t) : Response.t =
  t.c.client_queries <- t.c.client_queries + 1;
  match t.config.clock with
  | None -> handle_at t 0 q
  | Some clock ->
      let t0 = clock () in
      (match t.config.bailout with
      | Timeout budget -> t.deadline := Some (t0 +. budget)
      | _ -> ());
      let r = handle_at t 0 q in
      Reservoir.add t.c.lat (clock () -. t0);
      (* don't leak this query's deadline into the next one *)
      t.deadline := None;
      r

(** [ask_many t qs] — the batch entry point: the i-th response answers the
    i-th query. The domain-parallel fan-out (several orchestrators over a
    shared cache) lives in [Scaf_pdg.Schemes]; this sequential form is its
    [jobs=1] reference semantics. *)
let ask_many (t : t) (qs : Query.t list) : Response.t list =
  List.map (handle t) qs

(** [consult_all t q] — every module's *individual* answer to [q], in
    configuration order, bypassing the join and the bail-out policy (and
    never memoizing the per-module answers). Premise queries a factored
    module raises still flow through the whole ensemble exactly as under
    [handle], so each response is what that module contributes given full
    collaboration — the per-module provenance the audit layer's
    contradiction detector and oracle grade against. Module evaluations are
    guarded (fault isolation and the circuit breaker apply) but no
    [Timeout] deadline is armed. *)
let consult_all (t : t) (q : Query.t) : (string * Response.t) list =
  let ctx = premise_ctx t 0 in
  List.map
    (fun (m : Module_api.t) -> (m.Module_api.name, guarded_answer t m ctx q))
    t.config.modules

(** Retained client-query latency sample (bounded reservoir). *)
let latencies (t : t) : float list = Reservoir.samples t.c.lat

let latency_count (t : t) : int = Reservoir.count t.c.lat

let latency_percentile (t : t) (p : float) : float =
  Reservoir.percentile t.c.lat p
