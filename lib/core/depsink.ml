(** The always-on lightweight dependency sink.

    A stripped-down cousin of the [Scaf_trace] provenance sink: where the
    trace layer builds human-readable derivation trees for sampled queries,
    this sink streams the four events an invalidation-graph collector needs
    for {e every} query — cheap enough to leave on permanently (the no-op
    sink is four inlined [ignore]s).

    The orchestrator emits, per memoizable computation:

    - [Enter] when a consult sweep starts for a query that missed (or could
      not use) the cache;
    - [Consult] for each module actually evaluated during that sweep;
    - [Hit] when a (premise or client) query is answered from the cache —
      the collector records a premise edge from the enclosing computation
      to the hit query's node;
    - [Exit] when the sweep finishes, with [memoized] telling the collector
      whether the answer was stored (and hence needs its own invalidation
      node) or folded into the enclosing computation's read-set.

    Events of one orchestrator are strictly nested (orchestrators are
    single-threaded); a collector keeps a frame stack per orchestrator and
    publishes into a shared graph. *)

type event =
  | Enter of { depth : int; q : Query.t }
  | Consult of { name : string }
  | Hit of { depth : int; q : Query.t }
  | Exit of { q : Query.t; memoized : bool }

type t = { emit : event -> unit }

let noop : t = { emit = ignore }

(** Is this the no-op sink? The orchestrator's fast path skips event
    construction entirely when it is. *)
let enabled (t : t) : bool = not (t == noop)
