(** The analysis-module interface.

    A module — memory analysis or speculation — answers queries through
    [answer]. *Factored* modules may formulate premise queries from an
    incoming query and submit them through [Ctx.ask]; the Orchestrator
    routes premises through the whole ensemble, so a module never knows who
    resolves them (§3.1). *)

(** The evaluation context handed to every module: one extensible,
    abstract record instead of accreted positional parameters. Modules
    read it through accessors only, so growing a new capability (the trace
    sink was the first) changes no module signature. Only the Orchestrator
    (or a test harness) builds one, via {!Ctx.make}. *)
module Ctx : sig
  type t

  (** [make ~ask prog] — a context whose premise oracle is [ask]. All
      capability fields default to absent; the Orchestrator fills them
      from the incoming query and its configuration. *)
  val make :
    ?depth:int ->
    ?desired:Query.desired ->
    ?loop:string ->
    ?ctrl_view:Scaf_cfg.Ctrl.t ->
    ?sink:Scaf_trace.Sink.t ->
    ask:(Query.t -> Response.t) ->
    Scaf_cfg.Progctx.t ->
    t

  (** The program under analysis. *)
  val prog : t -> Scaf_cfg.Progctx.t

  (** [ask t pq] — submit premise query [pq] back to the Orchestrator,
      which routes it through the whole ensemble. *)
  val ask : t -> Query.t -> Response.t

  (** Premise nesting depth of the incoming query (0 = client query). *)
  val depth : t -> int

  (** The incoming query's desired-result parameter, if any. *)
  val desired : t -> Query.desired option

  (** The incoming query's loop scope, if any. *)
  val loop : t -> string option

  (** The trace sink ({!Scaf_trace.Sink.noop} unless tracing is on). *)
  val sink : t -> Scaf_trace.Sink.t

  (** The control-flow view to reason under: the speculative
      dominator/post-dominator trees carried by the incoming query when
      present, the function's static ones otherwise. *)
  val ctrl : t -> fname:string -> Scaf_cfg.Ctrl.t option

  (** [with_ask ask t] — [t] with the premise oracle replaced. *)
  val with_ask : (Query.t -> Response.t) -> t -> t
end

type kind = Memory | Speculation

(** Query-language classes, the granularity of capability declarations and
    of the audit layer's query-plan lint. *)
type qclass = CAlias | CModref_instr | CModref_loc

val all_qclasses : qclass list
val qclass_name : qclass -> string
val qclass_of_query : Query.t -> qclass

(** How far beyond the queried instructions' own function a module's
    answers may depend on program text. The incremental engine's coarse
    invalidation fallback: [Reach_local] answers die only when the query's
    own function is edited, [Reach_symbols] when any value-flow-connected
    function or global is, [Reach_global] (the sound default) on any edit. *)
type reach = Reach_local | Reach_symbols | Reach_global

(** Declared capabilities: the query classes a module may improve
    ([answers]), the premise classes it may submit ([emits]), the program
    text its answers may depend on ([reach]) and whether they read profile
    data ([uses_profile]). Declarative only — consulted by the audit lint
    and the incremental engine's invalidation pass, never enforced by the
    Orchestrator. Over-declaring reach merely over-invalidates;
    under-declaring is unsound. *)
type caps = {
  answers : qclass list;
  emits : qclass list;
  reach : reach;
  uses_profile : bool;
}

(** Conservative default: answers everything; emits everything if
    [factored], nothing otherwise; [Reach_global] and profile-dependent
    (so unannotated modules are invalidated on every edit). *)
val default_caps : factored:bool -> caps

type t = {
  name : string;
  kind : kind;
  factored : bool;  (** does this module generate premise queries? *)
  caps : caps;
  answer : Ctx.t -> Query.t -> Response.t;
}

(** "I cannot improve on the conservative answer." *)
val no_answer : Query.t -> Response.t

(** Build a module; every non-bottom answer automatically carries the
    module's name in its provenance. [caps] defaults to
    [default_caps ~factored]. *)
val make :
  ?caps:caps ->
  name:string ->
  kind:kind ->
  factored:bool ->
  (Ctx.t -> Query.t -> Response.t) ->
  t

(** [with_caps caps m] — [m] with its capability declaration replaced. *)
val with_caps : caps -> t -> t
