(** The analysis-module interface.

    A module — memory analysis or speculation — answers queries through
    [answer]. *Factored* modules may formulate premise queries from an
    incoming query and submit them through [ctx.handle]; the Orchestrator
    routes premises through the whole ensemble, so a module never knows who
    resolves them (§3.1). *)

type ctx = {
  prog : Scaf_cfg.Progctx.t;
  handle : Query.t -> Response.t;
      (** submit a premise query back to the Orchestrator *)
  depth : int;  (** premise nesting depth of the incoming query *)
}

type kind = Memory | Speculation

(** Query-language classes, the granularity of capability declarations and
    of the audit layer's query-plan lint. *)
type qclass = CAlias | CModref_instr | CModref_loc

val all_qclasses : qclass list
val qclass_name : qclass -> string
val qclass_of_query : Query.t -> qclass

(** Declared capabilities: the query classes a module may improve
    ([answers]) and the premise classes it may submit ([emits]).
    Declarative only — consulted by the audit lint, never enforced by the
    Orchestrator. *)
type caps = { answers : qclass list; emits : qclass list }

(** Conservative default: answers everything; emits everything if
    [factored], nothing otherwise. *)
val default_caps : factored:bool -> caps

type t = {
  name : string;
  kind : kind;
  factored : bool;  (** does this module generate premise queries? *)
  caps : caps;
  answer : ctx -> Query.t -> Response.t;
}

(** "I cannot improve on the conservative answer." *)
val no_answer : Query.t -> Response.t

(** Build a module; every non-bottom answer automatically carries the
    module's name in its provenance. [caps] defaults to
    [default_caps ~factored]. *)
val make :
  ?caps:caps ->
  name:string ->
  kind:kind ->
  factored:bool ->
  (ctx -> Query.t -> Response.t) ->
  t

(** [with_caps caps m] — [m] with its capability declaration replaced. *)
val with_caps : caps -> t -> t
