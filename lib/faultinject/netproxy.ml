(** A byte-level network chaos proxy.

    Sits between a client and the SCAF query daemon and mangles the byte
    stream the way real networks do — added latency, bandwidth caps,
    writes split into tiny pieces, duplicated chunks, mid-frame
    truncation, hard RST — without either endpoint cooperating. The
    daemon's transport hardening (frame budgets, write budgets,
    heartbeats, torn-frame rejection) is exactly the code under test, so
    the proxy deliberately operates {e below} the framing layer: it
    forwards opaque bytes and never parses a frame.

    Topology: one listener, one upstream. Each accepted connection gets
    its own upstream connection and two pump threads (client→server and
    server→client); faults apply per direction ({!faults.dir}). A
    terminal fault (truncate, reset) kills both directions at once, which
    is what a dropped route or middlebox RST looks like from the ends.

    The proxy speaks both transports on both sides ({!Addr}): listen on a
    Unix path and forward to TCP, or any other combination. *)

open Scaf_server

type faults = {
  delay : float;  (** seconds added before forwarding each chunk *)
  chunk : int option;  (** split forwards into at most this many bytes *)
  throttle_bps : int option;  (** cap forwarded bytes per second *)
  truncate_after : int option;
      (** forward this many bytes, then close both ends mid-stream *)
  reset_after : int option;
      (** forward this many bytes, then RST both ends *)
  duplicate_after : int option;
      (** duplicate the chunk that crosses this byte offset *)
  dir : [ `C2s | `S2c | `Both ];  (** which direction the faults hit *)
}

let no_faults : faults =
  {
    delay = 0.0;
    chunk = None;
    throttle_bps = None;
    truncate_after = None;
    reset_after = None;
    duplicate_after = None;
    dir = `Both;
  }

type conn = { c_fd : Unix.file_descr; s_fd : Unix.file_descr }

type t = {
  listen_fd : Unix.file_descr;
  laddr : Addr.t;  (** resolved listen address (ephemeral port filled in) *)
  upstream : Addr.t;
  faults : faults;
  mutable stopping : bool;
  conns : (int, conn) Hashtbl.t;
  cm : Mutex.t;
  mutable next_cid : int;
  mutable accept_thread : Thread.t option;
  mutable conn_threads : Thread.t list;
}

let with_conns (p : t) (f : unit -> 'a) : 'a =
  Mutex.lock p.cm;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.cm) f

(* Close both ends of a connection; [reset] turns the TCP close into an
   RST. Idempotent: double closes are swallowed. *)
let kill_conn ?(reset = false) (conn : conn) : unit =
  let close fd = if reset then Addr.reset_close fd else try Unix.close fd with _ -> () in
  close conn.c_fd;
  close conn.s_fd

(* One pump direction: read chunks from [src], apply the fault schedule,
   forward to [dst]. Returns when the stream ends (EOF, error, terminal
   fault, or proxy stop). *)
let pump (p : t) (conn : conn) ~(active : bool) (src : Unix.file_descr)
    (dst : Unix.file_descr) : unit =
  let f = p.faults in
  let buf = Bytes.create 4096 in
  let forwarded = ref 0 in
  let finished = ref false in
  let write_all (b : Bytes.t) (off : int) (len : int) : bool =
    let o = ref off and rem = ref len in
    let ok = ref true in
    while !ok && !rem > 0 do
      match Unix.write dst b !o !rem with
      | k ->
          o := !o + k;
          rem := !rem - k
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Thread.delay 0.01
      | exception _ -> ok := false
    done;
    !ok
  in
  (* forward [len] bytes honoring chunking/throttle/duplication; returns
     false when the connection died under us *)
  let forward (len : int) : bool =
    let step =
      match (active, f.chunk) with
      | true, Some c -> max 1 c
      | _ -> len
    in
    let off = ref 0 in
    let ok = ref true in
    while !ok && !off < len do
      (* latency applies per forwarded piece: with [chunk = Some 1] this
         is a true slow-loris dribble, one byte per [delay] *)
      if active && f.delay > 0.0 then Thread.delay f.delay;
      let n = min step (len - !off) in
      let crossing k = !forwarded < k && !forwarded + n >= k in
      (* terminal faults fire on the chunk that crosses the threshold *)
      (match (active, f.truncate_after) with
      | true, Some k when crossing k ->
          let keep = k - !forwarded in
          if keep > 0 then ignore (write_all buf !off keep);
          kill_conn conn;
          ok := false;
          finished := true
      | _ -> ());
      (match (active, f.reset_after) with
      | true, Some k when !ok && crossing k ->
          let keep = k - !forwarded in
          if keep > 0 then ignore (write_all buf !off keep);
          kill_conn ~reset:true conn;
          ok := false;
          finished := true
      | _ -> ());
      if !ok then begin
        let dup =
          match (active, f.duplicate_after) with
          | true, Some k -> crossing k
          | _ -> false
        in
        if write_all buf !off n then begin
          if dup then ignore (write_all buf !off n);
          forwarded := !forwarded + n;
          (match (active, f.throttle_bps) with
          | true, Some bps when bps > 0 ->
              Thread.delay (float_of_int n /. float_of_int bps)
          | _ -> ());
          if step < len then Thread.delay 0.005;
          off := !off + n
        end
        else begin
          ok := false;
          finished := true
        end
      end
    done;
    !ok
  in
  (try Unix.setsockopt_float src Unix.SO_RCVTIMEO 0.2 with _ -> ());
  while not !finished do
    if p.stopping then finished := true
    else
      match Unix.read src buf 0 (Bytes.length buf) with
      | 0 ->
          (* half-close propagates: the peer may still be replying *)
          (try Unix.shutdown dst Unix.SHUTDOWN_SEND with _ -> ());
          finished := true
      | n -> if not (forward n) then finished := true
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception _ -> finished := true
  done

let handle_conn (p : t) (cid : int) (conn : conn) : unit =
  Fun.protect
    ~finally:(fun () ->
      kill_conn conn;
      with_conns p (fun () -> Hashtbl.remove p.conns cid))
    (fun () ->
      let c2s_active = p.faults.dir <> `S2c in
      let s2c_active = p.faults.dir <> `C2s in
      let s2c =
        Thread.create
          (fun () -> pump p conn ~active:s2c_active conn.s_fd conn.c_fd)
          ()
      in
      pump p conn ~active:c2s_active conn.c_fd conn.s_fd;
      Thread.join s2c)

(* The listener is polled through [select] with a short tick: a thread
   blocked in a bare [accept] is NOT woken by another thread closing the
   fd, so a blocking loop would make [stop] hang in [Thread.join]. *)
let accept_loop (p : t) () : unit =
  while not p.stopping do
    match
      match Unix.select [ p.listen_fd ] [] [] 0.2 with
      | [], _, _ -> None
      | _ -> Some (Unix.accept p.listen_fd)
    with
    | None -> ()
    | Some (c_fd, _) ->
        if p.stopping then (try Unix.close c_fd with _ -> ())
        else (
          match Addr.connect p.upstream with
          | s_fd ->
              let conn = { c_fd; s_fd } in
              let cid =
                with_conns p (fun () ->
                    let cid = p.next_cid in
                    p.next_cid <- cid + 1;
                    Hashtbl.add p.conns cid conn;
                    cid)
              in
              p.conn_threads <-
                Thread.create (fun () -> handle_conn p cid conn) ()
                :: p.conn_threads
          | exception _ ->
              (* upstream refused: the client sees an immediate close,
                 exactly what a dead backend looks like *)
              (try Unix.close c_fd with _ -> ()))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception _ -> if not p.stopping then Thread.delay 0.05
  done

(** Start a proxy: [listen] (port 0 resolved) forwarding to [upstream],
    both as {!Addr} strings. *)
let start ?(faults = no_faults) ~(listen : string) ~(upstream : string) () :
    t =
  let laddr = Addr.of_string listen in
  let upstream = Addr.of_string upstream in
  let listen_fd = Addr.listen laddr in
  let p =
    {
      listen_fd;
      laddr = Addr.bound listen_fd laddr;
      upstream;
      faults;
      stopping = false;
      conns = Hashtbl.create 8;
      cm = Mutex.create ();
      next_cid = 1;
      accept_thread = None;
      conn_threads = [];
    }
  in
  p.accept_thread <- Some (Thread.create (accept_loop p) ());
  p

(** The endpoint string clients should connect to. *)
let endpoint (p : t) : string = Addr.to_string p.laddr

(** Stop the proxy: close the listener and every live connection, join
    every thread. *)
let stop (p : t) : unit =
  p.stopping <- true;
  (try Unix.close p.listen_fd with _ -> ());
  with_conns p (fun () ->
      Hashtbl.iter
        (fun _ c ->
          (try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with _ -> ());
          try Unix.shutdown c.s_fd Unix.SHUTDOWN_ALL with _ -> ())
        p.conns);
  (match p.accept_thread with Some th -> Thread.join th | None -> ());
  List.iter Thread.join p.conn_threads
