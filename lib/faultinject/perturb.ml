(** Profile perturbation: mutate gathered profiles (in place) so the
    speculation modules confidently claim facts the program then violates,
    forcing real misspeculations through the full
    plan -> instrument -> run -> recover path.

    Each kind targets one profile the speculation modules consume:

    - [Flip_branch] — erase an executed block's count, so control
      speculation sees it as speculatively dead and plants a beacon on a
      path that runs;
    - [Shift_value] — nudge a stable load's predicted value, so the value
      check compares against a value the load never produces;
    - [Poison_residue] — complement an access's residue set, so the
      residue check rejects the addresses the access actually touches. *)

open Scaf_profile

type kind = Flip_branch | Shift_value | Poison_residue

let all_kinds = [ Flip_branch; Shift_value; Poison_residue ]

let kind_name = function
  | Flip_branch -> "flip-branch"
  | Shift_value -> "shift-value"
  | Poison_residue -> "poison-residue"

(* deterministic candidate order regardless of hash-table iteration *)
let sorted_keys tbl =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let pick rng = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rng (List.length l)))

(** [apply ~seed kind profiles] mutates one seeded-random profile entry;
    returns a description of the mutation, or [None] when the profile has
    no suitable entry. *)
let apply ~(seed : int) (k : kind) (p : Profiles.t) : string option =
  let rng = Random.State.make [| seed; Hashtbl.hash (kind_name k) |] in
  match k with
  | Flip_branch -> (
      let blocks = p.Profiles.edges.Edge_profile.blocks in
      match pick rng (sorted_keys blocks) with
      | Some ((f, l) as key) ->
          Hashtbl.remove blocks key;
          Some (Printf.sprintf "flip-branch: block %s:%s now appears dead" f l)
      | None -> None)
  | Shift_value -> (
      let tbl = p.Profiles.values in
      let stable =
        List.filter
          (fun id -> Value_profile.predictable tbl id <> None)
          (sorted_keys tbl)
      in
      match pick rng stable with
      | Some id ->
          let e = Hashtbl.find tbl id in
          e.Value_profile.first <- Int64.add e.Value_profile.first 1L;
          Some
            (Printf.sprintf "shift-value: load %d now predicts %Ld" id
               e.Value_profile.first)
      | None -> None)
  | Poison_residue -> (
      let tbl = p.Profiles.residues in
      match pick rng (sorted_keys tbl) with
      | Some id ->
          let e = Hashtbl.find tbl id in
          e.Residue_profile.residues <-
            lnot e.Residue_profile.residues land 0xffff;
          Some
            (Printf.sprintf "poison-residue: access %d now allows %#x" id
               e.Residue_profile.residues)
      | None -> None)
