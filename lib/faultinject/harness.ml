(** The fault-injection harness: seeded end-to-end scenarios that force
    misspeculations (profile perturbation), per-payload failing assertions
    (direct scenarios) and module failures (chaos + Orchestrator) — and
    check the resilience contract: every run either commits its
    speculation or recovers via rollback/re-plan, and the final result
    always equals the original program's. *)

open Scaf
open Scaf_ir
open Scaf_interp
open Scaf_profile
open Scaf_suite
open Scaf_transform

(* ---- scenario outcomes ---- *)

type outcome = {
  scenario : string;
  seed : int;
  forced : bool;  (** constructed so a misspeculation must occur *)
  ok : bool;  (** final result equals the original program's *)
  misspeculated : bool;
  committed : bool;  (** ran speculatively with no misspeculation at all *)
  rollbacks : int;  (** in-run checkpoint rollbacks (last attempt) *)
  recovered : int;  (** assertions squashed in-run *)
  replans : int;  (** assertions blacklisted by adaptive re-planning *)
  degraded : bool;  (** fell back to the uninstrumented original *)
  detail : string;
}

let same_result (a : Eval.result) (b : Eval.result) : bool =
  a.Eval.output = b.Eval.output && Int64.equal a.Eval.ret b.Eval.ret

let outcome_of ~scenario ~seed ~forced ~detail (reference : Eval.result)
    (a : Apply.adaptive) : outcome =
  let rollbacks = a.Apply.final.Eval.rollbacks in
  let recovered = List.length a.Apply.recovered in
  let replans = List.length a.Apply.blacklisted in
  let misspeculated =
    a.Apply.degraded || rollbacks > 0 || recovered > 0 || replans > 0
  in
  {
    scenario;
    seed;
    forced;
    ok = same_result a.Apply.final reference;
    misspeculated;
    committed = not misspeculated;
    rollbacks;
    recovered;
    replans;
    degraded = a.Apply.degraded;
    detail;
  }

(* ---- pipeline scenarios: perturbed profiles through the full stack ---- *)

(** [run_pipeline ~seed bench kind] — profile [bench] on its training
    inputs, perturb one profile entry, then speculate adaptively on the
    reference input and compare against the original run. *)
let run_pipeline ~(seed : int) (bench : string) (k : Perturb.kind) : outcome =
  let b =
    match Registry.find bench with
    | Some b -> b
    | None -> invalid_arg ("Harness.run_pipeline: unknown benchmark " ^ bench)
  in
  let m = Program.program b in
  let p = Program.profiles b in
  let detail =
    Option.value ~default:"no perturbation point" (Perturb.apply ~seed k p)
  in
  let input = Program.ref_input b in
  let reference = Eval.run ~input m in
  let _plan, a = Apply.speculate_adaptive p ~input () in
  outcome_of
    ~scenario:(Printf.sprintf "%s/%s" bench (Perturb.kind_name k))
    ~seed ~forced:false ~detail reference a

(* ---- direct scenarios: one failing assertion per payload variant ---- *)

(* A small checkpointable program: a counted loop (entered by an
   unconditional branch, so it gets invocation checkpoints) that reads a
   global, writes through a heap pointer and prints per iteration. Every
   direct assertion below is *false* for it, so its check must fire. *)
let direct_src =
  {|
global @g 8
global @slot 8
func @main() {
entry:
  %t = call @malloc(16)
  store 8, @slot, %t
  store 8, @g, 7
  br loop
loop:
  %i = phi [entry: 0], [latch: %i2]
  %v = load 8, @g
  %p = load 8, @slot
  store 8, %p, %i
  call @print(%v)
  br latch
latch:
  %i2 = add %i, 1
  %c = icmp slt %i2, 4
  condbr %c, loop, exit
exit:
  %r = load 8, @g
  ret %r
}
|}

let find_instr (m : Irmod.t) (f : Instr.t -> bool) : int =
  let r = ref (-1) in
  Irmod.iter_instrs m (fun _ _ i -> if f i then r := i.Instr.id);
  !r

let by_dst m reg = find_instr m (fun i -> i.Instr.dst = Some reg)

let malloc_site m =
  find_instr m (fun i ->
      match i.Instr.kind with
      | Instr.Call { callee = "malloc"; _ } -> true
      | _ -> false)

let heap_store m =
  find_instr m (fun i ->
      match i.Instr.kind with
      | Instr.Store { ptr = Value.Reg "p"; _ } -> true
      | _ -> false)

let g_store m =
  find_instr m (fun i ->
      match i.Instr.kind with
      | Instr.Store { ptr = Value.Global "g"; _ } -> true
      | _ -> false)

let mk_assert ?(points = []) ?(conflicts = []) ?(cost = 1.0) id payload =
  { Assertion.module_id = id; points; cost; conflicts; payload }

(** One failing assertion set per [Assertion.payload] variant. [seed]
    varies the wrongly-predicted value. *)
let direct_cases ~(seed : int) (m : Irmod.t) :
    (string * Assertion.t list) list =
  let lid = "main:loop" in
  [
    ( "ctrl-block-dead",
      [
        mk_assert "fi-ctrl"
          (Assertion.Ctrl_block_dead
             { fname = "main"; label = "latch"; beacon = 0 });
      ] );
    ( "value-predict",
      [
        mk_assert "fi-value"
          (Assertion.Value_predict
             {
               load = by_dst m "v";
               (* actual value is 7: any shifted prediction fails *)
               value = Int64.of_int (8 + (abs seed mod 5));
             });
      ] );
    ( "residue",
      [
        mk_assert "fi-residue"
          (Assertion.Residue { access = heap_store m; allowed = 0 });
      ] );
    ( "heap-separate",
      [
        mk_assert "fi-heap"
          (Assertion.Heap_separate
             {
               loop = lid;
               sites = [ malloc_site m ];
               gsites = [];
               heap = Assertion.Read_only_heap;
               (* @g's object never lands in the separated heap *)
               inside = [ by_dst m "v" ];
               outside = [];
             });
      ] );
    ( "short-lived-balance",
      [
        (* the separation companion tags the site; the object is never
           freed, so the balance check at the latch must fire *)
        mk_assert "fi-sl-sep"
          (Assertion.Heap_separate
             {
               loop = lid;
               sites = [ malloc_site m ];
               gsites = [];
               heap = Assertion.Short_lived_heap;
               inside = [];
               outside = [];
             });
        mk_assert "fi-sl-bal"
          (Assertion.Short_lived_balance
             { loop = lid; sites = [ malloc_site m ] });
      ] );
    ( "points-to-objects",
      [
        (* realized as an entry beacon, outside every checkpoint: must
           escape to the adaptive re-planner *)
        mk_assert "fi-points-to" (Assertion.Points_to_objects { instr = -1 });
      ] );
    ( "mem-nodep",
      [
        mk_assert "fi-memspec"
          (Assertion.Mem_nodep
             { src = g_store m; dst = by_dst m "v"; cross = false });
      ] );
  ]

let all_lids (prog : Scaf_cfg.Progctx.t) : string list =
  Hashtbl.fold (fun lid _ acc -> lid :: acc) prog.Scaf_cfg.Progctx.by_lid []
  |> List.sort compare

(** [run_direct ~seed case assertions] — instrument [direct_src] with a
    known-false assertion set, run with checkpoint + adaptive recovery and
    compare against the original. *)
let run_direct ~(seed : int) (case : string) : outcome =
  let prog = Scaf_cfg.Progctx.build (Parser.parse_exn_msg direct_src) in
  let m = prog.Scaf_cfg.Progctx.m in
  let assertions =
    match List.assoc_opt case (direct_cases ~seed m) with
    | Some a -> a
    | None -> invalid_arg ("Harness.run_direct: unknown case " ^ case)
  in
  let reference = Eval.run m in
  let lids = all_lids prog in
  let replan ~blacklist =
    let remaining =
      List.filter
        (fun a -> not (List.exists (Assertion.equal a) blacklist))
        assertions
    in
    Some (Instrument.instrument prog ~checkpoints:lids remaining)
  in
  let a = Apply.run_adaptive ~original:m ~replan () in
  outcome_of
    ~scenario:("direct/" ^ case)
    ~seed ~forced:true
    ~detail:(Printf.sprintf "%d assertions known false" (List.length assertions))
    reference a

let direct_case_names =
  [
    "ctrl-block-dead";
    "value-predict";
    "residue";
    "heap-separate";
    "short-lived-balance";
    "points-to-objects";
    "mem-nodep";
  ]

(* ---- chaos scenarios: misbehaving modules under the Orchestrator ---- *)

type chaos_outcome = {
  c_scenario : string;
  c_queries : int;  (** client queries issued by the PDG client *)
  c_answered : int;  (** queries that returned (none may abort) *)
  c_injected_raises : int;
  c_injected_delays : int;
  c_faults : int;  (** faults the orchestrator recorded *)
  c_overruns : int;
  c_quarantined : string list;
}

(** [run_chaos ~seed bench ...] — wrap the whole SCAF ensemble in the
    chaos injector and drive the PDG client over [bench]'s hot loops. The
    orchestrator must answer every query (conservatively if need be). *)
let run_chaos ~(seed : int) ?(p_raise = 0.0) ?(p_delay = 0.0)
    ?(p_corrupt = 0.0) ?module_budget (bench : string) : chaos_outcome =
  let b =
    match Registry.find bench with
    | Some b -> b
    | None -> invalid_arg ("Harness.run_chaos: unknown benchmark " ^ bench)
  in
  let p = Program.profiles b in
  let prog = p.Profiles.ctx in
  let now = ref 0.0 in
  let clock () =
    now := !now +. 1.0;
    !now
  in
  let burn () = now := !now +. 1.0e6 in
  let modules =
    Scaf_analysis.Registry.create prog @ Scaf_speculation.Registry.create p
  in
  let cfg = Chaos.config ~seed ~p_raise ~p_delay ~p_corrupt ~burn () in
  let wrapped, counters = Chaos.wrap_all cfg modules in
  let o =
    Orchestrator.create prog
      {
        (Orchestrator.default_config wrapped) with
        Orchestrator.clock = Some clock;
        module_budget;
      }
  in
  let queries = ref 0 and answered = ref 0 in
  let resolve q =
    incr queries;
    let r = Orchestrator.handle o q in
    incr answered;
    r
  in
  List.iter
    (fun (lid, _) -> ignore (Scaf_pdg.Pdg.run_loop prog ~resolver:resolve lid))
    (Scaf_pdg.Nodep.hot_loop_weights p);
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 counters in
  {
    c_scenario =
      Printf.sprintf "%s/chaos(r=%.2f,d=%.2f,c=%.2f)" bench p_raise p_delay
        p_corrupt;
    c_queries = !queries;
    c_answered = !answered;
    c_injected_raises = sum (fun c -> c.Chaos.raises);
    c_injected_delays = sum (fun c -> c.Chaos.delays);
    c_faults = (Orchestrator.stats o).Orchestrator.module_faults;
    c_overruns = (Orchestrator.stats o).Orchestrator.module_overruns;
    c_quarantined = Orchestrator.quarantined o;
  }

(* ---- the full suite of scenarios ---- *)

let pipeline_benches =
  [ "052.alvinn"; "164.gzip"; "175.vpr"; "429.mcf"; "462.libquantum" ]

(** Every recovery scenario (>= 20, covering each payload variant): the
    5x3 perturbed-pipeline grid plus the 7 per-payload direct cases. *)
let run_all ?(seed = 2026) () : outcome list =
  let pipeline =
    List.concat_map
      (fun bench ->
        List.map (fun k -> run_pipeline ~seed bench k) Perturb.all_kinds)
      pipeline_benches
  in
  let direct = List.map (run_direct ~seed) direct_case_names in
  pipeline @ direct
