(** Chaos wrapper: seeded fault injection for analysis/speculation modules.

    Wraps a [Module_api.t] so each [answer] call, driven by a seeded PRNG,
    may (a) raise, (b) stall past any configured per-module latency budget,
    or (c) return a corrupted speculative answer — a maximally precise
    claim justified only by a bogus assertion whose validation
    misspeculates immediately. Together with the Orchestrator's fault
    isolation this exercises every failure path a misbehaving module can
    take without ever aborting a client query. *)

open Scaf

exception Injected of string
(** the fault a chaos-wrapped module raises *)

type counters = {
  mutable raises : int;
  mutable delays : int;
  mutable corrupts : int;
  mutable clean : int;  (** answers passed through untouched *)
}

type config = {
  seed : int;
  p_raise : float;
  p_delay : float;
  p_corrupt : float;
  burn : unit -> unit;
      (** consume enough (fake) clock to overrun the module budget *)
}

let config ?(seed = 1) ?(p_raise = 0.0) ?(p_delay = 0.0) ?(p_corrupt = 0.0)
    ?(burn = fun () -> ()) () : config =
  { seed; p_raise; p_delay; p_corrupt; burn }

(** A corrupted speculative answer: the most precise result for the query,
    "justified" by a cheap bogus assertion that the instrumentation
    realizes as an immediate misspec beacon ([Points_to_objects] with no
    real site). A client acting on it must go through recovery. *)
let corrupt_response (name : string) (q : Query.t) : Response.t =
  let bogus =
    {
      Assertion.module_id = name ^ "!chaos";
      points = [];
      cost = 0.5;
      conflicts = [];
      payload = Assertion.Points_to_objects { instr = -1 };
    }
  in
  let result =
    match q with
    | Query.Alias _ -> Aresult.RAlias Aresult.NoAlias
    | Query.Modref _ -> Aresult.RModref Aresult.NoModRef
  in
  Response.speculative result [ bogus ]

(** [wrap cfg m] — the chaos-wrapped module plus its injection counters.
    Fault kinds are drawn per call from one [0,1) sample: raise below
    [p_raise], delay below [p_raise + p_delay], and so on. *)
let wrap (cfg : config) (m : Module_api.t) : Module_api.t * counters =
  let rng = Random.State.make [| cfg.seed; Hashtbl.hash m.Module_api.name |] in
  let c = { raises = 0; delays = 0; corrupts = 0; clean = 0 } in
  let answer ctx q =
    let x = Random.State.float rng 1.0 in
    if x < cfg.p_raise then begin
      c.raises <- c.raises + 1;
      raise (Injected m.Module_api.name)
    end
    else if x < cfg.p_raise +. cfg.p_delay then begin
      c.delays <- c.delays + 1;
      cfg.burn ();
      m.Module_api.answer ctx q
    end
    else if x < cfg.p_raise +. cfg.p_delay +. cfg.p_corrupt then begin
      c.corrupts <- c.corrupts + 1;
      corrupt_response m.Module_api.name q
    end
    else begin
      c.clean <- c.clean + 1;
      m.Module_api.answer ctx q
    end
  in
  ({ m with Module_api.answer }, c)

(** Wrap a whole ensemble with one config; counters in module order. *)
let wrap_all (cfg : config) (ms : Module_api.t list) :
    Module_api.t list * counters list =
  List.split (List.map (wrap cfg) ms)
