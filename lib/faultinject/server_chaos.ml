(** Server chaos: fault scenarios against a live SCAF query daemon.

    Each scenario starts (or shares) a real daemon on a scratch Unix
    socket and attacks it the way production clients do: connections
    killed mid-frame, slow-loris dribbles, oversized and malformed frames,
    deadline storms, saturated admission queues, injected module faults,
    idle sessions, stale socket files, shutdown races. The contract under
    test is the service-level resilience invariant: {e every request is
    answered, cleanly rejected (retryably, with a hint), or
    deadline-expired — never hung, never half-written}; degraded answers
    are explicitly flagged; and non-degraded answers are the batch
    evaluation's answers. *)

open Scaf_server

type server_outcome = {
  s_scenario : string;
  s_ok : bool;
  s_detail : string;
}

let bench_name = "052.alvinn"

let scratch_sock : unit -> string =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "scaf-chaos-%d-%d.sock" (Unix.getpid ()) !n)

let benchmarks () =
  match Scaf_suite.Registry.find bench_name with
  | Some b -> [ b ]
  | None -> invalid_arg ("Server_chaos: unknown benchmark " ^ bench_name)

(* A scenario body gets [timeout] seconds on a watchdog thread: a hung
   scenario becomes a failing outcome instead of a hung harness — the
   no-hangs contract is checked by construction. *)
(* opt-in progress tracing for debugging the matrices *)
let trace =
  match Sys.getenv_opt "SCAF_CHAOS_TRACE" with Some _ -> true | None -> false

let guarded ~(timeout : float) (scenario : string) (body : unit -> string) :
    server_outcome =
  if trace then Printf.eprintf "[chaos] %s ...\n%!" scenario;
  let result = ref None in
  let m = Mutex.create () in
  let c = Condition.create () in
  let worker =
    Thread.create
      (fun () ->
        let r =
          match body () with
          | detail -> (true, detail)
          | exception e -> (false, Printexc.to_string e)
        in
        Mutex.lock m;
        result := Some r;
        Condition.signal c;
        Mutex.unlock m)
      ()
  in
  let deadline = Unix.gettimeofday () +. timeout in
  Mutex.lock m;
  let rec wait () =
    match !result with
    | Some r -> Some r
    | None ->
        if Unix.gettimeofday () > deadline then None
        else begin
          Mutex.unlock m;
          Thread.delay 0.05;
          Mutex.lock m;
          wait ()
        end
  in
  let r = wait () in
  Mutex.unlock m;
  match r with
  | Some (ok, detail) ->
      Thread.join worker;
      if trace then
        Printf.eprintf "[chaos] %s: %s (%s)\n%!" scenario
          (if ok then "ok" else "FAIL")
          detail;
      { s_scenario = scenario; s_ok = ok; s_detail = detail }
  | None ->
      (* the worker is abandoned, not joined: it is hung, which is exactly
         the finding *)
      if trace then Printf.eprintf "[chaos] %s: HUNG\n%!" scenario;
      {
        s_scenario = scenario;
        s_ok = false;
        s_detail = Printf.sprintf "HUNG (no outcome after %.1fs)" timeout;
      }

(* ---- raw-socket helpers (attacks below the Client abstraction) ---- *)

let raw_connect (path : string) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_bytes (fd : Unix.file_descr) (s : string) : unit =
  let b = Bytes.of_string s in
  let n = ref 0 in
  while !n < Bytes.length b do
    n := !n + Unix.write fd b !n (Bytes.length b - !n)
  done

let prefix_of (n : int) : string =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.to_string b

let expect_err_code (j : Json.t) : string =
  match Protocol.open_envelope j with
  | Error e -> e.Protocol.code
  | Ok _ -> "ok"

(* The daemon must still answer a fresh, well-formed client after an
   attack — the cross-check every connection-level scenario ends with. *)
let still_serving (path : string) : bool =
  let c, _ = Client.connect ~name:"probe" path in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      Client.ping c;
      true)

let first_query (c : Client.t) ~bench : Protocol.wire_query =
  match Client.queries c ~bench with
  | (_, _, q :: _) :: _ -> q
  | _ -> failwith "benchmark has no queries"

let all_queries (c : Client.t) ~bench : Protocol.wire_query list =
  List.concat_map (fun (_, _, qs) -> qs) (Client.queries c ~bench)

let take (n : int) (l : 'a list) : 'a list =
  List.filteri (fun i _ -> i < n) l

(* ---- scenario groups ---- *)

(** Scenarios against one normally-configured shared daemon. *)
let normal_daemon_scenarios ~(seed : int) (path : string) :
    server_outcome list =
  ignore seed;
  let s name body = guarded ~timeout:60.0 name body in
  [
    s "serve/well-formed-ask" (fun () ->
        let c, benches = Client.connect path in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            if not (List.mem bench_name benches) then
              failwith "hello did not list the benchmark";
            let a = Client.ask c ~bench:bench_name (first_query c ~bench:bench_name) in
            if a.Protocol.a_degraded <> None then
              failwith "undegraded request came back degraded";
            Printf.sprintf "result=%s" a.Protocol.a_result));
    s "serve/batch-identical" (fun () ->
        (* every non-degraded daemon answer must agree with a local batch
           (SCAF scheme) evaluation of the same workload *)
        let c, _ = Client.connect path in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            let qs = all_queries c ~bench:bench_name in
            let answers = Client.ask_many c ~bench:bench_name qs in
            let b = List.hd (benchmarks ()) in
            let p = Scaf_suite.Program.profiles b in
            let r = (Scaf_pdg.Schemes.scaf_scheme p).Scaf_pdg.Schemes.spawn () in
            let mismatches = ref 0 in
            List.iter2
              (fun (wq : Protocol.wire_query) (a : Protocol.answer) ->
                if a.Protocol.a_degraded = None then begin
                  let local =
                    r.Scaf_pdg.Schemes.resolve (Protocol.to_core_query wq)
                  in
                  let local_a = Protocol.answer_of_response local in
                  if
                    local_a.Protocol.a_result <> a.Protocol.a_result
                    || local_a.Protocol.a_nodep <> a.Protocol.a_nodep
                    || local_a.Protocol.a_cost <> a.Protocol.a_cost
                  then incr mismatches
                end)
              qs answers;
            if !mismatches > 0 then
              failwith (Printf.sprintf "%d answers differ from batch" !mismatches);
            Printf.sprintf "%d answers identical to batch" (List.length qs)));
    s "conn/killed-mid-frame" (fun () ->
        (* declare 100 bytes, send 10, vanish *)
        let fd = raw_connect path in
        send_bytes fd (prefix_of 100);
        send_bytes fd "0123456789";
        Unix.close fd;
        Thread.delay 0.1;
        if still_serving path then "server unaffected" else failwith "down");
  ]
  @ [
      guarded ~timeout:30.0 "conn/killed-mid-prefix" (fun () ->
          let fd = raw_connect path in
          send_bytes fd "\x00\x00";
          Unix.close fd;
          Thread.delay 0.1;
          if still_serving path then "server unaffected" else failwith "down");
      guarded ~timeout:30.0 "conn/killed-before-reply" (fun () ->
          (* a full valid request, then vanish without reading the reply:
             the server's write must hit EPIPE, not hang or crash *)
          let fd = raw_connect path in
          let payload =
            Json.to_string
              (Protocol.request_to_json
                 (Protocol.Report { bench = bench_name }))
          in
          send_bytes fd (prefix_of (String.length payload) ^ payload);
          Unix.close fd;
          Thread.delay 0.2;
          if still_serving path then "server unaffected" else failwith "down");
      guarded ~timeout:30.0 "frame/oversized" (fun () ->
          let fd = raw_connect path in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              send_bytes fd (prefix_of (100 * 1024 * 1024));
              match Wire.read_frame ~frame_budget:10.0 fd with
              | Ok j ->
                  let code = expect_err_code j in
                  if code <> "bad_request" then
                    failwith ("expected bad_request, got " ^ code);
                  if still_serving path then "rejected, then hung up"
                  else failwith "down"
              | Error e -> failwith (Wire.error_to_string e)));
      guarded ~timeout:30.0 "frame/malformed-json" (fun () ->
          let fd = raw_connect path in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              send_bytes fd (prefix_of 5 ^ "{nope");
              match Wire.read_frame ~frame_budget:10.0 fd with
              | Ok j ->
                  let code = expect_err_code j in
                  if code <> "bad_request" then
                    failwith ("expected bad_request, got " ^ code);
                  (* the frame was well-delimited: the connection must
                     still be usable *)
                  let ping =
                    Json.to_string (Protocol.request_to_json Protocol.Ping)
                  in
                  send_bytes fd (prefix_of (String.length ping) ^ ping);
                  (match Wire.read_frame ~frame_budget:10.0 fd with
                  | Ok j2 when expect_err_code j2 = "ok" ->
                      "rejected, connection survived"
                  | Ok _ -> failwith "ping after bad json failed"
                  | Error e -> failwith (Wire.error_to_string e))
              | Error e -> failwith (Wire.error_to_string e)));
      guarded ~timeout:30.0 "frame/unknown-op" (fun () ->
          let fd = raw_connect path in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              (* versioned correctly, so the gate passes and the op
                 parser is what rejects it *)
              let payload = {|{"op":"frobnicate","v":2}|} in
              send_bytes fd (prefix_of (String.length payload) ^ payload);
              match Wire.read_frame ~frame_budget:10.0 fd with
              | Ok j when expect_err_code j = "bad_request" -> "rejected"
              | Ok j -> failwith ("unexpected " ^ Json.to_string j)
              | Error e -> failwith (Wire.error_to_string e)));
      guarded ~timeout:30.0 "req/unknown-bench" (fun () ->
          let c, _ = Client.connect ~retry:Client.no_retry path in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              match
                Client.ask c ~bench:"no-such-bench"
                  { Protocol.wloop = "l"; wsrc = 0; wdst = 0; wcross = false }
              with
              | _ -> failwith "expected unknown_bench"
              | exception Client.Server_error e ->
                  if e.Protocol.retryable then
                    failwith "unknown_bench must not be retryable";
                  e.Protocol.code));
      guarded ~timeout:60.0 "deadline/instant-expiry" (fun () ->
          let c, _ = Client.connect path in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let q = first_query c ~bench:bench_name in
              let a = Client.ask ~deadline_ms:0.001 c ~bench:bench_name q in
              match a.Protocol.a_degraded with
              | Some "deadline" -> "answered, flagged deadline"
              | Some other -> failwith ("unexpected tag " ^ other)
              | None -> failwith "0.001ms deadline not flagged"));
      guarded ~timeout:120.0 "deadline/storm" (fun () ->
          let c, _ = Client.connect path in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let qs = all_queries c ~bench:bench_name in
              let n = min 40 (List.length qs) in
              let qs = List.filteri (fun i _ -> i < n) qs in
              let answered = ref 0 and missed = ref 0 in
              List.iteri
                (fun i q ->
                  let deadline_ms = if i mod 2 = 0 then 0.001 else 10_000.0 in
                  let a = Client.ask ~deadline_ms c ~bench:bench_name q in
                  incr answered;
                  if a.Protocol.a_degraded = Some "deadline" then incr missed)
                qs;
              if !answered <> n then failwith "a request hung or was dropped";
              if !missed = 0 then failwith "no deadline ever expired";
              Printf.sprintf "%d answered, %d flagged expired" !answered !missed));
      guarded ~timeout:120.0 "conc/hammer-one-query" (fun () ->
          (* several clients, one hot query: all answered, all agree *)
          let q =
            let c, _ = Client.connect path in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () -> first_query c ~bench:bench_name)
          in
          let results = Array.make 4 None in
          let threads =
            List.init 4 (fun i ->
                Thread.create
                  (fun () ->
                    let c, _ = Client.connect ~name:(Printf.sprintf "h%d" i) path in
                    Fun.protect
                      ~finally:(fun () -> Client.close c)
                      (fun () ->
                        let answers =
                          List.init 5 (fun _ -> Client.ask c ~bench:bench_name q)
                        in
                        results.(i) <- Some answers))
                  ())
          in
          List.iter Thread.join threads;
          let all =
            Array.to_list results
            |> List.concat_map (function Some l -> l | None -> failwith "a client died")
          in
          let r0 = (List.hd all).Protocol.a_result in
          if List.exists (fun (a : Protocol.answer) -> a.Protocol.a_result <> r0) all
          then failwith "clients disagree on one query";
          Printf.sprintf "%d concurrent answers agree (%s)" (List.length all) r0);
      guarded ~timeout:120.0 "conc/distinct-clients" (fun () ->
          let qs =
            let c, _ = Client.connect path in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () -> all_queries c ~bench:bench_name)
          in
          let n = List.length qs in
          let failures = Atomic.make 0 in
          let threads =
            List.init 4 (fun i ->
                Thread.create
                  (fun () ->
                    let c, _ = Client.connect ~name:(Printf.sprintf "w%d" i) path in
                    Fun.protect
                      ~finally:(fun () -> Client.close c)
                      (fun () ->
                        List.iteri
                          (fun j q ->
                            if j mod 4 = i then
                              match Client.ask c ~bench:bench_name q with
                              | _ -> ()
                              | exception _ -> Atomic.incr failures)
                          qs))
                  ())
          in
          List.iter Thread.join threads;
          if Atomic.get failures > 0 then
            failwith (Printf.sprintf "%d asks failed" (Atomic.get failures));
          Printf.sprintf "%d queries split over 4 clients" n);
      guarded ~timeout:30.0 "ops/stats" (fun () ->
          let c, _ = Client.connect path in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let j = Client.stats c in
              let adm = Json.mem_or "admission" ~default:(Json.Obj []) j in
              let state = Json.string_member "state" adm in
              let served =
                match
                  Json.member "metrics" j
                  |> Option.map (Json.mem_or "counters" ~default:(Json.Obj []))
                with
                | Some counters -> (
                    match Json.member "server.requests" counters with
                    | Some (Json.Int n) -> n
                    | _ -> 0)
                | None -> 0
              in
              if served = 0 then failwith "stats shows no requests served";
              Printf.sprintf "state=%s requests=%d" state served));
    ]

(** Slow-loris against a daemon with a tight frame budget. *)
let slow_loris_scenario (path : string) : server_outcome =
  guarded ~timeout:30.0 "conn/slow-loris" (fun () ->
      let fd = raw_connect path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          let t0 = Unix.gettimeofday () in
          (* declare a 1000-byte frame, then dribble one payload byte per
             100ms: the 0.5s frame budget must cut us off *)
          let cut = ref false in
          (try
             send_bytes fd (prefix_of 1000);
             for i = 0 to 39 do
               ignore i;
               send_bytes fd "x";
               Thread.delay 0.1
             done
           with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
             cut := true);
          let elapsed = Unix.gettimeofday () -. t0 in
          if not !cut then failwith "server tolerated a 4s dribble";
          if elapsed > 5.0 then
            failwith (Printf.sprintf "cut only after %.1fs" elapsed);
          if still_serving path then
            Printf.sprintf "cut off after %.1fs" elapsed
          else failwith "down"))

(** Load shedding: watermark-zero daemons degrade every answer, tagged. *)
let shed_scenarios ~(seed : int) () : server_outcome list =
  ignore seed;
  let run name ~(admission : Admission.config) ~(expect : string -> bool) =
    guarded ~timeout:120.0 name (fun () ->
        let cfg =
          { (Daemon.default_config ~socket_path:(scratch_sock ())
               ~benchmarks:(benchmarks ()) ())
            with Daemon.admission }
        in
        let d = Daemon.start cfg in
        Fun.protect
          ~finally:(fun () -> Daemon.stop d)
          (fun () ->
            let c, _ = Client.connect cfg.Daemon.socket_path in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let q = first_query c ~bench:bench_name in
                let a = Client.ask c ~bench:bench_name q in
                match a.Protocol.a_degraded with
                | Some tag when expect tag -> "degraded as " ^ tag
                | Some tag -> failwith ("unexpected tag " ^ tag)
                | None -> failwith "shed answer not flagged")))
  in
  [
    run "shed/cheap-modules"
      ~admission:
        { Admission.default_config with
          Admission.cheap_watermark = 0;
          cache_watermark = 1000;
          capacity = 1000;
        }
      ~expect:(fun t -> t = "load_shed:cheap-modules");
    run "shed/cached-only"
      ~admission:
        { Admission.default_config with
          Admission.cheap_watermark = 0;
          cache_watermark = 0;
          capacity = 1000;
        }
      ~expect:(fun t ->
        t = "load_shed:cached" || t = "load_shed:cached-miss");
  ]

(** Saturation: slow modules + a 2-deep queue force explicit rejections
    with a retry hint; a backoff-retrying client eventually lands. *)
let saturation_scenarios ~(seed : int) () : server_outcome list =
  ignore seed;
  let mk_cfg () =
    let slow (ms : Scaf.Module_api.t list) =
      List.map
        (fun (m : Scaf.Module_api.t) ->
          {
            m with
            Scaf.Module_api.answer =
              (fun ctx q ->
                Thread.delay 0.005;
                m.Scaf.Module_api.answer ctx q);
          })
        ms
    in
    {
      (Daemon.default_config ~socket_path:(scratch_sock ())
         ~benchmarks:(benchmarks ()) ())
      with
      Daemon.workers = 1;
      admission =
        {
          Admission.capacity = 2;
          cheap_watermark = 1000;
          cache_watermark = 1000;
          retry_after_ms = 30.0;
        };
      wrap = slow;
    }
  in
  [
    guarded ~timeout:180.0 "load/reject-with-retry-after" (fun () ->
        let cfg = mk_cfg () in
        let d = Daemon.start cfg in
        Fun.protect
          ~finally:(fun () -> Daemon.stop d)
          (fun () ->
            let path = cfg.Daemon.socket_path in
            let c0, _ = Client.connect path in
            let qs = take 5 (all_queries c0 ~bench:bench_name) in
            Client.close c0;
            (* 6 clients, one worker, queue of 2: someone must be refused *)
            let rejections = Atomic.make 0 and answered = Atomic.make 0 in
            let hint_seen = Atomic.make 0 in
            let threads =
              List.init 6 (fun i ->
                  Thread.create
                    (fun () ->
                      let c, _ =
                        Client.connect ~retry:Client.no_retry
                          ~name:(Printf.sprintf "s%d" i) path
                      in
                      Fun.protect
                        ~finally:(fun () -> Client.close c)
                        (fun () ->
                          match Client.ask_many c ~bench:bench_name qs with
                          | _ -> Atomic.incr answered
                          | exception Client.Server_error e
                            when e.Protocol.code = "overloaded" ->
                              if not e.Protocol.retryable then
                                failwith "overloaded must be retryable";
                              if e.Protocol.retry_after_ms <> None then
                                Atomic.incr hint_seen;
                              Atomic.incr rejections))
                    ())
            in
            List.iter Thread.join threads;
            if Atomic.get rejections = 0 then
              failwith "queue never rejected under 6x saturation";
            if Atomic.get hint_seen <> Atomic.get rejections then
              failwith "rejection without retry_after hint";
            if Atomic.get answered = 0 then failwith "nobody was served";
            Printf.sprintf "%d served, %d rejected with hint"
              (Atomic.get answered) (Atomic.get rejections)));
    guarded ~timeout:180.0 "load/backoff-retry-succeeds" (fun () ->
        let cfg = mk_cfg () in
        let d = Daemon.start cfg in
        Fun.protect
          ~finally:(fun () -> Daemon.stop d)
          (fun () ->
            let path = cfg.Daemon.socket_path in
            let c0, _ = Client.connect path in
            let qs = take 5 (all_queries c0 ~bench:bench_name) in
            Client.close c0;
            (* saturating background clients... *)
            let stop = Atomic.make false in
            let noise =
              List.init 4 (fun i ->
                  Thread.create
                    (fun () ->
                      let c, _ =
                        Client.connect ~name:(Printf.sprintf "n%d" i) path
                      in
                      Fun.protect
                        ~finally:(fun () -> Client.close c)
                        (fun () ->
                          while not (Atomic.get stop) do
                            (try
                               ignore (Client.ask_many c ~bench:bench_name qs)
                             with _ -> ());
                            Thread.delay 0.005
                          done))
                    ())
            in
            (* ...while a patient client retries with backoff + jitter *)
            let c, _ =
              Client.connect
                ~retry:{ Client.attempts = 50; base_ms = 10.0; cap_ms = 200.0 }
                ~name:"patient" path
            in
            let a =
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () -> Client.ask c ~bench:bench_name (List.hd qs))
            in
            Atomic.set stop true;
            List.iter Thread.join noise;
            Printf.sprintf "served after backoff (result=%s)"
              a.Protocol.a_result));
  ]

(** Module faults while serving: the chaos injector wraps the daemon's
    ensembles; the orchestrator's fault isolation must keep every wire
    answer flowing. *)
let module_fault_scenario ~(seed : int) () : server_outcome =
  guarded ~timeout:180.0 "fault/modules-raising" (fun () ->
      let cfg =
        {
          (Daemon.default_config ~socket_path:(scratch_sock ())
             ~benchmarks:(benchmarks ()) ())
          with
          Daemon.wrap =
            (fun ms ->
              fst (Chaos.wrap_all (Chaos.config ~seed ~p_raise:0.3 ()) ms));
        }
      in
      let d = Daemon.start cfg in
      Fun.protect
        ~finally:(fun () -> Daemon.stop d)
        (fun () ->
          let c, _ = Client.connect cfg.Daemon.socket_path in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let qs = all_queries c ~bench:bench_name in
              let answers = Client.ask_many c ~bench:bench_name qs in
              if List.length answers <> List.length qs then
                failwith "an answer went missing";
              Printf.sprintf "%d queries answered under p_raise=0.3"
                (List.length answers))))

(** Session lifecycle: idle reap (with transparent client reconnect) and
    stale-socket recovery after an unclean death. *)
let lifecycle_scenarios ~(seed : int) () : server_outcome list =
  ignore seed;
  [
    guarded ~timeout:120.0 "session/idle-reap-reconnect" (fun () ->
        let cfg =
          {
            (Daemon.default_config ~socket_path:(scratch_sock ())
               ~benchmarks:(benchmarks ()) ())
            with
            Daemon.idle_timeout = 0.3;
          }
        in
        let d = Daemon.start cfg in
        Fun.protect
          ~finally:(fun () -> Daemon.stop d)
          (fun () ->
            let c, _ = Client.connect cfg.Daemon.socket_path in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                Client.ping c;
                Thread.delay 1.2;
                (* reaped by now; rpc reconnects transparently *)
                Client.ping c;
                let j = Client.stats c in
                let reaped =
                  match
                    Json.member "metrics" j
                    |> Option.map
                         (Json.mem_or "counters" ~default:(Json.Obj []))
                    |> Option.map (Json.member "server.sessions.reaped")
                  with
                  | Some (Some (Json.Int n)) -> n
                  | _ -> 0
                in
                if reaped < 1 then failwith "idle session never reaped";
                Printf.sprintf "reaped=%d, client reconnected" reaped)));
    guarded ~timeout:120.0 "session/stale-socket-recovery" (fun () ->
        (* fake an unclean death: a bound-then-closed socket leaves its
           file behind, like kill -9 on a live daemon *)
        let path = scratch_sock () in
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 1;
        Unix.close fd;
        if not (Sys.file_exists path) then failwith "no stale socket to test";
        let cfg =
          Daemon.default_config ~socket_path:path ~benchmarks:(benchmarks ())
            ()
        in
        let d = Daemon.start cfg in
        Fun.protect
          ~finally:(fun () -> Daemon.stop d)
          (fun () ->
            if still_serving path then "stale socket replaced, serving"
            else failwith "not serving"));
    guarded ~timeout:120.0 "session/shutdown-op" (fun () ->
        let cfg =
          Daemon.default_config ~socket_path:(scratch_sock ())
            ~benchmarks:(benchmarks ()) ()
        in
        let d = Daemon.start cfg in
        let c, _ = Client.connect cfg.Daemon.socket_path in
        Client.shutdown c;
        Client.close c;
        Daemon.wait d;
        if Sys.file_exists cfg.Daemon.socket_path then
          failwith "socket file left behind";
        (match Client.connect ~retry:Client.no_retry cfg.Daemon.socket_path with
        | _ -> failwith "daemon still accepting after shutdown"
        | exception Client.Transport_error _ -> ());
        "acknowledged, stopped, socket unlinked");
  ]

(** The full server fault matrix (>= 20 scenarios). *)
let run_server_chaos ?(seed = 2026) () : server_outcome list =
  let cfg =
    Daemon.default_config ~socket_path:(scratch_sock ())
      ~benchmarks:(benchmarks ()) ()
  in
  let d = Daemon.start cfg in
  let shared =
    Fun.protect
      ~finally:(fun () -> Daemon.stop d)
      (fun () -> normal_daemon_scenarios ~seed cfg.Daemon.socket_path)
  in
  let loris =
    let cfg =
      {
        (Daemon.default_config ~socket_path:(scratch_sock ())
           ~benchmarks:(benchmarks ()) ())
        with
        Daemon.frame_budget = 0.5;
      }
    in
    let d = Daemon.start cfg in
    Fun.protect
      ~finally:(fun () -> Daemon.stop d)
      (fun () -> [ slow_loris_scenario cfg.Daemon.socket_path ])
  in
  shared @ loris @ shed_scenarios ~seed ()
  @ saturation_scenarios ~seed ()
  @ [ module_fault_scenario ~seed () ]
  @ lifecycle_scenarios ~seed ()
