(** Network chaos: byte-level fault scenarios through {!Netproxy}.

    Where {!Server_chaos} attacks the daemon's request handling, this
    matrix attacks the {e wire itself}, over both transports (Unix socket
    and TCP): added latency, bandwidth caps, partial and duplicated
    writes, mid-frame truncation, hard RST, proxied slow-loris, idle
    heartbeats, streaming replies (identity, cancellation, vanished
    consumers), and the protocol version gate.

    The invariant is the same service-level one: {e every scenario ends
    with the request answered, cleanly rejected, or expired — never hung}
    (each runs under {!Server_chaos.guarded}'s watchdog), and the daemon
    must still serve a fresh client afterwards. *)

open Scaf_server
open Server_chaos

let raw_connect_ep (ep : string) : Unix.file_descr =
  Addr.connect (Addr.of_string ep)

let send_frame (fd : Unix.file_descr) (payload : string) : unit =
  send_bytes fd (prefix_of (String.length payload) ^ payload)

(* Read reply frames until one is not a heartbeat. *)
let rec read_reply (fd : Unix.file_descr) : Json.t =
  match Wire.read_frame ~frame_budget:10.0 fd with
  | Ok j when Protocol.is_heartbeat j -> read_reply fd
  | Ok j -> j
  | Error e -> failwith (Wire.error_to_string e)

(* A scratch TCP or Unix listen spec for the proxy, family-matched to the
   upstream endpoint so each transport is exercised end to end. *)
let proxy_listen_for (ep : string) : string =
  match Addr.of_string ep with
  | Addr.Tcp _ -> "tcp:127.0.0.1:0"
  | Addr.Unix_path _ -> scratch_sock ()

let with_proxy ?faults ~(upstream : string) (f : string -> 'a) : 'a =
  let p =
    Netproxy.start ?faults ~listen:(proxy_listen_for upstream) ~upstream ()
  in
  Fun.protect ~finally:(fun () -> Netproxy.stop p) (fun () -> f (Netproxy.endpoint p))

(* ---- per-transport scenarios against the shared daemon ---- *)

let transport_scenarios ~(tname : string) ~(ep : string) :
    server_outcome list =
  let s ?(timeout = 60.0) name body =
    guarded ~timeout (Printf.sprintf "net/%s/%s" tname name) body
  in
  [
    s "proxy-clean" (fun () ->
        (* a fault-free proxy must be invisible: answers through it equal
           answers asked directly *)
        let direct, qs =
          let c, _ = Client.connect ep in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let qs = take 8 (all_queries c ~bench:bench_name) in
              (Client.ask_many c ~bench:bench_name qs, qs))
        in
        with_proxy ~upstream:ep (fun pep ->
            let c, _ = Client.connect pep in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let proxied = Client.ask_many c ~bench:bench_name qs in
                if proxied <> direct then
                  failwith "proxied answers differ from direct";
                Printf.sprintf "%d answers identical through proxy"
                  (List.length qs))));
    s "latency" (fun () ->
        let faults = { Netproxy.no_faults with Netproxy.delay = 0.05 } in
        with_proxy ~faults ~upstream:ep (fun pep ->
            let c, _ = Client.connect pep in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let a =
                  Client.ask c ~bench:bench_name (first_query c ~bench:bench_name)
                in
                Printf.sprintf "answered under 50ms chunk latency (%s)"
                  a.Protocol.a_result)));
    s "bandwidth-cap" (fun () ->
        let faults =
          { Netproxy.no_faults with Netproxy.throttle_bps = Some 20_000 }
        in
        with_proxy ~faults ~upstream:ep (fun pep ->
            let c, _ = Client.connect pep in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let qs = take 5 (all_queries c ~bench:bench_name) in
                let answers = Client.ask_many c ~bench:bench_name qs in
                Printf.sprintf "%d answers under a 20kB/s cap"
                  (List.length answers))));
    s "partial-writes" (fun () ->
        (* every frame delivered 3 bytes at a time: framing must
           reassemble exactly; the budget must tolerate the trickle *)
        let faults = { Netproxy.no_faults with Netproxy.chunk = Some 3 } in
        with_proxy ~faults ~upstream:ep (fun pep ->
            let c, _ = Client.connect pep in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                Client.ping c;
                let a =
                  Client.ask c ~bench:bench_name (first_query c ~bench:bench_name)
                in
                Printf.sprintf "answered under 3-byte writes (%s)"
                  a.Protocol.a_result)));
    s "duplicate-bytes" (fun () ->
        (* a duplicated chunk corrupts the framing (it may land inside
           the hello): the daemon must reject or hang up, never crash or
           hang. The query is fetched over a clean connection first. *)
        let q =
          let c, _ = Client.connect ep in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () -> first_query c ~bench:bench_name)
        in
        let faults =
          {
            Netproxy.no_faults with
            Netproxy.duplicate_after = Some 10;
            dir = `C2s;
          }
        in
        with_proxy ~faults ~upstream:ep (fun pep ->
            (match
               let c, _ =
                 Client.connect ~retry:Client.no_retry ~name:"dup" pep
               in
               Fun.protect
                 ~finally:(fun () -> Client.close c)
                 (fun () -> Client.ask c ~bench:bench_name q)
             with
            | _ -> ()  (* the dup may land between frames: harmless *)
            | exception Client.Server_error _ -> ()
            | exception Client.Transport_error _ -> ());
            if still_serving ep then "daemon survived duplicated bytes"
            else failwith "down"));
    s "truncate-mid-frame" (fun () ->
        let faults =
          {
            Netproxy.no_faults with
            Netproxy.truncate_after = Some 10;
            dir = `C2s;
          }
        in
        with_proxy ~faults ~upstream:ep (fun pep ->
            (* the cut can land inside the hello, so the connect itself is
               allowed to fail — just never hang *)
            (match
               let c, _ =
                 Client.connect ~retry:Client.no_retry ~name:"trunc" pep
               in
               Fun.protect
                 ~finally:(fun () -> Client.close c)
                 (fun () -> Client.ping c)
             with
            | () -> failwith "expected the truncated conversation to fail"
            | exception Client.Transport_error _ -> ()
            | exception Client.Server_error _ -> ());
            if still_serving ep then "cut mid-frame, daemon unaffected"
            else failwith "down"));
    s "rst" (fun () ->
        let faults =
          { Netproxy.no_faults with Netproxy.reset_after = Some 6 }
        in
        with_proxy ~faults ~upstream:ep (fun pep ->
            (* the RST fires during the hello, so the connect itself is
               allowed to fail — just never hang *)
            (match
               let c, _ =
                 Client.connect ~retry:Client.no_retry ~name:"rst" pep
               in
               Fun.protect
                 ~finally:(fun () -> Client.close c)
                 (fun () -> Client.ping c)
             with
            | () -> failwith "expected the reset conversation to fail"
            | exception Client.Transport_error _ -> ()
            | exception Client.Server_error _ -> ());
            if still_serving ep then "reset mid-stream, daemon unaffected"
            else failwith "down"));
    s "version-mismatch" (fun () ->
        (* a wrong or missing version must be a clear, non-retryable
           error frame — never a parse failure, never a hang *)
        let try_payload payload =
          let fd = raw_connect_ep ep in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              send_frame fd payload;
              match Protocol.open_envelope (read_reply fd) with
              | Error e ->
                  if e.Protocol.code <> "version_mismatch" then
                    failwith ("expected version_mismatch, got " ^ e.Protocol.code);
                  if e.Protocol.retryable then
                    failwith "version_mismatch must not be retryable"
              | Ok _ -> failwith "mismatched version was accepted")
        in
        try_payload {|{"v":99,"op":"ping"}|};
        try_payload {|{"op":"ping"}|};
        "wrong and missing versions rejected, non-retryable");
    s "stream-identical" (fun () ->
        (* a streamed ask_many must reassemble to exactly the batch
           answers, directly and through a clean proxy *)
        let c, _ = Client.connect ep in
        let batch, streamed, qs =
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let qs = take 10 (all_queries c ~bench:bench_name) in
              let batch = Client.ask_many c ~bench:bench_name qs in
              let streamed, summary = Client.ask_stream c ~bench:bench_name qs in
              if summary.Protocol.st_count <> List.length qs then
                failwith "stream summary count mismatch";
              if summary.Protocol.st_cancelled then
                failwith "uncancelled stream flagged cancelled";
              (batch, streamed, qs))
        in
        if streamed <> batch then failwith "streamed answers differ from batch";
        with_proxy ~upstream:ep (fun pep ->
            let c, _ = Client.connect pep in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let via_proxy, _ = Client.ask_stream c ~bench:bench_name qs in
                if via_proxy <> batch then
                  failwith "proxied stream differs from batch";
                Printf.sprintf "%d streamed answers identical to batch"
                  (List.length qs))));
  ]

(* ---- streaming lifecycle scenarios (their own slow daemon, so the
   stream is long enough to interrupt deterministically) ---- *)

let slow_stream_scenarios ~(tname : string) ~(ep : string) :
    server_outcome list =
  let s ?(timeout = 120.0) name body =
    guarded ~timeout (Printf.sprintf "net/%s/%s" tname name) body
  in
  [
    s "stream-cancel" (fun () ->
        let c, _ = Client.connect ep in
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            let qs = take 30 (all_queries c ~bench:bench_name) in
            let seen = ref 0 in
            let answers, summary =
              Client.ask_stream
                ~on_item:(fun _ _ ->
                  incr seen;
                  if !seen = 1 then `Cancel else `Continue)
                c ~bench:bench_name qs
            in
            if not summary.Protocol.st_cancelled then
              failwith "cancel was not acknowledged in the summary";
            if List.length answers >= List.length qs then
              failwith "cancelled stream still delivered every answer";
            if not (still_serving ep) then failwith "down";
            Printf.sprintf "cancelled after %d of %d answers"
              (List.length answers) (List.length qs)));
    s "client-vanishes-mid-stream" (fun () ->
        let qs =
          let c, _ = Client.connect ep in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () -> take 30 (all_queries c ~bench:bench_name))
        in
        let fd = raw_connect_ep ep in
        send_frame fd
          (Json.to_string
             (Protocol.request_to_json
                (Protocol.Ask_many
                   {
                     bench = bench_name;
                     qs;
                     deadline_ms = None;
                     stream = true;
                   })));
        (* read up to the first item, then vanish without a word *)
        let rec to_first_item () =
          match Wire.read_frame ~frame_budget:30.0 fd with
          | Ok j -> (
              match Protocol.stream_frame_of_json j with
              | Protocol.Sitem _ -> ()
              | Protocol.Sheartbeat -> to_first_item ()
              | _ -> failwith "stream ended before first item")
          | Error e -> failwith (Wire.error_to_string e)
        in
        to_first_item ();
        Unix.close fd;
        Thread.delay 0.5;
        if still_serving ep then "daemon survived vanished stream consumer"
        else failwith "down");
  ]

(* ---- slow-loris through the proxy, against a tight frame budget ---- *)

let loris_scenarios ~(tname : string) ~(ep : string) : server_outcome list =
  [
    guarded ~timeout:60.0
      (Printf.sprintf "net/%s/proxied-slow-loris" tname)
      (fun () ->
        (* one byte per 120ms through the proxy: the daemon's 0.5s frame
           budget must cut the dribble off *)
        let faults =
          {
            Netproxy.no_faults with
            Netproxy.chunk = Some 1;
            delay = 0.12;
            dir = `C2s;
          }
        in
        with_proxy ~faults ~upstream:ep (fun pep ->
            let fd = raw_connect_ep pep in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with _ -> ())
              (fun () ->
                let cut = ref false in
                (try
                   send_frame fd
                     (Json.to_string
                        (Protocol.request_to_json Protocol.Ping));
                   (* the proxy dribbles; wait for the daemon's verdict *)
                   match Wire.read_frame ~frame_budget:20.0 fd with
                   | Error (Wire.Closed | Wire.Truncated _) -> cut := true
                   | Ok j ->
                       let code = expect_err_code j in
                       if code = "bad_request" then cut := true
                       else failwith ("unexpected reply " ^ code)
                   | Error e -> failwith (Wire.error_to_string e)
                 with
                | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
                    cut := true);
                if not !cut then failwith "daemon tolerated the dribble";
                if still_serving ep then "dribble cut off, daemon serving"
                else failwith "down")));
  ]

(* ---- idle keepalive heartbeats ---- *)

let heartbeat_scenarios ~(tname : string) ~(ep : string) :
    server_outcome list =
  [
    guarded ~timeout:30.0
      (Printf.sprintf "net/%s/idle-heartbeat" tname)
      (fun () ->
        let fd = raw_connect_ep ep in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with _ -> ())
          (fun () ->
            (* say nothing; the daemon must speak first *)
            match Wire.read_frame ~frame_budget:10.0 fd with
            | Ok j when Protocol.is_heartbeat j ->
                "heartbeat arrived on an idle connection"
            | Ok j -> failwith ("unexpected frame " ^ Json.to_string j)
            | Error e -> failwith (Wire.error_to_string e)))
  ]

(* ---- the matrix ---- *)

(** Run the full network chaos matrix over both transports. Every
    scenario runs under a watchdog; a hang is a failing outcome, not a
    hung harness. *)
let run_net_chaos ?(seed = 2026) () : server_outcome list =
  ignore seed;
  let both_listeners cfg = { cfg with Daemon.tcp = Some "127.0.0.1:0" } in
  let endpoints_of (d : Daemon.t) (cfg : Daemon.config) :
      (string * string) list =
    match Daemon.tcp_endpoint d with
    | Some tcp -> [ ("unix", cfg.Daemon.socket_path); ("tcp", tcp) ]
    | None -> [ ("unix", cfg.Daemon.socket_path) ]
  in
  (* shared daemon, both listeners *)
  let shared =
    let cfg =
      both_listeners
        (Daemon.default_config ~socket_path:(scratch_sock ())
           ~benchmarks:(benchmarks ()) ())
    in
    let d = Daemon.start cfg in
    Fun.protect
      ~finally:(fun () -> Daemon.stop d)
      (fun () ->
        List.concat_map
          (fun (tname, ep) -> transport_scenarios ~tname ~ep)
          (endpoints_of d cfg))
  in
  (* slow daemon: each answer takes ~20ms, so streams are interruptible *)
  let streaming =
    let slow ms =
      List.map
        (fun (m : Scaf.Module_api.t) ->
          {
            m with
            Scaf.Module_api.answer =
              (fun ctx q ->
                Thread.delay 0.02;
                m.Scaf.Module_api.answer ctx q);
          })
        ms
    in
    let cfg =
      {
        (both_listeners
           (Daemon.default_config ~socket_path:(scratch_sock ())
              ~benchmarks:(benchmarks ()) ()))
        with
        Daemon.wrap = slow;
        workers = 2;
      }
    in
    let d = Daemon.start cfg in
    Fun.protect
      ~finally:(fun () -> Daemon.stop d)
      (fun () ->
        List.concat_map
          (fun (tname, ep) -> slow_stream_scenarios ~tname ~ep)
          (endpoints_of d cfg))
  in
  (* tight frame budget for the proxied slow-loris *)
  let loris =
    let cfg =
      {
        (both_listeners
           (Daemon.default_config ~socket_path:(scratch_sock ())
              ~benchmarks:(benchmarks ()) ()))
        with
        Daemon.frame_budget = 0.5;
      }
    in
    let d = Daemon.start cfg in
    Fun.protect
      ~finally:(fun () -> Daemon.stop d)
      (fun () ->
        List.concat_map
          (fun (tname, ep) -> loris_scenarios ~tname ~ep)
          (endpoints_of d cfg))
  in
  (* fast heartbeats so idleness is observable in test time *)
  let heartbeat =
    let cfg =
      {
        (both_listeners
           (Daemon.default_config ~socket_path:(scratch_sock ())
              ~benchmarks:(benchmarks ()) ()))
        with
        Daemon.heartbeat_interval = 0.3;
      }
    in
    let d = Daemon.start cfg in
    Fun.protect
      ~finally:(fun () -> Daemon.stop d)
      (fun () ->
        List.concat_map
          (fun (tname, ep) -> heartbeat_scenarios ~tname ~ep)
          (endpoints_of d cfg))
  in
  shared @ streaming @ loris @ heartbeat
