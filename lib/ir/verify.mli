(** Structural well-formedness checks for MIR modules: unique ids, single
    assignment, defined uses, valid branch targets and phi arms, known
    callees, positive access sizes. (Dominance-based SSA validation needs
    dominator trees and therefore lives with the CFG analyses: see
    [Scaf_cfg.Ssa.check_ssa] and the combined [Scaf_cfg.Ssa.check_full].) *)

type error = { where : string; what : string }

val pp_error : error Fmt.t

(** [check m] is the list of structural errors ([[]] = well-formed). *)
val check : Irmod.t -> error list

(** @raise Invalid_argument with a readable report if [m] is ill-formed. *)
val check_exn : Irmod.t -> unit
