(** MIR instructions and terminators.

    Every instruction and terminator carries a module-unique integer [id];
    analyses, profiles and assertions refer to program points by id. *)

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Srem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type cmp = Eq | Ne | Slt | Sle | Sgt | Sge

type kind =
  | Alloca of { size : int }  (** stack object of [size] bytes *)
  | Load of { ptr : Value.t; size : int }  (** read [size] bytes *)
  | Store of { ptr : Value.t; value : Value.t; size : int }
      (** write [size] bytes *)
  | Gep of { base : Value.t; offset : Value.t }
      (** pointer arithmetic: [base + offset] (byte offset) *)
  | Binop of binop * Value.t * Value.t
  | Icmp of cmp * Value.t * Value.t
  | Select of { cond : Value.t; if_true : Value.t; if_false : Value.t }
  | Call of { callee : string; args : Value.t list }
  | Phi of (string * Value.t) list  (** [(predecessor label, value)] *)

type t = { id : int; dst : string option; kind : kind }

type term_kind =
  | Br of string
  | Condbr of { cond : Value.t; if_true : string; if_false : string }
  | Ret of Value.t option
  | Unreachable

type term = { tid : int; tkind : term_kind }

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | Srem -> "srem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"

let cmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"

let binop_of_name = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "sdiv" -> Some Sdiv
  | "srem" -> Some Srem
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "shl" -> Some Shl
  | "lshr" -> Some Lshr
  | "ashr" -> Some Ashr
  | _ -> None

let cmp_of_name = function
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "slt" -> Some Slt
  | "sle" -> Some Sle
  | "sgt" -> Some Sgt
  | "sge" -> Some Sge
  | _ -> None

(** [operands i] lists every value the instruction reads. *)
let operands (i : t) : Value.t list =
  match i.kind with
  | Alloca _ -> []
  | Load { ptr; _ } -> [ ptr ]
  | Store { ptr; value; _ } -> [ ptr; value ]
  | Gep { base; offset } -> [ base; offset ]
  | Binop (_, a, b) | Icmp (_, a, b) -> [ a; b ]
  | Select { cond; if_true; if_false } -> [ cond; if_true; if_false ]
  | Call { args; _ } -> args
  | Phi incoming -> List.map snd incoming

let term_operands (t : term) : Value.t list =
  match t.tkind with
  | Br _ | Unreachable -> []
  | Condbr { cond; _ } -> [ cond ]
  | Ret v -> Option.to_list v

(** [accesses_memory i] holds for instructions with a memory footprint of
    their own (loads and stores). Calls may also touch memory; the analyses
    treat them via callee summaries. *)
let accesses_memory (i : t) =
  match i.kind with Load _ | Store _ -> true | _ -> false

let writes_memory (i : t) = match i.kind with Store _ -> true | _ -> false
let reads_memory (i : t) = match i.kind with Load _ -> true | _ -> false

let is_call (i : t) = match i.kind with Call _ -> true | _ -> false

(** [footprint i] is [(pointer, size)] for loads and stores. *)
let footprint (i : t) : (Value.t * int) option =
  match i.kind with
  | Load { ptr; size } -> Some (ptr, size)
  | Store { ptr; size; _ } -> Some (ptr, size)
  | _ -> None

let pp_kind ppf = function
  | Alloca { size } -> Fmt.pf ppf "alloca %d" size
  | Load { ptr; size } -> Fmt.pf ppf "load %d, %a" size Value.pp ptr
  | Store { ptr; value; size } ->
      Fmt.pf ppf "store %d, %a, %a" size Value.pp ptr Value.pp value
  | Gep { base; offset } ->
      Fmt.pf ppf "gep %a, %a" Value.pp base Value.pp offset
  | Binop (op, a, b) ->
      Fmt.pf ppf "%s %a, %a" (binop_name op) Value.pp a Value.pp b
  | Icmp (c, a, b) ->
      Fmt.pf ppf "icmp %s %a, %a" (cmp_name c) Value.pp a Value.pp b
  | Select { cond; if_true; if_false } ->
      Fmt.pf ppf "select %a, %a, %a" Value.pp cond Value.pp if_true Value.pp
        if_false
  (* The surface syntax is line-oriented: an instruction must print on a
     single line to reparse, so the separators below are non-breaking. *)
  | Call { callee; args } ->
      Fmt.pf ppf "call @%s(%a)" callee
        (Fmt.list ~sep:(Fmt.any ", ") Value.pp)
        args
  | Phi incoming ->
      let pp_in ppf (l, v) = Fmt.pf ppf "[%s: %a]" l Value.pp v in
      Fmt.pf ppf "phi %a" (Fmt.list ~sep:(Fmt.any ", ") pp_in) incoming

let pp ppf (i : t) =
  match i.dst with
  | Some d -> Fmt.pf ppf "%%%s = %a" d pp_kind i.kind
  | None -> pp_kind ppf i.kind

let pp_term ppf (t : term) =
  match t.tkind with
  | Br l -> Fmt.pf ppf "br %s" l
  | Condbr { cond; if_true; if_false } ->
      Fmt.pf ppf "condbr %a, %s, %s" Value.pp cond if_true if_false
  | Ret None -> Fmt.string ppf "ret"
  | Ret (Some v) -> Fmt.pf ppf "ret %a" Value.pp v
  | Unreachable -> Fmt.string ppf "unreachable"

let to_string i = Fmt.str "%a" pp i
