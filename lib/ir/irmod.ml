(** An MIR module: globals, external declarations, function definitions.

    [Index] provides the id- and register-based lookup maps most analyses
    need (instruction id -> occurrence, register -> defining instruction). *)

type global = {
  gname : string;
  gsize : int;  (** byte size *)
  ginit : (int * int64) list;  (** sparse initializer: (byte offset, value) *)
}

type t = {
  globals : global list;
  decls : Func.decl list;
  funcs : Func.t list;
}

let empty = { globals = []; decls = []; funcs = [] }

let find_func (m : t) name : Func.t option =
  List.find_opt (fun (f : Func.t) -> String.equal f.name name) m.funcs

let find_decl (m : t) name : Func.decl option =
  List.find_opt (fun (d : Func.decl) -> String.equal d.dname name) m.decls

let find_global (m : t) name : global option =
  List.find_opt (fun g -> String.equal g.gname name) m.globals

(** Intrinsics the interpreter implements natively. They are implicitly
    declared; programs may call them without a [declare]. *)
let intrinsic_decls : Func.decl list =
  [
    { dname = "malloc"; dattrs = [ Func.Malloc_like ] };
    { dname = "calloc"; dattrs = [ Func.Malloc_like ] };
    { dname = "free"; dattrs = [ Func.Free_like; Func.Argmemonly ] };
    { dname = "memcpy"; dattrs = [ Func.Argmemonly ] };
    { dname = "memset"; dattrs = [ Func.Argmemonly ] };
    { dname = "print"; dattrs = [ Func.Readnone ] };
    { dname = "input"; dattrs = [ Func.Readnone ] };
    { dname = "exit"; dattrs = [ Func.Noreturn; Func.Readnone ] };
    (* SCAF validation runtime (inserted by Scaf_transform.Instrument) *)
    { dname = "scaf.check_residue"; dattrs = [ Func.Readnone ] };
    { dname = "scaf.check_heap"; dattrs = [ Func.Readnone ] };
    { dname = "scaf.check_not_heap"; dattrs = [ Func.Readnone ] };
    { dname = "scaf.ms_forbid"; dattrs = [ Func.Readnone ] };
    { dname = "scaf.check_value"; dattrs = [ Func.Readnone ] };
    { dname = "scaf.misspec"; dattrs = [ Func.Readnone ] };
    { dname = "scaf.set_heap"; dattrs = [ Func.Readnone ] };
    { dname = "scaf.ms_read"; dattrs = [ Func.Readnone ] };
    { dname = "scaf.ms_write"; dattrs = [ Func.Readnone ] };
    { dname = "scaf.iter_check"; dattrs = [ Func.Readnone ] };
  ]

(** [decl_of m name] resolves a callee to its declaration, looking at
    explicit declarations first, then intrinsics. *)
let decl_of (m : t) name : Func.decl option =
  match find_decl m name with
  | Some d -> Some d
  | None ->
      List.find_opt
        (fun (d : Func.decl) -> String.equal d.dname name)
        intrinsic_decls

let has_attr (m : t) callee (a : Func.attr) =
  match decl_of m callee with
  | Some d -> List.mem a d.dattrs
  | None -> false

let iter_instrs (m : t) (fn : Func.t -> Block.t -> Instr.t -> unit) : unit =
  List.iter (fun f -> Func.iter_instrs f (fun b i -> fn f b i)) m.funcs

let pp ppf (m : t) =
  List.iter
    (fun g ->
      Fmt.pf ppf "global @%s %d" g.gname g.gsize;
      (match g.ginit with
      | [] -> ()
      | init ->
          let pp_pair ppf (o, v) = Fmt.pf ppf "%d: %Ld" o v in
          Fmt.pf ppf " init [%a]" (Fmt.list ~sep:(Fmt.any ", ") pp_pair) init);
      Fmt.pf ppf "@.")
    m.globals;
  if m.globals <> [] then Fmt.pf ppf "@.";
  List.iter (fun d -> Func.pp_decl ppf d) m.decls;
  if m.decls <> [] then Fmt.pf ppf "@.";
  Fmt.(list ~sep:(any "@.") Func.pp) ppf m.funcs

let to_string m = Fmt.str "%a" pp m

(** Lookup maps over a module. Build once, reuse everywhere. *)
module Index = struct
  type occurrence = { func : Func.t; block : Block.t; instr : Instr.t }

  type index = {
    by_id : (int, occurrence) Hashtbl.t;
    term_by_id : (int, Func.t * Block.t) Hashtbl.t;
    def_of_reg : (string * string, Instr.t) Hashtbl.t;
        (** (func name, register) -> defining instruction *)
    parent : t;
  }

  let build (m : t) : index =
    let by_id = Hashtbl.create 256 in
    let term_by_id = Hashtbl.create 64 in
    let def_of_reg = Hashtbl.create 256 in
    List.iter
      (fun (f : Func.t) ->
        List.iter
          (fun (b : Block.t) ->
            List.iter
              (fun (i : Instr.t) ->
                Hashtbl.replace by_id i.id { func = f; block = b; instr = i };
                match i.dst with
                | Some d -> Hashtbl.replace def_of_reg (f.name, d) i
                | None -> ())
              b.instrs;
            Hashtbl.replace term_by_id b.term.tid (f, b))
          f.blocks)
      m.funcs;
    { by_id; term_by_id; def_of_reg; parent = m }

  let find (idx : index) (id : int) : occurrence option =
    Hashtbl.find_opt idx.by_id id

  let find_exn (idx : index) (id : int) : occurrence =
    match find idx id with
    | Some o -> o
    | None -> invalid_arg (Printf.sprintf "Irmod.Index.find_exn: no instr %d" id)

  (** [def idx f r] is the instruction defining register [r] in function
      [f], if [r] is instruction-defined (parameters have no def). *)
  let def (idx : index) (fname : string) (r : string) : Instr.t option =
    Hashtbl.find_opt idx.def_of_reg (fname, r)
end
